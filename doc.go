// Package truthfulufp is a reproduction of "Truthful Unsplittable Flow
// for Large Capacity Networks" (Azar, Gamzu, Gutner; SPAA 2007): monotone
// deterministic primal-dual algorithms for the Ω(ln m)-bounded
// unsplittable flow problem and the single-minded multi-unit
// combinatorial auction, with approximation ratio approaching e/(e-1),
// together with the critical-value payment machinery that turns them into
// truthful mechanisms, the paper's lower-bound instance families, the
// (1+ε) repetitions variant, and the baselines the paper compares
// against.
//
// This top-level package is a facade over the internal packages: it
// re-exports the instance types, the v1 solver registry, and the
// algorithm entry points a downstream user needs, plus JSON
// serialization for the CLI tools. The full machinery lives under
// internal/ (see DESIGN.md for the map):
//
//   - internal/solver: the v1 registry. Every algorithm in the module is
//     a Solver — Name() + Kind() + Solve(ctx, Input, Params) — under a
//     stable name ("ufp/solve", "muca/mechanism", ...), parameterized by
//     one unified Params block. RegisterSolver surfaces a new algorithm
//     in the engine (Job.Algorithm), ufpserve (/v1/solve), and the -alg
//     flags of ufprun/aucrun/ufpbench at once.
//
//   - internal/core: Bounded-UFP (Algorithm 1), Bounded-UFP-Repeat
//     (Algorithm 3), the reasonable iterative path minimizing engine,
//     baselines, LP-based references.
//
//   - internal/auction: Bounded-MUCA (Algorithm 2) and friends.
//
//   - internal/mechanism: critical-value payments and truthfulness
//     harness (Theorem 2.3).
//
//   - internal/lowerbound: Figures 2, 3, 4 instance families.
//
//   - internal/experiments: the table/figure reproduction harness.
//
//   - internal/engine: the concurrent solve service (worker pool,
//     in-flight deduplication, keyed result cache) behind cmd/ufpserve;
//     use it via NewEngine/Engine.Do for heavy traffic. Solves abandoned
//     by every waiter are cancelled mid-run and their workers reclaimed.
//
//   - internal/session: the stateful serving layer for the paper's
//     online setting — registered networks with persistent prices,
//     flows, and warm path caches (see "Session lifecycle" below).
//
//   - internal/shard: the horizontal scale-out layer — a bounded-load
//     consistent-hash ring and a Router fronting N engine+session
//     backends (see "Scale-out" below); use it via NewShardRouter or
//     the ufpserve -shards / -route flags.
//
//   - internal/scenario: the scenario catalog — named, seeded topology
//     families (fat-tree, Waxman backbone, scale-free, small-world,
//     metro ring-of-rings, single-sink star-of-trees) × demand models
//     (gravity, hotspot, Zipf, hose) × capacity regimes around the
//     paper's B >= ln(m)/ε² assumption; use it via GenerateScenario or
//     the cmd/ufpgen CLI, and pipe into ufprun/aucrun/ufpserve:
//
//     ufpgen -scenario fattree -seed 7 | ufprun -in -
//
// # Quick start
//
//	g := truthfulufp.NewGraph(2)
//	g.AddEdge(0, 1, 30) // capacity 30
//	inst := &truthfulufp.Instance{G: g, Requests: []truthfulufp.Request{
//		{Source: 0, Target: 1, Demand: 1, Value: 2},
//	}}
//	alloc, err := truthfulufp.SolveUFPCtx(ctx, inst, 0.5, nil)
//
// Demands must be normalized into (0, 1] with B = min edge capacity >= 1;
// use Instance.Normalized. SolveUFPCtx(ctx, inst, ε, nil) is the
// Theorem 3.1 mechanism-ready entry point: feasible, monotone, exact,
// and ((1+ε)·e/(e-1))-approximate once B >= ln(m)/ε².
//
// # The v1 calling convention: context first
//
// Every entry point has a context-first *Ctx form (SolveUFPCtx,
// BoundedMUCACtx, RunUFPMechanismCtx, ...), and the registry's
// Solver.Solve takes ctx as its first argument: the context is checked
// every main-loop iteration — and between every critical-value probe of
// a mechanism run — so a done context abandons the solve promptly and
// returns the context's error. The pre-v1 spellings (SolveUFP, ...)
// remain as thin wrappers with no context. The deprecated shims are
// gone as scheduled: Options.Ctx / AuctionOptions.Ctx have been
// removed (pass ctx to the *Ctx entry point), and the engine's Job.Kind
// enum has been removed (set Job.Algorithm to a registry name).
// Registry dispatch also applies per-solver defaults: the
// pseudo-polynomial repeat variants cap MaxIterations at
// solver.DefaultRepeatMaxIterations when a job leaves it zero.
//
// # Graph lifecycle: build → Freeze → solve
//
// Graphs are built with the mutable builder API (NewGraph, AddEdge,
// AddVertex) and then frozen into an immutable compressed-sparse-row
// (CSR) adjacency by Graph.Freeze — the form every shortest-path inner
// loop runs on. Freeze is cheap, idempotent, and safe under concurrent
// readers; the generators and the scenario catalog freeze for you, and
// the solvers freeze on entry if the caller forgot (unfrozen graphs
// still work via a slower adjacency walk). Capacity updates never
// invalidate the frozen form — it holds topology only — but any
// topology mutation (AddEdge, AddVertex, SubdivideEdge) drops it, so
// re-freeze (or let the next solve rebuild) after structural changes.
//
// On top of the CSR core sits an incremental path-search engine
// (internal/pathfind): per-worker search scratches with O(1) reset, and
// one dirty-source cache (Incremental) generic over the structure kind
// — additive Dijkstra trees, bottleneck trees under the canonical
// leximax key, and hop-bounded Bellman-Ford tables — exploiting that
// each primal-dual iteration raises prices only on the edges of the one
// admitted path, so only structures using those edges (restricted, for
// trees, to the paths serving each source's own request targets) are
// recomputed. Single-target queries run on a goal-directed oracle
// (Scratch.ShortestPathTo / Incremental.PathTo) instead of whole trees,
// accelerated by ALT landmark A* (tables whose lower bounds monotone
// price increases never undercut), bidirectional meet-in-the-middle
// probes over the frozen reverse CSR, minimax landmark tables that
// goal-direct bottleneck (KindBottleneck) queries, and an adaptive
// per-source policy that watches observed dirty rates and target
// fan-out to choose tree rebuilds versus oracle queries
// (Options.Adaptive / Landmarks / Bidirectional); the mechanism's
// payment bisection enables them automatically. The landmark tables
// live a build → slack → rebuild lifecycle: built at registration,
// their pruning power decays as prices drift above the snapshot, and
// the oracle re-selects them against current prices when the observed
// prune ratio slacks below a staleness threshold (or when a
// bound-violating caller spends the violation budget) — valid at any
// moment because today's prices lower-bound all future ones. One
// immutable table set per topology is shared process-wide through
// pathfind.SharedLandmarks (engine shards, mechanism bisection
// probes); staleness rebuilds stay session-private since they snapshot
// one session's prices. Cached answers
// are bit-identical to recomputation (every kind's tie-break is
// canonical, and each acceleration provably preserves it), so the
// solvers' allocations do not depend on caching;
// Options.NoIncremental and EngineOptions.NoIncremental disable it for
// benchmarking (BENCH_path.json tracks the speedups).
//
// # Session lifecycle: register → stream → release → evict
//
// The offline entry points above take a whole Instance and return a
// whole Allocation. The session layer serves the paper's online
// admission setting instead: a network registered once holds live
// solver state — the exponential dual prices y_e = (1/c_e)·e^{εB·f_e/c_e},
// the residual flow ledger, and a warm incremental path cache — and
// each streamed request costs one single-target shortest-path query,
// not a full solve:
//
//	mgr := truthfulufp.NewSessionManager(truthfulufp.SessionConfig{})
//	sess, err := mgr.Register(g, 0.25) // validates, freezes, prices at 1/c_e
//	d, err := sess.Admit(truthfulufp.Request{Source: 0, Target: 1, Demand: 1, Value: 2})
//	// d.Admitted, d.Price, d.Path, d.ID; or d.Reason: price|capacity|no-path
//	q, err := sess.Quote(r)      // prices without admitting or mutating
//	a, err := sess.Release(d.ID) // returns capacity; prices never fall
//
// Admission follows the paper's online rule — route on the cheapest
// price path, admit iff demand·dist ≤ value, raise prices
// multiplicatively along the path — so the streamed mechanism is
// monotone and truthful; because releases return capacity without
// repricing, truthfulness survives churn too. A session's operations
// are serialized and safe for concurrent use; distinct sessions
// proceed in parallel. Managers evict least-recently-used sessions
// beyond SessionConfig.MaxSessions and lazily expire idle ones after
// SessionConfig.TTL; evicted sessions answer ErrSessionClosed. The
// same state machine is available without a manager as
// NewAdmissionState, and as the batch registry algorithm "ufp/online"
// (OnlineAdmission), whose allocations are byte-identical to streaming
// the same request sequence. Over HTTP, cmd/ufpserve exposes sessions
// at POST /v1/networks and streams admits at
// POST /v1/networks/{id}/admit (see README.md for the wire schema).
//
// # Observability
//
// Every serving layer is instrumented through the stdlib-only
// internal/metrics registry, re-exported here as NewMetricsRegistry /
// MetricsRegistry and friends. Engine.RegisterMetrics binds the
// engine's counters (job lifecycle, result-cache hits and misses,
// queue depth, worker utilization, solve-duration histogram) and its
// session manager's (live sessions, admits/rejects/quotes/releases,
// LRU-vs-TTL evictions, per-admit latency, and the fleet-wide
// incremental path-cache profile from Manager.PathCacheStats) to a
// registry, whose Handler serves the Prometheus text exposition
// format. The underlying per-state counters are also available
// programmatically: AdmissionState.CacheStats returns the
// PathCacheStats (tree refreshes, recomputed vs reused, PathTo
// hits/misses, dirty ratio) for one session. cmd/ufpserve wires all of
// this to GET /metrics, adds per-route request metrics and structured
// request logs with propagated X-Request-Id values, and gates
// load-balancer traffic on GET /v1/readyz during graceful drain (see
// the README's Operations section for the series catalog).
//
// # Scale-out: sharded serving
//
// One process, one worker pool, and one set of warm caches is a
// single-node ceiling. The shard layer (internal/shard, re-exported as
// ShardRouter) raises it horizontally: a bounded-load consistent-hash
// ring (virtual nodes, minimal remap on membership change) routes
// solve jobs by fingerprint and session operations by session id to
// one of N engine+session backends, so each shard's incremental path
// caches, landmark tables, and in-flight dedup stay hot for the keys
// it owns. Routing only places work — every backend runs the same
// deterministic solvers — so a cluster's outcomes are byte-identical
// to a single engine's. The router replaces block-on-full queueing
// with load shedding: a saturated shard fails fast with an overload
// error carrying a retry-after hint (queue depth × mean solve
// latency, jittered), which ufpserve surfaces as HTTP 429 +
// Retry-After; Config.BlockOnFull restores blocking for single-tenant
// CLI use. cmd/ufpserve wires the router in-process (-shards N), and
// its -route mode proxies misrouted session calls to static peer
// ufpserve processes (-peers, -self) with request-id propagation —
// see the README's "Cluster operations" section for flags, metric
// families (ufp_shard_*, ufp_route_*), and the ufpbench -load
// -targets replay driver that closes the loop in CI.
package truthfulufp
