package truthfulufp_test

import (
	"math"
	"testing"

	"truthfulufp"
	"truthfulufp/internal/workload"
)

func tinyInstance() *truthfulufp.Instance {
	g := truthfulufp.NewGraph(2)
	g.AddEdge(0, 1, 30)
	return &truthfulufp.Instance{G: g, Requests: []truthfulufp.Request{
		{Source: 0, Target: 1, Demand: 1, Value: 2},
		{Source: 0, Target: 1, Demand: 0.5, Value: 1},
	}}
}

func TestFacadeSolveUFP(t *testing.T) {
	a, err := truthfulufp.SolveUFP(tinyInstance(), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != 3 {
		t.Fatalf("value = %g, want 3 (both requests fit)", a.Value)
	}
}

func TestFacadeMechanism(t *testing.T) {
	out, err := truthfulufp.RunUFPMechanism(tinyInstance(), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payments) != 2 {
		t.Fatalf("payments for %d winners, want 2", len(out.Payments))
	}
	for r, pay := range out.Payments {
		if pay < -1e-9 {
			t.Fatalf("negative payment %g for %d", pay, r)
		}
	}
}

func TestFacadeAuction(t *testing.T) {
	inst := &truthfulufp.AuctionInstance{
		Multiplicity: []float64{30, 30},
		Requests: []truthfulufp.AuctionRequest{
			{Bundle: []int{0}, Value: 2},
			{Bundle: []int{0, 1}, Value: 1},
		},
	}
	a, err := truthfulufp.SolveMUCA(inst, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value <= 0 {
		t.Fatal("auction allocated nothing")
	}
	out, err := truthfulufp.RunAuctionMechanism(inst, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payments) != len(a.Selected) {
		t.Fatalf("payments %d != winners %d", len(out.Payments), len(a.Selected))
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	inst := tinyInstance()
	data, err := truthfulufp.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	back, err := truthfulufp.UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.NumVertices() != 2 || back.G.NumEdges() != 1 || len(back.Requests) != 2 {
		t.Fatalf("round trip lost structure: %v", back)
	}
	if back.Requests[0] != inst.Requests[0] {
		t.Fatalf("request mismatch: %+v vs %+v", back.Requests[0], inst.Requests[0])
	}
	if back.G.Directed() != inst.G.Directed() {
		t.Fatal("directedness lost")
	}
	a1, _ := truthfulufp.SolveUFP(inst, 0.5, nil)
	a2, _ := truthfulufp.SolveUFP(back, 0.5, nil)
	if a1.Value != a2.Value {
		t.Fatalf("solve differs after round trip: %g vs %g", a1.Value, a2.Value)
	}
}

func TestInstanceJSONUndirected(t *testing.T) {
	g := truthfulufp.NewUndirectedGraph(3)
	g.AddEdge(0, 1, 30)
	g.AddEdge(1, 2, 30)
	inst := &truthfulufp.Instance{G: g, Requests: []truthfulufp.Request{
		{Source: 2, Target: 0, Demand: 1, Value: 1},
	}}
	data, err := truthfulufp.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	back, err := truthfulufp.UnmarshalInstance(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := truthfulufp.SolveUFP(back, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != 1 {
		t.Fatalf("undirected round-trip solve = %g, want 1", a.Value)
	}
}

func TestInstanceJSONRejectsBadEdges(t *testing.T) {
	bad := []byte(`{"directed":true,"vertices":2,"edges":[{"from":0,"to":9,"capacity":1}],"requests":[]}`)
	if _, err := truthfulufp.UnmarshalInstance(bad); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := truthfulufp.UnmarshalInstance([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestAuctionJSONRoundTrip(t *testing.T) {
	inst := &truthfulufp.AuctionInstance{
		Multiplicity: []float64{3, 4},
		Requests: []truthfulufp.AuctionRequest{
			{Bundle: []int{0, 1}, Value: 1.5},
		},
	}
	data, err := truthfulufp.MarshalAuction(inst)
	if err != nil {
		t.Fatal(err)
	}
	back, err := truthfulufp.UnmarshalAuction(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumItems() != 2 || len(back.Requests) != 1 || back.Requests[0].Value != 1.5 {
		t.Fatalf("auction round trip lost data: %+v", back)
	}
}

func TestFacadeBaselines(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	inst, err := workload.RandomUFP(workload.NewRNG(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := truthfulufp.SequentialPrimalDual(inst, 0.25, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := truthfulufp.GreedyByDensity(inst, nil); err != nil {
		t.Fatal(err)
	}
	rr, err := truthfulufp.RandomizedRounding(smallContended(), workload.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := rr.CheckFeasible(smallContended(), false); err != nil {
		t.Fatal(err)
	}
}

func smallContended() *truthfulufp.Instance {
	g := truthfulufp.NewGraph(2)
	g.AddEdge(0, 1, 2)
	return &truthfulufp.Instance{G: g, Requests: []truthfulufp.Request{
		{Source: 0, Target: 1, Demand: 1, Value: 2},
		{Source: 0, Target: 1, Demand: 1, Value: 1},
		{Source: 0, Target: 1, Demand: 1, Value: 1.5},
	}}
}

func TestFacadeRepeat(t *testing.T) {
	a, err := truthfulufp.SolveUFPRepeat(tinyInstance(), 0.6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Routed) <= 2 {
		t.Fatalf("repetitions variant routed only %d", len(a.Routed))
	}
	if math.IsInf(a.DualBound, 1) {
		t.Fatal("no dual bound tracked")
	}
}
