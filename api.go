package truthfulufp

import (
	"math/rand/v2"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/engine"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/mechanism"
	"truthfulufp/internal/scenario"
)

// Re-exported UFP types. See internal/core for full documentation.
type (
	// Request is a connection request (source, target, demand, value).
	Request = core.Request
	// Instance is a UFP instance: capacitated graph plus requests.
	Instance = core.Instance
	// Allocation is an algorithm outcome: routed (request, path) pairs.
	Allocation = core.Allocation
	// Routed is one (request, path) pair of an allocation.
	Routed = core.Routed
	// Options tunes the solvers (workers, tie-breaking, iteration caps).
	Options = core.Options
	// Graph is an edge-capacitated directed or undirected multigraph.
	Graph = graph.Graph
)

// Re-exported auction types. See internal/auction.
type (
	// AuctionRequest is a single-minded bundle request.
	AuctionRequest = auction.Request
	// AuctionInstance is a multi-unit combinatorial auction instance.
	AuctionInstance = auction.Instance
	// AuctionAllocation is an auction algorithm outcome.
	AuctionAllocation = auction.Allocation
)

// Mechanism outcomes (allocation + critical-value payments).
type (
	// UFPOutcome pairs a UFP allocation with per-winner payments.
	UFPOutcome = mechanism.UFPOutcome
	// AuctionOutcome pairs an auction allocation with payments.
	AuctionOutcome = mechanism.AuctionOutcome
)

// Re-exported solve-engine types. See internal/engine: a long-running
// concurrent solve service with inter-job sharding, in-flight
// deduplication, and a keyed result cache, serving exactly the same
// answers as the direct entry points below.
type (
	// Engine is the concurrent solve service (create with NewEngine).
	Engine = engine.Engine
	// EngineConfig tunes an Engine (workers, cache size, queue depth).
	EngineConfig = engine.Config
	// EngineSnapshot is a point-in-time view of an Engine's counters.
	EngineSnapshot = engine.Snapshot
	// Job is one unit of work for an Engine.
	Job = engine.Job
	// JobKind names the algorithm a Job runs.
	JobKind = engine.Kind
	// JobResult is a completed Job's output.
	JobResult = engine.Result
)

// Engine job kinds.
const (
	JobSolveUFP         = engine.JobSolveUFP
	JobBoundedUFP       = engine.JobBoundedUFP
	JobSolveUFPRepeat   = engine.JobSolveUFPRepeat
	JobSequentialUFP    = engine.JobSequentialUFP
	JobGreedyUFP        = engine.JobGreedyUFP
	JobUFPMechanism     = engine.JobUFPMechanism
	JobSolveMUCA        = engine.JobSolveMUCA
	JobAuctionMechanism = engine.JobAuctionMechanism
)

// ErrEngineClosed is returned by Engine.Do after Engine.Close.
var ErrEngineClosed = engine.ErrClosed

// NewEngine starts a concurrent solve service. Callers own its shutdown
// via Engine.Close.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// Scenario catalog re-exports. See internal/scenario: named, seeded,
// parameterized generators of realistic instance families (datacenter
// fat-trees, ISP backbones, scale-free/small-world graphs, metro rings,
// single-sink star-of-trees) × demand models (gravity, hotspot, Zipf,
// hose) × capacity regimes. cmd/ufpgen is the CLI front end.
type (
	// ScenarioConfig names and parameterizes one scenario.
	ScenarioConfig = scenario.Config
	// ScenarioTopology is a named topology family in the catalog.
	ScenarioTopology = scenario.Topology
	// ScenarioDemandModel is a named demand model in the catalog.
	ScenarioDemandModel = scenario.DemandModel
)

// GenerateScenario builds a scenario's UFP instance, deterministic in
// (topology, demand, params, seed).
func GenerateScenario(cfg ScenarioConfig) (*Instance, error) { return scenario.Generate(cfg) }

// GenerateScenarioAuction builds a scenario's auction instance by the
// path-bundle reduction.
func GenerateScenarioAuction(cfg ScenarioConfig) (*AuctionInstance, error) {
	return scenario.GenerateAuction(cfg)
}

// ScenarioTopologies lists the registered topology families by name.
func ScenarioTopologies() []ScenarioTopology { return scenario.Topologies() }

// ScenarioDemands lists the registered demand models by name.
func ScenarioDemands() []ScenarioDemandModel { return scenario.Demands() }

// NewGraph returns an empty directed graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewUndirectedGraph returns an empty undirected graph with n vertices.
func NewUndirectedGraph(n int) *Graph { return graph.NewUndirected(n) }

// SolveUFP runs the paper's headline algorithm with the Theorem 3.1
// calling convention (Bounded-UFP with accuracy ε/6): feasible, monotone,
// exact, and ((1+ε)·e/(e-1))-approximate for B >= ln(m)/ε²-bounded
// instances.
func SolveUFP(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SolveUFP(inst, eps, opt)
}

// BoundedUFP runs Algorithm 1 with the raw accuracy parameter (see
// internal/core.BoundedUFP for the exact semantics and the dual bound).
func BoundedUFP(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.BoundedUFP(inst, eps, opt)
}

// SolveUFPRepeat runs Algorithm 3 with the Theorem 5.1 convention:
// (1+ε)-approximate when repetitions are allowed.
func SolveUFPRepeat(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SolveUFPRepeat(inst, eps, opt)
}

// SequentialPrimalDual is the single-pass exponential-price baseline
// (our stand-in for the ≈e prior art); also monotone.
func SequentialPrimalDual(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SequentialPrimalDual(inst, eps, opt)
}

// GreedyByDensity is the classic value-density greedy baseline.
func GreedyByDensity(inst *Instance, opt *Options) (*Allocation, error) {
	return core.GreedyByDensity(inst, opt)
}

// RandomizedRounding is the non-truthful LP-rounding baseline; rng makes
// it deterministic per seed.
func RandomizedRounding(inst *Instance, rng *rand.Rand) (*Allocation, error) {
	return core.RandomizedRounding(inst, rng, core.RoundingOptions{})
}

// AuctionOptions tune the auction solvers (cancellation, tie-breaking,
// iteration caps). See internal/auction.Options.
type AuctionOptions = auction.Options

// SolveMUCA runs Algorithm 2 with the Theorem 4.1 calling convention
// (Bounded-MUCA with accuracy ε/6). opt may be nil.
func SolveMUCA(inst *AuctionInstance, eps float64, opt *AuctionOptions) (*AuctionAllocation, error) {
	return auction.SolveMUCA(inst, eps, opt)
}

// BoundedMUCA runs Algorithm 2 with the raw accuracy parameter. opt may
// be nil.
func BoundedMUCA(inst *AuctionInstance, eps float64, opt *AuctionOptions) (*AuctionAllocation, error) {
	return auction.BoundedMUCA(inst, eps, opt)
}

// RunUFPMechanism runs Bounded-UFP(eps) and charges every winner its
// critical value: the truthful mechanism of Corollary 3.2.
func RunUFPMechanism(inst *Instance, eps float64, opt *Options) (*UFPOutcome, error) {
	return mechanism.RunUFPMechanism(mechanism.BoundedUFPAlg(eps, opt), inst)
}

// RunAuctionMechanism runs Bounded-MUCA(eps) with critical-value
// payments: the truthful mechanism of Corollary 4.2, truthful even for
// unknown single-minded agents.
func RunAuctionMechanism(inst *AuctionInstance, eps float64) (*AuctionOutcome, error) {
	return mechanism.RunAuctionMechanism(mechanism.BoundedMUCAAlg(eps, nil), inst)
}
