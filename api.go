package truthfulufp

import (
	"context"
	"math/rand/v2"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/engine"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/mechanism"
	"truthfulufp/internal/metrics"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/scenario"
	"truthfulufp/internal/session"
	"truthfulufp/internal/shard"
	"truthfulufp/internal/solver"
)

// Re-exported UFP types. See internal/core for full documentation.
type (
	// Request is a connection request (source, target, demand, value).
	Request = core.Request
	// Instance is a UFP instance: capacitated graph plus requests.
	Instance = core.Instance
	// Allocation is an algorithm outcome: routed (request, path) pairs.
	Allocation = core.Allocation
	// Routed is one (request, path) pair of an allocation.
	Routed = core.Routed
	// Options tunes the solvers (workers, tie-breaking, iteration caps).
	Options = core.Options
	// Graph is an edge-capacitated directed or undirected multigraph.
	Graph = graph.Graph
)

// Re-exported auction types. See internal/auction.
type (
	// AuctionRequest is a single-minded bundle request.
	AuctionRequest = auction.Request
	// AuctionInstance is a multi-unit combinatorial auction instance.
	AuctionInstance = auction.Instance
	// AuctionAllocation is an auction algorithm outcome.
	AuctionAllocation = auction.Allocation
)

// Mechanism outcomes (allocation + critical-value payments).
type (
	// UFPOutcome pairs a UFP allocation with per-winner payments.
	UFPOutcome = mechanism.UFPOutcome
	// AuctionOutcome pairs an auction allocation with payments.
	AuctionOutcome = mechanism.AuctionOutcome
)

// Re-exported solve-engine types. See internal/engine: a long-running
// concurrent solve service with inter-job sharding, in-flight
// deduplication, and a keyed result cache, serving exactly the same
// answers as the direct entry points below.
type (
	// Engine is the concurrent solve service (create with NewEngine).
	Engine = engine.Engine
	// EngineConfig tunes an Engine (workers, cache size, queue depth).
	EngineConfig = engine.Config
	// EngineSnapshot is a point-in-time view of an Engine's counters.
	EngineSnapshot = engine.Snapshot
	// Job is one unit of work for an Engine; Job.Algorithm names the
	// solver by registry name (the pre-v1 JobKind enum is gone).
	Job = engine.Job
	// JobResult is a completed Job's output.
	JobResult = engine.Result
	// EngineOverloadError is the concrete error behind
	// ErrEngineOverloaded, carrying the Retry-After hint.
	EngineOverloadError = engine.OverloadError
)

// Re-exported shard types. See internal/shard: the horizontal
// scale-out layer — a bounded-load consistent-hash ring routing jobs
// by instance fingerprint and session operations by session id across
// N engine/session backends inside one process.
type (
	// ShardRouter fronts N engine/session backends behind the
	// consistent-hash ring (create with NewShardRouter).
	ShardRouter = shard.Router
	// ShardConfig tunes a ShardRouter (shard count, per-backend engine
	// config, ring replicas, bounded-load factor, node id prefix).
	ShardConfig = shard.Config
	// ShardSnapshot is a point-in-time view of a router's cluster.
	ShardSnapshot = shard.Snapshot
	// ShardRing is the bounded-load consistent-hash ring itself.
	ShardRing = shard.Ring
)

// NewShardRouter starts a sharded serving cluster in-process. Callers
// own its shutdown via ShardRouter.Close.
func NewShardRouter(cfg ShardConfig) *ShardRouter { return shard.New(cfg) }

// NewShardRing builds a bounded-load consistent-hash ring over the
// given members (replicas <= 0 and loadFactor <= 1 select defaults).
func NewShardRing(members []string, replicas int, loadFactor float64) *ShardRing {
	return shard.NewRing(members, replicas, loadFactor)
}

// The v1 solver registry. See internal/solver: every allocation
// algorithm in the module — the UFP solvers and baselines, the auction
// solvers, and both truthful mechanisms — is registered under a stable
// name and callable through one context-first signature,
// Solve(ctx, SolverInput, SolverParams). The registry is what the
// engine's Job.Algorithm, ufpserve's /v1 endpoints, and the -alg flags
// of ufprun/aucrun/ufpbench dispatch through; registering a new solver
// surfaces it in all of them at once.
type (
	// Solver is one registered allocation algorithm.
	Solver = solver.Solver
	// SolverKind classifies a solver's input/output shape.
	SolverKind = solver.Kind
	// SolverInput carries the instance a solver consumes.
	SolverInput = solver.Input
	// SolverParams is the unified v1 parameter block (ε, tie-breaks,
	// iteration caps, incremental toggles, seed).
	SolverParams = solver.Params
	// SolverOutput is a solve result (one payload field set, per kind).
	SolverOutput = solver.Output
)

// Solver kinds.
const (
	SolverUFP              = solver.KindUFP
	SolverUFPMechanism     = solver.KindUFPMechanism
	SolverAuction          = solver.KindAuction
	SolverAuctionMechanism = solver.KindAuctionMechanism
)

// RegisterSolver adds a solver to the process-wide registry (panics on
// duplicate names). It is immediately dispatchable by every consumer of
// the registry.
func RegisterSolver(s Solver) { solver.Register(s) }

// LookupSolver returns the solver registered under name.
func LookupSolver(name string) (Solver, bool) { return solver.Lookup(name) }

// Solvers returns every registered solver, sorted by name.
func Solvers() []Solver { return solver.Solvers() }

// SolverNames returns every registered solver name, sorted.
func SolverNames() []string { return solver.Names() }

// SolverDescription returns a solver's one-line description ("" if it
// has none).
func SolverDescription(s Solver) string { return solver.Description(s) }

// SolverDefaultMaxIterations returns the main-loop cap a solver applies
// when Params.MaxIterations is zero (0 = zero means unlimited). The
// pseudo-polynomial repeat variants default to
// solver.DefaultRepeatMaxIterations so registry-dispatched jobs cannot
// run away uncapped.
func SolverDefaultMaxIterations(s Solver) int { return solver.DefaultMaxIterations(s) }

// Re-exported observability types. See internal/metrics: a stdlib-only
// set of concurrency-safe instruments (counters, gauges, fixed-bucket
// latency histograms with quantile extraction) bound to a registry
// that writes the Prometheus text exposition format. Every serving
// layer registers into one registry via Engine.RegisterMetrics, which
// cmd/ufpserve serves at GET /metrics.
type (
	// MetricsRegistry is a concurrency-safe collection of metric
	// families with a text-exposition writer (create with
	// NewMetricsRegistry).
	MetricsRegistry = metrics.Registry
	// MetricsFamily is one metric name with its help text, type, and
	// label schema.
	MetricsFamily = metrics.Family
	// MetricsCounter is a monotonically increasing instrument.
	MetricsCounter = metrics.Counter
	// MetricsGauge is an instrument whose value can go up and down.
	MetricsGauge = metrics.Gauge
	// MetricsHistogram is a fixed-bucket distribution instrument with
	// p50/p95/p99/p999 extraction.
	MetricsHistogram = metrics.Histogram
	// MetricsHistogramSnapshot is a point-in-time histogram copy.
	MetricsHistogramSnapshot = metrics.HistogramSnapshot
	// PathCacheStats is the incremental path cache's observer view
	// (refresh counts, dirty-source split, PathTo hit/miss split); see
	// AdmissionState.CacheStats and SessionManager.PathCacheStats.
	PathCacheStats = pathfind.CacheStats
)

// MetricsTextContentType is the Content-Type of the exposition format
// MetricsRegistry writes.
const MetricsTextContentType = metrics.TextContentType

// MetricsDefLatencyBuckets is the default latency bucket layout
// (seconds, exponential from 1µs to ~33s).
var MetricsDefLatencyBuckets = metrics.DefLatencyBuckets

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewMetricsHistogram builds a standalone histogram over the given
// strictly increasing finite upper bounds.
func NewMetricsHistogram(bounds []float64) *MetricsHistogram { return metrics.NewHistogram(bounds) }

// MetricsExponentialBuckets returns count histogram upper bounds
// starting at start and growing by factor.
func MetricsExponentialBuckets(start, factor float64, count int) []float64 {
	return metrics.ExponentialBuckets(start, factor, count)
}

// ErrEngineClosed is returned by Engine.Do after Engine.Close.
var ErrEngineClosed = engine.ErrClosed

// ErrEngineOverloaded is matched by errors.Is when Engine.Do sheds a
// job on a full queue (EngineConfig.BlockOnFull unset). The concrete
// error is an *EngineOverloadError carrying a jittered retry hint.
var ErrEngineOverloaded = engine.ErrOverloaded

// NewEngine starts a concurrent solve service. Callers own its shutdown
// via Engine.Close.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// Re-exported session types. See internal/session and internal/core's
// AdmissionState: the stateful serving layer for the paper's online
// setting — register a network once, then stream admit / quote /
// release calls against its persistent prices, flows, and warm path
// cache. ufpserve's /v1/networks endpoints are the HTTP face of the
// same layer (via Engine.Sessions).
type (
	// SessionManager owns live sessions: registration, lookup, LRU/TTL
	// eviction (create with NewSessionManager or reach the engine's via
	// Engine.Sessions).
	SessionManager = session.Manager
	// SessionConfig tunes a SessionManager (max sessions, idle TTL).
	SessionConfig = session.Config
	// Session is one registered network's live solver state.
	Session = session.Session
	// SessionInfo is a point-in-time view of one session.
	SessionInfo = session.Info
	// SessionStats is a manager's fleet-wide counters.
	SessionStats = session.Stats
	// AdmissionState is the persistent online solver state a Session
	// wraps (prices, flows, ledger, warm path cache); use it directly
	// for single-threaded embedding without manager lifecycle.
	AdmissionState = core.AdmissionState
	// AdmitDecision is the outcome of one admission or quote.
	AdmitDecision = core.Decision
	// RejectReason says why an admission was declined ("no-path",
	// "price", "capacity").
	RejectReason = core.RejectReason
	// AdmittedRequest is one live ledger entry of an admission state.
	AdmittedRequest = core.AdmittedRequest
)

// Reject reasons (stable wire values).
const (
	RejectNoPath   = core.RejectNoPath
	RejectPrice    = core.RejectPrice
	RejectCapacity = core.RejectCapacity
)

// ErrSessionClosed is returned by session operations after the session
// was closed or evicted.
var ErrSessionClosed = session.ErrSessionClosed

// NewSessionManager builds a standalone session manager. Servers
// normally use the engine's (Engine.Sessions), which shares the
// engine's scratch pool.
func NewSessionManager(cfg SessionConfig) *SessionManager { return session.NewManager(cfg) }

// NewAdmissionState builds the online solver state for a network (see
// core.NewAdmissionState). The graph is frozen; eps is the accuracy
// parameter ε in (0,1].
func NewAdmissionState(g *Graph, eps float64, opt *Options) (*AdmissionState, error) {
	return core.NewAdmissionState(g, eps, opt)
}

// Scenario catalog re-exports. See internal/scenario: named, seeded,
// parameterized generators of realistic instance families (datacenter
// fat-trees, ISP backbones, scale-free/small-world graphs, metro rings,
// single-sink star-of-trees) × demand models (gravity, hotspot, Zipf,
// hose) × capacity regimes. cmd/ufpgen is the CLI front end.
type (
	// ScenarioConfig names and parameterizes one scenario.
	ScenarioConfig = scenario.Config
	// ScenarioTopology is a named topology family in the catalog.
	ScenarioTopology = scenario.Topology
	// ScenarioDemandModel is a named demand model in the catalog.
	ScenarioDemandModel = scenario.DemandModel
)

// GenerateScenario builds a scenario's UFP instance, deterministic in
// (topology, demand, params, seed).
func GenerateScenario(cfg ScenarioConfig) (*Instance, error) { return scenario.Generate(cfg) }

// GenerateScenarioAuction builds a scenario's auction instance by the
// path-bundle reduction.
func GenerateScenarioAuction(cfg ScenarioConfig) (*AuctionInstance, error) {
	return scenario.GenerateAuction(cfg)
}

// ScenarioTopologies lists the registered topology families by name.
func ScenarioTopologies() []ScenarioTopology { return scenario.Topologies() }

// ScenarioDemands lists the registered demand models by name.
func ScenarioDemands() []ScenarioDemandModel { return scenario.Demands() }

// NewGraph returns an empty directed graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewUndirectedGraph returns an empty undirected graph with n vertices.
func NewUndirectedGraph(n int) *Graph { return graph.NewUndirected(n) }

// The free functions below are the pre-v1 entry points, kept as thin
// wrappers: each is equivalent to dispatching its registry name (noted
// per function) through LookupSolver(...).Solve with a background
// context. The *Ctx variants are the context-first v1 spellings of the
// same calls.

// SolveUFP runs the paper's headline algorithm with the Theorem 3.1
// calling convention (Bounded-UFP with accuracy ε/6): feasible, monotone,
// exact, and ((1+ε)·e/(e-1))-approximate for B >= ln(m)/ε²-bounded
// instances. Registry name: "ufp/solve".
func SolveUFP(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SolveUFP(inst, eps, opt)
}

// SolveUFPCtx is SolveUFP under a context (checked every main-loop
// iteration).
func SolveUFPCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SolveUFPCtx(ctx, inst, eps, opt)
}

// BoundedUFP runs Algorithm 1 with the raw accuracy parameter (see
// internal/core.BoundedUFP for the exact semantics and the dual bound).
// Registry name: "ufp/bounded".
func BoundedUFP(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.BoundedUFP(inst, eps, opt)
}

// BoundedUFPCtx is BoundedUFP under a context.
func BoundedUFPCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.BoundedUFPCtx(ctx, inst, eps, opt)
}

// SolveUFPRepeat runs Algorithm 3 with the Theorem 5.1 convention:
// (1+ε)-approximate when repetitions are allowed. Registry name:
// "ufp/repeat".
func SolveUFPRepeat(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SolveUFPRepeat(inst, eps, opt)
}

// SolveUFPRepeatCtx is SolveUFPRepeat under a context.
func SolveUFPRepeatCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SolveUFPRepeatCtx(ctx, inst, eps, opt)
}

// SequentialPrimalDual is the single-pass exponential-price baseline
// (our stand-in for the ≈e prior art); also monotone. Registry name:
// "ufp/sequential".
func SequentialPrimalDual(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SequentialPrimalDual(inst, eps, opt)
}

// SequentialPrimalDualCtx is SequentialPrimalDual under a context.
func SequentialPrimalDualCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.SequentialPrimalDualCtx(ctx, inst, eps, opt)
}

// OnlineAdmission is the batch spelling of the session layer's online
// admission rule: it streams the instance's requests in input order
// through a fresh AdmissionState — pure-price routing plus a
// residual-capacity post-check, identical step for step to what a
// session serves — and reports the admitted set. Registry name:
// "ufp/online".
func OnlineAdmission(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.OnlineAdmission(inst, eps, opt)
}

// OnlineAdmissionCtx is OnlineAdmission under a context.
func OnlineAdmissionCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return core.OnlineAdmissionCtx(ctx, inst, eps, opt)
}

// GreedyByDensity is the classic value-density greedy baseline.
// Registry name: "ufp/greedy".
func GreedyByDensity(inst *Instance, opt *Options) (*Allocation, error) {
	return core.GreedyByDensity(inst, opt)
}

// GreedyByDensityCtx is GreedyByDensity under a context.
func GreedyByDensityCtx(ctx context.Context, inst *Instance, opt *Options) (*Allocation, error) {
	return core.GreedyByDensityCtx(ctx, inst, opt)
}

// RandomizedRounding is the non-truthful LP-rounding baseline; rng makes
// it deterministic per seed. Registry name: "ufp/rounding" (which
// derives its rng from SolverParams.Seed as rand.NewPCG(seed, 0)).
func RandomizedRounding(inst *Instance, rng *rand.Rand) (*Allocation, error) {
	return core.RandomizedRounding(inst, rng, core.RoundingOptions{})
}

// RandomizedRoundingCtx is RandomizedRounding under a context (checked
// before the LP solve and per rounding attempt).
func RandomizedRoundingCtx(ctx context.Context, inst *Instance, rng *rand.Rand) (*Allocation, error) {
	return core.RandomizedRoundingCtx(ctx, inst, rng, core.RoundingOptions{})
}

// AuctionOptions tune the auction solvers (cancellation, tie-breaking,
// iteration caps). See internal/auction.Options.
type AuctionOptions = auction.Options

// SolveMUCA runs Algorithm 2 with the Theorem 4.1 calling convention
// (Bounded-MUCA with accuracy ε/6). opt may be nil. Registry name:
// "muca/solve".
func SolveMUCA(inst *AuctionInstance, eps float64, opt *AuctionOptions) (*AuctionAllocation, error) {
	return auction.SolveMUCA(inst, eps, opt)
}

// SolveMUCACtx is SolveMUCA under a context.
func SolveMUCACtx(ctx context.Context, inst *AuctionInstance, eps float64, opt *AuctionOptions) (*AuctionAllocation, error) {
	return auction.SolveMUCACtx(ctx, inst, eps, opt)
}

// BoundedMUCA runs Algorithm 2 with the raw accuracy parameter. opt may
// be nil. Registry name: "muca/bounded".
func BoundedMUCA(inst *AuctionInstance, eps float64, opt *AuctionOptions) (*AuctionAllocation, error) {
	return auction.BoundedMUCA(inst, eps, opt)
}

// BoundedMUCACtx is BoundedMUCA under a context.
func BoundedMUCACtx(ctx context.Context, inst *AuctionInstance, eps float64, opt *AuctionOptions) (*AuctionAllocation, error) {
	return auction.BoundedMUCACtx(ctx, inst, eps, opt)
}

// RunUFPMechanism runs Bounded-UFP(eps) and charges every winner its
// critical value: the truthful mechanism of Corollary 3.2. Registry
// name: "ufp/mechanism".
func RunUFPMechanism(inst *Instance, eps float64, opt *Options) (*UFPOutcome, error) {
	return mechanism.RunUFPMechanism(mechanism.BoundedUFPAlg(eps, opt), inst)
}

// RunUFPMechanismCtx is RunUFPMechanism under a context: the context
// reaches both the mechanism driver (between payments) and every
// critical-value probe's main loop.
func RunUFPMechanismCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*UFPOutcome, error) {
	return mechanism.RunUFPMechanismCtx(ctx, mechanism.BoundedUFPAlgCtx(ctx, eps, opt), inst)
}

// RunAuctionMechanism runs Bounded-MUCA(eps, opt) with critical-value
// payments: the truthful mechanism of Corollary 4.2, truthful even for
// unknown single-minded agents. opt may be nil; like the UFP sibling, a
// non-nil opt reaches every critical-value probe, so opt.Ctx (or better,
// RunAuctionMechanismCtx) cancels mechanism runs mid-search. Registry
// name: "muca/mechanism".
func RunAuctionMechanism(inst *AuctionInstance, eps float64, opt *AuctionOptions) (*AuctionOutcome, error) {
	return mechanism.RunAuctionMechanism(mechanism.BoundedMUCAAlg(eps, opt), inst)
}

// RunAuctionMechanismCtx is RunAuctionMechanism under a context.
func RunAuctionMechanismCtx(ctx context.Context, inst *AuctionInstance, eps float64, opt *AuctionOptions) (*AuctionOutcome, error) {
	return mechanism.RunAuctionMechanismCtx(ctx, mechanism.BoundedMUCAAlgCtx(ctx, eps, opt), inst)
}
