// Benchmarks: one testing.B entry per experiment in DESIGN.md's index
// (tables/figures of the paper), plus microbenchmarks for the substrate
// hot paths and the ablations DESIGN.md calls out (parallel shortest
// paths, LP-bounded branch and bound). Experiment benches run at reduced
// scale; cmd/ufpbench regenerates the full tables.
package truthfulufp_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/bench"
	"truthfulufp/internal/core"
	"truthfulufp/internal/engine"
	"truthfulufp/internal/experiments"
	"truthfulufp/internal/lowerbound"
	"truthfulufp/internal/lp"
	"truthfulufp/internal/mcf"
	"truthfulufp/internal/mechanism"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/workload"
)

// benchConfig keeps experiment benches quick while exercising the full
// code path of every table.
var benchConfig = experiments.Config{Scale: 0.3, Seeds: 1}

func benchExperiment(b *testing.B, run func(experiments.Config) (*experiments.Report, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := run(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1Theorem31(b *testing.B)    { benchExperiment(b, experiments.E1Theorem31) }
func BenchmarkE2Staircase(b *testing.B)    { benchExperiment(b, experiments.E2Staircase) }
func BenchmarkE3SevenVertex(b *testing.B)  { benchExperiment(b, experiments.E3SevenVertex) }
func BenchmarkE4MUCA(b *testing.B)         { benchExperiment(b, experiments.E4MUCA) }
func BenchmarkE5MUCAGrid(b *testing.B)     { benchExperiment(b, experiments.E5MUCAGrid) }
func BenchmarkE6Repetitions(b *testing.B)  { benchExperiment(b, experiments.E6Repetitions) }
func BenchmarkE7Truthfulness(b *testing.B) { benchExperiment(b, experiments.E7Truthfulness) }
func BenchmarkE8Rounding(b *testing.B)     { benchExperiment(b, experiments.E8Rounding) }
func BenchmarkE9Comparison(b *testing.B)   { benchExperiment(b, experiments.E9Comparison) }
func BenchmarkF1LPGap(b *testing.B)        { benchExperiment(b, experiments.F1LPGap) }
func BenchmarkS1Scenarios(b *testing.B)    { benchExperiment(b, experiments.S1Scenarios) }

// BenchmarkBoundedUFP measures the core solver across instance sizes.
func BenchmarkBoundedUFP(b *testing.B) {
	for _, size := range []struct {
		name                string
		vertices, edges, rq int
	}{
		{"n12_m36_r60", 12, 36, 60},
		{"n24_m96_r150", 24, 96, 150},
		{"n48_m240_r300", 48, 240, 300},
	} {
		b.Run(size.name, func(b *testing.B) {
			cfg := workload.UFPConfig{
				Vertices: size.vertices, Edges: size.edges, Requests: size.rq,
				Directed: true, B: 40, CapSpread: 0.3,
				DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
			}
			inst, err := workload.RandomUFP(workload.NewRNG(1), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.BoundedUFP(inst, 0.25, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBoundedUFPWorkers is the parallelism ablation: per-iteration
// shortest paths with 1 worker versus many.
func BenchmarkBoundedUFPWorkers(b *testing.B) {
	cfg := workload.UFPConfig{
		Vertices: 32, Edges: 128, Requests: 200, Directed: true,
		B: 40, CapSpread: 0.3,
		DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	inst, err := workload.RandomUFP(workload.NewRNG(2), cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BoundedUFP(inst, 0.25, &core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineThroughput measures the concurrent solve engine's
// jobs/sec while sweeping the inter-job worker count from 1 to
// GOMAXPROCS. The client side keeps a fixed number of submissions in
// flight (independent of the worker count) over a pool of distinct
// NoCache jobs, so ns/op tracks engine capacity, not cache luck.
func BenchmarkEngineThroughput(b *testing.B) {
	maxprocs := runtime.GOMAXPROCS(0)
	poolSize := 64
	// Keep the pool larger than the in-flight window (2*GOMAXPROCS below)
	// so no two in-flight submissions share a key and coalesce.
	if 4*maxprocs > poolSize {
		poolSize = 4 * maxprocs
	}
	rng := workload.NewRNG(42)
	instances := make([]*core.Instance, poolSize)
	for i := range instances {
		inst, err := workload.RandomUFP(rng, workload.DefaultUFPConfig())
		if err != nil {
			b.Fatal(err)
		}
		instances[i] = inst
	}

	counts := []int{1}
	if maxprocs >= 2 {
		counts = append(counts, 2)
	}
	if maxprocs > 2 {
		counts = append(counts, maxprocs)
	}
	inFlight := 2 * maxprocs
	ctx := context.Background()
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			// BlockOnFull: the benchmark intentionally keeps more jobs in
			// flight than worker+queue slots; shedding would abort it.
			e := engine.New(engine.Config{Workers: workers, BlockOnFull: true})
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			sem := make(chan struct{}, inFlight)
			for i := 0; i < b.N; i++ {
				job := engine.Job{
					Algorithm: "ufp/bounded", Eps: 0.25,
					UFP: instances[i%poolSize], NoCache: true,
				}
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					if _, err := e.Do(ctx, job); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "jobs/sec")
			}
		})
	}
}

// BenchmarkEngineCacheHit measures the served-from-cache fast path.
func BenchmarkEngineCacheHit(b *testing.B) {
	inst, err := workload.RandomUFP(workload.NewRNG(43), workload.DefaultUFPConfig())
	if err != nil {
		b.Fatal(err)
	}
	e := engine.New(engine.Config{Workers: 1})
	defer e.Close()
	ctx := context.Background()
	job := engine.Job{Algorithm: "ufp/bounded", Eps: 0.25, UFP: inst}
	if _, err := e.Do(ctx, job); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Do(ctx, job)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkDijkstraCSR compares one pooled-scratch Dijkstra on the
// frozen CSR fast path against the adjacency-walk fallback (waxman
// backbone; shared with cmd/benchjson via internal/bench). testing.Short
// shrinks the instance, which is how CI's -benchtime=1x smoke avoids
// the full waxman-1k build.
func BenchmarkDijkstraCSR(b *testing.B) {
	bench.Group(b, "DijkstraCSR", testing.Short())
}

// BenchmarkIncrementalSolve is the original refactor's headline
// measurement: Bounded-UFP on the waxman-1k scenario with the
// dirty-source tree cache off (full-recompute) and on (incremental);
// allocations are identical, the ns/op ratio is the speedup (target
// ≥3×, see BENCH_path.json).
func BenchmarkIncrementalSolve(b *testing.B) {
	bench.Group(b, "IncrementalSolve", testing.Short())
}

// BenchmarkIncrementalBottleneck is the kind-generic cache's bottleneck
// measurement: the iterative path-min engine under BottleneckRule with
// the KindBottleneck dirty-source cache off and on (target ≥3×).
func BenchmarkIncrementalBottleneck(b *testing.B) {
	bench.Group(b, "IncrementalBottleneck", testing.Short())
}

// BenchmarkIncrementalBellman is the same measurement for LogHopsRule's
// hop-bounded Bellman-Ford tables (KindHopBounded; target ≥3×).
func BenchmarkIncrementalBellman(b *testing.B) {
	bench.Group(b, "IncrementalBellman", testing.Short())
}

// BenchmarkSingleTarget compares a full Dijkstra tree + PathTo against
// the early-exit single-target search behind the mechanism's payment
// bisection (Scratch.ShortestPathTo).
func BenchmarkSingleTarget(b *testing.B) {
	bench.Group(b, "SingleTarget", testing.Short())
}

// BenchmarkSessionAdmit is the stateful session API's headline: one
// streamed admit on a persistent AdmissionState (warm prices + path
// cache) versus the full batch online solve a stateless client re-runs
// per request.
func BenchmarkSessionAdmit(b *testing.B) {
	bench.Group(b, "SessionAdmit", testing.Short())
}

// BenchmarkScenarioCatalogSolve sweeps SolveUFP over every topology
// family at default size.
func BenchmarkScenarioCatalogSolve(b *testing.B) {
	bench.Group(b, "ScenarioCatalog", testing.Short())
}

// BenchmarkDijkstra measures the shortest-path oracle in isolation.
func BenchmarkDijkstra(b *testing.B) {
	cfg := workload.UFPConfig{
		Vertices: 200, Edges: 1200, Requests: 1, Directed: true,
		B: 10, CapSpread: 0.5,
		DemandMin: 0.5, DemandMax: 1, ValueMin: 1, ValueMax: 2,
	}
	inst, err := workload.RandomUFP(workload.NewRNG(3), cfg)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, inst.G.NumEdges())
	for e := range w {
		w[e] = 1 / inst.G.Edge(e).Capacity
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pathfind.Dijkstra(inst.G, i%inst.G.NumVertices(), pathfind.FromSlice(w))
	}
}

// BenchmarkSimplex measures the LP solver on a fractional UFP relaxation.
func BenchmarkSimplex(b *testing.B) {
	cfg := workload.UFPConfig{
		Vertices: 8, Edges: 20, Requests: 10, Directed: true,
		B: 5, CapSpread: 0.3,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	inst, err := workload.RandomUFP(workload.NewRNG(4), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FractionalUFP(inst, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplexRaw measures the simplex core on a dense packing LP.
func BenchmarkSimplexRaw(b *testing.B) {
	rng := workload.NewRNG(5)
	const n, m = 60, 30
	obj := make([]float64, n)
	rows := make([][]float64, m)
	for j := range obj {
		obj[j] = rng.Float64() + 0.1
	}
	for i := range rows {
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := lp.NewMaximize(n)
		for j, c := range obj {
			p.SetObjectiveCoeff(j, c)
		}
		for _, row := range rows {
			p.AddDense(row, lp.LE, 5)
		}
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("%v %v", err, sol.Status)
		}
	}
}

// BenchmarkBoundedMUCA measures the auction solver.
func BenchmarkBoundedMUCA(b *testing.B) {
	inst, err := auction.RandomInstance(workload.NewRNG(6), auction.RandomConfig{
		Items: 30, Requests: 300, B: 60, MultSpread: 0.3,
		BundleMin: 2, BundleMax: 6, ValueMin: 0.5, ValueMax: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := auction.BoundedMUCA(inst, 0.25, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepeat measures the repetitions variant (iteration count is
// pseudo-polynomial, so this is the heavy solver loop).
func BenchmarkRepeat(b *testing.B) {
	cfg := workload.UFPConfig{
		Vertices: 8, Edges: 20, Requests: 6, Directed: true,
		B: 80, CapSpread: 0.2,
		DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	inst, err := workload.RandomUFP(workload.NewRNG(7), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BoundedUFPRepeat(inst, 0.2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGargKonemann measures the fractional FPTAS.
func BenchmarkGargKonemann(b *testing.B) {
	cfg := workload.UFPConfig{
		Vertices: 16, Edges: 64, Requests: 20, Directed: true,
		B: 20, CapSpread: 0.3,
		DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	inst, err := workload.RandomUFP(workload.NewRNG(8), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcf.MaxProfitFlow(inst, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCriticalValue measures one truthful payment (≈60 algorithm
// re-runs via bisection).
func BenchmarkCriticalValue(b *testing.B) {
	cfg := workload.UFPConfig{
		Vertices: 10, Edges: 24, Requests: 60, Directed: true,
		B: 30, CapSpread: 0.3,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	inst, err := workload.RandomUFP(workload.NewRNG(9), cfg)
	if err != nil {
		b.Fatal(err)
	}
	alg := mechanism.BoundedUFPAlg(0.25, nil)
	base, err := alg(inst)
	if err != nil {
		b.Fatal(err)
	}
	if len(base.Routed) == 0 {
		b.Fatal("nothing selected")
	}
	winner := base.Routed[0].Request
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mechanism.UFPCriticalValue(alg, inst, winner); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaircaseEngine measures the reasonable-rule engine on the
// Figure 2 family (the E2 workhorse).
func BenchmarkStaircaseEngine(b *testing.B) {
	f := lowerbound.Staircase(16, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.IterativePathMin(f.Inst, core.EngineOptions{
			Rule: &core.ExpRule{}, Eps: 0.5, FeasibleOnly: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactOPT measures the branch-and-bound reference (with and
// without LP bounding: the pruning ablation).
func BenchmarkExactOPT(b *testing.B) {
	inst, err := auction.RandomInstance(workload.NewRNG(10), auction.RandomConfig{
		Items: 10, Requests: 18, B: 3, MultSpread: 0.5,
		BundleMin: 1, BundleMax: 4, ValueMin: 0.5, ValueMax: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := auction.ExactOPT(inst); err != nil {
			b.Fatal(err)
		}
	}
}
