package truthfulufp_test

import (
	"bytes"
	"context"
	"math/rand/v2"
	"testing"

	"truthfulufp"
	"truthfulufp/internal/core"
	"truthfulufp/internal/mcf"
	"truthfulufp/internal/scenario"
)

// registrySeed is the Job.Seed / rng seed used for randomized solvers in
// the equivalence sweep.
const registrySeed = 7

// repeatCap bounds the repeat variants, whose iteration count is
// pseudo-polynomial (m·c_max/d_min) — at raw ε on catalog capacity
// regimes an uncapped run takes millions of iterations. The cap applies
// identically on both sides of the equivalence, so it does not weaken
// the byte-identity claim.
const repeatCap = 200

// maxIterationsFor returns the Job/Options iteration cap for a solver.
func maxIterationsFor(name string) int {
	if name == "ufp/repeat" || name == "ufp/repeat-bounded" {
		return repeatCap
	}
	return 0
}

// directCall runs a registered algorithm's pre-v1 direct entry point —
// the golden reference the registry dispatch must reproduce byte for
// byte.
func directCall(t *testing.T, name string, eps float64, inst *truthfulufp.Instance, auc *truthfulufp.AuctionInstance) truthfulufp.SolverOutput {
	t.Helper()
	wrap := func(a *truthfulufp.Allocation, err error) truthfulufp.SolverOutput {
		t.Helper()
		if err != nil {
			t.Fatalf("direct %s: %v", name, err)
		}
		return truthfulufp.SolverOutput{Allocation: a}
	}
	wrapAuc := func(a *truthfulufp.AuctionAllocation, err error) truthfulufp.SolverOutput {
		t.Helper()
		if err != nil {
			t.Fatalf("direct %s: %v", name, err)
		}
		return truthfulufp.SolverOutput{AuctionAllocation: a}
	}
	switch name {
	case "ufp/solve":
		return wrap(truthfulufp.SolveUFP(inst, eps, nil))
	case "ufp/bounded":
		return wrap(truthfulufp.BoundedUFP(inst, eps, nil))
	case "ufp/repeat":
		return wrap(truthfulufp.SolveUFPRepeat(inst, eps, &truthfulufp.Options{MaxIterations: repeatCap}))
	case "ufp/repeat-bounded":
		return wrap(core.BoundedUFPRepeat(inst, eps, &core.Options{MaxIterations: repeatCap}))
	case "ufp/sequential":
		return wrap(truthfulufp.SequentialPrimalDual(inst, eps, nil))
	case "ufp/online":
		return wrap(truthfulufp.OnlineAdmission(inst, eps, nil))
	case "ufp/greedy":
		return wrap(truthfulufp.GreedyByDensity(inst, nil))
	case "ufp/fractional-gk":
		res, err := mcf.MaxProfitFlow(inst, eps)
		if err != nil {
			t.Fatalf("direct %s: %v", name, err)
		}
		return truthfulufp.SolverOutput{Allocation: res.Allocation()}
	case "ufp/rounding":
		return wrap(truthfulufp.RandomizedRounding(inst, rand.New(rand.NewPCG(registrySeed, 0))))
	case "ufp/mechanism":
		out, err := truthfulufp.RunUFPMechanism(inst, eps, nil)
		if err != nil {
			t.Fatalf("direct %s: %v", name, err)
		}
		return truthfulufp.SolverOutput{UFPOutcome: out}
	case "muca/solve":
		return wrapAuc(truthfulufp.SolveMUCA(auc, eps, nil))
	case "muca/bounded":
		return wrapAuc(truthfulufp.BoundedMUCA(auc, eps, nil))
	case "muca/mechanism":
		out, err := truthfulufp.RunAuctionMechanism(auc, eps, nil)
		if err != nil {
			t.Fatalf("direct %s: %v", name, err)
		}
		return truthfulufp.SolverOutput{AuctionOutcome: out}
	}
	t.Fatalf("solver %q has no direct reference in this test; add one", name)
	return truthfulufp.SolverOutput{}
}

func marshalOutput(t *testing.T, label string, out truthfulufp.SolverOutput) []byte {
	t.Helper()
	data, err := truthfulufp.MarshalSolverOutput(out)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return data
}

// TestRegistryMatchesDirectEntryPoints is the v1 API's golden gate:
// every registered solver, dispatched by name through
// engine.Job.Algorithm, returns byte-identical wire encodings to its
// pre-v1 direct entry point across the S1 scenario catalog. Allocation
// solvers sweep every topology × demand model at catalog defaults;
// mechanism solvers (whose critical-value payments cost ~60 re-runs per
// winner) sweep every topology at a reduced request count.
func TestRegistryMatchesDirectEntryPoints(t *testing.T) {
	const eps = 0.5
	eng := truthfulufp.NewEngine(truthfulufp.EngineConfig{Workers: 2})
	defer eng.Close()
	ctx := context.Background()

	check := func(t *testing.T, name string, cfg truthfulufp.ScenarioConfig) {
		t.Helper()
		s, ok := truthfulufp.LookupSolver(name)
		if !ok {
			t.Fatalf("solver %q vanished from the registry", name)
		}
		job := truthfulufp.Job{
			Algorithm: name, Eps: eps, Seed: registrySeed,
			MaxIterations: maxIterationsFor(name),
		}
		var inst *truthfulufp.Instance
		var auc *truthfulufp.AuctionInstance
		var err error
		if s.Kind().IsUFP() {
			if inst, err = truthfulufp.GenerateScenario(cfg); err != nil {
				t.Fatal(err)
			}
			job.UFP = inst
		} else {
			if auc, err = truthfulufp.GenerateScenarioAuction(cfg); err != nil {
				t.Fatal(err)
			}
			job.Auction = auc
		}
		res, err := eng.Do(ctx, job)
		if err != nil {
			t.Fatalf("engine %s: %v", name, err)
		}
		got := marshalOutput(t, "engine "+name, truthfulufp.SolverOutput{
			Allocation:        res.Allocation,
			AuctionAllocation: res.AuctionAllocation,
			UFPOutcome:        res.UFPOutcome,
			AuctionOutcome:    res.AuctionOutcome,
		})
		want := marshalOutput(t, "direct "+name, directCall(t, name, eps, inst, auc))
		if !bytes.Equal(got, want) {
			t.Errorf("%s on %s/%s: engine dispatch differs from direct call\nengine: %s\ndirect: %s",
				name, cfg.Topology, cfg.Demand, got, want)
		}
	}

	for _, s := range truthfulufp.Solvers() {
		// Mechanisms re-run their algorithm ~60× per winner, and
		// rounding's reference solves the fractional LP: sweep those at a
		// reduced request count, one config per topology.
		heavy := s.Kind().IsMechanism() || s.Name() == "ufp/rounding"
		t.Run(s.Name(), func(t *testing.T) {
			for _, topo := range scenario.Topologies() {
				if heavy {
					check(t, s.Name(), truthfulufp.ScenarioConfig{
						Topology: topo.Name, Requests: 12, Seed: 42,
					})
					continue
				}
				for _, dm := range scenario.Demands() {
					check(t, s.Name(), truthfulufp.ScenarioConfig{
						Topology: topo.Name, Demand: dm.Name, Seed: 42,
					})
				}
			}
		})
	}
}

// TestAlgorithmRequired: with the legacy Kind enum gone, a job must
// name a registered Algorithm; empty and unknown names are rejected
// before execution.
func TestAlgorithmRequired(t *testing.T) {
	inst, err := truthfulufp.GenerateScenario(truthfulufp.ScenarioConfig{Topology: "fattree", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := truthfulufp.NewEngine(truthfulufp.EngineConfig{Workers: 1})
	defer eng.Close()
	if _, err := eng.Do(context.Background(), truthfulufp.Job{Eps: 0.25, UFP: inst}); err == nil {
		t.Fatal("job without an Algorithm was accepted")
	}
	if _, err := eng.Do(context.Background(), truthfulufp.Job{
		Algorithm: "ufp/no-such-solver", Eps: 0.25, UFP: inst,
	}); err == nil {
		t.Fatal("job with an unregistered Algorithm was accepted")
	}
}

// TestDefaultMaxIterations: the pseudo-polynomial repeat variants carry
// a default iteration cap that (a) is reported by the registry
// metadata, (b) is applied when Params/Job leave MaxIterations zero,
// and (c) is normalized into the cache key, so the defaulted and
// explicit spellings share one execution.
func TestDefaultMaxIterations(t *testing.T) {
	inst, err := truthfulufp.GenerateScenario(truthfulufp.ScenarioConfig{Topology: "fattree", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ufp/repeat", "ufp/repeat-bounded"} {
		s, ok := truthfulufp.LookupSolver(name)
		if !ok {
			t.Fatalf("solver %q vanished from the registry", name)
		}
		def := truthfulufp.SolverDefaultMaxIterations(s)
		if def <= 0 {
			t.Fatalf("%s reports no default MaxIterations", name)
		}
		zero := truthfulufp.Job{Algorithm: name, Eps: 0.25, UFP: inst}
		expl := truthfulufp.Job{Algorithm: name, Eps: 0.25, MaxIterations: def, UFP: inst}
		neg := truthfulufp.Job{Algorithm: name, Eps: 0.25, MaxIterations: -1, UFP: inst}
		other := truthfulufp.Job{Algorithm: name, Eps: 0.25, MaxIterations: def + 1, UFP: inst}
		if zero.Fingerprint() != expl.Fingerprint() {
			t.Errorf("%s: zero and explicit default caps key differently", name)
		}
		if neg.Fingerprint() != zero.Fingerprint() {
			t.Errorf("%s: a negative cap (uncapped to the solvers) keys differently from zero", name)
		}
		if zero.Fingerprint() == other.Fingerprint() {
			t.Errorf("%s: a non-default cap shares the default's key", name)
		}
	}
	// The single-pass solvers still report no default.
	if s, ok := truthfulufp.LookupSolver("ufp/greedy"); !ok || truthfulufp.SolverDefaultMaxIterations(s) != 0 {
		t.Error("ufp/greedy unexpectedly reports a default MaxIterations")
	}
	// The default really caps the loop — including for a negative cap,
	// which means "uncapped" to the algorithms and must not sneak past
	// the guard.
	s, _ := truthfulufp.LookupSolver("ufp/repeat")
	def := truthfulufp.SolverDefaultMaxIterations(s)
	for _, cap := range []int{0, -1} {
		out, err := s.Solve(context.Background(), truthfulufp.SolverInput{UFP: inst},
			truthfulufp.SolverParams{Eps: 0.25, MaxIterations: cap})
		if err != nil {
			t.Fatal(err)
		}
		if out.Allocation.Iterations > def {
			t.Errorf("ufp/repeat with cap %d ran %d iterations past its default cap %d", cap, out.Allocation.Iterations, def)
		}
	}
}

// TestSeedNormalization: the seed participates in cache identity only
// for solvers that consume it.
func TestSeedNormalization(t *testing.T) {
	inst, err := truthfulufp.GenerateScenario(truthfulufp.ScenarioConfig{Topology: "waxman", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	det1 := truthfulufp.Job{Algorithm: "ufp/bounded", Eps: 0.25, Seed: 1, UFP: inst}
	det2 := truthfulufp.Job{Algorithm: "ufp/bounded", Eps: 0.25, Seed: 2, UFP: inst}
	if det1.Fingerprint() != det2.Fingerprint() {
		t.Error("seed leaked into a deterministic solver's fingerprint")
	}
	rnd1 := truthfulufp.Job{Algorithm: "ufp/rounding", Seed: 1, UFP: inst}
	rnd2 := truthfulufp.Job{Algorithm: "ufp/rounding", Seed: 2, UFP: inst}
	if rnd1.Fingerprint() == rnd2.Fingerprint() {
		t.Error("ufp/rounding ignores the seed in its fingerprint")
	}
	g1 := truthfulufp.Job{Algorithm: "ufp/greedy", Eps: 0.1, UFP: inst}
	g2 := truthfulufp.Job{Algorithm: "ufp/greedy", Eps: 0.9, UFP: inst}
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("ε leaked into ufp/greedy's fingerprint")
	}
	// MaxIterations caps matter to iterative solvers but not to
	// single-pass ones.
	s1 := truthfulufp.Job{Algorithm: "ufp/sequential", Eps: 0.25, MaxIterations: 5, UFP: inst}
	s2 := truthfulufp.Job{Algorithm: "ufp/sequential", Eps: 0.25, MaxIterations: 9, UFP: inst}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Error("MaxIterations leaked into single-pass ufp/sequential's fingerprint")
	}
	b1 := truthfulufp.Job{Algorithm: "ufp/bounded", Eps: 0.25, MaxIterations: 5, UFP: inst}
	b2 := truthfulufp.Job{Algorithm: "ufp/bounded", Eps: 0.25, MaxIterations: 9, UFP: inst}
	if b1.Fingerprint() == b2.Fingerprint() {
		t.Error("ufp/bounded ignores MaxIterations in its fingerprint")
	}
}
