package truthfulufp_test

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"truthfulufp"
	"truthfulufp/internal/auction"
	"truthfulufp/internal/engine"
	"truthfulufp/internal/scenario"
	"truthfulufp/internal/workload"
)

// TestInstanceJSONRoundTripRandom checks encode → decode → equal for
// random UFP instances, directed and undirected (api_test.go covers the
// tiny hand-built case).
func TestInstanceJSONRoundTripRandom(t *testing.T) {
	for _, directed := range []bool{true, false} {
		cfg := workload.DefaultUFPConfig()
		cfg.Directed = directed
		inst, err := workload.RandomUFP(workload.NewRNG(1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := truthfulufp.MarshalInstance(inst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := truthfulufp.UnmarshalInstance(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.G.Directed() != directed || got.G.NumVertices() != inst.G.NumVertices() {
			t.Fatalf("directed=%v: graph shape changed", directed)
		}
		if !reflect.DeepEqual(got.G.Edges(), inst.G.Edges()) {
			t.Fatalf("directed=%v: edges changed", directed)
		}
		if !reflect.DeepEqual(got.Requests, inst.Requests) {
			t.Fatalf("directed=%v: requests changed", directed)
		}
		again, err := truthfulufp.MarshalInstance(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("directed=%v: re-encoding is not byte-identical", directed)
		}
	}
}

// TestAllocationJSONRoundTrip checks encode → decode → equal for a real
// solver allocation, plus the DualBound = +Inf special case.
func TestAllocationJSONRoundTrip(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.B = 200 // large capacities so SolveUFP's ε/6 threshold admits winners
	inst, err := workload.RandomUFP(workload.NewRNG(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := truthfulufp.SolveUFP(inst, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Routed) == 0 {
		t.Fatal("empty allocation makes a vacuous test")
	}
	data, err := truthfulufp.MarshalAllocation(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := truthfulufp.UnmarshalAllocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip changed the allocation:\n got %+v\nwant %+v", got, a)
	}
	again, err := truthfulufp.MarshalAllocation(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoding is not byte-identical")
	}

	inf := &truthfulufp.Allocation{Value: 1, Stop: a.Stop, DualBound: math.Inf(1)}
	data, err = truthfulufp.MarshalAllocation(inf)
	if err != nil {
		t.Fatal(err)
	}
	got, err = truthfulufp.UnmarshalAllocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.DualBound, 1) {
		t.Fatalf("infinite dual bound decoded as %g", got.DualBound)
	}
}

// TestUFPOutcomeJSONRoundTrip checks encode → decode → equal for a full
// mechanism outcome (allocation + payments).
func TestUFPOutcomeJSONRoundTrip(t *testing.T) {
	out, err := truthfulufp.RunUFPMechanism(tinyInstance(), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payments) == 0 {
		t.Fatal("no winners makes a vacuous test")
	}
	data, err := truthfulufp.MarshalUFPOutcome(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := truthfulufp.UnmarshalUFPOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatalf("round trip changed the outcome:\n got %+v\nwant %+v", got, out)
	}
}

func testAuctionInstance(t *testing.T) *truthfulufp.AuctionInstance {
	t.Helper()
	inst, err := auction.RandomInstance(workload.NewRNG(3), auction.RandomConfig{
		Items: 6, Requests: 30, B: 60, MultSpread: 0.3,
		BundleMin: 1, BundleMax: 3, ValueMin: 0.5, ValueMax: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestAuctionJSONRoundTripRandom checks encode → decode → equal for a
// random auction instance, its allocation, and its mechanism outcome.
func TestAuctionJSONRoundTripRandom(t *testing.T) {
	inst := testAuctionInstance(t)
	data, err := truthfulufp.MarshalAuction(inst)
	if err != nil {
		t.Fatal(err)
	}
	gotInst, err := truthfulufp.UnmarshalAuction(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotInst, inst) {
		t.Fatal("auction instance round trip changed the instance")
	}

	a, err := truthfulufp.SolveMUCA(inst, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) == 0 {
		t.Fatal("empty auction allocation makes a vacuous test")
	}
	data, err = truthfulufp.MarshalAuctionAllocation(a)
	if err != nil {
		t.Fatal(err)
	}
	gotAlloc, err := truthfulufp.UnmarshalAuctionAllocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAlloc, a) {
		t.Fatalf("auction allocation round trip changed:\n got %+v\nwant %+v", gotAlloc, a)
	}

	out, err := truthfulufp.RunAuctionMechanism(inst, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err = truthfulufp.MarshalAuctionOutcome(out)
	if err != nil {
		t.Fatal(err)
	}
	gotOut, err := truthfulufp.UnmarshalAuctionOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotOut, out) {
		t.Fatalf("auction outcome round trip changed:\n got %+v\nwant %+v", gotOut, out)
	}
}

// TestEmptyAllocationJSONUsesArrays pins that empty allocations encode
// routed/selected as [] rather than null, for non-Go consumers.
func TestEmptyAllocationJSONUsesArrays(t *testing.T) {
	data, err := truthfulufp.MarshalAllocation(&truthfulufp.Allocation{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"routed": []`) {
		t.Errorf("empty allocation routed is not []:\n%s", data)
	}
	data, err = truthfulufp.MarshalAuctionAllocation(&truthfulufp.AuctionAllocation{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"selected": []`) {
		t.Errorf("empty auction allocation selected is not []:\n%s", data)
	}
}

// TestAllocationJSONBadStop rejects unknown stop reasons.
func TestAllocationJSONBadStop(t *testing.T) {
	if _, err := truthfulufp.UnmarshalAllocation([]byte(`{"stop":"bogus"}`)); err == nil {
		t.Error("unknown UFP stop reason accepted")
	}
	if _, err := truthfulufp.UnmarshalAuctionAllocation([]byte(`{"stop":"bogus"}`)); err == nil {
		t.Error("unknown auction stop reason accepted")
	}
}

// TestRoundTripPreservesEngineKey: decode(encode(inst)) must fingerprint
// identically to inst for the engine's coalescing/cache key, for both
// problem shapes and across the scenario catalog — serialization must
// never split or merge cache entries.
func TestRoundTripPreservesEngineKey(t *testing.T) {
	var instances []*truthfulufp.Instance
	for _, topo := range scenario.Topologies() {
		inst, err := scenario.Generate(scenario.Config{Topology: topo.Name, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, inst)
	}
	cfg := workload.DefaultUFPConfig()
	rnd, err := workload.RandomUFP(workload.NewRNG(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	instances = append(instances, rnd)
	for i, inst := range instances {
		data, err := truthfulufp.MarshalInstance(inst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := truthfulufp.UnmarshalInstance(data)
		if err != nil {
			t.Fatal(err)
		}
		a := engine.Job{Algorithm: "ufp/bounded", Eps: 0.25, UFP: inst}
		b := engine.Job{Algorithm: "ufp/bounded", Eps: 0.25, UFP: got}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("instance %d: JSON round trip changed the engine cache key", i)
		}
	}

	auc, err := scenario.GenerateAuction(scenario.Config{Topology: "fattree", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	data, err := truthfulufp.MarshalAuction(auc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := truthfulufp.UnmarshalAuction(data)
	if err != nil {
		t.Fatal(err)
	}
	a := engine.Job{Algorithm: "muca/solve", Eps: 0.25, Auction: auc}
	b := engine.Job{Algorithm: "muca/solve", Eps: 0.25, Auction: got}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("auction JSON round trip changed the engine cache key")
	}
}

// TestUnmarshalInstanceStrict: unknown fields, bad ranges, and
// non-positive numbers are rejected at decode time.
func TestUnmarshalInstanceStrict(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"unknown field", `{"directed":true,"vertices":2,"capcity":1}`},
		{"edge out of range", `{"directed":true,"vertices":2,"edges":[{"from":0,"to":9,"capacity":1}]}`},
		{"zero capacity", `{"directed":true,"vertices":2,"edges":[{"from":0,"to":1,"capacity":0}]}`},
		{"request out of range", `{"directed":true,"vertices":2,"requests":[{"source":0,"target":7,"demand":1,"value":1}]}`},
		{"negative demand", `{"directed":true,"vertices":2,"requests":[{"source":0,"target":1,"demand":-1,"value":1}]}`},
		{"zero value", `{"directed":true,"vertices":2,"requests":[{"source":0,"target":1,"demand":1,"value":0}]}`},
		{"negative vertices", `{"directed":true,"vertices":-1}`},
		{"trailing garbage", `{"directed":true,"vertices":2}{"x":1}`},
	}
	for _, tc := range bad {
		if _, err := truthfulufp.UnmarshalInstance([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestUnmarshalAuctionStrict mirrors the instance strictness for the
// auction schema.
func TestUnmarshalAuctionStrict(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"unknown field", `{"multiplicity":[2],"extra":1}`},
		{"item out of range", `{"multiplicity":[2],"requests":[{"bundle":[3],"value":1}]}`},
		{"zero multiplicity", `{"multiplicity":[0],"requests":[]}`},
		{"zero value", `{"multiplicity":[2],"requests":[{"bundle":[0],"value":0}]}`},
	}
	for _, tc := range bad {
		if _, err := truthfulufp.UnmarshalAuction([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
