package truthfulufp

import (
	"encoding/json"
	"fmt"
)

// instanceJSON is the on-disk schema for UFP instances, consumed by
// cmd/ufprun and producible by any tool.
type instanceJSON struct {
	Directed bool          `json:"directed"`
	Vertices int           `json:"vertices"`
	Edges    []edgeJSON    `json:"edges"`
	Requests []requestJSON `json:"requests"`
}

type edgeJSON struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Capacity float64 `json:"capacity"`
}

type requestJSON struct {
	Source int     `json:"source"`
	Target int     `json:"target"`
	Demand float64 `json:"demand"`
	Value  float64 `json:"value"`
}

// MarshalInstance encodes a UFP instance as JSON.
func MarshalInstance(inst *Instance) ([]byte, error) {
	out := instanceJSON{
		Directed: inst.G.Directed(),
		Vertices: inst.G.NumVertices(),
	}
	for _, e := range inst.G.Edges() {
		out.Edges = append(out.Edges, edgeJSON{e.From, e.To, e.Capacity})
	}
	for _, r := range inst.Requests {
		out.Requests = append(out.Requests, requestJSON{r.Source, r.Target, r.Demand, r.Value})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalInstance decodes a UFP instance from JSON and validates it.
// The instance is expected in normalized form (demands in (0,1]); use
// Instance.Normalized after decoding otherwise.
func UnmarshalInstance(data []byte) (*Instance, error) {
	var in instanceJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding instance: %w", err)
	}
	var g *Graph
	if in.Directed {
		g = NewGraph(in.Vertices)
	} else {
		g = NewUndirectedGraph(in.Vertices)
	}
	for i, e := range in.Edges {
		if e.From < 0 || e.From >= in.Vertices || e.To < 0 || e.To >= in.Vertices {
			return nil, fmt.Errorf("truthfulufp: edge %d endpoints out of range", i)
		}
		g.AddEdge(e.From, e.To, e.Capacity)
	}
	inst := &Instance{G: g}
	for _, r := range in.Requests {
		inst.Requests = append(inst.Requests, Request{
			Source: r.Source, Target: r.Target, Demand: r.Demand, Value: r.Value,
		})
	}
	return inst, nil
}

// auctionJSON is the on-disk schema for auction instances (cmd/aucrun).
type auctionJSON struct {
	Multiplicity []float64        `json:"multiplicity"`
	Requests     []aucRequestJSON `json:"requests"`
}

type aucRequestJSON struct {
	Bundle []int   `json:"bundle"`
	Value  float64 `json:"value"`
}

// MarshalAuction encodes an auction instance as JSON.
func MarshalAuction(inst *AuctionInstance) ([]byte, error) {
	out := auctionJSON{Multiplicity: inst.Multiplicity}
	for _, r := range inst.Requests {
		out.Requests = append(out.Requests, aucRequestJSON{r.Bundle, r.Value})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalAuction decodes an auction instance from JSON.
func UnmarshalAuction(data []byte) (*AuctionInstance, error) {
	var in auctionJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding auction: %w", err)
	}
	inst := &AuctionInstance{Multiplicity: in.Multiplicity}
	for _, r := range in.Requests {
		inst.Requests = append(inst.Requests, AuctionRequest{Bundle: r.Bundle, Value: r.Value})
	}
	return inst, nil
}
