package truthfulufp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
)

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// garbage, so schema typos (e.g. "capcity") fail loudly instead of
// silently zeroing a field.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the JSON document")
	}
	return nil
}

// finite reports whether v is a usable number (not NaN or ±Inf); JSON
// cannot encode non-finite floats directly, but decoding must still
// guard against values smuggled through as large exponents.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// instanceJSON is the on-disk schema for UFP instances, consumed by
// cmd/ufprun and producible by any tool.
type instanceJSON struct {
	Directed bool          `json:"directed"`
	Vertices int           `json:"vertices"`
	Edges    []edgeJSON    `json:"edges"`
	Requests []requestJSON `json:"requests"`
}

type edgeJSON struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Capacity float64 `json:"capacity"`
}

type requestJSON struct {
	Source int     `json:"source"`
	Target int     `json:"target"`
	Demand float64 `json:"demand"`
	Value  float64 `json:"value"`
}

// MarshalInstance encodes a UFP instance as JSON.
func MarshalInstance(inst *Instance) ([]byte, error) {
	out := instanceJSON{
		Directed: inst.G.Directed(),
		Vertices: inst.G.NumVertices(),
	}
	for _, e := range inst.G.Edges() {
		out.Edges = append(out.Edges, edgeJSON{e.From, e.To, e.Capacity})
	}
	for _, r := range inst.Requests {
		out.Requests = append(out.Requests, requestJSON{r.Source, r.Target, r.Demand, r.Value})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalInstance decodes a UFP instance from JSON with strict
// validation: unknown fields, out-of-range endpoints, and non-positive
// or non-finite numbers are rejected. The decoded instance is
// structurally well-formed but not necessarily normalized (demands in
// (0,1]) — run Instance.Validate before solving, or Instance.Normalized
// first if demands exceed 1.
func UnmarshalInstance(data []byte) (*Instance, error) {
	var in instanceJSON
	if err := decodeStrict(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding instance: %w", err)
	}
	if in.Vertices < 0 {
		return nil, fmt.Errorf("truthfulufp: negative vertex count %d", in.Vertices)
	}
	var g *Graph
	if in.Directed {
		g = NewGraph(in.Vertices)
	} else {
		g = NewUndirectedGraph(in.Vertices)
	}
	for i, e := range in.Edges {
		if e.From < 0 || e.From >= in.Vertices || e.To < 0 || e.To >= in.Vertices {
			return nil, fmt.Errorf("truthfulufp: edge %d endpoints (%d,%d) out of range [0,%d)", i, e.From, e.To, in.Vertices)
		}
		if !(e.Capacity > 0) || !finite(e.Capacity) {
			return nil, fmt.Errorf("truthfulufp: edge %d capacity %g not positive finite", i, e.Capacity)
		}
		g.AddEdge(e.From, e.To, e.Capacity)
	}
	inst := &Instance{G: g}
	for i, r := range in.Requests {
		if r.Source < 0 || r.Source >= in.Vertices || r.Target < 0 || r.Target >= in.Vertices {
			return nil, fmt.Errorf("truthfulufp: request %d endpoints (%d,%d) out of range [0,%d)", i, r.Source, r.Target, in.Vertices)
		}
		if !(r.Demand > 0) || !finite(r.Demand) {
			return nil, fmt.Errorf("truthfulufp: request %d demand %g not positive finite", i, r.Demand)
		}
		if !(r.Value > 0) || !finite(r.Value) {
			return nil, fmt.Errorf("truthfulufp: request %d value %g not positive finite", i, r.Value)
		}
		inst.Requests = append(inst.Requests, Request{
			Source: r.Source, Target: r.Target, Demand: r.Demand, Value: r.Value,
		})
	}
	return inst, nil
}

// networkJSON is the wire schema for a bare network (a topology with no
// requests) — what POST /v1/networks registers. It is the instance
// schema minus the requests field, so an instance file's graph section
// can be pasted verbatim.
type networkJSON struct {
	Directed bool       `json:"directed"`
	Vertices int        `json:"vertices"`
	Edges    []edgeJSON `json:"edges"`
}

// MarshalNetwork encodes a capacitated graph as JSON (the
// /v1/networks registration schema).
func MarshalNetwork(g *Graph) ([]byte, error) {
	out := networkJSON{
		Directed: g.Directed(),
		Vertices: g.NumVertices(),
	}
	for _, e := range g.Edges() {
		out.Edges = append(out.Edges, edgeJSON{e.From, e.To, e.Capacity})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalNetwork decodes a capacitated graph from JSON with strict
// validation (unknown fields, out-of-range endpoints, and non-positive
// or non-finite capacities are rejected).
func UnmarshalNetwork(data []byte) (*Graph, error) {
	var in networkJSON
	if err := decodeStrict(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding network: %w", err)
	}
	if in.Vertices < 0 {
		return nil, fmt.Errorf("truthfulufp: negative vertex count %d", in.Vertices)
	}
	var g *Graph
	if in.Directed {
		g = NewGraph(in.Vertices)
	} else {
		g = NewUndirectedGraph(in.Vertices)
	}
	for i, e := range in.Edges {
		if e.From < 0 || e.From >= in.Vertices || e.To < 0 || e.To >= in.Vertices {
			return nil, fmt.Errorf("truthfulufp: edge %d endpoints (%d,%d) out of range [0,%d)", i, e.From, e.To, in.Vertices)
		}
		if !(e.Capacity > 0) || !finite(e.Capacity) {
			return nil, fmt.Errorf("truthfulufp: edge %d capacity %g not positive finite", i, e.Capacity)
		}
		g.AddEdge(e.From, e.To, e.Capacity)
	}
	return g, nil
}

// allocationJSON is the wire schema for UFP allocations (ufpserve's
// solve responses). Stop reasons travel as their String() form, and a
// null dualBound stands for +Inf (JSON has no infinities).
type allocationJSON struct {
	Routed     []routedJSON `json:"routed"`
	Value      float64      `json:"value"`
	Iterations int          `json:"iterations"`
	Stop       string       `json:"stop"`
	DualBound  *float64     `json:"dualBound"`
}

type routedJSON struct {
	Request int   `json:"request"`
	Path    []int `json:"path"`
}

func encodeDualBound(b float64) *float64 {
	if math.IsInf(b, 1) {
		return nil
	}
	return &b
}

func decodeDualBound(b *float64) float64 {
	if b == nil {
		return math.Inf(1)
	}
	return *b
}

func encodeAllocation(a *Allocation) allocationJSON {
	out := allocationJSON{
		// Non-nil so an empty allocation encodes as [], not null —
		// non-Go consumers index into this field.
		Routed:     make([]routedJSON, 0, len(a.Routed)),
		Value:      a.Value,
		Iterations: a.Iterations,
		Stop:       a.Stop.String(),
		DualBound:  encodeDualBound(a.DualBound),
	}
	for _, p := range a.Routed {
		out.Routed = append(out.Routed, routedJSON{p.Request, p.Path})
	}
	return out
}

func decodeAllocation(in allocationJSON) (*Allocation, error) {
	stop, err := parseUFPStop(in.Stop)
	if err != nil {
		return nil, err
	}
	a := &Allocation{
		Value:      in.Value,
		Iterations: in.Iterations,
		Stop:       stop,
		DualBound:  decodeDualBound(in.DualBound),
	}
	for _, p := range in.Routed {
		a.Routed = append(a.Routed, Routed{Request: p.Request, Path: p.Path})
	}
	return a, nil
}

// MarshalAllocation encodes a UFP allocation as JSON. The encoding is
// canonical: equal allocations yield byte-identical output.
func MarshalAllocation(a *Allocation) ([]byte, error) {
	return json.MarshalIndent(encodeAllocation(a), "", "  ")
}

// UnmarshalAllocation decodes a UFP allocation from JSON.
func UnmarshalAllocation(data []byte) (*Allocation, error) {
	var in allocationJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding allocation: %w", err)
	}
	return decodeAllocation(in)
}

// parseStop inverts a StopReason String method by scanning reasons until
// the method's unknown-value fallback ("StopReason(n)"), so a newly
// added reason is decodable without touching this file.
func parseStop[T interface {
	~int
	fmt.Stringer
}](what, s string) (T, error) {
	for i := 0; ; i++ {
		r := T(i)
		str := r.String()
		if str == fmt.Sprintf("StopReason(%d)", i) {
			var zero T
			return zero, fmt.Errorf("truthfulufp: unknown %s stop reason %q", what, s)
		}
		if str == s {
			return r, nil
		}
	}
}

func parseUFPStop(s string) (core.StopReason, error) {
	return parseStop[core.StopReason]("UFP", s)
}

// paymentJSON is one (winner, payment) pair. Payments are serialized as
// a request-sorted array so the encoding is canonical.
type paymentJSON struct {
	Request int     `json:"request"`
	Payment float64 `json:"payment"`
}

func encodePayments(m map[int]float64) []paymentJSON {
	out := make([]paymentJSON, 0, len(m))
	for r, p := range m {
		out = append(out, paymentJSON{r, p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Request < out[j].Request })
	return out
}

func decodePayments(in []paymentJSON) map[int]float64 {
	m := make(map[int]float64, len(in))
	for _, p := range in {
		m[p.Request] = p.Payment
	}
	return m
}

// ufpOutcomeJSON is the wire schema for truthful UFP mechanism outcomes.
type ufpOutcomeJSON struct {
	Allocation allocationJSON `json:"allocation"`
	Payments   []paymentJSON  `json:"payments"`
}

// MarshalUFPOutcome encodes a mechanism outcome (allocation +
// critical-value payments) as JSON.
func MarshalUFPOutcome(out *UFPOutcome) ([]byte, error) {
	return json.MarshalIndent(ufpOutcomeJSON{
		Allocation: encodeAllocation(out.Allocation),
		Payments:   encodePayments(out.Payments),
	}, "", "  ")
}

// UnmarshalUFPOutcome decodes a mechanism outcome from JSON.
func UnmarshalUFPOutcome(data []byte) (*UFPOutcome, error) {
	var in ufpOutcomeJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding UFP outcome: %w", err)
	}
	a, err := decodeAllocation(in.Allocation)
	if err != nil {
		return nil, err
	}
	return &UFPOutcome{Allocation: a, Payments: decodePayments(in.Payments)}, nil
}

// auctionAllocationJSON is the wire schema for MUCA allocations.
type auctionAllocationJSON struct {
	Selected   []int    `json:"selected"`
	Value      float64  `json:"value"`
	Iterations int      `json:"iterations"`
	Stop       string   `json:"stop"`
	DualBound  *float64 `json:"dualBound"`
}

func encodeAuctionAllocation(a *AuctionAllocation) auctionAllocationJSON {
	sel := a.Selected
	if sel == nil {
		sel = []int{} // [] on the wire, not null
	}
	return auctionAllocationJSON{
		Selected:   sel,
		Value:      a.Value,
		Iterations: a.Iterations,
		Stop:       a.Stop.String(),
		DualBound:  encodeDualBound(a.DualBound),
	}
}

func decodeAuctionAllocation(in auctionAllocationJSON) (*AuctionAllocation, error) {
	stop, err := parseAuctionStop(in.Stop)
	if err != nil {
		return nil, err
	}
	sel := in.Selected
	if len(sel) == 0 {
		sel = nil // mirror the solvers, which leave empty selections nil
	}
	return &AuctionAllocation{
		Selected:   sel,
		Value:      in.Value,
		Iterations: in.Iterations,
		Stop:       stop,
		DualBound:  decodeDualBound(in.DualBound),
	}, nil
}

// MarshalAuctionAllocation encodes a MUCA allocation as JSON.
func MarshalAuctionAllocation(a *AuctionAllocation) ([]byte, error) {
	return json.MarshalIndent(encodeAuctionAllocation(a), "", "  ")
}

// UnmarshalAuctionAllocation decodes a MUCA allocation from JSON.
func UnmarshalAuctionAllocation(data []byte) (*AuctionAllocation, error) {
	var in auctionAllocationJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding auction allocation: %w", err)
	}
	return decodeAuctionAllocation(in)
}

func parseAuctionStop(s string) (auction.StopReason, error) {
	return parseStop[auction.StopReason]("auction", s)
}

// auctionOutcomeJSON is the wire schema for truthful auction outcomes.
type auctionOutcomeJSON struct {
	Allocation auctionAllocationJSON `json:"allocation"`
	Payments   []paymentJSON         `json:"payments"`
}

// MarshalAuctionOutcome encodes an auction mechanism outcome as JSON.
func MarshalAuctionOutcome(out *AuctionOutcome) ([]byte, error) {
	return json.MarshalIndent(auctionOutcomeJSON{
		Allocation: encodeAuctionAllocation(out.Allocation),
		Payments:   encodePayments(out.Payments),
	}, "", "  ")
}

// UnmarshalAuctionOutcome decodes an auction mechanism outcome from JSON.
func UnmarshalAuctionOutcome(data []byte) (*AuctionOutcome, error) {
	var in auctionOutcomeJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding auction outcome: %w", err)
	}
	a, err := decodeAuctionAllocation(in.Allocation)
	if err != nil {
		return nil, err
	}
	return &AuctionOutcome{Allocation: a, Payments: decodePayments(in.Payments)}, nil
}

// MarshalSolverOutput encodes a registry solve result as JSON: the wire
// schema of whichever payload field is set (allocation, auction
// allocation, or a mechanism outcome), so /v1/solve responses and
// ufprun -alg output use exactly the schemas of the dedicated
// endpoints. Exactly one payload field must be set.
func MarshalSolverOutput(out SolverOutput) ([]byte, error) {
	switch {
	case out.Allocation != nil:
		return MarshalAllocation(out.Allocation)
	case out.AuctionAllocation != nil:
		return MarshalAuctionAllocation(out.AuctionAllocation)
	case out.UFPOutcome != nil:
		return MarshalUFPOutcome(out.UFPOutcome)
	case out.AuctionOutcome != nil:
		return MarshalAuctionOutcome(out.AuctionOutcome)
	}
	return nil, fmt.Errorf("truthfulufp: solver output carries no payload")
}

// auctionJSON is the on-disk schema for auction instances (cmd/aucrun).
type auctionJSON struct {
	Multiplicity []float64        `json:"multiplicity"`
	Requests     []aucRequestJSON `json:"requests"`
}

type aucRequestJSON struct {
	Bundle []int   `json:"bundle"`
	Value  float64 `json:"value"`
}

// MarshalAuction encodes an auction instance as JSON.
func MarshalAuction(inst *AuctionInstance) ([]byte, error) {
	out := auctionJSON{Multiplicity: inst.Multiplicity}
	for _, r := range inst.Requests {
		out.Requests = append(out.Requests, aucRequestJSON{r.Bundle, r.Value})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalAuction decodes an auction instance from JSON with strict
// validation: unknown fields, out-of-range bundle items, and
// non-positive or non-finite numbers are rejected. Model-level checks
// (B >= 1, duplicate-free bundles) remain with Instance.Validate.
func UnmarshalAuction(data []byte) (*AuctionInstance, error) {
	var in auctionJSON
	if err := decodeStrict(data, &in); err != nil {
		return nil, fmt.Errorf("truthfulufp: decoding auction: %w", err)
	}
	for u, c := range in.Multiplicity {
		if !(c > 0) || !finite(c) {
			return nil, fmt.Errorf("truthfulufp: item %d multiplicity %g not positive finite", u, c)
		}
	}
	inst := &AuctionInstance{Multiplicity: in.Multiplicity}
	for i, r := range in.Requests {
		for _, u := range r.Bundle {
			if u < 0 || u >= len(in.Multiplicity) {
				return nil, fmt.Errorf("truthfulufp: request %d references item %d out of range [0,%d)", i, u, len(in.Multiplicity))
			}
		}
		if !(r.Value > 0) || !finite(r.Value) {
			return nil, fmt.Errorf("truthfulufp: request %d value %g not positive finite", i, r.Value)
		}
		inst.Requests = append(inst.Requests, AuctionRequest{Bundle: r.Bundle, Value: r.Value})
	}
	return inst, nil
}
