module truthfulufp

go 1.24
