package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"truthfulufp"
	"truthfulufp/internal/scenario"
)

func writeSample(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	if err := run([]string{"-sample"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "auc.json")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSolveSample(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path}, nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "value    : 3.4") {
		t.Fatalf("expected all three winners (value 3.4):\n%s", out)
	}
}

func TestPaymentsAndExact(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-payments", "-exact"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "exact OPT") || !strings.Contains(out, "pays") {
		t.Fatalf("missing payments/exact sections:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-json", "-exact"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Result struct {
			Value    float64 `json:"value"`
			Selected []int   `json:"selected"`
		} `json:"result"`
		ExactOPT *float64 `json:"exactOPT"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, b.String())
	}
	if math.Abs(out.Result.Value-3.4) > 1e-9 || out.ExactOPT == nil || math.Abs(*out.ExactOPT-3.4) > 1e-9 {
		t.Fatalf("unexpected result: %+v", out)
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, nil, &b); err == nil {
		t.Fatal("missing -instance accepted")
	}
	if err := run([]string{"-instance", "/nonexistent.json"}, nil, &b); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"multiplicity":[0.5],"requests":[]}`), 0o644)
	if err := run([]string{"-instance", bad}, nil, &b); err == nil {
		t.Fatal("B < 1 instance accepted")
	}
}

// TestStdinPipeline: ufpgen -auction | aucrun -in - solves end to end.
func TestStdinPipeline(t *testing.T) {
	inst, err := scenario.GenerateAuction(scenario.Config{Topology: "startrees", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := truthfulufp.MarshalAuction(inst)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-in", "-", "-json"}, strings.NewReader(string(data)), &b); err != nil {
		t.Fatal(err)
	}
	alloc, err := truthfulufp.UnmarshalAuctionAllocation([]byte(b.String()))
	if err != nil {
		t.Fatalf("pipeline output not a canonical allocation: %v\n%s", err, b.String())
	}
	if alloc.Value <= 0 {
		t.Fatal("pipeline allocated nothing")
	}
}

// TestRegistryAlg: -algs lists the auction side, and -alg dispatches
// every auction-consuming algorithm on the sample instance.
func TestRegistryAlg(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-algs"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	for _, s := range truthfulufp.Solvers() {
		if s.Kind().IsUFP() != !strings.Contains(b.String(), s.Name()) {
			t.Errorf("-algs listing wrong for %s:\n%s", s.Name(), b.String())
		}
	}
	path := writeSample(t)
	for _, s := range truthfulufp.Solvers() {
		if s.Kind().IsUFP() {
			continue
		}
		var out strings.Builder
		if err := run([]string{"-instance", path, "-alg", s.Name(), "-eps", "0.4"}, nil, &out); err != nil {
			t.Fatalf("-alg %s: %v", s.Name(), err)
		}
		if !strings.Contains(out.String(), "value") {
			t.Fatalf("-alg %s produced no report:\n%s", s.Name(), out.String())
		}
	}
	if err := run([]string{"-instance", path, "-alg", "ufp/solve"}, nil, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "ufprun") {
		t.Fatalf("UFP -alg: err = %v", err)
	}
}
