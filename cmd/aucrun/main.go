// Command aucrun solves a single multi-unit combinatorial auction from a
// JSON file (schema: see truthfulufp.MarshalAuction) with Bounded-MUCA,
// optionally computing the truthful critical-value payments and the
// exact optimum for comparison.
//
// Usage:
//
//	aucrun -instance auc.json [-alg muca/solve] [-eps 0.5] [-payments] [-exact] [-json]
//	aucrun -algs
//	ufpgen -scenario fattree -auction | aucrun -in -
//
// -alg runs any auction-consuming algorithm of the v1 solver registry
// by name (-algs lists them; muca/mechanism emits payments); the
// default is the Theorem 4.1 solver muca/solve. -in reads the instance
// from a path or from stdin ("-"), so ufpgen -auction output pipes
// straight in. Generate a sample file with -sample.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"truthfulufp"
	"truthfulufp/internal/auction"
	"truthfulufp/internal/cliio"
	"truthfulufp/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aucrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("aucrun", flag.ContinueOnError)
	var (
		path     = fs.String("instance", "", "path to auction JSON")
		in       = fs.String("in", "", `auction source: a path, or "-" for stdin (supersedes -instance)`)
		alg      = fs.String("alg", "", "registry algorithm name, e.g. muca/solve (see -algs; default muca/solve)")
		algs     = fs.Bool("algs", false, "list the registered auction algorithms and exit")
		eps      = fs.Float64("eps", 0.5, "accuracy parameter ε in (0,1]")
		payments = fs.Bool("payments", false, "compute critical-value payments")
		exact    = fs.Bool("exact", false, "also compute the exact optimum (small instances)")
		asJSON   = fs.Bool("json", false, "emit machine-readable JSON")
		sample   = fs.Bool("sample", false, "print a sample auction JSON and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *algs {
		cliio.PrintAlgorithms(out, func(k solver.Kind) bool { return !k.IsUFP() })
		return nil
	}
	if *sample {
		return printSample(out)
	}
	data, err := cliio.ReadSource(*in, *path, stdin, "-sample")
	if err != nil {
		return err
	}
	inst, err := truthfulufp.UnmarshalAuction(data)
	if err != nil {
		return err
	}
	if err := inst.Validate(); err != nil {
		return err
	}

	var alloc *truthfulufp.AuctionAllocation
	var pays map[int]float64
	if *alg != "" {
		s, ok := truthfulufp.LookupSolver(*alg)
		if !ok {
			return fmt.Errorf("unknown algorithm %q (use -algs to list)", *alg)
		}
		if s.Kind().IsUFP() {
			return fmt.Errorf("algorithm %q consumes UFP instances; use ufprun -alg", *alg)
		}
		res, err := s.Solve(context.Background(),
			truthfulufp.SolverInput{Auction: inst},
			truthfulufp.SolverParams{Eps: *eps})
		if err != nil {
			return err
		}
		alloc = res.AuctionAllocation
		if res.AuctionOutcome != nil {
			alloc = res.AuctionOutcome.Allocation
			pays = res.AuctionOutcome.Payments
		}
	} else {
		alloc, err = truthfulufp.SolveMUCA(inst, *eps, nil)
		if err != nil {
			return err
		}
	}
	if *payments && pays == nil {
		mech, err := truthfulufp.RunAuctionMechanism(inst, *eps/6, nil)
		if err != nil {
			return err
		}
		pays = mech.Payments
	}
	optVal := -1.0
	if *exact {
		v, _, err := auction.ExactOPT(inst)
		if err != nil {
			return err
		}
		optVal = v
	}

	if *asJSON {
		return emitJSON(out, alloc, pays, optVal)
	}
	fmt.Fprintf(out, "instance : %d items, %d requests, B=%g\n", inst.NumItems(), len(inst.Requests), inst.B())
	fmt.Fprintf(out, "value    : %g\n", alloc.Value)
	fmt.Fprintf(out, "winners  : %v\n", alloc.Selected)
	fmt.Fprintf(out, "stop     : %v after %d iterations\n", alloc.Stop, alloc.Iterations)
	if alloc.Value > 0 {
		fmt.Fprintf(out, "dualbound: %g (certified ratio <= %.4f)\n", alloc.DualBound, alloc.DualBound/alloc.Value)
	}
	if optVal >= 0 {
		if alloc.Value > 0 {
			fmt.Fprintf(out, "exact OPT: %g (realized ratio %.4f)\n", optVal, optVal/alloc.Value)
		} else {
			fmt.Fprintf(out, "exact OPT: %g (algorithm allocated nothing: B is below the Ω(ln m) regime)\n", optVal)
		}
	}
	if pays != nil {
		for _, r := range alloc.Selected {
			fmt.Fprintf(out, "  winner %d (value %g) pays %.6g\n", r, inst.Requests[r].Value, pays[r])
		}
	}
	return nil
}

// emitJSON writes the canonical wire encoding (the same schema ufpserve
// serves): a bare allocation, or a full outcome when payments were
// computed, wrapped with the exact optimum when -exact was requested.
func emitJSON(out io.Writer, alloc *truthfulufp.AuctionAllocation, pays map[int]float64, optVal float64) error {
	var payload []byte
	var err error
	if pays != nil {
		payload, err = truthfulufp.MarshalAuctionOutcome(&truthfulufp.AuctionOutcome{Allocation: alloc, Payments: pays})
	} else {
		payload, err = truthfulufp.MarshalAuctionAllocation(alloc)
	}
	if err != nil {
		return err
	}
	if optVal < 0 {
		_, err = fmt.Fprintf(out, "%s\n", payload)
		return err
	}
	env := struct {
		Result   json.RawMessage `json:"result"`
		ExactOPT float64         `json:"exactOPT"`
	}{payload, optVal}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

func printSample(out io.Writer) error {
	// Multiplicities are generous relative to ln(m): SolveMUCA runs
	// Bounded-MUCA(ε/6), whose main loop requires e^{(ε/6)(B-1)} > m.
	inst := &truthfulufp.AuctionInstance{
		Multiplicity: []float64{60, 60, 72},
		Requests: []truthfulufp.AuctionRequest{
			{Bundle: []int{0, 1}, Value: 1.5},
			{Bundle: []int{1, 2}, Value: 1.2},
			{Bundle: []int{0}, Value: 0.7},
		},
	}
	data, err := truthfulufp.MarshalAuction(inst)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(data))
	return err
}
