package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"truthfulufp"
)

// syncBuffer is a locked log sink: the httptest server serves requests
// from its own goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newInstrumentedServer builds a server with a JSON logger into buf
// and its own registry, returning the test server and the server
// struct (for the registry and the draining flag).
func newInstrumentedServer(t *testing.T, buf *syncBuffer) (*httptest.Server, *server) {
	t.Helper()
	router := truthfulufp.NewShardRouter(truthfulufp.ShardConfig{Engine: truthfulufp.EngineConfig{Workers: 2}})
	t.Cleanup(router.Close)
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	s := newServer(router, 0.25, 30*time.Second, truthfulufp.NewMetricsRegistry(), logger)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestMiddlewareStatusClasses checks that the middleware labels
// requests by route pattern and status class — including the
// deprecated aliases, which must flow through the same chain with
// deprecated="true".
func TestMiddlewareStatusClasses(t *testing.T) {
	var buf syncBuffer
	ts, _ := newInstrumentedServer(t, &buf)

	if resp, _ := get(t, ts.URL+"/v1/algorithms"); resp.StatusCode != http.StatusOK {
		t.Fatalf("algorithms = %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/networks/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown network = %d", resp.StatusCode)
	}
	if status, _ := postJSON(t, ts.URL+"/solve", map[string]any{}); status != http.StatusBadRequest {
		t.Fatalf("legacy empty solve = %d", status)
	}

	_, body := get(t, ts.URL+"/metrics")
	exposition := string(body)
	for _, want := range []string{
		`ufp_http_requests_total{route="/v1/algorithms",code="2xx",deprecated="false"} 1`,
		`ufp_http_requests_total{route="/v1/networks/{id}",code="4xx",deprecated="false"} 1`,
		`ufp_http_requests_total{route="/solve",code="4xx",deprecated="true"} 1`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
	// Per-route latency histograms exist for the routes that served.
	if !strings.Contains(exposition, `ufp_http_request_duration_seconds_count{route="/v1/algorithms"} 1`) {
		t.Errorf("exposition is missing the /v1/algorithms latency count:\n%s", exposition)
	}
}

// TestMetricsEndpoint checks content type and that the exposition
// covers all four subsystems with well-formed series.
func TestMetricsEndpoint(t *testing.T) {
	var buf syncBuffer
	ts, _ := newInstrumentedServer(t, &buf)
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != truthfulufp.MetricsTextContentType {
		t.Errorf("content type = %q, want %q", ct, truthfulufp.MetricsTextContentType)
	}
	exposition := string(body)
	for _, name := range []string{
		"ufp_http_in_flight",
		"ufp_engine_jobs_submitted_total",
		"ufp_engine_cache_hits_total",
		"ufp_engine_queue_depth",
		"ufp_engine_workers_busy",
		"ufp_session_live",
		"ufp_session_admits_total",
		"ufp_session_evictions_total",
		"ufp_pathcache_dirty_ratio",
	} {
		if !strings.Contains(exposition, "# TYPE "+name+" ") {
			t.Errorf("exposition is missing family %s", name)
		}
	}
	// ≥ 15 distinct series (the acceptance floor), counting sample lines.
	series := 0
	for _, line := range strings.Split(exposition, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}
	if series < 15 {
		t.Errorf("exposition has %d series, want >= 15:\n%s", series, exposition)
	}
}

// TestRequestIDPropagation checks the id pipeline: adopted from the
// inbound header, echoed on the response, embedded in the error
// envelope, and present in the structured log line.
func TestRequestIDPropagation(t *testing.T) {
	var buf syncBuffer
	ts, _ := newInstrumentedServer(t, &buf)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/networks/ghost", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "rid-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "rid-test-42" {
		t.Errorf("response id = %q, want the inbound id", got)
	}
	var envelope struct {
		Error struct {
			Code      string `json:"code"`
			RequestID string `json:"requestId"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("decoding envelope: %v (%s)", err, body)
	}
	if envelope.Error.RequestID != "rid-test-42" {
		t.Errorf("envelope requestId = %q, want rid-test-42", envelope.Error.RequestID)
	}
	var logged struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Route     string `json:"route"`
		Status    int    `json:"status"`
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if err := json.Unmarshal([]byte(line), &logged); err == nil &&
			logged.Msg == "request" && logged.RequestID == "rid-test-42" {
			found = true
			if logged.Route != "/v1/networks/{id}" || logged.Status != http.StatusNotFound {
				t.Errorf("log line route/status = %q/%d", logged.Route, logged.Status)
			}
		}
	}
	if !found {
		t.Errorf("no request log line with request_id=rid-test-42:\n%s", buf.String())
	}

	// Without an inbound id a fresh hex id is generated.
	resp2, _ := get(t, ts.URL+"/v1/healthz")
	if id := resp2.Header.Get("X-Request-Id"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("generated id = %q, want 16 hex chars", id)
	}
}

// TestReadyzDraining checks the liveness/readiness split: healthz
// stays 200 while readyz flips to 503 with the draining flag.
func TestReadyzDraining(t *testing.T) {
	var buf syncBuffer
	ts, s := newInstrumentedServer(t, &buf)
	if resp, _ := get(t, ts.URL+"/v1/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving = %d", resp.StatusCode)
	}
	s.draining.Store(true)
	resp, body := get(t, ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d", resp.StatusCode)
	}
	var envelope struct {
		Error wireError `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code != codeUnavailable {
		t.Errorf("draining envelope = %s (err %v)", body, err)
	}
	if resp, _ := get(t, ts.URL+"/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d (liveness must hold)", resp.StatusCode)
	}
}

// TestServerTimingHeader checks that v1 routes carry Server-Timing and
// legacy aliases do not.
func TestServerTimingHeader(t *testing.T) {
	var buf syncBuffer
	ts, _ := newInstrumentedServer(t, &buf)
	resp, _ := get(t, ts.URL+"/v1/algorithms")
	if st := resp.Header.Get("Server-Timing"); !strings.HasPrefix(st, "app;dur=") {
		t.Errorf("v1 Server-Timing = %q", st)
	}
	status, _ := postJSON(t, ts.URL+"/solve", map[string]any{})
	if status != http.StatusBadRequest {
		t.Fatalf("legacy solve = %d", status)
	}
	resp2, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if st := resp2.Header.Get("Server-Timing"); st != "" {
		t.Errorf("legacy Server-Timing = %q, want none", st)
	}
}
