package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"truthfulufp"
	"truthfulufp/internal/scenario"
)

// wireNetwork mirrors the networkResponse JSON.
type wireNetwork struct {
	Network struct {
		ID             string  `json:"id"`
		Vertices       int     `json:"vertices"`
		Edges          int     `json:"edges"`
		Eps            float64 `json:"eps"`
		B              float64 `json:"b"`
		Admitted       int     `json:"admitted"`
		Value          float64 `json:"value"`
		Admits         int64   `json:"admits"`
		Rejects        int64   `json:"rejects"`
		Releases       int64   `json:"releases"`
		PathRecomputed int64   `json:"pathRecomputed"`
		PathReused     int64   `json:"pathReused"`
	} `json:"network"`
	Ledger []wireAdmitted `json:"ledger"`
}

type wireAdmitted struct {
	ID     int64   `json:"id"`
	Source int     `json:"source"`
	Target int     `json:"target"`
	Demand float64 `json:"demand"`
	Value  float64 `json:"value"`
	Price  float64 `json:"price"`
	Path   []int   `json:"path"`
}

// wireDecision mirrors the decisionResponse JSON. Price is a pointer:
// null when no path exists.
type wireDecision struct {
	Admitted  bool     `json:"admitted"`
	ID        int64    `json:"id"`
	Reason    string   `json:"reason"`
	Price     *float64 `json:"price"`
	Path      []int    `json:"path"`
	ElapsedMs float64  `json:"elapsedMs"`
}

// registerNetwork registers g over HTTP and returns the session id.
func registerNetwork(t *testing.T, ts *httptest.Server, g *truthfulufp.Graph, eps float64) string {
	t.Helper()
	raw, err := truthfulufp.MarshalNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	body := map[string]any{"network": json.RawMessage(raw)}
	if eps > 0 {
		body["eps"] = eps
	}
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/networks", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, out)
	}
	var nw wireNetwork
	if err := json.Unmarshal(out, &nw); err != nil {
		t.Fatal(err)
	}
	if nw.Network.ID == "" {
		t.Fatalf("register: no id in %s", out)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/networks/"+nw.Network.ID {
		t.Fatalf("register: Location = %q, want /v1/networks/%s", loc, nw.Network.ID)
	}
	return nw.Network.ID
}

// diamondGraph is the repo's stock 4-vertex two-path topology.
func diamondGraph(capacity float64) *truthfulufp.Graph {
	g := truthfulufp.NewGraph(4)
	g.AddEdge(0, 1, capacity)
	g.AddEdge(1, 3, capacity)
	g.AddEdge(0, 2, capacity)
	g.AddEdge(2, 3, capacity)
	return g
}

// TestServeSessionLifecycle walks the full v1 session surface: register,
// price, admit, inspect the ledger, release, delete, and observe the
// 404 afterwards.
func TestServeSessionLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	id := registerNetwork(t, ts, diamondGraph(4), 0.25)
	base := ts.URL + "/v1/networks/" + id

	req := map[string]any{"source": 0, "target": 3, "demand": 1, "value": 50}
	status, out := postJSON(t, base+"/price", req)
	if status != http.StatusOK {
		t.Fatalf("price: status %d: %s", status, out)
	}
	var quote wireDecision
	if err := json.Unmarshal(out, &quote); err != nil {
		t.Fatal(err)
	}
	// Initial prices are y = 1/c on each of the 2 path edges: d·dist = 0.5.
	if !quote.Admitted || quote.Price == nil || *quote.Price != 0.5 || len(quote.Path) != 2 {
		t.Fatalf("price = %+v, want would-admit at 0.5 over 2 edges", quote)
	}
	if quote.ID != 0 {
		t.Fatalf("price minted admission id %d", quote.ID)
	}

	status, out = postJSON(t, base+"/admit", req)
	if status != http.StatusOK {
		t.Fatalf("admit: status %d: %s", status, out)
	}
	var admit wireDecision
	if err := json.Unmarshal(out, &admit); err != nil {
		t.Fatal(err)
	}
	if !admit.Admitted || admit.ID == 0 || admit.Price == nil || *admit.Price != *quote.Price {
		t.Fatalf("admit = %+v, want admitted with id at the quoted price", admit)
	}

	// A no-path probe quotes null price with the no-path reason.
	status, out = postJSON(t, base+"/price", map[string]any{"source": 3, "target": 0, "demand": 0.5, "value": 10})
	if status != http.StatusOK {
		t.Fatalf("no-path price: status %d: %s", status, out)
	}
	var noPath wireDecision
	if err := json.Unmarshal(out, &noPath); err != nil {
		t.Fatal(err)
	}
	if noPath.Admitted || noPath.Reason != "no-path" || noPath.Price != nil {
		t.Fatalf("no-path price = %+v, want rejected with null price", noPath)
	}

	resp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info: status %d: %s", resp.StatusCode, out)
	}
	var info wireNetwork
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	if info.Network.ID != id || info.Network.Vertices != 4 || info.Network.Edges != 4 ||
		info.Network.B != 4 || info.Network.Eps != 0.25 ||
		info.Network.Admitted != 1 || info.Network.Value != 50 || info.Network.Admits != 1 {
		t.Fatalf("info = %+v", info.Network)
	}
	if len(info.Ledger) != 1 || info.Ledger[0].ID != admit.ID ||
		!reflect.DeepEqual(info.Ledger[0].Path, admit.Path) || info.Ledger[0].Value != 50 {
		t.Fatalf("ledger = %+v, want the one admission", info.Ledger)
	}

	status, out = postJSON(t, base+"/release", map[string]any{"id": admit.ID})
	if status != http.StatusOK {
		t.Fatalf("release: status %d: %s", status, out)
	}
	var rel struct {
		Released wireAdmitted `json:"released"`
	}
	if err := json.Unmarshal(out, &rel); err != nil {
		t.Fatal(err)
	}
	if rel.Released.ID != admit.ID || rel.Released.Price != *admit.Price {
		t.Fatalf("release = %+v, want the admitted entry back", rel.Released)
	}
	// Releasing again is a 404 on the admission id.
	status, out = postJSON(t, base+"/release", map[string]any{"id": admit.ID})
	if status != http.StatusNotFound {
		t.Fatalf("double release: status %d: %s", status, out)
	}

	delReq, err := http.NewRequest(http.MethodDelete, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	status, out = postJSON(t, base+"/admit", req)
	if status != http.StatusNotFound {
		t.Fatalf("admit after delete: status %d: %s", status, out)
	}
	var e wireResponse
	if err := json.Unmarshal(out, &e); err != nil || e.Error == nil || e.Error.Code != "not_found" {
		t.Fatalf("post-delete admit not a not_found envelope: %s", out)
	}
}

// TestServeSessionStreamMatchesBatch streams a scenario instance's
// request sequence through HTTP admits and checks the admitted set,
// paths, and total value against the offline batch spelling
// (OnlineAdmission) of the same sequence.
func TestServeSessionStreamMatchesBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	inst, err := scenario.Generate(scenario.Config{Topology: "fattree", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.3
	batch, err := truthfulufp.OnlineAdmission(inst, eps, nil)
	if err != nil {
		t.Fatal(err)
	}

	id := registerNetwork(t, ts, inst.G, eps)
	base := ts.URL + "/v1/networks/" + id
	var streamed []truthfulufp.Routed
	var value float64
	for i, r := range inst.Requests {
		status, out := postJSON(t, base+"/admit", map[string]any{
			"source": r.Source, "target": r.Target, "demand": r.Demand, "value": r.Value,
		})
		if status != http.StatusOK {
			t.Fatalf("admit %d: status %d: %s", i, status, out)
		}
		var d wireDecision
		if err := json.Unmarshal(out, &d); err != nil {
			t.Fatal(err)
		}
		if d.Admitted {
			streamed = append(streamed, truthfulufp.Routed{Request: i, Path: d.Path})
			value += r.Value
		}
	}
	if !reflect.DeepEqual(batch.Routed, streamed) {
		t.Fatalf("streamed admits differ from batch:\n got %v\nwant %v", streamed, batch.Routed)
	}
	if value != batch.Value {
		t.Fatalf("streamed value %g != batch %g", value, batch.Value)
	}
	if len(streamed) == 0 {
		t.Fatal("vacuous comparison: nothing admitted")
	}
}

// TestServeSessionConcurrentAdmits hammers one network from parallel
// clients; the ledger must balance exactly (run with -race in CI).
func TestServeSessionConcurrentAdmits(t *testing.T) {
	ts, _ := newTestServer(t)
	id := registerNetwork(t, ts, diamondGraph(32), 0.25)
	base := ts.URL + "/v1/networks/" + id

	const goroutines, perG = 8, 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				status, out := postJSON(t, base+"/admit", map[string]any{
					"source": 0, "target": 3, "demand": 1, "value": 1e12,
				})
				if status != http.StatusOK {
					t.Errorf("admit: status %d: %s", status, out)
					return
				}
				var d wireDecision
				if err := json.Unmarshal(out, &d); err != nil {
					t.Error(err)
					return
				}
				if d.Admitted {
					mu.Lock()
					admitted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Two disjoint 2-edge paths of capacity 32 fit exactly 64 unit
	// demands; value 1e12 outruns every price.
	if admitted != 64 {
		t.Fatalf("admitted %d, want exactly 64", admitted)
	}
	resp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var info wireNetwork
	if err := json.Unmarshal(out, &info); err != nil {
		t.Fatal(err)
	}
	if info.Network.Admitted != 64 || info.Network.Admits != 64 ||
		info.Network.Rejects != goroutines*perG-64 {
		t.Fatalf("info after concurrent admits = %+v", info.Network)
	}
}

// TestServeDeprecationHeaders: every legacy route advertises its
// deprecation (RFC 9745), sunset (RFC 8594), and successor; v1 routes
// stay clean.
func TestServeDeprecationHeaders(t *testing.T) {
	ts, _ := newTestServer(t)
	inst := testInstance(t, 21)

	check := func(t *testing.T, h http.Header, successor string) {
		t.Helper()
		dep := h.Get("Deprecation")
		if !strings.HasPrefix(dep, "@") {
			t.Fatalf("Deprecation = %q, want @<unix-ts>", dep)
		}
		if sunset := h.Get("Sunset"); sunset == "" {
			t.Fatal("no Sunset header")
		} else if when, err := time.Parse(http.TimeFormat, sunset); err != nil || !when.After(legacyDeprecatedAt) {
			t.Fatalf("Sunset = %q: %v", sunset, err)
		}
		want := fmt.Sprintf("<%s>; rel=\"successor-version\"", successor)
		if link := h.Get("Link"); link != want {
			t.Fatalf("Link = %q, want %q", link, want)
		}
	}

	for _, route := range []string{"/solve", "/mechanism"} {
		t.Run(route, func(t *testing.T) {
			data, err := json.Marshal(solveBody(t, inst, nil))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+route, "application/json", bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			check(t, resp.Header, "/v1/solve")
		})
	}
	t.Run("/auction", func(t *testing.T) {
		// Even an error response carries the headers.
		resp, err := http.Post(ts.URL+"/auction", "application/json", strings.NewReader(`{"mode":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		check(t, resp.Header, "/v1/solve")
	})
	t.Run("/healthz", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		check(t, resp.Header, "/v1/healthz")
	})
	t.Run("v1 routes are not deprecated", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "" || resp.Header.Get("Sunset") != "" {
			t.Fatalf("v1 route carries deprecation headers: %v", resp.Header)
		}
	})
}

// TestServeV1HealthzSessions: the health endpoint reports the session
// manager's counters.
func TestServeV1HealthzSessions(t *testing.T) {
	ts, _ := newTestServer(t)
	id := registerNetwork(t, ts, diamondGraph(4), 0.25)
	if s, out := postJSON(t, ts.URL+"/v1/networks/"+id+"/admit",
		map[string]any{"source": 0, "target": 3, "demand": 1, "value": 50}); s != http.StatusOK {
		t.Fatalf("admit: status %d: %s", s, out)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status   string `json:"status"`
		Sessions struct {
			Live    int   `json:"live"`
			Created int64 `json:"created"`
			Admits  int64 `json:"admits"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Sessions.Live != 1 ||
		health.Sessions.Created != 1 || health.Sessions.Admits != 1 {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestServeSessionEvictionIsGoneOrNotFound: an LRU-evicted session
// answers 404 on lookup (it is gone from the manager).
func TestServeSessionEviction(t *testing.T) {
	router := truthfulufp.NewShardRouter(truthfulufp.ShardConfig{Engine: truthfulufp.EngineConfig{Workers: 2, MaxSessions: 1}})
	t.Cleanup(router.Close)
	ts := httptest.NewServer(newHandler(router, 0.25, 30*time.Second))
	t.Cleanup(ts.Close)

	id1 := registerNetwork(t, ts, diamondGraph(4), 0.25)
	id2 := registerNetwork(t, ts, diamondGraph(4), 0.25)
	if id1 == id2 {
		t.Fatalf("duplicate session id %q", id1)
	}
	status, out := postJSON(t, ts.URL+"/v1/networks/"+id1+"/admit",
		map[string]any{"source": 0, "target": 3, "demand": 1, "value": 50})
	if status != http.StatusNotFound {
		t.Fatalf("evicted session: status %d: %s", status, out)
	}
	var e wireResponse
	if err := json.Unmarshal(out, &e); err != nil || e.Error == nil || e.Error.Code != "not_found" {
		t.Fatalf("evicted session error = %s", out)
	}
}
