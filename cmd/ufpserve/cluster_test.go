package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"truthfulufp"
)

// TestServeShardedSessionSurface runs the whole session surface through
// an in-process 3-shard router: ids carry their shard prefix, every op
// routes home, and /v1/healthz reports the cluster view.
func TestServeShardedSessionSurface(t *testing.T) {
	router := truthfulufp.NewShardRouter(truthfulufp.ShardConfig{
		Shards: 3, Engine: truthfulufp.EngineConfig{Workers: 2},
	})
	t.Cleanup(router.Close)
	ts := httptest.NewServer(newHandler(router, 0.25, 30*time.Second))
	t.Cleanup(ts.Close)

	shards := map[string]bool{}
	for i := 0; i < 9; i++ {
		id := registerNetwork(t, ts, diamondGraph(4), 0.25)
		if !strings.HasPrefix(id, "s") {
			t.Fatalf("sharded session id %q has no shard prefix", id)
		}
		shards[id[:strings.IndexByte(id, '-')+1]] = true

		status, out := postJSON(t, ts.URL+"/v1/networks/"+id+"/price",
			map[string]any{"source": 0, "target": 3, "demand": 1, "value": 50})
		if status != http.StatusOK {
			t.Fatalf("price on %s: status %d: %s", id, status, out)
		}
		var quote wireDecision
		if err := json.Unmarshal(out, &quote); err != nil {
			t.Fatal(err)
		}
		if !quote.Admitted || quote.Price == nil || *quote.Price != 0.5 {
			t.Fatalf("price on %s = %+v, want would-admit at 0.5", id, quote)
		}
	}
	if len(shards) < 2 {
		t.Errorf("9 sessions all placed on %d shard(s); expected spread", len(shards))
	}

	resp, body := get(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", resp.StatusCode, body)
	}
	var health healthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Shards != 3 {
		t.Errorf("healthz shards = %d, want 3", health.Shards)
	}
	if health.Sessions.Live != 9 {
		t.Errorf("healthz live sessions = %d, want 9", health.Sessions.Live)
	}
	if health.Misrouted != 0 {
		t.Errorf("healthz misrouted = %d", health.Misrouted)
	}
}

// slowWireInstance is a solve heavy enough to pin a worker for the
// duration of the test (the grid/request mix from the engine's
// cancellation tests, shippable over JSON).
func slowWireInstance() *truthfulufp.Instance {
	const w = 30
	g := truthfulufp.NewGraph(w * w)
	at := func(r, c int) int { return r*w + c }
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			if c+1 < w {
				g.AddEdge(at(r, c), at(r, c+1), 100)
				g.AddEdge(at(r, c+1), at(r, c), 100)
			}
			if r+1 < w {
				g.AddEdge(at(r, c), at(r+1, c), 100)
				g.AddEdge(at(r+1, c), at(r, c), 100)
			}
		}
	}
	inst := &truthfulufp.Instance{G: g}
	n := w * w
	for i := 0; i < 800; i++ {
		s := (i * 131) % n
		d := (i*197 + n/2) % n
		if s == d {
			d = (d + 1) % n
		}
		inst.Requests = append(inst.Requests, truthfulufp.Request{
			Source: s, Target: d, Demand: 0.9, Value: 1 + 0.001*float64(i),
		})
	}
	return inst
}

// TestServeOverloadSheds pins the serving-side overload contract: a job
// hitting a full queue answers 429 with the stable "overloaded"
// envelope code and a positive Retry-After hint.
func TestServeOverloadSheds(t *testing.T) {
	router := truthfulufp.NewShardRouter(truthfulufp.ShardConfig{
		Engine: truthfulufp.EngineConfig{Workers: 1, SolveWorkers: 1, QueueDepth: 1, CacheSize: -1},
	})
	t.Cleanup(router.Close)
	ts := httptest.NewServer(newHandler(router, 0.25, 0))
	t.Cleanup(ts.Close)

	slow := slowWireInstance()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	// post fires a slow solve with n requests (distinct n = distinct
	// fingerprint, so nothing coalesces) and abandons it on cancel.
	post := func(n int) {
		defer wg.Done()
		inst := &truthfulufp.Instance{G: slow.G, Requests: slow.Requests[:n]}
		raw, err := truthfulufp.MarshalInstance(inst)
		if err != nil {
			t.Error(err)
			return
		}
		data, err := json.Marshal(map[string]any{
			"algorithm": "ufp/bounded", "eps": 0.1, "instance": json.RawMessage(raw),
		})
		if err != nil {
			t.Error(err)
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/solve", bytes.NewReader(data))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	wg.Add(1)
	go post(800) // occupies the lone worker
	waitFor(t, func() bool { return router.Snapshot().BusyWorkers > 0 })
	wg.Add(1)
	go post(799) // fills the single queue slot
	waitFor(t, func() bool { return router.Snapshot().QueueDepth > 0 })

	// Third distinct job: must shed, not block.
	inst := &truthfulufp.Instance{G: slow.G, Requests: slow.Requests[:798]}
	raw, err := truthfulufp.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(map[string]any{
		"algorithm": "ufp/bounded", "eps": 0.1, "instance": json.RawMessage(raw),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated solve: status %d, want 429: %s", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 carries Retry-After %q, want positive seconds", ra)
	}
	var wire wireResponse
	if err := json.Unmarshal(out, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Error == nil || wire.Error.Code != codeOverloaded {
		t.Errorf("429 envelope = %s, want code %q", out, codeOverloaded)
	}
	if got := router.Snapshot().Shed; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeRouteModeForwardsSessions runs a two-node cluster: session
// ids carry their node prefix, a session call landing on the wrong
// node is proxied to its owner (request id propagated, forwarded
// counter ticking), and deletes work cross-node too.
func TestServeRouteModeForwardsSessions(t *testing.T) {
	const nodes = 2
	routers := make([]*truthfulufp.ShardRouter, nodes)
	servers := make([]*server, nodes)
	tss := make([]*httptest.Server, nodes)
	for i := 0; i < nodes; i++ {
		routers[i] = truthfulufp.NewShardRouter(truthfulufp.ShardConfig{
			Shards: 2, Engine: truthfulufp.EngineConfig{Workers: 2},
			IDPrefix: fmt.Sprintf("p%d.", i),
		})
		t.Cleanup(routers[i].Close)
		servers[i] = newServer(routers[i], 0.25, 30*time.Second, nil, nil)
		tss[i] = httptest.NewServer(servers[i].handler())
		t.Cleanup(tss[i].Close)
	}
	peers := []string{tss[0].URL, tss[1].URL}
	for i, s := range servers {
		s.routeMode, s.peers, s.self = true, peers, i
	}

	// Register on node 1; the id names its home node.
	id := registerNetwork(t, tss[1], diamondGraph(4), 0.25)
	if !strings.HasPrefix(id, "p1.") {
		t.Fatalf("node-1 session id = %q, want p1. prefix", id)
	}

	// Price through node 0: forwarded to node 1, same answer.
	status, out := postJSON(t, tss[0].URL+"/v1/networks/"+id+"/price",
		map[string]any{"source": 0, "target": 3, "demand": 1, "value": 50})
	if status != http.StatusOK {
		t.Fatalf("forwarded price: status %d: %s", status, out)
	}
	var quote wireDecision
	if err := json.Unmarshal(out, &quote); err != nil {
		t.Fatal(err)
	}
	if !quote.Admitted || quote.Price == nil || *quote.Price != 0.5 {
		t.Fatalf("forwarded price = %+v, want would-admit at 0.5", quote)
	}

	// GET through node 0 with a caller-supplied request id: the echoed
	// id survives the hop.
	req, err := http.NewRequest(http.MethodGet, tss[0].URL+"/v1/networks/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "cluster-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded GET: status %d: %s", resp.StatusCode, body)
	}
	if rid := resp.Header.Get("X-Request-Id"); rid != "cluster-rid-1" {
		t.Errorf("forwarded GET echoed request id %q, want cluster-rid-1", rid)
	}

	// The proxy hop is visible in node 0's metrics.
	mresp, mbody := get(t, tss[0].URL+"/metrics")
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `ufp_route_forwarded_total{peer="1"} 2`) {
		t.Errorf("node-0 metrics missing forwarded counter:\n%s", mbody)
	}

	// Delete through node 0, observe the 404 from node 1 directly.
	dreq, err := http.NewRequest(http.MethodDelete, tss[0].URL+"/v1/networks/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("forwarded delete: status %d, want 204", dresp.StatusCode)
	}
	gresp, gbody := get(t, tss[1].URL+"/v1/networks/"+id)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session on home node: status %d: %s", gresp.StatusCode, gbody)
	}
}
