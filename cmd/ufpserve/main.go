// Command ufpserve is the HTTP/JSON front end of the solve engine: a
// stateless batch surface (run any registered algorithm on a shipped
// instance) and a stateful session surface serving the paper's online
// setting — register a network once, then stream admit / price /
// release calls against its persistent prices, flows, and warm path
// cache, each costing one incremental shortest-path query instead of a
// full solve.
//
// Usage:
//
//	ufpserve [-addr :8080] [-workers 0] [-solve-workers 1] [-cache 1024]
//	         [-eps 0.25] [-timeout 60s] [-max-sessions 64] [-session-ttl 0]
//	         [-policy-warmup 0] [-policy-cost-ratio 0] [-landmark-stale-ratio 0]
//	         [-log-format text|json] [-pprof-addr ""]
//	         [-shards 1] [-block-on-full]
//	         [-route -peers http://a:8080,http://b:8080 -self 0]
//
// Session oracle tuning: -policy-warmup and -policy-cost-ratio tune the
// adaptive refresh policy of every session's path cache, and
// -landmark-stale-ratio tunes the landmark lifecycle — when a session's
// recent oracle searches prune less than this fraction of the full-tree
// budget, its landmark tables are re-selected against the current
// prices (0 = built-in default, negative = never rebuild). All three
// move work, never results: admissions are identical at any setting.
//
// Scale-out: -shards N fronts N independent engine/session backends
// with an in-process bounded-load consistent-hash router (jobs route by
// instance fingerprint, session ops by session id, so each shard keeps
// its own warm caches). -route spreads the same scheme across
// processes: session ids gain a node prefix ("p1.") and any node
// proxies a misrouted session call to its owner from the -peers list,
// propagating the request id. A full job queue answers 429 with a
// Retry-After hint derived from queue depth × mean solve latency
// (-block-on-full restores the old blocking behaviour).
//
// v1 endpoints:
//
//	GET    /v1/algorithms
//	POST   /v1/solve                  {"algorithm": "ufp/solve", "eps": 0.25, "instance": {...}}
//	POST   /v1/networks               {"network": {...}, "eps": 0.25}
//	GET    /v1/networks/{id}
//	DELETE /v1/networks/{id}
//	POST   /v1/networks/{id}/admit    {"source": 0, "target": 3, "demand": 0.5, "value": 2}
//	POST   /v1/networks/{id}/price    (same body; quotes without admitting)
//	POST   /v1/networks/{id}/release  {"id": 7}
//	GET    /v1/healthz                liveness: 200 while the process serves (cluster-wide counters)
//	GET    /v1/readyz                 readiness: 503 while draining on shutdown; body reports queue saturation
//	GET    /metrics                   Prometheus text exposition (ufp_http_*, ufp_engine_*, ufp_session_*, ufp_pathcache_*, ufp_shard_*)
//
// Observability: every route runs through the instrument middleware
// (request counters by status class, in-flight gauge, per-route latency
// histograms, Server-Timing on v1 routes) and emits one structured
// log/slog line per request with a request id that is adopted from an
// inbound X-Request-Id header or generated, echoed on the response, and
// included in the error envelope. -pprof-addr starts net/http/pprof on
// a separate listener (off by default — profiling is opt-in and never
// shares the serving port). On SIGINT/SIGTERM the server marks itself
// draining (readiness flips to 503 so load balancers stop routing),
// finishes in-flight requests, and only then shuts the engine down.
//
// Deprecated aliases (Deprecation/Sunset headers; see README migration
// table): POST /solve, /mechanism, /auction map onto the /v1/solve
// dispatch with a fixed or legacy-field-selected algorithm; GET
// /healthz serves /v1/healthz.
//
// Instances use the same JSON schema as cmd/ufprun and cmd/aucrun (see
// the root package's MarshalInstance/MarshalAuction); networks use the
// instance schema minus requests. Every error is the envelope
// {"error":{"code","message"}} with a stable machine-readable code.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"truthfulufp"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ufpserve:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("ufpserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "engine workers = concurrent jobs (0 = GOMAXPROCS)")
		solveWorkers = fs.Int("solve-workers", 1, "goroutines per solve (intra-job parallelism)")
		cache        = fs.Int("cache", 0, "result cache entries (0 = default, negative = disabled)")
		queue        = fs.Int("queue", 0, "pending-job queue depth (0 = 4x workers)")
		eps          = fs.Float64("eps", 0.25, "default accuracy parameter ε")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request solve timeout, 0 = none (a solve abandoned by every client is cancelled and its worker reclaimed)")
		maxSessions  = fs.Int("max-sessions", 0, "live session cap, LRU eviction beyond it (0 = default, negative = unbounded)")
		sessionTTL   = fs.Duration("session-ttl", 0, "expire sessions idle longer than this (0 = never)")
		policyWarmup = fs.Int("policy-warmup", 0, "adaptive refresh policy warm-up demand count (0 = default, negative = none)")
		policyCost   = fs.Float64("policy-cost-ratio", 0, "adaptive refresh policy dirty-rate threshold (0 = default, negative = zero)")
		staleRatio   = fs.Float64("landmark-stale-ratio", 0, "rebuild a session's landmark tables when its oracle's windowed prune ratio falls below this (0 = default, negative = never rebuild)")
		logFormat    = fs.String("log-format", "text", "structured request log format: text|json")
		pprofAddr    = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		shards       = fs.Int("shards", 1, "engine/session backends behind the in-process consistent-hash router (each gets its own worker pool, queue, cache, and sessions)")
		block        = fs.Bool("block-on-full", false, "block on a full job queue instead of shedding with 429 + Retry-After")
		route        = fs.Bool("route", false, "cluster route mode: proxy misrouted session calls to the peer named by the session id's node prefix (requires -peers and -self)")
		peersFlag    = fs.String("peers", "", "comma-separated peer base URLs, this node included, in cluster-wide order (e.g. http://a:8080,http://b:8080)")
		self         = fs.Int("self", 0, "this node's index into -peers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(*logFormat, logw)
	if err != nil {
		return err
	}
	if *workers == 0 && *shards > 1 {
		// Split the machine across the shards instead of giving each one
		// a full GOMAXPROCS pool.
		*workers = max(1, runtime.GOMAXPROCS(0) / *shards)
	}
	var peers []string
	nodePrefix := ""
	if *route {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, strings.TrimRight(p, "/"))
			}
		}
		if len(peers) < 2 {
			return fmt.Errorf("-route needs at least two -peers base URLs, got %d", len(peers))
		}
		if *self < 0 || *self >= len(peers) {
			return fmt.Errorf("-self %d is out of range for %d peers", *self, len(peers))
		}
		// The node prefix makes every session id name its owning node
		// cluster-wide ("p1.s0-n3"), which is all the routing state the
		// cluster has — no directory service.
		nodePrefix = fmt.Sprintf("p%d.", *self)
	}
	router := truthfulufp.NewShardRouter(truthfulufp.ShardConfig{
		Shards: *shards,
		Engine: truthfulufp.EngineConfig{
			Workers:            *workers,
			SolveWorkers:       *solveWorkers,
			CacheSize:          *cache,
			QueueDepth:         *queue,
			BlockOnFull:        *block,
			MaxSessions:        *maxSessions,
			SessionTTL:         *sessionTTL,
			PolicyWarmup:       *policyWarmup,
			PolicyCostRatio:    *policyCost,
			LandmarkStaleRatio: *staleRatio,
		},
		IDPrefix: nodePrefix,
	})
	// Closed explicitly after the HTTP drain below; the defer covers
	// early error returns.
	defer router.Close()
	s := newServer(router, *eps, *timeout, truthfulufp.NewMetricsRegistry(), logger)
	if *route {
		s.routeMode, s.peers, s.self = true, peers, *self
	}
	// No blanket WriteTimeout: dispatch sets a per-request write deadline
	// after the body is read, so slow uploads don't eat the solve budget.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		psrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", slog.String("addr", *pprofAddr))
			if perr := psrv.ListenAndServe(); !errors.Is(perr, http.ErrServerClosed) {
				logger.Error("pprof server", slog.Any("err", perr))
			}
		}()
		defer psrv.Close()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", slog.String("addr", *addr),
		slog.Int("shards", router.NumShards()), slog.Int("workers", router.Snapshot().Workers))
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		// Drain order: flip readiness (load balancers stop routing), let
		// Shutdown finish the in-flight requests — including streamed
		// session operations — then the deferred engine.Close drains the
		// job queue. Session state needs no draining of its own: it holds
		// no goroutines, only memory.
		s.draining.Store(true)
		logger.Info("draining", slog.Duration("timeout", drainTimeout))
		shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("draining: %w", err)
		}
		<-errc // ListenAndServe has returned http.ErrServerClosed
		return nil
	}
}

// drainTimeout bounds graceful shutdown: in-flight requests get this
// long to finish before the process exits anyway.
const drainTimeout = 30 * time.Second

// pprofMux serves the net/http/pprof handlers on a mux of their own —
// profiling never shares the serving port or its middleware.
func pprofMux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return m
}

// server holds the handler's dependencies and the HTTP-layer
// instruments the middleware updates per request.
type server struct {
	router     *truthfulufp.ShardRouter
	defaultEps float64
	timeout    time.Duration
	logger     *slog.Logger
	reg        *truthfulufp.MetricsRegistry
	// draining flips /v1/readyz to 503 during graceful shutdown.
	draining atomic.Bool

	// Route mode: misrouted session calls (the id's node prefix names
	// another peer) are proxied to peers[that index].
	routeMode bool
	peers     []string
	self      int
	client    *http.Client

	httpReqs    *truthfulufp.MetricsFamily // counter{route,code,deprecated}
	httpLatency *truthfulufp.MetricsFamily // histogram{route}
	inFlight    *truthfulufp.MetricsGauge
	forwarded   *truthfulufp.MetricsFamily // counter{peer}
}

// newServer wires a server around a shard router, registering the
// cluster's metric families (and, below, its own ufp_http_* families)
// into reg. A nil reg gets a private registry; a nil logger discards.
// The router is owned by the caller (tests share one across httptest
// servers — each gets its own registry, so re-registration never
// collides).
func newServer(router *truthfulufp.ShardRouter, defaultEps float64, timeout time.Duration, reg *truthfulufp.MetricsRegistry, logger *slog.Logger) *server {
	if reg == nil {
		reg = truthfulufp.NewMetricsRegistry()
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	router.RegisterMetrics(reg)
	s := &server{router: router, defaultEps: defaultEps, timeout: timeout, logger: logger, reg: reg,
		client: &http.Client{Timeout: 2 * time.Minute}}
	s.httpReqs = reg.NewCounterFamily("ufp_http_requests_total",
		"HTTP requests by route pattern, status class, and deprecation.",
		"route", "code", "deprecated")
	s.httpLatency = reg.NewHistogramFamily("ufp_http_request_duration_seconds",
		"Wall time serving each request, by route pattern.",
		truthfulufp.MetricsDefLatencyBuckets, "route")
	s.inFlight = reg.NewGaugeFamily("ufp_http_in_flight",
		"Requests currently being served.").Gauge()
	s.forwarded = reg.NewCounterFamily("ufp_route_forwarded_total",
		"Session calls proxied to a peer, by peer index (route mode).", "peer")
	return s
}

// newHandler is the one-call convenience wiring (private registry,
// discard logger) used by tests.
func newHandler(router *truthfulufp.ShardRouter, defaultEps float64, timeout time.Duration) http.Handler {
	return newServer(router, defaultEps, timeout, nil, nil).handler()
}

// handler builds the endpoint mux, every route instrumented — the
// deprecated aliases run through the same middleware chain with
// deprecated="true" so legacy traffic volume is measurable.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	v1 := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(route, false, h))
	}
	legacy := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(route, true, h))
	}
	v1("GET /v1/algorithms", "/v1/algorithms", s.handleAlgorithms)
	v1("POST /v1/solve", "/v1/solve", s.handleV1Solve)
	v1("POST /v1/networks", "/v1/networks", s.handleNetworkRegister)
	v1("GET /v1/networks/{id}", "/v1/networks/{id}", s.handleNetworkInfo)
	v1("DELETE /v1/networks/{id}", "/v1/networks/{id}", s.handleNetworkDelete)
	v1("POST /v1/networks/{id}/admit", "/v1/networks/{id}/admit", s.handleAdmit)
	v1("POST /v1/networks/{id}/price", "/v1/networks/{id}/price", s.handlePrice)
	v1("POST /v1/networks/{id}/release", "/v1/networks/{id}/release", s.handleRelease)
	v1("GET /v1/healthz", "/v1/healthz", s.handleHealthz)
	v1("GET /v1/readyz", "/v1/readyz", s.handleReadyz)
	v1("GET /metrics", "/metrics", s.reg.Handler().ServeHTTP)
	// Deprecated aliases over the same dispatch.
	legacy("POST /solve", "/solve", s.handleLegacySolve)
	legacy("POST /mechanism", "/mechanism", s.handleLegacyMechanism)
	legacy("POST /auction", "/auction", s.handleLegacyAuction)
	legacy("GET /healthz", "/healthz", s.deprecated("/v1/healthz", s.handleHealthz))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeHTTP(w, r)
		// dispatch sets a per-request write deadline, and with no blanket
		// Server.WriteTimeout net/http never resets it — clear it here so
		// it cannot outlive this request on a keep-alive connection.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	})
}

// Legacy-route lifecycle (RFC 9745 Deprecation, RFC 8594 Sunset): the
// pre-v1 routes were deprecated when the v1 session surface landed and
// are removed at the sunset date.
var (
	legacyDeprecatedAt = time.Date(2026, time.August, 1, 0, 0, 0, 0, time.UTC)
	legacySunsetAt     = time.Date(2027, time.February, 1, 0, 0, 0, 0, time.UTC)
)

// deprecated wraps a legacy handler with the deprecation headers and a
// successor-version link.
func (s *server) deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hdr := w.Header()
		hdr.Set("Deprecation", fmt.Sprintf("@%d", legacyDeprecatedAt.Unix()))
		hdr.Set("Sunset", legacySunsetAt.Format(http.TimeFormat))
		hdr.Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// Stable machine-readable error codes (the "code" of the error
// envelope). These are API surface: clients branch on them.
const (
	codeBadRequest       = "bad_request"       // malformed body, schema, or parameters
	codeBodyTooLarge     = "body_too_large"    // request body over the size cap
	codeUnknownAlgorithm = "unknown_algorithm" // algorithm not in the registry
	codeNotFound         = "not_found"         // unknown network or admission id
	codeSessionClosed    = "session_closed"    // session evicted or closed mid-request
	codeTimeout          = "timeout"           // solve exceeded the per-request timeout
	codeUnavailable      = "unavailable"       // server shutting down
	codeOverloaded       = "overloaded"        // job queue full; retry after the Retry-After hint
	codeUpstream         = "upstream_error"    // route mode: the owning peer was unreachable
	codeSolveFailed      = "solve_failed"      // algorithm rejected the instance
	codeInternal         = "internal"          // response encoding failure
)

// errorResponse is the unified error envelope of every endpoint.
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RequestID echoes the request's id (the X-Request-Id response
	// header) so a client-reported failure is greppable in the request
	// log.
	RequestID string `json:"requestId,omitempty"`
}

// maxRequestBytes caps request bodies so one oversized instance cannot
// exhaust server memory.
const maxRequestBytes = 32 << 20

// decodeJSON strictly decodes a request body into v (unknown fields
// and trailing garbage rejected), writing the error envelope on
// failure. The one decode path of every POST endpoint.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, codeBadRequest, errors.New("trailing data after the JSON document"))
		return false
	}
	return true
}

// solveRequest is the body of /v1/solve and its deprecated aliases.
// Instance carries the cmd/ufprun (UFP) or cmd/aucrun (auction)
// schema, per the algorithm's kind.
type solveRequest struct {
	// Algorithm selects the registry solver on /v1/solve (see
	// /v1/algorithms for the catalog).
	Algorithm string `json:"algorithm"`
	// Kind is the deprecated /solve spelling of Algorithm (default
	// "ufp/solve" there).
	Kind string `json:"kind"`
	// Mode selects "solve" (default) or "mechanism" on the deprecated
	// /auction alias.
	Mode string `json:"mode"`
	// Eps is the accuracy parameter ε (default: the server's -eps flag).
	Eps *float64 `json:"eps"`
	// Seed parameterizes randomized solvers (e.g. "ufp/rounding").
	Seed uint64 `json:"seed"`
	// MaxIterations caps iterative main loops (0 = unlimited);
	// recommended for the pseudo-polynomial ufp/repeat*.
	MaxIterations int             `json:"maxIterations"`
	NoCache       bool            `json:"noCache"`
	Instance      json.RawMessage `json:"instance"`
}

// solveResponse wraps the canonical result encoding with job metadata.
type solveResponse struct {
	Algorithm  string          `json:"algorithm,omitempty"`
	Allocation json.RawMessage `json:"allocation,omitempty"`
	Outcome    json.RawMessage `json:"outcome,omitempty"`
	CacheHit   bool            `json:"cacheHit"`
	ElapsedMs  float64         `json:"elapsedMs"`
}

// decodeSolveRequest is the one decode path shared by /v1/solve and
// every deprecated alias (legacy request bodies are a subset of the v1
// schema, so strict decoding covers all four routes).
func (s *server) decodeSolveRequest(w http.ResponseWriter, r *http.Request) (*solveRequest, bool) {
	var req solveRequest
	if !decodeJSON(w, r, &req) {
		return nil, false
	}
	if len(req.Instance) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, errors.New("request is missing an instance"))
		return nil, false
	}
	return &req, true
}

func (s *server) eps(eps *float64) float64 {
	if eps != nil {
		return *eps
	}
	return s.defaultEps
}

// dispatch runs the job on the engine under the per-request timeout
// (non-positive timeout = none). The body is already read at this point,
// so the write deadline budgets the solve plus response, independent of
// upload speed.
func (s *server) dispatch(w http.ResponseWriter, r *http.Request, job truthfulufp.Job) (*truthfulufp.JobResult, bool) {
	ctx := r.Context()
	if s.timeout > 0 {
		// Best effort: some ResponseWriters (tests, middleware) may not
		// support deadlines; the engine context below still bounds the wait.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(s.timeout + 15*time.Second))
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	res, err := s.router.Do(ctx, job)
	if err != nil {
		status, code := http.StatusUnprocessableEntity, codeSolveFailed
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status, code = http.StatusGatewayTimeout, codeTimeout
		case errors.Is(err, truthfulufp.ErrEngineClosed):
			status, code = http.StatusServiceUnavailable, codeUnavailable
		case errors.Is(err, truthfulufp.ErrEngineOverloaded):
			status, code = http.StatusTooManyRequests, codeOverloaded
			retry := time.Second
			var oe *truthfulufp.EngineOverloadError
			if errors.As(err, &oe) {
				retry = oe.RetryAfter
			}
			// Whole seconds per RFC 9110, rounded up so the jittered hint
			// never invites an instant retry.
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
		}
		writeError(w, status, code, err)
		return nil, false
	}
	return res, true
}

// algorithmInfo is one entry of /v1/algorithms.
type algorithmInfo struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Mechanism bool   `json:"mechanism"`
	// DefaultMaxIterations is the main-loop cap applied when the request
	// leaves maxIterations zero (omitted when zero means unlimited); the
	// pseudo-polynomial repeat variants carry one.
	DefaultMaxIterations int    `json:"defaultMaxIterations,omitempty"`
	Description          string `json:"description,omitempty"`
}

type algorithmsResponse struct {
	Algorithms []algorithmInfo `json:"algorithms"`
}

func (s *server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	resp := algorithmsResponse{Algorithms: []algorithmInfo{}}
	for _, sv := range truthfulufp.Solvers() {
		resp.Algorithms = append(resp.Algorithms, algorithmInfo{
			Name:                 sv.Name(),
			Kind:                 string(sv.Kind()),
			Mechanism:            sv.Kind().IsMechanism(),
			DefaultMaxIterations: truthfulufp.SolverDefaultMaxIterations(sv),
			Description:          truthfulufp.SolverDescription(sv),
		})
	}
	writeResult(w, resp)
}

// handleV1Solve runs any registered algorithm by name — the one solve
// path; the deprecated aliases resolve an algorithm and land here too.
func (s *server) handleV1Solve(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSolveRequest(w, r)
	if !ok {
		return
	}
	if req.Algorithm == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			errors.New("request is missing an algorithm (see GET /v1/algorithms)"))
		return
	}
	s.runSolve(w, r, req, req.Algorithm, "")
}

// runSolve is the single execution path behind /v1/solve and the
// deprecated aliases: resolve the algorithm, decode the instance per
// its kind, dispatch on the engine, and write the solve response.
// wantKind, when non-empty, restricts the algorithm's solver kind (the
// aliases' fixed shapes).
func (s *server) runSolve(w http.ResponseWriter, r *http.Request, req *solveRequest, algorithm string, wantKind truthfulufp.SolverKind) {
	sv, registered := truthfulufp.LookupSolver(algorithm)
	if !registered {
		writeError(w, http.StatusBadRequest, codeUnknownAlgorithm,
			fmt.Errorf("unknown algorithm %q (see GET /v1/algorithms)", algorithm))
		return
	}
	if wantKind != "" && sv.Kind() != wantKind {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Errorf("algorithm %q is not served by this endpoint (use POST /v1/solve)", algorithm))
		return
	}
	job := truthfulufp.Job{
		Algorithm: algorithm, Eps: s.eps(req.Eps), Seed: req.Seed,
		MaxIterations: req.MaxIterations, NoCache: req.NoCache,
	}
	if sv.Kind().IsUFP() {
		inst, err := truthfulufp.UnmarshalInstance(req.Instance)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		job.UFP = inst
	} else {
		inst, err := truthfulufp.UnmarshalAuction(req.Instance)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
		job.Auction = inst
	}
	res, ok := s.dispatch(w, r, job)
	if !ok {
		return
	}
	body, err := truthfulufp.MarshalSolverOutput(truthfulufp.SolverOutput{
		Allocation:        res.Allocation,
		AuctionAllocation: res.AuctionAllocation,
		UFPOutcome:        res.UFPOutcome,
		AuctionOutcome:    res.AuctionOutcome,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	resp := solveResponse{Algorithm: algorithm, CacheHit: res.CacheHit, ElapsedMs: ms(res.Elapsed)}
	if sv.Kind().IsMechanism() {
		resp.Outcome = body
	} else {
		resp.Allocation = body
	}
	writeResult(w, resp)
}

// handleLegacySolve is the deprecated /solve alias: the v1 dispatch
// with the algorithm drawn from the legacy "kind" field.
func (s *server) handleLegacySolve(w http.ResponseWriter, r *http.Request) {
	s.deprecated("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		req, ok := s.decodeSolveRequest(w, r)
		if !ok {
			return
		}
		alg := req.Kind
		if alg == "" {
			alg = "ufp/solve"
		}
		s.runSolve(w, r, req, alg, truthfulufp.SolverUFP)
	})(w, r)
}

// handleLegacyMechanism is the deprecated /mechanism alias: /v1/solve
// fixed to "ufp/mechanism".
func (s *server) handleLegacyMechanism(w http.ResponseWriter, r *http.Request) {
	s.deprecated("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		req, ok := s.decodeSolveRequest(w, r)
		if !ok {
			return
		}
		s.runSolve(w, r, req, "ufp/mechanism", truthfulufp.SolverUFPMechanism)
	})(w, r)
}

// handleLegacyAuction is the deprecated /auction alias: /v1/solve with
// the algorithm drawn from the legacy "mode" field.
func (s *server) handleLegacyAuction(w http.ResponseWriter, r *http.Request) {
	s.deprecated("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		req, ok := s.decodeSolveRequest(w, r)
		if !ok {
			return
		}
		switch req.Mode {
		case "", "solve":
			s.runSolve(w, r, req, "muca/solve", truthfulufp.SolverAuction)
		case "mechanism":
			s.runSolve(w, r, req, "muca/mechanism", truthfulufp.SolverAuctionMechanism)
		default:
			writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Errorf("unknown auction mode %q (want solve|mechanism)", req.Mode))
		}
	})(w, r)
}

// registerRequest is the body of POST /v1/networks.
type registerRequest struct {
	// Network is the topology to register (the instance schema minus
	// requests: directed, vertices, edges).
	Network json.RawMessage `json:"network"`
	// Eps is the session's accuracy parameter ε (default: the server's
	// -eps flag). Fixed at registration: prices depend on it.
	Eps *float64 `json:"eps"`
}

// networkResponse wraps a session's point-in-time view.
type networkResponse struct {
	Network truthfulufp.SessionInfo `json:"network"`
	// Ledger lists the live admissions (GET /v1/networks/{id} only).
	Ledger []admittedJSON `json:"ledger,omitempty"`
}

// admittedJSON is one live ledger entry on the wire.
type admittedJSON struct {
	ID     int64   `json:"id"`
	Source int     `json:"source"`
	Target int     `json:"target"`
	Demand float64 `json:"demand"`
	Value  float64 `json:"value"`
	Price  float64 `json:"price"`
	Path   []int   `json:"path"`
}

func encodeAdmitted(a *truthfulufp.AdmittedRequest) admittedJSON {
	return admittedJSON{
		ID:     a.ID,
		Source: a.Request.Source,
		Target: a.Request.Target,
		Demand: a.Request.Demand,
		Value:  a.Request.Value,
		Price:  a.Price,
		Path:   a.Path,
	}
}

func (s *server) handleNetworkRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Network) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, errors.New("request is missing a network"))
		return
	}
	g, err := truthfulufp.UnmarshalNetwork(req.Network)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	sess, err := s.router.Register(g, s.eps(req.Eps))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	info, err := sess.Info()
	if err != nil {
		// Only possible if the session was evicted in the same instant.
		writeError(w, http.StatusServiceUnavailable, codeSessionClosed, err)
		return
	}
	w.Header().Set("Location", "/v1/networks/"+sess.ID())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	if err := json.NewEncoder(w).Encode(networkResponse{Network: info}); err != nil {
		panic(http.ErrAbortHandler)
	}
}

// session resolves the {id} path segment to a live session on its
// owning local shard — or, in route mode, proxies the whole request to
// the peer the id's node prefix names (the caller is then done: the
// peer's response has been relayed).
func (s *server) session(w http.ResponseWriter, r *http.Request) (*truthfulufp.Session, bool) {
	id := r.PathValue("id")
	if s.forwardSession(w, r, id) {
		return nil, false
	}
	sess, ok := s.router.Session(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no network %q (expired, closed, or never registered)", id))
		return nil, false
	}
	return sess, true
}

// forwardSession reports whether the request was proxied to a peer: in
// route mode, an id owned by no local shard but carrying another
// node's prefix ("p<j>.") belongs to peers[j]. Ids that parse to no
// peer fall through to the local not-found path (and the router's
// misrouted counter).
func (s *server) forwardSession(w http.ResponseWriter, r *http.Request, id string) bool {
	if !s.routeMode {
		return false
	}
	if _, ok := s.router.Owner(id); ok {
		return false
	}
	peer, ok := peerIndex(id)
	if !ok || peer == s.self || peer >= len(s.peers) {
		return false
	}
	s.proxy(w, r, peer)
	return true
}

// peerIndex parses the node prefix "p<j>." off a session id.
func peerIndex(id string) (int, bool) {
	if len(id) < 3 || id[0] != 'p' {
		return 0, false
	}
	dot := strings.IndexByte(id, '.')
	if dot < 2 {
		return 0, false
	}
	j, err := strconv.Atoi(id[1:dot])
	if err != nil || j < 0 {
		return 0, false
	}
	return j, true
}

// proxy relays the request verbatim to the owning peer, propagating
// the request id so one logical call is greppable across the fleet's
// request logs, and streams the peer's response back.
func (s *server) proxy(w http.ResponseWriter, r *http.Request, peer int) {
	url := s.peers[peer] + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		writeError(w, http.StatusBadGateway, codeUpstream, err)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(requestIDHeader, w.Header().Get(requestIDHeader))
	resp, err := s.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, codeUpstream,
			fmt.Errorf("forwarding to peer %d: %w", peer, err))
		return
	}
	defer resp.Body.Close()
	s.forwarded.Counter(strconv.Itoa(peer)).Inc()
	for _, h := range []string{"Content-Type", "Retry-After", "Location"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// sessionError writes the envelope for a failed session operation:
// a concurrent eviction is 410 Gone, anything else is a bad request.
func sessionError(w http.ResponseWriter, err error) {
	if errors.Is(err, truthfulufp.ErrSessionClosed) {
		writeError(w, http.StatusGone, codeSessionClosed, err)
		return
	}
	writeError(w, http.StatusBadRequest, codeBadRequest, err)
}

func (s *server) handleNetworkInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	info, err := sess.Info()
	if err != nil {
		sessionError(w, err)
		return
	}
	ledger, err := sess.Ledger()
	if err != nil {
		sessionError(w, err)
		return
	}
	resp := networkResponse{Network: info, Ledger: make([]admittedJSON, 0, len(ledger))}
	for _, a := range ledger {
		resp.Ledger = append(resp.Ledger, encodeAdmitted(a))
	}
	writeResult(w, resp)
}

func (s *server) handleNetworkDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.forwardSession(w, r, id) {
		return
	}
	if !s.router.CloseSession(id) {
		writeError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no network %q (expired, closed, or never registered)", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// admitRequest is the body of /admit and /price: one online request.
type admitRequest struct {
	Source int     `json:"source"`
	Target int     `json:"target"`
	Demand float64 `json:"demand"`
	Value  float64 `json:"value"`
}

// decisionResponse is the outcome of an admit or price call. Price is
// null when no path exists (JSON has no +Inf).
type decisionResponse struct {
	Admitted bool     `json:"admitted"`
	ID       int64    `json:"id,omitempty"`
	Reason   string   `json:"reason,omitempty"`
	Price    *float64 `json:"price"`
	Path     []int    `json:"path,omitempty"`
	// ElapsedMs is the server-side cost of this streamed step — the
	// number the session layer exists to shrink.
	ElapsedMs float64 `json:"elapsedMs"`
}

func encodeDecision(d truthfulufp.AdmitDecision, elapsed time.Duration) decisionResponse {
	resp := decisionResponse{
		Admitted:  d.Admitted,
		ID:        d.ID,
		Reason:    string(d.Reason),
		Path:      d.Path,
		ElapsedMs: ms(elapsed),
	}
	if d.Reason != truthfulufp.RejectNoPath {
		price := d.Price
		resp.Price = &price
	}
	return resp
}

// streamOp runs one admit/price call: decode the request, run op under
// the session's lock, answer with the decision.
func (s *server) streamOp(w http.ResponseWriter, r *http.Request, op func(*truthfulufp.Session, truthfulufp.Request) (truthfulufp.AdmitDecision, error)) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req admitRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	start := time.Now()
	d, err := op(sess, truthfulufp.Request{
		Source: req.Source, Target: req.Target, Demand: req.Demand, Value: req.Value,
	})
	if err != nil {
		sessionError(w, err)
		return
	}
	writeResult(w, encodeDecision(d, time.Since(start)))
}

func (s *server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	s.streamOp(w, r, (*truthfulufp.Session).Admit)
}

func (s *server) handlePrice(w http.ResponseWriter, r *http.Request) {
	s.streamOp(w, r, (*truthfulufp.Session).Quote)
}

// releaseRequest is the body of /release: a prior admission's id.
type releaseRequest struct {
	ID int64 `json:"id"`
}

type releaseResponse struct {
	Released admittedJSON `json:"released"`
}

func (s *server) handleRelease(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req releaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	a, err := sess.Release(req.ID)
	if err != nil {
		if errors.Is(err, truthfulufp.ErrSessionClosed) {
			writeError(w, http.StatusGone, codeSessionClosed, err)
		} else {
			writeError(w, http.StatusNotFound, codeNotFound, err)
		}
		return
	}
	writeResult(w, releaseResponse{Released: encodeAdmitted(a)})
}

// healthResponse is /v1/healthz: liveness, the cluster's summed
// counters, and the session managers'.
type healthResponse struct {
	Status        string                   `json:"status"`
	UptimeSec     float64                  `json:"uptimeSec"`
	Shards        int                      `json:"shards"`
	Workers       int                      `json:"workers"`
	Submitted     int64                    `json:"submitted"`
	Completed     int64                    `json:"completed"`
	CacheHits     int64                    `json:"cacheHits"`
	Coalesced     int64                    `json:"coalesced"`
	Failures      int64                    `json:"failures"`
	Cancelled     int64                    `json:"cancelled"`
	Shed          int64                    `json:"shed"`
	Diverted      int64                    `json:"diverted"`
	Misrouted     int64                    `json:"misrouted"`
	JobsPerSec    float64                  `json:"jobsPerSec"`
	LatencyMeanMs float64                  `json:"latencyMeanMs"`
	LatencyMaxMs  float64                  `json:"latencyMaxMs"`
	Sessions      truthfulufp.SessionStats `json:"sessions"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.router.Snapshot()
	resp := healthResponse{
		Status:     "ok",
		UptimeSec:  snap.Uptime.Seconds(),
		Shards:     snap.Shards,
		Workers:    snap.Workers,
		Submitted:  snap.Submitted,
		Completed:  snap.Completed,
		CacheHits:  snap.CacheHits,
		Coalesced:  snap.Coalesced,
		Failures:   snap.Failures,
		Cancelled:  snap.Cancelled,
		Shed:       snap.Shed,
		Diverted:   snap.Diverted,
		Misrouted:  snap.Misrouted,
		JobsPerSec: snap.JobsPerSec(),
		Sessions:   snap.Sessions,
	}
	// Mean latency weights each shard by its sample count; max is the
	// fleet max (quantile summaries don't merge, means and maxes do).
	var n int
	var sum, maxMs float64
	for _, ss := range snap.PerShard {
		lat := ss.Engine.Latency
		if lat.N() == 0 {
			continue
		}
		n += lat.N()
		sum += lat.Mean() * float64(lat.N())
		if m := lat.Max() * 1e3; m > maxMs {
			maxMs = m
		}
	}
	if n > 0 {
		resp.LatencyMeanMs = sum / float64(n) * 1e3
		resp.LatencyMaxMs = maxMs
	}
	writeResult(w, resp)
}

// readyResponse is /v1/readyz while serving. Saturated reports every
// queue slot and worker busy cluster-wide — the load balancer's early
// overload signal; the probe still answers 200 (shedding, not
// draining: new jobs get fast 429s, streamed session ops still serve).
type readyResponse struct {
	Status        string `json:"status"`
	Saturated     bool   `json:"saturated"`
	QueueDepth    int    `json:"queueDepth"`
	QueueCapacity int    `json:"queueCapacity"`
	Shed          int64  `json:"shed"`
}

// handleReadyz is the readiness probe: 200 while serving, 503 once the
// server is draining on shutdown (liveness — /v1/healthz — stays 200
// throughout, so orchestrators stop routing without restarting the
// process mid-drain). While serving, the body carries the saturation
// view so probes can distinguish "ready" from "ready but shedding".
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, codeUnavailable,
			errors.New("server is draining"))
		return
	}
	snap := s.router.Snapshot()
	writeResult(w, readyResponse{
		Status:        "ok",
		Saturated:     snap.QueueCapacity > 0 && snap.QueueDepth >= snap.QueueCapacity,
		QueueDepth:    snap.QueueDepth,
		QueueCapacity: snap.QueueCapacity,
		Shed:          snap.Shed,
	})
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeResult(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than abort the connection.
		panic(http.ErrAbortHandler)
	}
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: errorBody{
		Code:    code,
		Message: err.Error(),
		// The middleware sets the response header before the handler
		// runs, so reading it back here threads the id into the envelope
		// without changing every writeError call site.
		RequestID: w.Header().Get(requestIDHeader),
	}})
}
