// Command ufpserve is the HTTP/JSON front end of the concurrent solve
// engine: it serves UFP/MUCA solve and truthful-mechanism traffic on a
// bounded worker pool with in-flight deduplication and a keyed result
// cache, answering exactly what the direct library calls would.
//
// Usage:
//
//	ufpserve [-addr :8080] [-workers 0] [-solve-workers 1] [-cache 1024] [-eps 0.25] [-timeout 60s]
//
// Endpoints:
//
//	GET  /v1/algorithms
//	POST /v1/solve   {"algorithm": "ufp/solve", "eps": 0.25, "instance": {...}}
//	POST /solve      {"kind": "ufp/solve", "eps": 0.25, "instance": {...}}
//	POST /mechanism  {"eps": 0.25, "instance": {...}}
//	POST /auction    {"mode": "solve"|"mechanism", "eps": 0.25, "instance": {...}}
//	GET  /healthz
//
// The /v1 pair is the registry-backed surface: /v1/algorithms lists
// every registered solver, and /v1/solve runs any of them by name — UFP
// or auction, allocation or mechanism — deciding the instance schema
// from the algorithm's kind. The older /solve, /mechanism, and /auction
// endpoints remain as fixed-algorithm spellings of the same dispatch.
//
// Instances use the same JSON schema as cmd/ufprun and cmd/aucrun (see
// the root package's MarshalInstance/MarshalAuction). Solve responses
// wrap the canonical allocation/outcome encodings plus cache metadata.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"truthfulufp"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ufpserve:", err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("ufpserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "engine workers = concurrent jobs (0 = GOMAXPROCS)")
		solveWorkers = fs.Int("solve-workers", 1, "goroutines per solve (intra-job parallelism)")
		cache        = fs.Int("cache", 0, "result cache entries (0 = default, negative = disabled)")
		queue        = fs.Int("queue", 0, "pending-job queue depth (0 = 4x workers)")
		eps          = fs.Float64("eps", 0.25, "default accuracy parameter ε")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request solve timeout, 0 = none (a solve abandoned by every client is cancelled and its worker reclaimed)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine := truthfulufp.NewEngine(truthfulufp.EngineConfig{
		Workers:      *workers,
		SolveWorkers: *solveWorkers,
		CacheSize:    *cache,
		QueueDepth:   *queue,
	})
	defer engine.Close()
	// No blanket WriteTimeout: dispatch sets a per-request write deadline
	// after the body is read, so slow uploads don't eat the solve budget.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(engine, *eps, *timeout),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(logw, "ufpserve: listening on %s (%d workers)\n", *addr, engine.Workers())
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// server holds the handler's dependencies.
type server struct {
	engine     *truthfulufp.Engine
	defaultEps float64
	timeout    time.Duration
}

// newHandler wires the endpoint mux around an engine. The engine is
// owned by the caller (tests share one across httptest servers).
func newHandler(engine *truthfulufp.Engine, defaultEps float64, timeout time.Duration) http.Handler {
	s := &server{engine: engine, defaultEps: defaultEps, timeout: timeout}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("POST /v1/solve", s.handleV1Solve)
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("POST /mechanism", s.handleMechanism)
	mux.HandleFunc("POST /auction", s.handleAuction)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeHTTP(w, r)
		// dispatch sets a per-request write deadline, and with no blanket
		// Server.WriteTimeout net/http never resets it — clear it here so
		// it cannot outlive this request on a keep-alive connection.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	})
}

// solveRequest is the body of /v1/solve, /solve, /mechanism, and
// /auction. Instance carries the cmd/ufprun (UFP) or cmd/aucrun
// (auction) schema, per the algorithm's kind.
type solveRequest struct {
	// Algorithm selects the registry solver on /v1/solve (see
	// /v1/algorithms for the catalog).
	Algorithm string `json:"algorithm"`
	// Kind selects the algorithm on /solve by registry name (default
	// "ufp/solve"); the legacy spelling of Algorithm for that endpoint.
	Kind string `json:"kind"`
	// Mode selects "solve" (default) or "mechanism" on /auction.
	Mode string `json:"mode"`
	// Eps is the accuracy parameter ε (default: the server's -eps flag).
	Eps *float64 `json:"eps"`
	// Seed parameterizes randomized solvers (e.g. "ufp/rounding").
	Seed uint64 `json:"seed"`
	// MaxIterations caps iterative main loops on /v1/solve (0 =
	// unlimited); recommended for the pseudo-polynomial ufp/repeat*.
	MaxIterations int             `json:"maxIterations"`
	NoCache       bool            `json:"noCache"`
	Instance      json.RawMessage `json:"instance"`
}

// solveResponse wraps the canonical result encoding with job metadata.
type solveResponse struct {
	Algorithm  string          `json:"algorithm,omitempty"`
	Allocation json.RawMessage `json:"allocation,omitempty"`
	Outcome    json.RawMessage `json:"outcome,omitempty"`
	CacheHit   bool            `json:"cacheHit"`
	ElapsedMs  float64         `json:"elapsedMs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes caps request bodies so one oversized instance cannot
// exhaust server memory.
const maxRequestBytes = 32 << 20

func (s *server) decodeRequest(w http.ResponseWriter, r *http.Request) (*solveRequest, bool) {
	var req solveRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return nil, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return nil, false
	}
	if len(req.Instance) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("request is missing an instance"))
		return nil, false
	}
	return &req, true
}

func (s *server) eps(req *solveRequest) float64 {
	if req.Eps != nil {
		return *req.Eps
	}
	return s.defaultEps
}

// dispatch runs the job on the engine under the per-request timeout
// (non-positive timeout = none). The body is already read at this point,
// so the write deadline budgets the solve plus response, independent of
// upload speed.
func (s *server) dispatch(w http.ResponseWriter, r *http.Request, job truthfulufp.Job) (*truthfulufp.JobResult, bool) {
	ctx := r.Context()
	if s.timeout > 0 {
		// Best effort: some ResponseWriters (tests, middleware) may not
		// support deadlines; the engine context below still bounds the wait.
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(s.timeout + 15*time.Second))
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	res, err := s.engine.Do(ctx, job)
	if err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, truthfulufp.ErrEngineClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return nil, false
	}
	return res, true
}

// algorithmInfo is one entry of /v1/algorithms.
type algorithmInfo struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Mechanism bool   `json:"mechanism"`
	// DefaultMaxIterations is the main-loop cap applied when the request
	// leaves maxIterations zero (omitted when zero means unlimited); the
	// pseudo-polynomial repeat variants carry one.
	DefaultMaxIterations int    `json:"defaultMaxIterations,omitempty"`
	Description          string `json:"description,omitempty"`
}

type algorithmsResponse struct {
	Algorithms []algorithmInfo `json:"algorithms"`
}

func (s *server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	resp := algorithmsResponse{Algorithms: []algorithmInfo{}}
	for _, sv := range truthfulufp.Solvers() {
		resp.Algorithms = append(resp.Algorithms, algorithmInfo{
			Name:                 sv.Name(),
			Kind:                 string(sv.Kind()),
			Mechanism:            sv.Kind().IsMechanism(),
			DefaultMaxIterations: truthfulufp.SolverDefaultMaxIterations(sv),
			Description:          truthfulufp.SolverDescription(sv),
		})
	}
	writeResult(w, resp)
}

// handleV1Solve runs any registered algorithm by name: the generic,
// registry-backed spelling of the fixed-algorithm endpoints below.
func (s *server) handleV1Solve(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if req.Algorithm == "" {
		writeError(w, http.StatusBadRequest, errors.New("request is missing an algorithm (see GET /v1/algorithms)"))
		return
	}
	sv, ok := truthfulufp.LookupSolver(req.Algorithm)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q (see GET /v1/algorithms)", req.Algorithm))
		return
	}
	job := truthfulufp.Job{
		Algorithm: req.Algorithm, Eps: s.eps(req), Seed: req.Seed,
		MaxIterations: req.MaxIterations, NoCache: req.NoCache,
	}
	if sv.Kind().IsUFP() {
		inst, err := truthfulufp.UnmarshalInstance(req.Instance)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job.UFP = inst
	} else {
		inst, err := truthfulufp.UnmarshalAuction(req.Instance)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job.Auction = inst
	}
	res, ok := s.dispatch(w, r, job)
	if !ok {
		return
	}
	body, err := truthfulufp.MarshalSolverOutput(truthfulufp.SolverOutput{
		Allocation:        res.Allocation,
		AuctionAllocation: res.AuctionAllocation,
		UFPOutcome:        res.UFPOutcome,
		AuctionOutcome:    res.AuctionOutcome,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := solveResponse{Algorithm: req.Algorithm, CacheHit: res.CacheHit, ElapsedMs: ms(res.Elapsed)}
	if sv.Kind().IsMechanism() {
		resp.Outcome = body
	} else {
		resp.Allocation = body
	}
	writeResult(w, resp)
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	alg := req.Kind
	if alg == "" {
		alg = "ufp/solve"
	}
	sv, registered := truthfulufp.LookupSolver(alg)
	if !registered {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown solve kind %q", req.Kind))
		return
	}
	if sv.Kind() != truthfulufp.SolverUFP {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("kind %q is not served by /solve (use /mechanism or /auction)", req.Kind))
		return
	}
	inst, err := truthfulufp.UnmarshalInstance(req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, ok := s.dispatch(w, r, truthfulufp.Job{
		Algorithm: alg, Eps: s.eps(req), UFP: inst, NoCache: req.NoCache,
	})
	if !ok {
		return
	}
	body, err := truthfulufp.MarshalAllocation(res.Allocation)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeResult(w, solveResponse{Allocation: body, CacheHit: res.CacheHit, ElapsedMs: ms(res.Elapsed)})
}

func (s *server) handleMechanism(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	inst, err := truthfulufp.UnmarshalInstance(req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, ok := s.dispatch(w, r, truthfulufp.Job{
		Algorithm: "ufp/mechanism", Eps: s.eps(req), UFP: inst, NoCache: req.NoCache,
	})
	if !ok {
		return
	}
	body, err := truthfulufp.MarshalUFPOutcome(res.UFPOutcome)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeResult(w, solveResponse{Outcome: body, CacheHit: res.CacheHit, ElapsedMs: ms(res.Elapsed)})
}

func (s *server) handleAuction(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	inst, err := truthfulufp.UnmarshalAuction(req.Instance)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch req.Mode {
	case "", "solve":
		res, ok := s.dispatch(w, r, truthfulufp.Job{
			Algorithm: "muca/solve", Eps: s.eps(req), Auction: inst, NoCache: req.NoCache,
		})
		if !ok {
			return
		}
		body, err := truthfulufp.MarshalAuctionAllocation(res.AuctionAllocation)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeResult(w, solveResponse{Allocation: body, CacheHit: res.CacheHit, ElapsedMs: ms(res.Elapsed)})
	case "mechanism":
		res, ok := s.dispatch(w, r, truthfulufp.Job{
			Algorithm: "muca/mechanism", Eps: s.eps(req), Auction: inst, NoCache: req.NoCache,
		})
		if !ok {
			return
		}
		body, err := truthfulufp.MarshalAuctionOutcome(res.AuctionOutcome)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeResult(w, solveResponse{Outcome: body, CacheHit: res.CacheHit, ElapsedMs: ms(res.Elapsed)})
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown auction mode %q (want solve|mechanism)", req.Mode))
	}
}

// healthResponse is /healthz: liveness plus the engine's counters.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSec     float64 `json:"uptimeSec"`
	Workers       int     `json:"workers"`
	Submitted     int64   `json:"submitted"`
	Completed     int64   `json:"completed"`
	CacheHits     int64   `json:"cacheHits"`
	Coalesced     int64   `json:"coalesced"`
	Failures      int64   `json:"failures"`
	Cancelled     int64   `json:"cancelled"`
	JobsPerSec    float64 `json:"jobsPerSec"`
	LatencyMeanMs float64 `json:"latencyMeanMs"`
	LatencyMaxMs  float64 `json:"latencyMaxMs"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.engine.Snapshot()
	resp := healthResponse{
		Status:     "ok",
		UptimeSec:  snap.Uptime.Seconds(),
		Workers:    snap.Workers,
		Submitted:  snap.Submitted,
		Completed:  snap.Completed,
		CacheHits:  snap.CacheHits,
		Coalesced:  snap.Coalesced,
		Failures:   snap.Failures,
		Cancelled:  snap.Cancelled,
		JobsPerSec: snap.JobsPerSec(),
	}
	if snap.Latency.N() > 0 {
		resp.LatencyMeanMs = snap.Latency.Mean() * 1e3
		resp.LatencyMaxMs = snap.Latency.Max() * 1e3
	}
	writeResult(w, resp)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func writeResult(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more to do than abort the connection.
		panic(http.ErrAbortHandler)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
