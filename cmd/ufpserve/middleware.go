// Per-route observability middleware: request counters by status
// class, an in-flight gauge, latency histograms, Server-Timing headers
// on v1 routes, structured request logging, and per-request IDs. Every
// route — v1 and deprecated alias alike — is registered through
// server.instrument, so /metrics accounts for all traffic and
// deprecated-traffic volume is measurable by label.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// newLogger builds the structured request logger per -log-format.
func newLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
}

// requestIDHeader carries the request id in both directions: a usable
// inbound value is adopted (so ids propagate through proxies and
// retries), and the chosen id is always echoed on the response.
const requestIDHeader = "X-Request-Id"

// ridFallback numbers request ids if the system randomness source ever
// fails.
var ridFallback atomic.Uint64

// requestID returns the caller-supplied id when present and sane, else
// a fresh random one.
func requestID(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); id != "" && len(id) <= 128 && isToken(id) {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		return hex.EncodeToString(b[:])
	}
	return fmt.Sprintf("req%d", ridFallback.Add(1))
}

// isToken reports whether s is printable non-space ASCII — the only
// inbound ids worth echoing into headers and logs.
func isToken(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] > '~' {
			return false
		}
	}
	return true
}

// ridKey carries the request id through the request context.
type ridKey struct{}

// requestIDFrom returns the id instrument stored on the context ("" if
// the request skipped the middleware).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// statusWriter records the response status for labeling and injects
// the Server-Timing header just in time at the first write, when the
// handler's own time is known but headers are still open.
type statusWriter struct {
	http.ResponseWriter
	code   int
	wrote  bool
	start  time.Time
	timing bool // v1 routes get a Server-Timing header
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.code = code
		if w.timing {
			w.Header().Set("Server-Timing",
				fmt.Sprintf("app;dur=%.3f", float64(time.Since(w.start))/float64(time.Millisecond)))
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap keeps http.NewResponseController working through the wrapper
// — dispatch sets per-request write deadlines via the controller, and
// the outer handler clears them.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// status returns the response code (200 when the handler never wrote
// one explicitly).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// statusClass folds a status code into its exposition label: "2xx",
// "4xx", "5xx", ...
func statusClass(code int) string {
	return fmt.Sprintf("%dxx", code/100)
}

// instrument wraps a route handler with the full observability chain:
// request-id adoption/echo, in-flight gauge, per-route latency
// histogram, status-class request counter (with the deprecated label),
// Server-Timing on v1 routes, and one structured log line per request.
// route is the label value — the route pattern, never the raw path, so
// series cardinality stays bounded.
func (s *server) instrument(route string, deprecated bool, h http.HandlerFunc) http.HandlerFunc {
	dep := "false"
	if deprecated {
		dep = "true"
	}
	hist := s.httpLatency.Histogram(route)
	timing := strings.HasPrefix(route, "/v1/")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inFlight.Inc()
		defer s.inFlight.Dec()
		rid := requestID(r)
		w.Header().Set(requestIDHeader, rid)
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))
		sw := &statusWriter{ResponseWriter: w, start: start, timing: timing}
		h(sw, r)
		elapsed := time.Since(start)
		hist.Observe(elapsed.Seconds())
		status := sw.status()
		s.httpReqs.Counter(route, statusClass(status), dep).Inc()
		level := slog.LevelInfo
		if status >= 500 {
			level = slog.LevelError
		}
		s.logger.LogAttrs(r.Context(), level, "request",
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("dur_ms", float64(elapsed)/float64(time.Millisecond)),
			slog.String("request_id", rid),
			slog.Bool("deprecated", deprecated),
		)
	}
}
