package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"truthfulufp"
	"truthfulufp/internal/auction"
	"truthfulufp/internal/scenario"
	"truthfulufp/internal/workload"
)

func newTestServer(t *testing.T) (*httptest.Server, *truthfulufp.ShardRouter) {
	t.Helper()
	router := truthfulufp.NewShardRouter(truthfulufp.ShardConfig{Engine: truthfulufp.EngineConfig{Workers: 4}})
	t.Cleanup(router.Close)
	ts := httptest.NewServer(newHandler(router, 0.25, 30*time.Second))
	t.Cleanup(ts.Close)
	return ts, router
}

func testInstance(t *testing.T, seed uint64) *truthfulufp.Instance {
	t.Helper()
	cfg := workload.DefaultUFPConfig()
	cfg.B = 200 // large capacities so SolveUFP's ε/6 threshold admits winners
	inst, err := workload.RandomUFP(workload.NewRNG(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type wireResponse struct {
	Allocation json.RawMessage `json:"allocation"`
	Outcome    json.RawMessage `json:"outcome"`
	CacheHit   bool            `json:"cacheHit"`
	ElapsedMs  float64         `json:"elapsedMs"`
	Error      *wireError      `json:"error"`
}

func solveBody(t *testing.T, inst *truthfulufp.Instance, extra map[string]any) map[string]any {
	t.Helper()
	raw, err := truthfulufp.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	body := map[string]any{"instance": json.RawMessage(raw)}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

// TestServeSolveMatchesDirectCall is the acceptance check: the served
// allocation re-encodes byte-identically to a direct SolveUFP call.
func TestServeSolveMatchesDirectCall(t *testing.T) {
	ts, _ := newTestServer(t)
	inst := testInstance(t, 1)

	status, out := postJSON(t, ts.URL+"/solve", solveBody(t, inst, map[string]any{"eps": 0.25}))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	var resp wireResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	got, err := truthfulufp.UnmarshalAllocation(resp.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := truthfulufp.MarshalAllocation(got)
	if err != nil {
		t.Fatal(err)
	}

	want, err := truthfulufp.SolveUFP(inst, 0.25, &truthfulufp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := truthfulufp.MarshalAllocation(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("served allocation differs from direct call:\n got %s\nwant %s", gotBytes, wantBytes)
	}
	if len(got.Routed) == 0 {
		t.Fatal("vacuous comparison: nothing routed")
	}
}

// TestServeSolveKinds exercises every /solve kind end to end.
func TestServeSolveKinds(t *testing.T) {
	ts, _ := newTestServer(t)
	inst := testInstance(t, 2)
	for _, kind := range []string{"", "ufp/solve", "ufp/bounded", "ufp/repeat", "ufp/sequential", "ufp/greedy"} {
		extra := map[string]any{}
		if kind != "" {
			extra["kind"] = kind
		}
		status, out := postJSON(t, ts.URL+"/solve", solveBody(t, inst, extra))
		if status != http.StatusOK {
			t.Fatalf("kind %q: status %d: %s", kind, status, out)
		}
		var resp wireResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		if _, err := truthfulufp.UnmarshalAllocation(resp.Allocation); err != nil {
			t.Fatalf("kind %q: bad allocation payload: %v", kind, err)
		}
	}
}

// TestServeMechanismMatchesDirectCall checks /mechanism against a direct
// RunUFPMechanism call, byte for byte.
func TestServeMechanismMatchesDirectCall(t *testing.T) {
	ts, _ := newTestServer(t)
	// Small instance: the mechanism re-runs the solver ~60x per winner.
	g := truthfulufp.NewGraph(2)
	g.AddEdge(0, 1, 30)
	inst := &truthfulufp.Instance{G: g, Requests: []truthfulufp.Request{
		{Source: 0, Target: 1, Demand: 1, Value: 2},
		{Source: 0, Target: 1, Demand: 0.5, Value: 1},
	}}

	status, out := postJSON(t, ts.URL+"/mechanism", solveBody(t, inst, map[string]any{"eps": 0.5}))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	var resp wireResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	got, err := truthfulufp.UnmarshalUFPOutcome(resp.Outcome)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := truthfulufp.MarshalUFPOutcome(got)
	if err != nil {
		t.Fatal(err)
	}
	want, err := truthfulufp.RunUFPMechanism(inst, 0.5, &truthfulufp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := truthfulufp.MarshalUFPOutcome(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("served outcome differs from direct call:\n got %s\nwant %s", gotBytes, wantBytes)
	}
	if len(want.Payments) == 0 {
		t.Fatal("vacuous comparison: no winners")
	}
}

// TestServeAuction exercises /auction in both modes against direct calls.
func TestServeAuction(t *testing.T) {
	ts, _ := newTestServer(t)
	inst, err := auction.RandomInstance(workload.NewRNG(3), auction.RandomConfig{
		Items: 6, Requests: 20, B: 60, MultSpread: 0.3,
		BundleMin: 1, BundleMax: 3, ValueMin: 0.5, ValueMax: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := truthfulufp.MarshalAuction(inst)
	if err != nil {
		t.Fatal(err)
	}

	status, out := postJSON(t, ts.URL+"/auction", map[string]any{"instance": json.RawMessage(raw)})
	if status != http.StatusOK {
		t.Fatalf("solve mode: status %d: %s", status, out)
	}
	var resp wireResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	got, err := truthfulufp.UnmarshalAuctionAllocation(resp.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	want, err := truthfulufp.SolveMUCA(inst, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, _ := truthfulufp.MarshalAuctionAllocation(got)
	wantBytes, _ := truthfulufp.MarshalAuctionAllocation(want)
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("served auction allocation differs:\n got %s\nwant %s", gotBytes, wantBytes)
	}
	if len(want.Selected) == 0 {
		t.Fatal("vacuous comparison: no winners")
	}

	status, out = postJSON(t, ts.URL+"/auction", map[string]any{
		"instance": json.RawMessage(raw), "mode": "mechanism",
	})
	if status != http.StatusOK {
		t.Fatalf("mechanism mode: status %d: %s", status, out)
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	gotOut, err := truthfulufp.UnmarshalAuctionOutcome(resp.Outcome)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotOut.Payments) != len(want.Selected) {
		t.Fatalf("payments %d != winners %d", len(gotOut.Payments), len(want.Selected))
	}
}

// TestServeConcurrentRequests fires parallel solve traffic with repeats
// and checks every response plus the healthz counter balance.
func TestServeConcurrentRequests(t *testing.T) {
	ts, engine := newTestServer(t)
	instances := make([]*truthfulufp.Instance, 4)
	for i := range instances {
		instances[i] = testInstance(t, uint64(10+i))
	}
	wantBytes := make([][]byte, len(instances))
	for i, inst := range instances {
		want, err := truthfulufp.SolveUFP(inst, 0.25, &truthfulufp.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if wantBytes[i], err = truthfulufp.MarshalAllocation(want); err != nil {
			t.Fatal(err)
		}
	}

	const requests = 24
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst := instances[i%len(instances)]
			status, out := postJSON(t, ts.URL+"/solve", solveBody(t, inst, nil))
			if status != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d: %s", i, status, out)
				return
			}
			var resp wireResponse
			if err := json.Unmarshal(out, &resp); err != nil {
				errs <- err
				return
			}
			got, err := truthfulufp.UnmarshalAllocation(resp.Allocation)
			if err != nil {
				errs <- err
				return
			}
			gotBytes, err := truthfulufp.MarshalAllocation(got)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(gotBytes, wantBytes[i%len(instances)]) {
				errs <- fmt.Errorf("request %d: allocation differs from direct call", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := engine.Snapshot()
	if snap.Submitted != requests {
		t.Errorf("submitted = %d, want %d", snap.Submitted, requests)
	}
	if snap.Completed+snap.CacheHits+snap.Coalesced != snap.Submitted || snap.Failures != 0 {
		t.Errorf("counters do not balance: %+v", snap)
	}
	if snap.Completed != int64(len(instances)) {
		t.Errorf("executions = %d, want one per distinct instance = %d", snap.Completed, len(instances))
	}
}

// TestServeZeroTimeout verifies timeout 0 means "no timeout", not
// "already expired".
func TestServeZeroTimeout(t *testing.T) {
	router := truthfulufp.NewShardRouter(truthfulufp.ShardConfig{Engine: truthfulufp.EngineConfig{Workers: 2}})
	t.Cleanup(router.Close)
	ts := httptest.NewServer(newHandler(router, 0.25, 0))
	t.Cleanup(ts.Close)
	status, out := postJSON(t, ts.URL+"/solve", solveBody(t, testInstance(t, 30), nil))
	if status != http.StatusOK {
		t.Fatalf("status %d with zero timeout: %s", status, out)
	}
}

// TestServeHealthz checks the health endpoint's shape.
func TestServeHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Workers != 4 {
		t.Errorf("healthz = %+v", health)
	}
}

// TestServeErrors is the wire-schema gate for the unified error
// envelope: every rejection path answers {"error":{"code","message"}}
// with the documented status and stable code.
func TestServeErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	inst := testInstance(t, 20)

	for _, tc := range []struct {
		name   string
		url    string
		body   any
		status int
		code   string
	}{
		{"bad JSON", "/solve", "{", http.StatusBadRequest, "bad_request"},
		{"trailing garbage", "/solve", "{} {}", http.StatusBadRequest, "bad_request"},
		{"unknown field", "/solve", `{"bogus": 1}`, http.StatusBadRequest, "bad_request"},
		{"missing instance", "/solve", map[string]any{"eps": 0.25}, http.StatusBadRequest, "bad_request"},
		{"unknown kind", "/solve", solveBody(t, inst, map[string]any{"kind": "ufp/nonsense"}), http.StatusBadRequest, "unknown_algorithm"},
		{"auction kind on solve", "/solve", solveBody(t, inst, map[string]any{"kind": "muca/solve"}), http.StatusBadRequest, "bad_request"},
		{"bad eps", "/solve", solveBody(t, inst, map[string]any{"eps": 7.0}), http.StatusUnprocessableEntity, "solve_failed"},
		{"unknown auction mode", "/auction", map[string]any{"mode": "x", "instance": json.RawMessage(`{"multiplicity":[2]}`)}, http.StatusBadRequest, "bad_request"},
		{"missing v1 algorithm", "/v1/solve", solveBody(t, inst, nil), http.StatusBadRequest, "bad_request"},
		{"unknown v1 algorithm", "/v1/solve", solveBody(t, inst, map[string]any{"algorithm": "ufp/imaginary"}), http.StatusBadRequest, "unknown_algorithm"},
		{"missing network", "/v1/networks", map[string]any{"eps": 0.25}, http.StatusBadRequest, "bad_request"},
		{"bad network", "/v1/networks", map[string]any{"network": json.RawMessage(`{"directed":true,"vertices":2,"edges":[{"from":0,"to":9,"capacity":4}]}`)}, http.StatusBadRequest, "bad_request"},
		{"admit on unknown network", "/v1/networks/nope/admit", map[string]any{"source": 0, "target": 1, "demand": 0.5, "value": 1}, http.StatusNotFound, "not_found"},
		{"release on unknown network", "/v1/networks/nope/release", map[string]any{"id": 1}, http.StatusNotFound, "not_found"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var data []byte
			switch b := tc.body.(type) {
			case string:
				data = []byte(b)
			default:
				var err error
				if data, err = json.Marshal(b); err != nil {
					t.Fatal(err)
				}
			}
			resp, err := http.Post(ts.URL+tc.url, "application/json", bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			out, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, out)
			}
			var e wireResponse
			if err := json.Unmarshal(out, &e); err != nil || e.Error == nil {
				t.Fatalf("error body not the envelope: %s", out)
			}
			if e.Error.Code != tc.code || e.Error.Message == "" {
				t.Fatalf("envelope = %+v, want code %q with a message", e.Error, tc.code)
			}
		})
	}

	// Oversized body is rejected with 413 before decoding.
	t.Run("oversized body", func(t *testing.T) {
		huge := append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), maxRequestBytes+1024)...)
		huge = append(huge, `"}`...)
		resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
		var e wireResponse
		if err := json.Unmarshal(out, &e); err != nil || e.Error == nil || e.Error.Code != "body_too_large" {
			t.Fatalf("413 body not the envelope with body_too_large: %s", out)
		}
	})

	// Wrong method on a POST endpoint.
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve status %d, want 405", resp.StatusCode)
	}
}

// TestServeScenarioInstance is the ufpgen acceptance check: a scenario
// instance generated and encoded exactly as cmd/ufpgen emits it solves
// over HTTP, both as a plain solve and as the truthful mechanism.
func TestServeScenarioInstance(t *testing.T) {
	ts, _ := newTestServer(t)
	inst, err := scenario.Generate(scenario.Config{Topology: "fattree", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	status, body := postJSON(t, ts.URL+"/solve", solveBody(t, inst, nil))
	if status != http.StatusOK {
		t.Fatalf("scenario solve: status %d: %s", status, body)
	}
	var resp wireResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	alloc, err := truthfulufp.UnmarshalAllocation(resp.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Routed) == 0 {
		t.Fatal("served scenario solve routed nothing")
	}

	auc, err := scenario.GenerateAuction(scenario.Config{Topology: "startrees", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := truthfulufp.MarshalAuction(auc)
	if err != nil {
		t.Fatal(err)
	}
	status, body = postJSON(t, ts.URL+"/auction", map[string]any{"instance": json.RawMessage(raw)})
	if status != http.StatusOK {
		t.Fatalf("scenario auction solve: status %d: %s", status, body)
	}
}

// TestServeV1Algorithms: the catalog endpoint lists every registered
// solver with its kind, matching the registry.
func TestServeV1Algorithms(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body struct {
		Algorithms []struct {
			Name                 string `json:"name"`
			Kind                 string `json:"kind"`
			Mechanism            bool   `json:"mechanism"`
			DefaultMaxIterations int    `json:"defaultMaxIterations"`
			Description          string `json:"description"`
		} `json:"algorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	want := truthfulufp.SolverNames()
	if len(body.Algorithms) != len(want) {
		t.Fatalf("listed %d algorithms, registry has %d", len(body.Algorithms), len(want))
	}
	for i, a := range body.Algorithms {
		if a.Name != want[i] {
			t.Fatalf("algorithms[%d] = %q, want %q (sorted)", i, a.Name, want[i])
		}
		s, _ := truthfulufp.LookupSolver(a.Name)
		if a.Kind != string(s.Kind()) || a.Mechanism != s.Kind().IsMechanism() {
			t.Fatalf("algorithms[%d] kind metadata mismatch: %+v", i, a)
		}
		if a.DefaultMaxIterations != truthfulufp.SolverDefaultMaxIterations(s) {
			t.Fatalf("algorithms[%d] defaultMaxIterations = %d, want %d", i, a.DefaultMaxIterations, truthfulufp.SolverDefaultMaxIterations(s))
		}
	}
	// The repeat variants must advertise their pseudo-polynomial guard.
	reported := make(map[string]int)
	for _, a := range body.Algorithms {
		reported[a.Name] = a.DefaultMaxIterations
	}
	if reported["ufp/repeat"] <= 0 || reported["ufp/repeat-bounded"] <= 0 {
		t.Fatalf("repeat variants report no default MaxIterations: %v", reported)
	}
}

// TestServeV1SolveEveryAlgorithm: POST /v1/solve dispatches every
// registered solver by name, and each response re-encodes byte-
// identically to the solver's direct registry call.
func TestServeV1SolveEveryAlgorithm(t *testing.T) {
	ts, _ := newTestServer(t)
	inst := testInstance(t, 11)
	rawUFP, err := truthfulufp.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := auction.RandomInstance(workload.NewRNG(4), auction.RandomConfig{
		Items: 6, Requests: 16, B: 60, MultSpread: 0.3,
		BundleMin: 1, BundleMax: 3, ValueMin: 0.5, ValueMax: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rawAuc, err := truthfulufp.MarshalAuction(auc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range truthfulufp.Solvers() {
		raw := rawUFP
		in := truthfulufp.SolverInput{UFP: inst}
		if !s.Kind().IsUFP() {
			raw = rawAuc
			in = truthfulufp.SolverInput{Auction: auc}
		}
		status, out := postJSON(t, ts.URL+"/v1/solve", map[string]any{
			"algorithm": s.Name(), "eps": 0.25, "seed": 9, "maxIterations": 500,
			"instance": json.RawMessage(raw),
		})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", s.Name(), status, out)
		}
		var resp struct {
			Algorithm  string          `json:"algorithm"`
			Allocation json.RawMessage `json:"allocation"`
			Outcome    json.RawMessage `json:"outcome"`
		}
		if err := json.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Algorithm != s.Name() {
			t.Fatalf("%s: response echoes algorithm %q", s.Name(), resp.Algorithm)
		}
		got := resp.Allocation
		if s.Kind().IsMechanism() {
			got = resp.Outcome
			if len(resp.Allocation) > 0 {
				t.Fatalf("%s: mechanism response also carries an allocation", s.Name())
			}
		} else if len(resp.Outcome) > 0 {
			t.Fatalf("%s: allocation response also carries an outcome", s.Name())
		}
		direct, err := s.Solve(context.Background(), in, truthfulufp.SolverParams{
			Eps: 0.25, Seed: 9, MaxIterations: 500,
		})
		if err != nil {
			t.Fatalf("%s: direct: %v", s.Name(), err)
		}
		want, err := truthfulufp.MarshalSolverOutput(direct)
		if err != nil {
			t.Fatal(err)
		}
		var gotC, wantC bytes.Buffer
		if err := json.Compact(&gotC, got); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&wantC, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
			t.Fatalf("%s: served result differs from direct registry call\n got %s\nwant %s",
				s.Name(), gotC.Bytes(), wantC.Bytes())
		}
	}
}

// TestServeV1SolveErrors: missing and unknown algorithm names are
// diagnosed as 400s.
func TestServeV1SolveErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	inst := testInstance(t, 12)
	raw, err := truthfulufp.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	status, out := postJSON(t, ts.URL+"/v1/solve", map[string]any{
		"instance": json.RawMessage(raw),
	})
	if status != http.StatusBadRequest {
		t.Fatalf("missing algorithm: status %d: %s", status, out)
	}
	status, out = postJSON(t, ts.URL+"/v1/solve", map[string]any{
		"algorithm": "ufp/imaginary", "instance": json.RawMessage(raw),
	})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: status %d: %s", status, out)
	}
	// Auction algorithm fed a UFP instance: schema mismatch diagnosed.
	status, out = postJSON(t, ts.URL+"/v1/solve", map[string]any{
		"algorithm": "muca/solve", "instance": json.RawMessage(raw),
	})
	if status != http.StatusBadRequest {
		t.Fatalf("schema mismatch: status %d: %s", status, out)
	}
}
