// Command benchjson measures the path-engine benchmark suite
// (internal/bench) with the standard testing harness and writes the
// snapshot consumed by `make bench-json`:
//
//	benchjson [-out BENCH_path.json] [-quick]
//	          [-baseline BENCH_path.json] [-max-regression 0.25]
//
// The snapshot maps benchmark name → {ns/op, allocs/op} and records the
// headline incremental-vs-full-recompute speedup on the waxman-1k
// scenario. -quick shrinks the instances for CI smoke runs (the
// committed BENCH_path.json is a full-size run).
//
// With -baseline, benchjson additionally acts as the CI trend gate
// (`make bench-trend`): after measuring, it compares the fresh
// IncrementalSolve speedup against the baseline snapshot and exits
// non-zero on a regression beyond -max-regression. Speedup ratios are
// machine-portable but scale-dependent, so the baseline must be the
// same -quick setting as the fresh run.
package main

import (
	"flag"
	"fmt"
	"os"

	"truthfulufp/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH_path.json", "output path, - for stdout")
	quick := fs.Bool("quick", false, "shrink instances for a fast smoke run")
	baseline := fs.String("baseline", "", "snapshot to gate against (fail on IncrementalSolve speedup regression)")
	maxRegression := fs.Float64("max-regression", 0.25, "tolerated fractional speedup regression vs -baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Load the baseline before measuring or writing anything: with the
	// default -out, -baseline may name the same file, and writing first
	// would clobber the committed baseline and gate the run against
	// itself.
	var base bench.Snapshot
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			return err
		}
		base, err = bench.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	snap := bench.Run(bench.PathCases(*quick), *quick)
	for name, e := range snap.Benchmarks {
		fmt.Fprintf(os.Stderr, "%-40s %14.0f ns/op %8d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "incremental speedup:   %.2fx\n", snap.IncrementalSpeedup)
	fmt.Fprintf(os.Stderr, "bottleneck speedup:    %.2fx\n", snap.BottleneckSpeedup)
	fmt.Fprintf(os.Stderr, "bellman speedup:       %.2fx\n", snap.BellmanSpeedup)
	fmt.Fprintf(os.Stderr, "single-target speedup: %.2fx\n", snap.SingleTargetSpeedup)
	fmt.Fprintf(os.Stderr, "session-admit speedup: %.2fx\n", snap.SessionAdmitSpeedup)
	if l := snap.SessionAdmitLatency; l != nil {
		fmt.Fprintf(os.Stderr, "session-admit latency: p50 %.3f / p99 %.3f / p999 %.3f ms (%d admits)\n",
			l.P50Ms, l.P99Ms, l.P999Ms, l.Count)
	}
	if c := snap.ClusterServe; c != nil {
		fmt.Fprintf(os.Stderr, "cluster serve (%d sh): p50 %.3f / p99 %.3f / p999 %.3f ms, burst shed %d/%d (%.0f%%)\n",
			c.Shards, c.Latency.P50Ms, c.Latency.P99Ms, c.Latency.P999Ms,
			c.BurstShed, c.BurstJobs, c.ShedRate*100)
	}
	if err := write(*out, snap); err != nil {
		return err
	}
	if *baseline == "" {
		return nil
	}
	if err := bench.Compare(snap, base, *maxRegression); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trend gate: %.2fx vs baseline %.2fx (plus bottleneck/bellman/single-target ratios) within %.0f%% tolerance\n",
		snap.IncrementalSpeedup, base.IncrementalSpeedup, *maxRegression*100)
	return nil
}

func write(out string, snap bench.Snapshot) error {
	if out == "-" {
		return bench.WriteJSON(os.Stdout, snap)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := bench.WriteJSON(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
