// Command benchjson measures the path-engine benchmark suite
// (internal/bench) with the standard testing harness and writes the
// snapshot consumed by `make bench-json`:
//
//	benchjson [-out BENCH_path.json] [-quick]
//
// The snapshot maps benchmark name → {ns/op, allocs/op} and records the
// headline incremental-vs-full-recompute speedup on the waxman-1k
// scenario. -quick shrinks the instances for CI smoke runs (the
// committed BENCH_path.json is a full-size run).
package main

import (
	"flag"
	"fmt"
	"os"

	"truthfulufp/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH_path.json", "output path, - for stdout")
	quick := fs.Bool("quick", false, "shrink instances for a fast smoke run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	snap := bench.Run(bench.PathCases(*quick), *quick)
	for name, e := range snap.Benchmarks {
		fmt.Fprintf(os.Stderr, "%-36s %14.0f ns/op %8d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "incremental speedup: %.2fx\n", snap.IncrementalSpeedup)
	if *out == "-" {
		return bench.WriteJSON(os.Stdout, snap)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := bench.WriteJSON(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
