// Command ufpgen emits unsplittable-flow (and auction) instances from
// the scenario catalog (internal/scenario): named, seeded topology ×
// demand-model × capacity-regime generators. Output uses the canonical
// JSON schema consumed by cmd/ufprun, cmd/aucrun, and ufpserve, so the
// full pipeline composes:
//
//	ufpgen -scenario fattree -seed 7 | ufprun -in -
//	ufpgen -scenario waxman | curl -s localhost:8080/solve -d @-   # wrap as {"instance": ...} first
//
// Usage:
//
//	ufpgen -list
//	ufpgen -scenario fattree [-demand gravity] [-seed 1] [-size 0] [-aux 0]
//	       [-requests 0] [-bmode log|fixed] [-bfactor 1.2] [-bvalue 0]
//	       [-eps 0.25] [-auction] [-o -]
//	ufpgen -corpus dir [-seeds 3]   # whole catalog, one file per scenario × seed
//	ufpgen -hashes [-seeds 3]       # corpus hash manifest (no files), for determinism checks
//
// Generation is deterministic: the same scenario flags and seed yield
// byte-identical JSON on every run, which -hashes turns into a
// verifiable manifest.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"truthfulufp"
	"truthfulufp/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ufpgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ufpgen", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list topologies and demand models, then exit")
		topo     = fs.String("scenario", "", "topology name (see -list)")
		demand   = fs.String("demand", "", "demand model name (default gravity)")
		seed     = fs.Uint64("seed", 1, "scenario seed")
		size     = fs.Int("size", 0, "topology size knob (0 = family default)")
		aux      = fs.Int("aux", 0, "secondary size knob (metroring: access nodes per ring; startrees: vertices per tree; 0 = family default)")
		requests = fs.Int("requests", 0, "request count (0 = 4 per host)")
		bmode    = fs.String("bmode", "", "capacity regime: log|fixed (default log)")
		bfactor  = fs.Float64("bfactor", 0, "log regime: B = bfactor * ln(m)/eps^2 (default 1.2; < 1 violates the paper's assumption)")
		bvalue   = fs.Float64("bvalue", 0, "fixed regime: B value")
		eps      = fs.Float64("eps", 0, "log regime target accuracy ε (default 0.25)")
		auc      = fs.Bool("auction", false, "emit the auction (MUCA) instance instead of the UFP instance")
		outPath  = fs.String("o", "-", "output path, - for stdout")
		corpus   = fs.String("corpus", "", "write the whole catalog corpus into this directory")
		hashes   = fs.Bool("hashes", false, "print the corpus hash manifest instead of instances")
		seeds    = fs.Int("seeds", 3, "corpus/hashes: seeds per scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *list:
		return printList(out)
	case *corpus != "" || *hashes:
		if *corpus != "" && *hashes {
			return fmt.Errorf("-corpus and -hashes are mutually exclusive")
		}
		// Corpus mode walks the whole catalog at default parameters; an
		// instance-shaping flag would be silently ignored, so reject it.
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "corpus", "hashes", "seeds":
			default:
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return fmt.Errorf("%s does not apply to -corpus/-hashes (the corpus is the full catalog at default parameters)", strings.Join(stray, ", "))
		}
		return emitCorpus(out, *corpus, *seeds)
	case *topo == "":
		return fmt.Errorf("-scenario is required (try -list)")
	}
	cfg := scenario.Config{
		Topology: *topo, Demand: *demand, Size: *size, Aux: *aux, Requests: *requests,
		Seed: *seed, BMode: *bmode, BFactor: *bfactor, BValue: *bvalue, Eps: *eps,
	}
	data, err := marshalScenario(cfg, *auc)
	if err != nil {
		return err
	}
	if *outPath == "-" || *outPath == "" {
		_, err = fmt.Fprintf(out, "%s\n", data)
		return err
	}
	return os.WriteFile(*outPath, append(data, '\n'), 0o644)
}

// marshalScenario generates and encodes one scenario instance.
func marshalScenario(cfg scenario.Config, auc bool) ([]byte, error) {
	if auc {
		inst, err := scenario.GenerateAuction(cfg)
		if err != nil {
			return nil, err
		}
		return truthfulufp.MarshalAuction(inst)
	}
	inst, err := scenario.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return truthfulufp.MarshalInstance(inst)
}

func printList(out io.Writer) error {
	fmt.Fprintln(out, "topologies:")
	for _, t := range scenario.Topologies() {
		fmt.Fprintf(out, "  %-11s (default size %d)  %s\n", t.Name, t.DefaultSize, t.Description)
	}
	fmt.Fprintln(out, "demand models:")
	for _, d := range scenario.Demands() {
		fmt.Fprintf(out, "  %-11s %s\n", d.Name, d.Description)
	}
	return nil
}

// emitCorpus walks the whole catalog (every topology × demand model ×
// seed). With dir == "" it prints the hash manifest only; otherwise it
// writes one instance file per scenario plus the manifest as
// manifest.txt.
func emitCorpus(out io.Writer, dir string, seeds int) error {
	if seeds < 1 {
		return fmt.Errorf("corpus needs seeds >= 1, got %d", seeds)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	var manifest []byte
	for _, t := range scenario.Topologies() {
		for _, d := range scenario.Demands() {
			for s := 0; s < seeds; s++ {
				cfg := scenario.Config{Topology: t.Name, Demand: d.Name, Seed: uint64(s)}
				data, err := marshalScenario(cfg, false)
				if err != nil {
					return fmt.Errorf("%s/%s seed %d: %w", t.Name, d.Name, s, err)
				}
				// Hash exactly the bytes written, so `sha256sum <file>`
				// reproduces the manifest entry.
				data = append(data, '\n')
				name := fmt.Sprintf("%s_%s_s%d.json", t.Name, d.Name, s)
				manifest = append(manifest, fmt.Sprintf("%s  %x\n", name, sha256.Sum256(data))...)
				if dir != "" {
					if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
						return err
					}
				}
			}
		}
	}
	if dir == "" {
		_, err := out.Write(manifest)
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.txt"), manifest, 0o644); err != nil {
		return err
	}
	n := len(scenario.Topologies()) * len(scenario.Demands()) * seeds
	_, err := fmt.Fprintf(out, "wrote %d instances + manifest.txt to %s\n", n, dir)
	return err
}
