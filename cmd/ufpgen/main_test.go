package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"truthfulufp"
	"truthfulufp/internal/scenario"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("ufpgen %v: %v", args, err)
	}
	return buf.String()
}

// TestListEnumeratesCatalog: -list names every registered topology and
// demand model (the acceptance criterion's enumeration).
func TestListEnumeratesCatalog(t *testing.T) {
	out := runOut(t, "-list")
	for _, topo := range scenario.Topologies() {
		if !strings.Contains(out, topo.Name) {
			t.Errorf("-list missing topology %q:\n%s", topo.Name, out)
		}
	}
	for _, d := range scenario.Demands() {
		if !strings.Contains(out, d.Name) {
			t.Errorf("-list missing demand model %q:\n%s", d.Name, out)
		}
	}
}

// TestGenerateDecodesAndValidates: emitted JSON round-trips through the
// canonical codec into a valid normalized instance.
func TestGenerateDecodesAndValidates(t *testing.T) {
	out := runOut(t, "-scenario", "fattree", "-seed", "7")
	inst, err := truthfulufp.UnmarshalInstance([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	alloc, err := truthfulufp.SolveUFP(inst, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Routed) == 0 {
		t.Fatal("solver routed nothing on the emitted instance")
	}
}

// TestByteIdenticalAcrossRuns: same (scenario, seed) ⇒ byte-identical
// output; different seeds differ.
func TestByteIdenticalAcrossRuns(t *testing.T) {
	a := runOut(t, "-scenario", "waxman", "-demand", "hotspot", "-seed", "9")
	b := runOut(t, "-scenario", "waxman", "-demand", "hotspot", "-seed", "9")
	if a != b {
		t.Fatal("same scenario and seed produced different bytes")
	}
	c := runOut(t, "-scenario", "waxman", "-demand", "hotspot", "-seed", "10")
	if a == c {
		t.Fatal("different seeds produced identical bytes")
	}
}

// TestAuctionOutput: -auction emits a decodable, valid MUCA instance.
func TestAuctionOutput(t *testing.T) {
	out := runOut(t, "-scenario", "startrees", "-auction", "-seed", "2")
	inst, err := truthfulufp.UnmarshalAuction([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inst.Requests) == 0 {
		t.Fatal("auction instance has no requests")
	}
}

// TestHashManifestStable: -hashes covers the whole catalog and is
// identical across runs (the CI determinism check).
func TestHashManifestStable(t *testing.T) {
	a := runOut(t, "-hashes", "-seeds", "1")
	b := runOut(t, "-hashes", "-seeds", "1")
	if a != b {
		t.Fatal("hash manifest differs between runs")
	}
	lines := strings.Count(strings.TrimSpace(a), "\n") + 1
	want := len(scenario.Topologies()) * len(scenario.Demands())
	if lines != want {
		t.Fatalf("manifest has %d lines, want %d (full catalog)", lines, want)
	}
}

// TestCorpusWritesFiles: -corpus materializes every scenario plus the
// manifest, and the files match their manifest hashes implicitly by
// regeneration.
func TestCorpusWritesFiles(t *testing.T) {
	dir := t.TempDir()
	runOut(t, "-corpus", dir, "-seeds", "1")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := len(scenario.Topologies())*len(scenario.Demands()) + 1 // + manifest.txt
	if len(entries) != want {
		t.Fatalf("corpus dir has %d entries, want %d", len(entries), want)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fattree_gravity_s0.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := truthfulufp.UnmarshalInstance(data); err != nil {
		t.Fatal(err)
	}
}

// TestFlagErrors: missing/-unknown inputs fail with a diagnosis.
func TestFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no -scenario did not error")
	}
	if err := run([]string{"-scenario", "nope"}, &buf); err == nil {
		t.Fatal("unknown scenario did not error")
	}
	if err := run([]string{"-corpus", t.TempDir(), "-hashes"}, &buf); err == nil {
		t.Fatal("-corpus with -hashes did not error")
	}
}
