package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"truthfulufp"
	"truthfulufp/internal/scenario"
)

func writeSample(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	if err := run([]string{"-sample"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSampleIsValidJSON(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-sample"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(b.String()), &v); err != nil {
		t.Fatalf("sample not JSON: %v", err)
	}
}

func TestSolveSampleAllAlgorithms(t *testing.T) {
	path := writeSample(t)
	for _, algo := range []string{"bounded", "sequential", "greedy", "repeat"} {
		var b strings.Builder
		if err := run([]string{"-instance", path, "-algorithm", algo}, nil, &b); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(b.String(), "value") {
			t.Fatalf("%s output missing value:\n%s", algo, b.String())
		}
	}
}

func TestPayments(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-payments"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pays") {
		t.Fatalf("payments missing:\n%s", b.String())
	}
}

func TestPaymentsRequireBounded(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-payments", "-algorithm", "greedy"}, nil, &b); err == nil {
		t.Fatal("payments with greedy accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-json"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Value  float64 `json:"value"`
		Stop   string  `json:"stop"`
		Routed []struct {
			Request int   `json:"request"`
			Path    []int `json:"path"`
		} `json:"routed"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, b.String())
	}
	if out.Value <= 0 || len(out.Routed) == 0 {
		t.Fatalf("unexpected JSON result: %+v", out)
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, nil, &b); err == nil {
		t.Fatal("missing -instance accepted")
	}
	if err := run([]string{"-instance", "/nonexistent.json"}, nil, &b); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"directed":true,"vertices":1,"edges":[],"requests":[{"source":0,"target":0,"demand":1,"value":1}]}`), 0o644)
	if err := run([]string{"-instance", bad}, nil, &b); err == nil {
		t.Fatal("invalid instance accepted")
	}
	path := writeSample(t)
	if err := run([]string{"-instance", path, "-algorithm", "nope"}, nil, &b); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestStdinPipeline: the ufpgen | ufprun composition — a scenario
// instance arrives on stdin via -in - and solves end to end.
func TestStdinPipeline(t *testing.T) {
	inst, err := scenario.Generate(scenario.Config{Topology: "fattree", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	data, err := truthfulufp.MarshalInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-in", "-", "-json"}, strings.NewReader(string(data)), &b); err != nil {
		t.Fatal(err)
	}
	alloc, err := truthfulufp.UnmarshalAllocation([]byte(b.String()))
	if err != nil {
		t.Fatalf("pipeline output not a canonical allocation: %v\n%s", err, b.String())
	}
	if len(alloc.Routed) == 0 {
		t.Fatal("pipeline solved nothing")
	}
	// -in with a path also works, superseding -instance.
	path := writeSample(t)
	b.Reset()
	if err := run([]string{"-in", path, "-instance", "/nonexistent.json"}, nil, &b); err != nil {
		t.Fatal(err)
	}
}

// TestAlgsLists: -algs enumerates the UFP side of the registry.
func TestAlgsLists(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-algs"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, s := range truthfulufp.Solvers() {
		if s.Kind().IsUFP() != strings.Contains(out, s.Name()) {
			t.Errorf("-algs listing wrong for %s (UFP=%v):\n%s", s.Name(), s.Kind().IsUFP(), out)
		}
	}
}

// TestRegistryAlgSolvesSample: every UFP-consuming registry algorithm
// runs through -alg on the sample instance.
func TestRegistryAlgSolvesSample(t *testing.T) {
	path := writeSample(t)
	for _, s := range truthfulufp.Solvers() {
		if !s.Kind().IsUFP() {
			continue
		}
		var b strings.Builder
		if err := run([]string{"-instance", path, "-alg", s.Name(), "-eps", "0.4"}, nil, &b); err != nil {
			t.Fatalf("-alg %s: %v", s.Name(), err)
		}
		if !strings.Contains(b.String(), "algorithm : "+s.Name()) {
			t.Fatalf("-alg %s output missing header:\n%s", s.Name(), b.String())
		}
	}
}

// TestRegistryAlgJSON: -alg -json emits the canonical wire schema, and
// mechanism algorithms emit outcomes with payments.
func TestRegistryAlgJSON(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-alg", "ufp/mechanism", "-eps", "0.4", "-json"}, nil, &b); err != nil {
		t.Fatal(err)
	}
	out, err := truthfulufp.UnmarshalUFPOutcome([]byte(b.String()))
	if err != nil {
		t.Fatalf("-alg ufp/mechanism -json not an outcome: %v", err)
	}
	if len(out.Allocation.Routed) == 0 || len(out.Payments) != len(out.Allocation.Routed) {
		t.Fatalf("outcome %d routed, %d payments", len(out.Allocation.Routed), len(out.Payments))
	}
}

// TestRegistryAlgErrors: unknown names and auction algorithms are
// rejected with pointers to the right flag.
func TestRegistryAlgErrors(t *testing.T) {
	path := writeSample(t)
	if err := run([]string{"-instance", path, "-alg", "ufp/imaginary"}, nil, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "-algs") {
		t.Fatalf("unknown -alg: err = %v", err)
	}
	if err := run([]string{"-instance", path, "-alg", "muca/solve"}, nil, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "aucrun") {
		t.Fatalf("auction -alg: err = %v", err)
	}
	// -payments is only meaningful for mechanism algorithms: rejected
	// with a pointer for the rest, honored (payments emitted anyway) for
	// ufp/mechanism.
	if err := run([]string{"-instance", path, "-alg", "ufp/bounded", "-payments"}, nil, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "ufp/mechanism") {
		t.Fatalf("-alg+-payments: err = %v", err)
	}
	var b strings.Builder
	if err := run([]string{"-instance", path, "-alg", "ufp/mechanism", "-payments", "-eps", "0.4"}, nil, &b); err != nil {
		t.Fatalf("-alg ufp/mechanism -payments: %v", err)
	}
	if !strings.Contains(b.String(), "pays") {
		t.Fatalf("mechanism output missing payments:\n%s", b.String())
	}
}
