package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSample(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	if err := run([]string{"-sample"}, &b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSampleIsValidJSON(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-sample"}, &b); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(b.String()), &v); err != nil {
		t.Fatalf("sample not JSON: %v", err)
	}
}

func TestSolveSampleAllAlgorithms(t *testing.T) {
	path := writeSample(t)
	for _, algo := range []string{"bounded", "sequential", "greedy", "repeat"} {
		var b strings.Builder
		if err := run([]string{"-instance", path, "-algorithm", algo}, &b); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(b.String(), "value") {
			t.Fatalf("%s output missing value:\n%s", algo, b.String())
		}
	}
}

func TestPayments(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-payments"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pays") {
		t.Fatalf("payments missing:\n%s", b.String())
	}
}

func TestPaymentsRequireBounded(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-payments", "-algorithm", "greedy"}, &b); err == nil {
		t.Fatal("payments with greedy accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeSample(t)
	var b strings.Builder
	if err := run([]string{"-instance", path, "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Value  float64 `json:"value"`
		Stop   string  `json:"stop"`
		Routed []struct {
			Request int   `json:"request"`
			Path    []int `json:"path"`
		} `json:"routed"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, b.String())
	}
	if out.Value <= 0 || len(out.Routed) == 0 {
		t.Fatalf("unexpected JSON result: %+v", out)
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{}, &b); err == nil {
		t.Fatal("missing -instance accepted")
	}
	if err := run([]string{"-instance", "/nonexistent.json"}, &b); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"directed":true,"vertices":1,"edges":[],"requests":[{"source":0,"target":0,"demand":1,"value":1}]}`), 0o644)
	if err := run([]string{"-instance", bad}, &b); err == nil {
		t.Fatal("invalid instance accepted")
	}
	path := writeSample(t)
	if err := run([]string{"-instance", path, "-algorithm", "nope"}, &b); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
