// Command ufprun solves a single unsplittable flow instance from a JSON
// file (schema: see truthfulufp.MarshalInstance) and prints the
// allocation, optionally with truthful critical-value payments.
//
// Usage:
//
//	ufprun -instance inst.json [-alg ufp/solve] [-eps 0.5] [-json]
//	ufprun -instance inst.json [-algorithm bounded|sequential|greedy|repeat]
//	       [-eps 0.5] [-payments] [-json]
//	ufprun -algs
//	ufpgen -scenario fattree | ufprun -in -
//
// -alg runs any UFP-consuming algorithm of the v1 solver registry by
// name (-algs lists them; mechanism names like ufp/mechanism emit
// payments). The older -algorithm flag keeps its fixed spellings:
// with -algorithm bounded (default), -eps is the Theorem 3.1 ε and the
// solver runs Bounded-UFP(ε/6). -in reads the instance from a path or
// from stdin ("-"), so ufpgen output pipes straight in. Generate a
// sample file with -sample.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"truthfulufp"
	"truthfulufp/internal/cliio"
	"truthfulufp/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ufprun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("ufprun", flag.ContinueOnError)
	var (
		path     = fs.String("instance", "", "path to instance JSON")
		in       = fs.String("in", "", `instance source: a path, or "-" for stdin (supersedes -instance)`)
		alg      = fs.String("alg", "", "registry algorithm name, e.g. ufp/solve (see -algs; supersedes -algorithm)")
		algs     = fs.Bool("algs", false, "list the registered UFP algorithms and exit")
		algo     = fs.String("algorithm", "bounded", "bounded|sequential|greedy|repeat (legacy spellings)")
		eps      = fs.Float64("eps", 0.5, "accuracy parameter ε in (0,1]")
		seed     = fs.Uint64("seed", 0, "seed for randomized algorithms (ufp/rounding)")
		payments = fs.Bool("payments", false, "also compute critical-value payments (bounded only)")
		asJSON   = fs.Bool("json", false, "emit machine-readable JSON")
		sample   = fs.Bool("sample", false, "print a sample instance JSON and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *algs {
		cliio.PrintAlgorithms(out, func(k solver.Kind) bool { return k.IsUFP() })
		return nil
	}
	if *sample {
		return printSample(out)
	}
	data, err := cliio.ReadSource(*in, *path, stdin, "-sample")
	if err != nil {
		return err
	}
	inst, err := truthfulufp.UnmarshalInstance(data)
	if err != nil {
		return err
	}
	if err := inst.Validate(); err != nil {
		return fmt.Errorf("instance invalid: %w (normalize demands into (0,1] with capacities >= demands)", err)
	}
	if *alg != "" {
		return runRegistry(out, inst, *alg, *eps, *seed, *payments, *asJSON)
	}

	var alloc *truthfulufp.Allocation
	switch *algo {
	case "bounded":
		alloc, err = truthfulufp.SolveUFP(inst, *eps, nil)
	case "sequential":
		alloc, err = truthfulufp.SequentialPrimalDual(inst, *eps, nil)
	case "greedy":
		alloc, err = truthfulufp.GreedyByDensity(inst, nil)
	case "repeat":
		alloc, err = truthfulufp.SolveUFPRepeat(inst, *eps, nil)
	default:
		return fmt.Errorf("unknown algorithm %q (or use -alg with a registry name; see -algs)", *algo)
	}
	if err != nil {
		return err
	}

	var pays map[int]float64
	if *payments {
		if *algo != "bounded" {
			return fmt.Errorf("-payments requires -algorithm bounded")
		}
		mech, err := truthfulufp.RunUFPMechanism(inst, *eps/6, nil)
		if err != nil {
			return err
		}
		pays = mech.Payments
	}

	if *asJSON {
		return emitJSON(out, alloc, pays)
	}
	fmt.Fprintf(out, "algorithm : %s (eps=%g)\n", *algo, *eps)
	fmt.Fprintf(out, "instance  : %s, %d requests, B=%g\n", inst.G, len(inst.Requests), inst.B())
	fmt.Fprintf(out, "value     : %g\n", alloc.Value)
	fmt.Fprintf(out, "routed    : %d of %d requests\n", len(alloc.Routed), len(inst.Requests))
	fmt.Fprintf(out, "stop      : %v after %d iterations\n", alloc.Stop, alloc.Iterations)
	if alloc.DualBound > 0 && alloc.Value > 0 {
		fmt.Fprintf(out, "dualbound : %g  (certified ratio <= %.4f)\n", alloc.DualBound, alloc.DualBound/alloc.Value)
	}
	for _, p := range alloc.Routed {
		r := inst.Requests[p.Request]
		fmt.Fprintf(out, "  request %d: %d->%d d=%g v=%g via edges %v", p.Request, r.Source, r.Target, r.Demand, r.Value, p.Path)
		if pays != nil {
			fmt.Fprintf(out, "  pays %.6g", pays[p.Request])
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runRegistry dispatches the instance through the v1 solver registry:
// any UFP-consuming algorithm, mechanisms included, selected by name.
func runRegistry(out io.Writer, inst *truthfulufp.Instance, alg string, eps float64, seed uint64, payments, asJSON bool) error {
	s, ok := truthfulufp.LookupSolver(alg)
	if !ok {
		return fmt.Errorf("unknown algorithm %q (use -algs to list)", alg)
	}
	if !s.Kind().IsUFP() {
		return fmt.Errorf("algorithm %q consumes auction instances; use aucrun -alg", alg)
	}
	// Mechanism algorithms emit payments by construction; for anything
	// else -payments would be silently meaningless, so say how to get
	// them instead of dropping the flag on the floor.
	if payments && !s.Kind().IsMechanism() {
		return fmt.Errorf("-payments with -alg %s has no effect; use -alg ufp/mechanism (or legacy -algorithm bounded -payments)", alg)
	}
	res, err := s.Solve(context.Background(),
		truthfulufp.SolverInput{UFP: inst},
		truthfulufp.SolverParams{Eps: eps, Seed: seed})
	if err != nil {
		return err
	}
	if asJSON {
		data, err := truthfulufp.MarshalSolverOutput(res)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", data)
		return err
	}
	alloc := res.Allocation
	var pays map[int]float64
	if res.UFPOutcome != nil {
		alloc = res.UFPOutcome.Allocation
		pays = res.UFPOutcome.Payments
	}
	fmt.Fprintf(out, "algorithm : %s (eps=%g)\n", alg, eps)
	fmt.Fprintf(out, "instance  : %s, %d requests, B=%g\n", inst.G, len(inst.Requests), inst.B())
	fmt.Fprintf(out, "value     : %g\n", alloc.Value)
	fmt.Fprintf(out, "routed    : %d of %d requests\n", len(alloc.Routed), len(inst.Requests))
	fmt.Fprintf(out, "stop      : %v after %d iterations\n", alloc.Stop, alloc.Iterations)
	if alloc.DualBound > 0 && alloc.Value > 0 {
		fmt.Fprintf(out, "dualbound : %g  (certified ratio <= %.4f)\n", alloc.DualBound, alloc.DualBound/alloc.Value)
	}
	for _, p := range alloc.Routed {
		r := inst.Requests[p.Request]
		fmt.Fprintf(out, "  request %d: %d->%d d=%g v=%g via edges %v", p.Request, r.Source, r.Target, r.Demand, r.Value, p.Path)
		if pays != nil {
			fmt.Fprintf(out, "  pays %.6g", pays[p.Request])
		}
		fmt.Fprintln(out)
	}
	return nil
}

// emitJSON writes the canonical wire encoding (the same schema ufpserve
// serves): a bare allocation, or a full outcome when payments were
// computed.
func emitJSON(out io.Writer, alloc *truthfulufp.Allocation, pays map[int]float64) error {
	var data []byte
	var err error
	if pays != nil {
		data, err = truthfulufp.MarshalUFPOutcome(&truthfulufp.UFPOutcome{Allocation: alloc, Payments: pays})
	} else {
		data, err = truthfulufp.MarshalAllocation(alloc)
	}
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}

func printSample(out io.Writer) error {
	g := truthfulufp.NewGraph(4)
	g.AddEdge(0, 1, 20)
	g.AddEdge(1, 3, 20)
	g.AddEdge(0, 2, 20)
	g.AddEdge(2, 3, 20)
	inst := &truthfulufp.Instance{G: g, Requests: []truthfulufp.Request{
		{Source: 0, Target: 3, Demand: 1, Value: 2},
		{Source: 0, Target: 3, Demand: 0.5, Value: 1.2},
		{Source: 1, Target: 3, Demand: 0.8, Value: 0.9},
	}}
	data, err := truthfulufp.MarshalInstance(inst)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(data))
	return err
}
