package main

import (
	"strings"
	"testing"
)

func TestStaircaseRun(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "staircase", "-l", "10", "-b", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"staircase(l=10,B=4)", "OPT       : 40", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSubdividedRun(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "staircase-sub", "-l", "4", "-b", "2", "-eps", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "staircase-subdivided") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestSevenVertexRun(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "seven-vertex", "-b", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ALG       : 12") || !strings.Contains(out, "1.3333") {
		t.Errorf("seven-vertex output wrong:\n%s", out)
	}
}

func TestSevenVertexRejectsOddB(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "seven-vertex", "-b", "3"}, &b); err == nil {
		t.Fatal("odd B accepted")
	}
}

func TestMUCAGridRun(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "muca-grid", "-p", "3", "-b", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "muca-grid(p=3,B=4)") || !strings.Contains(out, "ALG       : 10") {
		t.Errorf("muca-grid output wrong:\n%s", out)
	}
}

func TestAllRules(t *testing.T) {
	for _, rule := range []string{"exp", "hops", "log-hops", "bottleneck"} {
		var b strings.Builder
		if err := run([]string{"-family", "staircase", "-l", "6", "-b", "2", "-rule", rule}, &b); err != nil {
			t.Fatalf("rule %s: %v", rule, err)
		}
	}
}

func TestUnknownFamilyAndRule(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-family", "nope"}, &b); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := run([]string{"-family", "staircase", "-rule", "nope"}, &b); err == nil {
		t.Fatal("unknown rule accepted")
	}
}
