// Command lbsim simulates the paper's lower-bound instance families
// (Figures 2, 3, 4) under any reasonable rule and prints the forced gap.
//
// Usage:
//
//	lbsim -family staircase      [-l 20] [-b 6]  [-rule exp|hops|log-hops|bottleneck]
//	lbsim -family staircase-sub  [-l 6]  [-b 3]
//	lbsim -family seven-vertex   [-b 8]
//	lbsim -family muca-grid      [-p 5]  [-b 4]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/lowerbound"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lbsim", flag.ContinueOnError)
	var (
		family   = fs.String("family", "staircase", "staircase|staircase-sub|seven-vertex|muca-grid")
		l        = fs.Int("l", 20, "staircase blocks")
		b        = fs.Int("b", 6, "capacity / multiplicity B")
		p        = fs.Int("p", 5, "muca-grid parameter p (odd)")
		ruleName = fs.String("rule", "exp", "exp|hops|log-hops|bottleneck")
		eps      = fs.Float64("eps", 0.5, "accuracy parameter for price-based rules")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *family {
	case "staircase", "staircase-sub":
		var f *lowerbound.UFPFamily
		if *family == "staircase" {
			f = lowerbound.Staircase(*l, *b)
		} else {
			f = lowerbound.StaircaseSubdivided(*l, *b)
		}
		return runUFP(out, f, *ruleName, *eps)
	case "seven-vertex":
		if *b%2 != 0 {
			return fmt.Errorf("seven-vertex needs even -b, got %d", *b)
		}
		return runUFP(out, lowerbound.SevenVertex(*b), *ruleName, *eps)
	case "muca-grid":
		f := lowerbound.MUCAGrid(*p, *b)
		a, err := auction.IterativeBundleMin(f.Inst, auction.BundleEngineOptions{
			Rule: auction.ExpBundleRule{}, Eps: *eps, FeasibleOnly: true,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "family    : %s (%d items, %d requests)\n", f.Name, f.Inst.NumItems(), len(f.Inst.Requests))
		fmt.Fprintf(out, "OPT       : %g\n", f.OPT)
		fmt.Fprintf(out, "predicted : %g\n", f.PredictedALG)
		fmt.Fprintf(out, "ALG       : %g\n", a.Value)
		fmt.Fprintf(out, "ratio     : %.4f (limit 4/3 ≈ 1.3333)\n", f.OPT/a.Value)
		return nil
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
}

func runUFP(out io.Writer, f *lowerbound.UFPFamily, ruleName string, eps float64) error {
	var rule core.Rule
	switch ruleName {
	case "exp":
		rule = &core.ExpRule{}
	case "hops":
		rule = &core.HopRule{}
	case "log-hops":
		rule = &core.LogHopsRule{}
	case "bottleneck":
		rule = &core.BottleneckRule{}
	default:
		return fmt.Errorf("unknown rule %q", ruleName)
	}
	a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
		Rule: rule, Eps: eps, FeasibleOnly: true,
	})
	if err != nil {
		return err
	}
	if err := a.CheckFeasible(f.Inst, false); err != nil {
		return err
	}
	fmt.Fprintf(out, "family    : %s (%s)\n", f.Name, f.Inst.G)
	fmt.Fprintf(out, "rule      : %s\n", ruleName)
	fmt.Fprintf(out, "OPT       : %g\n", f.OPT)
	fmt.Fprintf(out, "predicted : %g (±%g)\n", f.PredictedALG, f.Slack)
	fmt.Fprintf(out, "ALG       : %g (%d routed, stop %v)\n", a.Value, len(a.Routed), a.Stop)
	fmt.Fprintf(out, "ratio     : %.4f (e/(e-1) ≈ 1.5820)\n", f.OPT/a.Value)
	return nil
}
