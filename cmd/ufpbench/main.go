// Command ufpbench regenerates the paper's evaluation artifacts: one
// report per experiment in DESIGN.md's index (E1-E9, F1), each printing
// the series its theorem or figure predicts.
//
// Usage:
//
//	ufpbench [-experiment all|E1|E2|...] [-scale 1.0] [-seeds 3] [-workers 0]
//
// The output of a full-scale run is recorded in EXPERIMENTS.md.
//
// With -load, ufpbench instead drives the concurrent solve engine with
// synthetic traffic and reports end-to-end throughput and latency:
//
//	ufpbench -load [-shape closed|open] [-jobs 200] [-concurrency 16]
//	         [-rate 200] [-dup 0.3] [-alg ufp/bounded] [-eps 0.25]
//	         [-workers 0] [-seed 1] [-scenario fattree] [-demand gravity]
//	         [-corpus dir] [-targets http://a:8080,http://b:8080]
//	ufpbench -algs
//
// Closed-loop traffic keeps -concurrency jobs in flight (peak
// throughput); open-loop traffic is a Poisson stream at -rate jobs/sec
// (queueing latency). -dup is the fraction of repeated instances, which
// exercises the engine's result cache. -alg names any UFP-consuming
// algorithm of the v1 solver registry (-algs lists the whole registry;
// -kind remains as the legacy spelling of the same flag). In load mode
// -workers sets the engine's inter-job worker count. With -scenario the
// stream draws
// instances from the scenario catalog (see ufpgen -list) instead of
// uniform random graphs; with -corpus it replays the instance files of
// a ufpgen -corpus directory round-robin (in sorted filename order), so
// a recorded corpus doubles as a reproducible load-test fixture. With
// -targets the same stream drives one or more running ufpserve
// processes over HTTP (round-robin across the base URLs) instead of an
// in-process engine; a 429 from a shedding server counts toward the
// reported shed rate, not as a failure, and the latency profile covers
// served jobs only.
//
// With -session, ufpbench exercises the stateful session layer the way
// a persistent client would: register the network once, then stream
// every request as one admit, reporting per-admit latency and the
// speedup over the stateless alternative (a full batch solve per
// request):
//
//	ufpbench -session [-scenario waxman] [-demand gravity] [-seed 1]
//	         [-eps 0.25] [-in instance.json] [-resolve-samples 3]
//
// -in streams a recorded instance file (e.g. ufpgen output) instead of
// generating a scenario; -resolve-samples sets how many full batch
// solves are timed for the comparison baseline.
//
// In experiment mode -scenario restricts the S1 catalog sweep to one
// topology family.
//
// Every mode accepts -cpuprofile and -memprofile, which write pprof
// profiles of the run (CPU for its whole duration, heap at exit) for
// `go tool pprof`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"truthfulufp"
	"truthfulufp/internal/cliio"
	"truthfulufp/internal/core"
	"truthfulufp/internal/engine"
	"truthfulufp/internal/experiments"
	"truthfulufp/internal/metrics"
	"truthfulufp/internal/scenario"
	"truthfulufp/internal/session"
	"truthfulufp/internal/solver"
	"truthfulufp/internal/stats"
	"truthfulufp/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ufpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ufpbench", flag.ContinueOnError)
	var (
		which   = fs.String("experiment", "all", "experiment ID (E1..E9, F1) or 'all'")
		scale   = fs.Float64("scale", 1, "workload scale in (0,1]")
		seeds   = fs.Int("seeds", 3, "random instances per configuration point")
		workers = fs.Int("workers", 0, "solver parallelism; with -load, engine workers (0 = GOMAXPROCS)")
		list    = fs.Bool("list", false, "list experiments and exit")
		quiet   = fs.Bool("quiet", false, "suppress per-experiment timing lines")
		csvDir  = fs.String("csv", "", "also write each table as CSV into this directory")

		load        = fs.Bool("load", false, "run the engine load generator instead of experiments")
		scen        = fs.String("scenario", "", "scenario topology: load-mode instance source / S1 experiment filter (see ufpgen -list)")
		demand      = fs.String("demand", "", "load: scenario demand model (with -scenario; default gravity)")
		corpus      = fs.String("corpus", "", "load: replay instances from this ufpgen -corpus directory instead of generating")
		shape       = fs.String("shape", "closed", "load traffic shape: closed|open")
		jobs        = fs.Int("jobs", 200, "load: total jobs to submit")
		concurrency = fs.Int("concurrency", 16, "load: closed-loop jobs in flight")
		rate        = fs.Float64("rate", 200, "load: open-loop arrival rate (jobs/sec)")
		dup         = fs.Float64("dup", 0.3, "load: fraction of repeated instances in [0,1)")
		alg         = fs.String("alg", "", "load: registry algorithm name (UFP-consuming; see -algs; supersedes -kind)")
		algs        = fs.Bool("algs", false, "list the registered algorithms and exit")
		kind        = fs.String("kind", "", "load: legacy spelling of -alg (default ufp/bounded)")
		eps         = fs.Float64("eps", 0.25, "load/session: accuracy parameter ε")
		seed        = fs.Uint64("seed", 1, "load/session: RNG seed")
		targets     = fs.String("targets", "", "load: comma-separated ufpserve base URLs to drive over HTTP instead of an in-process engine (round-robin per job; 429s count as shed)")

		session  = fs.Bool("session", false, "stream admits through a persistent session instead of experiments")
		inPath   = fs.String("in", "", "session: stream this instance file (ufpgen output) instead of generating -scenario")
		size     = fs.Int("size", 0, "session: scenario vertex count (0 = topology default; 1000 = the waxman-1k target)")
		requests = fs.Int("requests", 0, "session: scenario request count (0 = topology default)")
		resolves = fs.Int("resolve-samples", 3, "session: timed full-solve samples for the stateless comparison")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write an allocation profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ufpbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ufpbench: memprofile:", err)
			}
		}()
	}
	if *algs {
		cliio.PrintAlgorithms(out, nil)
		return nil
	}
	if *session {
		if *load {
			return fmt.Errorf("-session and -load are mutually exclusive")
		}
		return runSession(out, sessionBenchConfig{
			scenario: *scen, demand: *demand, in: *inPath,
			size: *size, requests: *requests,
			eps: *eps, seed: *seed, resolves: *resolves,
		})
	}
	if *inPath != "" || *size != 0 || *requests != 0 {
		return fmt.Errorf("-in/-size/-requests only apply with -session")
	}
	if *load {
		algorithm := *alg
		if algorithm == "" {
			algorithm = *kind
		} else if *kind != "" && *kind != algorithm {
			return fmt.Errorf("-alg %q contradicts -kind %q", algorithm, *kind)
		}
		if algorithm == "" {
			algorithm = "ufp/bounded"
		}
		var urls []string
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		return runLoad(out, loadConfig{
			shape: *shape, jobs: *jobs, concurrency: *concurrency, rate: *rate,
			dup: *dup, alg: algorithm, eps: *eps, seed: *seed,
			workers: *workers, scenario: *scen, demand: *demand, corpus: *corpus,
			targets: urls,
		})
	}
	if *targets != "" {
		return fmt.Errorf("-targets only applies with -load")
	}
	if *alg != "" || *kind != "" {
		return fmt.Errorf("-alg/-kind only apply with -load")
	}
	if *demand != "" {
		return fmt.Errorf("-demand only applies with -load -scenario or -session")
	}
	if *corpus != "" {
		return fmt.Errorf("-corpus only applies with -load")
	}
	runners := experiments.All()
	if *list {
		for _, r := range runners {
			fmt.Fprintf(out, "%-4s %s\n", r.ID, r.Title)
		}
		return nil
	}
	cfg := experiments.Config{Scale: *scale, Seeds: *seeds, Workers: *workers, Scenario: *scen}
	ran := 0
	for _, r := range runners {
		if *which != "all" && !strings.EqualFold(*which, r.ID) {
			continue
		}
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s failed: %w", r.ID, err)
		}
		fmt.Fprint(out, rep.String())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, rep); err != nil {
				return err
			}
		}
		if !*quiet {
			fmt.Fprintf(out, "(%s completed in %v)\n", r.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (use -list)", *which)
	}
	return nil
}

// loadConfig parameterizes the engine load generator.
type loadConfig struct {
	shape       string
	jobs        int
	concurrency int
	rate        float64
	dup         float64
	alg         string // solver registry name (UFP-consuming)
	eps         float64
	seed        uint64
	workers     int
	scenario    string   // catalog topology ("" = uniform random instances)
	demand      string   // catalog demand model (with scenario)
	corpus      string   // directory of instance files to replay ("" = generate)
	targets     []string // ufpserve base URLs (nil = in-process engine)
}

// runLoad drives an in-process engine with a synthetic job stream and
// prints end-to-end throughput plus client-side latency.
func runLoad(out io.Writer, cfg loadConfig) error {
	s, ok := solver.Lookup(cfg.alg)
	if !ok {
		return fmt.Errorf("load: unknown algorithm %q (use -algs to list)", cfg.alg)
	}
	if !s.Kind().IsUFP() {
		return fmt.Errorf("load: algorithm %q does not consume UFP instances", cfg.alg)
	}
	shape, err := workload.ParseTrafficShape(cfg.shape)
	if err != nil {
		return err
	}
	tc := workload.TrafficConfig{
		Shape: shape, Jobs: cfg.jobs, Concurrency: cfg.concurrency,
		Rate: cfg.rate, DupFraction: cfg.dup,
		Instance: workload.DefaultUFPConfig(),
	}
	switch {
	case cfg.corpus != "":
		if cfg.scenario != "" || cfg.demand != "" {
			return fmt.Errorf("load: -corpus replays recorded instances; it excludes -scenario/-demand")
		}
		instances, err := loadCorpus(cfg.corpus)
		if err != nil {
			return err
		}
		tc.Source, err = workload.ReplaySource(instances)
		if err != nil {
			return err
		}
	case cfg.scenario != "":
		// Each fresh job is the scenario at a stream-drawn seed, so the
		// whole stream stays deterministic in -seed.
		tc.Source = func(rng *rand.Rand) (*core.Instance, error) {
			return scenario.Generate(scenario.Config{
				Topology: cfg.scenario, Demand: cfg.demand, Seed: rng.Uint64(),
			})
		}
	case cfg.demand != "":
		return fmt.Errorf("load: -demand requires -scenario")
	}
	rng := workload.NewRNG(cfg.seed)
	stream, err := workload.UFPStream(rng, tc)
	if err != nil {
		return err
	}
	gaps, err := workload.Arrivals(rng, tc)
	if err != nil {
		return err
	}

	// In-process mode keeps the engine's queue blocking: the generator
	// itself is the only client, so pushing back on it beats shedding.
	// Target mode drives real ufpserve processes over HTTP, where a 429
	// is the datum — it counts as shed, never as an error.
	var e *engine.Engine
	var doJob func(ctx context.Context, i int) (shed bool, err error)
	if len(cfg.targets) == 0 {
		e = engine.New(engine.Config{Workers: cfg.workers, BlockOnFull: true})
		defer e.Close()
		doJob = func(ctx context.Context, i int) (bool, error) {
			_, err := e.Do(ctx, engine.Job{Algorithm: cfg.alg, Eps: cfg.eps, UFP: stream[i]})
			return false, err
		}
	} else {
		// Bodies are marshalled up front so the measured latency is the
		// serving path, not client-side JSON encoding.
		bodies := make([][]byte, len(stream))
		enc := map[*core.Instance][]byte{} // dup jobs share the instance pointer
		for i, inst := range stream {
			if b, ok := enc[inst]; ok {
				bodies[i] = b
				continue
			}
			raw, err := truthfulufp.MarshalInstance(inst)
			if err != nil {
				return err
			}
			b, err := json.Marshal(map[string]any{
				"algorithm": cfg.alg, "eps": cfg.eps, "instance": json.RawMessage(raw),
			})
			if err != nil {
				return err
			}
			enc[inst], bodies[i] = b, b
		}
		client := &http.Client{Timeout: 5 * time.Minute}
		doJob = func(ctx context.Context, i int) (bool, error) {
			url := cfg.targets[i%len(cfg.targets)] + "/v1/solve"
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(bodies[i]))
			if err != nil {
				return false, err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				return false, err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				return false, nil
			case http.StatusTooManyRequests:
				return true, nil
			default:
				return false, fmt.Errorf("target %s: status %d", url, resp.StatusCode)
			}
		}
	}
	ctx := context.Background()
	latencies := make([]float64, len(stream)) // client-observed seconds, served jobs only
	hist := metrics.NewHistogram(metrics.DefLatencyBuckets)
	errs := make([]error, len(stream))
	shed := make([]bool, len(stream))
	var wg sync.WaitGroup
	submit := func(i int) {
		defer wg.Done()
		start := time.Now()
		s, err := doJob(ctx, i)
		if shed[i] = s; s {
			return // a fast 429 would distort the serving-latency profile
		}
		latencies[i] = time.Since(start).Seconds()
		hist.Observe(latencies[i])
		errs[i] = err
	}
	var sem chan struct{}
	if shape == workload.ClosedLoop {
		sem = make(chan struct{}, cfg.concurrency)
	}
	wallStart := time.Now()
	next := wallStart // open loop: absolute deadlines, so sleep overshoot cannot accumulate
	for i := range stream {
		wg.Add(1)
		if shape == workload.ClosedLoop {
			sem <- struct{}{}
			go func(i int) { defer func() { <-sem }(); submit(i) }(i)
		} else {
			next = next.Add(gaps[i])
			time.Sleep(time.Until(next))
			go submit(i)
		}
	}
	wg.Wait()
	wall := time.Since(wallStart)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("load: job %d: %w", i, err)
		}
	}

	served := make([]float64, 0, len(stream))
	shedCount := 0
	for i := range stream {
		if shed[i] {
			shedCount++
		} else {
			served = append(served, latencies[i])
		}
	}
	var lat stats.Summary
	lat.AddAll(served)
	source := "random"
	switch {
	case cfg.corpus != "":
		source = "corpus " + cfg.corpus
	case cfg.scenario != "":
		source = "scenario " + cfg.scenario
		if cfg.demand != "" {
			source += "/" + cfg.demand
		}
	}
	if len(cfg.targets) == 0 {
		snap := e.Snapshot()
		fmt.Fprintf(out, "engine load: %d jobs (%s), %s loop, %d workers, alg %s, dup %.2f\n",
			cfg.jobs, source, shape, snap.Workers, cfg.alg, cfg.dup)
	} else {
		fmt.Fprintf(out, "cluster load: %d jobs (%s), %s loop, %d targets, alg %s, dup %.2f\n",
			cfg.jobs, source, shape, len(cfg.targets), cfg.alg, cfg.dup)
	}
	fmt.Fprintf(out, "  wall time        %v\n", wall.Round(time.Millisecond))
	fmt.Fprintf(out, "  throughput       %.1f jobs/sec\n", float64(len(served))/wall.Seconds())
	hs := hist.Snapshot()
	fmt.Fprintf(out, "  latency mean     %.3f ms\n", lat.Mean()*1e3)
	fmt.Fprintf(out, "  latency p50/p95  %.3f / %.3f ms\n",
		hs.Quantile(0.5)*1e3, hs.Quantile(0.95)*1e3)
	fmt.Fprintf(out, "  latency p99/p999 %.3f / %.3f ms\n",
		hs.Quantile(0.99)*1e3, hs.Quantile(0.999)*1e3)
	fmt.Fprintf(out, "  latency max      %.3f ms\n", lat.Max()*1e3)
	if len(cfg.targets) == 0 {
		snap := e.Snapshot()
		fmt.Fprintf(out, "  executions       %d (cache hits %d, coalesced %d)\n",
			snap.Completed, snap.CacheHits, snap.Coalesced)
	} else {
		fmt.Fprintf(out, "  shed             %d/%d (%.1f%% answered 429)\n",
			shedCount, cfg.jobs, 100*float64(shedCount)/float64(cfg.jobs))
	}
	return nil
}

// sessionBenchConfig parameterizes the session streaming benchmark.
type sessionBenchConfig struct {
	scenario string // catalog topology ("" = waxman)
	demand   string // catalog demand model
	in       string // instance file to replay ("" = generate)
	size     int    // scenario vertex count (0 = topology default)
	requests int    // scenario request count (0 = topology default)
	eps      float64
	seed     uint64
	resolves int // timed full-solve samples for the stateless baseline
}

// runSession measures the stateful session layer end to end: register
// the instance's network once, stream every request as one admit, and
// compare per-admit latency against the stateless alternative — the
// full batch online solve a session-less client re-runs per request.
func runSession(out io.Writer, cfg sessionBenchConfig) error {
	var inst *core.Instance
	var source string
	switch {
	case cfg.in != "":
		if cfg.scenario != "" || cfg.demand != "" || cfg.size != 0 || cfg.requests != 0 {
			return fmt.Errorf("session: -in replays a recorded instance; it excludes -scenario/-demand/-size/-requests")
		}
		data, err := os.ReadFile(cfg.in)
		if err != nil {
			return err
		}
		if inst, err = truthfulufp.UnmarshalInstance(data); err != nil {
			return fmt.Errorf("session: instance file %s: %w", cfg.in, err)
		}
		source = "file " + cfg.in
	default:
		topo := cfg.scenario
		if topo == "" {
			topo = "waxman"
		}
		var err error
		inst, err = scenario.Generate(scenario.Config{
			Topology: topo, Demand: cfg.demand, Seed: cfg.seed,
			Size: cfg.size, Requests: cfg.requests,
		})
		if err != nil {
			return err
		}
		source = "scenario " + topo
		if cfg.demand != "" {
			source += "/" + cfg.demand
		}
	}
	if len(inst.Requests) == 0 {
		return fmt.Errorf("session: instance has no requests to stream")
	}

	mgr := session.NewManager(session.Config{})
	regStart := time.Now()
	sess, err := mgr.Register(inst.G, cfg.eps)
	if err != nil {
		return err
	}
	regElapsed := time.Since(regStart)

	latencies := make([]float64, len(inst.Requests)) // per-admit seconds
	hist := metrics.NewHistogram(metrics.DefLatencyBuckets)
	admitted := 0
	var value float64
	for i, r := range inst.Requests {
		start := time.Now()
		d, err := sess.Admit(r)
		latencies[i] = time.Since(start).Seconds()
		hist.Observe(latencies[i])
		if err != nil {
			return fmt.Errorf("session: admit %d: %w", i, err)
		}
		if d.Admitted {
			admitted++
			value += r.Value
		}
	}
	info, err := sess.Info()
	if err != nil {
		return err
	}

	// The stateless comparison: a client without a session pays one full
	// batch solve per request to reach the same admission state.
	var resolve stats.Summary
	for i := 0; i < cfg.resolves; i++ {
		start := time.Now()
		if _, err := core.OnlineAdmission(inst, cfg.eps, nil); err != nil {
			return fmt.Errorf("session: full resolve: %w", err)
		}
		resolve.Add(time.Since(start).Seconds())
	}

	var lat stats.Summary
	lat.AddAll(latencies)
	fmt.Fprintf(out, "session stream: %d requests (%s), eps %.3g, %d vertices / %d edges\n",
		len(inst.Requests), source, cfg.eps, info.Vertices, info.Edges)
	fmt.Fprintf(out, "  register           %v\n", regElapsed.Round(time.Microsecond))
	fmt.Fprintf(out, "  admitted           %d/%d (value %.4g)\n", admitted, len(inst.Requests), value)
	hs := hist.Snapshot()
	fmt.Fprintf(out, "  admit mean         %.3f ms\n", lat.Mean()*1e3)
	fmt.Fprintf(out, "  admit p50/p95      %.3f / %.3f ms\n",
		hs.Quantile(0.5)*1e3, hs.Quantile(0.95)*1e3)
	fmt.Fprintf(out, "  admit p99/p999     %.3f / %.3f ms\n",
		hs.Quantile(0.99)*1e3, hs.Quantile(0.999)*1e3)
	fmt.Fprintf(out, "  admit max          %.3f ms\n", lat.Max()*1e3)
	fmt.Fprintf(out, "  path cache         %d reused / %d recomputed\n", info.PathReused, info.PathRecomputed)
	if info.OracleSearches > 0 {
		fmt.Fprintf(out, "  path oracle        %d searches, %.1f%% pruned vs full tree\n",
			info.OracleSearches, info.OraclePruneRatio*100)
	}
	if info.LandmarkRebuilds > 0 {
		fmt.Fprintf(out, "  landmark rebuilds  %d (stale tables re-selected against current prices)\n",
			info.LandmarkRebuilds)
	}
	if info.BidiProbes > 0 {
		fmt.Fprintf(out, "  bidi probes        %d (%d met)\n", info.BidiProbes, info.BidiMeets)
	}
	if info.PolicyTree+info.PolicySingle > 0 {
		fmt.Fprintf(out, "  refresh policy     %d tree / %d single decisions\n",
			info.PolicyTree, info.PolicySingle)
	}
	if resolve.N() > 0 {
		fmt.Fprintf(out, "  full resolve mean  %.3f ms (%d samples)\n", resolve.Mean()*1e3, resolve.N())
		if lat.Mean() > 0 {
			fmt.Fprintf(out, "  speedup            %.1fx per admit vs stateless full resolve\n",
				resolve.Mean()/lat.Mean())
		}
	}
	return nil
}

// loadCorpus reads every instance file of a ufpgen -corpus directory
// (the *.json files; manifest.txt is skipped) in sorted filename order,
// so replay order is stable across runs and machines. Graphs are frozen
// on load: the solve path never pays the CSR build.
func loadCorpus(dir string) ([]*core.Instance, error) {
	// os.ReadDir rather than filepath.Glob: a corpus path containing
	// glob metacharacters ("runs[1]") must not be treated as a pattern.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	instances := make([]*core.Instance, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		inst, err := truthfulufp.UnmarshalInstance(data)
		if err != nil {
			return nil, fmt.Errorf("load: corpus file %s: %w", name, err)
		}
		inst.G.Freeze()
		instances = append(instances, inst)
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("load: corpus directory %s has no *.json instances", dir)
	}
	return instances, nil
}

// writeCSVs dumps every table of the report as <dir>/<id>_<table>.csv.
func writeCSVs(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, tab := range rep.Tables {
		name := fmt.Sprintf("%s_%s.csv", strings.ToLower(rep.ID), tab.CSVName())
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
