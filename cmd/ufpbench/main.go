// Command ufpbench regenerates the paper's evaluation artifacts: one
// report per experiment in DESIGN.md's index (E1-E9, F1), each printing
// the series its theorem or figure predicts.
//
// Usage:
//
//	ufpbench [-experiment all|E1|E2|...] [-scale 1.0] [-seeds 3] [-workers 0]
//
// The output of a full-scale run is recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"truthfulufp/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ufpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ufpbench", flag.ContinueOnError)
	var (
		which   = fs.String("experiment", "all", "experiment ID (E1..E9, F1) or 'all'")
		scale   = fs.Float64("scale", 1, "workload scale in (0,1]")
		seeds   = fs.Int("seeds", 3, "random instances per configuration point")
		workers = fs.Int("workers", 0, "solver parallelism (0 = GOMAXPROCS)")
		list    = fs.Bool("list", false, "list experiments and exit")
		quiet   = fs.Bool("quiet", false, "suppress per-experiment timing lines")
		csvDir  = fs.String("csv", "", "also write each table as CSV into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runners := experiments.All()
	if *list {
		for _, r := range runners {
			fmt.Fprintf(out, "%-4s %s\n", r.ID, r.Title)
		}
		return nil
	}
	cfg := experiments.Config{Scale: *scale, Seeds: *seeds, Workers: *workers}
	ran := 0
	for _, r := range runners {
		if *which != "all" && !strings.EqualFold(*which, r.ID) {
			continue
		}
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s failed: %w", r.ID, err)
		}
		fmt.Fprint(out, rep.String())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, rep); err != nil {
				return err
			}
		}
		if !*quiet {
			fmt.Fprintf(out, "(%s completed in %v)\n", r.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (use -list)", *which)
	}
	return nil
}

// writeCSVs dumps every table of the report as <dir>/<id>_<table>.csv.
func writeCSVs(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, tab := range rep.Tables {
		name := fmt.Sprintf("%s_%s.csv", strings.ToLower(rep.ID), tab.CSVName())
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
