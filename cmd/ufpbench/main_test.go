package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"truthfulufp"
	"truthfulufp/internal/scenario"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"E1", "E5", "E9", "F1"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E3", "-scale", "0.3", "-seeds", "1", "-quiet"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "1.333") {
		t.Fatalf("E3 output wrong:\n%s", out)
	}
	if strings.Contains(out, "completed in") {
		t.Fatal("-quiet did not suppress timing")
	}
}

func TestCaseInsensitiveID(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "e5", "-scale", "0.3", "-seeds", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E5") {
		t.Fatalf("e5 did not run E5:\n%s", b.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "E42"}, &b); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-experiment", "E3", "-scale", "0.3", "-seeds", "1", "-csv", dir}, &b); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files written")
	}
	found := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "e3_") && strings.HasSuffix(e.Name(), ".csv") {
			found = true
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), "ratio") {
				t.Fatalf("CSV missing header: %s", data)
			}
		}
	}
	if !found {
		t.Fatalf("no e3_*.csv among %v", entries)
	}
}

func TestLoadClosedLoop(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-load", "-jobs", "40", "-concurrency", "8", "-dup", "0.5", "-workers", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"closed loop", "jobs/sec", "latency p50/p95", "cache hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("load output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadOpenLoop(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-load", "-shape", "open", "-jobs", "20", "-rate", "2000", "-workers", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "open loop") {
		t.Fatalf("open-loop output wrong:\n%s", b.String())
	}
}

func TestLoadRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-load", "-kind", "muca/solve"}, &b); err == nil {
		t.Error("auction kind accepted by UFP load generator")
	}
	if err := run([]string{"-load", "-shape", "sideways"}, &b); err == nil {
		t.Error("unknown traffic shape accepted")
	}
	if err := run([]string{"-load", "-dup", "1.5"}, &b); err == nil {
		t.Error("dup fraction out of range accepted")
	}
}

// TestLoadScenarioSource: -load -scenario streams catalog instances
// through the engine end to end.
func TestLoadScenarioSource(t *testing.T) {
	var b strings.Builder
	args := []string{"-load", "-jobs", "12", "-concurrency", "4", "-workers", "2",
		"-scenario", "metroring", "-demand", "zipf"}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "scenario metroring/zipf") {
		t.Fatalf("load output missing scenario source:\n%s", b.String())
	}
	if err := run([]string{"-load", "-jobs", "4", "-scenario", "nope"}, &b); err == nil {
		t.Error("unknown scenario topology accepted")
	}
	if err := run([]string{"-load", "-jobs", "4", "-demand", "zipf"}, &b); err == nil {
		t.Error("-demand without -scenario accepted in load mode")
	}
}

// TestLoadCorpusReplay: -load -corpus streams recorded instance files
// through the engine instead of generating in-process.
func TestLoadCorpusReplay(t *testing.T) {
	dir := t.TempDir()
	// Record a tiny corpus with ufpgen's generator (same JSON schema).
	for i, cfg := range []scenario.Config{
		{Topology: "metroring", Demand: "zipf", Seed: 1},
		{Topology: "startrees", Seed: 2},
	} {
		inst, err := scenario.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := truthfulufp.MarshalInstance(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("c%d.json", i)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A manifest must be skipped, not decoded.
	if err := os.WriteFile(filepath.Join(dir, "manifest.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	args := []string{"-load", "-jobs", "10", "-concurrency", "4", "-workers", "2", "-corpus", dir}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "corpus "+dir) {
		t.Fatalf("load output missing corpus source:\n%s", b.String())
	}

	if err := run([]string{"-load", "-corpus", t.TempDir()}, &b); err == nil {
		t.Error("empty corpus directory accepted")
	}
	if err := run([]string{"-load", "-corpus", dir, "-scenario", "fattree"}, &b); err == nil {
		t.Error("-corpus together with -scenario accepted")
	}
	if err := run([]string{"-corpus", dir}, &b); err == nil {
		t.Error("-corpus accepted outside load mode")
	}
}

// TestScenarioExperimentFilter: -experiment S1 -scenario restricts the
// sweep to one topology family.
func TestScenarioExperimentFilter(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "S1", "-scale", "0.2", "-seeds", "1",
		"-scenario", "startrees", "-quiet"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "startrees") {
		t.Fatalf("S1 output missing the requested family:\n%s", out)
	}
	if strings.Contains(out, "waxman") {
		// Other families must be filtered out of S1a (S1b pins fattree).
		t.Fatalf("S1 -scenario did not filter families:\n%s", out)
	}
	if err := run([]string{"-experiment", "S1", "-scenario", "nope"}, &b); err == nil {
		t.Error("unknown scenario family accepted by S1")
	}
	if err := run([]string{"-experiment", "E3", "-demand", "zipf"}, &b); err == nil {
		t.Error("-demand accepted in experiment mode")
	}
}

// TestLoadRegistryAlg: -alg drives the load generator through the
// registry, including algorithms with no legacy Kind constant.
func TestLoadRegistryAlg(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-load", "-alg", "ufp/greedy", "-jobs", "12", "-concurrency", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "alg ufp/greedy") {
		t.Fatalf("missing alg in report:\n%s", b.String())
	}
	if err := run([]string{"-load", "-alg", "muca/solve", "-jobs", "2"}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "UFP") {
		t.Fatalf("auction alg accepted by UFP load gen: %v", err)
	}
	if err := run([]string{"-load", "-alg", "ufp/greedy", "-kind", "ufp/solve", "-jobs", "2"}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("contradictory -alg/-kind accepted: %v", err)
	}
	if err := run([]string{"-algs"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ufp/rounding") {
		t.Fatal("-algs missing ufp/rounding")
	}
}
