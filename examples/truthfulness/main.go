// Truthfulness: a selfish agent tries to game the mechanism. We run the
// truthful mechanism (Bounded-UFP + critical values), then let one agent
// try a grid of false declarations — inflated values, deflated demands,
// understated values — and measure its utility each time. Truth-telling
// is always a best response (Theorem 2.3 / Corollary 3.2). For contrast,
// the same probe against randomized rounding exhibits a monotonicity
// violation, which is exactly why rounding cannot be priced truthfully.
//
// Run with: go run ./examples/truthfulness
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"truthfulufp"
	"truthfulufp/internal/core"
	"truthfulufp/internal/mechanism"
	"truthfulufp/internal/workload"
)

const eps = 0.25

func main() {
	// A contended bottleneck: two capacity-6 links in series shared by
	// nine agents with ~8.3 total demand — someone must lose. (Capacity 6
	// keeps e^{ε(B-1)} above m = 2 so the primal-dual loop runs.)
	g := truthfulufp.NewGraph(3)
	g.AddEdge(0, 1, 6)
	g.AddEdge(1, 2, 6)
	inst := &truthfulufp.Instance{G: g, Requests: []truthfulufp.Request{
		{Source: 0, Target: 2, Demand: 1.0, Value: 1.9},
		{Source: 0, Target: 2, Demand: 0.9, Value: 1.5},
		{Source: 0, Target: 1, Demand: 0.8, Value: 0.8},
		{Source: 1, Target: 2, Demand: 0.7, Value: 0.6},
		{Source: 0, Target: 2, Demand: 1.0, Value: 1.0},
		{Source: 0, Target: 2, Demand: 1.0, Value: 0.9},
		{Source: 0, Target: 2, Demand: 1.0, Value: 0.85},
		{Source: 0, Target: 2, Demand: 0.9, Value: 0.5},
		{Source: 0, Target: 2, Demand: 1.0, Value: 0.4},
	}}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	outcome, err := truthfulufp.RunUFPMechanismCtx(context.Background(), inst, eps, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("truthful run:")
	sel := outcome.Allocation.Selected(len(inst.Requests))
	for r, req := range inst.Requests {
		if sel[r] {
			pay := outcome.Payments[r]
			fmt.Printf("  agent %d WINS:  value %.2f, pays %.4f, utility %.4f\n", r, req.Value, pay, req.Value-pay)
		} else {
			fmt.Printf("  agent %d loses: value %.2f, utility 0\n", r, req.Value)
		}
	}

	// Agent 0 probes misreports: every (demand multiplier, value
	// multiplier) in a grid. Its TRUE type stays (1.0, 1.9); utility is
	// evaluated against the truth.
	agent := 0
	trueType := inst.Requests[agent]
	truthfulUtil := utility(outcome, inst, agent, trueType)
	fmt.Printf("\nagent %d (true demand %g, true value %g) probes misreports; truthful utility %.4f:\n",
		agent, trueType.Demand, trueType.Value, truthfulUtil)
	bestGain := 0.0
	for _, dm := range []float64{0.5, 0.8, 1.0} {
		for _, vm := range []float64{0.5, 0.9, 1.2, 2.0} {
			if dm == 1 && vm == 1 {
				continue
			}
			decl := trueType
			decl.Demand *= dm
			decl.Value *= vm
			mod := inst.Clone()
			mod.Requests[agent] = decl
			out, err := truthfulufp.RunUFPMechanismCtx(context.Background(), mod, eps, nil)
			if err != nil {
				log.Fatal(err)
			}
			u := utility(out, mod, agent, trueType)
			verdict := "no gain"
			if u > truthfulUtil+1e-6 {
				verdict = "PROFITABLE (should never happen!)"
				bestGain = u - truthfulUtil
			}
			fmt.Printf("  declare (d=%.2f, v=%.2f): utility %.4f  [%s]\n", decl.Demand, decl.Value, u, verdict)
		}
	}
	if bestGain > 0 {
		log.Fatalf("truthfulness violated by %g", bestGain)
	}
	fmt.Println("no profitable misreport found: truth-telling is a dominant strategy.")

	// Why not just use randomized rounding (which nearly matches the
	// fractional optimum)? Because it is not monotone:
	fmt.Println("\ncontrast: searching for a monotonicity violation of randomized rounding ...")
	roundAlg := func(in *core.Instance) (*core.Allocation, error) {
		return core.RandomizedRounding(in, rand.New(rand.NewPCG(99, 1)), core.RoundingOptions{})
	}
	for seed := uint64(0); seed < 25; seed++ {
		cfg := workload.UFPConfig{
			Vertices: 6, Edges: 12, Requests: 10, Directed: true,
			B: 3, CapSpread: 0.4, DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
		}
		rinst, err := workload.RandomUFP(workload.NewRNG(seed+60), cfg)
		if err != nil {
			log.Fatal(err)
		}
		w, err := mechanism.FindUFPMonotonicityViolation(roundAlg, rinst, workload.NewRNG(seed), 60)
		if err != nil {
			log.Fatal(err)
		}
		if w != nil {
			fmt.Printf("found: %v\n", w)
			fmt.Println("a winner improved its declaration and LOST — no payment rule can make that truthful.")
			return
		}
	}
	fmt.Println("(no witness in this search budget; rerun with more seeds)")
}

func utility(out *truthfulufp.UFPOutcome, inst *truthfulufp.Instance, agent int, trueType truthfulufp.Request) float64 {
	pay, selected := out.Payments[agent]
	if !selected {
		return 0
	}
	gross := 0.0
	if inst.Requests[agent].Demand >= trueType.Demand-1e-12 {
		gross = trueType.Value
	}
	return gross - pay
}
