package main

import "testing"

// TestMainRuns is the bit-rot smoke test: the example must build and run
// end to end (a failure inside the example calls log.Fatal, which exits
// the test binary non-zero).
func TestMainRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs are not short")
	}
	main()
}
