// Auction: a bandwidth auction — an operator sells capacity units on a
// set of links (items with multiplicities) to single-minded bidders who
// each need a specific bundle of links. Bounded-MUCA allocates in the
// Ω(ln m) regime it is designed for, the LP relaxation grades the result,
// and critical values price a few winners. Truthful even when bidders
// could lie about their bundles (unknown single-minded, Corollary 4.2).
//
// Run with: go run ./examples/auction
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"truthfulufp"
	"truthfulufp/internal/auction"
	"truthfulufp/internal/mechanism"
)

func main() {
	rng := rand.New(rand.NewPCG(7, 2026))

	// 12 links, each with 90 sellable capacity units: B = 90 >=
	// ln(12)/ε² for ε = 1/6, the Theorem 4.1 regime.
	const items = 12
	const eps = 1.0 / 6
	inst := &truthfulufp.AuctionInstance{Multiplicity: make([]float64, items)}
	for u := range inst.Multiplicity {
		inst.Multiplicity[u] = 90
	}
	// 450 bidders, each wanting a route of 2-5 consecutive links; total
	// item demand ≈ 1575 against 1080 units for sale.
	for i := 0; i < 450; i++ {
		size := 2 + rng.IntN(4)
		start := rng.IntN(items)
		bundle := make([]int, 0, size)
		for k := 0; k < size; k++ {
			bundle = append(bundle, (start+k)%items)
		}
		inst.Requests = append(inst.Requests, truthfulufp.AuctionRequest{
			Bundle: bundle,
			Value:  float64(size) * (0.6 + 0.8*rng.Float64()),
		})
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	alloc, err := truthfulufp.BoundedMUCACtx(context.Background(), inst, eps, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction: %d items (multiplicity %g), %d bidders\n",
		inst.NumItems(), inst.B(), len(inst.Requests))
	fmt.Printf("Bounded-MUCA welfare: %.2f across %d winners (stop: %v)\n",
		alloc.Value, len(alloc.Selected), alloc.Stop)
	fmt.Printf("certified ratio vs fractional OPT: %.4f (guarantee (1+6ε)·e/(e-1) = %.3f)\n",
		alloc.DualBound/alloc.Value, (1+6*eps)*1.5820)

	lp, err := auction.LPBound(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP relaxation optimum:          %.2f -> realized ratio <= %.4f\n", lp, lp/alloc.Value)

	// Price a few winners with their critical values (pricing all ~300
	// winners re-runs the auction thousands of times; a real deployment
	// would batch this).
	algo := mechanism.BoundedMUCAAlg(eps, nil)
	fmt.Println("\ntruthful prices for the first 5 winners:")
	for _, w := range alloc.Selected[:5] {
		pay, err := mechanism.AuctionCriticalValue(algo, inst, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  bidder %3d: bundle %v, bid %.2f, pays %.4f\n",
			w, inst.Requests[w].Bundle, inst.Requests[w].Value, pay)
	}
}
