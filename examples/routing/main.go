// Routing: an ISP-style scenario — a layered backbone carrying customer
// circuits with heterogeneous bandwidth demands and willingness to pay.
// Compares the paper's truthful Bounded-UFP against the sequential
// primal-dual and greedy baselines, with the certified dual bound as the
// yardstick. This is the workload shape the paper's introduction
// motivates: network routing with per-edge capacities much larger than
// any single demand.
//
// Run with: go run ./examples/routing
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"truthfulufp"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(2026, 6))

	// Backbone: 4 layers (edge routers -> core -> core -> edge routers),
	// every adjacent pair connected, capacity 40 demand-units per link.
	layers := []int{4, 3, 3, 4}
	n := 0
	for _, k := range layers {
		n += k
	}
	g := truthfulufp.NewGraph(n)
	base := 0
	for i := 0; i+1 < len(layers); i++ {
		next := base + layers[i]
		for u := 0; u < layers[i]; u++ {
			for v := 0; v < layers[i+1]; v++ {
				g.AddEdge(base+u, next+v, 40)
			}
		}
		base = next
	}
	ingress := []int{0, 1, 2, 3}
	egress := []int{n - 4, n - 3, n - 2, n - 1}

	// 800 circuit requests: demand = fraction of link capacity consumed
	// (normalized to (0,1]), value loosely correlated with demand. Total
	// demand ≈ 480 against an ingress cut of 480, so selection is real.
	inst := &truthfulufp.Instance{G: g}
	for i := 0; i < 800; i++ {
		d := 0.2 + 0.8*rng.Float64()
		inst.Requests = append(inst.Requests, truthfulufp.Request{
			Source: ingress[rng.IntN(len(ingress))],
			Target: egress[rng.IntN(len(egress))],
			Demand: d,
			Value:  d * (0.8 + 0.7*rng.Float64()),
		})
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backbone: %v, B = %g, %d requests, total demand %g\n",
		inst.G, inst.B(), len(inst.Requests), totalDemand(inst))

	bounded, err := truthfulufp.BoundedUFPCtx(ctx, inst, 0.35, nil)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := truthfulufp.SequentialPrimalDualCtx(ctx, inst, 0.35, nil)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := truthfulufp.GreedyByDensityCtx(ctx, inst, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %10s %8s\n", "algorithm", "value", "routed", "vs-bound")
	for _, row := range []struct {
		name  string
		alloc *truthfulufp.Allocation
	}{
		{"bounded-ufp (paper)", bounded},
		{"sequential primal-dual", seq},
		{"greedy by density", greedy},
	} {
		fmt.Printf("%-22s %10.2f %10d %8.3f\n",
			row.name, row.alloc.Value, len(row.alloc.Routed), row.alloc.Value/bounded.DualBound)
	}
	fmt.Printf("\ncertified upper bound on the fractional optimum: %.2f\n", bounded.DualBound)
	fmt.Printf("Bounded-UFP is within %.3fx of optimal (guarantee at this ε: %.3fx for B >= ln m/ε²)\n",
		bounded.DualBound/bounded.Value, (1+6*0.35)*1.5820)
}

func totalDemand(inst *truthfulufp.Instance) float64 {
	d := 0.0
	for _, r := range inst.Requests {
		d += r.Demand
	}
	return d
}
