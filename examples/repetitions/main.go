// Repetitions: throughput maximization — when the same request may be
// served many times (think repeated batch transfers between fixed
// endpoints), Bounded-UFP-Repeat is (1+ε)-approximate (Theorem 5.1), in
// sharp contrast to the e/(e-1) wall of the single-shot problem. The
// Garg-Könemann fractional solver provides an independent reference.
//
// Run with: go run ./examples/repetitions
package main

import (
	"context"
	"fmt"
	"log"

	"truthfulufp"
	"truthfulufp/internal/mcf"
)

func main() {
	// A small transit network: two datacenter sites exchanging batches
	// over a 6-vertex ring with chords. Capacities are large (B = 300).
	g := truthfulufp.NewGraph(6)
	type e struct{ u, v int }
	for _, ed := range []e{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}, {0, 3}} {
		g.AddEdge(ed.u, ed.v, 300)
		g.AddEdge(ed.v, ed.u, 300)
	}
	inst := &truthfulufp.Instance{
		G: g,
		Requests: []truthfulufp.Request{
			// (site, site, batch size, value per batch)
			{Source: 0, Target: 3, Demand: 1.0, Value: 1.0},
			{Source: 1, Target: 4, Demand: 0.5, Value: 0.6},
			{Source: 2, Target: 5, Demand: 0.8, Value: 0.7},
		},
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	const eps = 0.6 // Theorem 5.1 convention: runs Bounded-UFP-Repeat(ε/6)
	rep, err := truthfulufp.SolveUFPRepeatCtx(context.Background(), inst, eps, nil)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int]int{}
	for _, p := range rep.Routed {
		counts[p.Request]++
	}
	fmt.Printf("network: %s, B = %g\n", inst.G, inst.B())
	fmt.Printf("repetitions solution: value %.1f over %d routings (stop: %v)\n",
		rep.Value, len(rep.Routed), rep.Stop)
	for r, c := range counts {
		fmt.Printf("  request %d served %d times\n", r, c)
	}
	fmt.Printf("certified ratio vs fractional OPT: %.4f (theorem: 1+ε = %.2f)\n",
		rep.DualBound/rep.Value, 1+eps)

	// Independent fractional reference (Garg-Könemann FPTAS on the
	// Figure 5 LP).
	gk, err := mcf.MaxProfitFlow(inst, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGarg-Könemann fractional reference: value in [%.1f, %.1f]\n", gk.Value, gk.UpperBound)
	fmt.Printf("integral-with-repetitions achieves %.1f%% of the fractional upper bound\n",
		100*rep.Value/gk.UpperBound)

	// Contrast: the single-shot algorithm can serve each request once.
	single, err := truthfulufp.SolveUFPCtx(context.Background(), inst, eps, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-shot Bounded-UFP on the same instance: value %.1f (each request at most once)\n", single.Value)
}
