// Quickstart: build a small unsplittable-flow instance with real
// contention, solve it with the paper's truthful algorithm (Bounded-UFP),
// and charge the winners their critical-value payments. Because capacity
// is scarce, marginal winners pay a meaningful price.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"truthfulufp"
)

func main() {
	// A 4-vertex diamond: two disjoint routes from 0 to 3, each edge with
	// capacity 8 — room for 16 unit-demand circuits in total.
	g := truthfulufp.NewGraph(4)
	g.AddEdge(0, 1, 8) // edge 0
	g.AddEdge(1, 3, 8) // edge 1
	g.AddEdge(0, 2, 8) // edge 2
	g.AddEdge(2, 3, 8) // edge 3

	// 20 unit-demand requests with distinct values: at most 16 can win.
	inst := &truthfulufp.Instance{G: g}
	for i := 0; i < 20; i++ {
		inst.Requests = append(inst.Requests, truthfulufp.Request{
			Source: 0, Target: 3, Demand: 1, Value: 1 + 0.05*float64(i),
		})
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	// BoundedUFPCtx(ctx, inst, ε, nil) is Algorithm 1: feasible (never overloads
	// an edge), monotone and exact (so it can be priced truthfully), and
	// e/(e-1)-approximate in the large-capacity regime.
	const eps = 0.5
	alloc, err := truthfulufp.BoundedUFPCtx(context.Background(), inst, eps, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d requests allocated, value %.2f (stop: %v)\n",
		len(alloc.Routed), len(inst.Requests), alloc.Value, alloc.Stop)
	fmt.Printf("certified: within %.3fx of the fractional optimum (dual bound %.2f)\n",
		alloc.DualBound/alloc.Value, alloc.DualBound)

	// The same algorithm plus critical-value payments is a truthful
	// mechanism (Theorem 2.3): no agent gains by lying about its demand
	// or value. Winners pay the smallest value at which they would still
	// have won — zero without contention, positive here.
	outcome, err := truthfulufp.RunUFPMechanismCtx(context.Background(), inst, eps, nil)
	if err != nil {
		log.Fatal(err)
	}
	sel := outcome.Allocation.Selected(len(inst.Requests))
	fmt.Println("\nagents (by declared value):")
	for r := len(inst.Requests) - 1; r >= 0; r-- {
		req := inst.Requests[r]
		if sel[r] {
			pay := outcome.Payments[r]
			fmt.Printf("  agent %2d: value %.2f  WINS, pays %.4f, utility %.4f\n",
				r, req.Value, pay, req.Value-pay)
		} else {
			fmt.Printf("  agent %2d: value %.2f  loses\n", r, req.Value)
		}
	}
}
