# Mirrors .github/workflows/ci.yml so contributors run the same checks
# locally that gate a PR.

GO ?= go

.PHONY: all build test bench serve fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Execute every benchmark's code path once (the CI smoke step). For real
# measurements use e.g.:
#   go test -bench=BenchmarkEngineThroughput -benchtime=2s -run='^$$' .
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

serve:
	$(GO) run ./cmd/ufpserve

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build test bench
