# Mirrors .github/workflows/ci.yml so contributors run the same checks
# locally that gate a PR.

GO ?= go

.PHONY: all build test bench bench-json bench-trend fuzz-smoke serve fmt vet ci smoke smoke-session smoke-metrics smoke-cluster

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Execute every benchmark's code path once (the CI smoke step; -short
# shrinks the waxman-1k path-engine instances). For real measurements
# use e.g.:
#   go test -bench=BenchmarkEngineThroughput -benchtime=2s -run='^$$' .
bench:
	$(GO) test -short -bench=. -benchtime=1x -run='^$$' ./...

# Measure the path-engine suite and snapshot it as BENCH_path.json
# (benchmark name -> ns/op, allocs/op, plus the incremental-vs-full
# speedup). CI runs `make bench-json BENCHJSON_FLAGS=-quick` as a smoke
# step; commit full-size snapshots to track the perf trajectory.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_path.json $(BENCHJSON_FLAGS)

# Benchmark trend gate (the CI step): measure the full-size path suite
# into a throwaway snapshot and fail on a >25% regression of any
# derived speedup (IncrementalSolve, IncrementalBottleneck,
# IncrementalBellman, SingleTarget, Landmark, Bidirectional,
# BottleneckSingleTarget, LandmarkRebuild, AuctionReasonable,
# SessionAdmit) relative to the committed
# BENCH_path.json, and on a missing or never-shedding cluster serving
# pass (cluster_serve). Speedup ratios and the shed contract are
# machine-portable; absolute ns/op are not.
bench-trend:
	$(GO) run ./cmd/benchjson -out /tmp/BENCH_path_fresh.json -baseline BENCH_path.json -max-regression 0.25

# Short native-fuzz passes over the path engine's canonical tie-break
# invariants (the CI step): leximax bottleneck tree properties, the
# ALT/bidirectional oracle's bit-identity to the plain search, and the
# goal-directed bottleneck search's bit-identity to the plain leximax
# search and full tree, each against fresh randomly generated (graph,
# weights, bump-sequence) triples. Go allows one -fuzz target per
# invocation, hence three runs.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzBottleneckLeximax$$' -fuzztime=10s ./internal/pathfind/
	$(GO) test -run='^$$' -fuzz='^FuzzLandmarkOracle$$' -fuzztime=10s ./internal/pathfind/
	$(GO) test -run='^$$' -fuzz='^FuzzBottleneckALT$$' -fuzztime=10s ./internal/pathfind/

serve:
	$(GO) run ./cmd/ufpserve

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Scenario determinism + generator->solver pipeline, as CI runs them.
# SHELLFLAGS adds pipefail so a generator failure cannot hide behind the
# downstream consumer's exit status.
smoke: SHELL := /bin/bash
smoke: .SHELLFLAGS := -o pipefail -c
smoke:
	$(GO) run ./cmd/ufpgen -hashes -seeds 2 > /tmp/corpus-hashes-1.txt
	$(GO) run ./cmd/ufpgen -hashes -seeds 2 > /tmp/corpus-hashes-2.txt
	diff -u /tmp/corpus-hashes-1.txt /tmp/corpus-hashes-2.txt
	$(GO) run ./cmd/ufpgen -scenario fattree -seed 7 | $(GO) run ./cmd/ufprun -in - -json > /dev/null
	@echo "scenario determinism + pipeline smoke: ok"

# Session pipeline smoke (the CI step): generate a scenario instance
# with ufpgen, then register its network and stream every request
# through the stateful session layer via ufpbench -session, which
# reports per-admit latency and the speedup over a stateless full
# solve per request.
smoke-session:
	$(GO) run ./cmd/ufpgen -scenario fattree -seed 7 -o /tmp/session-smoke.json
	$(GO) run ./cmd/ufpbench -session -in /tmp/session-smoke.json

# Observability smoke (the CI step): start ufpserve, drive one request
# through each instrumented subsystem — register + admit for the
# session layer, the same solve twice for an engine cache hit, and a
# 64-vertex path network streamed past one landmark staleness window
# under an unattainable -landmark-stale-ratio so the lifecycle rebuilds
# at least once — then assert /metrics exposes non-zero counters for
# the http, session, engine-cache, and landmark-lifecycle subsystems.
# One shell invocation so the EXIT trap always reaps the background
# server.
smoke-metrics: SHELL := /bin/bash
smoke-metrics: .SHELLFLAGS := -o pipefail -c
smoke-metrics:
	$(GO) build -o /tmp/ufpserve-smoke ./cmd/ufpserve
	/tmp/ufpserve-smoke -addr 127.0.0.1:18080 -landmark-stale-ratio 0.99 & \
	trap 'kill $$! 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18080/v1/readyz > /dev/null && break; sleep 0.1; \
	done; \
	id=$$(curl -sf 127.0.0.1:18080/v1/networks \
		-d '{"eps":0.25,"network":{"directed":true,"vertices":2,"edges":[{"from":0,"to":1,"capacity":30}]}}' \
		| grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4); \
	test -n "$$id"; \
	curl -sf 127.0.0.1:18080/v1/networks/$$id/admit \
		-d '{"source":0,"target":1,"demand":1,"value":2}' | grep -q '"admitted":true'; \
	solve='{"algorithm":"ufp/solve","eps":0.25,"instance":{"directed":true,"vertices":2,"edges":[{"from":0,"to":1,"capacity":30}],"requests":[{"source":0,"target":1,"demand":1,"value":2}]}}'; \
	curl -sf 127.0.0.1:18080/v1/solve -d "$$solve" > /dev/null; \
	curl -sf 127.0.0.1:18080/v1/solve -d "$$solve" | grep -q '"cacheHit":true'; \
	edges=$$(for i in $$(seq 0 62); do printf '{"from":%d,"to":%d,"capacity":30},' $$i $$((i+1)); done); \
	big=$$(curl -sf 127.0.0.1:18080/v1/networks \
		-d '{"eps":0.25,"network":{"directed":true,"vertices":64,"edges":['"$${edges%,}"']}}' \
		| grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4); \
	test -n "$$big"; \
	for i in $$(seq 1 40); do \
		curl -sf 127.0.0.1:18080/v1/networks/$$big/admit \
			-d '{"source":0,"target":63,"demand":0.01,"value":1000000}' > /dev/null; \
	done; \
	curl -sf 127.0.0.1:18080/metrics > /tmp/metrics-smoke.txt; \
	grep -Eq '^ufp_http_requests_total\{.*\} [0-9]*[1-9]' /tmp/metrics-smoke.txt; \
	grep -Eq '^ufp_session_admits_total [0-9]*[1-9]' /tmp/metrics-smoke.txt; \
	grep -Eq '^ufp_engine_cache_hits_total [0-9]*[1-9]' /tmp/metrics-smoke.txt; \
	grep -Eq '^ufp_pathcache_landmark_rebuilds_total [0-9]*[1-9]' /tmp/metrics-smoke.txt; \
	grep -Eq '^ufp_pathcache_landmark_registry_lookups_total\{result="miss"\} [0-9]*[1-9]' /tmp/metrics-smoke.txt; \
	echo "metrics exposition smoke: ok"

# Cluster smoke (the CI step): two route-mode ufpserve nodes, each
# sharded in-process, replaying a ufpgen corpus through
# ufpbench -load -targets, plus one session registered on node 1 and
# driven through node 0 to exercise the cross-node proxy. Asserts the
# ring actually spread jobs (non-zero ufp_shard_routed_total on both
# nodes), the proxy forwarded (ufp_route_forwarded_total), and no
# session operation landed on a wrong shard (ufp_shard_misrouted_total
# stays 0 cluster-wide). One shell invocation so the EXIT trap always
# reaps both background servers.
smoke-cluster: SHELL := /bin/bash
smoke-cluster: .SHELLFLAGS := -o pipefail -c
smoke-cluster:
	$(GO) build -o /tmp/ufpserve-cluster ./cmd/ufpserve
	$(GO) build -o /tmp/ufpbench-cluster ./cmd/ufpbench
	rm -rf /tmp/cluster-corpus && $(GO) run ./cmd/ufpgen -corpus /tmp/cluster-corpus -seeds 1
	peers=http://127.0.0.1:18090,http://127.0.0.1:18091; \
	/tmp/ufpserve-cluster -addr 127.0.0.1:18090 -shards 2 -route -peers $$peers -self 0 & p0=$$!; \
	/tmp/ufpserve-cluster -addr 127.0.0.1:18091 -shards 2 -route -peers $$peers -self 1 & p1=$$!; \
	trap 'kill $$p0 $$p1 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf 127.0.0.1:18090/v1/readyz > /dev/null && \
		curl -sf 127.0.0.1:18091/v1/readyz > /dev/null && break; sleep 0.1; \
	done; \
	/tmp/ufpbench-cluster -load -corpus /tmp/cluster-corpus -jobs 24 -concurrency 8 -targets $$peers; \
	id=$$(curl -sf 127.0.0.1:18091/v1/networks \
		-d '{"eps":0.25,"network":{"directed":true,"vertices":2,"edges":[{"from":0,"to":1,"capacity":30}]}}' \
		| grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4); \
	case "$$id" in p1.*) ;; *) echo "node 1 session id lacks its node prefix: '$$id'" >&2; exit 1;; esac; \
	curl -sf 127.0.0.1:18090/v1/networks/$$id/admit \
		-d '{"source":0,"target":1,"demand":1,"value":2}' | grep -q '"admitted":true'; \
	curl -sf 127.0.0.1:18090/metrics > /tmp/cluster-metrics-0.txt; \
	curl -sf 127.0.0.1:18091/metrics > /tmp/cluster-metrics-1.txt; \
	grep -Eq '^ufp_shard_routed_total\{shard="[0-9]+"\} [0-9]*[1-9]' /tmp/cluster-metrics-0.txt; \
	grep -Eq '^ufp_shard_routed_total\{shard="[0-9]+"\} [0-9]*[1-9]' /tmp/cluster-metrics-1.txt; \
	grep -Eq '^ufp_route_forwarded_total\{peer="1"\} [0-9]*[1-9]' /tmp/cluster-metrics-0.txt; \
	grep -q '^ufp_shard_misrouted_total 0$$' /tmp/cluster-metrics-0.txt; \
	grep -q '^ufp_shard_misrouted_total 0$$' /tmp/cluster-metrics-1.txt; \
	echo "cluster smoke: ok"

ci: fmt vet build test bench fuzz-smoke smoke smoke-session smoke-metrics smoke-cluster
