// Package cliio holds the small CLI helpers shared by the file-driven
// tools (cmd/ufprun, cmd/aucrun, cmd/ufpbench): input resolution and
// the solver-registry listing.
package cliio

import (
	"fmt"
	"io"
	"os"

	"truthfulufp/internal/solver"
)

// ReadSource resolves a CLI input document: in ("-in": a path, or "-"
// for stdin) takes precedence over path ("-instance"). hint names the
// fallback the error message should suggest (e.g. "-sample").
func ReadSource(in, path string, stdin io.Reader, hint string) ([]byte, error) {
	src := path
	if in != "" {
		src = in
	}
	switch {
	case src == "":
		return nil, fmt.Errorf("-in or -instance is required (try %s)", hint)
	case src == "-":
		if stdin == nil {
			return nil, fmt.Errorf("no stdin available for -in -")
		}
		return io.ReadAll(stdin)
	}
	return os.ReadFile(src)
}

// PrintAlgorithms writes the solver-registry listing behind the CLIs'
// -algs flags (one implementation so the columns cannot drift between
// tools). keep filters by kind; nil lists everything.
func PrintAlgorithms(w io.Writer, keep func(solver.Kind) bool) {
	for _, s := range solver.Solvers() {
		if keep != nil && !keep(s.Kind()) {
			continue
		}
		fmt.Fprintf(w, "%-20s %-18s %s\n", s.Name(), s.Kind(), solver.Description(s))
	}
}
