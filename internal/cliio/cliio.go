// Package cliio holds the small input-resolution helpers shared by the
// file-driven CLIs (cmd/ufprun, cmd/aucrun).
package cliio

import (
	"fmt"
	"io"
	"os"
)

// ReadSource resolves a CLI input document: in ("-in": a path, or "-"
// for stdin) takes precedence over path ("-instance"). hint names the
// fallback the error message should suggest (e.g. "-sample").
func ReadSource(in, path string, stdin io.Reader, hint string) ([]byte, error) {
	src := path
	if in != "" {
		src = in
	}
	switch {
	case src == "":
		return nil, fmt.Errorf("-in or -instance is required (try %s)", hint)
	case src == "-":
		if stdin == nil {
			return nil, fmt.Errorf("no stdin available for -in -")
		}
		return io.ReadAll(stdin)
	}
	return os.ReadFile(src)
}
