package pathfind

import (
	"math"

	"truthfulufp/internal/graph"
)

// Landmarks is a read-only set of ALT (A*, Landmarks, Triangle
// inequality) distance tables: for each of k landmark vertices L, the
// shortest-path distance from L to every vertex and from every vertex
// to L under a fixed lower-bound weight function. By the triangle
// inequality, for any vertices u, t:
//
//	d(u,t) >= d_lb(u,t) >= max_L max( d_lb(L,t) - d_lb(L,u),
//	                                  d_lb(u,L) - d_lb(t,L), 0 )
//
// for every weight function w >= lb, because raising weights can only
// raise distances. The max over landmarks is a consistent potential
// (pot(u) <= w(u->v) + pot(v) on every arc), which is exactly what the
// A* single-target search needs to prune while staying bit-identical
// to plain Dijkstra (see Scratch.ShortestPathToALT).
//
// The exponential-price solvers qualify structurally: prices start at
// 1/capacity and only ever rise, so tables built on the initial prices
// stay valid lower bounds for the whole run — no rebuild is ever needed
// unless weights are swapped wholesale (which Incremental detects, see
// OracleConfig).
//
// The same tables extend to the bottleneck (minimax) kind: the minimax
// "triangle inequality" d_b(L,t) <= max(d_b(L,u), d_b(u,t)) yields, for
// each landmark, a lower bound on the remaining bottleneck value —
// d_b(u,t) >= d_b(L,t) whenever d_b(L,u) < d_b(L,t), and symmetrically
// backwards — whose max over landmarks is a consistent minimax
// potential (pot(u) <= max(w(u->v), pot(v))). WithBottleneck builds the
// minimax tables on demand; they are optional because only
// KindBottleneck consumers pay for them.
//
// A Landmarks is immutable after construction (WithBottleneck included,
// which must run before the tables are shared) and safe to share across
// goroutines, pools, and cloned instances whose graphs share the same
// frozen CSR. LandmarkRegistry is the process-wide sharing layer.
type Landmarks struct {
	csr *graph.CSR // the frozen topology the tables were built on
	ids []int32    // landmark vertex IDs, in selection order
	lb  []float64  // per-edge lower-bound weight snapshot
	fwd [][]float64
	bwd [][]float64
	// bfwd/bbwd are the optional minimax (bottleneck) distance tables
	// over the same landmarks and lower bound (see WithBottleneck).
	bfwd [][]float64
	bbwd [][]float64
}

// DefaultLandmarkCount is the landmark count consumers use when asked
// for an automatic build: enough for strong bounds on sparse
// network-like graphs without a noticeable table-build or per-touch
// cost.
const DefaultLandmarkCount = 8

// BuildLandmarks selects up to k landmarks on g by farthest-point
// seeding and precomputes their forward and backward distance tables
// under weight, snapshotting weight as the tables' lower bound. The
// first landmark is the highest-out-degree vertex (a well-connected
// hub); each subsequent one is the vertex farthest (under the current
// tables, unreachable counting as farthest so every component gets
// covered) from all landmarks chosen so far. Vertices with no outgoing
// arcs are never selected. The graph is frozen — forward and reverse —
// as a side effect. Cost: one or two Dijkstras per landmark.
//
// weight must be a lower bound on every weight function later queried
// against the tables; the solvers pass the initial prices 1/capacity.
func BuildLandmarks(g *graph.Graph, k int, weight WeightFunc) *Landmarks {
	n := g.NumVertices()
	csr := g.Freeze()
	rcsr := g.FreezeReverse()
	m := g.NumEdges()
	lm := &Landmarks{csr: csr, lb: make([]float64, m)}
	for e := 0; e < m; e++ {
		lm.lb[e] = weight(e)
	}
	if k <= 0 || n == 0 {
		return lm
	}
	if k > n {
		k = n
	}
	lbw := FromSlice(lm.lb)
	s := NewScratch(n)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	isLandmark := make([]bool, n)
	best, bestDeg := -1, int32(0)
	for v := 0; v < n; v++ {
		if deg := csr.Start[v+1] - csr.Start[v]; best < 0 || deg > bestDeg {
			best, bestDeg = v, deg
		}
	}
	for len(lm.ids) < k && best >= 0 {
		lm.ids = append(lm.ids, int32(best))
		isLandmark[best] = true
		s.runAdditiveCSR(csr, n, int32(best), lbw)
		f := snapshotDist(s, n)
		lm.fwd = append(lm.fwd, f)
		if g.Directed() {
			s.runAdditiveCSR(rcsr, n, int32(best), lbw)
			lm.bwd = append(lm.bwd, snapshotDist(s, n))
		} else {
			lm.bwd = append(lm.bwd, f) // symmetric distances
		}
		for v := 0; v < n; v++ {
			if f[v] < minDist[v] {
				minDist[v] = f[v]
			}
		}
		best = -1
		bestD := math.Inf(-1)
		for v := 0; v < n; v++ {
			if isLandmark[v] || csr.Start[v+1] == csr.Start[v] {
				continue
			}
			if minDist[v] > bestD {
				best, bestD = v, minDist[v]
			}
		}
	}
	return lm
}

// WithBottleneck extends the landmark set with minimax (bottleneck)
// distance tables over the same landmarks and the same lower-bound
// weight snapshot, and returns lm for chaining. The tables feed
// Scratch.BottleneckPathToALT: for any weight function w >= lb,
// raising weights can only raise minimax distances, so the bounds stay
// admissible for the whole run exactly like the additive ones. Must be
// called before lm is shared across goroutines (it mutates lm). Cost:
// one or two scalar minimax Dijkstras per landmark. No-op when called
// twice or when no landmarks were selected.
func (lm *Landmarks) WithBottleneck(g *graph.Graph) *Landmarks {
	if lm.bfwd != nil || len(lm.ids) == 0 {
		return lm
	}
	n := g.NumVertices()
	csr := g.Freeze()
	rcsr := g.FreezeReverse()
	if csr != lm.csr {
		panic("pathfind: WithBottleneck graph does not match the landmarks' frozen CSR")
	}
	lbw := FromSlice(lm.lb)
	s := NewScratch(n)
	for _, id := range lm.ids {
		s.runMinimaxCSR(csr, n, id, lbw)
		f := snapshotDist(s, n)
		lm.bfwd = append(lm.bfwd, f)
		if g.Directed() {
			s.runMinimaxCSR(rcsr, n, id, lbw)
			lm.bbwd = append(lm.bbwd, snapshotDist(s, n))
		} else {
			lm.bbwd = append(lm.bbwd, f) // symmetric minimax distances
		}
	}
	return lm
}

// HasBottleneck reports whether the minimax tables were built, i.e.
// whether this set can goal-direct KindBottleneck searches.
func (lm *Landmarks) HasBottleneck() bool { return lm.bfwd != nil }

// Rebuild re-selects landmarks and rebuilds every table against the
// current weight snapshot, returning a fresh set (lm is untouched —
// concurrent readers of the old tables stay valid). Under the monotone
// repricing contract the current prices are a lower bound on all future
// prices, so a rebuild is safe at any point in a run and restores the
// pruning power the original 1/capacity snapshot has lost. The new set
// keeps the old one's landmark count and carries minimax tables iff
// the old set had them.
func (lm *Landmarks) Rebuild(g *graph.Graph, weight WeightFunc) *Landmarks {
	k := len(lm.ids)
	if k == 0 {
		k = DefaultLandmarkCount
	}
	nl := BuildLandmarks(g, k, weight)
	if lm.HasBottleneck() {
		nl.WithBottleneck(g)
	}
	return nl
}

// rebind returns a shallow copy of lm whose tables are shared but whose
// CSR pointer is csr — used by LandmarkRegistry to hand one table set
// to a structurally identical graph that was frozen separately. The
// caller must have verified structural identity (same vertex count,
// arcs, edge IDs, and lower-bound weights).
func (lm *Landmarks) rebind(csr *graph.CSR) *Landmarks {
	cp := *lm
	cp.csr = csr
	return &cp
}

// snapshotDist copies the scratch's reached distances into a dense
// slice, unreached vertices mapping to +Inf.
func snapshotDist(s *Scratch, n int) []float64 {
	d := make([]float64, n)
	inf := math.Inf(1)
	for i := range d {
		d[i] = inf
	}
	for _, v := range s.order {
		d[v] = s.dist[v]
	}
	return d
}

// K returns the number of landmarks actually selected.
func (lm *Landmarks) K() int { return len(lm.ids) }

// IDs returns the landmark vertex IDs. Callers must not modify the
// returned slice.
func (lm *Landmarks) IDs() []int32 { return lm.ids }

// LowerBoundWeight returns the snapshotted lower-bound weight of edge
// e — what a consumer compares a changed weight against to detect a
// bound violation.
func (lm *Landmarks) LowerBoundWeight(e int) float64 { return lm.lb[e] }

// Bound returns the landmark lower bound on the distance from u to t
// under any weight function >= the build-time lower bound. +Inf means
// provably unreachable (the bound certifies there is no u->t path at
// all — reachability is topological, since the build weights are
// finite on every edge).
func (lm *Landmarks) Bound(u, t int) float64 {
	if u == t {
		return 0
	}
	inf := math.Inf(1)
	best := 0.0
	for i := range lm.ids {
		if fu, ft := lm.fwd[i][u], lm.fwd[i][t]; fu < inf && ft > fu {
			if d := ft - fu; d > best {
				best = d
			}
		}
		if bu, bt := lm.bwd[i][u], lm.bwd[i][t]; bt < inf && bu > bt {
			if d := bu - bt; d > best {
				best = d
			}
		}
	}
	return best
}

// potential returns the ALT potential toward target t: a consistent
// lower bound on each vertex's remaining distance to t, with
// potential(t) == 0. The per-landmark t-columns are gathered once so
// the per-vertex evaluation inside the search is k subtractions over
// dense rows.
func (lm *Landmarks) potential(t int32) func(int32) float64 {
	k := len(lm.ids)
	inf := math.Inf(1)
	ft := make([]float64, k)
	bt := make([]float64, k)
	for i := 0; i < k; i++ {
		ft[i] = lm.fwd[i][t]
		bt[i] = lm.bwd[i][t]
	}
	return func(u int32) float64 {
		if u == t {
			return 0
		}
		best := 0.0
		for i := 0; i < k; i++ {
			if fu := lm.fwd[i][u]; fu < inf && ft[i] > fu {
				if d := ft[i] - fu; d > best {
					best = d
				}
			}
			if bu := lm.bwd[i][u]; bt[i] < inf && bu > bt[i] {
				if d := bu - bt[i]; d > best {
					best = d
				}
			}
		}
		return best
	}
}

// bottleneckPotential returns the minimax potential toward target t: a
// consistent lower bound on each vertex's remaining bottleneck value to
// t. Per landmark L, the minimax triangle inequality
// d_b(L,t) <= max(d_b(L,u), d_b(u,t)) gives d_b(u,t) >= d_b(L,t) when
// d_b(L,u) < d_b(L,t) (forward term) and d_b(u,t) >= d_b(u,L) when
// d_b(t,L) < d_b(u,L) (backward term); the conditions also cover the
// +Inf cases (if u could reach t the composite path would contradict
// the unreachability the table records). The max over terms is
// consistent: pot(u) <= max(w(u->v), pot(v)) on every arc, which is
// what BottleneckPathToALT needs for exact early termination. Unlike
// the additive potential no float slack is involved — max() never
// creates new values, so the comparison against the true distance is
// exact.
func (lm *Landmarks) bottleneckPotential(t int32) func(int32) float64 {
	k := len(lm.ids)
	ft := make([]float64, k)
	bt := make([]float64, k)
	for i := 0; i < k; i++ {
		ft[i] = lm.bfwd[i][t]
		bt[i] = lm.bbwd[i][t]
	}
	ninf := math.Inf(-1)
	return func(u int32) float64 {
		if u == t {
			// The empty path: matches the -Inf self-distance the
			// leximax search uses for dist[src].
			return ninf
		}
		best := 0.0
		for i := 0; i < k; i++ {
			if fu := lm.bfwd[i][u]; fu < ft[i] {
				if ft[i] > best {
					best = ft[i]
				}
			}
			if bu := lm.bbwd[i][u]; bt[i] < bu {
				if bu > best {
					best = bu
				}
			}
		}
		return best
	}
}
