package pathfind

import (
	"math"

	"truthfulufp/internal/graph"
)

// bidiStats is the work profile of one bidirectional probe.
type bidiStats struct {
	touched int  // vertices touched across both phases
	met     bool // the two frontiers bridged (dst reachable from src)
}

// bidiPathTo answers a single-target query with a bidirectional probe,
// bit-identical to Scratch.ShortestPathTo. It runs in two phases:
//
//  1. Alternating forward (from src, on the CSR) and backward (from
//     dst, on the reverse CSR) Dijkstra, always settling the side with
//     the smaller frontier key, until top_f + top_b >= mu, where mu is
//     the best bridged path length seen (updated whenever a settle
//     scans an arc whose far end is settled by the other side, and
//     whenever a vertex settled by both sides pops). At that point mu
//     is the exact s-t distance — or +Inf, certifying unreachability.
//  2. A fresh forward A* (shortestPathToPot) whose potential is the
//     backward search's exact distance for backward-settled vertices
//     and the last backward pop key — a floor on every unsettled
//     vertex's true remaining distance — otherwise, optionally
//     tightened with ALT landmark bounds. That potential is consistent
//     (settled keys never exceed the floor, and exact backward
//     distances obey the triangle inequality), so phase 2 returns the
//     canonical largest-edge-ID path with bit-identical distances.
//
// Phase 2 never depends on where phase 1 stopped — an early or late
// phase-1 stop only weakens or strengthens the potential — which keeps
// the correctness argument independent of float rounding in mu.
//
// The two scratches must be distinct; phase 2 reuses fwd while reading
// bwd's settled state.
func bidiPathTo(g *graph.Graph, src, dst int, weight WeightFunc, lm *Landmarks, fwd, bwd *Scratch) ([]int, float64, bool, bidiStats) {
	var st bidiStats
	if src == dst {
		return nil, 0, true, st
	}
	n := g.NumVertices()
	csr := g.Freeze()
	rcsr := g.FreezeReverse()
	fwd.reset(n)
	fwd.touch(int32(src))
	fwd.dist[src] = 0
	fwd.prevE[src], fwd.prevV[src] = -1, -1
	fwd.push(int32(src))
	bwd.reset(n)
	bwd.touch(int32(dst))
	bwd.dist[dst] = 0
	bwd.prevE[dst], bwd.prevV[dst] = -1, -1
	bwd.push(int32(dst))
	inf := math.Inf(1)
	mu := inf
	bfloor := 0.0
	for {
		ft, bt := inf, inf
		if len(fwd.heap) > 0 {
			ft = fwd.dist[fwd.heap[0]]
		}
		if len(bwd.heap) > 0 {
			bt = bwd.dist[bwd.heap[0]]
		}
		if ft+bt >= mu {
			break // covers exhausted heaps too: Inf + anything >= mu
		}
		if ft <= bt {
			v := fwd.pop()
			dv := fwd.dist[v]
			if bwd.settled(v) {
				if c := dv + bwd.dist[v]; c < mu {
					mu = c
				}
			}
			for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
				e, to := csr.EdgeID[k], csr.Head[k]
				fwd.relax(v, e, to, dv, weight)
				if bwd.settled(to) {
					if w := weight(int(e)); !math.IsInf(w, 1) {
						if c := dv + w + bwd.dist[to]; c < mu {
							mu = c
						}
					}
				}
			}
		} else {
			v := bwd.pop()
			dv := bwd.dist[v]
			bfloor = dv
			if fwd.settled(v) {
				if c := dv + fwd.dist[v]; c < mu {
					mu = c
				}
			}
			for k, end := rcsr.Start[v], rcsr.Start[v+1]; k < end; k++ {
				e, to := rcsr.EdgeID[k], rcsr.Head[k]
				bwd.relax(v, e, to, dv, weight)
				if fwd.settled(to) {
					if w := weight(int(e)); !math.IsInf(w, 1) {
						if c := dv + w + fwd.dist[to]; c < mu {
							mu = c
						}
					}
				}
			}
		}
	}
	st.touched = len(fwd.order) + len(bwd.order)
	if math.IsInf(mu, 1) && !fwd.settled(int32(dst)) {
		// One side exhausted without bridging: src's forward ball or
		// dst's backward ball is complete and misses the other endpoint.
		// (src is always forward-settled on the very first pop, so a
		// backward settle of src always bridges; the only bridge-free
		// reachable case is the forward search exhausting a zero-weight
		// plateau containing dst before the backward side advances,
		// which the settled check catches — phase 2 then recomputes.)
		return nil, inf, false, st
	}
	st.met = true
	var lmpot func(int32) float64
	if lm != nil && lm.K() > 0 {
		lmpot = lm.potential(int32(dst))
	}
	pot := func(u int32) float64 {
		p := bfloor
		if bwd.settled(u) {
			p = bwd.dist[u]
		}
		if lmpot != nil {
			if q := lmpot(u); q > p {
				p = q
			}
		}
		return p
	}
	path, dist, ok := fwd.shortestPathToPot(g, src, dst, weight, pot)
	st.touched += len(fwd.order)
	return path, dist, ok, st
}

// ShortestPathToBidi answers one single-target query with the
// bidirectional probe, bit-identical to Scratch.ShortestPathTo. lm may
// be nil (no landmark tightening of the phase-2 potential). fwd and
// bwd must be distinct scratches; the path is reconstructed in fwd.
// Incremental.PathTo drives this internally when the oracle is
// configured with Bidirectional — the standalone form exists for
// benchmarks and direct callers.
func ShortestPathToBidi(g *graph.Graph, src, dst int, weight WeightFunc, lm *Landmarks, fwd, bwd *Scratch) ([]int, float64, bool) {
	path, dist, ok, _ := bidiPathTo(g, src, dst, weight, lm, fwd, bwd)
	return path, dist, ok
}

// settled reports whether v was settled (popped) by the scratch's
// current run.
func (s *Scratch) settled(v int32) bool {
	return s.stamp[v] == s.gen && s.pos[v] == -1
}
