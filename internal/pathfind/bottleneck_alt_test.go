package pathfind

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"truthfulufp/internal/graph"
)

// TestQuickBottleneckALTMatchesPathTo: the goal-directed bottleneck
// search under the minimax landmark potential is bit-identical to the
// plain leximax early-exit search — for the build weights and for
// monotonically bumped weights — across plateau-heavy graphs where the
// canonical (minimax, hops, lex-edge) tie-break does all the work.
func TestQuickBottleneckALTMatchesPathTo(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^31))
		nv := 3 + int(n%12)
		g := graph.RandomStronglyConnected(rng, nv, nv+int(m%30), 1, 2)
		w := plateauWeights(rng, g.NumEdges())
		lm := BuildLandmarks(g, 4, FromSlice(w)).WithBottleneck(g)
		sc := NewScratch(nv)
		for round := 0; round < 3; round++ {
			for src := 0; src < nv; src++ {
				for dst := 0; dst < nv; dst++ {
					wantPath, wantDist, wantOK := sc.BottleneckPathTo(g, src, dst, FromSlice(w))
					path, dist, ok := sc.BottleneckPathToALT(g, src, dst, FromSlice(w), lm)
					if ok != wantOK || (ok && (dist != wantDist || !reflect.DeepEqual(path, wantPath))) {
						return false
					}
				}
			}
			monotoneBump(rng, w)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBottleneckALTMatchesTree: the goal-directed search also
// matches the full canonical leximax tree, on filtered weights with
// +Inf forbidden edges (unreachable answers and infinite bounds).
func TestQuickBottleneckALTMatchesTree(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		g, w := randomFiltered(seed, n, m)
		g.Freeze()
		lm := BuildLandmarks(g, 3, FromSlice(w)).WithBottleneck(g)
		sc := NewScratch(g.NumVertices())
		for src := 0; src < g.NumVertices(); src++ {
			tr := sc.Bottleneck(g, src, FromSlice(w), nil)
			for dst := 0; dst < g.NumVertices(); dst++ {
				path, dist, ok := sc.BottleneckPathToALT(g, src, dst, FromSlice(w), lm)
				wantPath, wantOK := tr.PathTo(dst)
				if ok != wantOK {
					return false
				}
				if ok && (dist != tr.Dist[dst] || !reflect.DeepEqual(path, wantPath)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalBottleneckOracleEquivalence: a KindBottleneck
// Incremental with minimax landmark tables answers every PathTo
// identically to an oracle-less twin through a monotone bump sequence,
// and the goal-directed search is actually exercised.
func TestIncrementalBottleneckOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 53))
	g := graph.RandomStronglyConnected(rng, 40, 140, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	sources := []int{0, 5, 9}
	plain := NewIncrementalKind(g, KindBottleneck, sources, nil, 0)
	oracle := NewIncrementalKind(g, KindBottleneck, sources, nil, 0)
	oracle.SetOracle(OracleConfig{
		Landmarks: BuildLandmarks(g, 4, FromSlice(w)).WithBottleneck(g),
	})
	for round := 0; round < 20; round++ {
		for slot := range sources {
			dst := rng.IntN(g.NumVertices())
			p1, d1, ok1 := plain.PathTo(slot, dst, FromSlice(w))
			p2, d2, ok2 := oracle.PathTo(slot, dst, FromSlice(w))
			if ok1 != ok2 || d1 != d2 || !reflect.DeepEqual(p1, p2) {
				t.Fatalf("round %d slot %d dst %d: plain (%v,%v,%v) != oracle (%v,%v,%v)",
					round, slot, dst, p1, d1, ok1, p2, d2, ok2)
			}
		}
		touched := monotoneBump(rng, w)
		plain.Invalidate(touched)
		oracle.Invalidate(touched)
	}
	st := oracle.CacheStats()
	if st.LandmarkViolations != 0 {
		t.Fatalf("monotone bumps must never violate the minimax bound: %+v", st)
	}
	if st.AltSearches == 0 {
		t.Fatalf("goal-directed bottleneck search never exercised: %+v", st)
	}
}

// TestSetOracleRejectsAdditiveTablesForBottleneck: a KindBottleneck
// cache quietly declines landmark tables that do not carry the minimax
// tables — the additive bounds say nothing about bottleneck values.
func TestSetOracleRejectsAdditiveTablesForBottleneck(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 67))
	g := graph.RandomStronglyConnected(rng, 20, 60, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	inc := NewIncrementalKind(g, KindBottleneck, []int{0}, nil, 0)
	inc.SetOracle(OracleConfig{Landmarks: BuildLandmarks(g, 3, FromSlice(w))})
	if inc.lm != nil {
		t.Fatal("additive-only tables accepted by a bottleneck cache")
	}
	inc.PathTo(0, g.NumVertices()-1, FromSlice(w))
	if st := inc.CacheStats(); st.AltSearches != 0 {
		t.Fatalf("bottleneck cache used additive tables: %+v", st)
	}
}
