package pathfind

import (
	"math"

	"truthfulufp/internal/graph"
)

// HopTable holds, for each hop budget k = 0..MaxHops and vertex v, the
// minimum total weight of a walk from the source to v using at most k
// edges, with predecessor pointers per (k, v) for path reconstruction.
// With nonnegative weights the optimal walk is a simple path, so HopTable
// exposes exactly the quantity needed by hop-sensitive priority rules such
// as the paper's h1(p) = ln(1+|p|)·h(p): minimize over k of factor(k) *
// Dist[k][v].
type HopTable struct {
	Source   int
	MaxHops  int
	Dist     [][]float64 // Dist[k][v]
	prevEdge [][]int32
	prevVert [][]int32
}

// BellmanFordHops computes the hop-bounded shortest-path table from src
// with up to maxHops edges. Edges with +Inf weight are skipped. The cost
// is O(maxHops * (m + n)) time and O(maxHops * n) space. Callers running
// many tables (one per source per iteration, as LogHopsRule does) should
// reuse a table via BellmanFordHopsInto instead.
func BellmanFordHops(g *graph.Graph, src int, weight WeightFunc, maxHops int) *HopTable {
	return BellmanFordHopsInto(g, src, weight, maxHops, nil)
}

// BellmanFordHopsInto is BellmanFordHops materializing into t: its rows
// are reused when their capacity suffices, so recomputing a table of the
// same shape allocates nothing. t may be nil (a fresh table is
// allocated) and is returned resized. Like the frozen-CSR Dijkstra, the
// inner loop runs over the graph's CSR adjacency when available.
func BellmanFordHopsInto(g *graph.Graph, src int, weight WeightFunc, maxHops int, t *HopTable) *HopTable {
	n := g.NumVertices()
	if t == nil {
		t = &HopTable{}
	}
	t.Source = src
	t.MaxHops = maxHops
	t.Dist = resizeRowsF64(t.Dist, maxHops+1, n)
	t.prevEdge = resizeRowsInt32(t.prevEdge, maxHops+1, n)
	t.prevVert = resizeRowsInt32(t.prevVert, maxHops+1, n)
	inf := math.Inf(1)
	for v := 0; v < n; v++ {
		t.Dist[0][v] = inf
		t.prevEdge[0][v] = -1
		t.prevVert[0][v] = -1
	}
	t.Dist[0][src] = 0
	csr := g.Frozen()
	for k := 1; k <= maxHops; k++ {
		copy(t.Dist[k], t.Dist[k-1])
		copy(t.prevEdge[k], t.prevEdge[k-1])
		copy(t.prevVert[k], t.prevVert[k-1])
		for v := 0; v < n; v++ {
			dv := t.Dist[k-1][v]
			if math.IsInf(dv, 1) {
				continue
			}
			if csr != nil {
				for i, end := csr.Start[v], csr.Start[v+1]; i < end; i++ {
					e, to := csr.EdgeID[i], csr.Head[i]
					w := weight(int(e))
					if math.IsInf(w, 1) {
						continue
					}
					if nd := dv + w; nd < t.Dist[k][to] {
						t.Dist[k][to] = nd
						t.prevEdge[k][to] = e
						t.prevVert[k][to] = int32(v)
					}
				}
				continue
			}
			for _, a := range g.OutArcs(v) {
				w := weight(a.Edge)
				if math.IsInf(w, 1) {
					continue
				}
				if nd := dv + w; nd < t.Dist[k][a.To] {
					t.Dist[k][a.To] = nd
					t.prevEdge[k][a.To] = int32(a.Edge)
					t.prevVert[k][a.To] = int32(v)
				}
			}
		}
	}
	return t
}

// resizeRowsF64 shapes rows into a (k, n) table reusing backing arrays.
func resizeRowsF64(rows [][]float64, k, n int) [][]float64 {
	if cap(rows) < k {
		rows = append(rows[:cap(rows)], make([][]float64, k-cap(rows))...)
	}
	rows = rows[:k]
	for i := range rows {
		rows[i] = resizeF64(rows[i], n)
	}
	return rows
}

func resizeRowsInt32(rows [][]int32, k, n int) [][]int32 {
	if cap(rows) < k {
		rows = append(rows[:cap(rows)], make([][]int32, k-cap(rows))...)
	}
	rows = rows[:k]
	for i := range rows {
		if cap(rows[i]) < n {
			rows[i] = make([]int32, n)
		} else {
			rows[i] = rows[i][:n]
		}
	}
	return rows
}

// PathTo returns a minimum-weight path from the source to dst using at
// most hops edges, as edge IDs, and whether one exists.
func (t *HopTable) PathTo(dst, hops int) ([]int, bool) {
	if hops > t.MaxHops {
		hops = t.MaxHops
	}
	if hops < 0 || math.IsInf(t.Dist[hops][dst], 1) {
		return nil, false
	}
	var rev []int
	k, v := hops, dst
	for v != t.Source {
		// Rewind to the layer where v's current entry was created: layers
		// only copy values downward, so Dist[k-1][v] == Dist[k][v] means
		// the entry predates layer k.
		for k > 0 && t.Dist[k-1][v] == t.Dist[k][v] {
			k--
		}
		e := t.prevEdge[k][v]
		if e < 0 || k == 0 {
			return nil, false // unreachable for a well-formed table
		}
		rev = append(rev, int(e))
		v = int(t.prevVert[k][v])
		k--
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// BFSHops returns the minimum hop count from src to every vertex
// (unreachable vertices get -1), considering only edges allowed by the
// filter (nil means all edges allowed).
func BFSHops(g *graph.Graph, src int, allowed func(edge int) bool) []int {
	n := g.NumVertices()
	hops := make([]int, n)
	for v := range hops {
		hops[v] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.OutArcs(v) {
			if allowed != nil && !allowed(a.Edge) {
				continue
			}
			if hops[a.To] < 0 {
				hops[a.To] = hops[v] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return hops
}

// Bottleneck computes, for every vertex, a path from src minimizing the
// maximum edge weight along the path (a "minimax" path), via a modified
// Dijkstra over the canonical leximax key (the path's weights sorted
// descending) — see Scratch.Bottleneck and KindBottleneck. It returns a
// Tree whose Dist holds the minimax value. Bottleneck rules are members
// of the paper's reasonable-function family: under unit demands/values
// and uniform capacities, pointwise-dominated flow vectors have no
// larger maximum.
//
// Like Dijkstra, this convenience entry point runs on a pooled Scratch;
// performance-sensitive callers should hold their own Scratch (or Pool)
// and call Scratch.Bottleneck to reuse the result tree too.
func Bottleneck(g *graph.Graph, src int, weight WeightFunc) *Tree {
	s := defaultPool.Get(g.NumVertices())
	t := s.Bottleneck(g, src, weight, nil)
	defaultPool.Put(s)
	return t
}
