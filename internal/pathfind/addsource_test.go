package pathfind

import (
	"math/rand/v2"
	"testing"
)

// TestAddSourceGrowsCache: sources added after construction answer
// PathTo and Refresh queries identically to sources present from the
// start, across randomized monotone price-update sequences.
func TestAddSourceGrowsCache(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 31))
	for seq := 0; seq < 50; seq++ {
		g, w := randomPricedGraph(rng, 6+rng.IntN(12))
		n := g.NumVertices()
		inc := NewIncremental(g, nil, nil)
		if inc.NumSlots() != 0 {
			t.Fatalf("empty cache has %d slots", inc.NumSlots())
		}
		for step := 0; step < 12; step++ {
			src := rng.IntN(n)
			slot := inc.AddSource(src)
			if again := inc.AddSource(src); again != slot {
				t.Fatalf("seq %d: duplicate AddSource(%d) = %d, first %d", seq, src, again, slot)
			}
			if inc.Source(slot) != src {
				t.Fatalf("seq %d: Source(%d) = %d, want %d", seq, slot, inc.Source(slot), src)
			}
			dst := rng.IntN(n)
			for dst == src {
				dst = rng.IntN(n)
			}
			path, dist, ok := inc.PathTo(slot, dst, FromSlice(w))
			want := Dijkstra(g, src, FromSlice(w))
			wantPath, wantOK := want.PathTo(dst)
			if ok != wantOK || (ok && (dist != want.Dist[dst] || !equalPaths(path, wantPath))) {
				t.Fatalf("seq %d step %d: PathTo(%d→%d) = %v,%g,%v; want %v,%g,%v",
					seq, step, src, dst, path, dist, ok, wantPath, want.Dist[dst], wantOK)
			}
			// Monotone price bump along the answered path, reported like an
			// admission would.
			if ok {
				for _, e := range path {
					w[e] *= 1 + rng.Float64()
				}
				inc.Invalidate(path)
			}
		}
		// A full Refresh over every slot (original and added alike) must
		// reproduce from-scratch trees.
		active := make([]int, inc.NumSlots())
		for i := range active {
			active[i] = i
		}
		inc.Refresh(active, FromSlice(w), 2)
		for slot := 0; slot < inc.NumSlots(); slot++ {
			if !treesEqual(Dijkstra(g, inc.Source(slot), FromSlice(w)), inc.Tree(slot)) {
				t.Fatalf("seq %d: refreshed tree of added source %d differs from recompute", seq, inc.Source(slot))
			}
		}
	}
}

func equalPaths(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
