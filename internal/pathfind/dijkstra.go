// Package pathfind implements the shortest-path oracles used by the
// primal-dual algorithms: Dijkstra over positive edge prices (the paper's
// line 7 "shortest path with respect to the weights y_e"), hop-bounded
// Bellman-Ford (for priority rules that depend on the hop count, such as
// the paper's h1), bottleneck paths, BFS, and exhaustive simple-path
// enumeration for exact optima on small instances.
//
// Single-target queries additionally run on a goal-directed oracle that
// layers three accelerations over the early-exit search, each preserving
// the canonical largest-edge-ID tie-break bit for bit:
//
//   - ALT landmarks (Landmarks, BuildLandmarks, Scratch.
//     ShortestPathToALT): k farthest-point landmarks with precomputed
//     distance tables give an admissible, consistent A* heuristic via
//     the triangle inequality. Because the exponential prices
//     y_e = (1/c_e)·e^(εB·f_e/c_e) only ever rise, tables built from
//     the initial weights 1/c_e stay valid lower bounds for the whole
//     run; Incremental re-checks only the edges a price update passed
//     to Invalidate and disables the tables outright if a weight ever
//     falls below its recorded bound (degrading to the plain search,
//     never to a wrong answer).
//
//   - Bidirectional probes (ShortestPathToBidi, OracleConfig.
//     Bidirectional): a forward/backward Dijkstra meet over the frozen
//     reverse CSR establishes the exact distance, then a bounded
//     forward A* replays the canonical tie-break so the returned path
//     is the one the plain search would pick.
//
//   - An adaptive refresh policy (Incremental.PreferSingle): per-slot
//     observed dirty rates and target fan-out decide between rebuilding
//     the slot's full tree and answering through the single-target
//     oracle; either route yields identical paths, so the policy is a
//     pure performance knob.
//
// Incremental.SetOracle installs the landmark tables and the
// bidirectional mode on a cache's PathTo fast path; CacheStats reports
// the oracle's work (searches, vertices touched vs the exhaustive
// budget, bidirectional meets, policy decisions, landmark violations).
package pathfind

import (
	"math"

	"truthfulufp/internal/graph"
)

// WeightFunc returns the cost of crossing an edge. Returning +Inf forbids
// the edge, which is how residual-capacity filtering is expressed.
type WeightFunc func(edge int) float64

// Uniform returns a WeightFunc assigning every edge weight w.
func Uniform(w float64) WeightFunc {
	return func(int) float64 { return w }
}

// FromSlice returns a WeightFunc reading weights from a slice indexed by
// edge ID.
func FromSlice(w []float64) WeightFunc {
	return func(e int) float64 { return w[e] }
}

// Tree is a single-source shortest-path tree. Dist[v] is +Inf for
// unreachable vertices. PrevEdge[v] and PrevVert[v] give the edge and
// predecessor vertex on a shortest path from the source (-1 at the source
// and at unreachable vertices).
type Tree struct {
	Source   int
	Dist     []float64
	PrevEdge []int
	PrevVert []int
}

// PathTo returns the edge IDs of a shortest path from the tree's source
// to dst, in order, and whether dst is reachable. The path for dst ==
// Source is the empty path.
func (t *Tree) PathTo(dst int) ([]int, bool) {
	if math.IsInf(t.Dist[dst], 1) {
		return nil, false
	}
	var rev []int
	for v := dst; v != t.Source; v = t.PrevVert[v] {
		rev = append(rev, t.PrevEdge[v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// Dijkstra computes shortest paths from src under the given nonnegative
// weights. Edges with +Inf weight are skipped. It is the oracle behind
// Bounded-UFP's path selection; weights are the dual prices y_e, which
// are always strictly positive, so the nonnegativity precondition holds.
//
// The returned tree is canonical: when several predecessor arcs achieve
// a vertex's shortest distance, the one with the largest edge ID wins.
// Canonicality makes the tree a pure function of the weights — not of
// relaxation order — which is what lets the Incremental cache reuse a
// clean tree in place of a recomputation (see Incremental). Largest
// (rather than smallest) ID is the choice under which the lower-bound
// constructions' adversarial tie-breaks (internal/lowerbound) coincide
// with the oracle's, matching the paper's Theorem 3.11/3.12 runs.
//
// Dijkstra runs on the graph's frozen CSR adjacency when available
// (see graph.Graph.Freeze) and falls back to the slice-of-slices
// adjacency otherwise. Performance-sensitive callers should reuse a
// Scratch (or a Pool) instead of this convenience entry point.
func Dijkstra(g *graph.Graph, src int, weight WeightFunc) *Tree {
	s := defaultPool.Get(g.NumVertices())
	t := s.Dijkstra(g, src, weight, nil)
	defaultPool.Put(s)
	return t
}

// The minimax (bottleneck) search shares the indexed 4-ary heap embedded
// in Scratch with the additive Dijkstra; see Scratch.Bottleneck.
