package pathfind

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"truthfulufp/internal/graph"
)

func randomWeighted(seed uint64, nRaw, mRaw uint8) (*graph.Graph, []float64, int) {
	rng := rand.New(rand.NewPCG(seed, seed^77))
	n := 3 + int(nRaw%10)
	m := n + int(mRaw%24)
	g := graph.RandomStronglyConnected(rng, n, m, 1, 2)
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = rng.Float64() + 0.01
	}
	return g, w, rng.IntN(n)
}

// TestQuickDijkstraRelaxationInvariant: at termination no arc can relax
// any distance further — the defining optimality condition.
func TestQuickDijkstraRelaxationInvariant(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		g, w, src := randomWeighted(seed, n, m)
		tr := Dijkstra(g, src, FromSlice(w))
		for v := 0; v < g.NumVertices(); v++ {
			if math.IsInf(tr.Dist[v], 1) {
				continue
			}
			for _, a := range g.OutArcs(v) {
				if tr.Dist[v]+w[a.Edge] < tr.Dist[a.To]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDijkstraPathsRealizeDistances: every reported distance is
// realized by a valid simple path of exactly that weight.
func TestQuickDijkstraPathsRealizeDistances(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		g, w, src := randomWeighted(seed, n, m)
		tr := Dijkstra(g, src, FromSlice(w))
		for v := 0; v < g.NumVertices(); v++ {
			path, ok := tr.PathTo(v)
			if !ok {
				return math.IsInf(tr.Dist[v], 1)
			}
			if !ValidatePath(g, src, v, path) || !IsSimple(g, src, path) {
				return false
			}
			if math.Abs(PathWeight(path, FromSlice(w))-tr.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHopTableMonotone: allowing more hops never increases the
// distance, and the unrestricted row matches Dijkstra.
func TestQuickHopTableMonotone(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		g, w, src := randomWeighted(seed, n, m)
		nv := g.NumVertices()
		tab := BellmanFordHops(g, src, FromSlice(w), nv)
		dj := Dijkstra(g, src, FromSlice(w))
		for v := 0; v < nv; v++ {
			for k := 1; k <= nv; k++ {
				if tab.Dist[k][v] > tab.Dist[k-1][v]+1e-12 {
					return false
				}
			}
			dD, dB := dj.Dist[v], tab.Dist[nv][v]
			if math.IsInf(dD, 1) != math.IsInf(dB, 1) {
				return false
			}
			if !math.IsInf(dD, 1) && math.Abs(dD-dB) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBottleneckLEAdditive: a minimax distance never exceeds the
// additive shortest-path distance (the max of edge weights on a path is
// at most their sum).
func TestQuickBottleneckLEAdditive(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		g, w, src := randomWeighted(seed, n, m)
		add := Dijkstra(g, src, FromSlice(w))
		bot := Bottleneck(g, src, FromSlice(w))
		for v := 0; v < g.NumVertices(); v++ {
			if v == src {
				continue
			}
			if math.IsInf(add.Dist[v], 1) {
				continue
			}
			if bot.Dist[v] > add.Dist[v]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
