package pathfind

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"truthfulufp/internal/graph"
)

// randomFiltered is randomWeighted with a sprinkling of forbidden
// (+Inf) edges, so single-target queries also exercise unreachable
// answers and residual-filter-style weight functions.
func randomFiltered(seed uint64, nRaw, mRaw uint8) (*graph.Graph, []float64) {
	rng := rand.New(rand.NewPCG(seed, seed^123))
	n := 3 + int(nRaw%10)
	m := n + int(mRaw%24)
	g := graph.RandomStronglyConnected(rng, n, m, 1, 2)
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = rng.Float64() + 0.01
		if rng.IntN(6) == 0 {
			w[i] = math.Inf(1)
		}
	}
	return g, w
}

// TestQuickShortestPathToMatchesTree: the early-exit single-target
// search returns exactly the full tree's distance and path for every
// (source, target) pair — the bit-identity the mechanism bisection and
// Incremental.PathTo rely on.
func TestQuickShortestPathToMatchesTree(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		g, w := randomFiltered(seed, n, m)
		g.Freeze()
		sc := NewScratch(g.NumVertices())
		for src := 0; src < g.NumVertices(); src++ {
			tr := sc.Dijkstra(g, src, FromSlice(w), nil)
			for dst := 0; dst < g.NumVertices(); dst++ {
				path, dist, ok := sc.ShortestPathTo(g, src, dst, FromSlice(w))
				wantPath, wantOK := tr.PathTo(dst)
				if ok != wantOK {
					return false
				}
				if !ok {
					continue
				}
				if dist != tr.Dist[dst] || !reflect.DeepEqual(path, wantPath) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBottleneckPathToMatchesTree: the bottleneck form of the
// single-target query against the full canonical bottleneck tree.
func TestQuickBottleneckPathToMatchesTree(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		g, w := randomFiltered(seed, n, m)
		g.Freeze()
		sc := NewScratch(g.NumVertices())
		for src := 0; src < g.NumVertices(); src++ {
			tr := sc.Bottleneck(g, src, FromSlice(w), nil)
			for dst := 0; dst < g.NumVertices(); dst++ {
				path, dist, ok := sc.BottleneckPathTo(g, src, dst, FromSlice(w))
				wantPath, wantOK := tr.PathTo(dst)
				if ok != wantOK {
					return false
				}
				if !ok {
					continue
				}
				if dist != tr.Dist[dst] || !reflect.DeepEqual(path, wantPath) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBottleneckTreeAcyclic: the lexicographic (minimax, hops)
// tie-break keeps predecessor chains acyclic — the hazard the pure
// minimax retarget had — so every PathTo terminates with a simple path
// realizing the minimax value.
func TestQuickBottleneckTreeAcyclic(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		g, w := randomFiltered(seed, n, m)
		src := int(seed % uint64(g.NumVertices()))
		tr := Bottleneck(g, src, FromSlice(w))
		for dst := 0; dst < g.NumVertices(); dst++ {
			path, ok := tr.PathTo(dst)
			if !ok {
				continue
			}
			if !ValidatePath(g, src, dst, path) || !IsSimple(g, src, path) {
				return false
			}
			most := math.Inf(-1)
			for _, e := range path {
				most = math.Max(most, w[e])
			}
			if dst != src && most != tr.Dist[dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// plateauWeights draws from a tiny value set so minimax ties — the
// regime where canonical tie-breaking does all the work — are the norm
// rather than the exception.
func plateauWeights(rng *rand.Rand, m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = float64(1+rng.IntN(3)) / 2
	}
	return w
}

// monotoneBump raises a few random weights (never lowers — the cache's
// contract), occasionally to +Inf (the residual filter's flip), and
// reports the touched edges. Multiplying by 1.5 keeps bumped weights on
// the plateau grid, so new exact ties keep appearing.
func monotoneBump(rng *rand.Rand, w []float64) []int {
	var touched []int
	for len(touched) == 0 {
		for e := range w {
			if rng.IntN(8) == 0 {
				if rng.IntN(5) == 0 {
					w[e] = math.Inf(1)
				} else {
					w[e] *= 1.5
				}
				touched = append(touched, e)
			}
		}
	}
	return touched
}

// freshStructure recomputes slot s's structure from scratch with the
// kind's search — the reference a cached structure must equal bit for
// bit.
func freshStructure(kind TreeKind, g *graph.Graph, src int, w []float64, maxHops int) any {
	sc := NewScratch(g.NumVertices())
	switch kind {
	case KindAdditive:
		return sc.Dijkstra(g, src, FromSlice(w), nil)
	case KindBottleneck:
		return sc.Bottleneck(g, src, FromSlice(w), nil)
	default:
		return BellmanFordHops(g, src, FromSlice(w), maxHops)
	}
}

// TestIncrementalKindsMatchRecompute drives every cache kind through a
// sequence of monotone repricings and checks each refreshed structure
// is bit-identical to a from-scratch recomputation under the current
// weights — the kind-generic form of the dirty-source cache's core
// contract.
func TestIncrementalKindsMatchRecompute(t *testing.T) {
	for _, kind := range []TreeKind{KindAdditive, KindBottleneck, KindHopBounded} {
		t.Run(kind.String(), func(t *testing.T) {
			for seed := uint64(0); seed < 10; seed++ {
				rng := rand.New(rand.NewPCG(seed, 99))
				g := graph.RandomStronglyConnected(rng, 12, 40, 1, 2)
				var w []float64
				if seed%2 == 0 {
					w = plateauWeights(rng, g.NumEdges())
				} else {
					w = make([]float64, g.NumEdges())
					for i := range w {
						w[i] = rng.Float64() + 0.01
					}
				}
				const maxHops = 6
				sources := []int{0, 3, 5, 7, 9, 11}
				inc := NewIncrementalKind(g, kind, sources, nil, maxHops)
				slots := make([]int, inc.NumSlots())
				for i := range slots {
					slots[i] = i
				}
				for round := 0; round < 10; round++ {
					inc.Refresh(slots, FromSlice(w), 1+int(seed%3))
					for _, s := range slots {
						src := inc.Source(s)
						want := freshStructure(kind, g, src, w, maxHops)
						var got any
						if kind == KindHopBounded {
							got = inc.Table(s)
						} else {
							got = inc.Tree(s)
						}
						if !structuresEqual(kind, got, want) {
							t.Fatalf("kind %v seed %d round %d slot %d: cached structure differs from recomputation", kind, seed, round, s)
						}
					}
					inc.Invalidate(monotoneBump(rng, w))
				}
				rec, reu := inc.Stats()
				if reu == 0 || rec == 0 {
					t.Fatalf("kind %v: cache exercised neither reuse (%d) nor recompute (%d)", kind, reu, rec)
				}
			}
		})
	}
}

// structuresEqual compares a cached structure with a reference,
// ignoring buffer-capacity differences.
func structuresEqual(kind TreeKind, got, want any) bool {
	if kind == KindHopBounded {
		a, b := got.(*HopTable), want.(*HopTable)
		if a.Source != b.Source || a.MaxHops != b.MaxHops {
			return false
		}
		return reflect.DeepEqual(a.Dist, b.Dist) &&
			reflect.DeepEqual(a.prevEdge, b.prevEdge) &&
			reflect.DeepEqual(a.prevVert, b.prevVert)
	}
	a, b := got.(*Tree), want.(*Tree)
	return a.Source == b.Source && reflect.DeepEqual(a.Dist, b.Dist) &&
		reflect.DeepEqual(a.PrevEdge, b.PrevEdge) && reflect.DeepEqual(a.PrevVert, b.PrevVert)
}

// TestIncrementalSetTargetsAndPathTo: with target-restricted recording,
// the declared targets' answers — read through trees or the PathTo
// oracle — stay bit-identical to full recomputation across monotone
// repricings, even though undeclared parts of the tree may go stale.
func TestIncrementalSetTargetsAndPathTo(t *testing.T) {
	for _, kind := range []TreeKind{KindAdditive, KindBottleneck} {
		t.Run(kind.String(), func(t *testing.T) {
			for seed := uint64(0); seed < 12; seed++ {
				rng := rand.New(rand.NewPCG(seed, 7))
				g := graph.RandomStronglyConnected(rng, 14, 50, 1, 2)
				var w []float64
				if seed%2 == 0 {
					w = plateauWeights(rng, g.NumEdges())
				} else {
					w = make([]float64, g.NumEdges())
					for i := range w {
						w[i] = rng.Float64() + 0.01
					}
				}
				sources := []int{0, 2, 4, 6}
				targetsOf := map[int][]int{0: {9, 11}, 2: {5}, 4: {13}, 6: {1, 3, 8}}
				restricted := NewIncrementalKind(g, kind, sources, nil, 0)
				oracle := NewIncrementalKind(g, kind, sources, nil, 0)
				for _, src := range sources {
					slot, _ := restricted.Slot(src)
					restricted.SetTargets(slot, targetsOf[src])
				}
				slots := []int{0, 1, 2, 3}
				for round := 0; round < 10; round++ {
					restricted.Refresh(slots, FromSlice(w), 1)
					for _, src := range sources {
						slot, _ := restricted.Slot(src)
						want := freshStructure(kind, g, src, w, 0).(*Tree)
						tr := restricted.Tree(slot)
						for _, dst := range targetsOf[src] {
							if tr.Dist[dst] != want.Dist[dst] {
								t.Fatalf("kind %v seed %d round %d: restricted dist to %d diverged", kind, seed, round, dst)
							}
							gotP, gotOK := tr.PathTo(dst)
							wantP, wantOK := want.PathTo(dst)
							if gotOK != wantOK || !reflect.DeepEqual(gotP, wantP) {
								t.Fatalf("kind %v seed %d round %d: restricted path to %d diverged", kind, seed, round, dst)
							}
							// The single-target oracle must agree too, served from
							// cache or not.
							oP, oD, oOK := oracle.PathTo(slot, dst, FromSlice(w))
							if oOK != wantOK || (wantOK && (oD != want.Dist[dst] || !reflect.DeepEqual(oP, wantP))) {
								t.Fatalf("kind %v seed %d round %d: PathTo oracle to %d diverged", kind, seed, round, dst)
							}
						}
					}
					touched := monotoneBump(rng, w)
					restricted.Invalidate(touched)
					oracle.Invalidate(touched)
				}
			}
		})
	}
}
