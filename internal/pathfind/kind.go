package pathfind

// TreeKind names the semantics of a cached single-source structure:
// which notion of path length it minimizes and which concrete search
// recomputes it. The Incremental dirty-source cache is generic over the
// kind, so one invalidation mechanism serves the additive Dijkstra
// rules (exp-cost, hop-count), the bottleneck (minimax) rule, and the
// hop-bounded Bellman-Ford rules (log-hops).
//
// Every kind computes a *canonical* structure — a pure function of the
// edge weights, independent of relaxation or scheduling order, pinned
// by a deterministic tie-break — which is what the cache's bit-identity
// contract rests on: a cached structure none of whose used edges
// changed is exactly what a recomputation under the new weights would
// return (see Incremental for the full invariant list).
type TreeKind uint8

const (
	// KindAdditive minimizes the sum of edge weights (Dijkstra over
	// nonnegative weights). Canonical tie-break: among predecessor arcs
	// achieving a vertex's distance, the largest edge ID wins.
	KindAdditive TreeKind = iota

	// KindBottleneck minimizes the leximax key — the path's edge weights
	// sorted descending, compared lexicographically with a shorter
	// prefix ranking below its extensions — with the largest edge ID
	// winning among arcs achieving a vertex's key. Leximax refines the
	// minimax value (the key's first element, which Tree.Dist reports)
	// in exactly the way the cache needs: appending an edge strictly
	// grows a key, so predecessor chains strictly decrease and the tree
	// is acyclic (a pure minimax value-tie retarget can close
	// predecessor cycles), and a vertex's key is monotone non-decreasing
	// under weight increases, which scalar secondaries such as hop count
	// are not (see Scratch.Bottleneck).
	KindBottleneck

	// KindHopBounded computes the hop-bounded Bellman-Ford table
	// (HopTable): minimum additive weight per (hop budget, vertex).
	// Canonical tie-break: the first strict improvement in the
	// deterministic (layer, vertex, CSR arc) sweep order; entries whose
	// layer brings no strict improvement inherit the previous layer's
	// predecessor.
	KindHopBounded
)

// String returns the kind's short name.
func (k TreeKind) String() string {
	switch k {
	case KindAdditive:
		return "additive"
	case KindBottleneck:
		return "bottleneck"
	case KindHopBounded:
		return "hop-bounded"
	}
	return "unknown"
}
