package pathfind

import (
	"math"
	"sync"
	"sync/atomic"

	"truthfulufp/internal/graph"
)

// LandmarkRegistry is a concurrency-safe, process-wide cache of
// Landmarks keyed by a fingerprint of the frozen CSR topology and the
// build-time weight snapshot. It exists because a sharded deployment
// multiplies identical landmark builds: N engine shards behind a
// router each register the same popular topology, every mechanism
// bisection probe spins up a per-instance context, and each would pay
// 2k Dijkstras for tables that are byte-identical across all of them.
// The registry hands out one immutable table set per (topology, weight
// snapshot, table kinds) — sessions on different *graph.Graph values
// that are structurally identical share it through a cheap rebind of
// the CSR pointer.
//
// A fingerprint hit is never trusted on its own: the candidate's
// topology slices and lower-bound weights are verified element-wise
// against the requested graph before it is returned, so a hash
// collision costs one O(edges) comparison, never a wrong table.
// Entries are kept in most-recently-used order and the least recently
// used is evicted past the capacity.
//
// Staleness rebuilds (Incremental's lifecycle policy) bypass the
// registry on purpose: a rebuilt set is bound to one session's private
// price trajectory, which no other session will ever fingerprint-match,
// so caching it would only churn the LRU.
type LandmarkRegistry struct {
	mu      sync.Mutex
	entries []*registryEntry // most-recently-used first
	cap     int
	hits    atomic.Int64
	misses  atomic.Int64
}

// registryEntry pairs a table set with its fingerprint and build
// parameters.
type registryEntry struct {
	fp         uint64
	k          int
	bottleneck bool
	lm         *Landmarks
}

// DefaultRegistryCapacity bounds the shared registry: comfortably more
// distinct live (topology, weight-snapshot) pairs than a node serves
// at once, while capping the tables' memory at a few dozen graphs.
const DefaultRegistryCapacity = 64

// SharedLandmarks is the process-wide default registry, shared by
// every engine shard's session manager and the mechanism's bisection
// contexts.
var SharedLandmarks = NewLandmarkRegistry(DefaultRegistryCapacity)

// NewLandmarkRegistry returns an empty registry holding at most
// capacity table sets (<= 0 means DefaultRegistryCapacity).
func NewLandmarkRegistry(capacity int) *LandmarkRegistry {
	if capacity <= 0 {
		capacity = DefaultRegistryCapacity
	}
	return &LandmarkRegistry{cap: capacity}
}

// Get returns the landmark tables for g built with k landmarks on the
// given weight snapshot — served from the registry when a structurally
// identical build is cached, built (and cached) otherwise. bottleneck
// requests a set carrying the minimax tables (Landmarks.WithBottleneck)
// for KindBottleneck consumers; additive-only and bottleneck-carrying
// sets are distinct entries. The returned set is immutable and shared;
// it is bound to g's frozen CSR, so it passes Incremental.SetOracle's
// topology check directly. Safe for concurrent use. Two goroutines
// missing on the same key may both build; one build wins the cache slot
// and both results are byte-identical, so either is safe to use.
func (r *LandmarkRegistry) Get(g *graph.Graph, k int, weight WeightFunc, bottleneck bool) *Landmarks {
	csr := g.Freeze()
	fp := fingerprint(g, csr, k, weight, bottleneck)
	if lm := r.lookup(fp, g, csr, k, weight, bottleneck); lm != nil {
		r.hits.Add(1)
		return lm
	}
	r.misses.Add(1)
	lm := BuildLandmarks(g, k, weight)
	if bottleneck {
		lm.WithBottleneck(g)
	}
	r.store(&registryEntry{fp: fp, k: k, bottleneck: bottleneck, lm: lm})
	return lm
}

// Stats returns the registry's lifetime hit and miss counts.
func (r *LandmarkRegistry) Stats() (hits, misses int64) {
	return r.hits.Load(), r.misses.Load()
}

// Len returns how many table sets the registry currently holds.
func (r *LandmarkRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// lookup scans for a verified fingerprint match, promoting it to
// most-recently-used and rebinding it to csr when the hit was built on
// a different (structurally identical) graph value.
func (r *LandmarkRegistry) lookup(fp uint64, g *graph.Graph, csr *graph.CSR, k int, weight WeightFunc, bottleneck bool) *Landmarks {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, en := range r.entries {
		if en.fp != fp || en.k != k || en.bottleneck != bottleneck {
			continue
		}
		if !en.matches(g, csr, weight) {
			continue // fingerprint collision
		}
		copy(r.entries[1:i+1], r.entries[:i])
		r.entries[0] = en
		if en.lm.csr == csr {
			return en.lm
		}
		return en.lm.rebind(csr)
	}
	return nil
}

// store inserts a freshly built entry at the front, evicting the least
// recently used entry past capacity. A racing insert of the same
// fingerprint is tolerated — the duplicate ages out of the LRU.
func (r *LandmarkRegistry) store(en *registryEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) >= r.cap {
		r.entries = r.entries[:r.cap-1]
	}
	r.entries = append(r.entries, nil)
	copy(r.entries[1:], r.entries)
	r.entries[0] = en
}

// matches verifies an entry against the requested build element-wise:
// same topology (CSR arrays) and the exact same lower-bound weight on
// every edge. The weight comparison is on float equality on purpose —
// tables for even a one-ulp different snapshot are a different cache
// key (their bounds differ), and the exponential-price solvers
// recompute initial prices deterministically, so equal snapshots
// really are bit-equal.
func (en *registryEntry) matches(g *graph.Graph, csr *graph.CSR, weight WeightFunc) bool {
	lc := en.lm.csr
	if lc != csr {
		if len(lc.Start) != len(csr.Start) || len(lc.Head) != len(csr.Head) {
			return false
		}
		for i := range csr.Start {
			if lc.Start[i] != csr.Start[i] {
				return false
			}
		}
		for i := range csr.Head {
			if lc.Head[i] != csr.Head[i] || lc.EdgeID[i] != csr.EdgeID[i] {
				return false
			}
		}
	}
	if len(en.lm.lb) != g.NumEdges() {
		return false
	}
	for e := range en.lm.lb {
		if en.lm.lb[e] != weight(e) {
			return false
		}
	}
	return true
}

// fingerprint hashes the build key — vertex count, directedness, the
// CSR arrays, the landmark count, the table kinds, and the weight bits
// of every edge — with FNV-1a 64.
func fingerprint(g *graph.Graph, csr *graph.CSR, k int, weight WeightFunc, bottleneck bool) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(g.NumVertices()))
	if g.Directed() {
		mix(1)
	} else {
		mix(2)
	}
	mix(uint64(k))
	if bottleneck {
		mix(3)
	} else {
		mix(4)
	}
	for _, v := range csr.Start {
		mix(uint64(uint32(v)))
	}
	for i := range csr.Head {
		mix(uint64(uint32(csr.Head[i])))
		mix(uint64(uint32(csr.EdgeID[i])))
	}
	for e, m := 0, g.NumEdges(); e < m; e++ {
		mix(math.Float64bits(weight(e)))
	}
	return h
}
