package pathfind

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"truthfulufp/internal/graph"
)

// identicalGraphs builds two distinct *graph.Graph values with
// byte-identical topology (same RNG seed), the cross-shard sharing
// scenario: shards deserialize the same network independently.
func identicalGraphs(seed uint64, n, m int) (*graph.Graph, *graph.Graph) {
	g1 := graph.RandomStronglyConnected(rand.New(rand.NewPCG(seed, seed^7)), n, m, 1, 2)
	g2 := graph.RandomStronglyConnected(rand.New(rand.NewPCG(seed, seed^7)), n, m, 1, 2)
	return g1, g2
}

// TestRegistryShareAcrossGraphValues: a second Get for a structurally
// identical graph (different *graph.Graph value) hits the registry,
// and the rebound table set is accepted by SetOracle on the second
// graph's cache — the cross-shard sharing path end to end.
func TestRegistryShareAcrossGraphValues(t *testing.T) {
	g1, g2 := identicalGraphs(5, 25, 80)
	w := func(e int) float64 { return 1 / g1.Edge(e).Capacity }
	r := NewLandmarkRegistry(0)
	lm1 := r.Get(g1, 4, w, false)
	lm2 := r.Get(g2, 4, func(e int) float64 { return 1 / g2.Edge(e).Capacity }, false)
	if h, m := r.Stats(); h != 1 || m != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %d / %d", h, m)
	}
	if lm2.csr != g2.Freeze() {
		t.Fatal("hit not rebound to the requesting graph's CSR")
	}
	if !reflect.DeepEqual(lm1.IDs(), lm2.IDs()) {
		t.Fatal("shared sets diverged")
	}
	// The rebound set passes the oracle's topology check and serves
	// queries identically to a private build.
	inc := NewIncremental(g2, []int{0}, nil)
	inc.SetOracle(OracleConfig{Landmarks: lm2})
	sc := NewScratch(g2.NumVertices())
	w2 := func(e int) float64 { return 1 / g2.Edge(e).Capacity }
	for dst := 0; dst < g2.NumVertices(); dst++ {
		wantPath, wantDist, wantOK := sc.ShortestPathTo(g2, 0, dst, w2)
		path, dist, ok := inc.PathTo(0, dst, w2)
		if ok != wantOK || dist != wantDist || !reflect.DeepEqual(path, wantPath) {
			t.Fatalf("dst %d: shared-oracle answer diverged", dst)
		}
	}
}

// TestRegistryKeying: the landmark count, the weight snapshot, and the
// bottleneck flag are all part of the key — differing in any one is a
// miss, and a bottleneck entry actually carries the minimax tables.
func TestRegistryKeying(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 11))
	g := graph.RandomStronglyConnected(rng, 20, 60, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	r := NewLandmarkRegistry(0)
	base := r.Get(g, 3, FromSlice(w), false)
	if base.HasBottleneck() {
		t.Fatal("additive entry must not carry minimax tables")
	}
	if r.Get(g, 4, FromSlice(w), false) == base {
		t.Fatal("different k must be a different entry")
	}
	w2 := append([]float64(nil), w...)
	w2[0] *= 2
	if r.Get(g, 3, FromSlice(w2), false) == base {
		t.Fatal("different weight snapshot must be a different entry")
	}
	bn := r.Get(g, 3, FromSlice(w), true)
	if bn == base || !bn.HasBottleneck() {
		t.Fatal("bottleneck entry must be distinct and carry minimax tables")
	}
	if got := r.Get(g, 3, FromSlice(w), false); got != base {
		t.Fatal("original key must still hit after the variants")
	}
	if h, m := r.Stats(); h != 1 || m != 4 {
		t.Fatalf("want 1 hit / 4 misses, got %d / %d", h, m)
	}
}

// TestRegistryEviction: past capacity the least recently used entry is
// evicted and a later Get for it rebuilds (a miss).
func TestRegistryEviction(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	g := graph.RandomStronglyConnected(rng, 20, 60, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	r := NewLandmarkRegistry(2)
	r.Get(g, 2, FromSlice(w), false)
	r.Get(g, 3, FromSlice(w), false)
	r.Get(g, 2, FromSlice(w), false) // promote k=2 to MRU
	r.Get(g, 4, FromSlice(w), false) // evicts the LRU entry, k=3
	if r.Len() != 2 {
		t.Fatalf("capacity 2 exceeded: %d entries", r.Len())
	}
	_, m0 := r.Stats()
	r.Get(g, 2, FromSlice(w), false) // still cached
	if _, m := r.Stats(); m != m0 {
		t.Fatal("MRU-promoted entry was evicted")
	}
	r.Get(g, 3, FromSlice(w), false) // evicted -> rebuild
	if _, m := r.Stats(); m != m0+1 {
		t.Fatal("LRU entry survived past capacity")
	}
}
