package pathfind

import (
	"math"
	"math/rand/v2"
	"testing"

	"truthfulufp/internal/graph"
)

func diamond() (*graph.Graph, []float64) {
	// 0 -> 1 -> 3 (weights 1, 1) and 0 -> 2 -> 3 (weights 2, 0.5).
	g := graph.New(4)
	g.AddEdge(0, 1, 1) // e0
	g.AddEdge(1, 3, 1) // e1
	g.AddEdge(0, 2, 1) // e2
	g.AddEdge(2, 3, 1) // e3
	return g, []float64{1, 1, 2, 0.5}
}

func TestDijkstraDiamond(t *testing.T) {
	g, w := diamond()
	tr := Dijkstra(g, 0, FromSlice(w))
	if tr.Dist[3] != 2 {
		t.Fatalf("Dist[3] = %g, want 2", tr.Dist[3])
	}
	path, ok := tr.PathTo(3)
	if !ok {
		t.Fatal("3 unreachable")
	}
	if len(path) != 2 || path[0] != 0 || path[1] != 1 {
		t.Fatalf("path = %v, want [0 1]", path)
	}
	if !ValidatePath(g, 0, 3, path) {
		t.Fatal("path does not validate")
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	tr := Dijkstra(g, 0, Uniform(1))
	if !math.IsInf(tr.Dist[2], 1) {
		t.Fatalf("Dist[2] = %g, want +Inf", tr.Dist[2])
	}
	if _, ok := tr.PathTo(2); ok {
		t.Fatal("PathTo(2) claimed reachable")
	}
}

func TestDijkstraForbiddenEdges(t *testing.T) {
	g, w := diamond()
	blocked := func(e int) float64 {
		if e == 0 {
			return math.Inf(1)
		}
		return w[e]
	}
	tr := Dijkstra(g, 0, blocked)
	if tr.Dist[3] != 2.5 {
		t.Fatalf("Dist[3] = %g, want 2.5 via 0-2-3", tr.Dist[3])
	}
}

func TestDijkstraEmptyPathToSource(t *testing.T) {
	g, w := diamond()
	tr := Dijkstra(g, 0, FromSlice(w))
	path, ok := tr.PathTo(0)
	if !ok || len(path) != 0 {
		t.Fatalf("PathTo(source) = %v, %v; want empty, true", path, ok)
	}
}

func TestDijkstraUndirected(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1, 1) // e0
	g.AddEdge(1, 2, 1) // e1
	g.AddEdge(0, 2, 1) // e2
	w := []float64{1, 1, 5}
	tr := Dijkstra(g, 2, FromSlice(w))
	if tr.Dist[0] != 2 {
		t.Fatalf("Dist[0] = %g, want 2 (2-1-0)", tr.Dist[0])
	}
	path, _ := tr.PathTo(0)
	if len(path) != 2 || path[0] != 1 || path[1] != 0 {
		t.Fatalf("path = %v, want [1 0]", path)
	}
}

// TestDijkstraMatchesBellmanFord cross-validates the two implementations
// on random graphs.
func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.IntN(10)
		m := n + rng.IntN(2*n)
		g := graph.RandomStronglyConnected(rng, n, m, 1, 1)
		w := make([]float64, g.NumEdges())
		for i := range w {
			w[i] = rng.Float64() + 0.01
		}
		src := rng.IntN(n)
		dj := Dijkstra(g, src, FromSlice(w))
		bf := BellmanFordHops(g, src, FromSlice(w), n)
		for v := 0; v < n; v++ {
			if math.Abs(dj.Dist[v]-bf.Dist[n][v]) > 1e-9 {
				t.Fatalf("trial %d: vertex %d Dijkstra %g vs Bellman-Ford %g", trial, v, dj.Dist[v], bf.Dist[n][v])
			}
		}
	}
}

func TestBellmanFordHopLimits(t *testing.T) {
	// 0 -> 3 directly (weight 10) or 0 -> 1 -> 2 -> 3 (weight 3).
	g := graph.New(4)
	g.AddEdge(0, 3, 1) // e0
	g.AddEdge(0, 1, 1) // e1
	g.AddEdge(1, 2, 1) // e2
	g.AddEdge(2, 3, 1) // e3
	w := []float64{10, 1, 1, 1}
	tab := BellmanFordHops(g, 0, FromSlice(w), 3)
	if tab.Dist[1][3] != 10 {
		t.Errorf("Dist[1 hop][3] = %g, want 10", tab.Dist[1][3])
	}
	if tab.Dist[3][3] != 3 {
		t.Errorf("Dist[3 hops][3] = %g, want 3", tab.Dist[3][3])
	}
	p1, ok := tab.PathTo(3, 1)
	if !ok || len(p1) != 1 || p1[0] != 0 {
		t.Errorf("1-hop path = %v, %v; want [0], true", p1, ok)
	}
	p3, ok := tab.PathTo(3, 3)
	if !ok || len(p3) != 3 {
		t.Errorf("3-hop path = %v, %v; want 3 edges", p3, ok)
	}
	if !ValidatePath(g, 0, 3, p3) {
		t.Error("3-hop path invalid")
	}
}

func TestBellmanFordPathReconstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.IntN(8)
		g := graph.RandomStronglyConnected(rng, n, n+rng.IntN(n), 1, 1)
		w := make([]float64, g.NumEdges())
		for i := range w {
			w[i] = rng.Float64() + 0.05
		}
		tab := BellmanFordHops(g, 0, FromSlice(w), n)
		for v := 0; v < n; v++ {
			for k := 0; k <= n; k++ {
				if math.IsInf(tab.Dist[k][v], 1) {
					continue
				}
				p, ok := tab.PathTo(v, k)
				if !ok {
					t.Fatalf("PathTo(%d,%d) failed with finite dist", v, k)
				}
				if len(p) > k {
					t.Fatalf("path has %d edges, budget %d", len(p), k)
				}
				if !ValidatePath(g, 0, v, p) {
					t.Fatalf("invalid path %v to %d", p, v)
				}
				if got := PathWeight(p, FromSlice(w)); math.Abs(got-tab.Dist[k][v]) > 1e-9 {
					t.Fatalf("path weight %g != table %g", got, tab.Dist[k][v])
				}
			}
		}
	}
}

func TestBFSHops(t *testing.T) {
	g, _ := diamond()
	hops := BFSHops(g, 0, nil)
	want := []int{0, 1, 1, 2}
	for v, h := range hops {
		if h != want[v] {
			t.Errorf("hops[%d] = %d, want %d", v, h, want[v])
		}
	}
	// Block the two edges into vertex 3.
	hops = BFSHops(g, 0, func(e int) bool { return e != 1 && e != 3 })
	if hops[3] != -1 {
		t.Errorf("blocked hops[3] = %d, want -1", hops[3])
	}
}

func TestBottleneck(t *testing.T) {
	// 0 -> 1 -> 3 has max weight 4; 0 -> 2 -> 3 has max weight 3.
	g, _ := diamond()
	w := []float64{4, 1, 3, 2}
	tr := Bottleneck(g, 0, FromSlice(w))
	if tr.Dist[3] != 3 {
		t.Fatalf("bottleneck Dist[3] = %g, want 3", tr.Dist[3])
	}
	path, _ := tr.PathTo(3)
	if len(path) != 2 || path[0] != 2 || path[1] != 3 {
		t.Fatalf("bottleneck path = %v, want [2 3]", path)
	}
}

func TestBottleneckVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.IntN(5)
		g := graph.RandomStronglyConnected(rng, n, n+rng.IntN(6), 1, 1)
		w := make([]float64, g.NumEdges())
		for i := range w {
			w[i] = rng.Float64()
		}
		tr := Bottleneck(g, 0, FromSlice(w))
		for v := 1; v < n; v++ {
			paths := SimplePaths(g, 0, v, 0)
			best := math.Inf(1)
			for _, p := range paths {
				worst := math.Inf(-1)
				for _, e := range p {
					worst = math.Max(worst, w[e])
				}
				best = math.Min(best, worst)
			}
			if math.Abs(best-tr.Dist[v]) > 1e-12 {
				t.Fatalf("trial %d vertex %d: brute %g vs bottleneck %g", trial, v, best, tr.Dist[v])
			}
		}
	}
}

func TestSimplePathsDiamond(t *testing.T) {
	g, _ := diamond()
	paths := SimplePaths(g, 0, 3, 0)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if !ValidatePath(g, 0, 3, p) || !IsSimple(g, 0, p) {
			t.Fatalf("bad path %v", p)
		}
	}
}

func TestSimplePathsLimit(t *testing.T) {
	g := graph.Complete(6, 1, true)
	all := SimplePaths(g, 0, 5, 0)
	limited := SimplePaths(g, 0, 5, 3)
	if len(limited) != 3 {
		t.Fatalf("limited to 3, got %d", len(limited))
	}
	// K6 from 0 to 5: sum over k of P(4, k) simple paths = 1 + 4 + 12 + 24 + 24 = 65.
	if len(all) != 65 {
		t.Fatalf("K6 simple paths = %d, want 65", len(all))
	}
}

func TestSimplePathsSourceIsTarget(t *testing.T) {
	g, _ := diamond()
	if p := SimplePaths(g, 2, 2, 0); p != nil {
		t.Fatalf("src==dst should give no paths, got %v", p)
	}
}

func TestValidatePathRejects(t *testing.T) {
	g, _ := diamond()
	if ValidatePath(g, 0, 3, []int{1}) {
		t.Error("accepted path not starting at src")
	}
	if ValidatePath(g, 0, 3, []int{0}) {
		t.Error("accepted path not ending at dst")
	}
	if ValidatePath(g, 0, 3, []int{0, 99}) {
		t.Error("accepted out-of-range edge")
	}
	// Directed edge used backwards.
	if ValidatePath(g, 1, 0, []int{0}) {
		t.Error("accepted reversed directed edge")
	}
}

func TestScratchHeapOrdering(t *testing.T) {
	s := NewScratch(10)
	s.reset(10)
	prios := []float64{5, 1, 3, 0.5, 4, 2}
	for v, p := range prios {
		s.touch(int32(v))
		s.dist[v] = p
		s.push(int32(v))
	}
	s.dist[0] = 0.1 // decrease-key
	s.decrease(0)
	var got []float64
	for len(s.heap) > 0 {
		got = append(got, s.dist[s.pop()])
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("heap pops out of order: %v", got)
		}
	}
	if got[0] != 0.1 {
		t.Fatalf("decrease-key ignored; first pop %g", got[0])
	}
}
