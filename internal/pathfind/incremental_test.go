package pathfind

import (
	"math"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"truthfulufp/internal/graph"
)

// randomPricedGraph builds a random strongly connected graph with
// strictly positive weights per edge.
func randomPricedGraph(rng *rand.Rand, n int) (*graph.Graph, []float64) {
	m := 2*n + rng.IntN(2*n)
	g := graph.RandomStronglyConnected(rng, n, m, 1, 4)
	w := make([]float64, g.NumEdges())
	for e := range w {
		w[e] = 0.05 + rng.Float64()
	}
	return g, w
}

func treesEqual(a, b *Tree) bool {
	if a.Source != b.Source {
		return false
	}
	for v := range a.Dist {
		da, db := a.Dist[v], b.Dist[v]
		if math.IsInf(da, 1) != math.IsInf(db, 1) {
			return false
		}
		if !math.IsInf(da, 1) && da != db {
			return false
		}
	}
	return reflect.DeepEqual(a.PrevEdge, b.PrevEdge) && reflect.DeepEqual(a.PrevVert, b.PrevVert)
}

// TestScratchMatchesDijkstra: the pooled scratch path and the
// convenience entry point agree, frozen or not.
func TestScratchMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 4))
	for trial := 0; trial < 20; trial++ {
		g, w := randomPricedGraph(rng, 6+rng.IntN(20))
		src := rng.IntN(g.NumVertices())
		want := Dijkstra(g, src, FromSlice(w)) // CSR path (generator froze)
		sc := NewScratch(1)                    // force growth
		var tr *Tree
		tr = sc.Dijkstra(g, src, FromSlice(w), tr)
		if !treesEqual(want, tr) {
			t.Fatalf("trial %d: scratch tree differs from Dijkstra", trial)
		}
		// Unfrozen fallback must agree with the CSR fast path exactly.
		clone := g.Clone()
		clone.AddVertex() // drop the frozen form; extra isolated vertex
		slow := Dijkstra(clone, src, FromSlice(w))
		for v := 0; v < g.NumVertices(); v++ {
			if slow.Dist[v] != want.Dist[v] || slow.PrevEdge[v] != want.PrevEdge[v] {
				t.Fatalf("trial %d: adjacency fallback differs at vertex %d", trial, v)
			}
		}
	}
}

// TestIncrementalMatchesFullRecompute is the core soundness property of
// the dirty-source cache: across randomized monotone price-update
// sequences (multiplicative bumps on the edges of a random cached
// path, exactly how the solvers raise prices), the incrementally
// maintained trees are identical — distances and predecessors — to a
// full recomputation from scratch, for every source, after every
// update.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 23))
	const sequences = 100
	for seq := 0; seq < sequences; seq++ {
		g, w := randomPricedGraph(rng, 5+rng.IntN(12))
		n := g.NumVertices()
		numSrc := 1 + rng.IntN(n)
		sources := rng.Perm(n)[:numSrc]
		inc := NewIncremental(g, sources, nil)
		active := make([]int, inc.NumSlots())
		for i := range active {
			active[i] = i
		}
		steps := 1 + rng.IntN(8)
		for step := 0; step < steps; step++ {
			inc.Refresh(active, FromSlice(w), 1+rng.IntN(3))
			for slot := 0; slot < inc.NumSlots(); slot++ {
				got := inc.Tree(slot)
				want := Dijkstra(g, inc.Source(slot), FromSlice(w))
				if !treesEqual(want, got) {
					t.Fatalf("seq %d step %d source %d: cached tree differs from recompute",
						seq, step, inc.Source(slot))
				}
			}
			// Price update: bump the edges of one cached shortest path (the
			// admitted-path shape), or occasionally a random edge set.
			var changed []int
			if rng.IntN(4) > 0 {
				slot := rng.IntN(inc.NumSlots())
				dst := rng.IntN(n)
				if p, ok := inc.Tree(slot).PathTo(dst); ok {
					changed = p
				}
			}
			if len(changed) == 0 {
				for e := 0; e < g.NumEdges(); e++ {
					if rng.IntN(8) == 0 {
						changed = append(changed, e)
					}
				}
			}
			for _, e := range changed {
				w[e] *= 1 + rng.Float64() // strictly increasing
			}
			inc.Invalidate(changed)
		}
		rebuilt, served := inc.Stats()
		if rebuilt == 0 || rebuilt > int64(steps*numSrc) {
			t.Fatalf("seq %d: implausible recompute count %d (served %d)", seq, rebuilt, served)
		}
	}
}

// TestIncrementalActuallyCaches: with no invalidation, a second Refresh
// recomputes nothing; invalidating one tree's edge dirties exactly the
// sources using it.
func TestIncrementalActuallyCaches(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 8))
	g, w := randomPricedGraph(rng, 30)
	sources := []int{0, 1, 2, 3, 4, 5, 6, 7}
	inc := NewIncremental(g, sources, NewPool())
	active := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if got := inc.Refresh(active, FromSlice(w), 4); got != len(active) {
		t.Fatalf("cold refresh recomputed %d, want %d", got, len(active))
	}
	if got := inc.Refresh(active, FromSlice(w), 4); got != 0 {
		t.Fatalf("warm refresh recomputed %d, want 0", got)
	}
	// Dirty one edge used by slot 0's tree.
	var edge = -1
	for _, e := range inc.Tree(0).PrevEdge {
		if e >= 0 {
			edge = e
			break
		}
	}
	if edge < 0 {
		t.Fatal("slot 0 tree has no edges")
	}
	w[edge] *= 2
	inc.Invalidate([]int{edge})
	dirty := inc.Refresh(active, FromSlice(w), 4)
	if dirty < 1 || dirty >= len(active) {
		t.Fatalf("refresh after single-edge bump recomputed %d of %d", dirty, len(active))
	}
}

// TestPoolConcurrentScratches: many goroutines hammer one Pool on one
// frozen graph; run under -race this is the pooled-scratch data-race
// check.
func TestPoolConcurrentScratches(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	g, w := randomPricedGraph(rng, 40)
	want := Dijkstra(g, 0, FromSlice(w))
	pool := NewPool()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			var tr *Tree
			for iter := 0; iter < 50; iter++ {
				sc := pool.Get(g.NumVertices())
				tr = sc.Dijkstra(g, src%g.NumVertices(), FromSlice(w), tr)
				pool.Put(sc)
			}
			if src%g.NumVertices() == 0 && !treesEqual(want, tr) {
				t.Error("concurrent pooled scratch produced a wrong tree")
			}
		}(i * 5)
	}
	wg.Wait()
}
