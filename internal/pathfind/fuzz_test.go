package pathfind

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"truthfulufp/internal/graph"
)

// Native fuzz targets for the canonical tie-break invariants. The
// byte-level inputs only seed a PRNG, so every interesting corpus
// entry is a reproducible (graph, weights, bump-sequence) triple; the
// properties themselves are the ones the Incremental cache's
// bit-identity contract rests on.

// fuzzInstance derives a small strongly connected instance and
// plateau-heavy weights (exact ties are the regime where the canonical
// tie-break does all the work) from fuzz-chosen seeds.
func fuzzInstance(seed uint64, n, m uint8) (*graph.Graph, []float64, *rand.Rand) {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	nv := 3 + int(n%12)
	g := graph.RandomStronglyConnected(rng, nv, nv+int(m%30), 1, 2)
	return g, plateauWeights(rng, g.NumEdges()), rng
}

// FuzzBottleneckLeximax: the leximax bottleneck tree stays acyclic
// (every PathTo terminates with a simple path), realizes its reported
// minimax value, and its single-target form answers bit-identically —
// before and after monotone weight bumps.
func FuzzBottleneckLeximax(f *testing.F) {
	f.Add(uint64(1), uint8(5), uint8(10))
	f.Add(uint64(99), uint8(11), uint8(29))
	f.Add(uint64(123456), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, n, m uint8) {
		g, w, rng := fuzzInstance(seed, n, m)
		sc := NewScratch(g.NumVertices())
		for round := 0; round < 3; round++ {
			for src := 0; src < g.NumVertices(); src++ {
				tr := sc.Bottleneck(g, src, FromSlice(w), nil)
				for dst := 0; dst < g.NumVertices(); dst++ {
					path, ok := tr.PathTo(dst)
					if !ok {
						continue
					}
					if !ValidatePath(g, src, dst, path) || !IsSimple(g, src, path) {
						t.Fatalf("src %d dst %d: non-simple or invalid leximax path", src, dst)
					}
					most := math.Inf(-1)
					for _, e := range path {
						most = math.Max(most, w[e])
					}
					if dst != src && most != tr.Dist[dst] {
						t.Fatalf("src %d dst %d: path max %v != tree dist %v", src, dst, most, tr.Dist[dst])
					}
					sp, sd, sok := sc.BottleneckPathTo(g, src, dst, FromSlice(w))
					if !sok || sd != tr.Dist[dst] || !reflect.DeepEqual(sp, path) {
						t.Fatalf("src %d dst %d: BottleneckPathTo diverged from tree", src, dst)
					}
				}
			}
			monotoneBump(rng, w)
		}
	})
}

// FuzzBottleneckALT: the goal-directed bottleneck search under the
// minimax landmark potential stays bit-identical to the plain leximax
// early-exit search AND to the full canonical leximax tree, under
// random monotone repricing of the weights the tables only lower-bound.
func FuzzBottleneckALT(f *testing.F) {
	f.Add(uint64(3), uint8(6), uint8(11))
	f.Add(uint64(88), uint8(10), uint8(27))
	f.Add(uint64(424242), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, n, m uint8) {
		g, w, rng := fuzzInstance(seed, n, m)
		lm := BuildLandmarks(g, 4, FromSlice(w)).WithBottleneck(g)
		sc := NewScratch(g.NumVertices())
		for round := 0; round < 3; round++ {
			for src := 0; src < g.NumVertices(); src++ {
				tr := sc.Bottleneck(g, src, FromSlice(w), nil)
				for dst := 0; dst < g.NumVertices(); dst++ {
					wantPath, wantDist, wantOK := sc.BottleneckPathTo(g, src, dst, FromSlice(w))
					path, dist, ok := sc.BottleneckPathToALT(g, src, dst, FromSlice(w), lm)
					if ok != wantOK || (wantOK && (dist != wantDist || !reflect.DeepEqual(path, wantPath))) {
						t.Fatalf("src %d dst %d: bottleneck ALT diverged from plain search", src, dst)
					}
					treePath, treeOK := tr.PathTo(dst)
					if ok != treeOK || (ok && (dist != tr.Dist[dst] || !reflect.DeepEqual(path, treePath))) {
						t.Fatalf("src %d dst %d: bottleneck ALT diverged from full leximax tree", src, dst)
					}
				}
			}
			monotoneBump(rng, w)
		}
	})
}

// FuzzLandmarkOracle: landmark lower bounds stay admissible against a
// fresh Dijkstra under monotone bumps, and the ALT-pruned and
// bidirectional searches stay bit-identical to the plain early-exit
// search.
func FuzzLandmarkOracle(f *testing.F) {
	f.Add(uint64(2), uint8(7), uint8(13))
	f.Add(uint64(77), uint8(12), uint8(28))
	f.Add(uint64(31337), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, n, m uint8) {
		g, w, rng := fuzzInstance(seed, n, m)
		lm := BuildLandmarks(g, 4, FromSlice(w))
		nv := g.NumVertices()
		sc, fs, bs := NewScratch(nv), NewScratch(nv), NewScratch(nv)
		for round := 0; round < 3; round++ {
			for src := 0; src < nv; src++ {
				tr := sc.Dijkstra(g, src, FromSlice(w), nil)
				for dst := 0; dst < nv; dst++ {
					if b := lm.Bound(src, dst); b > tr.Dist[dst] {
						t.Fatalf("src %d dst %d: bound %v > dist %v", src, dst, b, tr.Dist[dst])
					}
					wantPath, wantDist, wantOK := sc.ShortestPathTo(g, src, dst, FromSlice(w))
					altPath, altDist, altOK := sc.ShortestPathToALT(g, src, dst, FromSlice(w), lm)
					if altOK != wantOK || (wantOK && (altDist != wantDist || !reflect.DeepEqual(altPath, wantPath))) {
						t.Fatalf("src %d dst %d: ALT diverged from plain search", src, dst)
					}
					bp, bd, bok, _ := bidiPathTo(g, src, dst, FromSlice(w), lm, fs, bs)
					if bok != wantOK || (wantOK && (bd != wantDist || !reflect.DeepEqual(bp, wantPath))) {
						t.Fatalf("src %d dst %d: bidirectional probe diverged from plain search", src, dst)
					}
				}
			}
			monotoneBump(rng, w)
		}
	})
}
