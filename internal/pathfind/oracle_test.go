package pathfind

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"truthfulufp/internal/graph"
)

// TestQuickALTMatchesShortestPathTo: the ALT-pruned single-target
// search is bit-identical to the plain early-exit search — for the
// build-time weights and for monotonically bumped weights the tables
// only lower-bound — across plateau-heavy graphs where canonical
// tie-breaking does all the work.
func TestQuickALTMatchesShortestPathTo(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^77))
		nv := 3 + int(n%12)
		g := graph.RandomStronglyConnected(rng, nv, nv+int(m%30), 1, 2)
		w := plateauWeights(rng, g.NumEdges())
		lm := BuildLandmarks(g, 4, FromSlice(w))
		sc := NewScratch(nv)
		for round := 0; round < 3; round++ {
			for src := 0; src < nv; src++ {
				for dst := 0; dst < nv; dst++ {
					wantPath, wantDist, wantOK := sc.ShortestPathTo(g, src, dst, FromSlice(w))
					path, dist, ok := sc.ShortestPathToALT(g, src, dst, FromSlice(w), lm)
					if ok != wantOK || (ok && (dist != wantDist || !reflect.DeepEqual(path, wantPath))) {
						return false
					}
				}
			}
			monotoneBump(rng, w)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBidiMatchesShortestPathTo: the bidirectional probe — with
// and without landmark tightening — is bit-identical to the plain
// early-exit search under the same monotone-bump regime.
func TestQuickBidiMatchesShortestPathTo(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^99))
		nv := 3 + int(n%12)
		g := graph.RandomStronglyConnected(rng, nv, nv+int(m%30), 1, 2)
		w := plateauWeights(rng, g.NumEdges())
		lm := BuildLandmarks(g, 3, FromSlice(w))
		sc, fs, bs := NewScratch(nv), NewScratch(nv), NewScratch(nv)
		for round := 0; round < 3; round++ {
			for src := 0; src < nv; src++ {
				for dst := 0; dst < nv; dst++ {
					wantPath, wantDist, wantOK := sc.ShortestPathTo(g, src, dst, FromSlice(w))
					for _, tables := range []*Landmarks{nil, lm} {
						path, dist, ok, _ := bidiPathTo(g, src, dst, FromSlice(w), tables, fs, bs)
						if ok != wantOK || (ok && (dist != wantDist || !reflect.DeepEqual(path, wantPath))) {
							return false
						}
					}
				}
			}
			monotoneBump(rng, w)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLandmarkBoundAdmissible: every landmark lower bound is at
// most the true distance under the build weights and stays admissible
// after monotone bumps (including +Inf residual flips).
func TestQuickLandmarkBoundAdmissible(t *testing.T) {
	f := func(seed uint64, n, m uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^55))
		nv := 3 + int(n%12)
		g := graph.RandomStronglyConnected(rng, nv, nv+int(m%30), 1, 2)
		w := plateauWeights(rng, g.NumEdges())
		lm := BuildLandmarks(g, 4, FromSlice(w))
		sc := NewScratch(nv)
		for round := 0; round < 3; round++ {
			for src := 0; src < nv; src++ {
				tr := sc.Dijkstra(g, src, FromSlice(w), nil)
				for dst := 0; dst < nv; dst++ {
					if lm.Bound(src, dst) > tr.Dist[dst] {
						return false
					}
				}
			}
			monotoneBump(rng, w)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalOracleEquivalence: an additive Incremental with the
// full oracle (landmarks + bidirectional probes) answers every PathTo
// identically to an oracle-less twin through a monotone bump sequence,
// with the landmark bound never violated and the oracle actually
// exercised.
func TestIncrementalOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	g := graph.RandomStronglyConnected(rng, 40, 140, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	base := append([]float64(nil), w...)
	sources := []int{0, 3, 7, 11}
	plain := NewIncremental(g, sources, nil)
	oracle := NewIncremental(g, sources, nil)
	oracle.SetOracle(OracleConfig{
		Landmarks:     BuildLandmarks(g, 4, FromSlice(base)),
		Bidirectional: true,
	})
	for round := 0; round < 20; round++ {
		for slot := range sources {
			dst := rng.IntN(g.NumVertices())
			p1, d1, ok1 := plain.PathTo(slot, dst, FromSlice(w))
			p2, d2, ok2 := oracle.PathTo(slot, dst, FromSlice(w))
			if ok1 != ok2 || d1 != d2 || !reflect.DeepEqual(p1, p2) {
				t.Fatalf("round %d slot %d dst %d: plain (%v,%v,%v) != oracle (%v,%v,%v)",
					round, slot, dst, p1, d1, ok1, p2, d2, ok2)
			}
		}
		touched := monotoneBump(rng, w)
		plain.Invalidate(touched)
		oracle.Invalidate(touched)
	}
	st := oracle.CacheStats()
	if st.LandmarkViolations != 0 {
		t.Fatalf("monotone bumps must never violate the landmark bound: %+v", st)
	}
	if st.AltSearches == 0 || st.BidiProbes == 0 {
		t.Fatalf("oracle never exercised: %+v", st)
	}
}

// TestOracleRebuildsOnBoundViolation: lowering a weight below the
// landmark build bound (a contract violation) now triggers an in-place
// rebuild against the current weights via the lazy pending-edge check —
// the oracle stays enabled and answers still match a fresh search.
func TestOracleRebuildsOnBoundViolation(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	g := graph.RandomStronglyConnected(rng, 20, 60, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	inc := NewIncremental(g, []int{0}, nil)
	inc.SetOracle(OracleConfig{Landmarks: BuildLandmarks(g, 3, FromSlice(w))})
	if _, _, ok := inc.PathTo(0, g.NumVertices()-1, FromSlice(w)); !ok {
		t.Fatal("strongly connected graph: target must be reachable")
	}
	w[0] /= 4 // below the build-time lower bound
	inc.Invalidate([]int{0})
	sc := NewScratch(g.NumVertices())
	for dst := 0; dst < g.NumVertices(); dst++ {
		wantPath, wantDist, wantOK := sc.ShortestPathTo(g, 0, dst, FromSlice(w))
		path, dist, ok := inc.PathTo(0, dst, FromSlice(w))
		if ok != wantOK || dist != wantDist || !reflect.DeepEqual(path, wantPath) {
			t.Fatalf("dst %d: post-violation answer diverged", dst)
		}
	}
	st := inc.CacheStats()
	if st.LandmarkViolations != 1 {
		t.Fatalf("violation not detected: %+v", st)
	}
	if st.LandmarkRebuilds != 1 {
		t.Fatalf("violation must rebuild, not disable: %+v", st)
	}
	if !inc.lmOK {
		t.Fatalf("oracle disabled despite rebuild budget: %+v", st)
	}
}

// TestOracleDisablesOnViolationPastBudget: a negative StaleViolations
// restores the historical behavior — the first violation disables the
// tables instead of rebuilding — and a zero budget defaults to
// DefaultStaleViolations rebuilds before disabling.
func TestOracleDisablesOnViolationPastBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	g := graph.RandomStronglyConnected(rng, 20, 60, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	inc := NewIncremental(g, []int{0}, nil)
	inc.SetOracle(OracleConfig{
		Landmarks:       BuildLandmarks(g, 3, FromSlice(w)),
		StaleViolations: -1,
	})
	inc.PathTo(0, g.NumVertices()-1, FromSlice(w))
	w[0] /= 4
	inc.Invalidate([]int{0})
	for dst := 0; dst < g.NumVertices(); dst++ {
		inc.PathTo(0, dst, FromSlice(w))
	}
	st := inc.CacheStats()
	if st.LandmarkViolations != 1 || st.LandmarkRebuilds != 0 {
		t.Fatalf("negative budget must disable without rebuilding: %+v", st)
	}
	if inc.lmOK {
		t.Fatal("tables still enabled after budget-less violation")
	}

	// Default budget: violations rebuild until the budget runs out, then
	// the tables disable for good.
	inc2 := NewIncremental(g, []int{0}, nil)
	w2 := plateauWeights(rng, g.NumEdges())
	inc2.SetOracle(OracleConfig{Landmarks: BuildLandmarks(g, 3, FromSlice(w2))})
	sc := NewScratch(g.NumVertices())
	for i := 0; i <= DefaultStaleViolations; i++ {
		dst := (i + 1) % g.NumVertices()
		w2[i] /= 4 // violate one build-time bound per round
		inc2.Invalidate([]int{i})
		wantPath, wantDist, wantOK := sc.ShortestPathTo(g, 0, dst, FromSlice(w2))
		path, dist, ok := inc2.PathTo(0, dst, FromSlice(w2))
		if ok != wantOK || dist != wantDist || !reflect.DeepEqual(path, wantPath) {
			t.Fatalf("round %d: answer diverged", i)
		}
	}
	st2 := inc2.CacheStats()
	if st2.LandmarkRebuilds != int64(DefaultStaleViolations) {
		t.Fatalf("want %d violation rebuilds, got %+v", DefaultStaleViolations, st2)
	}
	if inc2.lmOK {
		t.Fatal("tables must disable once the violation budget is spent")
	}
}

// TestOracleStalenessRebuild: an aggressive StalePruneRatio forces a
// staleness rebuild after one observation window, the rebuild counter
// advances, the OnRebuild hook observes it, and answers stay identical
// to an oracle-less twin throughout.
func TestOracleStalenessRebuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	g := graph.RandomStronglyConnected(rng, 40, 140, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	plain := NewIncremental(g, []int{0}, nil)
	inc := NewIncremental(g, []int{0}, nil)
	var hookCalls int
	inc.SetOracle(OracleConfig{
		Landmarks:       BuildLandmarks(g, 4, FromSlice(w)),
		StalePruneRatio: 0.999, // essentially every window is "stale"
		OnRebuild:       func(_ float64) { hookCalls++ },
	})
	for round := 0; round < 3*DefaultStaleWindow; round++ {
		dst := rng.IntN(g.NumVertices())
		p1, d1, ok1 := plain.PathTo(0, dst, FromSlice(w))
		p2, d2, ok2 := inc.PathTo(0, dst, FromSlice(w))
		if ok1 != ok2 || d1 != d2 || !reflect.DeepEqual(p1, p2) {
			t.Fatalf("round %d dst %d: rebuilt oracle diverged", round, dst)
		}
		touched := monotoneBump(rng, w)
		plain.Invalidate(touched)
		inc.Invalidate(touched)
	}
	st := inc.CacheStats()
	if st.LandmarkRebuilds == 0 {
		t.Fatalf("aggressive threshold never rebuilt: %+v", st)
	}
	if int64(hookCalls) != st.LandmarkRebuilds {
		t.Fatalf("OnRebuild saw %d calls, counter says %d", hookCalls, st.LandmarkRebuilds)
	}
	// The barren guard caps back-to-back fruitless rebuilds: with an
	// unattainable threshold the rebuild count stays far below one per
	// window.
	if st.LandmarkRebuilds > int64(maxBarrenRebuilds)+1 {
		t.Fatalf("barren guard failed to cap rebuilds: %+v", st)
	}

	// A negative threshold disables staleness rebuilds entirely.
	inc2 := NewIncremental(g, []int{0}, nil)
	inc2.SetOracle(OracleConfig{
		Landmarks:       BuildLandmarks(g, 4, FromSlice(w)),
		StalePruneRatio: -1,
	})
	for round := 0; round < 2*DefaultStaleWindow; round++ {
		inc2.PathTo(0, rng.IntN(g.NumVertices()), FromSlice(w))
	}
	if st := inc2.CacheStats(); st.LandmarkRebuilds != 0 {
		t.Fatalf("negative threshold must never rebuild: %+v", st)
	}
}

// TestPathCacheMultiTarget: the per-slot path cache holds several
// targets at once — repeat queries over a small fan-out all hit after
// the first pass — and invalidation drops exactly the entries whose
// paths use a touched edge.
func TestPathCacheMultiTarget(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	g := graph.RandomStronglyConnected(rng, 30, 90, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	inc := NewIncremental(g, []int{0}, nil)
	targets := []int{5, 9, 14, 20}
	for _, dst := range targets {
		inc.PathTo(0, dst, FromSlice(w))
	}
	before := inc.CacheStats()
	for _, dst := range targets {
		inc.PathTo(0, dst, FromSlice(w))
	}
	after := inc.CacheStats()
	if hits := after.PathToHits - before.PathToHits; hits != int64(len(targets)) {
		t.Fatalf("second pass: want %d cache hits, got %d", len(targets), hits)
	}
	if after.PathToMisses != before.PathToMisses {
		t.Fatalf("second pass ran searches: %+v", after)
	}
}

// TestPreferSinglePolicy: the adaptive policy routes fan-out-one slots
// to single-target search, defaults to trees during warmup, and flips
// a multi-target slot to single-target search only once its observed
// dirty rate exceeds the per-target cost ratio.
func TestPreferSinglePolicy(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	g := graph.RandomStronglyConnected(rng, 20, 60, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	inc := NewIncremental(g, []int{0, 1}, nil)
	if !inc.PreferSingle(0, 1) {
		t.Fatal("fan-out one must always route to single-target search")
	}
	if inc.PreferSingle(0, 2) {
		t.Fatal("warmup slot must default to tree refreshes")
	}
	if inc.PreferSingle(0, ptCapacity+1) {
		t.Fatal("fan-out beyond the path cache must refresh trees")
	}
	// Slot 0: always dirtied between refreshes -> dirty rate 1.
	for i := 0; i < 8; i++ {
		inc.Refresh([]int{0}, FromSlice(w), 1)
		inc.InvalidateAll()
	}
	if !inc.PreferSingle(0, 2) {
		t.Fatal("always-dirty slot must route to single-target search")
	}
	// Slot 1: refreshed repeatedly with no invalidation -> dirty rate ~0.
	for i := 0; i < 8; i++ {
		inc.Refresh([]int{1}, FromSlice(w), 1)
	}
	if inc.PreferSingle(1, 2) {
		t.Fatal("clean slot must keep refreshing its tree")
	}
	st := inc.CacheStats()
	if st.PolicySingle == 0 || st.PolicyTree == 0 {
		t.Fatalf("policy decisions not counted: %+v", st)
	}
}

// TestPolicyKnobs: OracleConfig's PolicyWarmup / PolicyCostRatio move
// the adaptive policy's decisions, zero values keep the defaults, and
// the knobs apply to non-additive caches too (they sit before
// SetOracle's KindAdditive early return).
func TestPolicyKnobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	g := graph.RandomStronglyConnected(rng, 20, 60, 1, 2)
	for _, kind := range []TreeKind{KindAdditive, KindBottleneck} {
		inc := NewIncrementalKind(g, kind, []int{0}, nil, 0)
		// Simulated history: 10 demands, all dirty -> rate 1.
		inc.slotDemand[0], inc.slotDirty[0] = 10, 10
		if !inc.preferSingle(0, 2) {
			t.Fatalf("%v: always-dirty slot must route single under defaults", kind)
		}
		inc.SetOracle(OracleConfig{PolicyWarmup: 20})
		if inc.preferSingle(0, 2) {
			t.Fatalf("%v: raised warm-up must keep the slot on trees", kind)
		}
		inc.SetOracle(OracleConfig{PolicyWarmup: -1})
		if !inc.preferSingle(0, 2) {
			t.Fatalf("%v: disabled warm-up must route single", kind)
		}
		inc.slotDirty[0] = 0 // rate 0: only a zero threshold routes single
		inc.SetOracle(OracleConfig{})
		if inc.preferSingle(0, 2) {
			t.Fatalf("%v: zero config must restore the default ratio", kind)
		}
		inc.SetOracle(OracleConfig{PolicyCostRatio: -1})
		if !inc.preferSingle(0, 2) {
			t.Fatalf("%v: zeroed cost ratio must route every eligible slot single", kind)
		}
		inc.slotDirty[0] = 3 // rate 0.3: between 0.1·2 and the default 0.25·2
		inc.SetOracle(OracleConfig{PolicyCostRatio: 0.1})
		if !inc.preferSingle(0, 2) {
			t.Fatalf("%v: lowered cost ratio must route single at rate 0.3", kind)
		}
		inc.SetOracle(OracleConfig{PolicyCostRatio: DefaultPolicyCostRatio})
		if inc.preferSingle(0, 2) {
			t.Fatalf("%v: default cost ratio must keep rate 0.3 on trees", kind)
		}
	}
}

// TestAddSourcePolicyAndOracle: slots grown by AddSource after
// SetOracle inherit a sane adaptive-policy state (warmup counters at
// zero, tree-default for multi-target fan-out) and are served by the
// configured oracle, interacting correctly with SetTargets.
func TestAddSourcePolicyAndOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 23))
	g := graph.RandomStronglyConnected(rng, 30, 100, 1, 2)
	w := plateauWeights(rng, g.NumEdges())
	inc := NewIncremental(g, nil, nil)
	inc.SetOracle(OracleConfig{Landmarks: BuildLandmarks(g, 3, FromSlice(w))})
	sc := NewScratch(g.NumVertices())
	for round := 0; round < 6; round++ {
		src := rng.IntN(g.NumVertices())
		slot := inc.AddSource(src)
		if got := inc.AddSource(src); got != slot {
			t.Fatalf("AddSource not idempotent: %d vs %d", got, slot)
		}
		if inc.slotDemand[slot] != 0 || inc.slotDirty[slot] != 0 {
			t.Fatalf("grown slot %d inherited stale counters", slot)
		}
		if inc.PreferSingle(slot, 2) {
			t.Fatal("grown slot must start in tree-default warmup")
		}
		dst := rng.IntN(g.NumVertices())
		inc.SetTargets(slot, []int{dst})
		wantPath, wantDist, wantOK := sc.ShortestPathTo(g, src, dst, FromSlice(w))
		path, dist, ok := inc.PathTo(slot, dst, FromSlice(w))
		if ok != wantOK || dist != wantDist || !reflect.DeepEqual(path, wantPath) {
			t.Fatalf("grown slot %d: oracle answer diverged", slot)
		}
		touched := monotoneBump(rng, w)
		inc.Invalidate(touched)
	}
	if st := inc.CacheStats(); st.AltSearches == 0 {
		t.Fatalf("grown slots never used the oracle: %+v", st)
	}
}

// TestBuildLandmarksShape: farthest-point selection returns distinct,
// arc-bearing landmarks and tables sized to the graph, and Bound is
// zero on the diagonal.
func TestBuildLandmarksShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := graph.RandomStronglyConnected(rng, 25, 80, 1, 2)
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 1 + rng.Float64()
	}
	lm := BuildLandmarks(g, 5, FromSlice(w))
	if lm.K() != 5 {
		t.Fatalf("want 5 landmarks, got %d", lm.K())
	}
	seen := map[int32]bool{}
	for _, id := range lm.IDs() {
		if seen[id] {
			t.Fatalf("duplicate landmark %d", id)
		}
		seen[id] = true
	}
	for v := 0; v < g.NumVertices(); v++ {
		if b := lm.Bound(v, v); b != 0 {
			t.Fatalf("Bound(%d,%d) = %v, want 0", v, v, b)
		}
	}
	if lm.Bound(0, 1) < 0 || math.IsNaN(lm.Bound(0, 1)) {
		t.Fatal("bound must be a nonnegative number")
	}
}
