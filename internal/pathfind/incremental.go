package pathfind

import (
	"fmt"
	"math"
	"sync"
	"time"

	"truthfulufp/internal/graph"
)

// Incremental is a dirty-source cache of single-source path structures
// over a fixed set of sources, generic over the structure's TreeKind:
// additive Dijkstra trees, bottleneck (minimax) trees, or hop-bounded
// Bellman-Ford tables. The primal-dual solvers raise prices only on the
// edges of the one path they admit per iteration, so between iterations
// most sources' structures stay optimal; Incremental records which
// edges each cached structure uses and recomputes only the sources
// dirtied by an update, dropping the per-iteration cost from
// O(S·search) to O(dirty·search).
//
// Correctness of reusing a clean structure rests on three
// caller-guaranteed invariants, all satisfied by exponential-price
// primal-dual loops:
//
//  1. Edge weights never decrease between Refresh calls (prices only go
//     up; residual filtering only flips a weight to +Inf).
//  2. Every edge whose weight may have changed is passed to Invalidate
//     before the next Refresh.
//  3. The weight of an edge depends only on that edge's own state.
//
// Under (1)-(3) a cached structure none of whose used edges changed is
// still optimal: its own witness paths are unchanged in length while
// every other path only got longer. Because each kind's tie-break is
// canonical (see TreeKind) — the structure is a pure function of the
// weights, not of relaxation order — the reused structure is not merely
// *a* valid answer but bit-identical to what a full recomputation would
// return: a clean vertex's set of optimum-achieving predecessor arcs
// can only lose changed (non-used) arcs, never its recorded winner.
// Solvers built on Incremental therefore produce exactly the
// allocations of their full-recompute counterparts, for every kind.
//
// On top of the per-source structures, tree-kind caches answer
// single-target queries through PathTo, backed by an early-exit search
// and a small per-slot list of cached (target, path) entries, each with
// its own used-edge bitset: a cached path whose edges did not change is
// still canonical-optimal under (1)-(3) by the same argument. This is
// what the mechanism's critical-value bisection and the session API's
// streamed admits run on — their queries are dominated by sources
// carrying one or a few requests, for which materializing a whole tree
// is wasted work. Additive caches can additionally be given a
// single-target oracle (SetOracle): ALT landmark pruning and/or
// bidirectional probes, both bit-identical to the plain early-exit
// search, so flipping them on or off never changes an answer.
//
// An Incremental is driven from one goroutine (Refresh parallelizes
// internally); the cached structures are owned by the cache and valid
// until the next Refresh.
type Incremental struct {
	g       *graph.Graph
	kind    TreeKind
	maxHops int // KindHopBounded table depth
	pool    *Pool
	sources []int
	slot    map[int]int
	trees   []*Tree     // KindAdditive, KindBottleneck
	tables  []*HopTable // KindHopBounded
	fresh   []bool      // structure computed and not dirtied since
	uses    [][]uint64  // per-slot bitset over edge IDs used by the structure
	words   int
	// targets[slot], when non-nil, restricts the slot's recorded edge
	// set to the tree paths reaching those targets (see SetTargets).
	targets [][]int32
	// activeStamp/activeGen deduplicate Refresh's active list without
	// allocating (generation-stamped, like Scratch's visited marks).
	activeStamp []uint32
	activeGen   uint32

	// Single-target path cache (tree kinds): per slot, up to ptCapacity
	// cached (target, path) entries, most recently used first.
	pt [][]ptEntry

	// Single-target oracle (KindAdditive, see SetOracle): shared ALT
	// landmark tables plus the lazily checked lower-bound guard, and the
	// bidirectional-probe switch. lmPending holds edges invalidated
	// since the last bound check — under the cache's contract those are
	// the only edges whose weights may have changed, so draining it
	// (lmUsable) re-validates the bound at O(changed) instead of
	// O(edges).
	lm         *Landmarks
	lmOK       bool
	lmCheckAll bool
	lmPending  []int32
	bidi       bool

	// Landmark lifecycle (the staleness policy, see OracleConfig): the
	// cache watches the oracle's prune ratio over fixed-size windows of
	// searches and rebuilds the tables against the current prices when a
	// window's ratio falls below lmStaleRatio — monotone repricing makes
	// any current snapshot a valid lower bound for the rest of the run.
	// lmBarren counts consecutive rebuilds whose following window stayed
	// below the threshold (a graph whose searches are inherently
	// unprunable); at maxBarrenRebuilds the prune-driven trigger pauses
	// until a window clears the threshold again. Violation-triggered
	// rebuilds are budgeted separately by lmStaleViol.
	lmStaleRatio   float64 // window prune-ratio rebuild threshold; < 0 disables
	lmStaleViol    int     // violation-rebuild budget; < 0 restores disable-on-first
	onRebuild      func(seconds float64)
	lmRebuilds     int64 // landmark table rebuilds (prune- or violation-triggered)
	lmViolRebuilds int   // violation-triggered rebuilds since SetOracle
	lmWinSearches  int64 // oracle searches in the current staleness window
	lmWinTouched   int64 // vertices touched by those searches
	lmWinBudget    int64 // vertices full tree builds would have touched
	lmBarren       int
	lmFromRebuild  bool // the current window is the first after a rebuild

	// Per-slot adaptive-policy counters: how often the slot was demanded
	// (Refresh-active or queried) and how often it was dirty when
	// demanded. PreferSingle turns these into a refresh-policy decision
	// against the cache's policy knobs (OracleConfig; defaults
	// DefaultPolicyWarmup / DefaultPolicyCostRatio).
	slotDemand      []int64
	slotDirty       []int64
	policyWarmup    int64
	policyCostRatio float64

	recomputed int64 // structures rebuilt by Refresh
	reused     int64 // active structures served from cache
	refreshes  int64 // Refresh calls
	ptHits     int64 // PathTo answers served from a fresh tree or cached path
	ptMisses   int64 // PathTo answers that ran an early-exit search

	altSearches  int64 // single-target searches that ran ALT- or bidi-pruned
	altTouched   int64 // vertices touched by those searches
	altBudget    int64 // vertices a full tree build would touch instead
	bidiProbes   int64 // bidirectional probes run
	bidiMeets    int64 // probes whose frontiers bridged (reachable target)
	policyTree   int64 // PreferSingle decisions to refresh the tree
	policySingle int64 // PreferSingle decisions to route to single-target search
	lmViolations int64 // landmark lower-bound violations observed
}

// ptEntry is one cached single-target answer: the canonical path (or
// cached unreachability) from the slot's source to target, with the
// bitset of edges whose invalidation voids it.
type ptEntry struct {
	target int32
	fresh  bool
	ok     bool
	dist   float64
	path   []int
	uses   []uint64
}

// ptCapacity is the per-slot path-entry capacity. Sessions admitting
// one source to a handful of targets hit fully within it, and the
// adaptive policy routes fan-outs beyond it to tree refreshes anyway.
const ptCapacity = 4

// NewIncremental builds an additive (Dijkstra) cache for the given
// source vertices — the historical constructor, equivalent to
// NewIncrementalKind(g, KindAdditive, sources, pool, 0).
func NewIncremental(g *graph.Graph, sources []int, pool *Pool) *Incremental {
	return NewIncrementalKind(g, KindAdditive, sources, pool, 0)
}

// NewIncrementalKind builds a cache of the given kind for the given
// source vertices (duplicates are collapsed; slot order follows first
// occurrence). The graph is frozen as a side effect so every
// recomputation runs on the CSR fast path. A nil pool gets a private
// one. maxHops is the KindHopBounded table depth (<= 0 means number of
// vertices - 1, the all-simple-paths horizon) and is ignored by the
// tree kinds.
func NewIncrementalKind(g *graph.Graph, kind TreeKind, sources []int, pool *Pool, maxHops int) *Incremental {
	g.Freeze()
	if pool == nil {
		pool = NewPool()
	}
	if maxHops <= 0 {
		maxHops = g.NumVertices() - 1
	}
	inc := &Incremental{
		g:               g,
		kind:            kind,
		maxHops:         maxHops,
		pool:            pool,
		slot:            make(map[int]int, len(sources)),
		words:           (g.NumEdges() + 63) / 64,
		policyWarmup:    DefaultPolicyWarmup,
		policyCostRatio: DefaultPolicyCostRatio,
	}
	for _, s := range sources {
		if _, dup := inc.slot[s]; dup {
			continue
		}
		inc.slot[s] = len(inc.sources)
		inc.sources = append(inc.sources, s)
	}
	n := len(inc.sources)
	if kind == KindHopBounded {
		inc.tables = make([]*HopTable, n)
	} else {
		inc.trees = make([]*Tree, n)
	}
	inc.fresh = make([]bool, n)
	inc.uses = make([][]uint64, n)
	inc.targets = make([][]int32, n)
	inc.activeStamp = make([]uint32, n)
	inc.slotDemand = make([]int64, n)
	inc.slotDirty = make([]int64, n)
	if kind != KindHopBounded {
		inc.pt = make([][]ptEntry, n)
	}
	return inc
}

// OracleConfig configures a tree-kind cache's single-target oracle.
type OracleConfig struct {
	// Landmarks, when non-nil, prunes PathTo's early-exit searches with
	// ALT lower bounds — additive bounds on KindAdditive caches, minimax
	// bounds on KindBottleneck caches (the set must carry the minimax
	// tables, Landmarks.WithBottleneck, or it is ignored there). The
	// tables must have been built on the same frozen topology and on a
	// lower bound of every weight function the cache will see; the cache
	// re-validates the bound lazily against invalidated edges and, if it
	// is ever violated (counting CacheStats.LandmarkViolations), rebuilds
	// the tables from the current weights — or self-disables once the
	// StaleViolations budget is spent — so a contract slip degrades
	// speed, not answers.
	Landmarks *Landmarks
	// Bidirectional routes PathTo misses through the bidirectional
	// probe (forward/backward meet plus a potential-guided forward
	// rerun), which the mechanism's critical-value bisection enables.
	// KindAdditive only. The graph's reverse adjacency is frozen as a
	// side effect.
	Bidirectional bool
	// StalePruneRatio overrides the staleness policy's rebuild
	// threshold: after each window of DefaultStaleWindow oracle
	// searches, if the window's observed prune ratio (1 -
	// touched/budget) fell below the threshold, the landmark tables are
	// rebuilt against the current weights — restoring the pruning power
	// the build-time snapshot has lost to monotone repricing. Zero keeps
	// DefaultStalePruneRatio; a negative value disables prune-driven
	// rebuilds.
	StalePruneRatio float64
	// StaleViolations overrides the violation-rebuild budget: how many
	// lower-bound violations may trigger a rebuild (again safe — the
	// violating weights become the new lower bound) before the oracle
	// permanently self-disables instead. Zero keeps
	// DefaultStaleViolations; a negative value restores the historical
	// disable-on-first-violation behavior.
	StaleViolations int
	// OnRebuild, when non-nil, is called after every landmark rebuild
	// with the rebuild's wall-clock duration in seconds — the serving
	// stack's hook for monotone rebuild counters and latency histograms.
	OnRebuild func(seconds float64)
	// PolicyWarmup overrides the adaptive refresh policy's warm-up
	// count: a slot's first PolicyWarmup demands always refresh the
	// tree, because they carry no dirty-rate signal yet. Zero keeps
	// DefaultPolicyWarmup; a negative value means no warm-up at all.
	PolicyWarmup int
	// PolicyCostRatio overrides the adaptive policy's dirty-rate
	// threshold: past warm-up, a slot fanning out to f targets routes to
	// single-target search once its observed dirty rate reaches
	// PolicyCostRatio·f. Zero keeps DefaultPolicyCostRatio; a negative
	// value means zero (every eligible post-warm-up slot routes to
	// single-target search).
	PolicyCostRatio float64
}

// SetOracle installs the single-target oracle configuration. The
// policy and staleness knobs (PolicyWarmup, PolicyCostRatio,
// StalePruneRatio, StaleViolations, OnRebuild) apply to every tree
// kind; the oracle proper applies to the tree kinds — ALT landmarks
// and/or bidirectional probes on KindAdditive, minimax-ALT landmarks
// on KindBottleneck (a set without the minimax tables is ignored
// there, as is Bidirectional, which has no bottleneck form).
// KindHopBounded ignores everything but the policy knobs. Every oracle
// path is bit-identical to the plain search and the policy only moves
// work, so SetOracle never invalidates cached state and may be called
// at any point between queries.
func (inc *Incremental) SetOracle(cfg OracleConfig) {
	inc.policyWarmup = DefaultPolicyWarmup
	if cfg.PolicyWarmup != 0 {
		inc.policyWarmup = int64(max(cfg.PolicyWarmup, 0))
	}
	inc.policyCostRatio = DefaultPolicyCostRatio
	if cfg.PolicyCostRatio != 0 {
		inc.policyCostRatio = math.Max(cfg.PolicyCostRatio, 0)
	}
	inc.lmStaleRatio = DefaultStalePruneRatio
	if cfg.StalePruneRatio != 0 {
		inc.lmStaleRatio = cfg.StalePruneRatio // negative: no prune-driven rebuilds
	}
	inc.lmStaleViol = DefaultStaleViolations
	if cfg.StaleViolations != 0 {
		inc.lmStaleViol = cfg.StaleViolations // negative: disable on first violation
	}
	inc.onRebuild = cfg.OnRebuild
	if inc.kind == KindHopBounded {
		return
	}
	lm := cfg.Landmarks
	if inc.kind == KindBottleneck && lm != nil && !lm.HasBottleneck() {
		lm = nil // bottleneck goal-direction needs the minimax tables
	}
	if lm != nil && lm.csr != inc.g.Frozen() {
		panic("pathfind: SetOracle landmarks built for a different frozen topology")
	}
	inc.lm = lm
	inc.lmOK = lm != nil
	inc.lmCheckAll = false
	inc.lmPending = inc.lmPending[:0]
	inc.resetLmWindow()
	inc.lmBarren = 0
	inc.lmFromRebuild = false
	inc.lmViolRebuilds = 0
	inc.bidi = cfg.Bidirectional && inc.kind == KindAdditive
	if inc.bidi {
		inc.g.FreezeReverse()
	}
}

// AddSource appends a source vertex to the cache and returns its slot
// (the existing slot if the source is already present). The new slot
// starts dirty, so the next Refresh or PathTo touching it computes its
// structure from scratch; existing slots are untouched. This is what
// lets a long-lived session cache grow with the traffic it serves
// instead of fixing its source universe at construction. Like Refresh,
// it must be driven from the cache's single driving goroutine.
func (inc *Incremental) AddSource(source int) int {
	if s, ok := inc.slot[source]; ok {
		return s
	}
	s := len(inc.sources)
	inc.slot[source] = s
	inc.sources = append(inc.sources, source)
	if inc.kind == KindHopBounded {
		inc.tables = append(inc.tables, nil)
	} else {
		inc.trees = append(inc.trees, nil)
	}
	inc.fresh = append(inc.fresh, false)
	inc.uses = append(inc.uses, nil)
	inc.targets = append(inc.targets, nil)
	inc.activeStamp = append(inc.activeStamp, 0)
	inc.slotDemand = append(inc.slotDemand, 0)
	inc.slotDirty = append(inc.slotDirty, 0)
	if inc.kind != KindHopBounded {
		inc.pt = append(inc.pt, nil)
	}
	return s
}

// Kind returns the cache's structure kind.
func (inc *Incremental) Kind() TreeKind { return inc.kind }

// MaxHops returns the KindHopBounded table depth.
func (inc *Incremental) MaxHops() int { return inc.maxHops }

// NumSlots returns the number of distinct sources.
func (inc *Incremental) NumSlots() int { return len(inc.sources) }

// Slot returns the slot index of a source vertex.
func (inc *Incremental) Slot(source int) (int, bool) {
	s, ok := inc.slot[source]
	return s, ok
}

// Source returns the source vertex of a slot.
func (inc *Incremental) Source(slot int) int { return inc.sources[slot] }

// Tree returns the cached tree of a slot (KindAdditive and
// KindBottleneck). It is valid only if the slot was active in the
// latest Refresh (a stale tree of an inactive slot reflects older
// weights).
func (inc *Incremental) Tree(slot int) *Tree { return inc.trees[slot] }

// Table returns the cached hop table of a slot (KindHopBounded), under
// the same validity rule as Tree.
func (inc *Incremental) Table(slot int) *HopTable { return inc.tables[slot] }

// SetTargets declares that only paths (and distances) to the given
// target vertices will ever be read from the slot's tree, which lets
// the cache record just the edges on those tree paths instead of the
// whole tree — often a dramatically smaller set, hence a dramatically
// lower dirty rate. Soundness is the single-target-path argument
// applied per target: under the monotone-weights contract, a clean path
// stays canonical-optimal, so every declared target's (distance, path)
// stays bit-identical to recomputation even when undeclared parts of
// the tree would have changed. Reading an undeclared target from a
// reused tree is a contract violation (the answer may be stale).
//
// The restriction applies to the tree kinds, whose per-vertex distances
// (additive sums; leximax keys for bottleneck — see Scratch.Bottleneck
// for why leximax rather than a scalar secondary) are monotone
// non-decreasing under weight increases — the property the per-target
// argument needs. A KindHopBounded cache ignores it and keeps
// whole-table recording (its BestLen-style consumers read every hop
// layer, whose witness walks blanket the table). Call before the first
// Refresh — or at any point at which the slot is dirty — with the
// universe of targets the slot will serve (supersets are sound, merely
// coarser); nil restores whole-structure recording. The solvers pass
// each source's request targets, which only shrink over a run.
func (inc *Incremental) SetTargets(slot int, targets []int) {
	if inc.kind == KindHopBounded {
		return
	}
	if targets == nil {
		inc.targets[slot] = nil
		return
	}
	ts := make([]int32, len(targets))
	for i, t := range targets {
		ts[i] = int32(t)
	}
	inc.targets[slot] = ts
}

// Invalidate marks dirty every cached structure — and every cached
// single-target path — that uses one of the given edges. Callers must
// report every edge whose weight may have changed.
func (inc *Incremental) Invalidate(edges []int) {
	for s := range inc.fresh {
		if !inc.fresh[s] {
			continue
		}
		u := inc.uses[s]
		for _, e := range edges {
			if u[e>>6]&(1<<(uint(e)&63)) != 0 {
				inc.fresh[s] = false
				break
			}
		}
	}
	for s := range inc.pt {
		for i := range inc.pt[s] {
			en := &inc.pt[s][i]
			if !en.fresh {
				continue
			}
			for _, e := range edges {
				if en.uses[e>>6]&(1<<(uint(e)&63)) != 0 {
					en.fresh = false
					break
				}
			}
		}
	}
	if inc.lmOK && inc.lm != nil && !inc.lmCheckAll {
		// Record the changed edges for the lazy landmark-bound check.
		if len(inc.lmPending)+len(edges) > inc.g.NumEdges() {
			inc.lmCheckAll = true
			inc.lmPending = inc.lmPending[:0]
		} else {
			for _, e := range edges {
				inc.lmPending = append(inc.lmPending, int32(e))
			}
		}
	}
}

// InvalidateAll marks every cached structure (and single-target path)
// dirty — the full-recompute fallback, and the reset to use after any
// change that violates the monotone-weights contract (e.g. swapping in
// an unrelated weight function).
func (inc *Incremental) InvalidateAll() {
	for s := range inc.fresh {
		inc.fresh[s] = false
	}
	for s := range inc.pt {
		for i := range inc.pt[s] {
			inc.pt[s][i].fresh = false
		}
	}
	if inc.lmOK && inc.lm != nil {
		inc.lmCheckAll = true
		inc.lmPending = inc.lmPending[:0]
	}
}

// Refresh brings the structures of the active slots up to date under
// the given weights, recomputing only dirty ones (distributed over up
// to workers goroutines, each with a pooled scratch), and returns how
// many were recomputed. Duplicate active slots are tolerated — they are
// deduplicated here, because handing the same slot to two workers would
// race on its structure.
func (inc *Incremental) Refresh(active []int, weight WeightFunc, workers int) int {
	inc.refreshes++
	inc.activeGen++
	if inc.activeGen == 0 { // uint32 wraparound: invalidate stale stamps
		for i := range inc.activeStamp {
			inc.activeStamp[i] = 0
		}
		inc.activeGen = 1
	}
	var work []int
	distinct := 0
	for _, s := range active {
		if inc.activeStamp[s] == inc.activeGen {
			continue
		}
		inc.activeStamp[s] = inc.activeGen
		distinct++
		inc.slotDemand[s]++
		if !inc.fresh[s] {
			inc.slotDirty[s]++
			work = append(work, s)
		}
	}
	inc.recomputed += int64(len(work))
	inc.reused += int64(distinct - len(work))
	if len(work) == 0 {
		return 0
	}
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		sc := inc.pool.Get(inc.g.NumVertices())
		for _, s := range work {
			inc.recompute(sc, s, weight)
		}
		inc.pool.Put(sc)
		return len(work)
	}
	var wg sync.WaitGroup
	queue := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := inc.pool.Get(inc.g.NumVertices())
			for s := range queue {
				inc.recompute(sc, s, weight)
			}
			inc.pool.Put(sc)
		}()
	}
	for _, s := range work {
		queue <- s
	}
	close(queue)
	wg.Wait()
	return len(work)
}

// recompute rebuilds slot s's structure with the search of the cache's
// kind and re-records its used edges.
func (inc *Incremental) recompute(sc *Scratch, s int, weight WeightFunc) {
	switch inc.kind {
	case KindAdditive:
		inc.trees[s] = sc.Dijkstra(inc.g, inc.sources[s], weight, inc.trees[s])
	case KindBottleneck:
		inc.trees[s] = sc.Bottleneck(inc.g, inc.sources[s], weight, inc.trees[s])
	case KindHopBounded:
		inc.tables[s] = BellmanFordHopsInto(inc.g, inc.sources[s], weight, inc.maxHops, inc.tables[s])
	}
	inc.rebuildUses(s)
	inc.fresh[s] = true
}

// rebuildUses records the edge set of slot s's structure: a tree's
// predecessor edges (restricted to the declared targets' paths when
// SetTargets applies), or every predecessor edge of every layer of a
// hop table (the rewind of any table entry's witness walk only reads
// recorded predecessors, so this set supports the reuse argument).
func (inc *Incremental) rebuildUses(s int) {
	u := inc.uses[s]
	if u == nil {
		u = make([]uint64, inc.words)
		inc.uses[s] = u
	} else {
		for i := range u {
			u[i] = 0
		}
	}
	if inc.kind == KindHopBounded {
		for _, row := range inc.tables[s].prevEdge {
			for _, e := range row {
				if e >= 0 {
					u[e>>6] |= 1 << (uint(e) & 63)
				}
			}
		}
		return
	}
	t := inc.trees[s]
	if ts := inc.targets[s]; ts != nil {
		for _, target := range ts {
			// Walk the tree path toward the source, stopping at the first
			// already-recorded edge: the rest of the chain is shared with a
			// previously walked path (tree paths to the source are unique).
			for v := int(target); ; v = t.PrevVert[v] {
				e := t.PrevEdge[v]
				if e < 0 || u[e>>6]&(1<<(uint(e)&63)) != 0 {
					break
				}
				u[e>>6] |= 1 << (uint(e) & 63)
			}
		}
		return
	}
	for _, e := range t.PrevEdge {
		if e >= 0 {
			u[e>>6] |= 1 << (uint(e) & 63)
		}
	}
}

// PathTo answers a single-target query on a tree-kind cache: the
// canonical optimal path from slot's source to target under weight, its
// length (additive distance or bottleneck value, per the kind), and
// whether target is reachable — bit-identical to refreshing the slot's
// tree and reading Tree.PathTo/Tree.Dist, but without materializing a
// tree when the slot is dirty. A fresh tree answers directly; otherwise
// a cached (target, path) entry still clean under the invalidation
// bitsets answers (up to ptCapacity targets are cached per slot, LRU);
// otherwise a single-target search runs — the plain early-exit search,
// or its ALT-pruned / bidirectional form when SetOracle configured one
// — and its result is cached with the path's own edge set. Unreachable
// results are cached with an empty edge set: under monotone weights an
// unreachable target can never become reachable, so the entry stays
// valid until InvalidateAll. Like Refresh, PathTo must be driven from
// one goroutine.
func (inc *Incremental) PathTo(slot, target int, weight WeightFunc) ([]int, float64, bool) {
	if inc.kind == KindHopBounded {
		panic(fmt.Sprintf("pathfind: Incremental.PathTo on a %s cache (tree kinds only)", inc.kind))
	}
	inc.slotDemand[slot]++
	if inc.fresh[slot] {
		t := inc.trees[slot]
		inc.reused++
		inc.ptHits++
		if math.IsInf(t.Dist[target], 1) {
			return nil, math.Inf(1), false
		}
		p, _ := t.PathTo(target)
		return p, t.Dist[target], true
	}
	list := inc.pt[slot]
	for i := range list {
		if list[i].fresh && int(list[i].target) == target {
			en := list[i]
			copy(list[1:i+1], list[:i]) // promote to most-recent
			list[0] = en
			inc.reused++
			inc.ptHits++
			return en.path, en.dist, en.ok
		}
	}
	inc.slotDirty[slot]++
	n := inc.g.NumVertices()
	sc := inc.pool.Get(n)
	var path []int
	var dist float64
	var ok bool
	switch {
	case inc.kind == KindBottleneck:
		if inc.lmUsable(weight) {
			path, dist, ok = sc.BottleneckPathToALT(inc.g, inc.sources[slot], target, weight, inc.lm)
			inc.altSearches++
			inc.altTouched += int64(sc.Touched())
			inc.altBudget += int64(n)
			inc.noteOracleSearch(sc.Touched(), n, weight)
		} else {
			path, dist, ok = sc.BottleneckPathTo(inc.g, inc.sources[slot], target, weight)
		}
	case inc.bidi:
		var lm *Landmarks
		if inc.lmUsable(weight) {
			lm = inc.lm
		}
		sc2 := inc.pool.Get(n)
		var bst bidiStats
		path, dist, ok, bst = bidiPathTo(inc.g, inc.sources[slot], target, weight, lm, sc, sc2)
		inc.pool.Put(sc2)
		inc.bidiProbes++
		if bst.met {
			inc.bidiMeets++
		}
		inc.altSearches++
		inc.altTouched += int64(bst.touched)
		inc.altBudget += int64(n)
		if lm != nil {
			inc.noteOracleSearch(bst.touched, n, weight)
		}
	case inc.lmUsable(weight):
		path, dist, ok = sc.ShortestPathToALT(inc.g, inc.sources[slot], target, weight, inc.lm)
		inc.altSearches++
		inc.altTouched += int64(sc.Touched())
		inc.altBudget += int64(n)
		inc.noteOracleSearch(sc.Touched(), n, weight)
	default:
		path, dist, ok = sc.ShortestPathTo(inc.g, inc.sources[slot], target, weight)
	}
	inc.pool.Put(sc)
	inc.recomputed++
	inc.ptMisses++
	inc.storePath(slot, target, path, dist, ok)
	return path, dist, ok
}

// lmUsable reports whether the landmark tables may prune this query,
// first draining the pending bound checks: every edge invalidated
// since the last drain (the only edges whose weights may have changed,
// per the cache contract) is compared against the build-time lower
// bound, and any violation is handed to lmViolated — which either
// rebuilds the tables in place (keeping the oracle usable) or disables
// them.
func (inc *Incremental) lmUsable(weight WeightFunc) bool {
	if !inc.lmOK || inc.lm == nil {
		return false
	}
	if inc.lmCheckAll {
		inc.lmCheckAll = false
		inc.lmPending = inc.lmPending[:0]
		for e, m := 0, inc.g.NumEdges(); e < m; e++ {
			if weight(e) < inc.lm.lb[e] {
				return inc.lmViolated(weight)
			}
		}
		return true
	}
	if len(inc.lmPending) > 0 {
		for _, e := range inc.lmPending {
			if weight(int(e)) < inc.lm.lb[e] {
				inc.lmPending = inc.lmPending[:0]
				return inc.lmViolated(weight)
			}
		}
		inc.lmPending = inc.lmPending[:0]
	}
	return true
}

// lmViolated reacts to a lower-bound violation. Within the
// StaleViolations budget the tables are rebuilt against the current
// weights — trivially a valid lower bound of themselves, so the oracle
// stays usable and the violation costs one table build; past the
// budget (or with a negative budget) the tables are permanently
// disabled, the historical fail-safe. Either way the violation is
// counted.
func (inc *Incremental) lmViolated(weight WeightFunc) bool {
	inc.lmViolations++
	if inc.lmStaleViol >= 0 && inc.lmViolRebuilds < inc.lmStaleViol {
		inc.lmViolRebuilds++
		inc.rebuildLandmarks(weight)
		return true
	}
	inc.lmOK = false
	return false
}

// rebuildLandmarks re-selects and rebuilds the landmark tables against
// the current weight snapshot (Landmarks.Rebuild — minimax tables
// included iff the old set had them), clears the pending bound checks
// (the new lower bound is the current weights), resets the staleness
// window, and reports the rebuild to the OnRebuild hook.
func (inc *Incremental) rebuildLandmarks(weight WeightFunc) {
	start := time.Now()
	inc.lm = inc.lm.Rebuild(inc.g, weight)
	inc.lmOK = true
	inc.lmCheckAll = false
	inc.lmPending = inc.lmPending[:0]
	inc.lmRebuilds++
	inc.lmFromRebuild = true
	inc.resetLmWindow()
	if inc.onRebuild != nil {
		inc.onRebuild(time.Since(start).Seconds())
	}
}

// noteOracleSearch feeds one landmark-pruned search into the staleness
// window and, at each window boundary, applies the rebuild policy (see
// OracleConfig.StalePruneRatio).
func (inc *Incremental) noteOracleSearch(touched, budget int, weight WeightFunc) {
	if inc.lmStaleRatio < 0 || inc.lm == nil || !inc.lmOK {
		return
	}
	inc.lmWinSearches++
	inc.lmWinTouched += int64(touched)
	inc.lmWinBudget += int64(budget)
	if inc.lmWinSearches < DefaultStaleWindow {
		return
	}
	below := false
	if inc.lmWinBudget > 0 {
		below = 1-float64(inc.lmWinTouched)/float64(inc.lmWinBudget) < inc.lmStaleRatio
	}
	first := inc.lmFromRebuild
	inc.lmFromRebuild = false
	if !below {
		inc.lmBarren = 0 // a clearing window re-arms the prune trigger
	} else if first {
		inc.lmBarren++ // the rebuild didn't restore pruning power
	}
	inc.resetLmWindow()
	if below && inc.lmBarren < maxBarrenRebuilds {
		inc.rebuildLandmarks(weight)
	}
}

// resetLmWindow restarts the staleness window.
func (inc *Incremental) resetLmWindow() {
	inc.lmWinSearches, inc.lmWinTouched, inc.lmWinBudget = 0, 0, 0
}

// storePath caches a single-target answer in the slot's entry list:
// most-recent first, stale entries reclaimed first, then the
// least-recently-used entry evicted once the list is at capacity.
func (inc *Incremental) storePath(slot, target int, path []int, dist float64, ok bool) {
	list := inc.pt[slot]
	victim := -1
	for i := range list {
		if !list[i].fresh {
			victim = i
			break
		}
	}
	if victim < 0 {
		if len(list) < ptCapacity {
			list = append(list, ptEntry{})
			inc.pt[slot] = list
		}
		victim = len(list) - 1
	}
	u := list[victim].uses
	if u == nil {
		u = make([]uint64, inc.words)
	} else {
		for i := range u {
			u[i] = 0
		}
	}
	for _, e := range path {
		u[e>>6] |= 1 << (uint(e) & 63)
	}
	copy(list[1:victim+1], list[:victim])
	list[0] = ptEntry{target: int32(target), fresh: true, ok: ok, dist: dist, path: path, uses: u}
}

// Stats reports how many structures Refresh (and PathTo) rebuilt versus
// served from cache over the cache's lifetime — the observable form of
// the dirty-source speedup.
func (inc *Incremental) Stats() (recomputed, reused int64) {
	return inc.recomputed, inc.reused
}

// Adaptive-policy tuning defaults (overridable per cache through
// OracleConfig). A slot's first DefaultPolicyWarmup demands carry no
// signal, so they default to tree refreshes (the historical behavior);
// after that the slot routes to single-target search when its observed
// dirty rate exceeds DefaultPolicyCostRatio per queried target — the
// point at which rebuilding a whole tree at the observed rate costs
// more than answering each target with a pruned early-exit search (an
// oracle search touches roughly a quarter of the graph or less, hence
// the ratio).
const (
	DefaultPolicyWarmup    = 4
	DefaultPolicyCostRatio = 0.25
)

// Landmark staleness-policy defaults (overridable per cache through
// OracleConfig). The window is small enough that a long-lived session
// notices decay within tens of admits but large enough that one
// unlucky search cannot trigger a rebuild; the default threshold
// rebuilds once pruning saves less than a fifth of the full-tree work
// — the regime where the oracle is barely paying for its bound
// evaluations. A rebuild costs one or two Dijkstras per landmark, so a
// barren-graph guard stops prune-driven rebuilds after
// maxBarrenRebuilds consecutive rebuilds that failed to lift the next
// window back over the threshold.
const (
	DefaultStaleWindow     = 32
	DefaultStalePruneRatio = 0.2
	DefaultStaleViolations = 4
	maxBarrenRebuilds      = 2
)

// PreferSingle is the adaptive refresh policy: it reports whether a
// slot currently fanning out to fanout distinct targets should be
// answered through PathTo single-target searches (true) instead of
// being included in tree Refreshes (false), based on the slot's
// observed dirty rate. Because PathTo is bit-identical to refreshing
// the tree and reading it, either decision returns the same answers —
// the policy only moves work. A fanout of one always routes to
// single-target search (an early-exit search never costs more than the
// full tree build it replaces, and the path cache absorbs clean
// repeats); fan-outs beyond the path-cache capacity always refresh the
// tree. Decisions are counted in CacheStats.
func (inc *Incremental) PreferSingle(slot, fanout int) bool {
	single := inc.preferSingle(slot, fanout)
	if single {
		inc.policySingle++
	} else {
		inc.policyTree++
	}
	return single
}

func (inc *Incremental) preferSingle(slot, fanout int) bool {
	if inc.kind == KindHopBounded || fanout <= 0 || fanout > ptCapacity {
		return false
	}
	if fanout == 1 {
		return true
	}
	demand := inc.slotDemand[slot]
	if demand < inc.policyWarmup {
		return false
	}
	var rate float64
	if demand > 0 { // a no-warm-up cache may be asked before any demand
		rate = float64(inc.slotDirty[slot]) / float64(demand)
	}
	return rate >= inc.policyCostRatio*float64(fanout)
}

// CacheStats is the cache's full observer view: lifetime counters cheap
// enough to read on every scrape. The fields only ever increase; an
// aggregation over several caches (the session manager sums its live
// sessions') may still shrink as caches are dropped, which is why the
// serving stack surfaces them as gauges.
type CacheStats struct {
	// Refreshes counts Refresh calls (solver iterations driving the
	// cache).
	Refreshes int64
	// Recomputed / Reused split the structures (and single-target
	// searches) the cache was asked for into rebuilt-from-scratch versus
	// served-clean — Stats() in struct form.
	Recomputed int64
	Reused     int64
	// PathToHits / PathToMisses split PathTo answers into served from a
	// fresh tree or clean cached path versus answered by an early-exit
	// search.
	PathToHits   int64
	PathToMisses int64
	// AltSearches counts the PathTo misses answered by the configured
	// oracle (ALT-pruned or bidirectional search); AltTouched is how
	// many vertices those searches touched, against AltBudget — the
	// vertices full tree builds would have touched — so
	// 1 - AltTouched/AltBudget is the oracle's observed prune rate.
	AltSearches int64
	AltTouched  int64
	AltBudget   int64
	// BidiProbes / BidiMeets count bidirectional probes and how many of
	// them bridged their forward and backward frontiers (an unbridged
	// probe certifies unreachability).
	BidiProbes int64
	BidiMeets  int64
	// PolicyTree / PolicySingle count PreferSingle's adaptive refresh
	// decisions.
	PolicyTree   int64
	PolicySingle int64
	// LandmarkViolations counts lower-bound violations (zero under the
	// solvers' monotone-price contract); each one either triggered a
	// rebuild or, past the StaleViolations budget, disabled the tables.
	LandmarkViolations int64
	// LandmarkRebuilds counts landmark table rebuilds — prune-ratio- or
	// violation-triggered (see OracleConfig.StalePruneRatio).
	LandmarkRebuilds int64
}

// Add accumulates o's counters into s — the fleet-aggregation helper
// used by the session manager (summing over live sessions) and the
// shard router (summing over backends).
func (s *CacheStats) Add(o CacheStats) {
	s.Refreshes += o.Refreshes
	s.Recomputed += o.Recomputed
	s.Reused += o.Reused
	s.PathToHits += o.PathToHits
	s.PathToMisses += o.PathToMisses
	s.AltSearches += o.AltSearches
	s.AltTouched += o.AltTouched
	s.AltBudget += o.AltBudget
	s.BidiProbes += o.BidiProbes
	s.BidiMeets += o.BidiMeets
	s.PolicyTree += o.PolicyTree
	s.PolicySingle += o.PolicySingle
	s.LandmarkViolations += o.LandmarkViolations
	s.LandmarkRebuilds += o.LandmarkRebuilds
}

// DirtyRatio is the fraction of demanded structures that had to be
// recomputed (0 with no demand): the dirty-source rate the incremental
// design exists to keep small.
func (s CacheStats) DirtyRatio() float64 {
	total := s.Recomputed + s.Reused
	if total == 0 {
		return 0
	}
	return float64(s.Recomputed) / float64(total)
}

// PruneRatio is the fraction of full-tree search work the oracle's
// pruned searches avoided: 1 - AltTouched/AltBudget. It is 0 when no
// oracle search has run and can dip negative if bidirectional probes
// touch more vertices than the tree builds they replace.
func (s CacheStats) PruneRatio() float64 {
	if s.AltBudget == 0 {
		return 0
	}
	return 1 - float64(s.AltTouched)/float64(s.AltBudget)
}

// CacheStats returns the cache's observer counters. Like every other
// read, it must be driven from the cache's single driving goroutine (or
// under the caller's lock serializing against it).
func (inc *Incremental) CacheStats() CacheStats {
	return CacheStats{
		Refreshes:          inc.refreshes,
		Recomputed:         inc.recomputed,
		Reused:             inc.reused,
		PathToHits:         inc.ptHits,
		PathToMisses:       inc.ptMisses,
		AltSearches:        inc.altSearches,
		AltTouched:         inc.altTouched,
		AltBudget:          inc.altBudget,
		BidiProbes:         inc.bidiProbes,
		BidiMeets:          inc.bidiMeets,
		PolicyTree:         inc.policyTree,
		PolicySingle:       inc.policySingle,
		LandmarkViolations: inc.lmViolations,
		LandmarkRebuilds:   inc.lmRebuilds,
	}
}
