package pathfind

import (
	"sync"

	"truthfulufp/internal/graph"
)

// Incremental is a dirty-source shortest-path-tree cache over a fixed
// set of sources. The primal-dual solvers raise prices only on the
// edges of the one path they admit per iteration, so between iterations
// most sources' trees stay optimal; Incremental records which edges
// each cached tree uses and recomputes only the sources whose tree is
// dirtied by an update, dropping the per-iteration cost from
// O(S·(m+n)log n) to O(dirty·(m+n)log n).
//
// Correctness of reusing a clean tree rests on three caller-guaranteed
// invariants, all satisfied by exponential-price primal-dual loops:
//
//  1. Edge weights never decrease between Refresh calls (prices only go
//     up; residual filtering only flips a weight to +Inf).
//  2. Every edge whose weight may have changed is passed to Invalidate
//     before the next Refresh.
//  3. The weight of an edge depends only on that edge's own state.
//
// Under (1)-(3) a cached tree none of whose used edges changed is still
// a shortest-path tree: its own path lengths are unchanged while every
// other path only got longer. Because Dijkstra's tie-break is canonical
// (largest edge ID among optimal predecessor arcs), the reused tree is
// not merely *a* valid answer but bit-identical to what a full
// recomputation would return — the argmin arc set of a clean vertex can
// only lose changed (non-tree) arcs, never its minimum. Solvers built
// on Incremental therefore produce exactly the allocations of their
// full-recompute counterparts.
//
// An Incremental is driven from one goroutine (Refresh parallelizes
// internally); the cached trees are owned by the cache and valid until
// the next Refresh.
type Incremental struct {
	g       *graph.Graph
	pool    *Pool
	sources []int
	slot    map[int]int
	trees   []*Tree
	fresh   []bool     // tree computed and not dirtied since
	uses    [][]uint64 // per-slot bitset over edge IDs used by the tree
	words   int
	// activeStamp/activeGen deduplicate Refresh's active list without
	// allocating (generation-stamped, like Scratch's visited marks).
	activeStamp []uint32
	activeGen   uint32

	recomputed int64 // trees rebuilt by Refresh
	reused     int64 // active trees served from cache
}

// NewIncremental builds a cache for the given source vertices
// (duplicates are collapsed; slot order follows first occurrence). The
// graph is frozen as a side effect so every recomputation runs on the
// CSR fast path. A nil pool gets a private one.
func NewIncremental(g *graph.Graph, sources []int, pool *Pool) *Incremental {
	g.Freeze()
	if pool == nil {
		pool = NewPool()
	}
	inc := &Incremental{
		g:     g,
		pool:  pool,
		slot:  make(map[int]int, len(sources)),
		words: (g.NumEdges() + 63) / 64,
	}
	for _, s := range sources {
		if _, dup := inc.slot[s]; dup {
			continue
		}
		inc.slot[s] = len(inc.sources)
		inc.sources = append(inc.sources, s)
	}
	inc.trees = make([]*Tree, len(inc.sources))
	inc.fresh = make([]bool, len(inc.sources))
	inc.uses = make([][]uint64, len(inc.sources))
	inc.activeStamp = make([]uint32, len(inc.sources))
	return inc
}

// NumSlots returns the number of distinct sources.
func (inc *Incremental) NumSlots() int { return len(inc.sources) }

// Slot returns the slot index of a source vertex.
func (inc *Incremental) Slot(source int) (int, bool) {
	s, ok := inc.slot[source]
	return s, ok
}

// Source returns the source vertex of a slot.
func (inc *Incremental) Source(slot int) int { return inc.sources[slot] }

// Tree returns the cached tree of a slot. It is valid only if the slot
// was active in the latest Refresh (a stale tree of an inactive slot
// reflects older weights).
func (inc *Incremental) Tree(slot int) *Tree { return inc.trees[slot] }

// Invalidate marks dirty every cached tree that uses one of the given
// edges. Callers must report every edge whose weight may have changed.
func (inc *Incremental) Invalidate(edges []int) {
	for s := range inc.fresh {
		if !inc.fresh[s] {
			continue
		}
		u := inc.uses[s]
		for _, e := range edges {
			if u[e>>6]&(1<<(uint(e)&63)) != 0 {
				inc.fresh[s] = false
				break
			}
		}
	}
}

// InvalidateAll marks every cached tree dirty — the full-recompute
// fallback, and the reset to use after any change that violates the
// monotone-weights contract (e.g. swapping in an unrelated weight
// function).
func (inc *Incremental) InvalidateAll() {
	for s := range inc.fresh {
		inc.fresh[s] = false
	}
}

// Refresh brings the trees of the active slots up to date under the
// given weights, recomputing only dirty ones (distributed over up to
// workers goroutines, each with a pooled scratch), and returns how many
// were recomputed. Duplicate active slots are tolerated — they are
// deduplicated here, because handing the same slot to two workers
// would race on its tree.
func (inc *Incremental) Refresh(active []int, weight WeightFunc, workers int) int {
	inc.activeGen++
	if inc.activeGen == 0 { // uint32 wraparound: invalidate stale stamps
		for i := range inc.activeStamp {
			inc.activeStamp[i] = 0
		}
		inc.activeGen = 1
	}
	var work []int
	distinct := 0
	for _, s := range active {
		if inc.activeStamp[s] == inc.activeGen {
			continue
		}
		inc.activeStamp[s] = inc.activeGen
		distinct++
		if !inc.fresh[s] {
			work = append(work, s)
		}
	}
	inc.recomputed += int64(len(work))
	inc.reused += int64(distinct - len(work))
	if len(work) == 0 {
		return 0
	}
	recompute := func(sc *Scratch, s int) {
		inc.trees[s] = sc.Dijkstra(inc.g, inc.sources[s], weight, inc.trees[s])
		inc.rebuildUses(s)
		inc.fresh[s] = true
	}
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		sc := inc.pool.Get(inc.g.NumVertices())
		for _, s := range work {
			recompute(sc, s)
		}
		inc.pool.Put(sc)
		return len(work)
	}
	var wg sync.WaitGroup
	queue := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := inc.pool.Get(inc.g.NumVertices())
			for s := range queue {
				recompute(sc, s)
			}
			inc.pool.Put(sc)
		}()
	}
	for _, s := range work {
		queue <- s
	}
	close(queue)
	wg.Wait()
	return len(work)
}

// rebuildUses records the edge set of slot s's tree.
func (inc *Incremental) rebuildUses(s int) {
	u := inc.uses[s]
	if u == nil {
		u = make([]uint64, inc.words)
		inc.uses[s] = u
	} else {
		for i := range u {
			u[i] = 0
		}
	}
	for _, e := range inc.trees[s].PrevEdge {
		if e >= 0 {
			u[e>>6] |= 1 << (uint(e) & 63)
		}
	}
}

// Stats reports how many trees Refresh rebuilt versus served from cache
// over the cache's lifetime — the observable form of the dirty-source
// speedup.
func (inc *Incremental) Stats() (recomputed, reused int64) {
	return inc.recomputed, inc.reused
}
