package pathfind

import (
	"truthfulufp/internal/graph"
)

// SimplePaths enumerates simple paths (no repeated vertices) from src to
// dst as slices of edge IDs, in DFS order, stopping after limit paths
// (limit <= 0 means no limit). It is used to build the exact path-based
// integer program for small instances; the limit guards against the
// exponential blowup on larger ones. The returned count is exact when it
// is < limit (or limit <= 0); otherwise enumeration was truncated.
func SimplePaths(g *graph.Graph, src, dst, limit int) [][]int {
	if src == dst {
		return nil
	}
	var (
		out     [][]int
		visited = make([]bool, g.NumVertices())
		stack   []int // edge IDs on the current path
	)
	var dfs func(v int) bool // returns false to abort (limit reached)
	dfs = func(v int) bool {
		if v == dst {
			p := make([]int, len(stack))
			copy(p, stack)
			out = append(out, p)
			return limit <= 0 || len(out) < limit
		}
		visited[v] = true
		defer func() { visited[v] = false }()
		for _, a := range g.OutArcs(v) {
			if visited[a.To] || a.To == src {
				continue
			}
			stack = append(stack, a.Edge)
			ok := dfs(a.To)
			stack = stack[:len(stack)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	dfs(src)
	return out
}

// PathWeight sums the weights of the given edges.
func PathWeight(path []int, weight WeightFunc) float64 {
	total := 0.0
	for _, e := range path {
		total += weight(e)
	}
	return total
}

// ValidatePath checks that the edge sequence forms a walk from src to dst
// in g, honoring edge directions in a directed graph.
func ValidatePath(g *graph.Graph, src, dst int, path []int) bool {
	v := src
	for _, id := range path {
		if id < 0 || id >= g.NumEdges() {
			return false
		}
		e := g.Edge(id)
		switch {
		case e.From == v:
			v = e.To
		case !g.Directed() && e.To == v:
			v = e.From
		default:
			return false
		}
	}
	return v == dst
}

// IsSimple reports whether the walk visits no vertex twice.
func IsSimple(g *graph.Graph, src int, path []int) bool {
	seen := map[int]bool{src: true}
	v := src
	for _, id := range path {
		e := g.Edge(id)
		if e.From == v {
			v = e.To
		} else {
			v = e.From
		}
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
