package pathfind

import (
	"math"
	"sync"

	"truthfulufp/internal/graph"
)

// Scratch is the reusable state of one Dijkstra run: an indexed 4-ary
// heap, dist/prev slices, and generation-stamped visited marks so reset
// between runs is O(1) instead of O(n). A Scratch is not safe for
// concurrent use; share scratches across goroutines with a Pool.
//
// The 4-ary layout halves the tree depth of the binary heap that used
// to sit in the solver's innermost loop, trading slightly more sibling
// comparisons (which hit one cache line) for fewer swaps.
type Scratch struct {
	dist  []float64
	prevE []int32
	prevV []int32
	stamp []uint32
	gen   uint32
	order []int32 // vertices reached this run, in first-touch order
	heap  []int32 // 4-ary min-heap of vertices keyed by dist
	pos   []int32 // vertex -> heap index, -1 if absent
	// keys[v] is v's leximax key in bottleneck runs: the weights of v's
	// canonical path, sorted descending (see Bottleneck). dist[v] mirrors
	// keys[v][0] so the heap's hot comparison stays scalar; full keys are
	// consulted only on ties. cand is the candidate-key build buffer.
	keys [][]float64
	cand []float64
	lex  bool // this run orders the heap by leximax keys, not dist alone
	// A*-mode state (see shortestPathToPot): pi[v] is v's potential for
	// this run and fsc[v] = dist[v] + pi[v] the heap key. Potentials are
	// fixed per vertex per run, so fsc only changes when dist does.
	pi    []float64
	fsc   []float64
	astar bool // this run orders the heap by fsc, not dist
}

// NewScratch returns a Scratch sized for graphs with up to n vertices;
// it grows on demand if used on a larger graph.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.grow(n)
	return s
}

// grow ensures capacity for n vertices, preserving generation marks of
// the existing prefix.
func (s *Scratch) grow(n int) {
	if n <= len(s.dist) {
		return
	}
	old := len(s.dist)
	s.dist = append(s.dist, make([]float64, n-old)...)
	s.pi = append(s.pi, make([]float64, n-old)...)
	s.fsc = append(s.fsc, make([]float64, n-old)...)
	s.keys = append(s.keys, make([][]float64, n-old)...)
	s.prevE = append(s.prevE, make([]int32, n-old)...)
	s.prevV = append(s.prevV, make([]int32, n-old)...)
	s.stamp = append(s.stamp, make([]uint32, n-old)...)
	s.pos = append(s.pos, make([]int32, n-old)...)
	for v := old; v < n; v++ {
		s.pos[v] = -1
	}
}

// reset starts a new generation: every vertex becomes unvisited in O(1)
// (amortized — a uint32 wraparound pays one O(n) clear every 2^32 runs).
func (s *Scratch) reset(n int) {
	s.grow(n)
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.order = s.order[:0]
	s.heap = s.heap[:0]
	s.lex = false
	s.astar = false
}

// touch marks v visited this generation and records it for
// materialization.
func (s *Scratch) touch(v int32) {
	s.stamp[v] = s.gen
	s.order = append(s.order, v)
}

// Dijkstra runs shortest paths from src under nonnegative weights,
// reusing the scratch's buffers, and materializes the result into t
// (allocated when nil). Semantics match the package-level Dijkstra —
// including the canonical largest-edge-ID tie-break — with zero
// steady-state allocation when t is reused.
func (s *Scratch) Dijkstra(g *graph.Graph, src int, weight WeightFunc, t *Tree) *Tree {
	n := g.NumVertices()
	s.reset(n)
	s.touch(int32(src))
	s.dist[src] = 0
	s.prevE[src], s.prevV[src] = -1, -1
	s.push(int32(src))
	if csr := g.Frozen(); csr != nil {
		for len(s.heap) > 0 {
			v := s.pop()
			dv := s.dist[v]
			for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
				s.relax(v, csr.EdgeID[k], csr.Head[k], dv, weight)
			}
		}
	} else {
		for len(s.heap) > 0 {
			v := s.pop()
			dv := s.dist[v]
			for _, a := range g.OutArcs(int(v)) {
				s.relax(v, int32(a.Edge), int32(a.To), dv, weight)
			}
		}
	}
	return s.fill(t, src, n)
}

// relax processes one arc v -(e)-> to with dv = dist[v]. Ties on the
// final distance keep the largest edge ID (see Dijkstra).
func (s *Scratch) relax(v, e, to int32, dv float64, weight WeightFunc) {
	w := weight(int(e))
	if math.IsInf(w, 1) {
		return
	}
	nd := dv + w
	if s.stamp[to] != s.gen {
		s.touch(to)
		s.dist[to] = nd
		s.prevE[to], s.prevV[to] = e, v
		s.push(to)
		return
	}
	switch d := s.dist[to]; {
	case nd < d:
		s.dist[to] = nd
		s.prevE[to], s.prevV[to] = e, v
		s.decrease(to)
	case nd == d && e > s.prevE[to]:
		s.prevE[to], s.prevV[to] = e, v
	}
}

// Bottleneck runs the KindBottleneck search from src (see the package-
// level Bottleneck) on the scratch's indexed 4-ary heap and
// generation-stamped marks, materializing into t (allocated when nil);
// it allocates nothing in steady state once its per-vertex key buffers
// have grown to the graph's path lengths.
//
// The search is Dijkstra over the leximax key: a path's key is its edge
// weights sorted descending, compared lexicographically with a shorter
// prefix ranking below its extensions, and among arcs achieving a
// vertex's final key the largest edge ID wins — the canonical tie-break
// shared with the additive Dijkstra. Leximax is the refinement of the
// minimax value (the key's first element, which Tree.Dist reports) that
// makes the canonical tree both well defined and reusable:
//
//   - Appending an edge strictly grows a key, so predecessor keys
//     strictly decrease along every tree path and the canonical tree is
//     acyclic by construction (a pure minimax value-tie retarget can
//     close predecessor cycles).
//   - A vertex's key is monotone non-decreasing under any weight
//     increase — keys keep every weight on the path, so no increase can
//     hide behind a dominating maximum. Scalar secondaries (hop count,
//     weight sum) lack exactly this: worsening a vertex's minimax can
//     shrink its secondary and mint brand-new tie-achievers elsewhere,
//     which is fatal to the Incremental cache's bit-identity contract
//     under target-restricted recording.
func (s *Scratch) Bottleneck(g *graph.Graph, src int, weight WeightFunc, t *Tree) *Tree {
	n := g.NumVertices()
	s.reset(n)
	s.lex = true
	s.touch(int32(src))
	s.dist[src] = math.Inf(-1) // the empty path has no edges: -Inf max
	s.keys[src] = s.keys[src][:0]
	s.prevE[src], s.prevV[src] = -1, -1
	s.push(int32(src))
	if csr := g.Frozen(); csr != nil {
		for len(s.heap) > 0 {
			v := s.pop()
			for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
				s.relaxMax(v, csr.EdgeID[k], csr.Head[k], weight)
			}
		}
	} else {
		for len(s.heap) > 0 {
			v := s.pop()
			for _, a := range g.OutArcs(int(v)) {
				s.relaxMax(v, int32(a.Edge), int32(a.To), weight)
			}
		}
	}
	return s.fill(t, src, n)
}

// lexLess compares two leximax keys (sorted descending); a key that is
// a prefix of another ranks below it.
func lexLess(a, b []float64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func lexEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// relaxMax is relax under the leximax objective: the candidate key is
// keys[v] with w inserted in sorted order, improvements replace the
// key, and full-key ties retarget to the larger edge ID (see
// Bottleneck). The scalar maximum (dist) screens candidates first, so
// full-key work only runs on minimax ties.
func (s *Scratch) relaxMax(v, e, to int32, weight WeightFunc) {
	w := weight(int(e))
	if math.IsInf(w, 1) {
		return
	}
	nd := math.Max(s.dist[v], w)
	if s.stamp[to] == s.gen && nd > s.dist[to] {
		return // scalar screen: candidate max already worse
	}
	// Build the candidate key: keys[v] ∪ {w}, sorted descending.
	kv := s.keys[v]
	s.cand = s.cand[:0]
	inserted := false
	for _, x := range kv {
		if !inserted && w > x {
			s.cand = append(s.cand, w)
			inserted = true
		}
		s.cand = append(s.cand, x)
	}
	if !inserted {
		s.cand = append(s.cand, w)
	}
	if s.stamp[to] != s.gen {
		s.touch(to)
		s.dist[to] = nd
		s.keys[to] = append(s.keys[to][:0], s.cand...)
		s.prevE[to], s.prevV[to] = e, v
		s.push(to)
		return
	}
	switch {
	case nd < s.dist[to] || lexLess(s.cand, s.keys[to]):
		s.dist[to] = nd
		s.keys[to] = append(s.keys[to][:0], s.cand...)
		s.prevE[to], s.prevV[to] = e, v
		s.decrease(to)
	case e > s.prevE[to] && lexEqual(s.cand, s.keys[to]):
		s.prevE[to], s.prevV[to] = e, v
	}
}

// ShortestPathTo answers a single-target query: the canonical shortest
// path from src to dst under nonnegative weights, its distance, and
// whether dst is reachable. It is the early-exit form of Dijkstra — the
// search stops once every vertex at least as close as dst has been
// settled, rather than materializing a whole tree — and its answer is
// bit-identical to s.Dijkstra(...) followed by Tree.PathTo(dst) /
// Tree.Dist[dst]: the largest-edge-ID tie-break of every vertex on the
// path is resolved by relaxations out of vertices no farther than dst,
// all of which have been processed when the search stops. The mechanism
// layer's critical-value bisection runs on this query (via
// Incremental.PathTo) instead of full trees.
func (s *Scratch) ShortestPathTo(g *graph.Graph, src, dst int, weight WeightFunc) ([]int, float64, bool) {
	n := g.NumVertices()
	s.reset(n)
	s.touch(int32(src))
	s.dist[src] = 0
	s.prevE[src], s.prevV[src] = -1, -1
	s.push(int32(src))
	csr := g.Frozen()
	found := false
	var dd float64
	for len(s.heap) > 0 {
		v := s.pop()
		dv := s.dist[v]
		if found && dv > dd {
			break // every relaxation that can reach key <= dist[dst] is done
		}
		if int(v) == dst {
			found, dd = true, dv
		}
		if csr != nil {
			for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
				s.relax(v, csr.EdgeID[k], csr.Head[k], dv, weight)
			}
		} else {
			for _, a := range g.OutArcs(int(v)) {
				s.relax(v, int32(a.Edge), int32(a.To), dv, weight)
			}
		}
	}
	if !found {
		return nil, math.Inf(1), false
	}
	return s.pathOut(src, dst), dd, true
}

// runAdditiveCSR runs a full additive Dijkstra from src over an
// explicit CSR — the forward or reverse adjacency — leaving the result
// in the scratch state (dist/prevE/prevV over s.order) instead of
// materializing a Tree. Tie-break and semantics match Dijkstra.
// Landmark table construction and the backward half of the
// bidirectional probe run on this.
func (s *Scratch) runAdditiveCSR(csr *graph.CSR, n int, src int32, weight WeightFunc) {
	s.reset(n)
	s.touch(src)
	s.dist[src] = 0
	s.prevE[src], s.prevV[src] = -1, -1
	s.push(src)
	for len(s.heap) > 0 {
		v := s.pop()
		dv := s.dist[v]
		for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
			s.relax(v, csr.EdgeID[k], csr.Head[k], dv, weight)
		}
	}
}

// runMinimaxCSR runs a full scalar minimax (bottleneck) Dijkstra from
// src over an explicit CSR, leaving dist in the scratch state. Only the
// distance values matter — the run backs landmark minimax table
// construction, which never reads predecessors — so no leximax keys are
// maintained: the scalar minimax value of a vertex is tie-break
// independent.
func (s *Scratch) runMinimaxCSR(csr *graph.CSR, n int, src int32, weight WeightFunc) {
	s.reset(n)
	s.touch(src)
	s.dist[src] = math.Inf(-1) // the empty path has no edges: -Inf max
	s.prevE[src], s.prevV[src] = -1, -1
	s.push(src)
	for len(s.heap) > 0 {
		v := s.pop()
		dv := s.dist[v]
		for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
			e, to := csr.EdgeID[k], csr.Head[k]
			w := weight(int(e))
			if math.IsInf(w, 1) {
				continue
			}
			nd := math.Max(dv, w)
			if s.stamp[to] != s.gen {
				s.touch(to)
				s.dist[to] = nd
				s.prevE[to], s.prevV[to] = e, v
				s.push(to)
			} else if nd < s.dist[to] {
				s.dist[to] = nd
				s.prevE[to], s.prevV[to] = e, v
				s.decrease(to)
			}
		}
	}
}

// altSlack is the relative slack on the A* stop bound. With a potential
// that is consistent in exact arithmetic, float rounding of the
// potential (differences of accumulated path sums) can overshoot a
// tie-achieving vertex's f-key past dist[dst] by a few ulps; the search
// therefore settles everything with f <= dist[dst]·(1+altSlack) before
// stopping. The extra vertices cannot perturb the answer — an exact-tie
// retarget of a vertex v needs dist[u] + w == dist[v] <= dist[dst] with
// w >= 0, which pins dist[u] <= dist[dst], a vertex both the plain
// early-exit search and the A* search settle — so the slack buys float
// robustness without costing bit-identity.
const altSlack = 1e-12

// relaxA is relax for A* runs: identical tie-break, plus maintenance of
// the fsc heap key and one potential evaluation on first touch.
func (s *Scratch) relaxA(v, e, to int32, dv float64, weight WeightFunc, pot func(int32) float64) {
	w := weight(int(e))
	if math.IsInf(w, 1) {
		return
	}
	nd := dv + w
	if s.stamp[to] != s.gen {
		s.touch(to)
		s.dist[to] = nd
		s.pi[to] = pot(to)
		s.fsc[to] = nd + s.pi[to]
		s.prevE[to], s.prevV[to] = e, v
		s.push(to)
		return
	}
	switch d := s.dist[to]; {
	case nd < d:
		s.dist[to] = nd
		s.fsc[to] = nd + s.pi[to]
		s.prevE[to], s.prevV[to] = e, v
		s.decrease(to)
	case nd == d && e > s.prevE[to]:
		s.prevE[to], s.prevV[to] = e, v
	}
}

// shortestPathToPot is ShortestPathTo guided by a potential: Dijkstra
// ordered by f(v) = dist[v] + pot(v). pot must be consistent w.r.t. the
// weights (pot(u) <= w(u->v) + pot(v) on every arc, up to float
// rounding) with pot(dst) == 0, which makes it an admissible lower
// bound on the remaining distance; then every vertex is settled at
// most once (modulo ulp re-opens, which decrease handles) and the
// search can stop once every f-key at most dist[dst] — every vertex
// that can supply a canonical tie on the returned path — is settled.
// The answer is bit-identical to ShortestPathTo: identical dist values
// (the same float sums along the same paths) and identical
// largest-edge-ID retargets along the path (see altSlack).
func (s *Scratch) shortestPathToPot(g *graph.Graph, src, dst int, weight WeightFunc, pot func(int32) float64) ([]int, float64, bool) {
	n := g.NumVertices()
	s.reset(n)
	s.astar = true
	s.touch(int32(src))
	s.dist[src] = 0
	s.pi[src] = pot(int32(src))
	s.fsc[src] = s.pi[src]
	s.prevE[src], s.prevV[src] = -1, -1
	s.push(int32(src))
	csr := g.Frozen()
	found := false
	var dd, bound float64
	for len(s.heap) > 0 {
		v := s.pop()
		if found && s.fsc[v] > bound {
			break // every f-key that can reach or tie dist[dst] is settled
		}
		dv := s.dist[v]
		if int(v) == dst {
			found, dd = true, dv
			bound = dd * (1 + altSlack)
		}
		if csr != nil {
			for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
				s.relaxA(v, csr.EdgeID[k], csr.Head[k], dv, weight, pot)
			}
		} else {
			for _, a := range g.OutArcs(int(v)) {
				s.relaxA(v, int32(a.Edge), int32(a.To), dv, weight, pot)
			}
		}
	}
	if !found {
		return nil, math.Inf(1), false
	}
	return s.pathOut(src, dst), dd, true
}

// ShortestPathToALT is ShortestPathTo pruned by ALT (A*, landmarks,
// triangle inequality) lower bounds: the landmark tables supply a
// consistent potential that steers the search toward dst and lets it
// stop after settling a fraction of the vertices the plain early-exit
// search would. The landmarks must have been built on a lower bound of
// weight (see BuildLandmarks); under that contract the answer is
// bit-identical to ShortestPathTo. The number of vertices the run
// touched is readable afterwards via Touched.
func (s *Scratch) ShortestPathToALT(g *graph.Graph, src, dst int, weight WeightFunc, lm *Landmarks) ([]int, float64, bool) {
	if lm == nil || lm.K() == 0 {
		return s.ShortestPathTo(g, src, dst, weight)
	}
	return s.shortestPathToPot(g, src, dst, weight, lm.potential(int32(dst)))
}

// Touched reports how many vertices the scratch's last run reached —
// the work profile the oracle metrics aggregate.
func (s *Scratch) Touched() int { return len(s.order) }

// BottleneckPathTo is the KindBottleneck form of ShortestPathTo: the
// canonical minimax path from src to dst, its bottleneck value, and
// whether dst is reachable, bit-identical to s.Bottleneck(...) followed
// by Tree.PathTo(dst) / Tree.Dist[dst]. The leximax key lets it exit
// even earlier than the additive search: every relaxation candidate's
// key strictly exceeds its predecessor's (appending an edge grows the
// key), so every predecessor on dst's path — and every tie the
// canonical tree resolves — is settled before dst itself pops, and the
// search stops at that pop outright.
func (s *Scratch) BottleneckPathTo(g *graph.Graph, src, dst int, weight WeightFunc) ([]int, float64, bool) {
	n := g.NumVertices()
	s.reset(n)
	s.lex = true
	s.touch(int32(src))
	s.dist[src] = math.Inf(-1)
	s.keys[src] = s.keys[src][:0]
	s.prevE[src], s.prevV[src] = -1, -1
	s.push(int32(src))
	csr := g.Frozen()
	for len(s.heap) > 0 {
		v := s.pop()
		if int(v) == dst {
			return s.pathOut(src, dst), s.dist[v], true
		}
		if csr != nil {
			for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
				s.relaxMax(v, csr.EdgeID[k], csr.Head[k], weight)
			}
		} else {
			for _, a := range g.OutArcs(int(v)) {
				s.relaxMax(v, int32(a.Edge), int32(a.To), weight)
			}
		}
	}
	return nil, math.Inf(1), false
}

// relaxMaxA is relaxMax for minimax A* runs: identical candidate-key
// construction and tie-breaks, plus maintenance of the fsc heap key
// fsc[v] = max(dist[v], pi[v]) and one potential evaluation on first
// touch.
func (s *Scratch) relaxMaxA(v, e, to int32, weight WeightFunc, pot func(int32) float64) {
	w := weight(int(e))
	if math.IsInf(w, 1) {
		return
	}
	nd := math.Max(s.dist[v], w)
	if s.stamp[to] == s.gen && nd > s.dist[to] {
		return // scalar screen: candidate max already worse
	}
	kv := s.keys[v]
	s.cand = s.cand[:0]
	inserted := false
	for _, x := range kv {
		if !inserted && w > x {
			s.cand = append(s.cand, w)
			inserted = true
		}
		s.cand = append(s.cand, x)
	}
	if !inserted {
		s.cand = append(s.cand, w)
	}
	if s.stamp[to] != s.gen {
		s.touch(to)
		s.dist[to] = nd
		s.pi[to] = pot(to)
		s.fsc[to] = math.Max(nd, s.pi[to])
		s.keys[to] = append(s.keys[to][:0], s.cand...)
		s.prevE[to], s.prevV[to] = e, v
		s.push(to)
		return
	}
	switch {
	case nd < s.dist[to] || lexLess(s.cand, s.keys[to]):
		s.dist[to] = nd
		s.fsc[to] = math.Max(nd, s.pi[to])
		s.keys[to] = append(s.keys[to][:0], s.cand...)
		s.prevE[to], s.prevV[to] = e, v
		s.decrease(to)
	case e > s.prevE[to] && lexEqual(s.cand, s.keys[to]):
		s.prevE[to], s.prevV[to] = e, v
	}
}

// bottleneckPathToPot is BottleneckPathTo guided by a minimax
// potential: the search orders the heap by f(v) = max(dist[v], pot(v)),
// ties broken by dist then by the full leximax key. pot must be
// consistent under the minimax composition (pot(u) <= max(w(u->v),
// pot(v)) on every arc) and admissible (pot(u) <= the true remaining
// bottleneck value to dst); the landmark tables supply exactly that.
// Unlike the additive A* no float slack is needed — max() never
// synthesizes new float values, so f-keys compare exactly — and the
// search still exits the moment dst pops: f is non-decreasing and the
// leximax key strictly increasing along the canonical path, so every
// predecessor and every tie-supplying relaxation source of the path
// orders strictly before dst under (f, dist, key) and has been settled.
// The answer is bit-identical to BottleneckPathTo.
func (s *Scratch) bottleneckPathToPot(g *graph.Graph, src, dst int, weight WeightFunc, pot func(int32) float64) ([]int, float64, bool) {
	n := g.NumVertices()
	s.reset(n)
	s.lex = true
	s.astar = true
	s.touch(int32(src))
	s.dist[src] = math.Inf(-1)
	s.pi[src] = pot(int32(src))
	s.fsc[src] = s.pi[src]
	s.keys[src] = s.keys[src][:0]
	s.prevE[src], s.prevV[src] = -1, -1
	s.push(int32(src))
	csr := g.Frozen()
	for len(s.heap) > 0 {
		v := s.pop()
		if int(v) == dst {
			return s.pathOut(src, dst), s.dist[v], true
		}
		if csr != nil {
			for k, end := csr.Start[v], csr.Start[v+1]; k < end; k++ {
				s.relaxMaxA(v, csr.EdgeID[k], csr.Head[k], weight, pot)
			}
		} else {
			for _, a := range g.OutArcs(int(v)) {
				s.relaxMaxA(v, int32(a.Edge), int32(a.To), weight, pot)
			}
		}
	}
	return nil, math.Inf(1), false
}

// BottleneckPathToALT is BottleneckPathTo pruned by landmark-derived
// minimax lower bounds: the bottleneck tables (Landmarks.WithBottleneck)
// supply a consistent minimax potential that steers the leximax search
// toward dst. The landmarks must have been built on a lower bound of
// weight; under that contract the answer — path, value, and every
// canonical tie-break — is bit-identical to BottleneckPathTo. Falls
// back to the plain search when lm is nil or lacks the minimax tables.
func (s *Scratch) BottleneckPathToALT(g *graph.Graph, src, dst int, weight WeightFunc, lm *Landmarks) ([]int, float64, bool) {
	if lm == nil || lm.K() == 0 || !lm.HasBottleneck() {
		return s.BottleneckPathTo(g, src, dst, weight)
	}
	return s.bottleneckPathToPot(g, src, dst, weight, lm.bottleneckPotential(int32(dst)))
}

// pathOut materializes the settled prev chain from src to dst as edge
// IDs in path order.
func (s *Scratch) pathOut(src, dst int) []int {
	var rev []int
	for v := dst; v != src; v = int(s.prevV[v]) {
		rev = append(rev, int(s.prevE[v]))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// fill materializes the run into a Tree, reusing t's slices when
// possible.
func (s *Scratch) fill(t *Tree, src, n int) *Tree {
	if t == nil {
		t = &Tree{}
	}
	t.Source = src
	t.Dist = resizeF64(t.Dist, n)
	t.PrevEdge = resizeInt(t.PrevEdge, n)
	t.PrevVert = resizeInt(t.PrevVert, n)
	inf := math.Inf(1)
	for v := 0; v < n; v++ {
		t.Dist[v] = inf
		t.PrevEdge[v] = -1
		t.PrevVert[v] = -1
	}
	for _, v := range s.order {
		t.Dist[v] = s.dist[v]
		t.PrevEdge[v] = int(s.prevE[v])
		t.PrevVert[v] = int(s.prevV[v])
	}
	return t
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// push inserts v (whose priority is dist[v]) into the heap.
func (s *Scratch) push(v int32) {
	s.heap = append(s.heap, v)
	s.pos[v] = int32(len(s.heap) - 1)
	s.up(len(s.heap) - 1)
}

// decrease restores heap order after dist[v] dropped; a finalized
// vertex (possible only with ill-formed negative weights) is re-opened.
func (s *Scratch) decrease(v int32) {
	if i := s.pos[v]; i >= 0 {
		s.up(int(i))
	} else {
		s.push(v)
	}
}

// pop removes and returns the vertex with minimum dist.
func (s *Scratch) pop() int32 {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.pos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.pos[top] = -1
	if last > 0 {
		s.down(0)
	}
	return top
}

// less orders heap entries: by dist, refined by the full leximax keys
// in bottleneck runs (additive runs never read s.keys), or by the
// potential-adjusted fsc key in A* runs (ties fall back to dist so
// nearer vertices settle first; in additive A* any tie order is
// correct — A* with a consistent potential is label-setting regardless
// — but minimax A* runs both astar and lex, and there the final lex
// fall-through is load-bearing: it guarantees every strictly
// lex-smaller label on the canonical path settles before dst pops, so
// the early exit keeps the leximax tie-breaks bit-identical).
func (s *Scratch) less(a, b int32) bool {
	if s.astar {
		fa, fb := s.fsc[a], s.fsc[b]
		if fa != fb {
			return fa < fb
		}
		da, db := s.dist[a], s.dist[b]
		if da != db {
			return da < db
		}
		return s.lex && lexLess(s.keys[a], s.keys[b])
	}
	da, db := s.dist[a], s.dist[b]
	if da != db {
		return da < db
	}
	return s.lex && lexLess(s.keys[a], s.keys[b])
}

func (s *Scratch) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Scratch) down(i int) {
	for {
		first := 4*i + 1
		if first >= len(s.heap) {
			return
		}
		small := i
		end := first + 4
		if end > len(s.heap) {
			end = len(s.heap)
		}
		for c := first; c < end; c++ {
			if s.less(s.heap[c], s.heap[small]) {
				small = c
			}
		}
		if small == i {
			return
		}
		s.swap(i, small)
		i = small
	}
}

func (s *Scratch) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = int32(i)
	s.pos[s.heap[j]] = int32(j)
}

// Pool is a free list of Scratches for concurrent shortest-path
// workers: each worker Gets a scratch, runs any number of searches, and
// Puts it back. The zero value is ready to use; a single Pool may be
// shared by many solves (e.g. one per engine).
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a scratch sized for at least n vertices.
func (p *Pool) Get(n int) *Scratch {
	if s, ok := p.p.Get().(*Scratch); ok {
		s.grow(n)
		return s
	}
	return NewScratch(n)
}

// Put returns a scratch to the pool.
func (p *Pool) Put(s *Scratch) {
	if s != nil {
		p.p.Put(s)
	}
}

// defaultPool backs the package-level Dijkstra convenience entry point.
var defaultPool = NewPool()
