package mcf

import (
	"math"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/workload"
)

func singleEdge(capacity float64, reqs ...core.Request) *core.Instance {
	g := graph.New(2)
	g.AddEdge(0, 1, capacity)
	return &core.Instance{G: g, Requests: reqs}
}

func TestMaxProfitFlowSingleEdge(t *testing.T) {
	// One edge capacity 10, one request with π = v/d = 2: OPT = 20.
	inst := singleEdge(10, core.Request{Source: 0, Target: 1, Demand: 0.5, Value: 1})
	res, err := MaxProfitFlow(inst, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckFeasible(inst); err != nil {
		t.Fatal(err)
	}
	if res.Value < 20*(1-0.35) {
		t.Fatalf("value %g too far below OPT 20", res.Value)
	}
	if res.UpperBound < 20*(1-1e-9) {
		t.Fatalf("upper bound %g below OPT 20", res.UpperBound)
	}
	if res.Value > res.UpperBound+1e-9 {
		t.Fatalf("value %g exceeds its own upper bound %g", res.Value, res.UpperBound)
	}
}

func TestMaxProfitFlowPrefersProfitable(t *testing.T) {
	// Two requests share an edge; profits 3 and 1. Nearly all capacity
	// should go to the profitable one.
	inst := singleEdge(10,
		core.Request{Source: 0, Target: 1, Demand: 1, Value: 3},
		core.Request{Source: 0, Target: 1, Demand: 1, Value: 1},
	)
	res, err := MaxProfitFlow(inst, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	flowByReq := map[int]float64{}
	for _, p := range res.Paths {
		flowByReq[p.Request] += p.Flow
	}
	if flowByReq[0] < 5*flowByReq[1] {
		t.Fatalf("profitable request got %g vs %g", flowByReq[0], flowByReq[1])
	}
}

func TestMaxProfitFlowMatchesSimplex(t *testing.T) {
	// Cross-validate against the exact LP (uncapped relaxation) on small
	// random instances: (1-3ε)·LP <= GK <= LP <= UpperBound.
	cfg := workload.UFPConfig{
		Vertices: 5, Edges: 10, Requests: 5, Directed: true,
		B: 2, CapSpread: 0.5,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	const eps = 0.1
	for seed := uint64(0); seed < 6; seed++ {
		inst, err := workload.RandomUFP(workload.NewRNG(seed+10), cfg)
		if err != nil {
			t.Fatal(err)
		}
		frac, err := core.FractionalUFP(inst, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MaxProfitFlow(inst, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckFeasible(inst); err != nil {
			t.Fatal(err)
		}
		if res.Value > frac.Objective*(1+1e-6) {
			t.Fatalf("seed %d: GK value %g exceeds LP optimum %g", seed, res.Value, frac.Objective)
		}
		if res.UpperBound < frac.Objective*(1-1e-6) {
			t.Fatalf("seed %d: GK upper bound %g below LP optimum %g", seed, res.UpperBound, frac.Objective)
		}
		if res.Value < frac.Objective*(1-4*eps) {
			t.Fatalf("seed %d: GK value %g below (1-4ε)·LP = %g", seed, res.Value, frac.Objective*(1-4*eps))
		}
	}
}

func TestMaxProfitFlowDiamondSplits(t *testing.T) {
	// Diamond, capacity 5 everywhere, one request with huge value: both
	// paths should carry flow, total ~10 demand units.
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 3, 5)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 5)
	inst := &core.Instance{G: g, Requests: []core.Request{
		{Source: 0, Target: 3, Demand: 1, Value: 10},
	}}
	res, err := MaxProfitFlow(inst, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range res.Paths {
		total += p.Flow
	}
	if total < 10*(1-0.35) {
		t.Fatalf("total flow %g, want near 10", total)
	}
}

func TestMaxProfitFlowUnroutable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 2)
	inst := &core.Instance{G: g, Requests: []core.Request{
		{Source: 1, Target: 2, Demand: 1, Value: 1}, // vertex 2 unreachable
	}}
	res, err := MaxProfitFlow(inst, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 || res.UpperBound != 0 {
		t.Fatalf("unroutable instance: value %g bound %g, want 0, 0", res.Value, res.UpperBound)
	}
}

func TestMaxProfitFlowEpsValidation(t *testing.T) {
	inst := singleEdge(2, core.Request{Source: 0, Target: 1, Demand: 1, Value: 1})
	for _, eps := range []float64{0, -0.1, 0.6, math.NaN()} {
		if _, err := MaxProfitFlow(inst, eps); err == nil {
			t.Errorf("eps = %g accepted", eps)
		}
	}
}

func TestMaxProfitFlowEmptyInstance(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 2)
	res, err := MaxProfitFlow(&core.Instance{G: g}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("empty instance value %g", res.Value)
	}
}
