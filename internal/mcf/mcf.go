// Package mcf implements a Garg–Könemann style fully polynomial
// approximation scheme for maximum-profit fractional multicommodity flow
// — the fractional counterpart of the unsplittable flow problem (the LP
// of the paper's Figure 5). The paper cites this line of combinatorial
// (1+ε) algorithms (Garg–Könemann FOCS'98, Fleischer FOCS'99) as the
// reason one might (wrongly) expect a monotone PTAS for the integral
// problem; here it serves as the scalable fractional reference solver
// alongside the exact simplex formulation.
//
// The LP solved is
//
//	max Σ_paths π_r · g_p   s.t.  Σ_{p ∋ e} g_p <= c_e,  g >= 0,
//
// where g_p is flow in demand units and π_r = v_r/d_r is the per-unit
// profit of the request owning path p. Requests have no per-request cap
// (repetitions allowed), exactly Figure 5's relaxation.
package mcf

import (
	"context"
	"fmt"
	"math"

	"truthfulufp/internal/core"
	"truthfulufp/internal/pathfind"
)

// RoutedFlow is one path of the fractional solution with its flow in
// demand units (after feasibility scaling).
type RoutedFlow struct {
	Request int
	Path    []int
	Flow    float64
}

// Result is the outcome of MaxProfitFlow. Value <= OPT <= UpperBound is
// certified: Value is attained by the returned feasible flow, and
// UpperBound is the value of a feasible dual solution.
type Result struct {
	Value      float64
	UpperBound float64
	Paths      []RoutedFlow
	Iterations int
}

// MaxProfitFlow runs the Garg–Könemann scheme with accuracy eps in
// (0, 1/2]. Edge prices start at δ/c_e with the standard
// δ = (1+ε)·((1+ε)·n)^{-1/ε}; while some request has a path whose price
// is below its per-unit profit, the cheapest such path receives its
// bottleneck capacity of flow and its edges' prices inflate by
// (1+ε·c_min/c_e). The accumulated flow is then scaled down by its worst
// edge overload, which guarantees feasibility independent of the
// analysis constants; the classic analysis gives Value >= (1-3ε)·OPT.
func MaxProfitFlow(inst *core.Instance, eps float64) (*Result, error) {
	return MaxProfitFlowCtx(context.Background(), inst, eps, 0)
}

// MaxProfitFlowCtx is MaxProfitFlow with cancellation checked once per
// augmentation and an explicit iteration cap: maxIter <= 0 keeps the
// scheme's own 4·m·log_{1+ε}((1+ε)/δ) bound, a positive value
// truncates below it (the flow stays feasible — scaling is independent
// of how many augmentations ran — only the (1-3ε) guarantee needs the
// full count).
func MaxProfitFlowCtx(ctx context.Context, inst *core.Instance, eps float64, maxIter int) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !(eps > 0) || eps > 0.5 {
		return nil, errInvalidEps(eps)
	}
	g := inst.G
	m := g.NumEdges()
	n := g.NumVertices()
	if m == 0 || len(inst.Requests) == 0 {
		return &Result{}, nil
	}
	delta := (1 + eps) * math.Pow((1+eps)*float64(n), -1/eps)
	y := make([]float64, m)
	for e := 0; e < m; e++ {
		y[e] = delta / g.Edge(e).Capacity
	}
	load := make([]float64, m)
	profit := make([]float64, len(inst.Requests))
	for i, r := range inst.Requests {
		profit[i] = r.Value / r.Demand
	}
	res := &Result{UpperBound: math.Inf(1)}
	type rawPath struct {
		request int
		path    []int
		flow    float64
	}
	var raw []rawPath
	weight := pathfind.FromSlice(y)
	// Group requests by source to share Dijkstra trees.
	bySource := map[int][]int{}
	for i, r := range inst.Requests {
		bySource[r.Source] = append(bySource[r.Source], i)
	}
	if bound := 4 * m * int(math.Ceil(math.Log((1+eps)/delta)/math.Log(1+eps))); maxIter <= 0 || maxIter > bound {
		maxIter = bound
	}
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Find the request and path minimizing price/profit.
		bestRatio := math.Inf(1)
		bestReq := -1
		var bestTree *pathfind.Tree
		for src, reqs := range bySource {
			tree := pathfind.Dijkstra(g, src, weight)
			for _, i := range reqs {
				dist := tree.Dist[inst.Requests[i].Target]
				if math.IsInf(dist, 1) {
					continue
				}
				if ratio := dist / profit[i]; ratio < bestRatio {
					bestRatio = ratio
					bestReq = i
					bestTree = tree
				}
			}
		}
		if bestReq < 0 {
			break // nothing routable at all
		}
		// Dual fitting: y/bestRatio satisfies every constraint, so
		// D(y)/bestRatio bounds OPT.
		dual := 0.0
		for e := 0; e < m; e++ {
			dual += g.Edge(e).Capacity * y[e]
		}
		if bound := dual / bestRatio; bound < res.UpperBound {
			res.UpperBound = bound
		}
		if bestRatio >= 1 {
			break // dual feasible: done
		}
		path, _ := bestTree.PathTo(inst.Requests[bestReq].Target)
		cMin := math.Inf(1)
		for _, e := range path {
			if c := g.Edge(e).Capacity; c < cMin {
				cMin = c
			}
		}
		for _, e := range path {
			c := g.Edge(e).Capacity
			load[e] += cMin
			y[e] *= 1 + eps*cMin/c
		}
		raw = append(raw, rawPath{bestReq, path, cMin})
		res.Iterations++
	}
	// Scale by the worst overload so the flow is feasible exactly.
	scale := 1.0
	for e := 0; e < m; e++ {
		if f := load[e] / g.Edge(e).Capacity; f > scale {
			scale = f
		}
	}
	for _, rp := range raw {
		f := rp.flow / scale
		res.Paths = append(res.Paths, RoutedFlow{Request: rp.request, Path: rp.path, Flow: f})
		res.Value += f * profit[rp.request]
	}
	if math.IsInf(res.UpperBound, 1) && len(raw) == 0 {
		// No request is routable at all: the optimum is zero.
		res.UpperBound = 0
	}
	return res, nil
}

// Allocation maps the fractional result onto the registry's common
// allocation shape: one Routed entry per augmenting path (requests
// repeat, like the Repeat variants), Value the scaled fractional
// profit, DualBound the certified LP upper bound. Per-path flow
// amounts have no slot in core.Routed, so the allocation is the
// solution's support plus its certified value, not a reconstruction.
func (r *Result) Allocation() *core.Allocation {
	a := &core.Allocation{
		Value:      r.Value,
		Iterations: r.Iterations,
		DualBound:  r.UpperBound,
		Stop:       core.StopDualThreshold,
	}
	if len(r.Paths) == 0 {
		a.Stop = core.StopNoRoutablePath
	}
	for _, p := range r.Paths {
		a.Routed = append(a.Routed, core.Routed{Request: p.Request, Path: p.Path})
	}
	return a
}

// EdgeLoads returns the per-edge flow of the scaled solution.
func (r *Result) EdgeLoads(inst *core.Instance) []float64 {
	load := make([]float64, inst.G.NumEdges())
	for _, p := range r.Paths {
		for _, e := range p.Path {
			load[e] += p.Flow
		}
	}
	return load
}

// CheckFeasible verifies the scaled flow against edge capacities.
func (r *Result) CheckFeasible(inst *core.Instance) error {
	for e, f := range r.EdgeLoads(inst) {
		if c := inst.G.Edge(e).Capacity; f > c*(1+1e-9)+1e-9 {
			return errOverload(e, f, c)
		}
	}
	return nil
}

func errInvalidEps(eps float64) error {
	return fmt.Errorf("mcf: accuracy parameter must be in (0, 0.5], got %g", eps)
}

func errOverload(e int, load, c float64) error {
	return fmt.Errorf("mcf: edge %d overloaded: %g > %g", e, load, c)
}
