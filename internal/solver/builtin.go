package solver

import (
	"context"
	"fmt"
	"math/rand/v2"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/mcf"
	"truthfulufp/internal/mechanism"
)

// funcSolver adapts a function plus metadata into a Solver.
type funcSolver struct {
	name     string
	kind     Kind
	desc     string
	usesEps  bool
	usesSeed bool
	// ignoresMaxIter marks single-pass algorithms with no main loop to
	// cap (the zero value keeps the default "uses it").
	ignoresMaxIter bool
	// defaultMaxIter, if positive, replaces a zero Params.MaxIterations
	// before dispatch — the per-solver default cap reported by
	// DefaultMaxIterations (the pseudo-polynomial repeat variants use it
	// so a capless registry job cannot run away).
	defaultMaxIter int
	fn             func(ctx context.Context, in Input, p Params) (Output, error)
}

func (s *funcSolver) Name() string              { return s.name }
func (s *funcSolver) Kind() Kind                { return s.kind }
func (s *funcSolver) Description() string       { return s.desc }
func (s *funcSolver) UsesEps() bool             { return s.usesEps }
func (s *funcSolver) UsesSeed() bool            { return s.usesSeed }
func (s *funcSolver) UsesMaxIterations() bool   { return !s.ignoresMaxIter }
func (s *funcSolver) DefaultMaxIterations() int { return s.defaultMaxIter }

func (s *funcSolver) Solve(ctx context.Context, in Input, p Params) (Output, error) {
	if err := checkInput(s, in); err != nil {
		return Output{}, err
	}
	if p.MaxIterations <= 0 && s.defaultMaxIter > 0 {
		// Non-positive means "uncapped" to the algorithms, so a negative
		// value must not sneak past the default that keeps the registry
		// surface safe from pseudo-polynomial runaways.
		p.MaxIterations = s.defaultMaxIter
	}
	return s.fn(ctx, in, p)
}

// checkInput verifies that exactly the instance field matching the
// solver's kind is set, so misrouted jobs fail with a diagnosis instead
// of a nil dereference.
func checkInput(s Solver, in Input) error {
	if s.Kind().IsUFP() {
		if in.UFP == nil {
			return fmt.Errorf("solver: %s needs a UFP instance", s.Name())
		}
		if in.Auction != nil {
			return fmt.Errorf("solver: %s must not carry an auction instance", s.Name())
		}
		return nil
	}
	if in.Auction == nil {
		return fmt.Errorf("solver: %s needs an auction instance", s.Name())
	}
	if in.UFP != nil {
		return fmt.Errorf("solver: %s must not carry a UFP instance", s.Name())
	}
	return nil
}

// ufpAlloc lifts a context-first UFP entry point into a solver body.
func ufpAlloc(fn func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error)) func(context.Context, Input, Params) (Output, error) {
	return func(ctx context.Context, in Input, p Params) (Output, error) {
		a, err := fn(ctx, in.UFP, p)
		if err != nil {
			return Output{}, err
		}
		return Output{Allocation: a}, nil
	}
}

// The built-in registry: every algorithm of the repo, by stable name.
// Names align with the engine's legacy Kind strings where those existed,
// so pre-v1 job kinds resolve to the same execution.
func init() {
	Register(&funcSolver{
		name: "ufp/solve", kind: KindUFP, usesEps: true,
		desc: "Bounded-UFP at the Theorem 3.1 convention (ε/6): monotone ((1+ε)·e/(e-1))-approximation",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			return core.SolveUFPCtx(ctx, inst, p.Eps, p.ufpOptions())
		}),
	})
	Register(&funcSolver{
		name: "ufp/bounded", kind: KindUFP, usesEps: true,
		desc: "Bounded-UFP (Algorithm 1) with the raw accuracy parameter",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			return core.BoundedUFPCtx(ctx, inst, p.Eps, p.ufpOptions())
		}),
	})
	Register(&funcSolver{
		name: "ufp/repeat", kind: KindUFP, usesEps: true, defaultMaxIter: DefaultRepeatMaxIterations,
		desc: "Bounded-UFP-Repeat at the Theorem 5.1 convention (ε/6): (1+ε)-approximation with repetitions",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			return core.SolveUFPRepeatCtx(ctx, inst, p.Eps, p.ufpOptions())
		}),
	})
	Register(&funcSolver{
		name: "ufp/repeat-bounded", kind: KindUFP, usesEps: true, defaultMaxIter: DefaultRepeatMaxIterations,
		desc: "Bounded-UFP-Repeat (Algorithm 3) with the raw accuracy parameter",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			return core.BoundedUFPRepeatCtx(ctx, inst, p.Eps, p.ufpOptions())
		}),
	})
	Register(&funcSolver{
		name: "ufp/sequential", kind: KindUFP, usesEps: true, ignoresMaxIter: true,
		desc: "sequential primal-dual baseline (prior-art ≈e style), also monotone",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			return core.SequentialPrimalDualCtx(ctx, inst, p.Eps, p.ufpOptions())
		}),
	})
	Register(&funcSolver{
		name: "ufp/online", kind: KindUFP, usesEps: true, ignoresMaxIter: true,
		desc: "online admission rule (pure-price routing + residual post-check): the batch spelling of the session layer's streamed admits",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			return core.OnlineAdmissionCtx(ctx, inst, p.Eps, p.ufpOptions())
		}),
	})
	Register(&funcSolver{
		name: "ufp/greedy", kind: KindUFP, usesEps: false, ignoresMaxIter: true,
		desc: "value-density greedy baseline (ε ignored)",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			return core.GreedyByDensityCtx(ctx, inst, p.ufpOptions())
		}),
	})
	Register(&funcSolver{
		name: "ufp/rounding", kind: KindUFP, usesEps: false, usesSeed: true, ignoresMaxIter: true,
		desc: "randomized LP rounding baseline (non-monotone; deterministic per Params.Seed; ε ignored)",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			rng := rand.New(rand.NewPCG(p.Seed, 0))
			return core.RandomizedRoundingCtx(ctx, inst, rng, core.RoundingOptions{})
		}),
	})
	Register(&funcSolver{
		name: "ufp/fractional-gk", kind: KindUFP, usesEps: true,
		desc: "Garg–Könemann fractional max-profit flow (the Figure 5 LP relaxation): certified (1-3ε) lower and dual upper bound; ε in (0, 1/2]",
		fn: ufpAlloc(func(ctx context.Context, inst *core.Instance, p Params) (*core.Allocation, error) {
			res, err := mcf.MaxProfitFlowCtx(ctx, inst, p.Eps, p.MaxIterations)
			if err != nil {
				return nil, err
			}
			return res.Allocation(), nil
		}),
	})
	Register(&funcSolver{
		name: "ufp/mechanism", kind: KindUFPMechanism, usesEps: true,
		desc: "truthful UFP mechanism (Corollary 3.2): Bounded-UFP(ε) + critical-value payments",
		fn: func(ctx context.Context, in Input, p Params) (Output, error) {
			alg := mechanism.BoundedUFPAlgCtx(ctx, p.Eps, p.ufpOptions())
			out, err := mechanism.RunUFPMechanismCtx(ctx, alg, in.UFP)
			if err != nil {
				return Output{}, err
			}
			return Output{UFPOutcome: out}, nil
		},
	})
	Register(&funcSolver{
		name: "muca/solve", kind: KindAuction, usesEps: true,
		desc: "Bounded-MUCA at the Theorem 4.1 convention (ε/6)",
		fn: func(ctx context.Context, in Input, p Params) (Output, error) {
			a, err := auction.SolveMUCACtx(ctx, in.Auction, p.Eps, p.auctionOptions())
			if err != nil {
				return Output{}, err
			}
			return Output{AuctionAllocation: a}, nil
		},
	})
	Register(&funcSolver{
		name: "muca/bounded", kind: KindAuction, usesEps: true,
		desc: "Bounded-MUCA (Algorithm 2) with the raw accuracy parameter",
		fn: func(ctx context.Context, in Input, p Params) (Output, error) {
			a, err := auction.BoundedMUCACtx(ctx, in.Auction, p.Eps, p.auctionOptions())
			if err != nil {
				return Output{}, err
			}
			return Output{AuctionAllocation: a}, nil
		},
	})
	Register(&funcSolver{
		name: "muca/mechanism", kind: KindAuctionMechanism, usesEps: true,
		desc: "truthful MUCA mechanism (Corollary 4.2): Bounded-MUCA(ε) + critical-value payments",
		fn: func(ctx context.Context, in Input, p Params) (Output, error) {
			alg := mechanism.BoundedMUCAAlgCtx(ctx, p.Eps, p.auctionOptions())
			out, err := mechanism.RunAuctionMechanismCtx(ctx, alg, in.Auction)
			if err != nil {
				return Output{}, err
			}
			return Output{AuctionOutcome: out}, nil
		},
	})
}
