// Package solver is the v1 algorithm registry: one Solver abstraction
// over the paper's family of interchangeable allocation rules —
// Bounded-UFP and its repeated variant (Theorems 3.1/5.1), Bounded-MUCA
// (Theorem 4.1), their critical-value mechanisms (Corollaries 3.2/4.2),
// and the baselines they are measured against. Every algorithm is
// registered under a stable name ("ufp/solve", "muca/mechanism", ...)
// and parameterized by one unified Params struct, so adding an algorithm
// is a single Register call that immediately surfaces it in the solve
// engine (engine.Job.Algorithm), ufpserve's /v1 endpoints, and the
// -alg flags of ufprun, aucrun, and ufpbench.
//
// All dispatch is context-first: Solve(ctx, in, p) threads ctx into the
// algorithms' *Ctx entry points, so a done context abandons the run at
// the next main-loop iteration check.
package solver

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/mechanism"
	"truthfulufp/internal/pathfind"
)

// Kind classifies a solver's input and output shape.
type Kind string

// Solver kinds.
const (
	// KindUFP consumes a UFP instance and yields Output.Allocation.
	KindUFP Kind = "ufp"
	// KindUFPMechanism consumes a UFP instance and yields
	// Output.UFPOutcome (allocation + critical-value payments).
	KindUFPMechanism Kind = "ufp-mechanism"
	// KindAuction consumes an auction instance and yields
	// Output.AuctionAllocation.
	KindAuction Kind = "auction"
	// KindAuctionMechanism consumes an auction instance and yields
	// Output.AuctionOutcome.
	KindAuctionMechanism Kind = "auction-mechanism"
)

// IsUFP reports whether the kind consumes a UFP instance (as opposed to
// an auction instance).
func (k Kind) IsUFP() bool { return k == KindUFP || k == KindUFPMechanism }

// IsMechanism reports whether the kind yields a mechanism outcome
// (allocation plus payments) rather than a bare allocation.
func (k Kind) IsMechanism() bool { return k == KindUFPMechanism || k == KindAuctionMechanism }

// Input carries the instance a solver consumes. Exactly the field
// matching the solver's Kind must be set; instances must not be mutated
// while a solve is running.
type Input struct {
	UFP     *core.Instance
	Auction *auction.Instance
}

// Params is the unified v1 parameter block. The zero value is ready to
// use for every solver; fields a solver does not consume are ignored
// (e.g. Eps by "ufp/greedy", Seed by everything but "ufp/rounding").
type Params struct {
	// Eps is the accuracy parameter ε in (0,1]. The */solve names apply
	// their theorem's ε/6 convention internally; the */bounded names use
	// it raw.
	Eps float64
	// Workers bounds intra-solve parallelism (0 = GOMAXPROCS).
	Workers int
	// TieBreak overrides UFP candidate tie-breaking (see core.TieBreak).
	TieBreak core.TieBreak
	// AuctionTie overrides auction tie-breaking (see auction.Options.Tie).
	AuctionTie func(a, b int) bool
	// MaxIterations caps iterative main loops (0 = unlimited).
	MaxIterations int
	// NoIncremental disables the incremental caches (dirty-source
	// shortest-path trees, dirty-request bundle sums); results are
	// identical either way.
	NoIncremental bool
	// PathPool, if non-nil, supplies shared Dijkstra scratch buffers
	// (see pathfind.Pool); the engine passes its per-process pool here.
	PathPool *pathfind.Pool
	// Seed derives the RNG of randomized solvers ("ufp/rounding" uses
	// rand.New(rand.NewPCG(Seed, 0))), making them deterministic per seed.
	Seed uint64
}

// ufpOptions lowers Params onto core.Options.
func (p Params) ufpOptions() *core.Options {
	return &core.Options{
		Workers:       p.Workers,
		TieBreak:      p.TieBreak,
		MaxIterations: p.MaxIterations,
		NoIncremental: p.NoIncremental,
		PathPool:      p.PathPool,
	}
}

// auctionOptions lowers Params onto auction.Options.
func (p Params) auctionOptions() *auction.Options {
	return &auction.Options{
		Tie:           p.AuctionTie,
		MaxIterations: p.MaxIterations,
		NoIncremental: p.NoIncremental,
	}
}

// Output is a solve result. Exactly the field matching the solver's
// Kind is set. Outputs may be shared (the engine caches them), so treat
// them as immutable.
type Output struct {
	Allocation        *core.Allocation
	AuctionAllocation *auction.Allocation
	UFPOutcome        *mechanism.UFPOutcome
	AuctionOutcome    *mechanism.AuctionOutcome
}

// Solver is one registered allocation algorithm. Implementations must be
// safe for concurrent use and pure functions of (in, p): the engine
// coalesces and caches by (name, instance, parameters) on that
// assumption.
type Solver interface {
	// Name is the stable registry name ("ufp/solve", ...).
	Name() string
	// Kind classifies input/output shape.
	Kind() Kind
	// Solve runs the algorithm under ctx.
	Solve(ctx context.Context, in Input, p Params) (Output, error)
}

// Optional Solver extensions, read through the package helpers below.
type (
	describer       interface{ Description() string }
	epsUser         interface{ UsesEps() bool }
	seedUser        interface{ UsesSeed() bool }
	maxIterUser     interface{ UsesMaxIterations() bool }
	maxIterDefaults interface{ DefaultMaxIterations() int }
)

// DefaultRepeatMaxIterations is the main-loop cap the repeat-variant
// solvers ("ufp/repeat", "ufp/repeat-bounded") apply when
// Params.MaxIterations is zero. Their iteration count is
// pseudo-polynomial — bounded only by m·c_max/d_min — so an uncapped
// registry-dispatched job (an HTTP request, a CLI run with no flag)
// could monopolize a worker for millions of iterations; the default
// keeps the registry surface safe by construction. Callers wanting a
// longer run pass an explicit Params.MaxIterations; the direct entry
// points (core.SolveUFPRepeat, ...) keep zero = unlimited.
const DefaultRepeatMaxIterations = 10000

// Description returns the solver's one-line description, or "" if it
// does not provide one.
func Description(s Solver) string {
	if d, ok := s.(describer); ok {
		return d.Description()
	}
	return ""
}

// UsesEps reports whether the solver's output depends on Params.Eps
// (true unless the solver says otherwise). The engine normalizes ε out
// of cache keys for solvers that ignore it.
func UsesEps(s Solver) bool {
	if u, ok := s.(epsUser); ok {
		return u.UsesEps()
	}
	return true
}

// UsesSeed reports whether the solver's output depends on Params.Seed
// (false unless the solver says otherwise).
func UsesSeed(s Solver) bool {
	if u, ok := s.(seedUser); ok {
		return u.UsesSeed()
	}
	return false
}

// UsesMaxIterations reports whether the solver's output depends on
// Params.MaxIterations (true unless the solver says otherwise —
// single-pass algorithms opt out so all caps share one execution).
func UsesMaxIterations(s Solver) bool {
	if u, ok := s.(maxIterUser); ok {
		return u.UsesMaxIterations()
	}
	return true
}

// DefaultMaxIterations returns the main-loop cap the solver applies
// when Params.MaxIterations is zero, or 0 if zero means unlimited (the
// default). The engine normalizes a zero cap to this value in cache
// keys, so the explicit and defaulted spellings share one execution,
// and ufpserve reports it per algorithm on /v1/algorithms.
func DefaultMaxIterations(s Solver) int {
	if d, ok := s.(maxIterDefaults); ok {
		return d.DefaultMaxIterations()
	}
	return 0
}

// registry is the process-wide solver table. Built-ins register during
// package init; callers may Register more at any time.
var (
	mu       sync.RWMutex
	registry = make(map[string]Solver)
)

// Register adds a solver under its Name. It panics on an empty name or
// a duplicate registration: names are API surface (HTTP routes, CLI
// flags, cache keys), so a collision is a programming error, caught
// loudly at startup rather than resolved silently.
func Register(s Solver) {
	name := s.Name()
	if name == "" {
		panic("solver: Register with an empty name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solver: duplicate registration of %q", name))
	}
	registry[name] = s
}

// Lookup returns the solver registered under name.
func Lookup(name string) (Solver, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Solvers returns every registered solver, sorted by name.
func Solvers() []Solver {
	mu.RLock()
	out := make([]Solver, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns every registered name, sorted.
func Names() []string {
	solvers := Solvers()
	names := make([]string, len(solvers))
	for i, s := range solvers {
		names[i] = s.Name()
	}
	return names
}
