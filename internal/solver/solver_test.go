package solver_test

import (
	"context"
	"strings"
	"testing"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/solver"
)

// The builtin catalog the v1 API promises: every algorithm of the
// module, by stable name. The acceptance floor is 10; this golden list
// keeps names from drifting silently.
var wantBuiltins = []string{
	"muca/bounded",
	"muca/mechanism",
	"muca/solve",
	"ufp/bounded",
	"ufp/fractional-gk",
	"ufp/greedy",
	"ufp/mechanism",
	"ufp/repeat",
	"ufp/repeat-bounded",
	"ufp/rounding",
	"ufp/sequential",
	"ufp/solve",
}

func TestBuiltinCatalog(t *testing.T) {
	names := solver.Names()
	if len(names) < 10 {
		t.Fatalf("registry holds %d solvers, want >= 10: %v", len(names), names)
	}
	got := make(map[string]bool, len(names))
	for _, n := range names {
		got[n] = true
	}
	for _, want := range wantBuiltins {
		if !got[want] {
			t.Errorf("builtin %q is not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted/unique: %v", names)
		}
	}
}

func TestLookupAndKinds(t *testing.T) {
	kinds := map[string]solver.Kind{
		"ufp/solve":      solver.KindUFP,
		"ufp/rounding":   solver.KindUFP,
		"ufp/mechanism":  solver.KindUFPMechanism,
		"muca/solve":     solver.KindAuction,
		"muca/mechanism": solver.KindAuctionMechanism,
	}
	for name, kind := range kinds {
		s, ok := solver.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", name)
		}
		if s.Name() != name || s.Kind() != kind {
			t.Fatalf("Lookup(%q) = (%q, %q), want kind %q", name, s.Name(), s.Kind(), kind)
		}
		if solver.Description(s) == "" {
			t.Errorf("builtin %q has no description", name)
		}
	}
	if _, ok := solver.Lookup("ufp/nonexistent"); ok {
		t.Fatal("Lookup invented a solver")
	}
	if !solver.KindUFP.IsUFP() || !solver.KindUFPMechanism.IsUFP() || solver.KindAuction.IsUFP() {
		t.Fatal("Kind.IsUFP misclassifies")
	}
	if !solver.KindUFPMechanism.IsMechanism() || solver.KindUFP.IsMechanism() {
		t.Fatal("Kind.IsMechanism misclassifies")
	}
}

func TestParamNormalizationMetadata(t *testing.T) {
	for _, name := range []string{"ufp/greedy", "ufp/rounding"} {
		s, _ := solver.Lookup(name)
		if solver.UsesEps(s) {
			t.Errorf("%s reports using ε", name)
		}
	}
	for _, name := range []string{"ufp/solve", "muca/mechanism"} {
		s, _ := solver.Lookup(name)
		if !solver.UsesEps(s) {
			t.Errorf("%s reports ignoring ε", name)
		}
	}
	for _, s := range solver.Solvers() {
		if want := s.Name() == "ufp/rounding"; solver.UsesSeed(s) != want {
			t.Errorf("%s UsesSeed = %v, want %v", s.Name(), !want, want)
		}
	}
	singlePass := map[string]bool{"ufp/greedy": true, "ufp/sequential": true, "ufp/online": true, "ufp/rounding": true}
	for _, s := range solver.Solvers() {
		if want := !singlePass[s.Name()]; solver.UsesMaxIterations(s) != want {
			t.Errorf("%s UsesMaxIterations = %v, want %v", s.Name(), !want, want)
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(label string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", label)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { solver.Register(stub{name: "ufp/solve"}) })
	mustPanic("empty name", func() { solver.Register(stub{name: ""}) })
}

type stub struct{ name string }

func (s stub) Name() string      { return s.name }
func (s stub) Kind() solver.Kind { return solver.KindUFP }
func (s stub) Solve(context.Context, solver.Input, solver.Params) (solver.Output, error) {
	return solver.Output{}, nil
}

// TestInputMismatchDiagnosed: handing a solver the wrong instance shape
// fails with a diagnosis, not a nil dereference.
func TestInputMismatchDiagnosed(t *testing.T) {
	ufp, _ := solver.Lookup("ufp/solve")
	muca, _ := solver.Lookup("muca/solve")
	auc := &auction.Instance{Multiplicity: []float64{4}, Requests: []auction.Request{{Bundle: []int{0}, Value: 1}}}
	g := graph.New(2)
	g.AddEdge(0, 1, 4)
	inst := &core.Instance{G: g, Requests: []core.Request{{Source: 0, Target: 1, Demand: 1, Value: 1}}}

	if _, err := ufp.Solve(context.Background(), solver.Input{Auction: auc}, solver.Params{Eps: 0.5}); err == nil || !strings.Contains(err.Error(), "needs a UFP instance") {
		t.Fatalf("ufp/solve with auction input: err = %v", err)
	}
	if _, err := muca.Solve(context.Background(), solver.Input{UFP: inst}, solver.Params{Eps: 0.5}); err == nil || !strings.Contains(err.Error(), "needs an auction instance") {
		t.Fatalf("muca/solve with UFP input: err = %v", err)
	}
	if _, err := ufp.Solve(context.Background(), solver.Input{UFP: inst, Auction: auc}, solver.Params{Eps: 0.5}); err == nil {
		t.Fatal("ufp/solve accepted both instances")
	}
}

// TestContextCancelsSolvers: a pre-cancelled context aborts every
// builtin solver through the context-first plumbing.
func TestContextCancelsSolvers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.New(3)
	g.AddEdge(0, 1, 6)
	g.AddEdge(1, 2, 6)
	inst := &core.Instance{G: g, Requests: []core.Request{
		{Source: 0, Target: 2, Demand: 1, Value: 1},
		{Source: 1, Target: 2, Demand: 0.5, Value: 2},
	}}
	auc := &auction.Instance{Multiplicity: []float64{30, 30}, Requests: []auction.Request{
		{Bundle: []int{0}, Value: 1}, {Bundle: []int{0, 1}, Value: 2},
	}}
	for _, s := range solver.Solvers() {
		in := solver.Input{UFP: inst}
		if !s.Kind().IsUFP() {
			in = solver.Input{Auction: auc}
		}
		if _, err := s.Solve(ctx, in, solver.Params{Eps: 0.5}); err == nil {
			t.Errorf("%s ignored a cancelled context", s.Name())
		} else if !strings.Contains(err.Error(), "cancel") {
			t.Errorf("%s returned %v, want a cancellation error", s.Name(), err)
		}
	}
}
