package mechanism

import (
	"context"
	"fmt"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/pathfind"
)

// This file holds the v1 context-first entry points. A mechanism run is
// many algorithm re-runs (one allocation plus ~60 bisection probes per
// winner), so cancellation has two layers: the adapted algorithm carries
// the context into every probe's main loop, and the mechanism driver
// additionally checks the context between winners' payment
// computations, covering algorithms that ignore contexts.

// ctxErr is a non-blocking done-check on an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// BoundedUFPAlgCtx is BoundedUFPAlg carrying ctx into every probe of a
// critical-value search (each probe checks it once per main-loop
// iteration). A nil ctx adapts the plain, uncancellable call. See
// BoundedUFPAlg for the probing tunings (shared scratch pool, adaptive
// single-target oracle, ALT landmarks, bidirectional probes) the
// adapter applies. The returned algorithm mutates adapter-local cache
// state and must be driven from one goroutine at a time — which is how
// the mechanism drivers call it.
func BoundedUFPAlgCtx(ctx context.Context, eps float64, opt *core.Options) UFPAlgorithm {
	pool := pathfind.NewPool()
	return func(inst *core.Instance) (*core.Allocation, error) {
		var o core.Options
		if opt != nil {
			o = *opt
		}
		if o.PathPool == nil {
			o.PathPool = pool
		}
		o.Adaptive = true
		o.Bidirectional = true
		if o.Landmarks == nil {
			// Bisection probes are clones sharing one frozen topology, and
			// every probe's exponential prices start at the same floor
			// 1/c_e — so one landmark build serves all ~60 probes of every
			// payment. The shared registry (fingerprinting topology +
			// weight snapshot) is what used to be an adapter-local cache:
			// it additionally shares the tables with every session and
			// engine shard serving the same network.
			g := inst.G
			o.Landmarks = pathfind.SharedLandmarks.Get(g, pathfind.DefaultLandmarkCount,
				func(e int) float64 { return 1 / g.Edge(e).Capacity }, false)
		}
		return core.BoundedUFPCtx(ctx, inst, eps, &o)
	}
}

// BoundedMUCAAlgCtx is BoundedMUCAAlg carrying ctx into every probe of
// a critical-value search. A nil ctx adapts the plain call.
func BoundedMUCAAlgCtx(ctx context.Context, eps float64, opt *auction.Options) AuctionAlgorithm {
	return func(inst *auction.Instance) (*auction.Allocation, error) {
		return auction.BoundedMUCACtx(ctx, inst, eps, opt)
	}
}

// RunUFPMechanismCtx is RunUFPMechanism under a context: the context is
// checked before each winner's critical-value search, and the run is
// abandoned with the context's error when it is done. For cancellation
// to also reach mid-search, build alg with BoundedUFPAlgCtx (or any
// adapter that carries the same context).
func RunUFPMechanismCtx(ctx context.Context, alg UFPAlgorithm, inst *core.Instance) (*UFPOutcome, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("mechanism: cancelled before allocation: %w", err)
	}
	a, err := alg(inst)
	if err != nil {
		return nil, err
	}
	out := &UFPOutcome{Allocation: a, Payments: make(map[int]float64)}
	for _, p := range a.Routed {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("mechanism: cancelled before payment for request %d: %w", p.Request, err)
		}
		pay, err := UFPCriticalValue(alg, inst, p.Request)
		if err != nil {
			return nil, fmt.Errorf("mechanism: payment for request %d: %w", p.Request, err)
		}
		out.Payments[p.Request] = pay
	}
	return out, nil
}

// RunAuctionMechanismCtx is RunAuctionMechanism under a context,
// mirroring RunUFPMechanismCtx.
func RunAuctionMechanismCtx(ctx context.Context, alg AuctionAlgorithm, inst *auction.Instance) (*AuctionOutcome, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("mechanism: cancelled before allocation: %w", err)
	}
	a, err := alg(inst)
	if err != nil {
		return nil, err
	}
	out := &AuctionOutcome{Allocation: a, Payments: make(map[int]float64)}
	for _, r := range a.Selected {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("mechanism: cancelled before payment for request %d: %w", r, err)
		}
		pay, err := AuctionCriticalValue(alg, inst, r)
		if err != nil {
			return nil, fmt.Errorf("mechanism: payment for request %d: %w", r, err)
		}
		out.Payments[r] = pay
	}
	return out, nil
}
