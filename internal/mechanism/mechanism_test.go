package mechanism

import (
	"math"
	"math/rand/v2"
	"testing"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/workload"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+7)) }

// contendedInstance: one edge of capacity 1 and two competing requests.
// Bounded-UFP selects the higher d/v efficiency; critical values are
// hand-computable.
func contendedInstance() *core.Instance {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	return &core.Instance{G: g, Requests: []core.Request{
		{Source: 0, Target: 1, Demand: 1, Value: 2},
		{Source: 0, Target: 1, Demand: 1, Value: 5},
	}}
}

func TestUFPCriticalValueOnContendedEdge(t *testing.T) {
	// Request 1 (value 5) wins; it keeps winning while its ratio
	// 1/v·y beats request 0's 1/2: i.e. while v > 2. Critical value = 2.
	inst := contendedInstance()
	alg := BoundedUFPAlg(0.5, nil)
	pay, err := UFPCriticalValue(alg, inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pay-2) > 1e-6 {
		t.Fatalf("critical value = %g, want 2", pay)
	}
}

func TestUFPCriticalValueRejectsUnselected(t *testing.T) {
	inst := contendedInstance()
	alg := BoundedUFPAlg(0.5, nil)
	if _, err := UFPCriticalValue(alg, inst, 0); err == nil {
		t.Fatal("critical value of an unselected request accepted")
	}
}

func TestCriticalValueIsThreshold(t *testing.T) {
	// Just below the critical value the request loses; at/above it wins.
	inst := contendedInstance()
	alg := BoundedUFPAlg(0.5, nil)
	pay, err := UFPCriticalValue(alg, inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	below := inst.Clone()
	below.Requests[1].Value = pay * 0.99
	a, err := alg(below)
	if err != nil {
		t.Fatal(err)
	}
	if a.Selected(2)[1] {
		t.Fatal("request selected below its critical value")
	}
	above := inst.Clone()
	above.Requests[1].Value = pay * 1.01
	a, err = alg(above)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Selected(2)[1] {
		t.Fatal("request not selected above its critical value")
	}
}

func TestRunUFPMechanismIndividuallyRational(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.Requests = 15
	cfg.B = 6
	for seed := uint64(0); seed < 4; seed++ {
		inst, err := workload.RandomUFP(workload.NewRNG(seed+10), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunUFPMechanism(BoundedUFPAlg(0.25, nil), inst)
		if err != nil {
			t.Fatal(err)
		}
		for r, pay := range out.Payments {
			if pay < -1e-9 {
				t.Fatalf("negative payment %g for request %d", pay, r)
			}
			if pay > inst.Requests[r].Value*(1+1e-6) {
				t.Fatalf("payment %g exceeds declared value %g (IR violated)", pay, inst.Requests[r].Value)
			}
			if u := UFPUtility(out, inst, r, inst.Requests[r]); u < -1e-6 {
				t.Fatalf("negative truthful utility %g for request %d", u, r)
			}
		}
	}
}

func TestTruthfulnessNoProfitableMisreport(t *testing.T) {
	// Theorem 2.3 / Corollary 3.2 empirically: across agents and random
	// misreports, no declaration beats the truth (up to bisection slack).
	cfg := workload.UFPConfig{
		Vertices: 8, Edges: 20, Requests: 12, Directed: true,
		B: 5, CapSpread: 0.4,
		DemandMin: 0.3, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	alg := BoundedUFPAlg(0.25, nil)
	r := rng(5)
	for seed := uint64(0); seed < 3; seed++ {
		inst, err := workload.RandomUFP(workload.NewRNG(seed+20), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for agent := 0; agent < len(inst.Requests); agent += 3 {
			gain, decl, err := UFPMisreportGain(alg, inst, agent, r, 12)
			if err != nil {
				t.Fatal(err)
			}
			if gain > 1e-5 {
				t.Fatalf("seed %d agent %d: profitable misreport %+v gains %g", seed, agent, decl, gain)
			}
		}
	}
}

func TestSequentialBaselineAlsoTruthful(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.Requests = 12
	cfg.B = 5
	inst, err := workload.RandomUFP(workload.NewRNG(33), cfg)
	if err != nil {
		t.Fatal(err)
	}
	alg := SequentialPrimalDualAlg(0.25)
	r := rng(6)
	for agent := 0; agent < len(inst.Requests); agent += 4 {
		gain, decl, err := UFPMisreportGain(alg, inst, agent, r, 10)
		if err != nil {
			t.Fatal(err)
		}
		if gain > 1e-5 {
			t.Fatalf("agent %d: sequential baseline has profitable misreport %+v (+%g)", agent, decl, gain)
		}
	}
}

func TestFindMonotonicityViolationOnBoundedUFP(t *testing.T) {
	// Bounded-UFP is provably monotone: the search must come up empty.
	cfg := workload.DefaultUFPConfig()
	cfg.Requests = 20
	cfg.B = 6
	inst, err := workload.RandomUFP(workload.NewRNG(44), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FindUFPMonotonicityViolation(BoundedUFPAlg(0.25, nil), inst, rng(7), 60)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Fatalf("monotonicity violation reported for Bounded-UFP: %v", w)
	}
}

func TestFindMonotonicityViolationOnRandomizedRounding(t *testing.T) {
	// Randomized rounding is not monotone: perturbing a selected
	// request's declaration reshuffles the random draws and can drop it.
	// This is experiment E8's core witness search.
	cfg := workload.UFPConfig{
		Vertices: 6, Edges: 12, Requests: 10, Directed: true,
		B: 3, CapSpread: 0.4,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	alg := func(inst *core.Instance) (*core.Allocation, error) {
		// Fixed seed: deterministic, so "monotone" is well-defined.
		return core.RandomizedRounding(inst, rng(1234), core.RoundingOptions{})
	}
	found := false
	for seed := uint64(0); seed < 8 && !found; seed++ {
		inst, err := workload.RandomUFP(workload.NewRNG(seed+60), cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := FindUFPMonotonicityViolation(alg, inst, rng(seed), 40)
		if err != nil {
			t.Fatal(err)
		}
		if w != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no monotonicity violation found for randomized rounding across 8 instances")
	}
}

func TestAuctionCriticalValue(t *testing.T) {
	// Two singletons contending for one item (multiplicity 4 so the dual
	// loop runs, but the second singleton shares the item): with values
	// 5 and 2 on the same item of multiplicity 1... use multiplicity
	// large enough for the loop yet binding: multiplicity 1 on item 0
	// cannot run the loop (threshold), so use two items.
	inst := &auction.Instance{
		Multiplicity: []float64{4, 4},
		Requests: []auction.Request{
			{Bundle: []int{0}, Value: 5},
			{Bundle: []int{1}, Value: 2},
		},
	}
	alg := BoundedMUCAAlg(0.5, nil)
	a, err := alg(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Selected) != 2 {
		t.Fatalf("selected %v, want both", a.Selected)
	}
	out, err := RunAuctionMechanism(alg, inst)
	if err != nil {
		t.Fatal(err)
	}
	for r, pay := range out.Payments {
		if pay < -1e-9 || pay > inst.Requests[r].Value+1e-6 {
			t.Fatalf("payment %g out of [0, value] for request %d", pay, r)
		}
	}
}

func TestAuctionTruthfulness(t *testing.T) {
	cfg := auction.RandomConfig{
		Items: 10, Requests: 14, B: 6, MultSpread: 0.5,
		BundleMin: 1, BundleMax: 4, ValueMin: 0.5, ValueMax: 1.5,
	}
	alg := BoundedMUCAAlg(0.25, nil)
	r := rng(9)
	for seed := uint64(0); seed < 3; seed++ {
		inst, err := auction.RandomInstance(rng(seed+80), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for agent := 0; agent < len(inst.Requests); agent += 4 {
			gain, err := AuctionMisreportGain(alg, inst, agent, r, 12)
			if err != nil {
				t.Fatal(err)
			}
			if gain > 1e-5 {
				t.Fatalf("seed %d agent %d: profitable auction misreport (+%g)", seed, agent, gain)
			}
		}
	}
}

func TestAuctionCriticalValueRejectsUnselected(t *testing.T) {
	inst := &auction.Instance{
		Multiplicity: []float64{4},
		Requests: []auction.Request{
			{Bundle: []int{0}, Value: 0.01}, // priced out: fresh price 1/4
		},
	}
	// With eps=1: threshold e^{3} ≈ 20 > 1, ratio = 0.25/0.01 = 25 ->
	// still selected (selection has no price test; it's the minimum).
	// Force non-selection instead via an out-of-range index error path.
	if _, err := AuctionCriticalValue(BoundedMUCAAlg(0.5, nil), inst, 5); err == nil {
		t.Fatal("out-of-range request accepted")
	}
}
