package mechanism

import (
	"errors"
	"strings"
	"testing"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
)

// failingUFPAlg simulates a broken algorithm so error propagation paths
// are exercised.
func failingUFPAlg(*core.Instance) (*core.Allocation, error) {
	return nil, errors.New("boom")
}

func failingAuctionAlg(*auction.Instance) (*auction.Allocation, error) {
	return nil, errors.New("boom")
}

func TestUFPErrorPropagation(t *testing.T) {
	inst := contendedInstance()
	if _, err := UFPCriticalValue(failingUFPAlg, inst, 0); err == nil {
		t.Error("CriticalValue swallowed algorithm error")
	}
	if _, err := RunUFPMechanism(failingUFPAlg, inst); err == nil {
		t.Error("RunUFPMechanism swallowed algorithm error")
	}
	if _, _, err := UFPMisreportGain(failingUFPAlg, inst, 0, rng(1), 3); err == nil {
		t.Error("UFPMisreportGain swallowed algorithm error")
	}
	if _, err := FindUFPMonotonicityViolation(failingUFPAlg, inst, rng(1), 3); err == nil {
		t.Error("FindUFPMonotonicityViolation swallowed algorithm error")
	}
	if _, err := UFPCriticalValue(BoundedUFPAlg(0.5, nil), inst, 99); err == nil {
		t.Error("out-of-range request accepted")
	}
}

func TestAuctionErrorPropagation(t *testing.T) {
	inst := &auction.Instance{
		Multiplicity: []float64{20},
		Requests:     []auction.Request{{Bundle: []int{0}, Value: 1}},
	}
	if _, err := AuctionCriticalValue(failingAuctionAlg, inst, 0); err == nil {
		t.Error("AuctionCriticalValue swallowed algorithm error")
	}
	if _, err := RunAuctionMechanism(failingAuctionAlg, inst); err == nil {
		t.Error("RunAuctionMechanism swallowed algorithm error")
	}
	if _, err := AuctionMisreportGain(failingAuctionAlg, inst, 0, rng(1), 3); err == nil {
		t.Error("AuctionMisreportGain swallowed algorithm error")
	}
	if _, err := AuctionCriticalValue(BoundedMUCAAlg(0.5, nil), inst, 5); err == nil {
		t.Error("out-of-range request accepted")
	}
}

func TestAuctionUtilitySemantics(t *testing.T) {
	inst := &auction.Instance{
		Multiplicity: []float64{20, 20},
		Requests: []auction.Request{
			{Bundle: []int{0, 1}, Value: 2},
		},
	}
	out := &AuctionOutcome{Payments: map[int]float64{0: 0.5}}
	// Declared bundle covers the true bundle {0}: gross value counts.
	if u := AuctionUtility(out, inst, 0, []int{0}, 2); u != 1.5 {
		t.Errorf("covering utility = %g, want 1.5", u)
	}
	// True bundle {0, 1} covered exactly.
	if u := AuctionUtility(out, inst, 0, []int{0, 1}, 2); u != 1.5 {
		t.Errorf("exact utility = %g, want 1.5", u)
	}
	// Unselected agent: zero utility, no payment.
	if u := AuctionUtility(&AuctionOutcome{Payments: map[int]float64{}}, inst, 0, []int{0}, 2); u != 0 {
		t.Errorf("unselected utility = %g, want 0", u)
	}
	// Declared bundle misses part of the true bundle: pays but gains no
	// gross value.
	instSubset := &auction.Instance{
		Multiplicity: []float64{20, 20},
		Requests:     []auction.Request{{Bundle: []int{0}, Value: 2}},
	}
	if u := AuctionUtility(out, instSubset, 0, []int{0, 1}, 2); u != -0.5 {
		t.Errorf("undercovered utility = %g, want -0.5", u)
	}
}

func TestUFPUtilitySemantics(t *testing.T) {
	inst := contendedInstance()
	out := &UFPOutcome{Payments: map[int]float64{1: 1.0}}
	trueType := inst.Requests[1]
	// Declared demand equals true demand: full value minus payment.
	if u := UFPUtility(out, inst, 1, trueType); u != trueType.Value-1 {
		t.Errorf("utility = %g, want %g", u, trueType.Value-1)
	}
	// Declared demand below true demand: allocation useless, still pays.
	under := inst.Clone()
	under.Requests[1].Demand = trueType.Demand / 2
	if u := UFPUtility(out, under, 1, trueType); u != -1 {
		t.Errorf("under-demand utility = %g, want -1", u)
	}
	// Unselected: zero.
	if u := UFPUtility(&UFPOutcome{Payments: map[int]float64{}}, inst, 1, trueType); u != 0 {
		t.Errorf("unselected utility = %g, want 0", u)
	}
}

func TestMonotonicityWitnessString(t *testing.T) {
	w := &MonotonicityWitness{
		Request:  3,
		Original: core.Request{Demand: 0.9, Value: 1.2},
		Improve:  core.Request{Demand: 0.5, Value: 2.0},
	}
	s := w.String()
	for _, want := range []string{"request 3", "0.9", "1.2", "0.5", "2"} {
		if !strings.Contains(s, want) {
			t.Errorf("witness string missing %q: %s", want, s)
		}
	}
}

func TestFindViolationNoSelection(t *testing.T) {
	// An algorithm that never selects anything has no witnesses.
	emptyAlg := func(inst *core.Instance) (*core.Allocation, error) {
		return &core.Allocation{}, nil
	}
	w, err := FindUFPMonotonicityViolation(emptyAlg, contendedInstance(), rng(2), 10)
	if err != nil || w != nil {
		t.Fatalf("empty algorithm: w=%v err=%v", w, err)
	}
}

func TestRunAuctionMechanismEndToEnd(t *testing.T) {
	inst := &auction.Instance{
		Multiplicity: []float64{20, 20},
		Requests: []auction.Request{
			{Bundle: []int{0}, Value: 2},
			{Bundle: []int{1}, Value: 1},
			{Bundle: []int{0, 1}, Value: 0.9},
		},
	}
	out, err := RunAuctionMechanism(BoundedMUCAAlg(0.5, nil), inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payments) != len(out.Allocation.Selected) {
		t.Fatalf("payments %d != winners %d", len(out.Payments), len(out.Allocation.Selected))
	}
}
