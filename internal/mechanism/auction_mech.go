package mechanism

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"

	"truthfulufp/internal/auction"
)

// AuctionAlgorithm is any deterministic MUCA allocation algorithm.
type AuctionAlgorithm func(inst *auction.Instance) (*auction.Allocation, error)

// BoundedMUCAAlg adapts auction.BoundedMUCA with a fixed ε and options
// (opt may be nil). For a cancellable adaptation use BoundedMUCAAlgCtx.
func BoundedMUCAAlg(eps float64, opt *auction.Options) AuctionAlgorithm {
	return BoundedMUCAAlgCtx(nil, eps, opt)
}

// AuctionCriticalValue computes the critical value of request r under
// alg: the infimum declared value at which r stays selected, bundle and
// other requests fixed. The request must be selected as declared.
func AuctionCriticalValue(alg AuctionAlgorithm, inst *auction.Instance, r int) (float64, error) {
	if r < 0 || r >= len(inst.Requests) {
		return 0, fmt.Errorf("mechanism: request %d out of range", r)
	}
	hi := inst.Requests[r].Value
	sel, err := auctionSelectedAt(alg, inst, r, hi)
	if err != nil {
		return 0, err
	}
	if !sel {
		return 0, errors.New("mechanism: request is not selected at its declared value")
	}
	lo := 0.0
	for iter := 0; iter < maxBisection && hi-lo > CriticalPrecision*hi; iter++ {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		s, err := auctionSelectedAt(alg, inst, r, mid)
		if err != nil {
			return 0, err
		}
		if s {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

func auctionSelectedAt(alg AuctionAlgorithm, inst *auction.Instance, r int, value float64) (bool, error) {
	mod := inst.Clone()
	mod.Requests[r].Value = value
	a, err := alg(mod)
	if err != nil {
		return false, err
	}
	return a.SelectedSet(len(mod.Requests))[r], nil
}

// AuctionOutcome is a MUCA mechanism outcome.
type AuctionOutcome struct {
	Allocation *auction.Allocation
	Payments   map[int]float64
}

// RunAuctionMechanism runs alg and charges every winner its critical
// value (Corollary 4.2's mechanism). See RunAuctionMechanismCtx for the
// cancellable variant.
func RunAuctionMechanism(alg AuctionAlgorithm, inst *auction.Instance) (*AuctionOutcome, error) {
	return RunAuctionMechanismCtx(context.Background(), alg, inst)
}

// AuctionUtility evaluates agent r's utility under the unknown
// single-minded model (Mu'alem-Nisan): the agent derives its true value
// only if its allocated (declared) bundle covers its true bundle.
func AuctionUtility(out *AuctionOutcome, inst *auction.Instance, r int, trueBundle []int, trueValue float64) float64 {
	pay, selected := out.Payments[r]
	if !selected {
		return 0
	}
	declared := make(map[int]bool, len(inst.Requests[r].Bundle))
	for _, u := range inst.Requests[r].Bundle {
		declared[u] = true
	}
	gross := trueValue
	for _, u := range trueBundle {
		if !declared[u] {
			gross = 0
			break
		}
	}
	return gross - pay
}

// AuctionMisreportGain searches for a profitable misreport of agent r:
// perturbed values and perturbed bundles (random supersets and subsets of
// the true bundle). Returns the best gain found over truthful utility.
func AuctionMisreportGain(alg AuctionAlgorithm, inst *auction.Instance, r int, rng *rand.Rand, trials int) (float64, error) {
	truthful, err := runAuctionForAgent(alg, inst, r)
	if err != nil {
		return 0, err
	}
	trueReq := inst.Requests[r]
	baseU := AuctionUtility(truthful, inst, r, trueReq.Bundle, trueReq.Value)
	bestGain := 0.0
	for trial := 0; trial < trials; trial++ {
		decl := auction.Request{
			Bundle: append([]int(nil), trueReq.Bundle...),
			Value:  trueReq.Value,
		}
		switch trial % 3 {
		case 0: // value-only misreport
			decl.Value = trueReq.Value * (0.1 + 3.9*rng.Float64())
		case 1: // subset bundle (possibly cheaper to win, but worthless)
			if len(decl.Bundle) > 1 {
				k := rng.IntN(len(decl.Bundle))
				decl.Bundle = append(decl.Bundle[:k:k], decl.Bundle[k+1:]...)
			}
			decl.Value = trueReq.Value * (0.5 + rng.Float64())
		default: // superset bundle
			extra := rng.IntN(inst.NumItems())
			dup := false
			for _, u := range decl.Bundle {
				if u == extra {
					dup = true
					break
				}
			}
			if !dup {
				decl.Bundle = append(decl.Bundle, extra)
			}
			decl.Value = trueReq.Value * (0.5 + rng.Float64())
		}
		mod := inst.Clone()
		mod.Requests[r] = decl
		out, err := runAuctionForAgent(alg, mod, r)
		if err != nil {
			return 0, err
		}
		if gain := AuctionUtility(out, mod, r, trueReq.Bundle, trueReq.Value) - baseU; gain > bestGain {
			bestGain = gain
		}
	}
	return bestGain, nil
}

func runAuctionForAgent(alg AuctionAlgorithm, inst *auction.Instance, r int) (*AuctionOutcome, error) {
	a, err := alg(inst)
	if err != nil {
		return nil, err
	}
	out := &AuctionOutcome{Allocation: a, Payments: make(map[int]float64)}
	if a.SelectedSet(len(inst.Requests))[r] {
		pay, err := AuctionCriticalValue(alg, inst, r)
		if err != nil {
			return nil, err
		}
		out.Payments[r] = pay
	}
	return out, nil
}
