// Package mechanism turns the monotone, exact allocation algorithms into
// truthful mechanisms, following the characterization the paper cites as
// Theorem 2.3 (Lehmann-O'Callaghan-Shoham / Briest-Krysta-Vöcking): a
// monotone and exact algorithm plus critical-value payments is
// incentive compatible. The package computes critical values by bisection
// over re-runs of the (deterministic) algorithm, assembles payment
// outcomes, and provides the misreport harness used to verify
// truthfulness empirically — and to exhibit the NON-monotonicity of
// randomized rounding (experiment E8).
package mechanism

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"truthfulufp/internal/core"
	"truthfulufp/internal/pathfind"
)

// UFPAlgorithm is any deterministic UFP allocation algorithm. The
// mechanism re-runs it with modified declarations, so it must be a pure
// function of the instance.
type UFPAlgorithm func(inst *core.Instance) (*core.Allocation, error)

// BoundedUFPAlg adapts core.BoundedUFP with fixed parameters. Critical-
// value bisection re-runs the algorithm dozens of times per payment, so
// the adapter tunes the options for repeated probing: unless opt
// already carries a scratch pool it installs one shared across all of
// the closure's runs — the solver then reuses its Dijkstra state
// instead of re-allocating it ~60 times per payment — and it enables
// the full single-target path oracle: the adaptive tree-vs-PathTo
// policy (core.Options.Adaptive), ALT landmark pruning with tables
// built once per frozen topology and shared across all probes
// (core.Options.Landmarks — every probe's prices start at the same
// floor 1/c_e, so the bounds hold for all of them), and bidirectional
// probing for the remaining misses (core.Options.Bidirectional). All
// tunings are bit-transparent: the adapted algorithm's allocations are
// identical to a bare core.BoundedUFP.
func BoundedUFPAlg(eps float64, opt *core.Options) UFPAlgorithm {
	return BoundedUFPAlgCtx(nil, eps, opt)
}

// SequentialPrimalDualAlg adapts the sequential baseline (also
// monotone), with the same shared scratch pool across re-runs.
func SequentialPrimalDualAlg(eps float64) UFPAlgorithm {
	opt := &core.Options{PathPool: pathfind.NewPool()}
	return func(inst *core.Instance) (*core.Allocation, error) {
		return core.SequentialPrimalDual(inst, eps, opt)
	}
}

// CriticalPrecision is the relative bisection tolerance for critical
// values.
const CriticalPrecision = 1e-9

// maxBisection bounds the number of algorithm re-runs per critical value;
// 60 halvings reduce any bracket below double-precision resolution.
const maxBisection = 60

// UFPCriticalValue computes the critical value of request r: the
// infimum declared value at which r is still selected, holding its
// demand and all other requests fixed. The request must be selected
// under its current declaration (that declaration brackets the search
// from above; monotonicity guarantees a unique threshold). The result is
// an upper bracket within CriticalPrecision relatively.
func UFPCriticalValue(alg UFPAlgorithm, inst *core.Instance, r int) (float64, error) {
	if r < 0 || r >= len(inst.Requests) {
		return 0, fmt.Errorf("mechanism: request %d out of range", r)
	}
	hi := inst.Requests[r].Value
	selected, err := ufpSelectedAt(alg, inst, r, hi)
	if err != nil {
		return 0, err
	}
	if !selected {
		return 0, errors.New("mechanism: request is not selected at its declared value")
	}
	lo := 0.0
	for iter := 0; iter < maxBisection && hi-lo > CriticalPrecision*hi; iter++ {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		sel, err := ufpSelectedAt(alg, inst, r, mid)
		if err != nil {
			return 0, err
		}
		if sel {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

func ufpSelectedAt(alg UFPAlgorithm, inst *core.Instance, r int, value float64) (bool, error) {
	mod := inst.Clone()
	mod.Requests[r].Value = value
	a, err := alg(mod)
	if err != nil {
		return false, err
	}
	return a.Selected(len(mod.Requests))[r], nil
}

// UFPOutcome is a mechanism outcome: the allocation plus critical-value
// payments for selected requests (unselected requests pay nothing).
type UFPOutcome struct {
	Allocation *core.Allocation
	// Payments maps selected request index to its payment.
	Payments map[int]float64
}

// RunUFPMechanism runs the allocation algorithm and charges every
// selected request its critical value. By Theorem 2.3 the resulting
// mechanism is truthful when alg is monotone and exact. See
// RunUFPMechanismCtx for the cancellable variant.
func RunUFPMechanism(alg UFPAlgorithm, inst *core.Instance) (*UFPOutcome, error) {
	return RunUFPMechanismCtx(context.Background(), alg, inst)
}

// UFPUtility evaluates agent r's utility when its true type is trueType
// and the instance inst carries its declared type: the paper's known-
// endpoints single-minded model. An exact mechanism routes exactly the
// declared demand, which serves the agent only if it covers the true
// demand; the agent then enjoys its true value and pays its critical
// payment.
func UFPUtility(out *UFPOutcome, inst *core.Instance, r int, trueType core.Request) float64 {
	pay, selected := out.Payments[r]
	if !selected {
		return 0
	}
	gross := 0.0
	if inst.Requests[r].Demand >= trueType.Demand-1e-12 {
		gross = trueType.Value
	}
	return gross - pay
}

// UFPMisreportGain searches for a profitable misreport for agent r by
// trying trials random (demand, value) declarations. It returns the
// best utility improvement found over truthful reporting (<= ~0, up to
// bisection tolerance, when the mechanism is truthful) and the best
// misreport tried.
func UFPMisreportGain(alg UFPAlgorithm, inst *core.Instance, r int, rng *rand.Rand, trials int) (float64, core.Request, error) {
	truthful, err := runMechanismForAgent(alg, inst, r)
	if err != nil {
		return 0, core.Request{}, err
	}
	trueType := inst.Requests[r]
	baseU := UFPUtility(truthful, inst, r, trueType)
	bestGain := math.Inf(-1)
	var bestDecl core.Request
	for trial := 0; trial < trials; trial++ {
		decl := trueType
		// Perturb demand within (0, 1] and value within (0, 4v].
		switch trial % 3 {
		case 0:
			decl.Value = trueType.Value * (0.1 + 3.9*rng.Float64())
		case 1:
			decl.Demand = math.Min(1, trueType.Demand*(0.2+1.6*rng.Float64()))
		default:
			decl.Value = trueType.Value * (0.1 + 3.9*rng.Float64())
			decl.Demand = math.Min(1, trueType.Demand*(0.2+1.6*rng.Float64()))
		}
		mod := inst.Clone()
		mod.Requests[r] = decl
		out, err := runMechanismForAgent(alg, mod, r)
		if err != nil {
			return 0, core.Request{}, err
		}
		if gain := UFPUtility(out, mod, r, trueType) - baseU; gain > bestGain {
			bestGain = gain
			bestDecl = decl
		}
	}
	return bestGain, bestDecl, nil
}

// runMechanismForAgent computes payments only for agent r (cheaper than
// the full mechanism when probing misreports).
func runMechanismForAgent(alg UFPAlgorithm, inst *core.Instance, r int) (*UFPOutcome, error) {
	a, err := alg(inst)
	if err != nil {
		return nil, err
	}
	out := &UFPOutcome{Allocation: a, Payments: make(map[int]float64)}
	if a.Selected(len(inst.Requests))[r] {
		pay, err := UFPCriticalValue(alg, inst, r)
		if err != nil {
			return nil, err
		}
		out.Payments[r] = pay
	}
	return out, nil
}

// MonotonicityWitness records a concrete monotonicity violation: request
// r was selected under the original declaration but dropped after an
// improvement (demand decreased and/or value increased).
type MonotonicityWitness struct {
	Request           int
	Original, Improve core.Request
}

func (w *MonotonicityWitness) String() string {
	return fmt.Sprintf("request %d: selected with (d=%.4g, v=%.4g) but dropped with improved (d=%.4g, v=%.4g)",
		w.Request, w.Original.Demand, w.Original.Value, w.Improve.Demand, w.Improve.Value)
}

// FindUFPMonotonicityViolation searches for a monotonicity violation of
// alg on inst by sampling improvements of selected requests. It returns
// nil if none is found within the trial budget — which is evidence (not
// proof) of monotonicity; for non-monotone algorithms such as randomized
// rounding it typically finds a witness quickly (experiment E8).
func FindUFPMonotonicityViolation(alg UFPAlgorithm, inst *core.Instance, rng *rand.Rand, trials int) (*MonotonicityWitness, error) {
	base, err := alg(inst)
	if err != nil {
		return nil, err
	}
	sel := base.Selected(len(inst.Requests))
	var selected []int
	for r, s := range sel {
		if s {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		return nil, nil
	}
	for trial := 0; trial < trials; trial++ {
		r := selected[rng.IntN(len(selected))]
		orig := inst.Requests[r]
		improved := orig
		improved.Demand = orig.Demand * (0.4 + 0.6*rng.Float64())
		improved.Value = orig.Value * (1 + rng.Float64())
		mod := inst.Clone()
		mod.Requests[r] = improved
		got, err := alg(mod)
		if err != nil {
			return nil, err
		}
		if !got.Selected(len(mod.Requests))[r] {
			return &MonotonicityWitness{Request: r, Original: orig, Improve: improved}, nil
		}
	}
	return nil, nil
}
