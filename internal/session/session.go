// Package session is the stateful serving layer for the paper's online
// admission setting: a Manager of long-lived Sessions, each one a
// registered network (frozen CSR graph) with live solver state — the
// exponential dual prices, the residual flow ledger, and a warm
// dirty-source path cache (core.AdmissionState). A client registers a
// topology once and then streams admit / quote / release calls against
// it; each call costs one single-target shortest-path query, usually
// served incrementally, instead of the full solve a stateless
// per-request API pays.
//
// Sessions are evicted least-recently-used beyond Config.MaxSessions
// and lazily expired after Config.TTL of idleness (swept from the LRU's
// cold end on every Manager entry, so expiry needs no background
// goroutine). An evicted or explicitly closed session answers every
// subsequent call with ErrSessionClosed; an operation already holding
// the session when eviction strikes completes normally — eviction is a
// resource-reclaim signal, not a linearization point.
package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/lru"
	"truthfulufp/internal/metrics"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/stats"
)

// ErrSessionClosed is returned by session operations after the session
// was closed or evicted.
var ErrSessionClosed = errors.New("session: closed")

// DefaultMaxSessions is the live-session cap when Config.MaxSessions is
// zero.
const DefaultMaxSessions = 64

// Config tunes a Manager.
type Config struct {
	// MaxSessions bounds live sessions (LRU eviction beyond it). 0 means
	// DefaultMaxSessions; negative means unbounded.
	MaxSessions int
	// TTL expires sessions idle longer than this (0 = never). Expiry is
	// lazy: expired sessions are reclaimed on the next Manager call.
	TTL time.Duration
	// PathPool, if non-nil, supplies the Dijkstra scratch buffers every
	// session's path cache draws from (the engine passes its per-process
	// pool here); nil uses one private pool shared by the manager's
	// sessions.
	PathPool *pathfind.Pool
	// IDPrefix is prepended to generated session ids ("n1", "n2", ...).
	// The shard router gives each backend a distinct prefix ("s0-",
	// "s1-", ...) so a session id names its owning shard and cluster
	// peers can resolve misrouted calls without a directory service.
	IDPrefix string
	// PolicyWarmup / PolicyCostRatio tune every session's adaptive
	// refresh policy (see core.Options); zero keeps the pathfind
	// defaults.
	PolicyWarmup    int
	PolicyCostRatio float64
	// LandmarkStaleRatio tunes the landmark lifecycle's prune-ratio
	// rebuild threshold for every session's oracle (see core.Options /
	// pathfind.OracleConfig.StalePruneRatio); zero keeps
	// pathfind.DefaultStalePruneRatio, negative disables prune-driven
	// rebuilds.
	LandmarkStaleRatio float64
}

// Stats is a point-in-time view of a Manager's counters.
type Stats struct {
	// Live is the number of sessions currently registered.
	Live int `json:"live"`
	// Created counts sessions ever registered.
	Created int64 `json:"created"`
	// EvictedLRU counts sessions evicted for capacity.
	EvictedLRU int64 `json:"evictedLru"`
	// EvictedTTL counts sessions expired for idleness.
	EvictedTTL int64 `json:"evictedTtl"`
	// Closed counts sessions closed explicitly.
	Closed int64 `json:"closed"`
	// Admits / Rejects / Quotes / Releases count streamed operations
	// across all sessions, live and gone.
	Admits   int64 `json:"admits"`
	Rejects  int64 `json:"rejects"`
	Quotes   int64 `json:"quotes"`
	Releases int64 `json:"releases"`
}

// Manager owns the live sessions: registration, lookup, LRU/TTL
// eviction, and fleet-wide counters. Safe for concurrent use.
type Manager struct {
	cfg  Config
	pool *pathfind.Pool

	mu       sync.Mutex
	sessions *lru.Cache[string, *Session]
	nextID   uint64

	created    stats.Counter
	evictedLRU stats.Counter
	evictedTTL stats.Counter
	closed     stats.Counter
	admits     stats.Counter
	rejects    stats.Counter
	quotes     stats.Counter
	releases   stats.Counter

	// admitLatency / quoteLatency bucket the per-call solver time of
	// Admit and Quote across all sessions — the paper's online setting
	// makes per-admit latency the product metric, so it is always
	// measured (one histogram observation per call) and adopted into a
	// registry by RegisterMetrics.
	admitLatency *metrics.Histogram
	quoteLatency *metrics.Histogram

	// lmRebuilds / lmRebuildLatency observe the landmark lifecycle: the
	// oracle's staleness policy rebuilds a session's tables in-place, and
	// a per-session CacheStats sum would shrink on eviction — so the
	// rebuild count and duration are accumulated manager-side through
	// core.Options.OnLandmarkRebuild, keeping the exported counter
	// monotone.
	lmRebuilds       stats.Counter
	lmRebuildLatency *metrics.Histogram
}

// NewManager builds a Manager.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	pool := cfg.PathPool
	if pool == nil {
		pool = pathfind.NewPool()
	}
	m := &Manager{
		cfg:              cfg,
		pool:             pool,
		admitLatency:     metrics.NewHistogram(metrics.DefLatencyBuckets),
		quoteLatency:     metrics.NewHistogram(metrics.DefLatencyBuckets),
		lmRebuildLatency: metrics.NewHistogram(metrics.DefLatencyBuckets),
	}
	m.sessions = lru.New(cfg.MaxSessions, func(_ string, s *Session) {
		s.markClosed()
	})
	return m
}

// Register creates a session for a network: the graph is validated and
// frozen, the solver state initialized (prices at 1/c_e, empty ledger),
// and the session stored under a fresh id. Registering may LRU-evict
// the coldest session when the manager is at capacity. The graph is
// owned by the session afterwards and must not be mutated.
func (m *Manager) Register(g *graph.Graph, eps float64) (*Session, error) {
	st, err := core.NewAdmissionState(g, eps, &core.Options{
		PathPool: m.pool,
		// Auto-built landmark tables come from the process-wide registry,
		// so shards and sessions serving the same topology share one set.
		LandmarkRegistry:   pathfind.SharedLandmarks,
		LandmarkStaleRatio: m.cfg.LandmarkStaleRatio,
		PolicyWarmup:       m.cfg.PolicyWarmup,
		PolicyCostRatio:    m.cfg.PolicyCostRatio,
		// The hook fires under the session's lock mid-Admit; both sinks
		// are concurrency-safe, so it stays cheap and lock-free here.
		OnLandmarkRebuild: func(seconds float64) {
			m.lmRebuilds.Inc()
			m.lmRebuildLatency.Observe(seconds)
		},
	})
	if err != nil {
		return nil, err
	}
	now := time.Now()
	s := &Session{
		mgr:     m,
		st:      st,
		eps:     eps,
		created: now,
	}
	s.lastUsed.Store(now.UnixNano())
	m.mu.Lock()
	m.sweepLocked(now)
	m.nextID++
	s.id = fmt.Sprintf("%sn%d", m.cfg.IDPrefix, m.nextID)
	m.evictedLRU.Add(int64(m.sessions.Put(s.id, s)))
	m.mu.Unlock()
	m.created.Inc()
	return s, nil
}

// Get returns the live session under id, marking it most recently used.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(time.Now())
	s, ok := m.sessions.Get(id)
	if ok {
		s.touch()
	}
	return s, ok
}

// Close removes the session under id, reporting whether it was live.
// Its state is dropped; the capacity it held is not returned anywhere —
// the network is simply gone.
func (m *Manager) Close(id string) bool {
	m.mu.Lock()
	ok := m.sessions.Remove(id)
	m.mu.Unlock()
	if ok {
		m.closed.Inc()
	}
	return ok
}

// Len returns the number of live sessions (after sweeping expired
// ones).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(time.Now())
	return m.sessions.Len()
}

// Stats returns current counter values.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	m.sweepLocked(time.Now())
	live := m.sessions.Len()
	m.mu.Unlock()
	return Stats{
		Live:       live,
		Created:    m.created.Load(),
		EvictedLRU: m.evictedLRU.Load(),
		EvictedTTL: m.evictedTTL.Load(),
		Closed:     m.closed.Load(),
		Admits:     m.admits.Load(),
		Rejects:    m.rejects.Load(),
		Quotes:     m.quotes.Load(),
		Releases:   m.releases.Load(),
	}
}

// PathCacheStats sums the warm path caches' observer counters over the
// currently live sessions: the fleet-wide dirty-source picture. Values
// shrink when sessions are evicted (the counters of a gone session are
// gone with it), so /metrics surfaces them as gauges.
func (m *Manager) PathCacheStats() pathfind.CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var agg pathfind.CacheStats
	m.sessions.Each(func(_ string, s *Session) bool {
		// m.mu before s.mu is the manager's lock order: session operations
		// under s.mu only touch the manager's atomic counters, never m.mu.
		s.mu.Lock()
		cs := s.st.CacheStats()
		s.mu.Unlock()
		agg.Add(cs)
		return true
	})
	return agg
}

// RegisterMetrics registers the manager's instrument families — the
// ufp_session_* lifecycle and operation counters, the admit/quote
// latency histograms, and the ufp_pathcache_* gauges aggregated over
// live sessions — into reg. Call once per registry; the scalar
// families are func-backed and read at scrape time.
func (m *Manager) RegisterMetrics(reg *metrics.Registry) {
	counter := func(name, help string, fn func() int64) {
		reg.NewCounterFamily(name, help).Func(fn)
	}
	reg.NewGaugeFamily("ufp_session_live", "Sessions currently registered.").GaugeFunc(func() float64 {
		return float64(m.Len())
	})
	counter("ufp_session_created_total", "Sessions ever registered.", m.created.Load)
	evictions := reg.NewCounterFamily("ufp_session_evictions_total",
		"Sessions evicted, split by reason (lru = capacity, ttl = idleness).", "reason")
	evictions.Func(m.evictedLRU.Load, "lru")
	evictions.Func(m.evictedTTL.Load, "ttl")
	counter("ufp_session_closed_total", "Sessions closed explicitly.", m.closed.Load)
	counter("ufp_session_admits_total", "Streamed requests admitted.", m.admits.Load)
	counter("ufp_session_rejects_total", "Streamed requests rejected.", m.rejects.Load)
	counter("ufp_session_quotes_total", "Price quotes served.", m.quotes.Load)
	counter("ufp_session_releases_total", "Admissions released.", m.releases.Load)
	reg.NewHistogramFamily("ufp_session_admit_duration_seconds",
		"Per-admit solver time (one observation per Admit call, admitted or not).",
		metrics.DefLatencyBuckets).Observe(m.admitLatency)
	reg.NewHistogramFamily("ufp_session_quote_duration_seconds",
		"Per-quote solver time.",
		metrics.DefLatencyBuckets).Observe(m.quoteLatency)
	pcGauge := func(name, help string, fn func(pathfind.CacheStats) float64) {
		reg.NewGaugeFamily(name, help).GaugeFunc(func() float64 {
			return fn(m.PathCacheStats())
		})
	}
	pcGauge("ufp_pathcache_refreshes", "Refresh calls summed over live sessions' path caches.",
		func(s pathfind.CacheStats) float64 { return float64(s.Refreshes) })
	pcGauge("ufp_pathcache_tree_recomputed", "Structures rebuilt from scratch (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.Recomputed) })
	pcGauge("ufp_pathcache_tree_reused", "Structures served clean from cache (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.Reused) })
	pcGauge("ufp_pathcache_path_hits", "PathTo answers served from a fresh tree or clean cached path (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.PathToHits) })
	pcGauge("ufp_pathcache_path_misses", "PathTo answers that ran an early-exit search (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.PathToMisses) })
	pcGauge("ufp_pathcache_dirty_ratio", "Fraction of demanded structures recomputed (live sessions, 0..1).",
		func(s pathfind.CacheStats) float64 { return s.DirtyRatio() })
	pcGauge("ufp_pathcache_oracle_searches", "PathTo misses answered by the ALT/bidirectional oracle (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.AltSearches) })
	pcGauge("ufp_pathcache_oracle_prune_ratio", "Fraction of the full-tree vertex budget the oracle's searches skipped (live sessions, 0..1).",
		func(s pathfind.CacheStats) float64 { return s.PruneRatio() })
	pcGauge("ufp_pathcache_bidi_probes", "Bidirectional probes run (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.BidiProbes) })
	pcGauge("ufp_pathcache_bidi_meets", "Bidirectional probes whose frontiers bridged (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.BidiMeets) })
	policy := reg.NewGaugeFamily("ufp_pathcache_policy_decisions",
		"Adaptive refresh-policy decisions, split by chosen serving mode (live sessions).", "mode")
	policy.GaugeFunc(func() float64 { return float64(m.PathCacheStats().PolicyTree) }, "tree")
	policy.GaugeFunc(func() float64 { return float64(m.PathCacheStats().PolicySingle) }, "single")
	pcGauge("ufp_pathcache_landmark_violations", "Landmark lower-bound violations caught by the oracle (live sessions; each triggers a rebuild, or disables the tables past the budget).",
		func(s pathfind.CacheStats) float64 { return float64(s.LandmarkViolations) })
	counter("ufp_pathcache_landmark_rebuilds_total",
		"Landmark table rebuilds triggered by the staleness policy or a bound violation (monotone; survives session eviction).",
		m.lmRebuilds.Load)
	reg.NewHistogramFamily("ufp_pathcache_landmark_rebuild_duration_seconds",
		"Wall time of each landmark table rebuild (2k Dijkstras plus minimax tables when enabled).",
		metrics.DefLatencyBuckets).Observe(m.lmRebuildLatency)
	registry := reg.NewCounterFamily("ufp_pathcache_landmark_registry_lookups_total",
		"Shared landmark registry lookups, split by result (process-wide: one registry serves every shard, session, and mechanism probe).", "result")
	registry.Func(func() int64 { h, _ := pathfind.SharedLandmarks.Stats(); return h }, "hit")
	registry.Func(func() int64 { _, mi := pathfind.SharedLandmarks.Stats(); return mi }, "miss")
}

// AdmitLatencyHistogram exposes the manager's per-admit latency
// histogram for aggregation layers (the shard router labels one per
// shard) that cannot reuse RegisterMetrics' family names in the same
// registry.
func (m *Manager) AdmitLatencyHistogram() *metrics.Histogram { return m.admitLatency }

// QuoteLatencyHistogram is AdmitLatencyHistogram for Quote calls.
func (m *Manager) QuoteLatencyHistogram() *metrics.Histogram { return m.quoteLatency }

// LandmarkRebuilds returns the manager's lifetime landmark-rebuild
// count (monotone — unaffected by session eviction), for aggregation
// layers summing across shards.
func (m *Manager) LandmarkRebuilds() int64 { return m.lmRebuilds.Load() }

// LandmarkRebuildHistogram exposes the rebuild-duration histogram for
// aggregation layers, mirroring AdmitLatencyHistogram.
func (m *Manager) LandmarkRebuildHistogram() *metrics.Histogram { return m.lmRebuildLatency }

// sweepLocked expires idle sessions from the LRU's cold end. Recency
// order and last-use order coincide (every path that touches a session
// also touches its recency), so the sweep stops at the first live
// session. Caller holds m.mu.
func (m *Manager) sweepLocked(now time.Time) {
	if m.cfg.TTL <= 0 {
		return
	}
	cutoff := now.Add(-m.cfg.TTL).UnixNano()
	for {
		id, s, ok := m.sessions.Oldest()
		if !ok || s.lastUsed.Load() > cutoff {
			return
		}
		m.sessions.Remove(id)
		m.evictedTTL.Inc()
	}
}

// Session is one registered network's live solver state. Operations
// are serialized by the session's own lock, so concurrent admits on
// one session are safe and observe a total order; distinct sessions
// proceed in parallel.
type Session struct {
	id      string
	mgr     *Manager
	eps     float64
	created time.Time

	// lastUsed is the last operation's time (unix nanos), read by the
	// manager's TTL sweep without taking the session lock.
	lastUsed atomic.Int64
	// closedFlag is set by eviction/close, possibly while an operation
	// is in flight (see the package comment on eviction semantics).
	closedFlag atomic.Bool

	mu       sync.Mutex
	st       *core.AdmissionState
	admits   int64
	rejects  int64
	releases int64
}

// ID returns the session's manager-assigned id.
func (s *Session) ID() string { return s.id }

// Eps returns the accuracy parameter the session was registered with.
func (s *Session) Eps() float64 { return s.eps }

func (s *Session) markClosed() { s.closedFlag.Store(true) }

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// Admit streams one online request into the session (see
// core.AdmissionState.Admit).
func (s *Session) Admit(r core.Request) (core.Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return core.Decision{}, ErrSessionClosed
	}
	s.touch()
	start := time.Now()
	d, err := s.st.Admit(r)
	s.mgr.admitLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		return d, err
	}
	if d.Admitted {
		s.admits++
		s.mgr.admits.Inc()
	} else {
		s.rejects++
		s.mgr.rejects.Inc()
	}
	return d, nil
}

// Quote prices a request without admitting it (see
// core.AdmissionState.Quote).
func (s *Session) Quote(r core.Request) (core.Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return core.Decision{}, ErrSessionClosed
	}
	s.touch()
	start := time.Now()
	d, err := s.st.Quote(r)
	s.mgr.quoteLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		return d, err
	}
	s.mgr.quotes.Inc()
	return d, nil
}

// Release frees a prior admission's capacity (see
// core.AdmissionState.Release).
func (s *Session) Release(id int64) (*core.AdmittedRequest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return nil, ErrSessionClosed
	}
	s.touch()
	a, err := s.st.Release(id)
	if err != nil {
		return nil, err
	}
	s.releases++
	s.mgr.releases.Inc()
	return a, nil
}

// Ledger returns the session's live admissions in ascending ID order.
// The entries are snapshots of shared state; treat them as read-only.
func (s *Session) Ledger() ([]*core.AdmittedRequest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return nil, ErrSessionClosed
	}
	return s.st.Ledger(), nil
}

// Info is a point-in-time view of one session.
type Info struct {
	ID       string  `json:"id"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	Directed bool    `json:"directed"`
	Eps      float64 `json:"eps"`
	B        float64 `json:"b"`
	Admitted int     `json:"admitted"` // live ledger size
	Value    float64 `json:"value"`    // Σ values of live admissions
	DualSum  float64 `json:"dualSum"`  // saturation gauge Σ c_e·y_e
	Admits   int64   `json:"admits"`   // lifetime admissions
	Rejects  int64   `json:"rejects"`
	Releases int64   `json:"releases"`
	// PathRecomputed / PathReused are the warm path cache's counters:
	// reused/(reused+recomputed) is the fraction of admissions served
	// without a fresh shortest-path search.
	PathRecomputed int64 `json:"pathRecomputed"`
	PathReused     int64 `json:"pathReused"`
	// OracleSearches / OraclePruneRatio profile the cache's next-gen
	// single-target oracle: searches it answered, and the fraction of
	// the full-tree vertex budget its pruning skipped. BidiProbes /
	// BidiMeets split the bidirectional probes; PolicyTree /
	// PolicySingle count the adaptive refresh policy's decisions.
	OracleSearches   int64   `json:"oracleSearches"`
	OraclePruneRatio float64 `json:"oraclePruneRatio"`
	BidiProbes       int64   `json:"bidiProbes"`
	BidiMeets        int64   `json:"bidiMeets"`
	PolicyTree       int64   `json:"policyTree"`
	PolicySingle     int64   `json:"policySingle"`
	// LandmarkRebuilds counts this session's landmark table rebuilds —
	// the staleness policy re-selecting landmarks against the current
	// price snapshot.
	LandmarkRebuilds int64     `json:"landmarkRebuilds"`
	Created          time.Time `json:"created"`
	LastUsed         time.Time `json:"lastUsed"`
}

// Info returns the session's current view.
func (s *Session) Info() (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return Info{}, ErrSessionClosed
	}
	g := s.st.Graph()
	rec, reu := s.st.PathStats()
	cs := s.st.CacheStats()
	return Info{
		ID:               s.id,
		Vertices:         g.NumVertices(),
		Edges:            g.NumEdges(),
		Directed:         g.Directed(),
		Eps:              s.eps,
		B:                g.MinCapacity(),
		Admitted:         s.st.NumAdmitted(),
		Value:            s.st.Value(),
		DualSum:          s.st.DualSum(),
		Admits:           s.admits,
		Rejects:          s.rejects,
		Releases:         s.releases,
		PathRecomputed:   rec,
		PathReused:       reu,
		OracleSearches:   cs.AltSearches,
		OraclePruneRatio: cs.PruneRatio(),
		BidiProbes:       cs.BidiProbes,
		BidiMeets:        cs.BidiMeets,
		PolicyTree:       cs.PolicyTree,
		PolicySingle:     cs.PolicySingle,
		LandmarkRebuilds: cs.LandmarkRebuilds,
		Created:          s.created,
		LastUsed:         time.Unix(0, s.lastUsed.Load()),
	}, nil
}
