package session

import (
	"errors"
	"sync"
	"testing"
	"time"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
)

// diamond builds the 4-vertex two-path graph used across the repo's
// tests.
func diamond(capacity float64) *graph.Graph {
	g := graph.New(4)
	g.AddEdge(0, 1, capacity)
	g.AddEdge(1, 3, capacity)
	g.AddEdge(0, 2, capacity)
	g.AddEdge(2, 3, capacity)
	return g
}

func register(t *testing.T, m *Manager, capacity float64) *Session {
	t.Helper()
	s, err := m.Register(diamond(capacity), 0.25)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	return s
}

func TestSessionLifecycle(t *testing.T) {
	m := NewManager(Config{})
	s := register(t, m, 4)
	if s.ID() == "" {
		t.Fatal("empty session id")
	}
	got, ok := m.Get(s.ID())
	if !ok || got != s {
		t.Fatalf("Get(%q) = %v, %v", s.ID(), got, ok)
	}
	d, err := s.Admit(core.Request{Source: 0, Target: 3, Demand: 1, Value: 50})
	if err != nil || !d.Admitted {
		t.Fatalf("Admit = %+v, %v", d, err)
	}
	q, err := s.Quote(core.Request{Source: 0, Target: 3, Demand: 1, Value: 50})
	if err != nil || !q.Admitted {
		t.Fatalf("Quote = %+v, %v", q, err)
	}
	led, err := s.Ledger()
	if err != nil || len(led) != 1 || led[0].ID != d.ID {
		t.Fatalf("Ledger = %v, %v", led, err)
	}
	if _, err := s.Release(d.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	info, err := s.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.ID != s.ID() || info.Vertices != 4 || info.Edges != 4 || info.Admitted != 0 ||
		info.Admits != 1 || info.Releases != 1 || info.Eps != 0.25 || info.B != 4 {
		t.Fatalf("Info = %+v", info)
	}
	if !m.Close(s.ID()) {
		t.Fatal("Close = false for live session")
	}
	if m.Close(s.ID()) {
		t.Fatal("Close succeeded twice")
	}
	if _, ok := m.Get(s.ID()); ok {
		t.Fatal("closed session still gettable")
	}
	if _, err := s.Admit(core.Request{Source: 0, Target: 3, Demand: 1, Value: 50}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Admit on closed session: %v, want ErrSessionClosed", err)
	}
	st := m.Stats()
	if st.Live != 0 || st.Created != 1 || st.Closed != 1 || st.Admits != 1 || st.Quotes != 1 || st.Releases != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	s1 := register(t, m, 4)
	s2 := register(t, m, 4)
	// Touch s1 so s2 is the LRU victim.
	if _, ok := m.Get(s1.ID()); !ok {
		t.Fatal("Get(s1) failed")
	}
	s3 := register(t, m, 4)
	if _, ok := m.Get(s2.ID()); ok {
		t.Fatal("LRU session survived registration beyond capacity")
	}
	if _, err := s2.Admit(core.Request{Source: 0, Target: 3, Demand: 1, Value: 50}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Admit on evicted session: %v, want ErrSessionClosed", err)
	}
	for _, s := range []*Session{s1, s3} {
		if _, ok := m.Get(s.ID()); !ok {
			t.Fatalf("session %s missing after eviction", s.ID())
		}
	}
	st := m.Stats()
	if st.Live != 2 || st.EvictedLRU != 1 {
		t.Fatalf("Stats = %+v, want live 2, evicted_lru 1", st)
	}
}

func TestTTLEviction(t *testing.T) {
	m := NewManager(Config{TTL: 250 * time.Millisecond})
	s1 := register(t, m, 4)
	s2 := register(t, m, 4)
	// Keep s2 warm well past the TTL while s1 idles out; the touch
	// interval is far below the TTL so s2 cannot falsely expire.
	for i := 0; i < 40; i++ {
		time.Sleep(25 * time.Millisecond)
		if _, ok := m.Get(s2.ID()); !ok {
			t.Fatal("warm session expired")
		}
	}
	if _, ok := m.Get(s1.ID()); ok {
		t.Fatal("idle session never expired")
	}
	if _, ok := m.Get(s2.ID()); !ok {
		t.Fatal("warm session expired with the idle one")
	}
	if st := m.Stats(); st.EvictedTTL != 1 || st.Live != 1 {
		t.Fatalf("Stats = %+v, want evicted_ttl 1, live 1", st)
	}
}

// TestConcurrentAdmits hammers one session from many goroutines (run
// under -race in CI): every admit must observe a consistent total
// order — no lost updates in ledger, flow, or counters.
func TestConcurrentAdmits(t *testing.T) {
	m := NewManager(Config{})
	// Capacity 64 per edge, demands 1: exactly 128 admits fit (two
	// disjoint 2-edge paths), if values always clear the rising price.
	s := register(t, m, 64)
	const goroutines, perG = 8, 32
	var wg sync.WaitGroup
	admitted := make([]int, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d, err := s.Admit(core.Request{Source: 0, Target: 3, Demand: 1, Value: 1e12})
				if err != nil {
					t.Errorf("goroutine %d: Admit: %v", gi, err)
					return
				}
				if d.Admitted {
					admitted[gi]++
				} else if d.Reason != core.RejectCapacity && d.Reason != core.RejectPrice {
					t.Errorf("goroutine %d: unexpected reject %q", gi, d.Reason)
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	info, err := s.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.Admitted != total || info.Admits != int64(total) {
		t.Fatalf("ledger %d / admits %d, want %d", info.Admitted, info.Admits, total)
	}
	if info.Rejects != int64(goroutines*perG-total) {
		t.Fatalf("rejects = %d, want %d", info.Rejects, goroutines*perG-total)
	}
	led, err := s.Ledger()
	if err != nil || len(led) != total {
		t.Fatalf("Ledger len %d, %v; want %d", len(led), err, total)
	}
	// ε·B·d/c = 0.25·64·1/64 = 0.25 per admit on a path edge; with value
	// 1e12 the price test never fails before capacity does, so exactly
	// the capacity-feasible 128 must have been admitted.
	if total != 128 {
		t.Fatalf("admitted %d, want exactly 128 (2 paths × capacity 64)", total)
	}
}

func TestConcurrentSessionsAndEviction(t *testing.T) {
	m := NewManager(Config{MaxSessions: 4})
	var wg sync.WaitGroup
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				s, err := m.Register(diamond(8), 0.25)
				if err != nil {
					t.Errorf("goroutine %d: Register: %v", gi, err)
					return
				}
				// Races with other goroutines' evictions by design: the only
				// acceptable failure is ErrSessionClosed.
				if _, err := s.Admit(core.Request{Source: 0, Target: 3, Demand: 0.5, Value: 100}); err != nil && !errors.Is(err, ErrSessionClosed) {
					t.Errorf("goroutine %d: Admit: %v", gi, err)
					return
				}
				if gi%2 == 0 {
					m.Close(s.ID())
				}
			}
		}(gi)
	}
	wg.Wait()
	st := m.Stats()
	if st.Created != 160 {
		t.Fatalf("Stats.Created = %d, want 160", st.Created)
	}
	if st.Live > 4 {
		t.Fatalf("Stats.Live = %d exceeds MaxSessions 4", st.Live)
	}
	if got := m.Len(); got != st.Live {
		t.Fatalf("Len() = %d != Stats.Live %d", got, st.Live)
	}
}

func TestRegisterRejectsBadNetworks(t *testing.T) {
	m := NewManager(Config{})
	small := graph.New(2)
	small.AddEdge(0, 1, 0.5) // B < 1
	if _, err := m.Register(small, 0.25); err == nil {
		t.Fatal("B < 1 network accepted")
	}
	if _, err := m.Register(diamond(4), 0); err == nil {
		t.Fatal("eps = 0 accepted")
	}
	if st := m.Stats(); st.Created != 0 {
		t.Fatalf("failed registrations counted: %+v", st)
	}
}

func TestSessionIDsAreUnique(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		s := register(t, m, 4)
		if seen[s.ID()] {
			t.Fatalf("duplicate session id %q", s.ID())
		}
		seen[s.ID()] = true
	}
}
