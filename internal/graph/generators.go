package graph

import (
	"fmt"
	"math/rand/v2"
)

// Line returns a directed path graph 0 -> 1 -> ... -> n-1 with uniform
// capacity.
func Line(n int, capacity float64) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, capacity)
	}
	g.Freeze()
	return g
}

// Cycle returns a directed cycle on n vertices with uniform capacity.
func Cycle(n int, capacity float64) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, capacity)
	}
	g.Freeze()
	return g
}

// Grid returns an undirected w x h grid with uniform capacity. Vertex
// (x, y) has ID y*w + x.
func Grid(w, h int, capacity float64) *Graph {
	g := NewUndirected(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y), capacity)
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1), capacity)
			}
		}
	}
	g.Freeze()
	return g
}

// Complete returns a complete graph on n vertices with uniform capacity:
// directed (all ordered pairs) if directed is true, otherwise undirected.
func Complete(n int, capacity float64, directed bool) *Graph {
	var g *Graph
	if directed {
		g = New(n)
	} else {
		g = NewUndirected(n)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if !directed && u > v {
				continue
			}
			g.AddEdge(u, v, capacity)
		}
	}
	g.Freeze()
	return g
}

// Layered returns a directed layered graph with the given layer sizes.
// Every vertex in layer i has an edge to every vertex in layer i+1, all
// with the same capacity. Vertices are numbered layer by layer. It is a
// classic topology for routing workloads: many parallel routes of equal
// hop count.
func Layered(layers []int, capacity float64) *Graph {
	n := 0
	for _, k := range layers {
		n += k
	}
	g := New(n)
	base := 0
	for i := 0; i+1 < len(layers); i++ {
		next := base + layers[i]
		for u := 0; u < layers[i]; u++ {
			for v := 0; v < layers[i+1]; v++ {
				g.AddEdge(base+u, next+v, capacity)
			}
		}
		base = next
	}
	g.Freeze()
	return g
}

// RandomConnected returns a random connected graph with n vertices and m
// edges (m >= n-1), built as a random spanning tree plus m-(n-1) extra
// random edges, with capacities drawn uniformly from [minCap, maxCap].
// For a directed graph each tree edge is oriented randomly and an extra
// reverse edge is NOT added, so reachability between random pairs is not
// guaranteed; use RandomStronglyConnected when every request must be
// routable.
func RandomConnected(rng *rand.Rand, n, m int, minCap, maxCap float64, directed bool) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: RandomConnected needs m >= n-1 (n=%d, m=%d)", n, m))
	}
	var g *Graph
	if directed {
		g = New(n)
	} else {
		g = NewUndirected(n)
	}
	capOf := func() float64 { return minCap + rng.Float64()*(maxCap-minCap) }
	// Random spanning tree: connect each vertex i >= 1 to a random earlier
	// vertex, using a random permutation so the tree shape varies.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[rng.IntN(i)], perm[i]
		if directed && rng.IntN(2) == 0 {
			u, v = v, u
		}
		g.AddEdge(u, v, capOf())
	}
	for g.NumEdges() < m {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v, capOf())
	}
	g.Freeze()
	return g
}

// RandomStronglyConnected returns a random directed graph containing a
// Hamiltonian cycle (so every vertex reaches every other) plus m-n extra
// random edges, with capacities uniform in [minCap, maxCap]. Requires
// m >= n.
func RandomStronglyConnected(rng *rand.Rand, n, m int, minCap, maxCap float64) *Graph {
	if m < n {
		panic(fmt.Sprintf("graph: RandomStronglyConnected needs m >= n (n=%d, m=%d)", n, m))
	}
	g := New(n)
	capOf := func() float64 { return minCap + rng.Float64()*(maxCap-minCap) }
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		g.AddEdge(perm[i], perm[(i+1)%n], capOf())
	}
	for g.NumEdges() < m {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v, capOf())
	}
	g.Freeze()
	return g
}
