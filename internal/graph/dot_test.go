package graph

import (
	"fmt"
	"strings"
	"testing"
)

func TestWriteDOTDirected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(1, 2, 4)
	var b strings.Builder
	if err := g.WriteDOT(&b, "test", nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`digraph "test"`, "0 -> 1", "1 -> 2", "c=2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTUndirectedWithExtra(t *testing.T) {
	g := NewUndirected(2)
	g.AddEdge(0, 1, 3)
	var b strings.Builder
	err := g.WriteDOT(&b, "", func(e int) string { return fmt.Sprintf("f=%d", e+7) })
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `graph "G"`) || !strings.Contains(out, "0 -- 1") {
		t.Errorf("undirected DOT wrong:\n%s", out)
	}
	if !strings.Contains(out, "f=7") {
		t.Errorf("edge extra missing:\n%s", out)
	}
}
