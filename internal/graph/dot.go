package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format, labeling edges with
// their capacities (and optional extra per-edge annotations such as flow
// loads), so lower-bound constructions and example networks can be
// visualized with standard tooling.
func (g *Graph) WriteDOT(w io.Writer, name string, edgeExtra func(edge int) string) error {
	kind, arrow := "digraph", "->"
	if !g.directed {
		kind, arrow = "graph", "--"
	}
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %q {\n", kind, name)
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&b, "  %d;\n", v)
	}
	for id, e := range g.edges {
		label := fmt.Sprintf("c=%g", e.Capacity)
		if edgeExtra != nil {
			if extra := edgeExtra(id); extra != "" {
				label += " " + extra
			}
		}
		fmt.Fprintf(&b, "  %d %s %d [label=%q];\n", e.From, arrow, e.To, label)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
