package graph

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// TestFreezeMatchesAdjacency: the CSR arcs of every vertex are exactly
// OutArcs in order, for directed and undirected random graphs.
func TestFreezeMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, directed := range []bool{true, false} {
		g := RandomConnected(rng, 20, 50, 1, 4, directed)
		c := g.Freeze()
		if got, want := int(c.Start[g.NumVertices()]), c.NumArcs(); got != want {
			t.Fatalf("Start[n] = %d, want %d", got, want)
		}
		for v := 0; v < g.NumVertices(); v++ {
			arcs := g.OutArcs(v)
			lo, hi := c.Start[v], c.Start[v+1]
			if int(hi-lo) != len(arcs) {
				t.Fatalf("vertex %d: CSR degree %d, adjacency %d", v, hi-lo, len(arcs))
			}
			for i, a := range arcs {
				k := lo + int32(i)
				if int(c.Head[k]) != a.To || int(c.EdgeID[k]) != a.Edge {
					t.Fatalf("vertex %d arc %d: CSR (%d,%d) vs adjacency (%d,%d)",
						v, i, c.Head[k], c.EdgeID[k], a.To, a.Edge)
				}
			}
		}
	}
}

// TestFreezeIdempotentAndInvalidated: re-freezing without mutation
// returns the same CSR; every topology mutation drops it; capacity
// changes do not.
func TestFreezeIdempotentAndInvalidated(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	c1 := g.Freeze()
	if g.Freeze() != c1 {
		t.Fatal("re-freeze without mutation rebuilt the CSR")
	}
	if g.Frozen() != c1 {
		t.Fatal("Frozen does not return the built CSR")
	}
	g.SetCapacity(0, 5)
	g.ScaleCapacities(2)
	if g.Frozen() != c1 {
		t.Fatal("capacity updates must not invalidate the CSR")
	}
	g.AddEdge(1, 2, 1)
	if g.Frozen() != nil {
		t.Fatal("AddEdge did not invalidate the CSR")
	}
	c2 := g.Freeze()
	g.AddVertex()
	if g.Frozen() != nil {
		t.Fatal("AddVertex did not invalidate the CSR")
	}
	g.Freeze()
	g.SubdivideEdge(0, 3)
	if g.Frozen() != nil {
		t.Fatal("SubdivideEdge did not invalidate the CSR")
	}
	c3 := g.Freeze()
	if c3 == c2 {
		t.Fatal("freeze after mutation returned the stale CSR")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The rebuilt CSR matches the mutated adjacency.
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		total += len(g.OutArcs(v))
	}
	if c3.NumArcs() != total {
		t.Fatalf("rebuilt CSR has %d arcs, want %d", c3.NumArcs(), total)
	}
}

// TestCloneSharesCSR: clones share the immutable frozen form until one
// side mutates topology.
func TestCloneSharesCSR(t *testing.T) {
	g := Grid(3, 3, 2) // generators freeze
	if g.Frozen() == nil {
		t.Fatal("generator did not freeze")
	}
	c := g.Clone()
	if c.Frozen() != g.Frozen() {
		t.Fatal("clone does not share the frozen CSR")
	}
	c.AddVertex()
	if c.Frozen() != nil {
		t.Fatal("clone mutation did not drop its CSR")
	}
	if g.Frozen() == nil {
		t.Fatal("clone mutation dropped the original's CSR")
	}
}

// TestConcurrentFreeze: Freeze may race with itself and with Frozen
// readers (the engine shares instances between jobs).
func TestConcurrentFreeze(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := RandomStronglyConnected(rng, 50, 150, 1, 3)
	g.unfreeze() // start cold
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := g.Freeze()
			if c == nil || c.NumArcs() != g.NumEdges() {
				t.Error("bad CSR from concurrent Freeze")
			}
			_ = g.Frozen()
		}()
	}
	wg.Wait()
}
