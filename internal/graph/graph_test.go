package graph

import (
	"math/rand/v2"
	"testing"
)

func TestAddEdgeDirected(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1, 2.5)
	if id != 0 {
		t.Fatalf("first edge ID = %d, want 0", id)
	}
	if g.NumEdges() != 1 || g.NumVertices() != 3 {
		t.Fatalf("got %d edges, %d vertices; want 1, 3", g.NumEdges(), g.NumVertices())
	}
	e := g.Edge(0)
	if e.From != 0 || e.To != 1 || e.Capacity != 2.5 {
		t.Fatalf("edge = %+v, want {0 1 2.5}", e)
	}
	if len(g.OutArcs(0)) != 1 || len(g.OutArcs(1)) != 0 {
		t.Fatalf("directed adjacency wrong: out(0)=%v out(1)=%v", g.OutArcs(0), g.OutArcs(1))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddEdgeUndirected(t *testing.T) {
	g := NewUndirected(3)
	g.AddEdge(0, 1, 1)
	if len(g.OutArcs(0)) != 1 || len(g.OutArcs(1)) != 1 {
		t.Fatalf("undirected adjacency wrong: out(0)=%v out(1)=%v", g.OutArcs(0), g.OutArcs(1))
	}
	if g.OutArcs(1)[0].To != 0 {
		t.Fatalf("reverse arc points to %d, want 0", g.OutArcs(1)[0].To)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	New(2).AddEdge(0, 5, 1)
}

func TestOther(t *testing.T) {
	g := NewUndirected(2)
	id := g.AddEdge(0, 1, 1)
	if got := g.Other(id, 0); got != 1 {
		t.Errorf("Other(id, 0) = %d, want 1", got)
	}
	if got := g.Other(id, 1); got != 0 {
		t.Errorf("Other(id, 1) = %d, want 0", got)
	}
}

func TestOtherPanicsForNonEndpoint(t *testing.T) {
	g := NewUndirected(3)
	id := g.AddEdge(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint did not panic")
		}
	}()
	g.Other(id, 2)
}

func TestMinMaxCapacity(t *testing.T) {
	g := New(3)
	if g.MinCapacity() != 0 || g.MaxCapacity() != 0 {
		t.Fatal("edgeless graph should report 0 capacities")
	}
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 7)
	g.AddEdge(0, 2, 5)
	if got := g.MinCapacity(); got != 3 {
		t.Errorf("MinCapacity = %g, want 3", got)
	}
	if got := g.MaxCapacity(); got != 7 {
		t.Errorf("MaxCapacity = %g, want 7", got)
	}
}

func TestScaleCapacities(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 4)
	g.ScaleCapacities(0.5)
	if got := g.Edge(0).Capacity; got != 2 {
		t.Errorf("capacity after scale = %g, want 2", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.SetCapacity(0, 9)
	c.AddVertex()
	if g.Edge(0).Capacity != 1 {
		t.Error("clone capacity change leaked into original")
	}
	if g.NumVertices() != 2 {
		t.Error("clone AddVertex leaked into original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone Validate: %v", err)
	}
}

func TestValidateRejectsBadCapacity(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.SetCapacity(0, -1)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted negative capacity")
	}
}

func TestSubdivideEdgeDirected(t *testing.T) {
	g := New(2)
	id := g.AddEdge(0, 1, 3)
	ids := g.SubdivideEdge(id, 3)
	if len(ids) != 3 {
		t.Fatalf("got %d segment IDs, want 3", len(ids))
	}
	if g.NumVertices() != 4 {
		t.Fatalf("got %d vertices, want 4 (2 original + 2 fresh)", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("got %d edges, want 3", g.NumEdges())
	}
	// Walk the path from 0 to 1.
	v := 0
	for hops := 0; hops < 3; hops++ {
		arcs := g.OutArcs(v)
		if len(arcs) != 1 {
			t.Fatalf("vertex %d has %d out-arcs, want 1", v, len(arcs))
		}
		if g.Edge(arcs[0].Edge).Capacity != 3 {
			t.Fatalf("segment capacity = %g, want 3", g.Edge(arcs[0].Edge).Capacity)
		}
		v = arcs[0].To
	}
	if v != 1 {
		t.Fatalf("path from 0 ends at %d, want 1", v)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after subdivision: %v", err)
	}
}

func TestSubdivideEdgeKeepsOtherEdges(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(1, 2, 2)
	g.SubdivideEdge(a, 2)
	if e := g.Edge(b); e.From != 1 || e.To != 2 || e.Capacity != 2 {
		t.Fatalf("unrelated edge mutated: %+v", e)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSubdivideEdgeIdentity(t *testing.T) {
	g := New(2)
	id := g.AddEdge(0, 1, 1)
	ids := g.SubdivideEdge(id, 1)
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("k=1 subdivision should be identity, got %v", ids)
	}
	if g.NumEdges() != 1 || g.NumVertices() != 2 {
		t.Fatal("k=1 subdivision changed the graph")
	}
}

func TestSubdivideEdgeUndirected(t *testing.T) {
	g := NewUndirected(2)
	id := g.AddEdge(0, 1, 5)
	g.SubdivideEdge(id, 2)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices / %d edges, want 3 / 2", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestLine(t *testing.T) {
	g := Line(4, 2)
	if g.NumEdges() != 3 || !g.Directed() {
		t.Fatalf("Line(4): %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(5, 1)
	if g.NumEdges() != 5 {
		t.Fatalf("Cycle(5) has %d edges, want 5", g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if len(g.OutArcs(v)) != 1 {
			t.Fatalf("cycle vertex %d out-degree %d, want 1", v, len(g.OutArcs(v)))
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 2, 1)
	// 3x2 grid: horizontal edges 2*2=4, vertical edges 3*1=3.
	if g.NumVertices() != 6 || g.NumEdges() != 7 {
		t.Fatalf("Grid(3,2): %d vertices, %d edges; want 6, 7", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComplete(t *testing.T) {
	d := Complete(4, 1, true)
	if d.NumEdges() != 12 {
		t.Fatalf("directed K4 has %d edges, want 12", d.NumEdges())
	}
	u := Complete(4, 1, false)
	if u.NumEdges() != 6 {
		t.Fatalf("undirected K4 has %d edges, want 6", u.NumEdges())
	}
}

func TestLayered(t *testing.T) {
	g := Layered([]int{2, 3, 1}, 4)
	if g.NumVertices() != 6 {
		t.Fatalf("vertices = %d, want 6", g.NumVertices())
	}
	if g.NumEdges() != 2*3+3*1 {
		t.Fatalf("edges = %d, want 9", g.NumEdges())
	}
	// Layer 0 vertices reach only layer 1.
	for _, a := range g.OutArcs(0) {
		if a.To < 2 || a.To >= 5 {
			t.Fatalf("layer-0 arc to %d, want within layer 1 (2..4)", a.To)
		}
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, tc := range []struct {
		n, m     int
		directed bool
	}{{5, 4, false}, {8, 15, false}, {6, 10, true}} {
		g := RandomConnected(rng, tc.n, tc.m, 1, 5, tc.directed)
		if g.NumVertices() != tc.n || g.NumEdges() != tc.m {
			t.Fatalf("RandomConnected(%d,%d): got %d vertices %d edges", tc.n, tc.m, g.NumVertices(), g.NumEdges())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			if e.Capacity < 1 || e.Capacity > 5 {
				t.Fatalf("capacity %g outside [1,5]", e.Capacity)
			}
		}
		if !tc.directed && !isConnected(g) {
			t.Fatal("undirected RandomConnected graph is not connected")
		}
	}
}

func TestRandomStronglyConnected(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := RandomStronglyConnected(rng, 6, 12, 2, 2)
	if g.NumEdges() != 12 {
		t.Fatalf("edges = %d, want 12", g.NumEdges())
	}
	// Every vertex must reach every other.
	for s := 0; s < 6; s++ {
		seen := reachable(g, s)
		if len(seen) != 6 {
			t.Fatalf("vertex %d reaches %d vertices, want 6", s, len(seen))
		}
	}
}

func TestRandomConnectedPanicsOnTooFewEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m < n-1")
		}
	}()
	RandomConnected(rand.New(rand.NewPCG(0, 0)), 5, 2, 1, 1, false)
}

func isConnected(g *Graph) bool {
	return len(reachable(g, 0)) == g.NumVertices()
}

func reachable(g *Graph, src int) map[int]bool {
	seen := map[int]bool{src: true}
	stack := []int{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.OutArcs(v) {
			if !seen[a.To] {
				seen[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return seen
}
