package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// buildRandom constructs a bounded random graph deterministically from
// quick-generated primitives.
func buildRandom(seed uint64, nRaw, mRaw uint8, directed bool) *Graph {
	rng := rand.New(rand.NewPCG(seed, seed^55))
	n := 2 + int(nRaw%12)
	m := n + int(mRaw%30)
	if directed {
		return RandomStronglyConnected(rng, n, m, 1, 5)
	}
	return RandomConnected(rng, n, m, 1, 5, false)
}

// TestQuickValidateInvariant: every generated graph validates, and its
// clone is structurally identical and independent.
func TestQuickValidateInvariant(t *testing.T) {
	f := func(seed uint64, n, m uint8, directed bool) bool {
		g := buildRandom(seed, n, m, directed)
		if g.Validate() != nil {
			return false
		}
		c := g.Clone()
		if c.Validate() != nil || c.NumEdges() != g.NumEdges() || c.NumVertices() != g.NumVertices() {
			return false
		}
		for i := 0; i < g.NumEdges(); i++ {
			if c.Edge(i) != g.Edge(i) {
				return false
			}
		}
		// Mutating the clone must not leak.
		c.SetCapacity(0, 99)
		return g.Edge(0).Capacity != 99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickArcConsistency: every arc in an adjacency list corresponds to
// its edge, and total arc count matches directedness.
func TestQuickArcConsistency(t *testing.T) {
	f := func(seed uint64, n, m uint8, directed bool) bool {
		g := buildRandom(seed, n, m, directed)
		total := 0
		for v := 0; v < g.NumVertices(); v++ {
			for _, a := range g.OutArcs(v) {
				e := g.Edge(a.Edge)
				if directed {
					if e.From != v || e.To != a.To {
						return false
					}
				} else if g.Other(a.Edge, v) != a.To {
					return false
				}
				total++
			}
		}
		want := g.NumEdges()
		if !directed {
			want *= 2
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubdivisionPreservesStructure: subdividing a random edge keeps
// the graph valid and preserves total capacity-weighted reachability of
// the edge's endpoints.
func TestQuickSubdivisionPreservesStructure(t *testing.T) {
	f := func(seed uint64, n, m, pick, kRaw uint8, directed bool) bool {
		g := buildRandom(seed, n, m, directed)
		id := int(pick) % g.NumEdges()
		e := g.Edge(id)
		k := 1 + int(kRaw%4)
		ids := g.SubdivideEdge(id, k)
		if len(ids) != k || g.Validate() != nil {
			return false
		}
		// The endpoints must remain connected through the new path.
		seen := map[int]bool{e.From: true}
		stack := []int{e.From}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.OutArcs(v) {
				if !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
		}
		return seen[e.To]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
