// Package graph provides edge-capacitated directed and undirected graphs,
// the substrate for the unsplittable flow problem. Vertices are dense
// integers 0..n-1 and edges are referred to by dense integer IDs, so that
// per-edge state (capacities, dual prices, flow loads) can live in plain
// slices indexed by edge ID.
package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Edge is a capacitated edge. For a directed graph it carries flow only
// From -> To; for an undirected graph the single capacity is shared by
// traffic in both directions, matching the paper's model.
type Edge struct {
	From, To int
	Capacity float64
}

// Arc is a traversal step used by adjacency lists: crossing edge Edge
// brings you to vertex To. In an undirected graph each edge produces two
// arcs sharing the same edge ID (and hence the same capacity and price).
type Arc struct {
	Edge int // edge ID, index into the graph's edge slice
	To   int // head vertex reached by crossing the edge
}

// Graph is an edge-capacitated multigraph. The zero value is an empty
// directed graph with no vertices; use New or NewUndirected for graphs
// with a fixed vertex count.
type Graph struct {
	directed bool
	n        int
	edges    []Edge
	out      [][]Arc

	// csr is the frozen compressed-sparse-row adjacency (see Freeze). It
	// is an atomic pointer so Freeze may race with concurrent readers
	// (e.g. two engine jobs sharing one instance); topology mutations are
	// not concurrency-safe, same as the rest of the struct.
	csr      atomic.Pointer[CSR]
	rcsr     atomic.Pointer[CSR]
	freezeMu sync.Mutex
}

// CSR is a frozen compressed-sparse-row view of a graph's adjacency:
// the arcs leaving vertex v are the index range [Start[v], Start[v+1])
// of the flat Head/EdgeID slices. It is immutable once built and
// contains no capacities or prices, so capacity updates (SetCapacity,
// ScaleCapacities) do not invalidate it — only topology mutations do.
//
// The flat int32 layout keeps the Dijkstra inner loop on two
// cache-friendly streams instead of chasing per-vertex slice headers.
type CSR struct {
	Start  []int32 // len NumVertices+1; arc index range per vertex
	Head   []int32 // arc head vertex (len = total arcs)
	EdgeID []int32 // arc edge ID, parallel to Head
}

// NumArcs returns the total number of arcs (twice the edge count for an
// undirected graph).
func (c *CSR) NumArcs() int { return len(c.Head) }

// Freeze builds (once) the graph's CSR adjacency and returns it.
// Calling Freeze again without an intervening topology mutation returns
// the same CSR; mutating the topology (AddVertex, AddEdge,
// SubdivideEdge) drops the frozen form, so callers must re-freeze after
// construction changes. Freeze is safe to call from concurrent readers.
func (g *Graph) Freeze() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	g.freezeMu.Lock()
	defer g.freezeMu.Unlock()
	if c := g.csr.Load(); c != nil {
		return c
	}
	arcs := 0
	for _, a := range g.out {
		arcs += len(a)
	}
	c := &CSR{
		Start:  make([]int32, g.n+1),
		Head:   make([]int32, arcs),
		EdgeID: make([]int32, arcs),
	}
	k := int32(0)
	for v, out := range g.out {
		c.Start[v] = k
		for _, a := range out {
			c.Head[k] = int32(a.To)
			c.EdgeID[k] = int32(a.Edge)
			k++
		}
	}
	c.Start[g.n] = k
	g.csr.Store(c)
	return c
}

// Frozen returns the graph's CSR adjacency if Freeze has been called
// since the last topology mutation, else nil. It never builds.
func (g *Graph) Frozen() *CSR { return g.csr.Load() }

// FreezeReverse builds (once) the reverse CSR adjacency — the arcs
// *entering* each vertex, with edge IDs preserved — and returns it.
// Backward searches (bidirectional single-target probes) traverse it in
// place of per-query reversal. For an undirected graph the adjacency is
// symmetric, so the forward CSR itself is returned. Like Freeze it is
// invalidated by topology mutations and safe for concurrent readers.
func (g *Graph) FreezeReverse() *CSR {
	if !g.directed {
		return g.Freeze()
	}
	if c := g.rcsr.Load(); c != nil {
		return c
	}
	g.freezeMu.Lock()
	defer g.freezeMu.Unlock()
	if c := g.rcsr.Load(); c != nil {
		return c
	}
	deg := make([]int32, g.n+1)
	arcs := 0
	for _, out := range g.out {
		for _, a := range out {
			deg[a.To+1]++
			arcs++
		}
	}
	c := &CSR{
		Start:  make([]int32, g.n+1),
		Head:   make([]int32, arcs),
		EdgeID: make([]int32, arcs),
	}
	for v := 0; v < g.n; v++ {
		c.Start[v+1] = c.Start[v] + deg[v+1]
	}
	next := make([]int32, g.n)
	copy(next, c.Start[:g.n])
	for v, out := range g.out {
		for _, a := range out {
			k := next[a.To]
			next[a.To]++
			c.Head[k] = int32(v)
			c.EdgeID[k] = int32(a.Edge)
		}
	}
	g.rcsr.Store(c)
	return c
}

// FrozenReverse returns the reverse CSR if FreezeReverse has been
// called since the last topology mutation, else nil. For an undirected
// graph it mirrors Frozen.
func (g *Graph) FrozenReverse() *CSR {
	if !g.directed {
		return g.csr.Load()
	}
	return g.rcsr.Load()
}

// unfreeze drops the frozen CSR; every topology mutator calls it.
func (g *Graph) unfreeze() {
	g.csr.Store(nil)
	g.rcsr.Store(nil)
}

// New returns an empty directed graph with n vertices.
func New(n int) *Graph {
	return &Graph{directed: true, n: n, out: make([][]Arc, n)}
}

// NewUndirected returns an empty undirected graph with n vertices.
func NewUndirected(n int) *Graph {
	return &Graph{directed: false, n: n, out: make([][]Arc, n)}
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of edges. An undirected edge counts once.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddVertex appends a new isolated vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.unfreeze()
	g.out = append(g.out, nil)
	g.n++
	return g.n - 1
}

// AddEdge adds an edge from u to v with the given capacity and returns its
// edge ID. In an undirected graph the edge is traversable both ways but
// has a single shared capacity. AddEdge panics if u or v is out of range;
// graph construction errors are programming errors, not runtime input.
func (g *Graph) AddEdge(u, v int, capacity float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0,%d)", u, v, g.n))
	}
	g.unfreeze()
	id := len(g.edges)
	g.edges = append(g.edges, Edge{From: u, To: v, Capacity: capacity})
	g.out[u] = append(g.out[u], Arc{Edge: id, To: v})
	if !g.directed {
		g.out[v] = append(g.out[v], Arc{Edge: id, To: u})
	}
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns the underlying edge slice. Callers must not modify it;
// use SetCapacity to adjust capacities.
func (g *Graph) Edges() []Edge { return g.edges }

// SetCapacity replaces the capacity of edge id.
func (g *Graph) SetCapacity(id int, capacity float64) { g.edges[id].Capacity = capacity }

// ScaleCapacities multiplies every capacity by f.
func (g *Graph) ScaleCapacities(f float64) {
	for i := range g.edges {
		g.edges[i].Capacity *= f
	}
}

// OutArcs returns the arcs leaving vertex v (in an undirected graph, all
// arcs incident to v). Callers must not modify the returned slice.
func (g *Graph) OutArcs(v int) []Arc { return g.out[v] }

// Other returns the endpoint of edge id that is not v. It panics if v is
// not an endpoint of the edge.
func (g *Graph) Other(id, v int) int {
	e := g.edges[id]
	switch v {
	case e.From:
		return e.To
	case e.To:
		return e.From
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d", v, id))
}

// MinCapacity returns the minimum edge capacity, the quantity the paper
// calls B (after demand normalization). It returns 0 for an edgeless graph.
func (g *Graph) MinCapacity() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	min := g.edges[0].Capacity
	for _, e := range g.edges[1:] {
		if e.Capacity < min {
			min = e.Capacity
		}
	}
	return min
}

// MaxCapacity returns the maximum edge capacity (0 for an edgeless graph).
func (g *Graph) MaxCapacity() float64 {
	max := 0.0
	for _, e := range g.edges {
		if e.Capacity > max {
			max = e.Capacity
		}
	}
	return max
}

// Clone returns a deep copy of the graph. A frozen CSR is shared with
// the clone (it is immutable and topology-only); mutating either copy
// drops only that copy's frozen form.
func (g *Graph) Clone() *Graph {
	c := &Graph{directed: g.directed, n: g.n}
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	c.out = make([][]Arc, len(g.out))
	for v, arcs := range g.out {
		c.out[v] = make([]Arc, len(arcs))
		copy(c.out[v], arcs)
	}
	c.csr.Store(g.csr.Load())
	c.rcsr.Store(g.rcsr.Load())
	return c
}

// Validate checks structural invariants: endpoint ranges, positive
// capacities, and adjacency consistency.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return errors.New("graph: negative vertex count")
	}
	if len(g.out) != g.n {
		return fmt.Errorf("graph: adjacency size %d != vertex count %d", len(g.out), g.n)
	}
	for id, e := range g.edges {
		if e.From < 0 || e.From >= g.n || e.To < 0 || e.To >= g.n {
			return fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range [0,%d)", id, e.From, e.To, g.n)
		}
		if e.Capacity <= 0 {
			return fmt.Errorf("graph: edge %d has non-positive capacity %g", id, e.Capacity)
		}
	}
	wantArcs := len(g.edges)
	if !g.directed {
		wantArcs *= 2
	}
	total := 0
	for v, arcs := range g.out {
		for _, a := range arcs {
			if a.Edge < 0 || a.Edge >= len(g.edges) {
				return fmt.Errorf("graph: vertex %d has arc with bad edge ID %d", v, a.Edge)
			}
			e := g.edges[a.Edge]
			if g.directed {
				if e.From != v || e.To != a.To {
					return fmt.Errorf("graph: arc at %d disagrees with edge %d", v, a.Edge)
				}
			} else if !(e.From == v && e.To == a.To) && !(e.To == v && e.From == a.To) {
				return fmt.Errorf("graph: undirected arc at %d disagrees with edge %d", v, a.Edge)
			}
			total++
		}
	}
	if total != wantArcs {
		return fmt.Errorf("graph: have %d arcs, want %d", total, wantArcs)
	}
	return nil
}

// SubdivideEdge replaces edge id by a path of k >= 1 edges through k-1
// fresh intermediate vertices, each new edge inheriting the original
// capacity. With k == 1 the edge is unchanged. It returns the IDs of the
// path's edges in order from the original tail to the original head.
//
// Subdivision is used by the paper's hardened lower-bound instance
// (Theorem 3.11), where edge (s_i, v_j) becomes a path of iℓ+1−j edges.
// The original edge ID is reused for the first path segment so edge IDs
// stay dense.
func (g *Graph) SubdivideEdge(id, k int) []int {
	if k < 1 {
		panic("graph: SubdivideEdge requires k >= 1")
	}
	if k == 1 {
		return []int{id}
	}
	e := g.edges[id]
	// Remove the arcs of the original edge; they are re-added segment by
	// segment below.
	g.removeArcs(id)
	ids := make([]int, 0, k)
	prev := e.From
	for seg := 0; seg < k; seg++ {
		var next int
		if seg == k-1 {
			next = e.To
		} else {
			next = g.AddVertex()
		}
		if seg == 0 {
			// Reuse the original edge slot for the first segment.
			g.edges[id] = Edge{From: prev, To: next, Capacity: e.Capacity}
			g.out[prev] = append(g.out[prev], Arc{Edge: id, To: next})
			if !g.directed {
				g.out[next] = append(g.out[next], Arc{Edge: id, To: prev})
			}
			ids = append(ids, id)
		} else {
			ids = append(ids, g.AddEdge(prev, next, e.Capacity))
		}
		prev = next
	}
	return ids
}

func (g *Graph) removeArcs(id int) {
	g.unfreeze()
	e := g.edges[id]
	g.out[e.From] = dropArc(g.out[e.From], id)
	if !g.directed {
		g.out[e.To] = dropArc(g.out[e.To], id)
	}
}

func dropArc(arcs []Arc, edge int) []Arc {
	w := arcs[:0]
	for _, a := range arcs {
		if a.Edge != edge {
			w = append(w, a)
		}
	}
	return w
}

// String returns a short human-readable description.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("%s graph: %d vertices, %d edges", kind, g.n, len(g.edges))
}
