package core

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"truthfulufp/internal/pathfind"
)

// Candidate is one request's best path in the current iteration, as seen
// by the selection step: Ratio is the paper's normalized length
// (d_r/v_r)·|p_r|. Tie-break rules compare candidates with equal ratios.
type Candidate struct {
	Request int
	Ratio   float64
	Path    []int
}

// TieBreak orders candidates whose ratios are (numerically) tied; it
// returns true if a should be preferred over b. The default prefers the
// smaller request index, which keeps the algorithm deterministic.
type TieBreak func(a, b Candidate) bool

// Options configure the primal-dual solvers. The zero value is ready to
// use.
type Options struct {
	// Workers bounds the number of goroutines used for per-iteration
	// shortest-path computations; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// TieBreak overrides the default tie-breaking between candidates with
	// equal ratios. It never sees candidates with different ratios.
	TieBreak TieBreak
	// MaxIterations caps the main loop (0 = unlimited). Useful for the
	// repetitions variant whose iteration count is pseudo-polynomial.
	MaxIterations int
	// OnIteration, if non-nil, observes each iteration after selection:
	// the iteration index (from 0), the selected candidate, and the dual
	// value Σ c_e·y_e before the price update.
	OnIteration func(iter int, chosen Candidate, dualBefore float64)
	// NoIncremental disables the dirty-source shortest-path cache: every
	// iteration recomputes every active source from scratch (the
	// pre-cache behavior). Allocations are identical either way — the
	// cache reuses only trees a recomputation would reproduce bit for bit
	// — so this exists for benchmarking the cache and as a belt-and-
	// braces escape hatch.
	NoIncremental bool
	// SingleTarget enables the single-target path oracle: a source all
	// of whose remaining requests share one target is answered by a
	// cached early-exit search (pathfind.Incremental.PathTo) instead of
	// a full shortest-path tree. Answers are bit-identical either way,
	// so allocations do not depend on this flag; it pays off when most
	// sources carry a single request — the mechanism's critical-value
	// bisection, whose probes re-solve the instance dozens of times per
	// winner, enables it for exactly that reason.
	SingleTarget bool
	// Adaptive replaces SingleTarget's static classification (lone-target
	// sources to the oracle, everything else to trees) with the per-slot
	// adaptive refresh policy (pathfind.Incremental.PreferSingle): a
	// source fanning out to a few targets routes to single-target
	// searches once its observed dirty rate makes whole-tree refreshes a
	// loss. Answers are bit-identical whichever way a slot is routed, so
	// the flag moves work, never results. Implies single-target serving;
	// SingleTarget need not be set alongside it.
	Adaptive bool
	// Landmarks, if non-nil, prunes the single-target oracle's searches
	// with ALT lower bounds (pathfind.BuildLandmarks). The tables must be
	// built on the instance's frozen graph under a lower bound of the
	// run's weights — the initial prices 1/capacity qualify for every
	// exponential-price run, since prices only rise. The cache
	// re-validates the bound lazily and rebuilds (or, past the violation
	// budget, self-disables) on violation, so a stale table costs speed,
	// never correctness.
	Landmarks *pathfind.Landmarks
	// LandmarkRegistry, if non-nil, is where automatic landmark builds
	// (sessions past the auto-enable size, with Landmarks nil) are
	// shared: structurally identical topologies with the same initial
	// prices reuse one immutable table set instead of rebuilding per
	// session or per shard. The serving stack passes
	// pathfind.SharedLandmarks.
	LandmarkRegistry *pathfind.LandmarkRegistry
	// LandmarkStaleRatio tunes the landmark lifecycle's prune-ratio
	// rebuild threshold (see pathfind.OracleConfig.StalePruneRatio).
	// Zero keeps pathfind.DefaultStalePruneRatio; negative disables
	// prune-driven rebuilds.
	LandmarkStaleRatio float64
	// OnLandmarkRebuild, if non-nil, observes every landmark rebuild
	// with its duration in seconds (see pathfind.OracleConfig.OnRebuild)
	// — the monotone-counter hook the session metrics feed on.
	OnLandmarkRebuild func(seconds float64)
	// Bidirectional routes single-target oracle misses through the
	// bidirectional probe (meet-in-the-middle plus a potential-guided
	// forward rerun) — the mechanism's critical-value bisection enables
	// this for its probe re-solves.
	Bidirectional bool
	// PolicyWarmup tunes the adaptive refresh policy's warm-up demand
	// count (see pathfind.OracleConfig.PolicyWarmup). Zero keeps
	// pathfind.DefaultPolicyWarmup; negative means no warm-up. Only
	// meaningful with Adaptive; allocations are identical regardless —
	// the policy moves work, never results.
	PolicyWarmup int
	// PolicyCostRatio tunes the adaptive policy's dirty-rate threshold
	// (see pathfind.OracleConfig.PolicyCostRatio). Zero keeps
	// pathfind.DefaultPolicyCostRatio; negative means zero (every
	// eligible post-warm-up slot routes to single-target search).
	PolicyCostRatio float64
	// PathPool, if non-nil, supplies the Dijkstra scratch buffers
	// (see pathfind.Pool). Sharing one pool across many solves — as the
	// engine does across its worker pool — keeps the per-solve allocation
	// footprint flat; nil uses a per-solve pool.
	PathPool *pathfind.Pool
}

func (o *Options) workers() int {
	if o == nil || o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// ctxErr is a non-blocking done-check on an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

func (o *Options) tieBreak() TieBreak {
	if o == nil || o.TieBreak == nil {
		return func(a, b Candidate) bool { return a.Request < b.Request }
	}
	return o.TieBreak
}

func (o *Options) noIncremental() bool { return o != nil && o.NoIncremental }

func (o *Options) singleTarget() bool { return o != nil && (o.SingleTarget || o.Adaptive) }

func (o *Options) adaptive() bool { return o != nil && o.Adaptive }

func (o *Options) landmarks() *pathfind.Landmarks {
	if o == nil {
		return nil
	}
	return o.Landmarks
}

func (o *Options) bidirectional() bool { return o != nil && o.Bidirectional }

func (o *Options) policyWarmup() int {
	if o == nil {
		return 0
	}
	return o.PolicyWarmup
}

func (o *Options) policyCostRatio() float64 {
	if o == nil {
		return 0
	}
	return o.PolicyCostRatio
}

func (o *Options) landmarkRegistry() *pathfind.LandmarkRegistry {
	if o == nil {
		return nil
	}
	return o.LandmarkRegistry
}

func (o *Options) landmarkStaleRatio() float64 {
	if o == nil {
		return 0
	}
	return o.LandmarkStaleRatio
}

func (o *Options) onLandmarkRebuild() func(float64) {
	if o == nil {
		return nil
	}
	return o.OnLandmarkRebuild
}

// oracleConfig assembles the single-target oracle configuration the
// options describe (landmarks and bidirectional probes for additive
// caches, adaptive-policy and staleness knobs for every kind).
func (o *Options) oracleConfig(lm *pathfind.Landmarks) pathfind.OracleConfig {
	return pathfind.OracleConfig{
		Landmarks:       lm,
		Bidirectional:   o.bidirectional(),
		PolicyWarmup:    o.policyWarmup(),
		PolicyCostRatio: o.policyCostRatio(),
		StalePruneRatio: o.landmarkStaleRatio(),
		OnRebuild:       o.onLandmarkRebuild(),
	}
}

func (o *Options) pathPool() *pathfind.Pool {
	if o == nil {
		return nil
	}
	return o.PathPool
}

// ensurePathPool returns the configured scratch pool, or a fresh
// private one for solvers that always want pooling.
func (o *Options) ensurePathPool() *pathfind.Pool {
	if p := o.pathPool(); p != nil {
		return p
	}
	return pathfind.NewPool()
}

// ratioTolerance treats ratios within a relative 1e-12 as tied, so that
// tie-break rules (and hence the lower-bound constructions) behave
// identically across floating-point noise.
const ratioTolerance = 1e-12

func ratiosTied(a, b float64) bool {
	return math.Abs(a-b) <= ratioTolerance*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// BoundedUFP runs Algorithm 1 (Bounded-UFP) with accuracy parameter eps.
//
// It maintains dual prices y_e (initially 1/c_e), and while requests
// remain and Σ_e c_e·y_e <= e^{ε(B-1)}, repeatedly routes the request
// minimizing (d_r/v_r)·(shortest-path length under y), multiplying the
// prices along the chosen path by e^{εB·d/c_e}.
//
// Per Theorem 3.1, calling BoundedUFP with eps = ε/6 on an instance with
// B >= ln(m)/ε² yields a feasible ((1+ε)·e/(e-1))-approximate solution,
// and the selection is monotone and exact in every request's (demand,
// value), so critical-value payments make it truthful. Use SolveUFP for
// the ε/6 calling convention.
//
// The returned allocation carries a certified DualBound: by Claim 3.6,
// scaling y by 1/α(i) is dual feasible, so min over iterations of
// D1(i)/α(i) + P(i) upper-bounds the fractional optimum.
func BoundedUFP(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return boundedUFPLoop(nil, inst, eps, opt, false)
}

// SolveUFP is the Theorem 3.1 calling convention: BoundedUFP(ε/6), which
// guarantees a ((1+ε)·e/(e-1))-approximation for B >= ln(m)/ε²-bounded
// instances.
func SolveUFP(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return SolveUFPCtx(nil, inst, eps, opt)
}

// BoundedUFPRepeat runs Algorithm 3 (Bounded-UFP-Repeat) with accuracy
// parameter eps: identical price dynamics, but requests stay in the pool
// after selection and may be routed repeatedly. Per Theorem 5.1, eps =
// ε/6 yields a (1+ε)-approximation for B >= ln(m)/ε²-bounded instances;
// the iteration count is bounded by m·c_max/d_min.
func BoundedUFPRepeat(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return boundedUFPLoop(nil, inst, eps, opt, true)
}

// SolveUFPRepeat is the Theorem 5.1 calling convention:
// BoundedUFPRepeat(ε/6).
func SolveUFPRepeat(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return SolveUFPRepeatCtx(nil, inst, eps, opt)
}

func boundedUFPLoop(ctx context.Context, inst *Instance, eps float64, opt *Options, repeat bool) (*Allocation, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	b := inst.B()
	if len(inst.Requests) == 0 {
		return &Allocation{Stop: StopAllSatisfied, DualBound: 0}, nil
	}
	if err := checkExponentRange(eps, b); err != nil {
		return nil, err
	}
	g := inst.G
	m := g.NumEdges()
	y := make([]float64, m)
	dualSum := 0.0 // Σ_e c_e·y_e, the quantity D1(i)
	for e := 0; e < m; e++ {
		y[e] = 1 / g.Edge(e).Capacity
		dualSum++
	}
	threshold := math.Exp(eps * (b - 1))
	remaining := make([]bool, len(inst.Requests))
	numRemaining := len(inst.Requests)
	for i := range remaining {
		remaining[i] = true
	}
	alloc := &Allocation{DualBound: math.Inf(1)}
	tie := opt.tieBreak()
	sp := newShortestPaths(inst, opt)
	for {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("core: solve cancelled after %d iterations: %w", alloc.Iterations, err)
		}
		if !repeat && numRemaining == 0 {
			alloc.Stop = StopAllSatisfied
			break
		}
		if dualSum > threshold {
			alloc.Stop = StopDualThreshold
			break
		}
		if opt != nil && opt.MaxIterations > 0 && alloc.Iterations >= opt.MaxIterations {
			alloc.Stop = StopIterationLimit
			break
		}
		best, ok := sp.bestCandidate(remaining, y, tie)
		if !ok {
			alloc.Stop = StopNoRoutablePath
			break
		}
		// Dual-fitting bound (Claim 3.6): (y/α, z) is dual feasible, with
		// value D1/α + P where P is the value routed so far.
		if bound := dualSum/best.Ratio + alloc.Value; bound < alloc.DualBound {
			alloc.DualBound = bound
		}
		if opt != nil && opt.OnIteration != nil {
			opt.OnIteration(alloc.Iterations, best, dualSum)
		}
		r := inst.Requests[best.Request]
		for _, e := range best.Path {
			c := g.Edge(e).Capacity
			old := y[e]
			y[e] = old * math.Exp(eps*b*r.Demand/c)
			dualSum += c * (y[e] - old)
		}
		// Only the admitted path's prices moved; every cached tree not
		// touching it stays exact.
		sp.invalidate(best.Path)
		alloc.Routed = append(alloc.Routed, Routed{Request: best.Request, Path: best.Path})
		alloc.Value += r.Value
		alloc.Iterations++
		if !repeat {
			remaining[best.Request] = false
			numRemaining--
		}
	}
	// One more dual-fitting sample after the loop: the final prices with
	// the final α still certify a bound (and are the only sample if the
	// loop exited immediately).
	if alloc.Stop == StopDualThreshold {
		if best, ok := sp.bestCandidate(remaining, y, tie); ok {
			if bound := dualSum/best.Ratio + alloc.Value; bound < alloc.DualBound {
				alloc.DualBound = bound
			}
		}
	}
	if alloc.Stop == StopAllSatisfied && alloc.Value < alloc.DualBound {
		// Every request was satisfied, so the fractional optimum is at
		// most the total value, which the allocation attains: optimal.
		alloc.DualBound = alloc.Value
	}
	return alloc, nil
}

// shortestPaths computes, per iteration, the best candidate over all
// remaining requests. Requests are grouped by source vertex so one
// Dijkstra serves every remaining request sharing that source; the
// trees live in a pathfind.Incremental dirty-source cache, so after the
// first iteration only sources whose tree touches a repriced edge are
// recomputed (in parallel across a bounded worker pool with pooled
// scratches). The reduction is deterministic (request-index order with
// explicit tie-breaking), and — because cached trees are bit-identical
// to recomputations (see pathfind.Incremental) — so is the candidate,
// with or without the cache.
type shortestPaths struct {
	inst     *Instance
	workers  int
	full     bool // Options.NoIncremental: recompute all active sources per call
	single   bool // single-target serving enabled (SingleTarget or Adaptive)
	adaptive bool // Options.Adaptive: PreferSingle drives the routing
	inc      *pathfind.Incremental
	seen     []bool    // per-slot scratch for activeSlots
	fan      [][]int32 // per-slot distinct remaining targets, capped past fanCap
	tree     []bool    // per-slot: answer this iteration from the refreshed tree
}

// fanCap bounds the distinct-target counting in activeSlots: the
// adaptive policy never routes fan-outs beyond the path-cache capacity
// to single-target search, so counting further adds no signal.
const fanCap = 8

func newShortestPaths(inst *Instance, opt *Options) *shortestPaths {
	sources := make([]int, 0, len(inst.Requests))
	for _, r := range inst.Requests {
		sources = append(sources, r.Source)
	}
	sp := &shortestPaths{
		inst:     inst,
		workers:  opt.workers(),
		full:     opt.noIncremental(),
		single:   opt.singleTarget(),
		adaptive: opt.adaptive(),
		inc:      pathfind.NewIncremental(inst.G, sources, opt.pathPool()),
	}
	sp.inc.SetOracle(opt.oracleConfig(opt.landmarks()))
	// Each slot only ever answers queries for its own requests' targets,
	// so restrict the recorded edge sets to those paths: repricing an
	// edge used elsewhere in a tree no longer dirties it.
	targets := make(map[int][]int, sp.inc.NumSlots())
	for _, r := range inst.Requests {
		slot, _ := sp.inc.Slot(r.Source)
		targets[slot] = append(targets[slot], r.Target)
	}
	for slot, ts := range targets {
		sp.inc.SetTargets(slot, ts)
	}
	sp.seen = make([]bool, sp.inc.NumSlots())
	if sp.single {
		sp.fan = make([][]int32, sp.inc.NumSlots())
		sp.tree = make([]bool, sp.inc.NumSlots())
	}
	return sp
}

// bestCandidate runs the per-iteration path search: refresh the trees
// of every source that still has remaining requests (recomputing only
// dirty ones; in single-target mode, sources whose remaining requests
// all share one target skip the tree and are answered by the cached
// early-exit oracle instead), then a deterministic argmin of (d/v)·dist
// over remaining requests. Both query paths return bit-identical
// (distance, path) answers, so the argmin — and hence the allocation —
// does not depend on the mode.
func (sp *shortestPaths) bestCandidate(remaining []bool, y []float64, tie TieBreak) (Candidate, bool) {
	active := sp.activeSlots(remaining)
	if len(active) == 0 && !sp.single {
		return Candidate{}, false
	}
	weight := pathfind.FromSlice(y)
	if sp.full {
		sp.inc.InvalidateAll()
	}
	sp.inc.Refresh(active, weight, sp.workers)
	best := Candidate{Request: -1, Ratio: math.Inf(1)}
	for i, r := range sp.inst.Requests {
		if !remaining[i] {
			continue
		}
		slot, _ := sp.inc.Slot(r.Source)
		var dist float64
		var path func() []int
		if sp.single && !sp.tree[slot] {
			p, d, ok := sp.inc.PathTo(slot, r.Target, weight)
			if !ok {
				continue
			}
			dist = d
			path = func() []int { return p }
		} else {
			tree := sp.inc.Tree(slot)
			if math.IsInf(tree.Dist[r.Target], 1) {
				continue
			}
			dist = tree.Dist[r.Target]
			path = func() []int { p, _ := tree.PathTo(r.Target); return p }
		}
		ratio := r.Demand / r.Value * dist
		cand := Candidate{Request: i, Ratio: ratio}
		switch {
		case best.Request < 0 || ratio < best.Ratio && !ratiosTied(ratio, best.Ratio):
			cand.Path = path()
			best = cand
		case ratiosTied(ratio, best.Ratio):
			cand.Path = path()
			if tie(cand, best) {
				best = cand
			}
		}
	}
	if best.Request < 0 {
		return Candidate{}, false
	}
	return best, true
}

// invalidate reports a price update on the given edges to the cache.
func (sp *shortestPaths) invalidate(path []int) {
	sp.inc.Invalidate(path)
}

// activeSlots returns the slots needing a full tree this iteration:
// every slot with a remaining request, minus those routed to
// single-target serving (Incremental.PathTo; sp.tree marks the rest).
// In static single-target mode a slot routes to the oracle exactly
// when its remaining requests all name one target; in adaptive mode
// the per-slot policy decides from the slot's fan-out and observed
// dirty rate (pathfind.Incremental.PreferSingle). Requests only leave
// the pool, so a slot's fan-out only shrinks over a run.
func (sp *shortestPaths) activeSlots(remaining []bool) []int {
	for i := range sp.seen {
		sp.seen[i] = false
	}
	if sp.single {
		for i := range sp.fan {
			sp.fan[i] = sp.fan[i][:0]
		}
	}
	var live []int
	for i, r := range sp.inst.Requests {
		if !remaining[i] {
			continue
		}
		slot, _ := sp.inc.Slot(r.Source)
		if !sp.seen[slot] {
			sp.seen[slot] = true
			live = append(live, slot)
		}
		if sp.single {
			sp.fan[slot] = appendFan(sp.fan[slot], int32(r.Target))
		}
	}
	if !sp.single {
		return live
	}
	active := live[:0]
	for _, slot := range live {
		fanout := len(sp.fan[slot])
		toTree := fanout > 1
		if sp.adaptive {
			toTree = !sp.inc.PreferSingle(slot, fanout)
		}
		sp.tree[slot] = toTree
		if toTree {
			active = append(active, slot)
		}
	}
	return active
}

// appendFan records a distinct target, capped just past fanCap
// (counting further carries no policy signal).
func appendFan(fan []int32, t int32) []int32 {
	if len(fan) > fanCap {
		return fan
	}
	for _, x := range fan {
		if x == t {
			return fan
		}
	}
	return append(fan, t)
}
