package core_test

import (
	"math"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/workload"
)

func TestFractionalUFPSingleEdgeContention(t *testing.T) {
	// Capacity 1, unit demands, values 2 and 1: LP picks x = (1, 0).
	inst := singleEdge(1, [2]float64{1, 2}, [2]float64{1, 1})
	fs, err := core.FractionalUFP(inst, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fs.Objective-2) > 1e-6 {
		t.Fatalf("objective = %g, want 2", fs.Objective)
	}
	if math.Abs(fs.X[0]-1) > 1e-6 || fs.X[1] > 1e-6 {
		t.Fatalf("x = %v, want (1, 0)", fs.X)
	}
}

func TestFractionalUFPSplitsAcrossPaths(t *testing.T) {
	// Diamond with capacity 1 per edge and one demand-1 request per
	// "slot": three requests can be fractionally packed to value 2 (two
	// disjoint paths).
	inst := diamondInstance(1, [2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1})
	fs, err := core.FractionalUFP(inst, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fs.Objective-2) > 1e-6 {
		t.Fatalf("objective = %g, want 2", fs.Objective)
	}
	// Decomposition fractions per request must sum to x_r.
	for r := range inst.Requests {
		sum := 0.0
		for _, wp := range fs.Decomposition[r] {
			sum += wp.Fraction
		}
		if math.Abs(sum-fs.X[r]) > 1e-6 {
			t.Fatalf("request %d decomposition sums to %g, x = %g", r, sum, fs.X[r])
		}
	}
	// Aggregated decomposition load must respect capacities.
	load := make([]float64, inst.G.NumEdges())
	for r, req := range inst.Requests {
		for _, wp := range fs.Decomposition[r] {
			for _, e := range wp.Path {
				load[e] += wp.Fraction * req.Demand
			}
		}
	}
	for e, l := range load {
		if l > inst.G.Edge(e).Capacity+1e-6 {
			t.Fatalf("decomposition overloads edge %d: %g", e, l)
		}
	}
}

func TestFractionalUFPUndirectedSharedCapacity(t *testing.T) {
	// One undirected edge of capacity 1 with opposing unit requests: they
	// share the capacity, so the LP value is max(v0, v1) when both have
	// demand 1... in fact x0 + x1 <= 1, so it is the larger value.
	g := graph.NewUndirected(2)
	g.AddEdge(0, 1, 1)
	inst := &core.Instance{G: g, Requests: []core.Request{
		{Source: 0, Target: 1, Demand: 1, Value: 1},
		{Source: 1, Target: 0, Demand: 1, Value: 3},
	}}
	fs, err := core.FractionalUFP(inst, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fs.Objective-3) > 1e-6 {
		t.Fatalf("objective = %g, want 3", fs.Objective)
	}
}

func TestFractionalUFPUncappedAllowsRepetition(t *testing.T) {
	// Figure 5's relaxation: without the x <= 1 cap a single request
	// fills the whole edge.
	inst := singleEdge(5, [2]float64{1, 1})
	capped, err := core.FractionalUFP(inst, true)
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := core.FractionalUFP(inst, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(capped.Objective-1) > 1e-6 {
		t.Fatalf("capped objective = %g, want 1", capped.Objective)
	}
	if math.Abs(uncapped.Objective-5) > 1e-6 {
		t.Fatalf("uncapped objective = %g, want 5", uncapped.Objective)
	}
}

func TestFractionalDominatesIntegralOPT(t *testing.T) {
	cfg := workload.UFPConfig{
		Vertices: 6, Edges: 10, Requests: 7, Directed: true,
		B: 2, CapSpread: 0.5,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	for seed := uint64(0); seed < 6; seed++ {
		inst := randomInstance(t, seed+300, cfg)
		fs, err := core.FractionalUFP(inst, true)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.ExactOPT(inst, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if fs.Objective < opt.Value-1e-6 {
			t.Fatalf("seed %d: fractional %g < integral %g", seed, fs.Objective, opt.Value)
		}
	}
}

func TestExactOPTDiamond(t *testing.T) {
	// Capacity 1 per edge, three unit requests: two disjoint paths exist,
	// so OPT takes the two highest values.
	inst := diamondInstance(1, [2]float64{1, 3}, [2]float64{1, 2}, [2]float64{1, 1})
	res, err := core.ExactOPT(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("enumeration should be complete on the diamond")
	}
	if res.Value != 5 {
		t.Fatalf("OPT = %g, want 5", res.Value)
	}
	alloc := &core.Allocation{Routed: res.Routed, Value: res.Value}
	checkFeasible(t, inst, alloc, false)
}

func TestExactOPTRespectsOnePathPerRequest(t *testing.T) {
	// A single request cannot be counted twice even when two disjoint
	// paths are available.
	inst := diamondInstance(1, [2]float64{1, 1})
	res, err := core.ExactOPT(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 || len(res.Routed) != 1 {
		t.Fatalf("OPT = %g with %d paths, want 1 with 1", res.Value, len(res.Routed))
	}
}

func TestExactOPTTruncationFlag(t *testing.T) {
	g := graph.Complete(6, 1, true)
	inst := &core.Instance{G: g, Requests: []core.Request{
		{Source: 0, Target: 5, Demand: 1, Value: 1},
	}}
	res, err := core.ExactOPT(inst, 3) // K6 has 65 simple 0->5 paths
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("truncated enumeration flagged as exact")
	}
}

func TestExactOPTEmptyInstance(t *testing.T) {
	inst := singleEdge(2)
	res, err := core.ExactOPT(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 || !res.Exact {
		t.Fatalf("empty OPT = %g exact=%v, want 0 exact", res.Value, res.Exact)
	}
}
