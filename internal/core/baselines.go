package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"truthfulufp/internal/pathfind"
)

// SequentialPrimalDual processes requests in input order in a single
// pass, maintaining the same exponential prices y_e = (1/c_e)e^{εB·f_e/c_e}
// as Bounded-UFP, and admits a request iff its cheapest path both fits
// the residual capacities and has price at most its value:
// d_r·Σ_{e∈p} y_e <= v_r.
//
// This is our reconstruction of the sequential/"fixed-order" primal-dual
// style of the prior-art ≈e mechanisms (Briest, Krysta, Vöcking): it uses
// identical price dynamics but lacks Bounded-UFP's global
// most-violated-constraint selection, the structural difference the paper
// credits for the improvement from e to e/(e-1). Like Bounded-UFP it is
// monotone in each request's (demand, value) — lowering d or raising v
// only helps the admission test, and earlier requests are unaffected — so
// it supports critical-value payments too.
func SequentialPrimalDual(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return sequentialPrimalDual(nil, inst, eps, opt)
}

func sequentialPrimalDual(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	b := inst.B()
	if err := checkExponentRange(eps, b); err != nil {
		return nil, err
	}
	g := inst.G
	g.Freeze()
	flow := make([]float64, g.NumEdges())
	alloc := &Allocation{DualBound: math.Inf(1)}
	// One pooled scratch and one tree serve every request: the per-call
	// dist/prev/heap allocations used to dominate this single-pass loop.
	pool := opt.ensurePathPool()
	scratch := pool.Get(g.NumVertices())
	defer pool.Put(scratch)
	var tree *pathfind.Tree
	for i, r := range inst.Requests {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("core: sequential solve cancelled at request %d: %w", i, err)
		}
		weight := func(e int) float64 {
			c := g.Edge(e).Capacity
			if flow[e]+r.Demand > c+feasTol {
				return math.Inf(1)
			}
			return math.Exp(eps*b*flow[e]/c) / c
		}
		tree = scratch.Dijkstra(g, r.Source, weight, tree)
		dist := tree.Dist[r.Target]
		if math.IsInf(dist, 1) {
			continue
		}
		if r.Demand*dist > r.Value {
			continue // price exceeds value: reject
		}
		path, _ := tree.PathTo(r.Target)
		for _, e := range path {
			flow[e] += r.Demand
		}
		alloc.Routed = append(alloc.Routed, Routed{Request: i, Path: path})
		alloc.Value += r.Value
		alloc.Iterations++
	}
	alloc.Stop = StopAllSatisfied
	if len(alloc.Routed) < len(inst.Requests) {
		alloc.Stop = StopNoRoutablePath
	}
	return alloc, nil
}

// GreedyByDensity sorts requests by value density v_r/d_r (descending,
// ties by index) and routes each along a fewest-hops residual-feasible
// path. It is the classic combinatorial baseline: simple, feasible, and
// neither monotone-by-design nor constant-factor in general.
func GreedyByDensity(inst *Instance, opt *Options) (*Allocation, error) {
	return greedyByDensity(nil, inst, opt)
}

func greedyByDensity(ctx context.Context, inst *Instance, opt *Options) (*Allocation, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	g := inst.G
	order := make([]int, len(inst.Requests))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := inst.Requests[order[a]], inst.Requests[order[b]]
		da, db := ra.Value/ra.Demand, rb.Value/rb.Demand
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	flow := make([]float64, g.NumEdges())
	alloc := &Allocation{DualBound: math.Inf(1)}
	g.Freeze()
	pool := opt.ensurePathPool()
	scratch := pool.Get(g.NumVertices())
	defer pool.Put(scratch)
	var tree *pathfind.Tree
	for _, i := range order {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("core: greedy solve cancelled at request %d: %w", i, err)
		}
		r := inst.Requests[i]
		weight := func(e int) float64 {
			if flow[e]+r.Demand > g.Edge(e).Capacity+feasTol {
				return math.Inf(1)
			}
			return 1
		}
		tree = scratch.Dijkstra(g, r.Source, weight, tree)
		if math.IsInf(tree.Dist[r.Target], 1) {
			continue
		}
		path, _ := tree.PathTo(r.Target)
		for _, e := range path {
			flow[e] += r.Demand
		}
		alloc.Routed = append(alloc.Routed, Routed{Request: i, Path: path})
		alloc.Value += r.Value
		alloc.Iterations++
	}
	alloc.Stop = StopAllSatisfied
	if len(alloc.Routed) < len(inst.Requests) {
		alloc.Stop = StopNoRoutablePath
	}
	return alloc, nil
}
