package core_test

import (
	"testing"
	"testing/quick"

	"truthfulufp/internal/core"
	"truthfulufp/internal/workload"
)

// TestQuickOptimumSandwich verifies the fundamental ordering on random
// small instances:
//
//	ALG <= exact integral OPT <= fractional LP OPT <= Bounded-UFP dual bound
//
// (each inequality up to float tolerance). This chains every reference
// solver in the repository against the core algorithm in one invariant.
func TestQuickOptimumSandwich(t *testing.T) {
	f := func(seed uint64, vRaw, rRaw uint8) bool {
		cfg := workload.UFPConfig{
			Vertices:  5 + int(vRaw%3),
			Edges:     9 + int(vRaw%5),
			Requests:  5 + int(rRaw%6),
			Directed:  true,
			B:         2 + float64(rRaw%4),
			CapSpread: 0.4,
			DemandMin: 0.4, DemandMax: 1,
			ValueMin: 0.4, ValueMax: 2,
		}
		inst, err := workload.RandomUFP(workload.NewRNG(seed), cfg)
		if err != nil {
			return false
		}
		a, err := core.BoundedUFP(inst, 0.4, nil)
		if err != nil {
			return false
		}
		opt, err := core.ExactOPT(inst, 800)
		if err != nil || !opt.Exact {
			return true // truncated enumeration: skip this sample
		}
		frac, err := core.FractionalUFP(inst, true)
		if err != nil {
			return false
		}
		const tol = 1e-6
		if a.Value > opt.Value+tol {
			return false
		}
		if opt.Value > frac.Objective+tol {
			return false
		}
		return frac.Objective <= a.DualBound+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
