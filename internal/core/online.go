package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"truthfulufp/internal/graph"
	"truthfulufp/internal/pathfind"
)

// This file implements the paper's *online* admission setting as a
// persistent-state API. Azar et al.'s mechanism is inherently
// sequential — requests arrive one at a time against a long-lived
// capacitated network — and AdmissionState is that network's live
// solver state: the exponential dual prices y_e = (1/c_e)·e^{εB·f_e/c_e},
// the residual flow ledger, and a warm dirty-source path cache, so each
// admission costs one single-target shortest-path query (usually served
// incrementally) instead of a full solve.
//
// The admission rule ("ufp/online" in the registry) is the sequential
// primal-dual baseline restructured for incremental serving: the path
// is chosen under the *pure price* weight y_e — which is edge-local and
// monotone non-decreasing, exactly the contract pathfind.Incremental
// reuses cached structures under — and residual capacity is enforced as
// a post-check on the chosen path rather than folded into the weight
// (SequentialPrimalDual's per-request residual filter depends on the
// request's demand, which would break the cache's edge-local-weight
// invariant across requests). The two rules agree until an edge
// saturates; afterwards the online rule may quote an unroutable path
// and reject on capacity where the baseline would have detoured. Both
// admit iff d_r·Σ_{e∈p} y_e <= v_r.
//
// Monotonicity — hence truthfulness via critical-value payments — is
// preserved: for a fixed history, the chosen path is independent of
// (d_r, v_r), lowering d_r only helps both the price and capacity
// tests, and raising v_r only helps the price test. Release subtracts
// flow but never lowers prices: price reversal would violate the
// monotone-weights contract (silently staling every cached structure)
// and would let a bidder churn admit/release cycles to probe or reset
// prices.

// RejectReason says why an admission was declined. The values are
// stable API (they appear verbatim in ufpserve's wire schema).
type RejectReason string

// Reject reasons.
const (
	// RejectNoPath: the network has no source→target path at all (under
	// monotone prices, reachability never comes back).
	RejectNoPath RejectReason = "no-path"
	// RejectPrice: the cheapest path's price d_r·Σ y_e exceeds the
	// request's value.
	RejectPrice RejectReason = "price"
	// RejectCapacity: the cheapest path no longer has residual capacity
	// for the request's demand.
	RejectCapacity RejectReason = "capacity"
)

// Decision is the outcome of one admission (or price quote). Price is
// the exponential-price charge d_r·Σ_{e∈p} y_e of the chosen path —
// meaningful for both admits and price rejections (+Inf when no path
// exists).
type Decision struct {
	// Admitted reports whether the request was (or, for Quote, would
	// be) admitted.
	Admitted bool
	// ID identifies the admission in the state's ledger (for Release);
	// 0 for rejections and quotes.
	ID int64
	// Reason is the rejection reason ("" when admitted).
	Reason RejectReason
	// Price is the quoted charge d_r·Σ_{e∈p} y_e.
	Price float64
	// Path holds the chosen path's edge IDs (nil when no path exists).
	// The slice is owned by the caller.
	Path []int
}

// AdmittedRequest is one live ledger entry of an AdmissionState.
type AdmittedRequest struct {
	ID      int64
	Request Request
	Path    []int
	Price   float64
}

// AdmissionState is the persistent online solver state of one network:
// prices, flows, the admitted ledger, and a warm incremental path
// cache. It is not safe for concurrent use — callers (the session
// layer) serialize access. The graph is frozen at construction and
// must not be mutated afterwards.
type AdmissionState struct {
	g       *graph.Graph
	eps     float64
	b       float64
	y       []float64 // dual prices, y_e = (1/c_e)·e^{εB·f_e/c_e}
	flow    []float64 // committed demand per edge
	dualSum float64   // Σ_e c_e·y_e, the running dual value D1

	inc           *pathfind.Incremental
	noIncremental bool

	ledger map[int64]*AdmittedRequest
	nextID int64
	value  float64 // Σ values of live admissions
}

// ErrRequestNotFound is returned by Release for an unknown (or already
// released) admission ID.
var ErrRequestNotFound = errors.New("core: admission id not found")

// autoLandmarkMinVertices is the network size at which
// NewAdmissionState builds ALT landmark tables by default. Below it
// the 2k landmark Dijkstras cost more than they ever save; above it
// they amortize over the session's admissions. NoIncremental disables
// the auto-build along with the rest of the warm state.
const autoLandmarkMinVertices = 64

// NewAdmissionState builds the online solver state for a network. The
// graph is validated and frozen; eps is the accuracy parameter ε in
// (0,1]; opt supplies the shared scratch pool, the NoIncremental
// escape hatch, and the path-oracle knobs: Options.Landmarks installs
// caller-built ALT tables (they must lower-bound the initial prices
// 1/c_e), Options.Bidirectional routes oracle misses through the
// bidirectional probe. When no tables are supplied, networks of
// autoLandmarkMinVertices or more vertices get tables built from the
// initial prices automatically — prices only rise, so the bounds hold
// for the state's whole life — shared through Options.LandmarkRegistry
// when one is configured. The landmark lifecycle keeps long sessions
// fast: once the oracle's observed prune ratio decays below the
// staleness threshold (Options.LandmarkStaleRatio), the tables are
// rebuilt against the current prices (Options.OnLandmarkRebuild
// observes each rebuild). Other Options fields are ignored — admission
// is a single-query step with no intra-step parallelism or tie-break
// surface.
func NewAdmissionState(g *graph.Graph, eps float64, opt *Options) (*AdmissionState, error) {
	if g == nil {
		return nil, errors.New("core: admission state needs a graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	b := g.MinCapacity()
	if b < 1 {
		return nil, fmt.Errorf("core: B = %g < 1; the B-bounded model requires min capacity >= max demand", b)
	}
	if err := checkExponentRange(eps, b); err != nil {
		return nil, err
	}
	g.Freeze()
	m := g.NumEdges()
	st := &AdmissionState{
		g:             g,
		eps:           eps,
		b:             b,
		y:             make([]float64, m),
		flow:          make([]float64, m),
		inc:           pathfind.NewIncremental(g, nil, opt.pathPool()),
		noIncremental: opt.noIncremental(),
		ledger:        make(map[int64]*AdmittedRequest),
		nextID:        1,
	}
	for e := 0; e < m; e++ {
		st.y[e] = 1 / g.Edge(e).Capacity
		st.dualSum++
	}
	lm := opt.landmarks()
	if lm == nil && !opt.noIncremental() && g.NumVertices() >= autoLandmarkMinVertices {
		// Auto-build from the initial prices; a registry (the serving
		// stack passes pathfind.SharedLandmarks) shares the tables with
		// every other session on a structurally identical topology —
		// initial prices are exactly 1/capacity, so sessions on the same
		// network fingerprint-match.
		if reg := opt.landmarkRegistry(); reg != nil {
			lm = reg.Get(g, pathfind.DefaultLandmarkCount, pathfind.FromSlice(st.y), false)
		} else {
			lm = pathfind.BuildLandmarks(g, pathfind.DefaultLandmarkCount, pathfind.FromSlice(st.y))
		}
	}
	st.inc.SetOracle(opt.oracleConfig(lm))
	return st, nil
}

// validateRequest checks one request against the state's graph — the
// per-request slice of Instance.Validate.
func (st *AdmissionState) validateRequest(r Request) error {
	n := st.g.NumVertices()
	if r.Source < 0 || r.Source >= n || r.Target < 0 || r.Target >= n {
		return fmt.Errorf("core: request endpoints (%d,%d) out of range [0,%d)", r.Source, r.Target, n)
	}
	if r.Source == r.Target {
		return fmt.Errorf("core: request has source == target == %d", r.Source)
	}
	if !(r.Demand > 0) || r.Demand > 1 || math.IsNaN(r.Demand) {
		return fmt.Errorf("core: request demand %g outside (0,1] (normalize first)", r.Demand)
	}
	if !(r.Value > 0) || math.IsInf(r.Value, 0) || math.IsNaN(r.Value) {
		return fmt.Errorf("core: request value %g not positive finite", r.Value)
	}
	return nil
}

// decide runs the admission tests without committing: cheapest path
// under the current prices, price test, residual-capacity post-check.
func (st *AdmissionState) decide(r Request) (Decision, error) {
	if err := st.validateRequest(r); err != nil {
		return Decision{}, err
	}
	slot := st.inc.AddSource(r.Source)
	if st.noIncremental {
		st.inc.InvalidateAll()
	}
	path, dist, ok := st.inc.PathTo(slot, r.Target, pathfind.FromSlice(st.y))
	if !ok {
		return Decision{Reason: RejectNoPath, Price: math.Inf(1)}, nil
	}
	// The cache owns the returned slice; hand callers their own copy.
	path = append([]int(nil), path...)
	price := r.Demand * dist
	if price > r.Value {
		return Decision{Reason: RejectPrice, Price: price, Path: path}, nil
	}
	for _, e := range path {
		if st.flow[e]+r.Demand > st.g.Edge(e).Capacity+feasTol {
			return Decision{Reason: RejectCapacity, Price: price, Path: path}, nil
		}
	}
	return Decision{Admitted: true, Price: price, Path: path}, nil
}

// Quote prices a request against the current state without admitting
// it: the returned Decision says whether Admit would accept right now
// and at what price. Quoting never changes prices or flows.
func (st *AdmissionState) Quote(r Request) (Decision, error) {
	d, err := st.decide(r)
	if err != nil {
		return Decision{}, err
	}
	return d, nil
}

// Admit processes one online request: route it along the cheapest path
// under the current exponential prices, admit iff the price is within
// the request's value and the path has residual capacity, and on
// admission commit the flow, raise the prices along the path
// (y_e ← y_e·e^{εB·d/c_e}), and record the admission in the ledger
// under the returned Decision.ID.
func (st *AdmissionState) Admit(r Request) (Decision, error) {
	d, err := st.decide(r)
	if err != nil || !d.Admitted {
		return d, err
	}
	for _, e := range d.Path {
		c := st.g.Edge(e).Capacity
		old := st.y[e]
		st.y[e] = old * math.Exp(st.eps*st.b*r.Demand/c)
		st.dualSum += c * (st.y[e] - old)
		st.flow[e] += r.Demand
	}
	st.inc.Invalidate(d.Path)
	d.ID = st.nextID
	st.nextID++
	st.ledger[d.ID] = &AdmittedRequest{ID: d.ID, Request: r, Path: d.Path, Price: d.Price}
	st.value += r.Value
	return d, nil
}

// Release frees the capacity held by a prior admission: the flow on its
// path is returned and the ledger entry removed. Prices are *not*
// lowered — the monotone-weights contract the incremental cache rests
// on forbids it, and a price-reversing release would let bidders reset
// prices by churning admit/release cycles. The released entry is
// returned for the caller's records.
func (st *AdmissionState) Release(id int64) (*AdmittedRequest, error) {
	a, ok := st.ledger[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrRequestNotFound, id)
	}
	delete(st.ledger, id)
	for _, e := range a.Path {
		st.flow[e] -= a.Request.Demand
		if st.flow[e] < 0 { // float round-off from unordered add/subtract
			st.flow[e] = 0
		}
	}
	st.value -= a.Request.Value
	return a, nil
}

// Graph returns the state's (frozen) network.
func (st *AdmissionState) Graph() *graph.Graph { return st.g }

// Eps returns the accuracy parameter ε the state was built with.
func (st *AdmissionState) Eps() float64 { return st.eps }

// NumAdmitted returns the number of live (non-released) admissions.
func (st *AdmissionState) NumAdmitted() int { return len(st.ledger) }

// Value returns the total value of live admissions.
func (st *AdmissionState) Value() float64 { return st.value }

// DualSum returns the running dual value Σ_e c_e·y_e — the saturation
// gauge D1 of the paper's analysis (it only grows over a state's life,
// releases included).
func (st *AdmissionState) DualSum() float64 { return st.dualSum }

// PathStats reports the incremental cache's recomputed/reused counters
// — the observable form of the warm-state speedup.
func (st *AdmissionState) PathStats() (recomputed, reused int64) { return st.inc.Stats() }

// CacheStats reports the full observer view of the warm path cache
// (refresh counts, dirty-source split, PathTo hit/miss split) — what
// the serving stack's /metrics gauges are built from. Call under
// whatever serialization drives the state (its operations are
// single-goroutine, like the cache's).
func (st *AdmissionState) CacheStats() pathfind.CacheStats { return st.inc.CacheStats() }

// Ledger returns the live admissions in ascending ID order. The entries
// are shared with the state; treat them as read-only.
func (st *AdmissionState) Ledger() []*AdmittedRequest {
	out := make([]*AdmittedRequest, 0, len(st.ledger))
	for id := int64(1); id < st.nextID && len(out) < len(st.ledger); id++ {
		if a, ok := st.ledger[id]; ok {
			out = append(out, a)
		}
	}
	return out
}

// OnlineAdmission is the batch spelling of the online admission rule:
// it streams the instance's requests in input order through a fresh
// AdmissionState and reports the admitted set as an Allocation. It is
// the offline reference the session layer's streamed admits are
// byte-identical to — both run the same Admit step on the same state
// evolution — and the registry body of "ufp/online". Iterations counts
// admissions; DualBound is +Inf (the online rule certifies no bound).
func OnlineAdmission(inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return OnlineAdmissionCtx(nil, inst, eps, opt)
}

// OnlineAdmissionCtx is OnlineAdmission under a context.
func OnlineAdmissionCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	st, err := NewAdmissionState(inst.G, eps, opt)
	if err != nil {
		return nil, err
	}
	alloc := &Allocation{DualBound: math.Inf(1)}
	for i, r := range inst.Requests {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("core: online admission cancelled at request %d: %w", i, err)
		}
		d, err := st.Admit(r)
		if err != nil {
			return nil, fmt.Errorf("core: request %d: %w", i, err)
		}
		if d.Admitted {
			alloc.Routed = append(alloc.Routed, Routed{Request: i, Path: d.Path})
			alloc.Value += r.Value
			alloc.Iterations++
		}
	}
	alloc.Stop = StopAllSatisfied
	if len(alloc.Routed) < len(inst.Requests) {
		alloc.Stop = StopNoRoutablePath
	}
	return alloc, nil
}
