package core_test

import (
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/workload"
)

func TestRandomizedRoundingAlwaysFeasible(t *testing.T) {
	cfg := workload.UFPConfig{
		Vertices: 6, Edges: 12, Requests: 10, Directed: true,
		B: 3, CapSpread: 0.4,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	for seed := uint64(0); seed < 6; seed++ {
		inst := randomInstance(t, seed+400, cfg)
		rng := workload.NewRNG(seed)
		a, err := core.RandomizedRounding(inst, rng, core.RoundingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkFeasible(t, inst, a, false)
	}
}

func TestRandomizedRoundingDeterministicGivenSeed(t *testing.T) {
	inst := diamondInstance(3, [2]float64{1, 1}, [2]float64{1, 2}, [2]float64{1, 3})
	a1, err := core.RandomizedRounding(inst, workload.NewRNG(5), core.RoundingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.RandomizedRounding(inst, workload.NewRNG(5), core.RoundingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(requestSeq(a1), requestSeq(a2)) {
		t.Fatal("same seed produced different roundings")
	}
}

func TestRandomizedRoundingNearFractionalOnLargeB(t *testing.T) {
	// With generous capacity the LP routes everything and rounding keeps
	// most of it: expect at least half the fractional value across seeds.
	inst := diamondInstance(50,
		[2]float64{1, 1}, [2]float64{1, 1.2}, [2]float64{1, 0.8}, [2]float64{1, 1.1})
	fs, err := core.FractionalUFP(inst, true)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for seed := uint64(0); seed < 10; seed++ {
		a, err := core.RandomizedRounding(inst, workload.NewRNG(seed), core.RoundingOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkFeasible(t, inst, a, false)
		if a.Value > best {
			best = a.Value
		}
	}
	if best < 0.5*fs.Objective {
		t.Fatalf("best rounded value %g < half fractional %g", best, fs.Objective)
	}
}
