package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"truthfulufp/internal/pathfind"
)

// Group identifies requests that share a shortest-path computation: same
// source vertex and same demand (the demand matters when candidate paths
// are filtered by residual capacity).
type Group struct {
	Source int
	Demand float64
}

// State is the engine state visible to priority rules. Flow is the
// per-edge routed demand; prices are derived from it: routing flow f_e
// on edge e under Bounded-UFP's update yields exactly y_e =
// (1/c_e)·e^{εB·f_e/c_e}, so flow is the single source of truth.
type State struct {
	Inst         *Instance
	Flow         []float64
	Eps          float64
	B            float64
	FeasibleOnly bool    // restrict candidate paths to residual-feasible edges
	ActiveGroups []Group // groups with remaining requests this iteration
	Workers      int
	// NoIncremental makes the cached rules recompute every active group's
	// structure each iteration (see EngineOptions.NoIncremental).
	NoIncremental bool
	// Adaptive lets the rules' tree caches pick tree-vs-single-target
	// serving per slot from observed dirty rates and fan-out
	// (see EngineOptions.Adaptive).
	Adaptive bool
	// Landmarks builds ALT landmark tables for the additive tree caches'
	// single-target searches (see EngineOptions.Landmarks).
	Landmarks bool
	// Bidirectional routes the caches' single-target misses through the
	// bidirectional probe (see EngineOptions.Bidirectional).
	Bidirectional bool
	// PolicyWarmup / PolicyCostRatio tune the caches' adaptive refresh
	// policy (see EngineOptions; zero keeps the pathfind defaults).
	PolicyWarmup    int
	PolicyCostRatio float64
	// Pool supplies the Dijkstra/bottleneck scratch buffers shared by the
	// rules' per-group path queries. IterativePathMin always sets it; the
	// rules fall back to a package-shared pool when driven by hand.
	Pool *pathfind.Pool
}

// sharedRulePool backs State.Pool for callers that drive rules by hand
// without configuring one.
var sharedRulePool = pathfind.NewPool()

func (st *State) pool() *pathfind.Pool {
	if st.Pool != nil {
		return st.Pool
	}
	return sharedRulePool
}

const feasTol = 1e-9

// ExpWeight is the paper's exponential price of an edge,
// (1/c_e)·e^{εB·f_e/c_e}, with residual-capacity filtering for the given
// demand when FeasibleOnly is set.
func (st *State) ExpWeight(demand float64) pathfind.WeightFunc {
	g := st.Inst.G
	return func(e int) float64 {
		c := g.Edge(e).Capacity
		if st.FeasibleOnly && st.Flow[e]+demand > c+feasTol {
			return math.Inf(1)
		}
		return math.Exp(st.Eps*st.B*st.Flow[e]/c) / c
	}
}

// UnitWeight assigns every usable edge weight 1 (hop counting), with
// residual filtering when FeasibleOnly is set.
func (st *State) UnitWeight(demand float64) pathfind.WeightFunc {
	g := st.Inst.G
	return func(e int) float64 {
		if st.FeasibleOnly && st.Flow[e]+demand > g.Edge(e).Capacity+feasTol {
			return math.Inf(1)
		}
		return 1
	}
}

// Rule is a "reasonable function" (Definition 3.9): a priority over
// candidate paths. The engine minimizes (d_r/v_r)·length where length is
// the rule's raw path aggregate, matching the paper's priority shapes
// h, h1, h2 which all carry the d/v prefactor.
//
// Prepare is called once per iteration (groups in st.ActiveGroups);
// BestLen must return, for one group and target, a path minimizing the
// rule's raw length. BestLen is called from a single goroutine; Prepare
// may parallelize internally (the treeCache-backed rules refresh dirty
// groups across State.Workers goroutines). Rules that additionally
// implement pathInvalidator are told which edges the engine repriced
// after each admission, which lets them keep caches across iterations.
type Rule interface {
	Name() string
	Prepare(st *State)
	BestLen(st *State, g Group, target int) (path []int, length float64, ok bool)
}

// pathInvalidator is the optional Rule extension behind the
// dirty-source caches: after routing a path and updating st.Flow, the
// engine reports the path's edges so the rule can invalidate exactly
// the cached trees that used them.
type pathInvalidator interface {
	invalidatePath(st *State, path []int)
}

// sharedDemandKey is the treeCache key when the weight function does
// not depend on the group demand (no residual filtering): all demand
// classes share one tree cache. Demands are strictly positive, so 0
// cannot collide with a real class.
const sharedDemandKey = 0

// treeCache is the incremental path-oracle store shared by every
// search-backed rule: additive Dijkstra trees (ExpRule, HopRule),
// bottleneck trees (BottleneckRule), and hop-bounded Bellman-Ford
// tables (LogHopsRule), selected by kind. Structures are cached across
// engine iterations in a pathfind.Incremental per demand class (the
// residual-capacity filter makes weights demand-dependent, so classes
// cannot share structures when FeasibleOnly is set) and only dirtied
// ones are recomputed. Cached structures are bit-identical to
// recomputation (see pathfind.Incremental), so engine outcomes do not
// depend on caching; State.NoIncremental forces the full recompute for
// benchmarking and verification.
type treeCache struct {
	kind    pathfind.TreeKind
	maxHops int    // KindHopBounded table depth (0 = vertices - 1)
	st      *State // identifies the run; a new engine run rebuilds the cache
	incs    map[float64]*pathfind.Incremental
	// single[k][slot] marks slots routed to the single-target path
	// oracle this iteration (Incremental.PathTo, tree kinds only): those
	// skip tree refreshes entirely. Statically that is the slots whose
	// whole declared target universe is one vertex; with State.Adaptive
	// the per-slot policy also claims small-fan-out slots whose trees
	// dirty nearly every iteration. fanout[k][slot] is the slot's
	// distinct declared-target count (capped just past the policy
	// ceiling); weightOf is the latest prepare's weight factory, which
	// the oracle queries lazily.
	single   map[float64][]bool
	fanout   map[float64][]int
	weightOf func(demand float64) pathfind.WeightFunc
}

func (c *treeCache) key(st *State, demand float64) float64 {
	if st.FeasibleOnly {
		return demand
	}
	return sharedDemandKey
}

// prepare (re)builds the per-class caches for a new run and refreshes
// the trees of the active groups under the current weights. weightOf
// maps a demand class to its weight function.
func (c *treeCache) prepare(st *State, weightOf func(demand float64) pathfind.WeightFunc) {
	c.weightOf = weightOf
	if c.st != st {
		// New engine run: groups only shrink within a run, so the first
		// iteration's ActiveGroups is the full source universe per class.
		c.st = st
		c.incs = make(map[float64]*pathfind.Incremental)
		c.single = make(map[float64][]bool)
		c.fanout = make(map[float64][]int)
		byKey := make(map[float64][]int)
		for _, g := range st.ActiveGroups {
			k := c.key(st, g.Demand)
			byKey[k] = append(byKey[k], g.Source)
		}
		for k, sources := range byKey {
			inc := pathfind.NewIncrementalKind(st.Inst.G, c.kind, sources, st.pool(), c.maxHops)
			// Weights within a run only rise (flow only grows, and the
			// residual filter only pushes edges to +Inf), so tables built
			// from the run's first weights stay valid lower bounds. The
			// policy knobs apply to every kind; additive caches take the
			// ALT tables, bottleneck caches the minimax-carrying ones
			// (SetOracle ignores the rest per kind). Builds go through the
			// shared registry: a run on a topology another session or a
			// mechanism probe already solved — at the same weight snapshot,
			// which at zero flow is exactly the initial prices —
			// fingerprint-matches and reuses its tables.
			var lm *pathfind.Landmarks
			if st.Landmarks && c.kind != pathfind.KindHopBounded {
				lm = pathfind.SharedLandmarks.Get(
					st.Inst.G, pathfind.DefaultLandmarkCount, weightOf(k),
					c.kind == pathfind.KindBottleneck)
			}
			inc.SetOracle(pathfind.OracleConfig{
				Landmarks:       lm,
				Bidirectional:   st.Bidirectional,
				PolicyWarmup:    st.PolicyWarmup,
				PolicyCostRatio: st.PolicyCostRatio,
			})
			targets := make(map[int][]int)
			// Restrict each slot's recorded edges to the paths its own
			// requests can query (BestLen only ever asks for a group's own
			// targets), so unrelated tree churn does not dirty it. The
			// instance's request list is the target universe; remaining
			// requests only shrink within a run.
			for _, r := range st.Inst.Requests {
				if c.key(st, r.Demand) != k {
					continue
				}
				if slot, ok := inc.Slot(r.Source); ok {
					targets[slot] = append(targets[slot], r.Target)
				}
			}
			single := make([]bool, inc.NumSlots())
			fan := make([]int, inc.NumSlots())
			for slot, ts := range targets {
				inc.SetTargets(slot, ts)
				fan[slot] = distinctTargets(ts)
			}
			c.incs[k] = inc
			c.single[k] = single
			c.fanout[k] = fan
		}
	}
	if st.NoIncremental {
		// Full-recompute mode: every structure and cached path is
		// recomputed this iteration (including the single-target slots the
		// refresh loop below never touches).
		for _, inc := range c.incs {
			inc.InvalidateAll()
		}
	}
	active := make(map[float64][]int, len(c.incs))
	for _, g := range st.ActiveGroups {
		k := c.key(st, g.Demand)
		inc := c.incs[k]
		var slot int
		var ok bool
		if inc != nil {
			slot, ok = inc.Slot(g.Source)
		}
		if !ok {
			// A group this run never saw (callers driving Prepare by hand):
			// fall back to a full rebuild with the current universe.
			c.st = nil
			c.prepare(st, weightOf)
			return
		}
		if c.routeSingle(st, k, slot) {
			continue // served by the path oracle, no tree to refresh
		}
		active[k] = append(active[k], slot)
	}
	for k, slots := range active {
		c.incs[k].Refresh(slots, weightOf(k), st.Workers)
	}
}

// routeSingle decides — and records in c.single for query — whether a
// slot answers this iteration through the single-target path oracle
// instead of a refreshed tree. Static mode routes exactly the
// lone-target slots; adaptive mode asks the cache's per-slot policy
// (fan-out versus observed dirty rate). Either way the answers are
// bit-identical, so the choice moves work, never outcomes.
func (c *treeCache) routeSingle(st *State, k float64, slot int) bool {
	if c.kind == pathfind.KindHopBounded {
		return false
	}
	fan := c.fanout[k][slot]
	single := fan == 1
	if st.Adaptive {
		single = c.incs[k].PreferSingle(slot, fan)
	}
	c.single[k][slot] = single
	return single
}

// distinctTargets counts distinct declared targets, capped just past
// the adaptive policy's fan-out ceiling (all larger fan-outs route to
// trees, so exact counts past it carry no signal).
func distinctTargets(ts []int) int {
	const limit = 8
	var seen []int
	for _, t := range ts {
		dup := false
		for _, x := range seen {
			if x == t {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, t)
			if len(seen) > limit {
				break
			}
		}
	}
	return len(seen)
}

// query answers a single-target group through the path oracle
// (Incremental.PathTo): served reports whether the group's slot is
// oracle-backed; when it is, (path, length, ok) is the bit-identical
// equivalent of the tree read the multi-target slots perform.
func (c *treeCache) query(st *State, g Group, target int) (path []int, length float64, ok, served bool) {
	k := c.key(st, g.Demand)
	inc := c.incs[k]
	if inc == nil {
		return nil, 0, false, false
	}
	slot, okSlot := inc.Slot(g.Source)
	if !okSlot || !c.single[k][slot] {
		return nil, 0, false, false
	}
	p, d, ok := inc.PathTo(slot, target, c.weightOf(k))
	return p, d, ok, true
}

// tree returns the cached tree for a group (valid after prepare).
func (c *treeCache) tree(st *State, g Group) *pathfind.Tree {
	inc := c.incs[c.key(st, g.Demand)]
	slot, _ := inc.Slot(g.Source)
	return inc.Tree(slot)
}

// table returns the cached hop table for a group (valid after prepare;
// KindHopBounded caches only).
func (c *treeCache) table(st *State, g Group) *pathfind.HopTable {
	inc := c.incs[c.key(st, g.Demand)]
	slot, _ := inc.Slot(g.Source)
	return inc.Table(slot)
}

// invalidate dirties every cached tree using one of the edges.
func (c *treeCache) invalidate(path []int) {
	for _, inc := range c.incs {
		inc.Invalidate(path)
	}
}

// ExpRule is the paper's function h(p) = (d/v)·Σ_{e∈p} (1/c_e)e^{εB·f_e/c_e}
// — the rule that makes IterativePathMin coincide with Bounded-UFP.
type ExpRule struct {
	cache treeCache
}

// Name implements Rule.
func (r *ExpRule) Name() string { return "exp" }

// Prepare implements Rule.
func (r *ExpRule) Prepare(st *State) {
	r.cache.prepare(st, func(d float64) pathfind.WeightFunc { return st.ExpWeight(d) })
}

// BestLen implements Rule.
func (r *ExpRule) BestLen(st *State, g Group, target int) ([]int, float64, bool) {
	if p, d, ok, served := r.cache.query(st, g, target); served {
		return p, d, ok
	}
	t := r.cache.tree(st, g)
	if math.IsInf(t.Dist[target], 1) {
		return nil, 0, false
	}
	p, _ := t.PathTo(target)
	return p, t.Dist[target], true
}

// invalidatePath implements pathInvalidator: exponential prices move
// with the flow on the routed edges, dirtying any tree that used them.
func (r *ExpRule) invalidatePath(st *State, path []int) {
	r.cache.invalidate(path)
}

// HopRule minimizes (d/v)·(number of edges): fewest-hops-first. Under
// unit demands/values and uniform capacities its priority depends only on
// the hop count, so it is reasonable per Definition 3.9.
type HopRule struct {
	cache treeCache
}

// Name implements Rule.
func (r *HopRule) Name() string { return "hops" }

// Prepare implements Rule.
func (r *HopRule) Prepare(st *State) {
	r.cache.prepare(st, func(d float64) pathfind.WeightFunc { return st.UnitWeight(d) })
}

// BestLen implements Rule.
func (r *HopRule) BestLen(st *State, g Group, target int) ([]int, float64, bool) {
	if p, d, ok, served := r.cache.query(st, g, target); served {
		return p, d, ok
	}
	t := r.cache.tree(st, g)
	if math.IsInf(t.Dist[target], 1) {
		return nil, 0, false
	}
	p, _ := t.PathTo(target)
	return p, t.Dist[target], true
}

// invalidatePath implements pathInvalidator. Unit weights ignore flow
// entirely, so without residual filtering the cached trees stay exact
// across the whole run and nothing is ever dirtied.
func (r *HopRule) invalidatePath(st *State, path []int) {
	if st.FeasibleOnly {
		r.cache.invalidate(path)
	}
}

// LogHopsRule is the paper's h1(p) = ln(1+|p|)·h(p): the exponential
// price length scaled by a hop-count factor, mildly biased toward paths
// with fewer edges. Minimization runs over a hop-bounded Bellman-Ford
// table: min over k of ln(1+k)·(min exp-length among paths of <= k
// edges). Tables live in the kind-generic dirty-source cache
// (pathfind.KindHopBounded): across iterations only tables whose
// recorded predecessor edges were repriced are recomputed, and
// recomputation reuses the table's rows (BellmanFordHopsInto), so
// steady-state iterations neither allocate tables nor rebuild clean
// ones.
type LogHopsRule struct {
	cache treeCache
	// MaxHops caps the table depth (0 = number of vertices - 1).
	MaxHops int
}

// Name implements Rule.
func (r *LogHopsRule) Name() string { return "log-hops" }

// Prepare implements Rule.
func (r *LogHopsRule) Prepare(st *State) {
	r.cache.kind = pathfind.KindHopBounded
	r.cache.maxHops = r.MaxHops
	r.cache.prepare(st, func(d float64) pathfind.WeightFunc { return st.ExpWeight(d) })
}

// invalidatePath implements pathInvalidator: exponential prices move
// with the flow on the routed edges, dirtying any table that recorded
// them as predecessors.
func (r *LogHopsRule) invalidatePath(st *State, path []int) {
	r.cache.invalidate(path)
}

// BestLen implements Rule.
func (r *LogHopsRule) BestLen(st *State, g Group, target int) ([]int, float64, bool) {
	t := r.cache.table(st, g)
	bestK := -1
	best := math.Inf(1)
	for k := 1; k <= t.MaxHops; k++ {
		d := t.Dist[k][target]
		if math.IsInf(d, 1) {
			continue
		}
		if v := math.Log(1+float64(k)) * d; v < best {
			best = v
			bestK = k
		}
	}
	if bestK < 0 {
		return nil, 0, false
	}
	p, ok := t.PathTo(target, bestK)
	if !ok {
		return nil, 0, false
	}
	return p, best, true
}

// BottleneckRule minimizes (d/v)·max_{e∈p} (1/c_e)e^{εB·f_e/c_e}: route
// along the path whose most expensive edge is cheapest ("least congested
// bottleneck"). Reasonable per Definition 3.9: pointwise-dominated flow
// vectors cannot have a larger maximum. Trees live in the kind-generic
// dirty-source cache (pathfind.KindBottleneck, canonical lexicographic
// (minimax, hops) tie-break): across iterations only trees using a
// repriced edge are recomputed, on pooled scratches into reusable tree
// buffers, so steady-state iterations allocate neither heaps nor trees.
type BottleneckRule struct {
	cache treeCache
}

// Name implements Rule.
func (r *BottleneckRule) Name() string { return "bottleneck" }

// Prepare implements Rule.
func (r *BottleneckRule) Prepare(st *State) {
	r.cache.kind = pathfind.KindBottleneck
	r.cache.prepare(st, func(d float64) pathfind.WeightFunc { return st.ExpWeight(d) })
}

// invalidatePath implements pathInvalidator: exponential prices move
// with the flow on the routed edges, dirtying any tree that used them.
func (r *BottleneckRule) invalidatePath(st *State, path []int) {
	r.cache.invalidate(path)
}

// BestLen implements Rule.
func (r *BottleneckRule) BestLen(st *State, g Group, target int) ([]int, float64, bool) {
	if p, d, ok, served := r.cache.query(st, g, target); served {
		return p, d, ok
	}
	t := r.cache.tree(st, g)
	if math.IsInf(t.Dist[target], 1) {
		return nil, 0, false
	}
	p, _ := t.PathTo(target)
	return p, t.Dist[target], true
}

// ProductRule is the paper's h2(p) = (d/v)·Π_{e∈p} f_e/c_e, listed by the
// paper as reasonable "although it is not clear why anyone would like to
// use it". Since the product is not additive it is minimized by explicit
// enumeration of simple paths, so this rule is only usable on small
// graphs; PathLimit caps the enumeration (default 10000).
type ProductRule struct {
	PathLimit int
}

// Name implements Rule.
func (r *ProductRule) Name() string { return "product" }

// Prepare implements Rule.
func (r *ProductRule) Prepare(*State) {}

// BestLen implements Rule.
func (r *ProductRule) BestLen(st *State, g Group, target int) ([]int, float64, bool) {
	limit := r.PathLimit
	if limit <= 0 {
		limit = 10000
	}
	gph := st.Inst.G
	paths := pathfind.SimplePaths(gph, g.Source, target, limit)
	best := math.Inf(1)
	var bestPath []int
	for _, p := range paths {
		prod := 1.0
		feasible := true
		for _, e := range p {
			c := gph.Edge(e).Capacity
			if st.FeasibleOnly && st.Flow[e]+g.Demand > c+feasTol {
				feasible = false
				break
			}
			prod *= st.Flow[e] / c
		}
		if !feasible {
			continue
		}
		if prod < best || (prod == best && bestPath == nil) {
			best = prod
			bestPath = p
		}
	}
	if bestPath == nil {
		return nil, 0, false
	}
	return bestPath, best, true
}

// EngineOptions configure IterativePathMin.
type EngineOptions struct {
	// Rule is the reasonable priority function (required).
	Rule Rule
	// Eps is the accuracy parameter used by price-based rules and by the
	// dual-threshold stop (required by those; ignored by HopRule with
	// capacity stop).
	Eps float64
	// FeasibleOnly restricts candidate paths to residual-feasible edges;
	// combined with the default stop this yields the "route until nothing
	// fits" behavior assumed by the lower-bound proofs (footnote 2).
	FeasibleOnly bool
	// UseDualStop enables Algorithm 1's main-loop guard: stop once
	// Σ_e c_e·y_e(f) > e^{ε(B-1)}. At least one of FeasibleOnly and
	// UseDualStop must be set, otherwise the engine could overload edges.
	UseDualStop bool
	// TieBreak resolves ratio ties between candidates (default: smaller
	// request index).
	TieBreak TieBreak
	// MaxIterations caps the loop (0 = unlimited).
	MaxIterations int
	// Workers bounds parallelism in per-iteration path computations.
	Workers int
	// NoIncremental disables the dirty-source caches of the built-in
	// rules: every iteration recomputes every active group's structure
	// from scratch. Allocations are identical either way — cached
	// structures are bit-identical to recomputation — so this exists for
	// benchmarking the caches and as an escape hatch.
	NoIncremental bool
	// Adaptive replaces the caches' static tree-vs-single-target routing
	// (lone-target slots only) with the per-slot policy driven by
	// observed dirty rates and fan-out. Allocations are identical either
	// way — the single-target oracle is bit-identical to tree reads.
	Adaptive bool
	// Landmarks builds ALT landmark tables per demand class at the first
	// iteration — shared through pathfind.SharedLandmarks across runs on
	// the same topology and weight snapshot — and uses them to prune the
	// caches' single-target searches: additive bounds for the additive
	// rules, minimax bounds for the bottleneck rule. Valid because
	// within-run weights only rise; answers stay bit-identical.
	Landmarks bool
	// Bidirectional routes the caches' single-target misses through the
	// bidirectional (forward+backward) probe; bit-identical answers.
	Bidirectional bool
	// PolicyWarmup tunes the adaptive refresh policy's warm-up demand
	// count (see pathfind.OracleConfig.PolicyWarmup). Zero keeps
	// pathfind.DefaultPolicyWarmup; negative means no warm-up.
	PolicyWarmup int
	// PolicyCostRatio tunes the adaptive policy's dirty-rate threshold
	// (see pathfind.OracleConfig.PolicyCostRatio). Zero keeps
	// pathfind.DefaultPolicyCostRatio; negative means zero.
	PolicyCostRatio float64
	// PathPool, if non-nil, supplies the scratch buffers for the rules'
	// path queries (see Options.PathPool); nil uses a shared pool.
	PathPool *pathfind.Pool
}

// IterativePathMin runs a reasonable iterative path minimizing algorithm
// (Definition 3.10): repeatedly select, among all paths of unselected
// requests, one minimizing (d_r/v_r)·Rule-length, route it, and update
// the flow. With ExpRule, UseDualStop and no feasibility filtering this
// is exactly Bounded-UFP. See IterativePathMinCtx for the cancellable
// form.
func IterativePathMin(inst *Instance, opt EngineOptions) (*Allocation, error) {
	return iterativePathMin(nil, inst, opt)
}

func iterativePathMin(ctx context.Context, inst *Instance, opt EngineOptions) (*Allocation, error) {
	if opt.Rule == nil {
		return nil, errors.New("core: IterativePathMin requires a Rule")
	}
	if !opt.FeasibleOnly && !opt.UseDualStop {
		return nil, errors.New("core: IterativePathMin requires FeasibleOnly or UseDualStop (otherwise capacities can be violated)")
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if opt.UseDualStop || usesPrices(opt.Rule) {
		if err := validateEps(opt.Eps); err != nil {
			return nil, err
		}
		if err := checkExponentRange(opt.Eps, inst.B()); err != nil {
			return nil, err
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	pool := opt.PathPool
	if pool == nil {
		pool = sharedRulePool
	}
	st := &State{
		Inst:            inst,
		Flow:            make([]float64, inst.G.NumEdges()),
		Eps:             opt.Eps,
		B:               inst.B(),
		FeasibleOnly:    opt.FeasibleOnly,
		Workers:         workers,
		NoIncremental:   opt.NoIncremental,
		Adaptive:        opt.Adaptive,
		Landmarks:       opt.Landmarks,
		Bidirectional:   opt.Bidirectional,
		PolicyWarmup:    opt.PolicyWarmup,
		PolicyCostRatio: opt.PolicyCostRatio,
		Pool:            pool,
	}
	tie := opt.TieBreak
	if tie == nil {
		tie = func(a, b Candidate) bool { return a.Request < b.Request }
	}
	remaining := make([]bool, len(inst.Requests))
	numRemaining := len(inst.Requests)
	for i := range remaining {
		remaining[i] = true
	}
	threshold := math.Exp(opt.Eps * (st.B - 1))
	alloc := &Allocation{DualBound: math.Inf(1)}
	for {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("core: iterative path-min cancelled after %d iterations: %w", alloc.Iterations, err)
		}
		if numRemaining == 0 {
			alloc.Stop = StopAllSatisfied
			break
		}
		if opt.UseDualStop && dualValue(st) > threshold {
			alloc.Stop = StopDualThreshold
			break
		}
		if opt.MaxIterations > 0 && alloc.Iterations >= opt.MaxIterations {
			alloc.Stop = StopIterationLimit
			break
		}
		st.ActiveGroups = activeGroups(inst, remaining)
		opt.Rule.Prepare(st)
		best := Candidate{Request: -1, Ratio: math.Inf(1)}
		for i, r := range inst.Requests {
			if !remaining[i] {
				continue
			}
			path, length, ok := opt.Rule.BestLen(st, Group{r.Source, r.Demand}, r.Target)
			if !ok {
				continue
			}
			cand := Candidate{Request: i, Ratio: r.Demand / r.Value * length, Path: path}
			switch {
			case best.Request < 0 || cand.Ratio < best.Ratio && !ratiosTied(cand.Ratio, best.Ratio):
				best = cand
			case ratiosTied(cand.Ratio, best.Ratio) && tie(cand, best):
				best = cand
			}
		}
		if best.Request < 0 {
			alloc.Stop = StopNoRoutablePath
			break
		}
		d := inst.Requests[best.Request].Demand
		for _, e := range best.Path {
			st.Flow[e] += d
		}
		if inv, ok := opt.Rule.(pathInvalidator); ok {
			inv.invalidatePath(st, best.Path)
		}
		alloc.Routed = append(alloc.Routed, Routed{Request: best.Request, Path: best.Path})
		alloc.Value += inst.Requests[best.Request].Value
		alloc.Iterations++
		remaining[best.Request] = false
		numRemaining--
	}
	if alloc.Stop == StopAllSatisfied && alloc.Value < alloc.DualBound {
		alloc.DualBound = alloc.Value
	}
	return alloc, nil
}

func usesPrices(r Rule) bool {
	switch r.(type) {
	case *HopRule, *ProductRule:
		return false
	}
	return true
}

// dualValue computes Σ_e c_e·y_e(f) = Σ_e e^{εB·f_e/c_e}.
func dualValue(st *State) float64 {
	sum := 0.0
	g := st.Inst.G
	for e := 0; e < g.NumEdges(); e++ {
		sum += math.Exp(st.Eps * st.B * st.Flow[e] / g.Edge(e).Capacity)
	}
	return sum
}

func activeGroups(inst *Instance, remaining []bool) []Group {
	seen := make(map[Group]bool)
	var groups []Group
	for i, r := range inst.Requests {
		if !remaining[i] {
			continue
		}
		g := Group{r.Source, r.Demand}
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	return groups
}

func defaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// AllRules returns one fresh instance of every built-in reasonable rule,
// for sweeps over the family in the lower-bound experiments. When
// includeEnumerating is false the enumeration-based ProductRule (usable
// only on small graphs) is omitted.
func AllRules(includeEnumerating bool) []Rule {
	rules := []Rule{&ExpRule{}, &HopRule{}, &LogHopsRule{}, &BottleneckRule{}}
	if includeEnumerating {
		rules = append(rules, &ProductRule{})
	}
	return rules
}
