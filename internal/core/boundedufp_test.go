package core_test

import (
	"math"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/workload"
)

func TestBoundedUFPPicksHigherValueOnContention(t *testing.T) {
	// One unit-capacity edge, two unit-demand requests with values 1 and
	// 2: the normalized length (d/v)·y is smaller for the value-2 request.
	inst := singleEdge(1, [2]float64{1, 1}, [2]float64{1, 2})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.5, nil) })
	checkFeasible(t, inst, a, false)
	if a.Value != 2 {
		t.Fatalf("value = %g, want 2", a.Value)
	}
	if len(a.Routed) != 1 || a.Routed[0].Request != 1 {
		t.Fatalf("routed = %+v, want request 1 only", a.Routed)
	}
	if a.Stop != core.StopDualThreshold {
		t.Fatalf("stop = %v, want dual-threshold", a.Stop)
	}
}

func TestBoundedUFPSatisfiesAllWhenUncontended(t *testing.T) {
	inst := diamondInstance(10, [2]float64{1, 3}, [2]float64{1, 2}, [2]float64{1, 1})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.5, nil) })
	checkFeasible(t, inst, a, false)
	if a.Stop != core.StopAllSatisfied {
		t.Fatalf("stop = %v, want all-satisfied", a.Stop)
	}
	if a.Value != 6 {
		t.Fatalf("value = %g, want 6", a.Value)
	}
	if a.DualBound != 6 {
		t.Fatalf("dual bound = %g, want 6 (optimal)", a.DualBound)
	}
}

func TestBoundedUFPZeroIterationsWhenBTooSmall(t *testing.T) {
	// Threshold e^{ε(B-1)} = e^{0.5} < m = 4: loop never runs. This is
	// the regime the Ω(ln m) bound excludes.
	inst := diamondInstance(2, [2]float64{1, 1})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.5, nil) })
	if a.Iterations != 0 || a.Value != 0 || a.Stop != core.StopDualThreshold {
		t.Fatalf("got %d iterations, value %g, stop %v; want 0, 0, dual-threshold", a.Iterations, a.Value, a.Stop)
	}
}

func TestBoundedUFPUnroutableRequest(t *testing.T) {
	// Vertex 2 is isolated from 0; the 0->2... no such edge exists, so
	// the request can never be routed and the loop stops cleanly.
	inst := singleEdge(5, [2]float64{1, 1})
	inst.G.AddVertex() // vertex 2, isolated
	inst.Requests = append(inst.Requests, core.Request{Source: 0, Target: 2, Demand: 1, Value: 10})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.5, nil) })
	checkFeasible(t, inst, a, false)
	if a.Stop != core.StopNoRoutablePath {
		t.Fatalf("stop = %v, want no-routable-path", a.Stop)
	}
	if a.Value != 1 {
		t.Fatalf("value = %g, want 1 (only the routable request)", a.Value)
	}
}

func TestBoundedUFPValidation(t *testing.T) {
	inst := singleEdge(2, [2]float64{1, 1})
	if _, err := core.BoundedUFP(inst, 0, nil); err == nil {
		t.Error("eps = 0 accepted")
	}
	if _, err := core.BoundedUFP(inst, 1.5, nil); err == nil {
		t.Error("eps > 1 accepted")
	}
	bad := singleEdge(2, [2]float64{1.5, 1}) // demand > 1
	if _, err := core.BoundedUFP(bad, 0.5, nil); err == nil {
		t.Error("unnormalized demand accepted")
	}
	small := singleEdge(0.5, [2]float64{0.4, 1}) // B < 1
	if _, err := core.BoundedUFP(small, 0.5, nil); err == nil {
		t.Error("B < 1 accepted")
	}
}

func TestBoundedUFPOverflowGuard(t *testing.T) {
	inst := singleEdge(1e6, [2]float64{1, 1})
	if _, err := core.BoundedUFP(inst, 1, nil); err == nil {
		t.Fatal("ε·B = 1e6 accepted; e^{ε(B-1)} would overflow")
	}
}

func TestBoundedUFPEmptyRequests(t *testing.T) {
	inst := singleEdge(2)
	a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.5, nil) })
	if a.Stop != core.StopAllSatisfied || a.Value != 0 {
		t.Fatalf("empty instance: stop %v value %g", a.Stop, a.Value)
	}
}

func TestBoundedUFPFeasibilityProperty(t *testing.T) {
	// Lemma 3.3 as a property: across seeds, epsilons and capacity
	// regimes, the output never violates capacities.
	for _, eps := range []float64{0.05, 1.0 / 6, 0.5, 1} {
		for seed := uint64(0); seed < 6; seed++ {
			cfg := workload.DefaultUFPConfig()
			cfg.B = 3 + float64(seed) // includes small-B regimes
			cfg.Requests = 40
			inst := randomInstance(t, seed+100, cfg)
			a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, eps, nil) })
			checkFeasible(t, inst, a, false)
		}
	}
}

func TestBoundedUFPDeterministicAcrossWorkers(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.Requests = 50
	inst := randomInstance(t, 7, cfg)
	a1 := mustSolve(t, func() (*core.Allocation, error) {
		return core.BoundedUFP(inst, 0.2, &core.Options{Workers: 1})
	})
	a8 := mustSolve(t, func() (*core.Allocation, error) {
		return core.BoundedUFP(inst, 0.2, &core.Options{Workers: 8})
	})
	if !equalInts(requestSeq(a1), requestSeq(a8)) {
		t.Fatal("selection order depends on worker count")
	}
	if a1.Value != a8.Value {
		t.Fatalf("value differs across workers: %g vs %g", a1.Value, a8.Value)
	}
}

func TestBoundedUFPMonotonicityProperty(t *testing.T) {
	// Lemma 3.4: if r is selected with (d, v), it stays selected with
	// d' <= d and v' >= v (others fixed); contrapositive for unselected.
	cfg := workload.DefaultUFPConfig()
	cfg.Requests = 25
	cfg.B = 8
	const eps = 0.25
	rng := workload.NewRNG(99)
	for seed := uint64(0); seed < 8; seed++ {
		inst := randomInstance(t, seed, cfg)
		base := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, eps, nil) })
		sel := base.Selected(len(inst.Requests))
		for trial := 0; trial < 12; trial++ {
			r := rng.IntN(len(inst.Requests))
			mod := inst.Clone()
			if sel[r] {
				// Improve the declaration: must stay selected.
				mod.Requests[r].Demand *= 0.5 + 0.5*rng.Float64()
				mod.Requests[r].Value *= 1 + rng.Float64()
			} else {
				// Worsen the declaration: must stay unselected.
				mod.Requests[r].Demand = math.Min(1, mod.Requests[r].Demand*(1+rng.Float64()))
				mod.Requests[r].Value *= 0.3 + 0.7*rng.Float64()
			}
			got := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(mod, eps, nil) })
			gotSel := got.Selected(len(mod.Requests))
			if sel[r] && !gotSel[r] {
				t.Fatalf("seed %d: improving request %d's declaration dropped it (monotonicity violated)", seed, r)
			}
			if !sel[r] && gotSel[r] {
				t.Fatalf("seed %d: worsening request %d's declaration admitted it (monotonicity violated)", seed, r)
			}
		}
	}
}

func TestBoundedUFPDualBoundDominatesExactOPT(t *testing.T) {
	// The dual-fitting bound must upper-bound the exact integral optimum.
	cfg := workload.UFPConfig{
		Vertices: 6, Edges: 10, Requests: 8, Directed: true,
		B: 3, CapSpread: 0.4,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	for seed := uint64(0); seed < 10; seed++ {
		inst := randomInstance(t, seed+500, cfg)
		a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.3, nil) })
		opt, err := core.ExactOPT(inst, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Exact {
			t.Skip("path enumeration truncated; choose smaller instance")
		}
		if a.DualBound < opt.Value-1e-6 {
			t.Fatalf("seed %d: dual bound %g < exact OPT %g", seed, a.DualBound, opt.Value)
		}
		if a.Value > opt.Value+1e-6 {
			t.Fatalf("seed %d: algorithm value %g exceeds exact OPT %g", seed, a.Value, opt.Value)
		}
	}
}

func TestTheorem31ApproximationGuarantee(t *testing.T) {
	// Lemma 3.8 regime: B >= ln(m)/ε². With ε = 1/6 and m = 36 edges we
	// need B >= 129. The measured dual-bound ratio must respect
	// (1+6ε)·e/(e-1) (small slack for the dual-fitting gap).
	const eps = 1.0 / 6
	cfg := workload.UFPConfig{
		Vertices: 12, Edges: 36, Requests: 260, Directed: true,
		B: 130, CapSpread: 0.3,
		DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	guarantee := (1 + 6*eps) * math.E / (math.E - 1)
	for seed := uint64(0); seed < 3; seed++ {
		inst := randomInstance(t, seed+900, cfg)
		if inst.B() < math.Log(float64(inst.G.NumEdges()))/(eps*eps) {
			t.Fatalf("test misconfigured: B = %g too small", inst.B())
		}
		a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, eps, nil) })
		checkFeasible(t, inst, a, false)
		if a.Value == 0 {
			t.Fatal("algorithm routed nothing in the guaranteed regime")
		}
		ratio := a.DualBound / a.Value
		if ratio > guarantee*1.05 {
			t.Fatalf("seed %d: ratio %.4f exceeds guarantee %.4f", seed, ratio, guarantee)
		}
	}
}

func TestSolveUFPUsesEpsilonOverSix(t *testing.T) {
	inst := singleEdge(30, [2]float64{1, 1})
	var seen []float64
	_, err := core.SolveUFP(inst, 0.6, &core.Options{
		OnIteration: func(iter int, c core.Candidate, dual float64) {
			seen = append(seen, c.Ratio)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("SolveUFP made no iterations")
	}
	// With eps/6 = 0.1 the first price is 1/30 and the ratio d/v·y = 1/30.
	if math.Abs(seen[0]-1.0/30) > 1e-12 {
		t.Fatalf("first ratio %g, want 1/30", seen[0])
	}
}

func TestBoundedUFPRepeatAllowsRepetitions(t *testing.T) {
	// One request, capacity 30: the repetitions variant should route it
	// many times, the plain variant exactly once.
	inst := singleEdge(30, [2]float64{1, 1})
	plain := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.3, nil) })
	if len(plain.Routed) != 1 {
		t.Fatalf("plain variant routed %d times, want 1", len(plain.Routed))
	}
	rep := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFPRepeat(inst, 0.3, nil) })
	checkFeasible(t, inst, rep, true)
	if len(rep.Routed) < 2 {
		t.Fatalf("repeat variant routed %d times, want many", len(rep.Routed))
	}
	if rep.Value != float64(len(rep.Routed)) {
		t.Fatalf("value %g != repetitions %d for unit values", rep.Value, len(rep.Routed))
	}
}

func TestBoundedUFPRepeatIterationBound(t *testing.T) {
	// Theorem 5.1: iterations <= m · c_max / d_min.
	inst := diamondInstance(20, [2]float64{0.5, 1}, [2]float64{1, 1.5})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFPRepeat(inst, 0.25, nil) })
	checkFeasible(t, inst, a, true)
	bound := float64(inst.G.NumEdges()) * inst.G.MaxCapacity() / 0.5
	if float64(a.Iterations) > bound {
		t.Fatalf("iterations %d exceed m·c_max/d_min = %g", a.Iterations, bound)
	}
}

func TestTheorem51RepetitionsNearOptimal(t *testing.T) {
	// In the guaranteed regime the repetitions algorithm is
	// (1+6ε)-approximate versus its dual bound.
	const eps = 0.1
	inst := diamondInstance(500, [2]float64{1, 1}, [2]float64{1, 1.3})
	// m = 4, ln(4)/eps² = 139 <= 500. ε·B = 50 within overflow budget.
	a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFPRepeat(inst, eps, nil) })
	checkFeasible(t, inst, a, true)
	ratio := a.DualBound / a.Value
	if ratio > (1+6*eps)*1.02 {
		t.Fatalf("repetitions ratio %.4f exceeds 1+6ε = %.2f", ratio, 1+6*eps)
	}
}

func TestBoundedUFPMaxIterations(t *testing.T) {
	inst := singleEdge(30, [2]float64{1, 1})
	a := mustSolve(t, func() (*core.Allocation, error) {
		return core.BoundedUFPRepeat(inst, 0.3, &core.Options{MaxIterations: 3})
	})
	if a.Iterations != 3 || a.Stop != core.StopIterationLimit {
		t.Fatalf("got %d iterations, stop %v; want 3, iteration-limit", a.Iterations, a.Stop)
	}
}

func TestOnIterationObservesDualGrowth(t *testing.T) {
	inst := diamondInstance(15, [2]float64{1, 1}, [2]float64{1, 2}, [2]float64{1, 3})
	var duals []float64
	_, err := core.BoundedUFP(inst, 0.3, &core.Options{
		OnIteration: func(iter int, c core.Candidate, dual float64) { duals = append(duals, dual) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(duals) != 3 {
		t.Fatalf("observed %d iterations, want 3", len(duals))
	}
	for i := 1; i < len(duals); i++ {
		if duals[i] <= duals[i-1] {
			t.Fatalf("dual value not strictly increasing: %v", duals)
		}
	}
	// D1(0) = m.
	if duals[0] != 4 {
		t.Fatalf("initial dual %g, want m = 4", duals[0])
	}
}
