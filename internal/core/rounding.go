package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
)

// RoundingOptions configure RandomizedRounding.
type RoundingOptions struct {
	// Shrink is the (1-η) scaling applied to selection probabilities to
	// leave capacity slack (default 0.9, i.e. η = 0.1).
	Shrink float64
	// Retries is the number of independent rounding attempts before
	// falling back to greedy repair (default 20).
	Retries int
}

// RandomizedRounding is the classic Raghavan–Thompson approach the paper
// contrasts with (Section 1): solve the fractional relaxation, then
// select each request r independently with probability Shrink·x_r,
// assigning it a path drawn from its flow decomposition. For B = Ω(ln m)
// the result is feasible with high probability and (1+ε)-approximate in
// expectation — but the selection is NOT monotone, which is exactly why
// it cannot be used truthfully; experiment E8 exhibits witnesses.
//
// If every attempt produces an infeasible set, requests are greedily
// dropped (lowest value first) until feasible, so the returned
// allocation is always feasible. The result is deterministic given rng.
func RandomizedRounding(inst *Instance, rng *rand.Rand, opt RoundingOptions) (*Allocation, error) {
	return RandomizedRoundingCtx(context.Background(), inst, rng, opt)
}

// RandomizedRoundingCtx is RandomizedRounding under a context: the
// context is checked before the LP solve and once per rounding attempt,
// and the run is abandoned with the context's error when it is done.
func RandomizedRoundingCtx(ctx context.Context, inst *Instance, rng *rand.Rand, opt RoundingOptions) (*Allocation, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	shrink := opt.Shrink
	if shrink <= 0 || shrink > 1 {
		shrink = 0.9
	}
	retries := opt.Retries
	if retries <= 0 {
		retries = 20
	}
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: rounding cancelled before the LP solve: %w", err)
	}
	frac, err := FractionalUFP(inst, true)
	if err != nil {
		return nil, err
	}
	g := inst.G
	for attempt := 0; attempt < retries; attempt++ {
		if err := ctxErr(ctx); err != nil {
			return nil, fmt.Errorf("core: rounding cancelled at attempt %d: %w", attempt, err)
		}
		var routed []Routed
		for r := range inst.Requests {
			if len(frac.Decomposition[r]) == 0 {
				continue
			}
			if rng.Float64() >= shrink*frac.X[r] {
				continue
			}
			// Draw a path proportionally to its fraction.
			total := 0.0
			for _, wp := range frac.Decomposition[r] {
				total += wp.Fraction
			}
			u := rng.Float64() * total
			chosen := frac.Decomposition[r][len(frac.Decomposition[r])-1].Path
			acc := 0.0
			for _, wp := range frac.Decomposition[r] {
				acc += wp.Fraction
				if u <= acc {
					chosen = wp.Path
					break
				}
			}
			routed = append(routed, Routed{Request: r, Path: chosen})
		}
		if feasibleSet(inst, routed) {
			return finishRounding(inst, routed, StopAllSatisfied), nil
		}
	}
	// Greedy repair: keep high-value requests, drop until feasible.
	var routed []Routed
	for r := range inst.Requests {
		if len(frac.Decomposition[r]) > 0 && frac.X[r] > 0.5 {
			routed = append(routed, Routed{Request: r, Path: frac.Decomposition[r][0].Path})
		}
	}
	sort.SliceStable(routed, func(a, b int) bool {
		return inst.Requests[routed[a].Request].Value > inst.Requests[routed[b].Request].Value
	})
	load := make([]float64, g.NumEdges())
	var kept []Routed
	for _, p := range routed {
		d := inst.Requests[p.Request].Demand
		ok := true
		for _, e := range p.Path {
			if load[e]+d > g.Edge(e).Capacity+feasTol {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, e := range p.Path {
			load[e] += d
		}
		kept = append(kept, p)
	}
	return finishRounding(inst, kept, StopNoRoutablePath), nil
}

func feasibleSet(inst *Instance, routed []Routed) bool {
	load := make([]float64, inst.G.NumEdges())
	for _, p := range routed {
		d := inst.Requests[p.Request].Demand
		for _, e := range p.Path {
			load[e] += d
			if load[e] > inst.G.Edge(e).Capacity+feasTol {
				return false
			}
		}
	}
	return true
}

func finishRounding(inst *Instance, routed []Routed, stop StopReason) *Allocation {
	a := &Allocation{Routed: routed, Stop: stop}
	for _, p := range routed {
		a.Value += inst.Requests[p.Request].Value
	}
	a.Iterations = len(routed)
	return a
}
