// Package core implements the paper's primary contribution: the monotone
// deterministic primal-dual algorithms for the large-capacity
// unsplittable flow problem (UFP).
//
//   - BoundedUFP is Algorithm 1 (Bounded-UFP): an e/(e-1)-approximation
//     for the Ω(ln m)-bounded UFP, monotone and exact with respect to
//     every request's demand and value, hence convertible into a truthful
//     mechanism (Theorem 3.1, Corollary 3.2).
//   - BoundedUFPRepeat is Algorithm 3 (Bounded-UFP-Repeat): a
//     (1+ε)-approximation when requests may be satisfied repeatedly
//     (Theorem 5.1).
//   - IterativePathMin is the family of "reasonable iterative path
//     minimizing algorithms" (Definition 3.10) with pluggable priority
//     rules, used to realize the paper's lower-bound constructions
//     (Theorems 3.11 and 3.12).
//   - Baselines: a sequential exponential-price algorithm standing in for
//     the prior-art ≈e mechanisms, value-density greedy, and
//     (non-monotone) randomized LP rounding.
//
// Throughout, instances are in the paper's normalized form: demands lie
// in (0, 1] and B = min_e c_e is the capacity bound.
package core

import (
	"errors"
	"fmt"
	"math"

	"truthfulufp/internal/graph"
	"truthfulufp/internal/pathfind"
)

// Request is a connection request (s_r, t_r, d_r, v_r): route demand
// Demand from Source to Target for profit Value. Requests are identified
// by their index in the instance's Requests slice.
type Request struct {
	Source, Target int
	Demand         float64 // in (0,1] after normalization
	Value          float64 // > 0
}

// Instance is an unsplittable flow instance: an edge-capacitated graph
// plus a set of requests.
type Instance struct {
	G        *graph.Graph
	Requests []Request
}

// B returns the paper's capacity bound B = min_e c_e (for a normalized
// instance; see Normalized).
func (inst *Instance) B() float64 { return inst.G.MinCapacity() }

// Validate checks that the instance is well-formed and normalized:
// valid graph, endpoints in range, source != target, demands in (0,1],
// positive finite values, and B >= 1 so that Lemma 3.3's feasibility
// argument applies.
func (inst *Instance) Validate() error {
	if inst.G == nil {
		return errors.New("core: instance has no graph")
	}
	if err := inst.G.Validate(); err != nil {
		return err
	}
	n := inst.G.NumVertices()
	for i, r := range inst.Requests {
		if r.Source < 0 || r.Source >= n || r.Target < 0 || r.Target >= n {
			return fmt.Errorf("core: request %d endpoints (%d,%d) out of range [0,%d)", i, r.Source, r.Target, n)
		}
		if r.Source == r.Target {
			return fmt.Errorf("core: request %d has source == target == %d", i, r.Source)
		}
		if !(r.Demand > 0) || r.Demand > 1 || math.IsNaN(r.Demand) {
			return fmt.Errorf("core: request %d demand %g outside (0,1] (normalize first)", i, r.Demand)
		}
		if !(r.Value > 0) || math.IsInf(r.Value, 0) || math.IsNaN(r.Value) {
			return fmt.Errorf("core: request %d value %g not positive finite", i, r.Value)
		}
	}
	if len(inst.Requests) > 0 && inst.G.MinCapacity() < 1 {
		return fmt.Errorf("core: B = %g < 1; the B-bounded model requires min capacity >= max demand", inst.G.MinCapacity())
	}
	return nil
}

// Normalized returns a copy of the instance scaled so that demands lie in
// (0,1]: all demands and all capacities are divided by the maximum
// demand. The returned scale is that maximum demand (1 if there are no
// requests). Values are untouched, so objective values are comparable
// before and after.
func (inst *Instance) Normalized() (*Instance, float64) {
	maxD := 0.0
	for _, r := range inst.Requests {
		if r.Demand > maxD {
			maxD = r.Demand
		}
	}
	if maxD == 0 {
		return &Instance{G: inst.G.Clone(), Requests: nil}, 1
	}
	g := inst.G.Clone()
	g.ScaleCapacities(1 / maxD)
	reqs := make([]Request, len(inst.Requests))
	for i, r := range inst.Requests {
		r.Demand /= maxD
		reqs[i] = r
	}
	return &Instance{G: g, Requests: reqs}, maxD
}

// Clone returns a deep copy of the instance.
func (inst *Instance) Clone() *Instance {
	reqs := make([]Request, len(inst.Requests))
	copy(reqs, inst.Requests)
	return &Instance{G: inst.G.Clone(), Requests: reqs}
}

// TotalValue returns the sum of all request values (the trivial upper
// bound on any allocation's value).
func (inst *Instance) TotalValue() float64 {
	v := 0.0
	for _, r := range inst.Requests {
		v += r.Value
	}
	return v
}

// StopReason records why an algorithm's main loop terminated.
type StopReason int

// Stop reasons.
const (
	// StopAllSatisfied: every request was allocated (L = ∅); the solution
	// is optimal.
	StopAllSatisfied StopReason = iota
	// StopDualThreshold: the dual value exceeded e^{ε(B-1)} (the paper's
	// main-loop guard, line 5 of Algorithm 1).
	StopDualThreshold
	// StopNoRoutablePath: no remaining request has any path (with residual
	// capacity, where applicable).
	StopNoRoutablePath
	// StopIterationLimit: a configured iteration cap was reached.
	StopIterationLimit
)

func (s StopReason) String() string {
	switch s {
	case StopAllSatisfied:
		return "all-satisfied"
	case StopDualThreshold:
		return "dual-threshold"
	case StopNoRoutablePath:
		return "no-routable-path"
	case StopIterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("StopReason(%d)", int(s))
}

// Routed is one (request, path) pair in an allocation. Path holds edge
// IDs from the request's source to its target.
type Routed struct {
	Request int
	Path    []int
}

// Allocation is the output of a UFP algorithm: the selected (request,
// path) pairs in selection order, plus diagnostics. For repetition-free
// algorithms each request appears at most once; BoundedUFPRepeat may
// repeat requests.
type Allocation struct {
	Routed     []Routed
	Value      float64    // sum of values of routed pairs
	Iterations int        // main-loop iterations executed
	Stop       StopReason // why the main loop ended
	// DualBound is a certified upper bound on the optimal *fractional* LP
	// value (and therefore on the integral optimum), obtained from the
	// paper's own dual-fitting construction (Claim 3.6 / Claim 5.2):
	// scaling the prices y by 1/α(i) yields a feasible dual solution. It
	// is 0 if the algorithm does not track duals or +Inf if no finite
	// bound was established.
	DualBound float64
}

// Selected returns a set-membership slice: sel[r] is true if request r is
// routed at least once.
func (a *Allocation) Selected(numRequests int) []bool {
	sel := make([]bool, numRequests)
	for _, p := range a.Routed {
		sel[p.Request] = true
	}
	return sel
}

// EdgeLoads returns the per-edge routed demand of the allocation.
func (a *Allocation) EdgeLoads(inst *Instance) []float64 {
	load := make([]float64, inst.G.NumEdges())
	for _, p := range a.Routed {
		d := inst.Requests[p.Request].Demand
		for _, e := range p.Path {
			load[e] += d
		}
	}
	return load
}

// CheckFeasible verifies the allocation: every path is a simple
// source-to-target path for its request, no edge exceeds its capacity,
// and (unless repetitions is true) no request is routed twice. This is
// the executable form of Lemma 3.3.
func (a *Allocation) CheckFeasible(inst *Instance, repetitions bool) error {
	seen := make([]bool, len(inst.Requests))
	for k, p := range a.Routed {
		if p.Request < 0 || p.Request >= len(inst.Requests) {
			return fmt.Errorf("core: routed[%d] references request %d out of range", k, p.Request)
		}
		r := inst.Requests[p.Request]
		if !repetitions {
			if seen[p.Request] {
				return fmt.Errorf("core: request %d routed more than once", p.Request)
			}
			seen[p.Request] = true
		}
		if !pathfind.ValidatePath(inst.G, r.Source, r.Target, p.Path) {
			return fmt.Errorf("core: routed[%d] path %v is not a valid %d->%d path", k, p.Path, r.Source, r.Target)
		}
		if !pathfind.IsSimple(inst.G, r.Source, p.Path) {
			return fmt.Errorf("core: routed[%d] path %v is not simple", k, p.Path)
		}
	}
	for e, load := range a.EdgeLoads(inst) {
		if c := inst.G.Edge(e).Capacity; load > c+1e-7 {
			return fmt.Errorf("core: edge %d overloaded: %g > %g", e, load, c)
		}
	}
	value := 0.0
	for _, p := range a.Routed {
		value += inst.Requests[p.Request].Value
	}
	if math.Abs(value-a.Value) > 1e-6*(1+math.Abs(value)) {
		return fmt.Errorf("core: reported value %g != recomputed %g", a.Value, value)
	}
	return nil
}

// maxSafeExponent bounds ε(B-1): beyond this, e^{ε(B-1)} overflows
// float64 (which caps near e^709). Algorithms reject such instances with
// a descriptive error rather than silently misbehaving.
const maxSafeExponent = 600

func checkExponentRange(eps, b float64) error {
	if eps*b > maxSafeExponent {
		return fmt.Errorf("core: ε·B = %g exceeds %g; e^{ε(B-1)} would overflow float64 — rescale the instance or reduce ε", eps*b, float64(maxSafeExponent))
	}
	return nil
}

func validateEps(eps float64) error {
	if !(eps > 0) || eps > 1 || math.IsNaN(eps) {
		return fmt.Errorf("core: accuracy parameter ε = %g outside (0,1]", eps)
	}
	return nil
}
