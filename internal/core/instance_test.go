package core_test

import (
	"math"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
)

func TestNormalizedScalesDemandsAndCapacities(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 100)
	inst := &core.Instance{G: g, Requests: []core.Request{
		{Source: 0, Target: 1, Demand: 20, Value: 3},
		{Source: 0, Target: 1, Demand: 5, Value: 1},
	}}
	norm, scale := inst.Normalized()
	if scale != 20 {
		t.Fatalf("scale = %g, want 20", scale)
	}
	if norm.Requests[0].Demand != 1 || norm.Requests[1].Demand != 0.25 {
		t.Fatalf("demands = %v", norm.Requests)
	}
	if norm.G.Edge(0).Capacity != 5 {
		t.Fatalf("capacity = %g, want 5", norm.G.Edge(0).Capacity)
	}
	if norm.Requests[0].Value != 3 {
		t.Fatal("values must be untouched by normalization")
	}
	if err := norm.Validate(); err != nil {
		t.Fatalf("normalized instance invalid: %v", err)
	}
	// The original instance is untouched.
	if inst.Requests[0].Demand != 20 || inst.G.Edge(0).Capacity != 100 {
		t.Fatal("Normalized mutated its receiver")
	}
}

func TestNormalizedEmptyRequests(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 7)
	norm, scale := (&core.Instance{G: g}).Normalized()
	if scale != 1 || norm.G.Edge(0).Capacity != 7 {
		t.Fatalf("empty normalization wrong: scale %g cap %g", scale, norm.G.Edge(0).Capacity)
	}
}

func TestNormalizedThenSolveEquivalence(t *testing.T) {
	// Solving a normalized instance must select the same request set as
	// the manually scaled instance — normalization is just units.
	g := graph.New(2)
	g.AddEdge(0, 1, 12)
	raw := &core.Instance{G: g, Requests: []core.Request{
		{Source: 0, Target: 1, Demand: 4, Value: 3},
		{Source: 0, Target: 1, Demand: 4, Value: 5},
		{Source: 0, Target: 1, Demand: 4, Value: 1},
		{Source: 0, Target: 1, Demand: 2, Value: 2},
	}}
	norm, _ := raw.Normalized()
	a, err := core.BoundedUFP(norm, 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, norm, a, false)
	if a.Value <= 0 {
		t.Fatal("nothing routed after normalization")
	}
}

func TestBoundedUFPUndirectedSharedCapacity(t *testing.T) {
	// One undirected capacity-1 edge with opposing unit requests: only
	// one can be routed, whichever direction.
	g := graph.NewUndirected(2)
	g.AddEdge(0, 1, 1)
	inst := &core.Instance{G: g, Requests: []core.Request{
		{Source: 0, Target: 1, Demand: 1, Value: 1},
		{Source: 1, Target: 0, Demand: 1, Value: 2},
	}}
	a, err := core.BoundedUFP(inst, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, inst, a, false)
	if len(a.Routed) != 1 || a.Routed[0].Request != 1 {
		t.Fatalf("routed %+v, want only request 1 (higher value)", a.Routed)
	}
}

func TestStopReasonStrings(t *testing.T) {
	cases := map[core.StopReason]string{
		core.StopAllSatisfied:   "all-satisfied",
		core.StopDualThreshold:  "dual-threshold",
		core.StopNoRoutablePath: "no-routable-path",
		core.StopIterationLimit: "iteration-limit",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if core.StopReason(77).String() == "" {
		t.Error("unknown stop reason should still format")
	}
}

func TestAllocationSelectedAndLoads(t *testing.T) {
	inst := diamondInstance(10, [2]float64{1, 1}, [2]float64{0.5, 2})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.5, nil) })
	sel := a.Selected(len(inst.Requests))
	if !sel[0] || !sel[1] {
		t.Fatalf("both requests should be selected: %v", sel)
	}
	loads := a.EdgeLoads(inst)
	total := 0.0
	for _, l := range loads {
		total += l
	}
	// Each request uses a 2-edge path: total load = 2*(1 + 0.5).
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("total load = %g, want 3", total)
	}
}

func TestCheckFeasibleRejectsBadAllocations(t *testing.T) {
	inst := diamondInstance(1, [2]float64{1, 1}, [2]float64{1, 1})
	// Overloaded edge: both requests on the same path.
	bad := &core.Allocation{
		Routed: []core.Routed{
			{Request: 0, Path: []int{0, 1}},
			{Request: 1, Path: []int{0, 1}},
		},
		Value: 2,
	}
	if bad.CheckFeasible(inst, false) == nil {
		t.Error("overload accepted")
	}
	// Wrong path endpoints.
	wrong := &core.Allocation{Routed: []core.Routed{{Request: 0, Path: []int{0}}}, Value: 1}
	if wrong.CheckFeasible(inst, false) == nil {
		t.Error("non-terminating path accepted")
	}
	// Repeated request without repetitions flag.
	dup := &core.Allocation{
		Routed: []core.Routed{
			{Request: 0, Path: []int{0, 1}},
			{Request: 0, Path: []int{2, 3}},
		},
		Value: 2,
	}
	if dup.CheckFeasible(inst, false) == nil {
		t.Error("duplicate request accepted without repetitions")
	}
	if err := dup.CheckFeasible(inst, true); err != nil {
		t.Errorf("repetitions flag should allow duplicates: %v", err)
	}
	// Misreported value.
	lied := &core.Allocation{Routed: []core.Routed{{Request: 0, Path: []int{0, 1}}}, Value: 42}
	if lied.CheckFeasible(inst, false) == nil {
		t.Error("wrong reported value accepted")
	}
	// Out-of-range request index.
	oob := &core.Allocation{Routed: []core.Routed{{Request: 9, Path: []int{0, 1}}}}
	if oob.CheckFeasible(inst, false) == nil {
		t.Error("out-of-range request accepted")
	}
}
