package core

import (
	"context"
	"errors"
	"testing"

	"truthfulufp/internal/graph"
)

func cancelInstance(requests int) *Instance {
	g := graph.Line(3, 50)
	inst := &Instance{G: g}
	for i := 0; i < requests; i++ {
		inst.Requests = append(inst.Requests, Request{
			Source: 0, Target: 2, Demand: 0.5, Value: 1 + float64(i)*0.01,
		})
	}
	return inst
}

// TestBoundedUFPCancellation: cancelling mid-run (deterministically, via
// the OnIteration hook) stops the loop at the next iteration check with
// the context's error.
func TestBoundedUFPCancellation(t *testing.T) {
	inst := cancelInstance(20)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := &Options{
		Workers: 1,
		OnIteration: func(iter int, _ Candidate, _ float64) {
			if iter == 2 {
				cancel()
			}
		},
	}
	_, err := BoundedUFPCtx(ctx, inst, 0.25, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BoundedUFPCtx after mid-run cancel: err = %v, want context.Canceled", err)
	}

	// A pre-cancelled context stops every solver before any iteration.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	pre := &Options{Workers: 1}
	for name, run := range map[string]func() (*Allocation, error){
		"bounded":    func() (*Allocation, error) { return BoundedUFPCtx(done, inst, 0.25, pre) },
		"repeat":     func() (*Allocation, error) { return BoundedUFPRepeatCtx(done, inst, 0.25, pre) },
		"sequential": func() (*Allocation, error) { return SequentialPrimalDualCtx(done, inst, 0.25, pre) },
		"greedy":     func() (*Allocation, error) { return GreedyByDensityCtx(done, inst, pre) },
		"pathmin": func() (*Allocation, error) {
			return IterativePathMinCtx(done, inst, EngineOptions{Rule: &ExpRule{}, Eps: 0.25, UseDualStop: true, Workers: 1})
		},
	} {
		if _, err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with pre-cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestNilAndLiveContextUnchanged: a live context (or none) does not
// perturb results.
func TestNilAndLiveContextUnchanged(t *testing.T) {
	inst := cancelInstance(8)
	base, err := BoundedUFP(inst, 0.25, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := BoundedUFPCtx(context.Background(), inst, 0.25, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Value != withCtx.Value || len(base.Routed) != len(withCtx.Routed) {
		t.Fatalf("live context changed the allocation: %v vs %v", base.Value, withCtx.Value)
	}
}
