package core

import "context"

// This file holds the v1 context-first entry points. Every solver in the
// package is callable as SomethingCtx(ctx, ...): the context is checked
// once per main-loop iteration (or per request for the single-pass
// baselines) and the run is abandoned with the context's error when it
// is done. The pre-v1 Options.Ctx shim has been removed — the context
// argument is the only cancellation channel; the plain spellings
// (SolveUFP, ...) are the same calls with no context.

// SolveUFPCtx is SolveUFP under a context (the v1 calling convention).
func SolveUFPCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	return boundedUFPLoop(ctx, inst, eps/6, opt, false)
}

// BoundedUFPCtx is BoundedUFP under a context.
func BoundedUFPCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return boundedUFPLoop(ctx, inst, eps, opt, false)
}

// SolveUFPRepeatCtx is SolveUFPRepeat under a context.
func SolveUFPRepeatCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	return boundedUFPLoop(ctx, inst, eps/6, opt, true)
}

// BoundedUFPRepeatCtx is BoundedUFPRepeat under a context.
func BoundedUFPRepeatCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return boundedUFPLoop(ctx, inst, eps, opt, true)
}

// SequentialPrimalDualCtx is SequentialPrimalDual under a context.
func SequentialPrimalDualCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return sequentialPrimalDual(ctx, inst, eps, opt)
}

// GreedyByDensityCtx is GreedyByDensity under a context.
func GreedyByDensityCtx(ctx context.Context, inst *Instance, opt *Options) (*Allocation, error) {
	return greedyByDensity(ctx, inst, opt)
}

// IterativePathMinCtx is IterativePathMin under a context.
func IterativePathMinCtx(ctx context.Context, inst *Instance, opt EngineOptions) (*Allocation, error) {
	return iterativePathMin(ctx, inst, opt)
}
