package core

import "context"

// This file holds the v1 context-first entry points. Every solver in the
// package is callable as SomethingCtx(ctx, ...): the context is checked
// once per main-loop iteration (or per request for the single-pass
// baselines) and the run is abandoned with the context's error when it
// is done. The pre-v1 Options.Ctx field remains as a deprecated shim; an
// explicit ctx argument supersedes it.

// withCtx returns options carrying ctx, cloning opt so the caller's
// value is never mutated. A nil ctx leaves opt untouched (Options.Ctx,
// if any, still applies — the compatibility shim).
func (o *Options) withCtx(ctx context.Context) *Options {
	if ctx == nil || ctx == context.Background() && (o == nil || o.Ctx == nil) {
		return o
	}
	var c Options
	if o != nil {
		c = *o
	}
	c.Ctx = ctx
	return &c
}

// SolveUFPCtx is SolveUFP under a context (the v1 calling convention).
func SolveUFPCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return SolveUFP(inst, eps, opt.withCtx(ctx))
}

// BoundedUFPCtx is BoundedUFP under a context.
func BoundedUFPCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return BoundedUFP(inst, eps, opt.withCtx(ctx))
}

// SolveUFPRepeatCtx is SolveUFPRepeat under a context.
func SolveUFPRepeatCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return SolveUFPRepeat(inst, eps, opt.withCtx(ctx))
}

// BoundedUFPRepeatCtx is BoundedUFPRepeat under a context.
func BoundedUFPRepeatCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return BoundedUFPRepeat(inst, eps, opt.withCtx(ctx))
}

// SequentialPrimalDualCtx is SequentialPrimalDual under a context.
func SequentialPrimalDualCtx(ctx context.Context, inst *Instance, eps float64, opt *Options) (*Allocation, error) {
	return SequentialPrimalDual(inst, eps, opt.withCtx(ctx))
}

// GreedyByDensityCtx is GreedyByDensity under a context.
func GreedyByDensityCtx(ctx context.Context, inst *Instance, opt *Options) (*Allocation, error) {
	return GreedyByDensity(inst, opt.withCtx(ctx))
}

// IterativePathMinCtx is IterativePathMin under a context.
func IterativePathMinCtx(ctx context.Context, inst *Instance, opt EngineOptions) (*Allocation, error) {
	if ctx != nil && !(ctx == context.Background() && opt.Ctx == nil) {
		opt.Ctx = ctx
	}
	return IterativePathMin(inst, opt)
}
