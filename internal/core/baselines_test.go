package core_test

import (
	"math"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/workload"
)

func TestSequentialPrimalDualAdmitsAffordable(t *testing.T) {
	// Fresh prices on a capacity-20 edge are 1/20; a unit-demand request
	// with value 1 passes the price test easily.
	inst := singleEdge(20, [2]float64{1, 1}, [2]float64{1, 1})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.SequentialPrimalDual(inst, 0.3, nil) })
	checkFeasible(t, inst, a, false)
	if len(a.Routed) != 2 {
		t.Fatalf("admitted %d, want 2", len(a.Routed))
	}
}

func TestSequentialPrimalDualRejectsOverpriced(t *testing.T) {
	// Value below the fresh path price d·y = 1/2: rejected.
	inst := singleEdge(2, [2]float64{1, 0.4})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.SequentialPrimalDual(inst, 0.3, nil) })
	if len(a.Routed) != 0 {
		t.Fatalf("admitted an overpriced request")
	}
}

func TestSequentialPrimalDualOrderDependence(t *testing.T) {
	// Input order matters: with contention the first request wins even if
	// the second is more valuable — the structural weakness versus
	// Bounded-UFP's global selection.
	lowFirst := singleEdge(1, [2]float64{1, 1.2}, [2]float64{1, 5})
	a := mustSolve(t, func() (*core.Allocation, error) { return core.SequentialPrimalDual(lowFirst, 0.3, nil) })
	if len(a.Routed) != 1 || a.Routed[0].Request != 0 {
		t.Fatalf("expected first-come admission, got %+v", a.Routed)
	}
	ufp := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(lowFirst, 0.3, nil) })
	if ufp.Value <= a.Value {
		t.Fatalf("Bounded-UFP (%g) should beat sequential (%g) here", ufp.Value, a.Value)
	}
}

func TestSequentialPrimalDualMonotone(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.Requests = 20
	cfg.B = 6
	rng := workload.NewRNG(123)
	for seed := uint64(0); seed < 5; seed++ {
		inst := randomInstance(t, seed+60, cfg)
		base := mustSolve(t, func() (*core.Allocation, error) { return core.SequentialPrimalDual(inst, 0.25, nil) })
		sel := base.Selected(len(inst.Requests))
		for trial := 0; trial < 10; trial++ {
			r := rng.IntN(len(inst.Requests))
			mod := inst.Clone()
			if sel[r] {
				mod.Requests[r].Demand *= 0.5 + 0.5*rng.Float64()
				mod.Requests[r].Value *= 1 + rng.Float64()
			} else {
				mod.Requests[r].Demand = math.Min(1, mod.Requests[r].Demand*(1+rng.Float64()))
				mod.Requests[r].Value *= 0.5
			}
			got := mustSolve(t, func() (*core.Allocation, error) { return core.SequentialPrimalDual(mod, 0.25, nil) })
			gotSel := got.Selected(len(mod.Requests))
			if sel[r] && !gotSel[r] {
				t.Fatalf("seed %d: sequential baseline not monotone (improvement dropped request %d)", seed, r)
			}
			if !sel[r] && gotSel[r] {
				t.Fatalf("seed %d: sequential baseline not monotone (worsening admitted request %d)", seed, r)
			}
		}
	}
}

func TestGreedyByDensityOrdersByDensity(t *testing.T) {
	// Capacity 1: only one fits; greedy takes the densest (v/d).
	inst := singleEdge(1, [2]float64{1, 1}, [2]float64{0.5, 0.9}) // densities 1 vs 1.8
	a := mustSolve(t, func() (*core.Allocation, error) { return core.GreedyByDensity(inst, nil) })
	if len(a.Routed) != 1 || a.Routed[0].Request != 1 {
		t.Fatalf("greedy routed %+v, want request 1", a.Routed)
	}
}

func TestGreedyByDensityFeasible(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.B = 4
	cfg.Requests = 40
	for seed := uint64(0); seed < 5; seed++ {
		inst := randomInstance(t, seed+80, cfg)
		a := mustSolve(t, func() (*core.Allocation, error) { return core.GreedyByDensity(inst, nil) })
		checkFeasible(t, inst, a, false)
	}
}

func TestBaselinesNeverExceedExactOPT(t *testing.T) {
	cfg := workload.UFPConfig{
		Vertices: 6, Edges: 10, Requests: 7, Directed: true,
		B: 2, CapSpread: 0.3,
		DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	for seed := uint64(0); seed < 5; seed++ {
		inst := randomInstance(t, seed+200, cfg)
		opt, err := core.ExactOPT(inst, 500)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*core.Allocation, error){
			"sequential": func() (*core.Allocation, error) { return core.SequentialPrimalDual(inst, 0.3, nil) },
			"greedy":     func() (*core.Allocation, error) { return core.GreedyByDensity(inst, nil) },
			"bounded":    func() (*core.Allocation, error) { return core.BoundedUFP(inst, 0.3, nil) },
		} {
			a := mustSolve(t, run)
			checkFeasible(t, inst, a, false)
			if a.Value > opt.Value+1e-6 {
				t.Fatalf("seed %d: %s value %g exceeds OPT %g", seed, name, a.Value, opt.Value)
			}
		}
	}
}
