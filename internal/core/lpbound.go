package core

import (
	"fmt"
	"math"

	"truthfulufp/internal/ilp"
	"truthfulufp/internal/lp"
	"truthfulufp/internal/pathfind"
)

// WeightedPath is one path of a fractional flow decomposition, carrying
// the fraction of the request's demand routed along it.
type WeightedPath struct {
	Path     []int
	Fraction float64
}

// FracSolution is an optimal solution of the multicommodity relaxation
// (the LP of Figure 1, or Figure 5 without the per-request cap).
type FracSolution struct {
	Objective float64
	// X[r] is the satisfied fraction of request r (in [0,1] for the
	// capped LP).
	X []float64
	// Decomposition[r] holds a path decomposition of request r's flow;
	// fractions sum to ~X[r] (cycles in the LP solution carry no value
	// and are dropped).
	Decomposition [][]WeightedPath
}

// FractionalUFP solves the fractional relaxation of the instance exactly
// with the simplex solver, using an arc-based formulation (per-request
// edge flows plus a satisfaction variable). With capped=true requests are
// capped at one copy (Figure 1's relaxation); with capped=false
// repetitions are allowed (Figure 5's relaxation). The LP has about
// |R|·m flow variables, so this is intended for small instances; larger
// experiments use the primal-dual DualBound instead.
func FractionalUFP(inst *Instance, capped bool) (*FracSolution, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	g := inst.G
	m := g.NumEdges()
	nR := len(inst.Requests)
	if nR == 0 {
		return &FracSolution{}, nil
	}
	// Arc layout: directed graphs use one flow variable per (request,
	// edge); undirected graphs use two (one per direction), sharing the
	// edge capacity.
	dirs := 1
	if !g.Directed() {
		dirs = 2
	}
	fvar := func(r, e, dir int) int { return r*m*dirs + e*dirs + dir }
	xvar := func(r int) int { return nR*m*dirs + r }
	numVars := nR*m*dirs + nR
	prob := lp.NewMaximize(numVars)
	for r, req := range inst.Requests {
		prob.SetObjectiveCoeff(xvar(r), req.Value)
	}
	// Capacity rows: sum over requests and directions of flow on e <= c_e.
	for e := 0; e < m; e++ {
		idx := make([]int, 0, nR*dirs)
		val := make([]float64, 0, nR*dirs)
		for r := 0; r < nR; r++ {
			for dir := 0; dir < dirs; dir++ {
				idx = append(idx, fvar(r, e, dir))
				val = append(val, 1)
			}
		}
		prob.AddSparse(idx, val, lp.LE, g.Edge(e).Capacity)
	}
	// Conservation rows: for each request r and vertex v != target,
	// outflow - inflow = d_r*x_r at the source and 0 elsewhere.
	for r, req := range inst.Requests {
		for v := 0; v < g.NumVertices(); v++ {
			if v == req.Target {
				continue // redundant row
			}
			coef := map[int]float64{}
			for e := 0; e < m; e++ {
				ed := g.Edge(e)
				// Direction 0: From -> To; direction 1 (undirected only):
				// To -> From.
				if ed.From == v {
					coef[fvar(r, e, 0)] += 1
					if dirs == 2 {
						coef[fvar(r, e, 1)] -= 1
					}
				}
				if ed.To == v {
					coef[fvar(r, e, 0)] -= 1
					if dirs == 2 {
						coef[fvar(r, e, 1)] += 1
					}
				}
			}
			if v == req.Source {
				coef[xvar(r)] = -req.Demand
			}
			idx := make([]int, 0, len(coef))
			for j := range coef {
				idx = append(idx, j)
			}
			// Deterministic row construction.
			sortInts(idx)
			val := make([]float64, len(idx))
			for k, j := range idx {
				val[k] = coef[j]
			}
			prob.AddSparse(idx, val, lp.EQ, 0)
		}
		if capped {
			prob.AddSparse([]int{xvar(r)}, []float64{1}, lp.LE, 1)
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: fractional LP not optimal: %v", sol.Status)
	}
	fs := &FracSolution{
		Objective:     sol.Objective,
		X:             make([]float64, nR),
		Decomposition: make([][]WeightedPath, nR),
	}
	for r, req := range inst.Requests {
		fs.X[r] = sol.X[xvar(r)]
		// Extract per-arc flow and strip paths.
		arcFlow := make(map[[2]int]float64) // (edge, dir) -> flow
		for e := 0; e < m; e++ {
			for dir := 0; dir < dirs; dir++ {
				if f := sol.X[fvar(r, e, dir)]; f > 1e-9 {
					arcFlow[[2]int{e, dir}] = f
				}
			}
		}
		fs.Decomposition[r] = stripPaths(inst, req, arcFlow)
	}
	return fs, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// stripPaths decomposes a request's arc flow into simple source-target
// paths by repeatedly following positive-flow arcs. Flow stuck in cycles
// carries no objective value and is discarded.
func stripPaths(inst *Instance, req Request, arcFlow map[[2]int]float64) []WeightedPath {
	g := inst.G
	var out []WeightedPath
	const tol = 1e-9
	for iter := 0; iter < 10000; iter++ {
		// Walk from source following positive flow; stop at target or
		// when stuck. Mark visited vertices to cut cycles.
		v := req.Source
		visited := map[int]bool{v: true}
		var pathEdges []int
		var pathArcs [][2]int
		for v != req.Target {
			advanced := false
			for _, a := range g.OutArcs(v) {
				dir := 0
				if !g.Directed() && g.Edge(a.Edge).From != v {
					dir = 1
				}
				key := [2]int{a.Edge, dir}
				if arcFlow[key] > tol && !visited[a.To] {
					pathEdges = append(pathEdges, a.Edge)
					pathArcs = append(pathArcs, key)
					v = a.To
					visited[v] = true
					advanced = true
					break
				}
			}
			if !advanced {
				break
			}
		}
		if v != req.Target || len(pathEdges) == 0 {
			return out
		}
		// Route the bottleneck flow along the path.
		f := math.Inf(1)
		for _, key := range pathArcs {
			if arcFlow[key] < f {
				f = arcFlow[key]
			}
		}
		for _, key := range pathArcs {
			arcFlow[key] -= f
		}
		out = append(out, WeightedPath{Path: pathEdges, Fraction: f / req.Demand})
	}
	return out
}

// ExactResult is the output of ExactOPT.
type ExactResult struct {
	Value  float64
	Routed []Routed
	// Exact is true if the path enumeration was complete for every
	// request, making Value the true integral optimum; otherwise Value is
	// a lower bound.
	Exact bool
	Nodes int
}

// ExactOPT computes the exact integral optimum of a small instance by
// enumerating up to pathLimit simple paths per request (0 = unlimited)
// and solving the resulting 0/1 packing program by branch and bound. The
// packing rows are the edge capacities plus one at-most-one-path row per
// request — exactly the integer program of Figure 1.
func ExactOPT(inst *Instance, pathLimit int) (*ExactResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	type col struct {
		request int
		path    []int
	}
	var cols []col
	exact := true
	for r, req := range inst.Requests {
		paths := pathfind.SimplePaths(inst.G, req.Source, req.Target, pathLimit)
		if pathLimit > 0 && len(paths) == pathLimit {
			exact = false
		}
		for _, p := range paths {
			cols = append(cols, col{r, p})
		}
	}
	if len(cols) == 0 {
		return &ExactResult{Exact: exact}, nil
	}
	pack := &ilp.Packing{Values: make([]float64, len(cols))}
	edgeCols := make(map[int][]int)
	reqCols := make(map[int][]int)
	for j, c := range cols {
		pack.Values[j] = inst.Requests[c.request].Value
		reqCols[c.request] = append(reqCols[c.request], j)
		for _, e := range c.path {
			edgeCols[e] = append(edgeCols[e], j)
		}
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		js := edgeCols[e]
		if len(js) == 0 {
			continue
		}
		coef := make([]float64, len(js))
		for k, j := range js {
			coef[k] = inst.Requests[cols[j].request].Demand
		}
		pack.Rows = append(pack.Rows, ilp.Row{Idx: js, Coef: coef, Cap: inst.G.Edge(e).Capacity})
	}
	for r := 0; r < len(inst.Requests); r++ {
		js := reqCols[r]
		if len(js) <= 1 {
			continue // a single path cannot be double-selected
		}
		coef := make([]float64, len(js))
		for k := range coef {
			coef[k] = 1
		}
		pack.Rows = append(pack.Rows, ilp.Row{Idx: js, Coef: coef, Cap: 1})
	}
	res, err := ilp.SolvePacking(pack, ilp.Options{})
	if err != nil {
		return nil, err
	}
	out := &ExactResult{Value: res.Value, Exact: exact && res.Proven, Nodes: res.Nodes}
	for j, sel := range res.Selected {
		if sel {
			out.Routed = append(out.Routed, Routed{Request: cols[j].request, Path: cols[j].path})
		}
	}
	return out, nil
}
