package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"truthfulufp/internal/core"
	"truthfulufp/internal/workload"
)

// quickInstance derives a bounded random instance from quick-generated
// primitives.
func quickInstance(seed uint64, bRaw, rRaw uint8) *core.Instance {
	cfg := workload.UFPConfig{
		Vertices:  6 + int(bRaw%5),
		Edges:     14 + int(rRaw%10),
		Requests:  10 + int(rRaw%25),
		Directed:  true,
		B:         3 + float64(bRaw%28),
		CapSpread: 0.4,
		DemandMin: 0.2, DemandMax: 1,
		ValueMin: 0.3, ValueMax: 2,
	}
	inst, err := workload.RandomUFP(workload.NewRNG(seed), cfg)
	if err != nil {
		panic(err)
	}
	return inst
}

func quickEps(eRaw uint8) float64 {
	return 0.05 + float64(eRaw%20)*0.045 // in [0.05, 0.95]
}

// TestQuickBoundedUFPInvariants: for arbitrary instances and epsilons,
// the allocation is feasible (Lemma 3.3), exact (each request at most
// once, full demand), and the certified dual bound dominates the
// achieved value.
func TestQuickBoundedUFPInvariants(t *testing.T) {
	f := func(seed uint64, bRaw, rRaw, eRaw uint8) bool {
		inst := quickInstance(seed, bRaw, rRaw)
		eps := quickEps(eRaw)
		a, err := core.BoundedUFP(inst, eps, nil)
		if err != nil {
			return false
		}
		if a.CheckFeasible(inst, false) != nil {
			return false
		}
		return a.DualBound >= a.Value-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRepeatInvariants: same invariants for the repetitions variant,
// plus the Theorem 5.1 iteration bound m·c_max/d_min.
func TestQuickRepeatInvariants(t *testing.T) {
	f := func(seed uint64, bRaw, rRaw, eRaw uint8) bool {
		inst := quickInstance(seed, bRaw%8, rRaw%8) // keep B small: iteration count is pseudo-polynomial
		eps := 0.2 + float64(eRaw%8)*0.1
		a, err := core.BoundedUFPRepeat(inst, eps, nil)
		if err != nil {
			return false
		}
		if a.CheckFeasible(inst, true) != nil {
			return false
		}
		dMin := math.Inf(1)
		for _, r := range inst.Requests {
			dMin = math.Min(dMin, r.Demand)
		}
		bound := float64(inst.G.NumEdges()) * inst.G.MaxCapacity() / dMin
		return float64(a.Iterations) <= bound+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotonicity: one random improvement/worsening probe per
// generated instance — the quick-check form of Lemma 3.4.
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed uint64, bRaw, rRaw, pick uint8, improveDemand, improveValue bool) bool {
		inst := quickInstance(seed, bRaw, rRaw)
		const eps = 0.3
		base, err := core.BoundedUFP(inst, eps, nil)
		if err != nil {
			return false
		}
		sel := base.Selected(len(inst.Requests))
		r := int(pick) % len(inst.Requests)
		mod := inst.Clone()
		if sel[r] {
			// Improve: lower demand and/or raise value.
			if improveDemand {
				mod.Requests[r].Demand *= 0.6
			}
			if improveValue {
				mod.Requests[r].Value *= 1.7
			}
			got, err := core.BoundedUFP(mod, eps, nil)
			if err != nil {
				return false
			}
			return got.Selected(len(mod.Requests))[r]
		}
		// Worsen: raise demand and/or lower value.
		if improveDemand {
			mod.Requests[r].Demand = math.Min(1, mod.Requests[r].Demand*1.5)
		}
		if improveValue {
			mod.Requests[r].Value *= 0.5
		}
		got, err := core.BoundedUFP(mod, eps, nil)
		if err != nil {
			return false
		}
		return !got.Selected(len(mod.Requests))[r]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBaselinesFeasible: the baselines never violate capacities
// either, across arbitrary instances.
func TestQuickBaselinesFeasible(t *testing.T) {
	f := func(seed uint64, bRaw, rRaw uint8, useGreedy bool) bool {
		inst := quickInstance(seed, bRaw, rRaw)
		var a *core.Allocation
		var err error
		if useGreedy {
			a, err = core.GreedyByDensity(inst, nil)
		} else {
			a, err = core.SequentialPrimalDual(inst, 0.3, nil)
		}
		if err != nil {
			return false
		}
		return a.CheckFeasible(inst, false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
