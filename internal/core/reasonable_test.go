package core_test

import (
	"math"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/workload"
)

// TestEngineExpRuleMatchesBoundedUFP is the key cross-validation: the
// reasonable-algorithm engine instantiated with the paper's h function
// and the dual-threshold stop must make exactly the same selections as
// the dedicated Bounded-UFP implementation.
func TestEngineExpRuleMatchesBoundedUFP(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.Requests = 35
	cfg.B = 15
	for seed := uint64(0); seed < 6; seed++ {
		inst := randomInstance(t, seed+40, cfg)
		const eps = 0.2
		direct := mustSolve(t, func() (*core.Allocation, error) { return core.BoundedUFP(inst, eps, nil) })
		engine := mustSolve(t, func() (*core.Allocation, error) {
			return core.IterativePathMin(inst, core.EngineOptions{
				Rule: &core.ExpRule{}, Eps: eps, UseDualStop: true,
			})
		})
		if !equalInts(requestSeq(direct), requestSeq(engine)) {
			t.Fatalf("seed %d: engine selections %v != Bounded-UFP %v", seed, requestSeq(engine), requestSeq(direct))
		}
		if math.Abs(direct.Value-engine.Value) > 1e-9 {
			t.Fatalf("seed %d: values differ: %g vs %g", seed, direct.Value, engine.Value)
		}
	}
}

func TestEngineRequiresStopPolicy(t *testing.T) {
	inst := singleEdge(5, [2]float64{1, 1})
	_, err := core.IterativePathMin(inst, core.EngineOptions{Rule: &core.ExpRule{}, Eps: 0.5})
	if err == nil {
		t.Fatal("engine accepted neither FeasibleOnly nor UseDualStop")
	}
	_, err = core.IterativePathMin(inst, core.EngineOptions{FeasibleOnly: true})
	if err == nil {
		t.Fatal("engine accepted nil rule")
	}
}

func TestEngineCapacityStopRoutesUntilFull(t *testing.T) {
	// Capacity 3, five unit requests: with the capacity stop exactly 3
	// route regardless of rule.
	inst := singleEdge(3,
		[2]float64{1, 1}, [2]float64{1, 1.1}, [2]float64{1, 0.9},
		[2]float64{1, 1.2}, [2]float64{1, 1.05})
	for _, rule := range core.AllRules(true) {
		a := mustSolve(t, func() (*core.Allocation, error) {
			return core.IterativePathMin(inst, core.EngineOptions{
				Rule: rule, Eps: 0.3, FeasibleOnly: true,
			})
		})
		checkFeasible(t, inst, a, false)
		if len(a.Routed) != 3 {
			t.Fatalf("rule %s routed %d, want 3", rule.Name(), len(a.Routed))
		}
		if a.Stop != core.StopNoRoutablePath {
			t.Fatalf("rule %s stop = %v, want no-routable-path", rule.Name(), a.Stop)
		}
	}
}

func TestEngineAllRulesFeasibleOnRandomInstances(t *testing.T) {
	cfg := workload.UFPConfig{
		Vertices: 8, Edges: 18, Requests: 20, Directed: true,
		B: 4, CapSpread: 0.5,
		DemandMin: 0.3, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	for seed := uint64(0); seed < 4; seed++ {
		inst := randomInstance(t, seed+70, cfg)
		for _, rule := range core.AllRules(false) { // ProductRule skipped: enumeration cost
			a := mustSolve(t, func() (*core.Allocation, error) {
				return core.IterativePathMin(inst, core.EngineOptions{
					Rule: rule, Eps: 0.25, FeasibleOnly: true,
				})
			})
			checkFeasible(t, inst, a, false)
			if a.Value <= 0 {
				t.Fatalf("rule %s routed nothing", rule.Name())
			}
		}
	}
}

func TestHopRulePrefersShortPath(t *testing.T) {
	// 0->1 direct (1 hop) vs 0->2->1 (2 hops): hop rule must take direct.
	g := graph.New(3)
	g.AddEdge(0, 1, 5) // e0 direct
	g.AddEdge(0, 2, 5) // e1
	g.AddEdge(2, 1, 5) // e2
	inst := &core.Instance{G: g, Requests: []core.Request{{Source: 0, Target: 1, Demand: 1, Value: 1}}}
	a := mustSolve(t, func() (*core.Allocation, error) {
		return core.IterativePathMin(inst, core.EngineOptions{Rule: &core.HopRule{}, FeasibleOnly: true})
	})
	if len(a.Routed) != 1 || len(a.Routed[0].Path) != 1 || a.Routed[0].Path[0] != 0 {
		t.Fatalf("hop rule chose %v, want direct edge", a.Routed)
	}
}

func TestLogHopsRuleBiasesTowardFewerEdges(t *testing.T) {
	// Construct a case where the exp-length of a 1-hop path is slightly
	// worse than a 3-hop path, but the ln(1+k) factor flips the choice.
	// Direct edge: capacity 4 (price 1/4). Detour: three edges capacity
	// 10 each (price 3/10). Exp lengths: 0.25 vs 0.3 -> h prefers direct;
	// h1: ln(2)*0.25 = 0.173 vs ln(4)*0.3 = 0.416 -> h1 also direct.
	// Flip it: direct capacity 2 (price 0.5): h prefers detour (0.3);
	// h1: ln(2)*0.5 = 0.347 vs ln(4)*0.3 = 0.416 -> h1 prefers DIRECT.
	g := graph.New(4)
	g.AddEdge(0, 3, 2)  // e0 direct, expensive per-edge
	g.AddEdge(0, 1, 10) // e1
	g.AddEdge(1, 2, 10) // e2
	g.AddEdge(2, 3, 10) // e3
	inst := &core.Instance{G: g, Requests: []core.Request{{Source: 0, Target: 3, Demand: 1, Value: 1}}}
	exp := mustSolve(t, func() (*core.Allocation, error) {
		return core.IterativePathMin(inst, core.EngineOptions{Rule: &core.ExpRule{}, Eps: 0.1, FeasibleOnly: true})
	})
	if len(exp.Routed[0].Path) != 3 {
		t.Fatalf("exp rule chose %d-hop path, want 3-hop detour", len(exp.Routed[0].Path))
	}
	lh := mustSolve(t, func() (*core.Allocation, error) {
		return core.IterativePathMin(inst, core.EngineOptions{Rule: &core.LogHopsRule{}, Eps: 0.1, FeasibleOnly: true})
	})
	if len(lh.Routed[0].Path) != 1 {
		t.Fatalf("log-hops rule chose %d-hop path, want direct", len(lh.Routed[0].Path))
	}
}

func TestBottleneckRuleAvoidsCongestedEdge(t *testing.T) {
	// Two 2-hop paths; one shares an edge already carrying flow. The
	// bottleneck rule must pick the untouched path even if its total
	// length is slightly higher.
	g := graph.New(4)
	g.AddEdge(0, 1, 4) // e0 path A
	g.AddEdge(1, 3, 4) // e1 path A (will be preloaded)
	g.AddEdge(0, 2, 3) // e2 path B (pricier per edge: smaller capacity)
	g.AddEdge(2, 3, 3) // e3 path B
	inst := &core.Instance{G: g, Requests: []core.Request{
		{Source: 1, Target: 3, Demand: 1, Value: 10}, // preloads e1
		{Source: 0, Target: 3, Demand: 1, Value: 1},
	}}
	a := mustSolve(t, func() (*core.Allocation, error) {
		return core.IterativePathMin(inst, core.EngineOptions{Rule: &core.BottleneckRule{}, Eps: 1, FeasibleOnly: true})
	})
	checkFeasible(t, inst, a, false)
	var second core.Routed
	for _, p := range a.Routed {
		if p.Request == 1 {
			second = p
		}
	}
	if len(second.Path) != 2 || second.Path[0] != 2 {
		t.Fatalf("bottleneck rule chose path %v, want fresh path via vertex 2", second.Path)
	}
}

func TestProductRulePrefersUnusedEdges(t *testing.T) {
	// h2 = d/v · Π f_e/c_e: any path with an unused edge has priority 0;
	// after loading one path, the untouched one (product 0) wins.
	inst := diamondInstance(2, [2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1})
	a := mustSolve(t, func() (*core.Allocation, error) {
		return core.IterativePathMin(inst, core.EngineOptions{Rule: &core.ProductRule{}, FeasibleOnly: true})
	})
	checkFeasible(t, inst, a, false)
	if len(a.Routed) != 3 {
		t.Fatalf("routed %d, want 3", len(a.Routed))
	}
	// The first two selections must use disjoint paths (both have
	// product 0 only while fresh).
	if a.Routed[0].Path[0] == a.Routed[1].Path[0] {
		t.Fatalf("product rule reused a loaded path while a fresh one existed: %v", a.Routed)
	}
}

func TestEngineTieBreakOverride(t *testing.T) {
	// Two identical requests: default tie-break picks index 0 first; a
	// reversed tie-break picks index 1 first.
	inst := singleEdge(4, [2]float64{1, 1}, [2]float64{1, 1})
	rev := func(a, b core.Candidate) bool { return a.Request > b.Request }
	a := mustSolve(t, func() (*core.Allocation, error) {
		return core.IterativePathMin(inst, core.EngineOptions{
			Rule: &core.HopRule{}, FeasibleOnly: true, TieBreak: rev,
		})
	})
	if a.Routed[0].Request != 1 {
		t.Fatalf("custom tie-break ignored: first selection %d", a.Routed[0].Request)
	}
	b := mustSolve(t, func() (*core.Allocation, error) {
		return core.IterativePathMin(inst, core.EngineOptions{Rule: &core.HopRule{}, FeasibleOnly: true})
	})
	if b.Routed[0].Request != 0 {
		t.Fatalf("default tie-break wrong: first selection %d", b.Routed[0].Request)
	}
}

func TestEngineMaxIterations(t *testing.T) {
	inst := singleEdge(10, [2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1})
	a := mustSolve(t, func() (*core.Allocation, error) {
		return core.IterativePathMin(inst, core.EngineOptions{
			Rule: &core.HopRule{}, FeasibleOnly: true, MaxIterations: 2,
		})
	})
	if a.Iterations != 2 || a.Stop != core.StopIterationLimit {
		t.Fatalf("iterations %d stop %v, want 2 iteration-limit", a.Iterations, a.Stop)
	}
}
