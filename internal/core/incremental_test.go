package core_test

import (
	"math"
	"reflect"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/workload"
)

// allocationsIdentical compares the full outcome: same requests, same
// paths, same order, same diagnostics.
func allocationsIdentical(t *testing.T, label string, a, b *core.Allocation) {
	t.Helper()
	if !reflect.DeepEqual(a.Routed, b.Routed) {
		t.Fatalf("%s: routed (request, path) sequences differ:\n full: %v\n incr: %v", label, a.Routed, b.Routed)
	}
	if a.Value != b.Value || a.Iterations != b.Iterations || a.Stop != b.Stop || a.DualBound != b.DualBound {
		t.Fatalf("%s: diagnostics differ: full {v=%v it=%d stop=%v dual=%v} vs incr {v=%v it=%d stop=%v dual=%v}",
			label, a.Value, a.Iterations, a.Stop, a.DualBound, b.Value, b.Iterations, b.Stop, b.DualBound)
	}
}

// TestIncrementalMatchesFullRecomputeSolvers: the dirty-source cache is
// an optimization, not a semantic change — BoundedUFP and
// BoundedUFPRepeat produce identical allocations (paths included) with
// the cache on and off, across random instances of both orientations.
func TestIncrementalMatchesFullRecomputeSolvers(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		cfg := workload.UFPConfig{
			Vertices: 16 + int(seed)*4, Edges: 60 + int(seed)*12,
			Requests: 80, Directed: seed%2 == 0,
			B: 30, CapSpread: 0.3,
			DemandMin: 0.3, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
		}
		inst, err := workload.RandomUFP(workload.NewRNG(seed+50), cfg)
		if err != nil {
			t.Fatal(err)
		}
		full, err := core.BoundedUFP(inst, 0.3, &core.Options{NoIncremental: true})
		if err != nil {
			t.Fatal(err)
		}
		incr, err := core.BoundedUFP(inst, 0.3, nil)
		if err != nil {
			t.Fatal(err)
		}
		allocationsIdentical(t, "bounded", full, incr)

		// Parallel refresh must agree with serial too.
		par, err := core.BoundedUFP(inst, 0.3, &core.Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		allocationsIdentical(t, "bounded-parallel", full, par)

		rfull, err := core.BoundedUFPRepeat(inst, 0.3, &core.Options{NoIncremental: true, MaxIterations: 200})
		if err != nil {
			t.Fatal(err)
		}
		rincr, err := core.BoundedUFPRepeat(inst, 0.3, &core.Options{MaxIterations: 200})
		if err != nil {
			t.Fatal(err)
		}
		allocationsIdentical(t, "repeat", rfull, rincr)
	}
}

// TestPolicyKnobsInvariance: the adaptive-policy knobs threaded through
// Options and EngineOptions only move work between tree refreshes and
// single-target searches — allocations are identical at both extremes
// (everything routes single; warm-up so long nothing ever does).
func TestPolicyKnobsInvariance(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		inst := randomInstance(t, seed+70, workload.UFPConfig{
			Vertices: 18, Edges: 70, Requests: 60, Directed: seed%2 == 0,
			B: 30, CapSpread: 0.3,
			DemandMin: 0.3, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
		})
		want, err := core.BoundedUFP(inst, 0.3, &core.Options{NoIncremental: true})
		if err != nil {
			t.Fatal(err)
		}
		for label, opt := range map[string]*core.Options{
			"eager":  {Adaptive: true, PolicyWarmup: -1, PolicyCostRatio: -1},
			"frozen": {Adaptive: true, PolicyWarmup: 1 << 30, PolicyCostRatio: 10},
		} {
			got, err := core.BoundedUFP(inst, 0.3, opt)
			if err != nil {
				t.Fatal(err)
			}
			allocationsIdentical(t, "bounded/"+label, want, got)
		}

		ewant, err := core.IterativePathMin(inst, core.EngineOptions{
			Rule: &core.ExpRule{}, Eps: 0.3, UseDualStop: true, NoIncremental: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		egot, err := core.IterativePathMin(inst, core.EngineOptions{
			Rule: &core.ExpRule{}, Eps: 0.3, UseDualStop: true,
			Adaptive: true, PolicyWarmup: -1, PolicyCostRatio: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		allocationsIdentical(t, "engine/eager", ewant, egot)
	}
}

// TestSharedKeyParallelPrepare pins the duplicate-slot hazard: with
// FeasibleOnly=false every demand class shares one tree cache, so a
// source that appears under several distinct demands yields the same
// cache slot once per group. Refresh must deduplicate those slots —
// otherwise two Prepare workers recompute one tree concurrently (a data
// race under -race, garbage trees in production). Workers is pinned > 1
// so the parallel path runs even on single-CPU CI.
func TestSharedKeyParallelPrepare(t *testing.T) {
	inst, err := workload.RandomUFP(workload.NewRNG(31), workload.UFPConfig{
		Vertices: 10, Edges: 40, Requests: 60, Directed: true,
		B: 30, CapSpread: 0.3,
		DemandMin: 0.2, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 60 requests over 10 vertices with continuous random demands: every
	// source carries many distinct demand classes.
	for _, mk := range []func() core.Rule{
		func() core.Rule { return &core.ExpRule{} },
		func() core.Rule { return &core.HopRule{} },
	} {
		serial, err := core.IterativePathMin(inst, core.EngineOptions{
			Rule: mk(), Eps: 0.3, UseDualStop: true, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := core.IterativePathMin(inst, core.EngineOptions{
			Rule: mk(), Eps: 0.3, UseDualStop: true, Workers: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		allocationsIdentical(t, "shared-key parallel", serial, parallel)
	}
}

// fullRecomputeRule is the pre-refactor rule implementation: a fresh
// Dijkstra tree per active group, every iteration, no caching. It is
// the reference the cached ExpRule/HopRule must match exactly.
type fullRecomputeRule struct {
	name   string
	weight func(st *core.State, demand float64) pathfind.WeightFunc
	trees  map[core.Group]*pathfind.Tree
}

func (r *fullRecomputeRule) Name() string { return r.name }

func (r *fullRecomputeRule) Prepare(st *core.State) {
	r.trees = make(map[core.Group]*pathfind.Tree, len(st.ActiveGroups))
	for _, g := range st.ActiveGroups {
		r.trees[g] = pathfind.Dijkstra(st.Inst.G, g.Source, r.weight(st, g.Demand))
	}
}

func (r *fullRecomputeRule) BestLen(st *core.State, g core.Group, target int) ([]int, float64, bool) {
	tr := r.trees[g]
	if math.IsInf(tr.Dist[target], 1) {
		return nil, 0, false
	}
	p, _ := tr.PathTo(target)
	return p, tr.Dist[target], true
}

// TestIncrementalMatchesFullRecomputeRules: the tree-cached reasonable
// rules produce allocations identical to per-iteration full
// recomputation, in both engine configurations (residual-feasible and
// dual-stop).
func TestIncrementalMatchesFullRecomputeRules(t *testing.T) {
	inst, err := workload.RandomUFP(workload.NewRNG(77), workload.UFPConfig{
		Vertices: 20, Edges: 80, Requests: 120, Directed: true,
		B: 25, CapSpread: 0.4,
		DemandMin: 0.3, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		cached core.Rule
		full   *fullRecomputeRule
	}{
		{&core.ExpRule{}, &fullRecomputeRule{name: "exp-full",
			weight: func(st *core.State, d float64) pathfind.WeightFunc { return st.ExpWeight(d) }}},
		{&core.HopRule{}, &fullRecomputeRule{name: "hops-full",
			weight: func(st *core.State, d float64) pathfind.WeightFunc { return st.UnitWeight(d) }}},
	}
	for _, feasibleOnly := range []bool{true, false} {
		for _, tc := range cases {
			opts := core.EngineOptions{
				Rule: tc.full, Eps: 0.3,
				FeasibleOnly: feasibleOnly, UseDualStop: !feasibleOnly,
			}
			want, err := core.IterativePathMin(inst, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Rule = tc.cached
			got, err := core.IterativePathMin(inst, opts)
			if err != nil {
				t.Fatal(err)
			}
			allocationsIdentical(t, tc.full.name, want, got)
			if err := got.CheckFeasible(inst, false); err != nil {
				t.Fatal(err)
			}
		}
	}
}
