package core_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/workload"
)

// streamThrough replays an instance's requests through a fresh
// AdmissionState, building the Allocation the way OnlineAdmission does.
func streamThrough(t *testing.T, inst *core.Instance, eps float64, opt *core.Options) *core.Allocation {
	t.Helper()
	st, err := core.NewAdmissionState(inst.G, eps, opt)
	if err != nil {
		t.Fatalf("NewAdmissionState: %v", err)
	}
	alloc := &core.Allocation{DualBound: math.Inf(1)}
	for i, r := range inst.Requests {
		d, err := st.Admit(r)
		if err != nil {
			t.Fatalf("Admit(%d): %v", i, err)
		}
		if d.Admitted {
			alloc.Routed = append(alloc.Routed, core.Routed{Request: i, Path: d.Path})
			alloc.Value += r.Value
			alloc.Iterations++
		}
	}
	alloc.Stop = core.StopAllSatisfied
	if len(alloc.Routed) < len(inst.Requests) {
		alloc.Stop = core.StopNoRoutablePath
	}
	return alloc
}

// Streamed admits must be identical — paths, order, diagnostics — to
// the batch spelling, with and without the incremental cache.
func TestOnlineStreamMatchesBatch(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.Requests = 60
	for seed := uint64(1); seed <= 5; seed++ {
		inst := randomInstance(t, seed+300, cfg)
		batch := mustSolve(t, func() (*core.Allocation, error) {
			return core.OnlineAdmission(inst, 0.3, nil)
		})
		checkFeasible(t, inst, batch, false)
		streamed := streamThrough(t, inst, 0.3, nil)
		if !reflect.DeepEqual(batch, streamed) {
			t.Fatalf("seed %d: streamed admits differ from batch OnlineAdmission", seed)
		}
		noInc := mustSolve(t, func() (*core.Allocation, error) {
			return core.OnlineAdmission(inst, 0.3, &core.Options{NoIncremental: true})
		})
		if !reflect.DeepEqual(batch, noInc) {
			t.Fatalf("seed %d: NoIncremental changes the online allocation", seed)
		}
	}
}

// Until an edge saturates, the online rule and the sequential baseline
// see identical weights (the baseline's residual filter never fires on
// an uncontended instance), so they must agree request for request.
func TestOnlineMatchesSequentialUncontended(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	cfg.B = 500 // capacity far above total demand: no edge ever saturates
	cfg.ValueMin, cfg.ValueMax = 0.1, 3.0
	for seed := uint64(1); seed <= 3; seed++ {
		inst := randomInstance(t, seed+40, cfg)
		online := mustSolve(t, func() (*core.Allocation, error) {
			return core.OnlineAdmission(inst, 0.2, nil)
		})
		seq := mustSolve(t, func() (*core.Allocation, error) {
			return core.SequentialPrimalDual(inst, 0.2, nil)
		})
		if !equalInts(requestSeq(online), requestSeq(seq)) {
			t.Fatalf("seed %d: online %v != sequential %v on uncontended instance",
				seed, requestSeq(online), requestSeq(seq))
		}
	}
}

func TestAdmitRejectReasons(t *testing.T) {
	// Two components: 0->1 has an edge, 2<->3 has one (so B covers it),
	// but 0->2 has no path.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	st, err := core.NewAdmissionState(g, 0.5, nil)
	if err != nil {
		t.Fatalf("NewAdmissionState: %v", err)
	}

	if d, err := st.Admit(core.Request{Source: 0, Target: 2, Demand: 0.5, Value: 10}); err != nil || d.Admitted || d.Reason != core.RejectNoPath {
		t.Fatalf("disconnected admit = %+v, %v; want no-path reject", d, err)
	}
	// Initial price on 0->1 is y = 1/c = 1, so demand 0.5 quotes 0.5.
	if d, err := st.Admit(core.Request{Source: 0, Target: 1, Demand: 0.5, Value: 0.4}); err != nil || d.Admitted || d.Reason != core.RejectPrice {
		t.Fatalf("undervalued admit = %+v, %v; want price reject", d, err)
	}
	d1, err := st.Admit(core.Request{Source: 0, Target: 1, Demand: 1, Value: 100})
	if err != nil || !d1.Admitted || d1.ID == 0 {
		t.Fatalf("first admit = %+v, %v; want admitted with id", d1, err)
	}
	if d1.Price != 1 {
		t.Fatalf("first admit price = %g, want 1 (initial y = 1/c)", d1.Price)
	}
	// The edge is now full: demand 1 cannot fit regardless of value.
	if d, err := st.Admit(core.Request{Source: 0, Target: 1, Demand: 1, Value: 1e6}); err != nil || d.Admitted || d.Reason != core.RejectCapacity {
		t.Fatalf("overfull admit = %+v, %v; want capacity reject", d, err)
	}
	if st.NumAdmitted() != 1 || st.Value() != 100 {
		t.Fatalf("ledger = %d entries value %g, want 1 entry value 100", st.NumAdmitted(), st.Value())
	}

	// Release returns the capacity; a new admit fits again (at the
	// raised price, which is never reversed).
	rel, err := st.Release(d1.ID)
	if err != nil || rel.ID != d1.ID {
		t.Fatalf("Release = %+v, %v", rel, err)
	}
	if _, err := st.Release(d1.ID); err == nil {
		t.Fatal("double Release succeeded")
	}
	d2, err := st.Admit(core.Request{Source: 0, Target: 1, Demand: 1, Value: 1e6})
	if err != nil || !d2.Admitted {
		t.Fatalf("post-release admit = %+v, %v; want admitted", d2, err)
	}
	if d2.Price <= d1.Price {
		t.Fatalf("post-release price %g <= original %g; release must not lower prices", d2.Price, d1.Price)
	}
	if d2.ID == d1.ID {
		t.Fatalf("admission ids reused: %d", d2.ID)
	}
}

func TestQuoteDoesNotMutate(t *testing.T) {
	inst := diamondInstance(2, [2]float64{1, 50}, [2]float64{1, 50})
	st, err := core.NewAdmissionState(inst.G, 0.5, nil)
	if err != nil {
		t.Fatalf("NewAdmissionState: %v", err)
	}
	q1, err := st.Quote(inst.Requests[0])
	if err != nil || !q1.Admitted {
		t.Fatalf("Quote = %+v, %v; want would-admit", q1, err)
	}
	q2, err := st.Quote(inst.Requests[0])
	if err != nil || q2.Price != q1.Price {
		t.Fatalf("repeated Quote price %g != %g (quote mutated state?)", q2.Price, q1.Price)
	}
	a, err := st.Admit(inst.Requests[0])
	if err != nil || !a.Admitted || a.Price != q1.Price {
		t.Fatalf("Admit after Quote = %+v, %v; want admitted at quoted price %g", a, err, q1.Price)
	}
	if q3, _ := st.Quote(inst.Requests[1]); q3.Price <= q1.Price && len(q3.Path) == len(a.Path) && q3.Path[0] == a.Path[0] {
		// Same path quoted again must now be pricier; a disjoint diamond
		// path at the base price is also fine.
		t.Fatalf("post-admit quote on same path did not rise: %+v vs %+v", q3, a)
	}
	if st.NumAdmitted() != 1 {
		t.Fatalf("NumAdmitted = %d, want 1", st.NumAdmitted())
	}
}

func TestOnlineLedgerAndStats(t *testing.T) {
	inst := diamondInstance(4, [2]float64{1, 50}, [2]float64{1, 50}, [2]float64{1, 50})
	st, err := core.NewAdmissionState(inst.G, 0.25, nil)
	if err != nil {
		t.Fatalf("NewAdmissionState: %v", err)
	}
	var ids []int64
	for _, r := range inst.Requests {
		d, err := st.Admit(r)
		if err != nil || !d.Admitted {
			t.Fatalf("Admit = %+v, %v", d, err)
		}
		ids = append(ids, d.ID)
	}
	led := st.Ledger()
	if len(led) != 3 {
		t.Fatalf("Ledger has %d entries, want 3", len(led))
	}
	for i, a := range led {
		if a.ID != ids[i] {
			t.Fatalf("Ledger[%d].ID = %d, want %d (ascending id order)", i, a.ID, ids[i])
		}
	}
	if _, err := st.Release(ids[1]); err != nil {
		t.Fatalf("Release: %v", err)
	}
	led = st.Ledger()
	if len(led) != 2 || led[0].ID != ids[0] || led[1].ID != ids[2] {
		t.Fatalf("Ledger after release = %v, want ids %d,%d", led, ids[0], ids[2])
	}
	if ds := st.DualSum(); !(ds > 4) || math.IsInf(ds, 1) {
		// 4 edges at c·y = 1 initially; admissions only grow it.
		t.Fatalf("DualSum = %g, want finite > 4", ds)
	}
	rec, reu := st.PathStats()
	if rec+reu == 0 {
		t.Fatal("PathStats counted no queries")
	}
}

func TestOnlineValidation(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 2)
	if _, err := core.NewAdmissionState(nil, 0.5, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := core.NewAdmissionState(g, 0, nil); err == nil {
		t.Fatal("eps = 0 accepted")
	}
	small := graph.New(2)
	small.AddEdge(0, 1, 0.5)
	if _, err := core.NewAdmissionState(small, 0.5, nil); err == nil {
		t.Fatal("B < 1 accepted")
	}
	st, err := core.NewAdmissionState(g, 0.5, nil)
	if err != nil {
		t.Fatalf("NewAdmissionState: %v", err)
	}
	bad := []core.Request{
		{Source: 0, Target: 5, Demand: 0.5, Value: 1},  // target out of range
		{Source: 1, Target: 1, Demand: 0.5, Value: 1},  // source == target
		{Source: 0, Target: 1, Demand: 1.5, Value: 1},  // demand > 1
		{Source: 0, Target: 1, Demand: 0.5, Value: -1}, // negative value
	}
	for i, r := range bad {
		if _, err := st.Admit(r); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, r)
		}
	}
	if st.NumAdmitted() != 0 {
		t.Fatalf("invalid requests left %d ledger entries", st.NumAdmitted())
	}
}

func TestOnlineAdmissionCtxCancel(t *testing.T) {
	cfg := workload.DefaultUFPConfig()
	inst := randomInstance(t, 11, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.OnlineAdmissionCtx(ctx, inst, 0.3, nil); err == nil {
		t.Fatal("cancelled context did not abort OnlineAdmissionCtx")
	}
}
