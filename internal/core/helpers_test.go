package core_test

import (
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/workload"
)

// singleEdge builds a one-edge instance 0 -> 1 with the given capacity
// and the given (demand, value) requests all wanting that edge.
func singleEdge(capacity float64, dv ...[2]float64) *core.Instance {
	g := graph.New(2)
	g.AddEdge(0, 1, capacity)
	inst := &core.Instance{G: g}
	for _, p := range dv {
		inst.Requests = append(inst.Requests, core.Request{Source: 0, Target: 1, Demand: p[0], Value: p[1]})
	}
	return inst
}

// diamondInstance builds the 4-vertex diamond (two disjoint 0->3 paths)
// with uniform capacity and the given 0->3 requests.
func diamondInstance(capacity float64, dv ...[2]float64) *core.Instance {
	g := graph.New(4)
	g.AddEdge(0, 1, capacity) // e0
	g.AddEdge(1, 3, capacity) // e1
	g.AddEdge(0, 2, capacity) // e2
	g.AddEdge(2, 3, capacity) // e3
	inst := &core.Instance{G: g}
	for _, p := range dv {
		inst.Requests = append(inst.Requests, core.Request{Source: 0, Target: 3, Demand: p[0], Value: p[1]})
	}
	return inst
}

// randomInstance draws a contended random instance: total demand well
// above single-edge capacity so selection is non-trivial.
func randomInstance(t *testing.T, seed uint64, cfg workload.UFPConfig) *core.Instance {
	t.Helper()
	inst, err := workload.RandomUFP(workload.NewRNG(seed), cfg)
	if err != nil {
		t.Fatalf("RandomUFP: %v", err)
	}
	return inst
}

func mustSolve(t *testing.T, f func() (*core.Allocation, error)) *core.Allocation {
	t.Helper()
	a, err := f()
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return a
}

func checkFeasible(t *testing.T, inst *core.Instance, a *core.Allocation, repeat bool) {
	t.Helper()
	if err := a.CheckFeasible(inst, repeat); err != nil {
		t.Fatalf("infeasible allocation: %v", err)
	}
}

// requestSeq extracts the selected request IDs in selection order.
func requestSeq(a *core.Allocation) []int {
	out := make([]int, len(a.Routed))
	for i, p := range a.Routed {
		out[i] = p.Request
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
