package scenario_test

import (
	"reflect"
	"testing"

	"truthfulufp/internal/scenario"
)

// TestAuxKnobShapesTopology: the secondary size knob changes exactly
// the documented structure — metroring: aux access nodes per ring,
// startrees: aux vertices per tree — and a zero knob reproduces the
// historical defaults byte for byte.
func TestAuxKnobShapesTopology(t *testing.T) {
	cases := []struct {
		topo     string
		size     int
		aux      int
		vertices int
	}{
		{"metroring", 6, 3, 6 + 6*3},
		{"metroring", 4, 9, 4 + 4*9},
		{"metroring", 6, 0, 6 + 6*4}, // default 4 access nodes per ring
		{"startrees", 5, 4, 1 + 5*4},
		{"startrees", 3, 11, 1 + 3*11},
		{"startrees", 5, 0, 1 + 5*6}, // default 6 vertices per tree
	}
	for _, tc := range cases {
		cfg := scenario.Config{Topology: tc.topo, Size: tc.size, Aux: tc.aux, Seed: 17}
		inst, err := scenario.Generate(cfg)
		if err != nil {
			t.Fatalf("%s size=%d aux=%d: %v", tc.topo, tc.size, tc.aux, err)
		}
		if got := inst.G.NumVertices(); got != tc.vertices {
			t.Fatalf("%s size=%d aux=%d: %d vertices, want %d", tc.topo, tc.size, tc.aux, got, tc.vertices)
		}
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAuxKnobDefaultIdentity: aux=0 and the written-out default produce
// identical instances, so existing corpora keep their hashes.
func TestAuxKnobDefaultIdentity(t *testing.T) {
	for topo, def := range map[string]int{"metroring": 4, "startrees": 6} {
		zero, err := scenario.Generate(scenario.Config{Topology: topo, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := scenario.Generate(scenario.Config{Topology: topo, Seed: 5, Aux: def})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(zero.Requests, explicit.Requests) ||
			!reflect.DeepEqual(zero.G.Edges(), explicit.G.Edges()) {
			t.Fatalf("%s: aux=0 and aux=%d (the default) differ", topo, def)
		}
	}
}

// TestAuxKnobDeterminism: same (topology, aux, seed) ⇒ identical
// instances; a different aux must change the structure.
func TestAuxKnobDeterminism(t *testing.T) {
	for _, topo := range []string{"metroring", "startrees"} {
		cfg := scenario.Config{Topology: topo, Aux: 7, Seed: 21}
		a, err := scenario.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scenario.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Requests, b.Requests) || !reflect.DeepEqual(a.G.Edges(), b.G.Edges()) {
			t.Fatalf("%s: same aux and seed produced different instances", topo)
		}
		cfg.Aux = 8
		c, err := scenario.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c.G.NumVertices() == a.G.NumVertices() {
			t.Fatalf("%s: aux 7 and 8 produced the same vertex count", topo)
		}
	}
}

// TestAuxKnobRejectedElsewhere: families without a secondary knob fail
// loudly instead of silently ignoring it.
func TestAuxKnobRejectedElsewhere(t *testing.T) {
	for _, topo := range []string{"fattree", "waxman", "scalefree", "smallworld"} {
		if _, err := scenario.Generate(scenario.Config{Topology: topo, Aux: 3, Seed: 1}); err == nil {
			t.Fatalf("%s accepted an aux knob it does not implement", topo)
		}
	}
}
