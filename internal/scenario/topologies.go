package scenario

import (
	"fmt"
	"math"
	"math/rand/v2"

	"truthfulufp/internal/graph"
)

// The built-in topology catalog. Each family is registered under a short
// name; capacities are relative weights that the capacity regime rescales
// so min capacity hits the configured B.
func init() {
	RegisterTopology(Topology{
		Name:        "fattree",
		Description: "k-ary fat-tree/Clos datacenter fabric; size = pods k (even), hosts = edge switches, core links twice as fat as edge links",
		DefaultSize: 4,
		Build:       buildFatTree,
	})
	RegisterTopology(Topology{
		Name:        "waxman",
		Description: "Waxman geographic ISP backbone: nodes in the unit square, link probability α·exp(-d/βL) over a random spanning tree; size = nodes",
		DefaultSize: 24,
		Build:       buildWaxman,
	})
	RegisterTopology(Topology{
		Name:        "scalefree",
		Description: "Barabási–Albert preferential attachment; size = nodes, hub links fattened by sqrt(deg·deg), traffic mass follows degree",
		DefaultSize: 30,
		Build:       buildScaleFree,
	})
	RegisterTopology(Topology{
		Name:        "smallworld",
		Description: "Watts–Strogatz small world: ring lattice (4 neighbors) with 10% rewiring; size = nodes",
		DefaultSize: 24,
		Build:       buildSmallWorld,
	})
	RegisterTopology(Topology{
		Name:        "metroring",
		Description: "metro ring-of-rings: a fat core ring whose anchors each close a thin access ring; size = metro rings, aux = access nodes per ring (default 4)",
		DefaultSize: 6,
		Build:       buildMetroRing,
	})
	RegisterTopology(Topology{
		Name:        "startrees",
		Description: "single-sink star-of-trees (Shepherd–Vetta single-sink structure): random trees feeding one sink, edge capacity = subtree size; size = trees",
		DefaultSize: 5,
		Build:       buildStarTrees,
	})
}

// noAux rejects a secondary size knob on families that have none, so a
// corpus config cannot silently ignore a shaping parameter.
func noAux(family string, shape Shape) error {
	if shape.Aux != 0 {
		return fmt.Errorf("%s has no secondary size knob (aux=%d)", family, shape.Aux)
	}
	return nil
}

// uniformWeights returns an all-ones attraction mass.
func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// lognormalWeights draws per-host "populations" with a heavy right tail,
// the classic shape behind gravity traffic matrices.
func lognormalWeights(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Exp(0.5 * rng.NormFloat64())
	}
	return w
}

// buildFatTree builds the canonical k-ary fat-tree: (k/2)² core switches,
// k pods of k/2 aggregation and k/2 edge switches. Edge switches stand in
// for their server racks and are the hosts. Edge→aggregation links have
// relative capacity 1 and aggregation→core links 2 (a 2:1 step-up, so
// the core is fatter but contended under all-to-all gravity traffic).
func buildFatTree(rng *rand.Rand, shape Shape) (*Built, error) {
	if err := noAux("fattree", shape); err != nil {
		return nil, err
	}
	k := shape.Size
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fat-tree size (pods k) must be even and >= 2, got %d", k)
	}
	half := k / 2
	numCore := half * half
	g := graph.NewUndirected(numCore + k*k)
	core := func(i, j int) int { return i*half + j }
	agg := func(pod, a int) int { return numCore + pod*k + a }
	edge := func(pod, e int) int { return numCore + pod*k + half + e }
	var hosts []int
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				g.AddEdge(agg(pod, a), core(a, j), 2)
			}
			for e := 0; e < half; e++ {
				g.AddEdge(agg(pod, a), edge(pod, e), 1)
			}
		}
		for e := 0; e < half; e++ {
			hosts = append(hosts, edge(pod, e))
		}
	}
	return &Built{G: g, Hosts: hosts, Weight: uniformWeights(len(hosts)), Sink: -1}, nil
}

// buildWaxman scatters n nodes uniformly in the unit square, guarantees
// connectivity with a random spanning tree, then adds each remaining
// pair (u, v) with the Waxman probability α·exp(-d(u,v)/(β·L)), L = √2.
func buildWaxman(rng *rand.Rand, shape Shape) (*Built, error) {
	if err := noAux("waxman", shape); err != nil {
		return nil, err
	}
	n := shape.Size
	if n < 2 {
		return nil, fmt.Errorf("waxman needs >= 2 nodes, got %d", n)
	}
	const alpha, beta = 0.6, 0.25
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	g := graph.NewUndirected(n)
	have := make(map[[2]int]bool)
	addEdge := func(u, v int, c float64) {
		if u > v {
			u, v = v, u
		}
		if have[[2]int{u, v}] {
			return
		}
		have[[2]int{u, v}] = true
		g.AddEdge(u, v, c)
	}
	// Random spanning tree first so every backbone is connected.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(perm[rng.IntN(i)], perm[i], 2)
	}
	scale := beta * math.Sqrt2
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
			if rng.Float64() < alpha*math.Exp(-d/scale) {
				addEdge(u, v, 1)
			}
		}
	}
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	return &Built{G: g, Hosts: hosts, Weight: lognormalWeights(rng, n), Sink: -1}, nil
}

// buildScaleFree grows a Barabási–Albert graph: a seed triangle, then
// each new node attaches to 2 distinct existing nodes chosen
// proportionally to degree. Link capacity is sqrt(deg(u)·deg(v)), so
// hub–hub links are fat, and traffic mass follows degree.
func buildScaleFree(rng *rand.Rand, shape Shape) (*Built, error) {
	if err := noAux("scalefree", shape); err != nil {
		return nil, err
	}
	n := shape.Size
	if n < 3 {
		return nil, fmt.Errorf("scalefree needs >= 3 nodes, got %d", n)
	}
	type pair struct{ u, v int }
	var links []pair
	// ends lists every edge endpoint, so a uniform draw is
	// degree-proportional.
	var ends []int
	addLink := func(u, v int) {
		links = append(links, pair{u, v})
		ends = append(ends, u, v)
	}
	addLink(0, 1)
	addLink(1, 2)
	addLink(0, 2)
	for v := 3; v < n; v++ {
		first := ends[rng.IntN(len(ends))]
		second := first
		for second == first {
			second = ends[rng.IntN(len(ends))]
		}
		addLink(v, first)
		addLink(v, second)
	}
	deg := make([]float64, n)
	for _, l := range links {
		deg[l.u]++
		deg[l.v]++
	}
	g := graph.NewUndirected(n)
	for _, l := range links {
		g.AddEdge(l.u, l.v, math.Sqrt(deg[l.u]*deg[l.v]))
	}
	hosts := make([]int, n)
	w := make([]float64, n)
	for i := range hosts {
		hosts[i] = i
		w[i] = deg[i]
	}
	return &Built{G: g, Hosts: hosts, Weight: w, Sink: -1}, nil
}

// buildSmallWorld builds a Watts–Strogatz graph: a ring lattice where
// each node links to its 2 nearest neighbors per side, then each link's
// far endpoint is rewired with probability 0.1.
func buildSmallWorld(rng *rand.Rand, shape Shape) (*Built, error) {
	if err := noAux("smallworld", shape); err != nil {
		return nil, err
	}
	n := shape.Size
	if n < 5 {
		return nil, fmt.Errorf("smallworld needs >= 5 nodes, got %d", n)
	}
	const rewire = 0.1
	have := make(map[[2]int]bool)
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	type pair struct{ u, v int }
	var links []pair
	for i := 0; i < n; i++ {
		for _, off := range []int{1, 2} {
			u, v := i, (i+off)%n
			if rng.Float64() < rewire {
				// Rewire the far endpoint to a uniform non-neighbor.
				for tries := 0; tries < 2*n; tries++ {
					w := rng.IntN(n)
					if w != u && !have[key(u, w)] {
						v = w
						break
					}
				}
			}
			if have[key(u, v)] {
				continue
			}
			have[key(u, v)] = true
			links = append(links, pair{u, v})
		}
	}
	g := graph.NewUndirected(n)
	for _, l := range links {
		g.AddEdge(l.u, l.v, 1)
	}
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	return &Built{G: g, Hosts: hosts, Weight: lognormalWeights(rng, n), Sink: -1}, nil
}

// metroSize is the default number of access nodes per metro ring (the
// anchor closes the ring, so each ring has metroSize+1 vertices on it);
// Shape.Aux overrides it.
const metroSize = 4

// buildMetroRing builds a telecom metro topology: r anchors on a fat
// core ring (relative capacity 4), each closing a thin access ring of
// shape.Aux (default metroSize) nodes of capacity 1. Hosts are the
// access nodes, so every flow crosses its metro ring and usually the
// core.
func buildMetroRing(rng *rand.Rand, shape Shape) (*Built, error) {
	r := shape.Size
	if r < 2 {
		return nil, fmt.Errorf("metroring needs >= 2 rings, got %d", r)
	}
	perRing := shape.Aux
	if perRing == 0 {
		perRing = metroSize
	}
	if perRing < 1 {
		return nil, fmt.Errorf("metroring needs >= 1 access node per ring, got aux=%d", perRing)
	}
	g := graph.NewUndirected(r + r*perRing)
	anchor := func(i int) int { return i }
	access := func(i, j int) int { return r + i*perRing + j }
	for i := 0; i < r; i++ {
		g.AddEdge(anchor(i), anchor((i+1)%r), 4)
	}
	var hosts []int
	for i := 0; i < r; i++ {
		prev := anchor(i)
		for j := 0; j < perRing; j++ {
			g.AddEdge(prev, access(i, j), 1)
			prev = access(i, j)
			hosts = append(hosts, prev)
		}
		g.AddEdge(prev, anchor(i), 1) // close the metro ring
	}
	return &Built{G: g, Hosts: hosts, Weight: uniformWeights(len(hosts)), Sink: -1}, nil
}

// starTreeNodes is the default number of vertices per tree in
// startrees; Shape.Aux overrides it (deeper/larger trees sharpen the
// single-sink aggregation pressure).
const starTreeNodes = 6

// buildStarTrees builds the single-sink family: t random in-trees of
// shape.Aux (default starTreeNodes) vertices whose roots feed vertex 0
// (the sink) over directed edges. The edge from v toward the sink
// carries v's whole subtree, so its relative capacity is the subtree
// size — uniformly tight aggregation, the hard single-sink shape of
// Shepherd–Vetta. Every request targets the sink along its unique path.
func buildStarTrees(rng *rand.Rand, shape Shape) (*Built, error) {
	t := shape.Size
	if t < 1 {
		return nil, fmt.Errorf("startrees needs >= 1 tree, got %d", t)
	}
	perTree := shape.Aux
	if perTree == 0 {
		perTree = starTreeNodes
	}
	if perTree < 1 {
		return nil, fmt.Errorf("startrees needs >= 1 vertex per tree, got aux=%d", perTree)
	}
	g := graph.New(1 + t*perTree)
	var hosts []int
	for tree := 0; tree < t; tree++ {
		base := 1 + tree*perTree
		parent := make([]int, perTree)
		parent[0] = 0 // root attaches to the sink
		for i := 1; i < perTree; i++ {
			parent[i] = base + rng.IntN(i)
		}
		subtree := make([]int, perTree)
		for i := perTree - 1; i >= 0; i-- {
			subtree[i]++
			if i > 0 {
				subtree[parent[i]-base] += subtree[i]
			}
		}
		for i := 0; i < perTree; i++ {
			g.AddEdge(base+i, parent[i], float64(subtree[i]))
			hosts = append(hosts, base+i)
		}
	}
	return &Built{G: g, Hosts: hosts, Weight: uniformWeights(len(hosts)), Sink: 0}, nil
}
