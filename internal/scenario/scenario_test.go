package scenario_test

import (
	"math"
	"reflect"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/scenario"
)

// TestCatalogBreadth pins the acceptance floor: at least 6 topologies
// and 3 demand models registered.
func TestCatalogBreadth(t *testing.T) {
	if n := len(scenario.Topologies()); n < 6 {
		t.Fatalf("catalog has %d topologies, want >= 6", n)
	}
	if n := len(scenario.Demands()); n < 3 {
		t.Fatalf("catalog has %d demand models, want >= 3", n)
	}
}

// TestEveryPairGeneratesValidInstances crosses the full catalog: every
// topology × demand model must produce a valid normalized instance whose
// minimum capacity matches the configured regime, and Bounded-UFP must
// route something on it.
func TestEveryPairGeneratesValidInstances(t *testing.T) {
	for _, topo := range scenario.Topologies() {
		for _, dm := range scenario.Demands() {
			t.Run(topo.Name+"/"+dm.Name, func(t *testing.T) {
				cfg := scenario.Config{Topology: topo.Name, Demand: dm.Name, Seed: 11}
				inst, err := scenario.Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := inst.Validate(); err != nil {
					t.Fatal(err)
				}
				want, err := scenario.TargetB(cfg, inst.G.NumEdges())
				if err != nil {
					t.Fatal(err)
				}
				if got := inst.B(); math.Abs(got-want) > 1e-9*want {
					t.Fatalf("B = %g, want regime target %g", got, want)
				}
				if len(inst.Requests) == 0 {
					t.Fatal("no requests generated")
				}
				alloc, err := core.SolveUFP(inst, 0.5, &core.Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if err := alloc.CheckFeasible(inst, false); err != nil {
					t.Fatal(err)
				}
				if len(alloc.Routed) == 0 {
					t.Fatal("Bounded-UFP routed nothing on a large-capacity scenario")
				}
			})
		}
	}
}

// TestDeterminism: same (topology, demand, params, seed) ⇒ structurally
// identical instances; a different seed must change something.
func TestDeterminism(t *testing.T) {
	for _, topo := range scenario.Topologies() {
		cfg := scenario.Config{Topology: topo.Name, Demand: "gravity", Seed: 7}
		a, err := scenario.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scenario.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Requests, b.Requests) || !reflect.DeepEqual(a.G.Edges(), b.G.Edges()) {
			t.Fatalf("%s: same seed produced different instances", topo.Name)
		}
		cfg.Seed = 8
		c, err := scenario.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Requests, c.Requests) && reflect.DeepEqual(a.G.Edges(), c.G.Edges()) {
			t.Fatalf("%s: seeds 7 and 8 produced identical instances", topo.Name)
		}
	}
}

// TestSingleSink: the startrees family is single-sink — every request
// targets the sink and is routable (tree paths are unique).
func TestSingleSink(t *testing.T) {
	for _, dm := range scenario.Demands() {
		inst, err := scenario.Generate(scenario.Config{Topology: "startrees", Demand: dm.Name, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", dm.Name, err)
		}
		for i, r := range inst.Requests {
			if r.Target != 0 {
				t.Fatalf("%s: request %d targets %d, want sink 0", dm.Name, i, r.Target)
			}
		}
	}
}

// TestCapacityRegimes: the fixed regime pins B exactly, and a sub-log
// BFactor lands B strictly below ln(m)/ε² (the knob that violates the
// paper's assumption on purpose).
func TestCapacityRegimes(t *testing.T) {
	fixed := scenario.Config{Topology: "fattree", Seed: 1, BMode: scenario.BModeFixed, BValue: 42}
	inst, err := scenario.Generate(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if b := inst.B(); math.Abs(b-42) > 1e-9*42 {
		t.Fatalf("fixed regime B = %g, want 42", b)
	}

	sub := scenario.Config{Topology: "fattree", Seed: 1, BFactor: 0.3, Eps: 0.25}
	inst, err = scenario.Generate(sub)
	if err != nil {
		t.Fatal(err)
	}
	logBound := math.Log(float64(inst.G.NumEdges())) / (0.25 * 0.25)
	if b := inst.B(); b >= logBound {
		t.Fatalf("sub-log regime B = %g, want < ln(m)/ε² = %g", b, logBound)
	}
	if b := inst.B(); b < 1 {
		t.Fatalf("regime floor violated: B = %g < 1", b)
	}
}

// TestGenerateAuction: the path-bundle reduction yields a valid auction
// with multiplicities equal to edge capacities and one bid per routable
// request.
func TestGenerateAuction(t *testing.T) {
	cfg := scenario.Config{Topology: "metroring", Demand: "zipf", Seed: 5}
	ufp, err := scenario.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := scenario.GenerateAuction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := auc.Validate(); err != nil {
		t.Fatal(err)
	}
	if auc.NumItems() != ufp.G.NumEdges() {
		t.Fatalf("items %d != edges %d", auc.NumItems(), ufp.G.NumEdges())
	}
	if len(auc.Requests) == 0 || len(auc.Requests) > len(ufp.Requests) {
		t.Fatalf("auction has %d requests for %d UFP requests", len(auc.Requests), len(ufp.Requests))
	}
	if auc.B() != ufp.B() {
		t.Fatalf("auction B %g != UFP B %g", auc.B(), ufp.B())
	}
}

// TestUnknownNamesError: lookups fail loudly with the catalog inline.
func TestUnknownNamesError(t *testing.T) {
	if _, err := scenario.Generate(scenario.Config{Topology: "nope", Seed: 1}); err == nil {
		t.Fatal("unknown topology did not error")
	}
	if _, err := scenario.Generate(scenario.Config{Topology: "fattree", Demand: "nope", Seed: 1}); err == nil {
		t.Fatal("unknown demand model did not error")
	}
	if _, err := scenario.Generate(scenario.Config{Topology: "fattree", Seed: 1, BMode: "nope"}); err == nil {
		t.Fatal("unknown capacity regime did not error")
	}
	if _, err := scenario.Generate(scenario.Config{Topology: "fattree", Size: 3, Seed: 1}); err == nil {
		t.Fatal("odd fat-tree size did not error")
	}
}
