// Package scenario is the catalog of named, seeded, parameterized
// instance generators behind cmd/ufpgen: realistic topology families
// (datacenter fat-trees, geographic ISP backbones, scale-free and
// small-world graphs, metro ring-of-rings, single-sink star-of-trees)
// crossed with traffic demand models (gravity, hotspot, Zipf-valued,
// hose-bounded) and a capacity regime that places the instance inside or
// outside the paper's B >= ln(m)/ε² large-capacity assumption.
//
// Every scenario is a pure function of (topology, demand, params, seed):
// generating the same Config twice yields structurally identical
// instances, so corpora are reproducible and cache keys (see
// internal/engine) are stable across runs. All randomness flows through
// one seeded PCG generator consumed in a fixed order.
//
// The package produces both problem shapes of the paper: Generate builds
// a core.Instance (UFP), and GenerateAuction derives the corresponding
// multi-unit combinatorial auction by the paper's own reduction — each
// request's bundle is the edge set of a fewest-hops path, items are
// edges, multiplicities are capacities.
package scenario

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/workload"
)

// Built is a topology generator's output: the capacitated graph plus the
// structural metadata demand models consume. Capacities are relative
// (the capacity regime rescales them; see Config.BMode).
type Built struct {
	G *graph.Graph
	// Hosts are the vertices demand endpoints are drawn from (traffic
	// sources and, unless single-sink, targets).
	Hosts []int
	// Weight is a per-host attraction mass (a "population"), parallel to
	// Hosts; the gravity model draws endpoints proportionally to it.
	Weight []float64
	// Sink is the common target vertex of a single-sink topology, or -1.
	Sink int
}

// Shape is a topology's size parameters: the primary size knob plus an
// optional per-family secondary knob.
type Shape struct {
	// Size is the family's primary knob (pods, nodes, rings, trees).
	Size int
	// Aux is the family's secondary knob: access nodes per metro ring
	// (metroring), vertices per tree (startrees). 0 selects the family
	// default; families without a secondary knob reject non-zero values.
	Aux int
}

// Topology is a named graph-family generator.
type Topology struct {
	Name        string
	Description string
	// DefaultSize is the size knob used when Config.Size is 0. Its meaning
	// is per-family (pods, nodes, rings, trees); see Description.
	DefaultSize int
	// Build generates the family member of the given shape. It must
	// consume rng deterministically: same (shape, rng state) ⇒ identical
	// output.
	Build func(rng *rand.Rand, shape Shape) (*Built, error)
}

// DemandModel is a named request-set generator. Generate must return
// requests with demands in (0,1] and positive finite values, honoring
// b.Sink when set, consuming rng deterministically.
type DemandModel struct {
	Name        string
	Description string
	Generate    func(rng *rand.Rand, b *Built, n int) []core.Request
}

// Capacity regime modes (Config.BMode).
const (
	// BModeLog sets B = BFactor · ln(m)/Eps²: BFactor >= 1 places the
	// instance inside the paper's large-capacity assumption, BFactor < 1
	// deliberately violates it so experiments can show the degradation.
	BModeLog = "log"
	// BModeFixed sets B = BValue directly.
	BModeFixed = "fixed"
)

// Config names and parameterizes one scenario. The zero value of every
// optional field selects a documented default, so {Topology: "fattree",
// Seed: 7} is a complete scenario.
type Config struct {
	// Topology names a registered topology (required).
	Topology string `json:"topology"`
	// Demand names a registered demand model (default "gravity").
	Demand string `json:"demand,omitempty"`
	// Size is the topology's size knob (0 = the family default).
	Size int `json:"size,omitempty"`
	// Aux is the topology's secondary size knob — metroring: access
	// nodes per ring; startrees: vertices per tree (0 = the family
	// default; other families reject non-zero values).
	Aux int `json:"aux,omitempty"`
	// Requests is the number of requests (0 = 4 per host).
	Requests int `json:"requests,omitempty"`
	// Seed drives all randomness.
	Seed uint64 `json:"seed"`
	// BMode selects the capacity regime (default BModeLog).
	BMode string `json:"bMode,omitempty"`
	// BFactor multiplies ln(m)/Eps² in the log regime (default 1.2;
	// values < 1 violate the paper's assumption on purpose).
	BFactor float64 `json:"bFactor,omitempty"`
	// BValue is the fixed-regime minimum capacity.
	BValue float64 `json:"bValue,omitempty"`
	// Eps is the accuracy parameter the log regime is sized for
	// (default 0.25).
	Eps float64 `json:"eps,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Demand == "" {
		c.Demand = "gravity"
	}
	if c.BMode == "" {
		c.BMode = BModeLog
	}
	if c.BFactor == 0 {
		c.BFactor = 1.2
	}
	if c.Eps == 0 {
		c.Eps = 0.25
	}
	return c
}

var (
	topoRegistry   = map[string]Topology{}
	demandRegistry = map[string]DemandModel{}
)

// RegisterTopology adds a topology to the catalog. Registering a
// duplicate or unusable topology is a programming error and panics.
func RegisterTopology(t Topology) {
	if t.Name == "" || t.Build == nil || t.DefaultSize <= 0 {
		panic(fmt.Sprintf("scenario: topology %q needs a name, Build, and a positive DefaultSize", t.Name))
	}
	if _, dup := topoRegistry[t.Name]; dup {
		panic(fmt.Sprintf("scenario: topology %q registered twice", t.Name))
	}
	topoRegistry[t.Name] = t
}

// RegisterDemand adds a demand model to the catalog; duplicates panic.
func RegisterDemand(d DemandModel) {
	if d.Name == "" || d.Generate == nil {
		panic(fmt.Sprintf("scenario: demand model %q needs a name and Generate", d.Name))
	}
	if _, dup := demandRegistry[d.Name]; dup {
		panic(fmt.Sprintf("scenario: demand model %q registered twice", d.Name))
	}
	demandRegistry[d.Name] = d
}

// Topologies returns the registered topologies sorted by name.
func Topologies() []Topology {
	out := make([]Topology, 0, len(topoRegistry))
	for _, t := range topoRegistry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Demands returns the registered demand models sorted by name.
func Demands() []DemandModel {
	out := make([]DemandModel, 0, len(demandRegistry))
	for _, d := range demandRegistry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupTopology finds a registered topology by name.
func LookupTopology(name string) (Topology, bool) {
	t, ok := topoRegistry[name]
	return t, ok
}

// LookupDemand finds a registered demand model by name.
func LookupDemand(name string) (DemandModel, bool) {
	d, ok := demandRegistry[name]
	return d, ok
}

// Generate builds the scenario's UFP instance: topology, then demands,
// then the capacity regime, all from one seeded generator. The result is
// validated and in the paper's normalized form (demands in (0,1],
// B >= 1).
func Generate(cfg Config) (*core.Instance, error) {
	cfg = cfg.withDefaults()
	topo, ok := LookupTopology(cfg.Topology)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown topology %q (have %s)", cfg.Topology, names())
	}
	dm, ok := LookupDemand(cfg.Demand)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown demand model %q (have %s)", cfg.Demand, demandNames())
	}
	size := cfg.Size
	if size == 0 {
		size = topo.DefaultSize
	}
	rng := workload.NewRNG(cfg.Seed)
	built, err := topo.Build(rng, Shape{Size: size, Aux: cfg.Aux})
	if err != nil {
		return nil, fmt.Errorf("scenario: %s(size=%d,aux=%d): %w", cfg.Topology, size, cfg.Aux, err)
	}
	if len(built.Hosts) < 2 && built.Sink < 0 {
		return nil, fmt.Errorf("scenario: %s(size=%d) built fewer than 2 hosts", cfg.Topology, size)
	}
	n := cfg.Requests
	if n == 0 {
		n = 4 * len(built.Hosts)
	}
	reqs := dm.Generate(rng, built, n)
	if err := applyCapacityRegime(built.G, cfg); err != nil {
		return nil, err
	}
	inst := &core.Instance{G: built.G, Requests: reqs}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s/%s generated an invalid instance: %w", cfg.Topology, cfg.Demand, err)
	}
	// Construction is over: freeze the CSR adjacency once here so every
	// downstream solve starts on the fast path.
	inst.G.Freeze()
	return inst, nil
}

// GenerateAuction derives the scenario's multi-unit combinatorial
// auction by the paper's path-bundle reduction: items are the UFP
// instance's edges with multiplicity equal to capacity, and each
// routable request contributes a bid for the edge set of one fewest-hops
// path at its UFP value. Unroutable requests are dropped.
func GenerateAuction(cfg Config) (*auction.Instance, error) {
	inst, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	g := inst.G
	out := &auction.Instance{Multiplicity: make([]float64, g.NumEdges())}
	for e := 0; e < g.NumEdges(); e++ {
		out.Multiplicity[e] = g.Edge(e).Capacity
	}
	unit := func(int) float64 { return 1 }
	scratch := pathfind.NewScratch(g.NumVertices())
	trees := make(map[int]*pathfind.Tree)
	for _, r := range inst.Requests {
		tree, ok := trees[r.Source]
		if !ok {
			tree = scratch.Dijkstra(g, r.Source, unit, nil)
			trees[r.Source] = tree
		}
		if math.IsInf(tree.Dist[r.Target], 1) {
			continue
		}
		path, _ := tree.PathTo(r.Target)
		out.Requests = append(out.Requests, auction.Request{Bundle: path, Value: r.Value})
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s/%s generated an invalid auction: %w", cfg.Topology, cfg.Demand, err)
	}
	return out, nil
}

// TargetB returns the capacity regime's minimum capacity for a graph
// with m edges, clamped to >= 1 so instances stay in the paper's
// normalized model.
func TargetB(cfg Config, m int) (float64, error) {
	cfg = cfg.withDefaults()
	var b float64
	switch cfg.BMode {
	case BModeLog:
		if !(cfg.Eps > 0) || cfg.Eps > 1 {
			return 0, fmt.Errorf("scenario: log regime needs eps in (0,1], got %g", cfg.Eps)
		}
		if cfg.BFactor <= 0 {
			return 0, fmt.Errorf("scenario: log regime needs a positive BFactor, got %g", cfg.BFactor)
		}
		// Two log-scale thresholds matter at accuracy Eps: the paper's
		// approximation precondition B >= ln(m)/ε², and the Algorithm 1
		// main-loop gate e^{(ε/6)(B-1)} > m (the ε/6 calling convention),
		// i.e. B > 1 + 6·ln(m)/ε, without which the solver admits nothing.
		// The regime scales their max, so BFactor >= 1 means "the solver at
		// Eps both operates and carries the Theorem 3.1 guarantee", and
		// BFactor < 1 deliberately breaks that.
		logM := math.Log(float64(m))
		b = cfg.BFactor * math.Max(logM/(cfg.Eps*cfg.Eps), 1+6*logM/cfg.Eps)
	case BModeFixed:
		b = cfg.BValue
		if !(b > 0) {
			return 0, fmt.Errorf("scenario: fixed regime needs a positive BValue, got %g", b)
		}
	default:
		return 0, fmt.Errorf("scenario: unknown capacity regime %q (want %s|%s)", cfg.BMode, BModeLog, BModeFixed)
	}
	if b < 1 {
		b = 1 // the normalized model's floor (Instance.Validate requires B >= 1)
	}
	return b, nil
}

// applyCapacityRegime rescales capacities so the minimum equals the
// regime's target B, preserving the topology's relative structure.
func applyCapacityRegime(g *graph.Graph, cfg Config) error {
	target, err := TargetB(cfg, g.NumEdges())
	if err != nil {
		return err
	}
	min := g.MinCapacity()
	if min <= 0 {
		return fmt.Errorf("scenario: topology built a graph with min capacity %g", min)
	}
	g.ScaleCapacities(target / min)
	return nil
}

func names() string {
	var s []string
	for _, t := range Topologies() {
		s = append(s, t.Name)
	}
	return fmt.Sprint(s)
}

func demandNames() string {
	var s []string
	for _, d := range Demands() {
		s = append(s, d.Name)
	}
	return fmt.Sprint(s)
}
