package scenario_test

import (
	"math"
	"reflect"
	"testing"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/scenario"
)

// catalogFullRule is the pre-refactor reasonable-rule implementation
// (fresh Dijkstra per group per iteration, no caching), the reference
// the incremental ExpRule must reproduce exactly.
type catalogFullRule struct {
	trees map[core.Group]*pathfind.Tree
}

func (r *catalogFullRule) Name() string { return "exp-full" }

func (r *catalogFullRule) Prepare(st *core.State) {
	r.trees = make(map[core.Group]*pathfind.Tree, len(st.ActiveGroups))
	for _, g := range st.ActiveGroups {
		r.trees[g] = pathfind.Dijkstra(st.Inst.G, g.Source, st.ExpWeight(g.Demand))
	}
}

func (r *catalogFullRule) BestLen(st *core.State, g core.Group, target int) ([]int, float64, bool) {
	tr := r.trees[g]
	if math.IsInf(tr.Dist[target], 1) {
		return nil, 0, false
	}
	p, _ := tr.PathTo(target)
	return p, tr.Dist[target], true
}

// TestCatalogIncrementalEquivalence is the refactor's acceptance gate
// over the full S1 scenario catalog (every topology × demand model):
// SolveUFP, SolveMUCA, and the reasonable iterative path-min engine
// produce identical allocations — same paths, same admitted sets under
// the default tie-break — with the incremental caches on and off.
func TestCatalogIncrementalEquivalence(t *testing.T) {
	const eps = 0.5
	for _, topo := range scenario.Topologies() {
		for _, dm := range scenario.Demands() {
			t.Run(topo.Name+"/"+dm.Name, func(t *testing.T) {
				cfg := scenario.Config{Topology: topo.Name, Demand: dm.Name, Seed: 42}
				inst, err := scenario.Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}

				full, err := core.SolveUFP(inst, eps, &core.Options{NoIncremental: true})
				if err != nil {
					t.Fatal(err)
				}
				incr, err := core.SolveUFP(inst, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(full.Routed, incr.Routed) ||
					full.Value != incr.Value || full.Stop != incr.Stop || full.DualBound != incr.DualBound {
					t.Fatalf("SolveUFP allocations differ with/without the incremental cache")
				}
				if err := incr.CheckFeasible(inst, false); err != nil {
					t.Fatal(err)
				}

				auc, err := scenario.GenerateAuction(cfg)
				if err != nil {
					t.Fatal(err)
				}
				afull, err := auction.SolveMUCA(auc, eps, &auction.Options{NoIncremental: true})
				if err != nil {
					t.Fatal(err)
				}
				aincr, err := auction.SolveMUCA(auc, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(afull.Selected, aincr.Selected) ||
					afull.Value != aincr.Value || afull.Stop != aincr.Stop || afull.DualBound != aincr.DualBound {
					t.Fatalf("SolveMUCA selections differ with/without the bundle-sum cache")
				}

				want, err := core.IterativePathMin(inst, core.EngineOptions{
					Rule: &catalogFullRule{}, Eps: eps, FeasibleOnly: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.IterativePathMin(inst, core.EngineOptions{
					Rule: &core.ExpRule{}, Eps: eps, FeasibleOnly: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Routed, got.Routed) || want.Value != got.Value || want.Stop != got.Stop {
					t.Fatalf("reasonable engine allocations differ with/without the tree cache")
				}
			})
		}
	}
}
