package scenario_test

import (
	"math"
	"reflect"
	"testing"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/scenario"
	"truthfulufp/internal/session"
)

// catalogFullRule is the pre-refactor reasonable-rule implementation
// (fresh Dijkstra per group per iteration, no caching), the reference
// the incremental ExpRule must reproduce exactly.
type catalogFullRule struct {
	trees map[core.Group]*pathfind.Tree
}

func (r *catalogFullRule) Name() string { return "exp-full" }

func (r *catalogFullRule) Prepare(st *core.State) {
	r.trees = make(map[core.Group]*pathfind.Tree, len(st.ActiveGroups))
	for _, g := range st.ActiveGroups {
		r.trees[g] = pathfind.Dijkstra(st.Inst.G, g.Source, st.ExpWeight(g.Demand))
	}
}

func (r *catalogFullRule) BestLen(st *core.State, g core.Group, target int) ([]int, float64, bool) {
	tr := r.trees[g]
	if math.IsInf(tr.Dist[target], 1) {
		return nil, 0, false
	}
	p, _ := tr.PathTo(target)
	return p, tr.Dist[target], true
}

// TestCatalogIncrementalEquivalence is the refactor's acceptance gate
// over the full S1 scenario catalog (every topology × demand model):
// SolveUFP, SolveMUCA, and the reasonable iterative path-min engine
// produce identical allocations — same paths, same admitted sets under
// the default tie-break — with the incremental caches on and off.
func TestCatalogIncrementalEquivalence(t *testing.T) {
	const eps = 0.5
	for _, topo := range scenario.Topologies() {
		for _, dm := range scenario.Demands() {
			t.Run(topo.Name+"/"+dm.Name, func(t *testing.T) {
				cfg := scenario.Config{Topology: topo.Name, Demand: dm.Name, Seed: 42}
				inst, err := scenario.Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}

				full, err := core.SolveUFP(inst, eps, &core.Options{NoIncremental: true})
				if err != nil {
					t.Fatal(err)
				}
				incr, err := core.SolveUFP(inst, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(full.Routed, incr.Routed) ||
					full.Value != incr.Value || full.Stop != incr.Stop || full.DualBound != incr.DualBound {
					t.Fatalf("SolveUFP allocations differ with/without the incremental cache")
				}
				if err := incr.CheckFeasible(inst, false); err != nil {
					t.Fatal(err)
				}
				// The single-target oracle (mechanism-bisection mode) is
				// bit-transparent too.
				single, err := core.SolveUFP(inst, eps, &core.Options{SingleTarget: true})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(full.Routed, single.Routed) ||
					full.Value != single.Value || full.Stop != single.Stop || full.DualBound != single.DualBound {
					t.Fatalf("SolveUFP allocations differ with the single-target oracle on")
				}

				auc, err := scenario.GenerateAuction(cfg)
				if err != nil {
					t.Fatal(err)
				}
				afull, err := auction.SolveMUCA(auc, eps, &auction.Options{NoIncremental: true})
				if err != nil {
					t.Fatal(err)
				}
				aincr, err := auction.SolveMUCA(auc, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(afull.Selected, aincr.Selected) ||
					afull.Value != aincr.Value || afull.Stop != aincr.Stop || afull.DualBound != aincr.DualBound {
					t.Fatalf("SolveMUCA selections differ with/without the bundle-sum cache")
				}

				want, err := core.IterativePathMin(inst, core.EngineOptions{
					Rule: &catalogFullRule{}, Eps: eps, FeasibleOnly: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.IterativePathMin(inst, core.EngineOptions{
					Rule: &core.ExpRule{}, Eps: eps, FeasibleOnly: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Routed, got.Routed) || want.Value != got.Value || want.Stop != got.Stop {
					t.Fatalf("reasonable engine allocations differ with/without the tree cache")
				}
			})
		}
	}
}

// TestCatalogOracleEquivalence is the next-gen path oracle's
// acceptance gate over the full S1 catalog: ALT landmark pruning,
// bidirectional probes, and the adaptive refresh policy produce
// byte-identical results to the uncached, unpruned solver — for the
// batch solver, the reasonable iterative engine, and the online
// admission path. The oracle may only move work, never answers.
func TestCatalogOracleEquivalence(t *testing.T) {
	const eps = 0.5
	for _, topo := range scenario.Topologies() {
		for _, dm := range scenario.Demands() {
			t.Run(topo.Name+"/"+dm.Name, func(t *testing.T) {
				inst, err := scenario.Generate(scenario.Config{Topology: topo.Name, Demand: dm.Name, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				g := inst.G
				// Initial exponential prices (flow 0) are 1/c_e and only
				// rise — the permanent lower bound landmark tables need.
				lm := pathfind.BuildLandmarks(g, pathfind.DefaultLandmarkCount,
					func(e int) float64 { return 1 / g.Edge(e).Capacity })

				want, err := core.SolveUFP(inst, eps, &core.Options{NoIncremental: true})
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.SolveUFP(inst, eps, &core.Options{
					Adaptive: true, Landmarks: lm, Bidirectional: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Routed, got.Routed) ||
					want.Value != got.Value || want.Stop != got.Stop || want.DualBound != got.DualBound {
					t.Fatalf("SolveUFP allocations differ with the full oracle on")
				}

				ewant, err := core.IterativePathMin(inst, core.EngineOptions{
					Rule: &core.ExpRule{}, Eps: eps, UseDualStop: true, NoIncremental: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				egot, err := core.IterativePathMin(inst, core.EngineOptions{
					Rule: &core.ExpRule{}, Eps: eps, UseDualStop: true,
					Adaptive: true, Landmarks: true, Bidirectional: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ewant.Routed, egot.Routed) ||
					ewant.Value != egot.Value || ewant.Stop != egot.Stop || ewant.DualBound != egot.DualBound {
					t.Fatalf("reasonable engine allocations differ with the full oracle on")
				}

				owant, err := core.OnlineAdmission(inst, eps, &core.Options{NoIncremental: true})
				if err != nil {
					t.Fatal(err)
				}
				ogot, err := core.OnlineAdmission(inst, eps, &core.Options{
					Landmarks: lm, Bidirectional: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(owant, ogot) {
					t.Fatal("online admissions differ with the oracle on")
				}
			})
		}
	}
}

// TestCatalogOnlineSessionEquivalence is the session layer's
// acceptance gate over the full S1 catalog: streaming every request of
// a scenario instance through a registered session (warm incremental
// path cache, live prices) admits exactly the requests, on exactly the
// paths, that the offline batch spelling (OnlineAdmission) admits —
// with the incremental cache on and off — and releasing then
// re-offering every admission keeps the ledger consistent without ever
// lowering a price.
func TestCatalogOnlineSessionEquivalence(t *testing.T) {
	const eps = 0.5
	for _, topo := range scenario.Topologies() {
		for _, dm := range scenario.Demands() {
			t.Run(topo.Name+"/"+dm.Name, func(t *testing.T) {
				inst, err := scenario.Generate(scenario.Config{Topology: topo.Name, Demand: dm.Name, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				batch, err := core.OnlineAdmission(inst, eps, nil)
				if err != nil {
					t.Fatal(err)
				}
				noInc, err := core.OnlineAdmission(inst, eps, &core.Options{NoIncremental: true})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(batch, noInc) {
					t.Fatal("online batch allocations differ with/without the incremental cache")
				}

				mgr := session.NewManager(session.Config{})
				sess, err := mgr.Register(inst.G, eps)
				if err != nil {
					t.Fatal(err)
				}
				var streamed []core.Routed
				var value float64
				prices := make(map[int64]float64)
				for i, r := range inst.Requests {
					d, err := sess.Admit(r)
					if err != nil {
						t.Fatalf("admit %d: %v", i, err)
					}
					if d.Admitted {
						streamed = append(streamed, core.Routed{Request: i, Path: d.Path})
						value += r.Value
						prices[d.ID] = d.Price
					}
				}
				if !reflect.DeepEqual(batch.Routed, streamed) || batch.Value != value {
					t.Fatalf("streamed admits differ from batch OnlineAdmission:\n got %v\nwant %v", streamed, batch.Routed)
				}
				if err := batch.CheckFeasible(inst, false); err != nil {
					t.Fatal(err)
				}

				// Release every admission, then re-offer each at its original
				// value: capacity is back, so none may be rejected for
				// capacity, and no quote may undercut the original price.
				ledger, err := sess.Ledger()
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range ledger {
					if _, err := sess.Release(a.ID); err != nil {
						t.Fatalf("release %d: %v", a.ID, err)
					}
				}
				for _, a := range ledger {
					q, err := sess.Quote(a.Request)
					if err != nil {
						t.Fatal(err)
					}
					if q.Reason == core.RejectCapacity {
						t.Fatalf("request %+v capacity-rejected after full release", a.Request)
					}
					if q.Admitted && q.Price < prices[a.ID] {
						t.Fatalf("quote %g undercuts the original price %g: release lowered prices", q.Price, prices[a.ID])
					}
				}
			})
		}
	}
}

// TestCatalogKindCacheEquivalence is the kind-generic cache's
// acceptance gate over the full S1 catalog: BottleneckRule
// (KindBottleneck trees) and LogHopsRule (KindHopBounded Bellman-Ford
// tables) produce byte-identical allocations with the dirty-source
// caches on (default) and off (EngineOptions.NoIncremental), for every
// topology × demand model and in both engine stop configurations.
func TestCatalogKindCacheEquivalence(t *testing.T) {
	const eps = 0.5
	rules := []struct {
		name string
		mk   func() core.Rule
	}{
		{"bottleneck", func() core.Rule { return &core.BottleneckRule{} }},
		{"log-hops", func() core.Rule { return &core.LogHopsRule{MaxHops: 10} }},
	}
	for _, topo := range scenario.Topologies() {
		for _, dm := range scenario.Demands() {
			for _, rule := range rules {
				t.Run(topo.Name+"/"+dm.Name+"/"+rule.name, func(t *testing.T) {
					inst, err := scenario.Generate(scenario.Config{Topology: topo.Name, Demand: dm.Name, Seed: 42})
					if err != nil {
						t.Fatal(err)
					}
					for _, feasibleOnly := range []bool{true, false} {
						opts := core.EngineOptions{
							Rule: rule.mk(), Eps: eps,
							FeasibleOnly: feasibleOnly, UseDualStop: !feasibleOnly,
							NoIncremental: true,
						}
						full, err := core.IterativePathMin(inst, opts)
						if err != nil {
							t.Fatal(err)
						}
						opts.Rule = rule.mk()
						opts.NoIncremental = false
						incr, err := core.IterativePathMin(inst, opts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(full.Routed, incr.Routed) ||
							full.Value != incr.Value || full.Stop != incr.Stop || full.DualBound != incr.DualBound {
							t.Fatalf("%s (feasibleOnly=%v): allocations differ with/without the kind cache", rule.name, feasibleOnly)
						}
						if feasibleOnly {
							// Only the residual filter certifies per-edge
							// feasibility for the non-exponential rules.
							if err := incr.CheckFeasible(inst, false); err != nil {
								t.Fatal(err)
							}
						}
					}
				})
			}
		}
	}
}
