package scenario

import (
	"math"
	"math/rand/v2"

	"truthfulufp/internal/core"
)

// The built-in demand-model catalog. All models emit demands in (0,1]
// and positive finite values, and honor single-sink topologies by
// forcing every target to the sink.
func init() {
	RegisterDemand(DemandModel{
		Name:        "gravity",
		Description: "endpoints drawn proportionally to host attraction mass; value correlated with demand (willingness to pay scales with size)",
		Generate:    generateGravity,
	})
	RegisterDemand(DemandModel{
		Name:        "hotspot",
		Description: "80% of traffic targets a small hotspot set (1/8 of hosts); uniform sources, demands and values",
		Generate:    generateHotspot,
	})
	RegisterDemand(DemandModel{
		Name:        "zipf",
		Description: "uniform endpoints, request values Zipf(1.1)-distributed over ranks — a few whales, a long tail",
		Generate:    generateZipf,
	})
	RegisterDemand(DemandModel{
		Name:        "hose",
		Description: "per-host egress/ingress budgets (the hose model); demands never exceed either endpoint's remaining budget",
		Generate:    generateHose,
	})
}

// uniformDemand draws a demand in [0.2, 1].
func uniformDemand(rng *rand.Rand) float64 {
	return 0.2 + 0.8*rng.Float64()
}

// weightedHost draws a host index proportionally to b.Weight, excluding
// the host index `exclude` (-1 for none).
func weightedHost(rng *rand.Rand, b *Built, exclude int) int {
	total := 0.0
	for i, w := range b.Weight {
		if i == exclude {
			continue
		}
		total += w
	}
	u := rng.Float64() * total
	for i, w := range b.Weight {
		if i == exclude {
			continue
		}
		u -= w
		if u <= 0 {
			return i
		}
	}
	// Float underflow fallback: the last non-excluded host.
	for i := len(b.Hosts) - 1; i >= 0; i-- {
		if i != exclude {
			return i
		}
	}
	return 0
}

// endpoints draws a (source, target) pair: for single-sink topologies the
// target is the sink and the source is drawn by pick; otherwise both are
// drawn by pick with source != target.
func endpoints(rng *rand.Rand, b *Built, pickSrc, pickDst func() int) (int, int) {
	if b.Sink >= 0 {
		for {
			if s := b.Hosts[pickSrc()]; s != b.Sink {
				return s, b.Sink
			}
		}
	}
	for {
		si, ti := pickSrc(), pickDst()
		if s, t := b.Hosts[si], b.Hosts[ti]; s != t {
			return s, t
		}
	}
}

func generateGravity(rng *rand.Rand, b *Built, n int) []core.Request {
	pick := func() int { return weightedHost(rng, b, -1) }
	reqs := make([]core.Request, n)
	for i := range reqs {
		s, t := endpoints(rng, b, pick, pick)
		d := uniformDemand(rng)
		reqs[i] = core.Request{
			Source: s, Target: t, Demand: d,
			Value: d * (0.5 + 1.5*rng.Float64()),
		}
	}
	return reqs
}

func generateHotspot(rng *rand.Rand, b *Built, n int) []core.Request {
	h := len(b.Hosts) / 8
	if h < 1 {
		h = 1
	}
	// The first h positions of a permutation are the hotspot hosts.
	perm := rng.Perm(len(b.Hosts))
	hot := perm[:h]
	src := func() int { return rng.IntN(len(b.Hosts)) }
	dst := func() int {
		if rng.Float64() < 0.8 {
			return hot[rng.IntN(len(hot))]
		}
		return rng.IntN(len(b.Hosts))
	}
	reqs := make([]core.Request, n)
	for i := range reqs {
		s, t := endpoints(rng, b, src, dst)
		reqs[i] = core.Request{
			Source: s, Target: t,
			Demand: uniformDemand(rng),
			Value:  0.5 + 1.5*rng.Float64(),
		}
	}
	return reqs
}

// zipfExponent shapes the zipf demand model's value distribution.
const zipfExponent = 1.1

func generateZipf(rng *rand.Rand, b *Built, n int) []core.Request {
	// Inverse-CDF sampling of ranks 1..n with P(r) ∝ 1/r^s.
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), zipfExponent)
		cum[r] = total
	}
	drawRank := func() int {
		u := rng.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo + 1
	}
	pick := func() int { return rng.IntN(len(b.Hosts)) }
	const topValue = 10.0
	reqs := make([]core.Request, n)
	for i := range reqs {
		s, t := endpoints(rng, b, pick, pick)
		reqs[i] = core.Request{
			Source: s, Target: t,
			Demand: uniformDemand(rng),
			Value:  topValue / math.Pow(float64(drawRank()), zipfExponent),
		}
	}
	return reqs
}

// hoseMinDemand is the smallest demand the hose model emits; pairs whose
// remaining budgets cannot support it are redrawn.
const hoseMinDemand = 0.05

func generateHose(rng *rand.Rand, b *Built, n int) []core.Request {
	egress := make([]float64, len(b.Hosts))
	ingress := make([]float64, len(b.Hosts))
	sinkIdx := -1
	for i := range b.Hosts {
		egress[i] = 1 + 3*rng.Float64()
		ingress[i] = 1 + 3*rng.Float64()
		if b.Hosts[i] == b.Sink {
			sinkIdx = i
		}
	}
	if b.Sink >= 0 && sinkIdx >= 0 {
		ingress[sinkIdx] = math.Inf(1)
	}
	hostIdx := make(map[int]int, len(b.Hosts))
	for i, h := range b.Hosts {
		hostIdx[h] = i
	}
	pick := func() int { return rng.IntN(len(b.Hosts)) }
	var reqs []core.Request
	for len(reqs) < n {
		found := false
		for tries := 0; tries < 20; tries++ {
			s, t := endpoints(rng, b, pick, pick)
			si := hostIdx[s]
			ti, ok := hostIdx[t]
			room := egress[si]
			if ok {
				room = math.Min(room, ingress[ti])
			} else if b.Sink >= 0 {
				room = egress[si] // sink outside the host set: unbounded ingress
			}
			room = math.Min(room, 1)
			if room < hoseMinDemand {
				continue
			}
			d := room * (0.3 + 0.7*rng.Float64())
			egress[si] -= d
			if ok {
				ingress[ti] -= d
			}
			reqs = append(reqs, core.Request{
				Source: s, Target: t, Demand: d,
				Value: d * (0.5 + 1.5*rng.Float64()),
			})
			found = true
			break
		}
		if !found {
			break // budgets exhausted: a shorter, still-valid request set
		}
	}
	return reqs
}
