// Package workload generates the randomized problem instances and runs
// the parameter sweeps behind the experiment harness. All randomness is
// drawn from seeded PCG generators (math/rand/v2), so every experiment is
// reproducible from its seed.
package workload

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
)

// NewRNG returns a deterministic PCG generator for the given seed.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// UFPConfig parameterizes RandomUFP.
type UFPConfig struct {
	Vertices int
	Edges    int
	Requests int
	Directed bool
	// B is the minimum edge capacity; capacities are drawn uniformly from
	// [B, B*(1+CapSpread)].
	B         float64
	CapSpread float64
	// Demands are drawn uniformly from [DemandMin, DemandMax] ⊆ (0,1].
	DemandMin, DemandMax float64
	// Values are drawn uniformly from [ValueMin, ValueMax].
	ValueMin, ValueMax float64
}

// DefaultUFPConfig returns a small, well-conditioned configuration:
// a directed strongly connected graph so every request is routable.
func DefaultUFPConfig() UFPConfig {
	return UFPConfig{
		Vertices:  12,
		Edges:     36,
		Requests:  30,
		Directed:  true,
		B:         20,
		CapSpread: 0.5,
		DemandMin: 0.2, DemandMax: 1.0,
		ValueMin: 0.5, ValueMax: 2.0,
	}
}

func (c UFPConfig) validate() error {
	if c.Vertices < 2 {
		return fmt.Errorf("workload: need >= 2 vertices, got %d", c.Vertices)
	}
	if c.B < 1 {
		return fmt.Errorf("workload: B = %g < 1", c.B)
	}
	if !(c.DemandMin > 0) || c.DemandMax > 1 || c.DemandMin > c.DemandMax {
		return fmt.Errorf("workload: demand range [%g,%g] not within (0,1]", c.DemandMin, c.DemandMax)
	}
	if !(c.ValueMin > 0) || c.ValueMin > c.ValueMax {
		return fmt.Errorf("workload: bad value range [%g,%g]", c.ValueMin, c.ValueMax)
	}
	return nil
}

// RandomUFP draws a random normalized UFP instance. Directed instances
// use a strongly connected base graph so every (source, target) pair is
// routable; undirected instances use a connected base graph. Demands and
// values are continuous, so priority ties are measure-zero and the
// algorithms' default tie-breaking never matters.
func RandomUFP(rng *rand.Rand, c UFPConfig) (*core.Instance, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	maxCap := c.B * (1 + c.CapSpread)
	var g *graph.Graph
	if c.Directed {
		edges := c.Edges
		if edges < c.Vertices {
			edges = c.Vertices
		}
		g = graph.RandomStronglyConnected(rng, c.Vertices, edges, c.B, maxCap)
	} else {
		edges := c.Edges
		if edges < c.Vertices-1 {
			edges = c.Vertices - 1
		}
		g = graph.RandomConnected(rng, c.Vertices, edges, c.B, maxCap, false)
	}
	reqs := make([]core.Request, c.Requests)
	for i := range reqs {
		s := rng.IntN(c.Vertices)
		t := rng.IntN(c.Vertices - 1)
		if t >= s {
			t++
		}
		reqs[i] = core.Request{
			Source: s,
			Target: t,
			Demand: c.DemandMin + rng.Float64()*(c.DemandMax-c.DemandMin),
			Value:  c.ValueMin + rng.Float64()*(c.ValueMax-c.ValueMin),
		}
	}
	inst := &core.Instance{G: g, Requests: reqs}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// RunParallel executes the tasks on a bounded worker pool (workers <= 0
// means GOMAXPROCS) and blocks until all complete. Tasks must synchronize
// their own writes to shared state; the sweep harness gives each task its
// own result slot.
func RunParallel(tasks []func(), workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan func())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				t()
			}
		}()
	}
	for _, t := range tasks {
		work <- t
	}
	close(work)
	wg.Wait()
}

// Map runs fn over 0..n-1 in parallel and collects results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	tasks := make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() { out[i] = fn(i) }
	}
	RunParallel(tasks, workers)
	return out
}
