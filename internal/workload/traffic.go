package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"truthfulufp/internal/core"
)

// Traffic shapes for driving a solve service. An open-loop generator
// submits jobs at exogenous arrival times regardless of completions (the
// regime where queueing delay shows up); a closed-loop generator keeps a
// fixed number of jobs in flight and submits the next as soon as one
// completes (the regime that measures peak sustainable throughput).
type TrafficShape int

const (
	// ClosedLoop keeps Concurrency jobs in flight at all times.
	ClosedLoop TrafficShape = iota
	// OpenLoop submits jobs as a Poisson process with the configured rate.
	OpenLoop
)

func (s TrafficShape) String() string {
	switch s {
	case ClosedLoop:
		return "closed"
	case OpenLoop:
		return "open"
	}
	return fmt.Sprintf("TrafficShape(%d)", int(s))
}

// ParseTrafficShape parses "closed" or "open".
func ParseTrafficShape(s string) (TrafficShape, error) {
	switch s {
	case "closed":
		return ClosedLoop, nil
	case "open":
		return OpenLoop, nil
	}
	return 0, fmt.Errorf("workload: unknown traffic shape %q (want closed|open)", s)
}

// TrafficConfig parameterizes a job stream against a solve service.
type TrafficConfig struct {
	Shape TrafficShape
	// Jobs is the total number of jobs to submit.
	Jobs int
	// Concurrency is the closed-loop in-flight bound (ignored open-loop).
	Concurrency int
	// Rate is the open-loop mean arrival rate in jobs/sec (ignored
	// closed-loop).
	Rate float64
	// DupFraction in [0,1) is the fraction of jobs that repeat an earlier
	// instance verbatim — the knob that exercises a result cache.
	DupFraction float64
	// Instance parameterizes the random UFP instances underlying the jobs
	// (ignored when Source is set).
	Instance UFPConfig
	// Source, if non-nil, overrides Instance as the fresh-instance
	// generator: each non-duplicate job draws Source(rng). This is how
	// ufpbench -load -scenario streams catalog scenarios (see
	// internal/scenario) instead of uniform random instances.
	Source func(rng *rand.Rand) (*core.Instance, error)
}

func (c TrafficConfig) validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("workload: traffic needs >= 1 job, got %d", c.Jobs)
	}
	if c.Shape == ClosedLoop && c.Concurrency <= 0 {
		return fmt.Errorf("workload: closed loop needs concurrency >= 1, got %d", c.Concurrency)
	}
	if c.Shape == OpenLoop && !(c.Rate > 0) {
		return fmt.Errorf("workload: open loop needs rate > 0, got %g", c.Rate)
	}
	if c.DupFraction < 0 || c.DupFraction >= 1 || math.IsNaN(c.DupFraction) {
		return fmt.Errorf("workload: dup fraction %g outside [0,1)", c.DupFraction)
	}
	return nil
}

// ReplaySource adapts a fixed corpus of pre-generated instances into a
// TrafficConfig.Source: fresh jobs replay the corpus in round-robin
// order (deterministically — the rng is untouched), so a stream is a
// faithful re-run of recorded traffic rather than a resample of it.
// Duplicate-job selection still follows TrafficConfig.DupFraction.
func ReplaySource(corpus []*core.Instance) (func(rng *rand.Rand) (*core.Instance, error), error) {
	if len(corpus) == 0 {
		return nil, fmt.Errorf("workload: replay needs a non-empty corpus")
	}
	next := 0
	return func(*rand.Rand) (*core.Instance, error) {
		inst := corpus[next%len(corpus)]
		next++
		return inst, nil
	}, nil
}

// UFPStream draws the job stream's instances: c.Jobs instances where a
// DupFraction share are verbatim repeats of earlier draws (uniformly
// chosen), so a keyed result cache sees an expected hit ratio of about
// DupFraction. The first job is always fresh.
func UFPStream(rng *rand.Rand, c TrafficConfig) ([]*core.Instance, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	source := c.Source
	if source == nil {
		source = func(rng *rand.Rand) (*core.Instance, error) { return RandomUFP(rng, c.Instance) }
	}
	out := make([]*core.Instance, c.Jobs)
	for i := range out {
		if i > 0 && rng.Float64() < c.DupFraction {
			out[i] = out[rng.IntN(i)]
			continue
		}
		inst, err := source(rng)
		if err != nil {
			return nil, err
		}
		out[i] = inst
	}
	return out, nil
}

// Arrivals draws the stream's interarrival gaps. Closed-loop traffic has
// no exogenous arrival process, so every gap is zero; open-loop gaps are
// exponential with mean 1/Rate (a Poisson process).
func Arrivals(rng *rand.Rand, c TrafficConfig) ([]time.Duration, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	gaps := make([]time.Duration, c.Jobs)
	if c.Shape == ClosedLoop {
		return gaps, nil
	}
	for i := range gaps {
		gaps[i] = time.Duration(rng.ExpFloat64() / c.Rate * float64(time.Second))
	}
	return gaps, nil
}
