package workload

import (
	"sync/atomic"
	"testing"
)

func TestRandomUFPValid(t *testing.T) {
	rng := NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		inst, err := RandomUFP(rng, DefaultUFPConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		if inst.B() < 20 {
			t.Fatalf("B = %g, want >= 20", inst.B())
		}
		if len(inst.Requests) != 30 {
			t.Fatalf("got %d requests, want 30", len(inst.Requests))
		}
		for _, r := range inst.Requests {
			if r.Source == r.Target {
				t.Fatal("request with source == target")
			}
		}
	}
}

func TestRandomUFPDeterministic(t *testing.T) {
	a, err := RandomUFP(NewRNG(42), DefaultUFPConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomUFP(NewRNG(42), DefaultUFPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("different request counts for same seed")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs for same seed", i)
		}
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("different graphs for same seed")
	}
}

func TestRandomUFPUndirected(t *testing.T) {
	cfg := DefaultUFPConfig()
	cfg.Directed = false
	inst, err := RandomUFP(NewRNG(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inst.G.Directed() {
		t.Fatal("expected undirected graph")
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomUFPRejectsBadConfig(t *testing.T) {
	bad := []UFPConfig{
		{Vertices: 1, B: 2, DemandMin: 0.1, DemandMax: 1, ValueMin: 1, ValueMax: 2},
		{Vertices: 5, B: 0.5, DemandMin: 0.1, DemandMax: 1, ValueMin: 1, ValueMax: 2},
		{Vertices: 5, B: 2, DemandMin: 0, DemandMax: 1, ValueMin: 1, ValueMax: 2},
		{Vertices: 5, B: 2, DemandMin: 0.1, DemandMax: 2, ValueMin: 1, ValueMax: 2},
		{Vertices: 5, B: 2, DemandMin: 0.1, DemandMax: 1, ValueMin: 0, ValueMax: 2},
	}
	for i, cfg := range bad {
		if _, err := RandomUFP(NewRNG(1), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunParallelRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var count atomic.Int64
		tasks := make([]func(), 50)
		for i := range tasks {
			tasks[i] = func() { count.Add(1) }
		}
		RunParallel(tasks, workers)
		if count.Load() != 50 {
			t.Fatalf("workers=%d: ran %d tasks, want 50", workers, count.Load())
		}
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(20, 4, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestNewRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1).Float64(), NewRNG(2).Float64()
	if a == b {
		t.Fatal("different seeds produced identical first draw")
	}
}
