package lru

import "testing"

func TestPutGetEvict(t *testing.T) {
	var evicted []int
	c := New[int, string](2, func(k int, _ string) { evicted = append(evicted, k) })
	c.Put(1, "a")
	c.Put(2, "b")
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	// 1 is now most recent; inserting 3 must evict 2.
	if n := c.Put(3, "c"); n != 1 {
		t.Fatalf("Put(3) evicted %d entries, want 1", n)
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("Get(2) still present after eviction")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v after eviction", v, ok)
	}
}

func TestPutOverwrite(t *testing.T) {
	calls := 0
	c := New[string, int](2, func(string, int) { calls++ })
	c.Put("x", 1)
	c.Put("x", 2)
	if calls != 0 {
		t.Fatalf("onEvict called %d times on overwrite, want 0", calls)
	}
	if v, _ := c.Get("x"); v != 2 {
		t.Fatalf("Get(x) = %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	c := New[int, int](2, nil)
	c.Put(1, 10)
	c.Put(2, 20)
	if v, ok := c.Peek(1); !ok || v != 10 {
		t.Fatalf("Peek(1) = %d, %v", v, ok)
	}
	// Peek must not have promoted 1: inserting 3 evicts 1, not 2.
	c.Put(3, 30)
	if _, ok := c.Peek(1); ok {
		t.Fatal("1 survived eviction after a Peek-only touch")
	}
	if _, ok := c.Peek(2); !ok {
		t.Fatal("2 evicted although more recent than 1")
	}
}

func TestRemoveAndOldest(t *testing.T) {
	var evicted []int
	c := New[int, int](0, func(k int, _ int) { evicted = append(evicted, k) })
	for i := 1; i <= 3; i++ {
		c.Put(i, i)
	}
	if k, v, ok := c.Oldest(); !ok || k != 1 || v != 1 {
		t.Fatalf("Oldest = %d, %d, %v, want 1, 1, true", k, v, ok)
	}
	if !c.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if c.Remove(1) {
		t.Fatal("Remove(1) succeeded twice")
	}
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
	if k, _, _ := c.Oldest(); k != 2 {
		t.Fatalf("Oldest after Remove = %d, want 2", k)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New[int, int](0, func(int, int) { t.Fatal("onEvict fired on unbounded cache") })
	for i := 0; i < 100; i++ {
		c.Put(i, i)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
}

func TestOldestEmpty(t *testing.T) {
	c := New[int, int](1, nil)
	if _, _, ok := c.Oldest(); ok {
		t.Fatal("Oldest on empty cache returned ok")
	}
}
