// Package lru provides a small generic least-recently-used cache used
// by the engine's result cache and the session manager's eviction
// policy. It is deliberately not thread-safe: both callers already hold
// their own locks around richer invariants (result singleflight,
// session lifecycle), so locking stays in the caller and the cache
// stays a pure data structure.
package lru

import "container/list"

// Cache is a fixed-capacity LRU map from K to V. A zero or negative
// capacity means unbounded (no automatic eviction). The zero value is
// not ready to use; construct with New.
type Cache[K comparable, V any] struct {
	capacity int
	onEvict  func(K, V)
	order    *list.List // front = most recently used
	entries  map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New builds a cache holding at most capacity entries (<= 0 for
// unbounded). onEvict, if non-nil, is called for every entry removed by
// capacity eviction or Remove — but not for a Put that overwrites an
// existing key.
func New[K comparable, V any](capacity int, onEvict func(K, V)) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		onEvict:  onEvict,
		order:    list.New(),
		entries:  make(map[K]*list.Element),
	}
}

// Get returns the value under key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Peek returns the value under key without disturbing recency.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.entries[key]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or overwrites key, marks it most recently used, and
// evicts least-recently-used entries while over capacity. It returns
// how many entries were evicted.
func (c *Cache[K, V]) Put(key K, val V) int {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
	evicted := 0
	for c.capacity > 0 && c.order.Len() > c.capacity {
		c.removeElement(c.order.Back())
		evicted++
	}
	return evicted
}

// Remove deletes key, invoking onEvict, and reports whether it was
// present.
func (c *Cache[K, V]) Remove(key K) bool {
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

// Oldest returns the least-recently-used entry without disturbing
// recency — the probe point for lazy TTL sweeps.
func (c *Cache[K, V]) Oldest() (K, V, bool) {
	if el := c.order.Back(); el != nil {
		e := el.Value.(*entry[K, V])
		return e.key, e.val, true
	}
	var zk K
	var zv V
	return zk, zv, false
}

// Len returns the number of entries.
func (c *Cache[K, V]) Len() int { return c.order.Len() }

// Each calls fn for every entry from most to least recently used,
// stopping early when fn returns false. Recency is not disturbed; fn
// must not mutate the cache.
func (c *Cache[K, V]) Each(fn func(K, V) bool) {
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		if !fn(e.key, e.val) {
			return
		}
	}
}

func (c *Cache[K, V]) removeElement(el *list.Element) {
	e := el.Value.(*entry[K, V])
	c.order.Remove(el)
	delete(c.entries, e.key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
}
