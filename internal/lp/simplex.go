// Package lp implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	maximize  c·x   subject to   A x {<=,=,>=} b,  x >= 0.
//
// The Go ecosystem offers no stdlib LP solver, and this reproduction is
// offline, so the solver is hand-rolled. It targets the small and
// mid-sized LPs this repository needs: fractional relaxations of
// unsplittable-flow and auction instances (hundreds to a few thousand
// variables), LP bounds inside branch-and-bound, and the primal/dual
// programs of the paper's Figure 1 and Figure 5. Duals are extracted so
// weak/strong duality can be verified in tests and experiments.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem is a linear program under construction. Variables are indexed
// 0..NumVars-1 and implicitly satisfy x >= 0; the objective is maximized.
type Problem struct {
	numVars   int
	objective []float64
	rows      []row
}

type row struct {
	idx []int
	val []float64
	rel Rel
	rhs float64
}

// NewMaximize returns an empty maximization problem over numVars
// nonnegative variables with a zero objective.
func NewMaximize(numVars int) *Problem {
	return &Problem{numVars: numVars, objective: make([]float64, numVars)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjectiveCoeff sets the objective coefficient of variable j.
func (p *Problem) SetObjectiveCoeff(j int, c float64) {
	p.objective[j] = c
}

// AddSparse appends the constraint sum_i val[i]*x[idx[i]] rel rhs and
// returns its row index. The idx/val slices are copied.
func (p *Problem) AddSparse(idx []int, val []float64, rel Rel, rhs float64) int {
	if len(idx) != len(val) {
		panic("lp: AddSparse index/value length mismatch")
	}
	for _, j := range idx {
		if j < 0 || j >= p.numVars {
			panic(fmt.Sprintf("lp: AddSparse variable %d out of range [0,%d)", j, p.numVars))
		}
	}
	r := row{idx: append([]int(nil), idx...), val: append([]float64(nil), val...), rel: rel, rhs: rhs}
	p.rows = append(p.rows, r)
	return len(p.rows) - 1
}

// AddDense appends the constraint coef·x rel rhs (coef must have NumVars
// entries) and returns its row index. Zero coefficients are dropped.
func (p *Problem) AddDense(coef []float64, rel Rel, rhs float64) int {
	if len(coef) != p.numVars {
		panic(fmt.Sprintf("lp: AddDense got %d coefficients, want %d", len(coef), p.numVars))
	}
	var idx []int
	var val []float64
	for j, c := range coef {
		if c != 0 {
			idx = append(idx, j)
			val = append(val, c)
		}
	}
	return p.AddSparse(idx, val, rel, rhs)
}

// Solution is the result of Solve. X has NumVars entries; Duals has one
// entry per constraint row, with the convention that for an optimal
// solution of a maximization problem, Duals of <= rows are >= 0, duals of
// >= rows are <= 0, and strong duality holds: Objective == sum_i
// Duals[i]*rhs[i].
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Duals     []float64
}

const (
	tolerance    = 1e-9
	pivotMinimum = 1e-10
)

// Solve runs two-phase primal simplex. It returns an error only for
// malformed input; infeasibility/unboundedness are reported via Status.
func (p *Problem) Solve() (*Solution, error) {
	for i, r := range p.rows {
		if math.IsNaN(r.rhs) || math.IsInf(r.rhs, 0) {
			return nil, fmt.Errorf("lp: row %d has invalid rhs %v", i, r.rhs)
		}
	}
	t := newTableau(p)
	if !t.phase1() {
		return &Solution{Status: Infeasible}, nil
	}
	status := t.phase2()
	sol := &Solution{Status: status}
	if status == Optimal {
		sol.X = t.extractX()
		sol.Duals = t.extractDuals()
		obj := 0.0
		for j, c := range p.objective {
			obj += c * sol.X[j]
		}
		sol.Objective = obj
	}
	return sol, nil
}

// tableau is a dense simplex tableau. Columns are laid out as
// [structural | slack/surplus | artificial | rhs]; rows are the
// constraints followed by the (phase-dependent) objective row holding
// reduced costs for *minimization* (the maximization objective is
// negated on entry). unit[i] is the column that is the i-th unit vector
// at the start (slack for LE, artificial otherwise), used to read duals.
type tableau struct {
	p         *Problem
	m         int // constraint rows
	nStruct   int
	nSlack    int
	nArt      int
	cols      int // total variable columns (excludes rhs)
	a         [][]float64
	rhs       []float64
	basis     []int
	slackCol  []int // per row, slack/surplus column or -1
	artCol    []int // per row, artificial column or -1
	unit      []int // per row, column that began as e_i
	inPhase2  bool
	costs     []float64 // current phase objective coefficients per column
	redCost   []float64 // reduced-cost row
	objShift  float64
	iterLimit int
}

func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	t := &tableau{p: p, m: m, nStruct: p.numVars}
	// Count slack/surplus and artificial columns after normalizing rhs >= 0.
	type normRow struct {
		idx []int
		val []float64
		rel Rel
		rhs float64
	}
	norm := make([]normRow, m)
	for i, r := range p.rows {
		nr := normRow{idx: r.idx, val: r.val, rel: r.rel, rhs: r.rhs}
		if nr.rhs < 0 {
			flipped := make([]float64, len(r.val))
			for k, v := range r.val {
				flipped[k] = -v
			}
			nr.val = flipped
			nr.rhs = -nr.rhs
			switch nr.rel {
			case LE:
				nr.rel = GE
			case GE:
				nr.rel = LE
			}
		}
		norm[i] = nr
		switch nr.rel {
		case LE, GE:
			t.nSlack++
		}
		if nr.rel != LE {
			t.nArt++
		}
	}
	// A LE row with rhs >= 0 gets a slack that can serve as the initial
	// basic variable; GE and EQ rows need artificials.
	t.cols = t.nStruct + t.nSlack + t.nArt
	t.a = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)
	t.slackCol = make([]int, m)
	t.artCol = make([]int, m)
	t.unit = make([]int, m)
	slackBase := t.nStruct
	artBase := t.nStruct + t.nSlack
	slackUsed, artUsed := 0, 0
	for i, nr := range norm {
		rowVec := make([]float64, t.cols)
		for k, j := range nr.idx {
			rowVec[j] += nr.val[k]
		}
		t.slackCol[i] = -1
		t.artCol[i] = -1
		switch nr.rel {
		case LE:
			c := slackBase + slackUsed
			slackUsed++
			rowVec[c] = 1
			t.slackCol[i] = c
			t.basis[i] = c
			t.unit[i] = c
		case GE:
			c := slackBase + slackUsed
			slackUsed++
			rowVec[c] = -1
			t.slackCol[i] = c
			ac := artBase + artUsed
			artUsed++
			rowVec[ac] = 1
			t.artCol[i] = ac
			t.basis[i] = ac
			t.unit[i] = ac
		case EQ:
			ac := artBase + artUsed
			artUsed++
			rowVec[ac] = 1
			t.artCol[i] = ac
			t.basis[i] = ac
			t.unit[i] = ac
		}
		t.a[i] = rowVec
		t.rhs[i] = nr.rhs
	}
	t.iterLimit = 200*(m+t.cols) + 20000
	return t
}

// setCosts installs per-column costs (minimization) and recomputes the
// reduced-cost row r_j = c_j - y·A_j from the current basis.
func (t *tableau) setCosts(costs []float64) {
	t.costs = costs
	t.redCost = make([]float64, t.cols)
	copy(t.redCost, costs)
	t.objShift = 0
	for i, b := range t.basis {
		cb := costs[b]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.redCost[j] -= cb * t.a[i][j]
		}
		t.objShift += cb * t.rhs[i]
	}
}

// phase1 minimizes the sum of artificials; returns false if infeasible.
func (t *tableau) phase1() bool {
	if t.nArt == 0 {
		costs := make([]float64, t.cols)
		t.setCosts(costs)
		return true
	}
	costs := make([]float64, t.cols)
	artBase := t.nStruct + t.nSlack
	for j := artBase; j < t.cols; j++ {
		costs[j] = 1
	}
	t.setCosts(costs)
	if t.iterate(false) != Optimal {
		return false
	}
	if t.objShift > 1e-7 {
		return false
	}
	// Drive remaining artificials out of the basis where possible.
	for i, b := range t.basis {
		if b < artBase {
			continue
		}
		pivoted := false
		for j := 0; j < artBase; j++ {
			if math.Abs(t.a[i][j]) > pivotMinimum {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant (all-zero over real columns); it stays with
			// the artificial basic at value ~0, harmless for phase 2 since
			// artificials are barred from entering.
			_ = i
		}
	}
	return true
}

// phase2 minimizes the negated user objective.
func (t *tableau) phase2() Status {
	t.inPhase2 = true
	costs := make([]float64, t.cols)
	for j := 0; j < t.nStruct; j++ {
		costs[j] = -t.p.objective[j]
	}
	t.setCosts(costs)
	return t.iterate(true)
}

// iterate runs simplex pivots until optimal/unbounded/limit. When
// barArtificials is true, artificial columns may not enter the basis.
func (t *tableau) iterate(barArtificials bool) Status {
	artBase := t.nStruct + t.nSlack
	degenerate := 0
	useBland := false
	for iter := 0; iter < t.iterLimit; iter++ {
		enter := -1
		if useBland {
			for j := 0; j < t.cols; j++ {
				if barArtificials && j >= artBase {
					break
				}
				if t.redCost[j] < -tolerance {
					enter = j
					break
				}
			}
		} else {
			best := -tolerance
			for j := 0; j < t.cols; j++ {
				if barArtificials && j >= artBase {
					break
				}
				if t.redCost[j] < best {
					best = t.redCost[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test; Bland ties by smallest basis variable index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= pivotMinimum {
				continue
			}
			ratio := t.rhs[i] / aij
			if ratio < bestRatio-tolerance ||
				(ratio < bestRatio+tolerance && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded
		}
		if bestRatio < tolerance {
			degenerate++
			if degenerate > 2*(t.m+t.cols) {
				useBland = true
			}
		} else {
			degenerate = 0
		}
		t.pivot(leave, enter)
	}
	return IterationLimit
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	rowL := t.a[leave]
	for j := 0; j < t.cols; j++ {
		rowL[j] *= inv
	}
	t.rhs[leave] *= inv
	rowL[enter] = 1 // fight rounding
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		rowI := t.a[i]
		for j := 0; j < t.cols; j++ {
			rowI[j] -= f * rowL[j]
		}
		rowI[enter] = 0
		t.rhs[i] -= f * t.rhs[leave]
		if t.rhs[i] < 0 && t.rhs[i] > -tolerance {
			t.rhs[i] = 0
		}
	}
	f := t.redCost[enter]
	if f != 0 {
		for j := 0; j < t.cols; j++ {
			t.redCost[j] -= f * rowL[j]
		}
		t.redCost[enter] = 0
		t.objShift += f * t.rhs[leave]
	}
	t.basis[leave] = enter
}

func (t *tableau) extractX() []float64 {
	x := make([]float64, t.nStruct)
	for i, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.rhs[i]
			if x[b] < 0 && x[b] > -tolerance {
				x[b] = 0
			}
		}
	}
	return x
}

// extractDuals reads y_i = -redCost[unit_i] + cost[unit_i]; since the
// phase-2 cost of slack and artificial columns is zero, y_i =
// -redCost[unit_i]. The minimization sign flip (phase 2 minimizes -c·x)
// is undone so duals correspond to the maximization problem.
func (t *tableau) extractDuals() []float64 {
	duals := make([]float64, t.m)
	for i := 0; i < t.m; i++ {
		y := -t.redCost[t.unit[i]]
		// Undo minimization negation.
		y = -y
		// Undo the rhs sign normalization: rows whose rhs was flipped have
		// duals of opposite sign relative to the original row.
		if t.p.rows[i].rhs < 0 {
			y = -y
		}
		duals[i] = y
	}
	return duals
}

// Value evaluates the problem's objective at x.
func (p *Problem) Value(x []float64) float64 {
	v := 0.0
	for j, c := range p.objective {
		v += c * x[j]
	}
	return v
}

// CheckFeasible verifies x against all constraints and bounds within tol,
// returning a descriptive error for the first violation.
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	if len(x) != p.numVars {
		return fmt.Errorf("lp: solution has %d entries, want %d", len(x), p.numVars)
	}
	for j, v := range x {
		if v < -tol {
			return fmt.Errorf("lp: x[%d] = %g violates nonnegativity", j, v)
		}
	}
	for i, r := range p.rows {
		lhs := 0.0
		for k, j := range r.idx {
			lhs += r.val[k] * x[j]
		}
		switch r.rel {
		case LE:
			if lhs > r.rhs+tol {
				return fmt.Errorf("lp: row %d: %g <= %g violated", i, lhs, r.rhs)
			}
		case GE:
			if lhs < r.rhs-tol {
				return fmt.Errorf("lp: row %d: %g >= %g violated", i, lhs, r.rhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return fmt.Errorf("lp: row %d: %g = %g violated", i, lhs, r.rhs)
			}
		}
	}
	return nil
}

// ErrMalformed is returned (wrapped) for structurally invalid problems.
var ErrMalformed = errors.New("lp: malformed problem")
