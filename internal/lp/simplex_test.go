package lp

import (
	"math"
	"math/rand/v2"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Fatalf("solution infeasible: %v", err)
	}
	return sol
}

func TestTextbookLP(t *testing.T) {
	// maximize 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum 36 at (2, 6).
	p := NewMaximize(2)
	p.SetObjectiveCoeff(0, 3)
	p.SetObjectiveCoeff(1, 5)
	p.AddDense([]float64{1, 0}, LE, 4)
	p.AddDense([]float64{0, 2}, LE, 12)
	p.AddDense([]float64{3, 2}, LE, 18)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-36) > 1e-7 {
		t.Fatalf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Fatalf("x = %v, want (2, 6)", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// maximize x + y st x + y = 5, x <= 3. Optimum 5.
	p := NewMaximize(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddDense([]float64{1, 1}, EQ, 5)
	p.AddDense([]float64{1, 0}, LE, 3)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-5) > 1e-7 {
		t.Fatalf("objective = %g, want 5", sol.Objective)
	}
}

func TestGEConstraint(t *testing.T) {
	// maximize -x st x >= 2 -> optimum -2.
	p := NewMaximize(1)
	p.SetObjectiveCoeff(0, -1)
	p.AddDense([]float64{1}, GE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+2) > 1e-7 {
		t.Fatalf("objective = %g, want -2", sol.Objective)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// maximize x st -x >= -3 (i.e. x <= 3).
	p := NewMaximize(1)
	p.SetObjectiveCoeff(0, 1)
	p.AddDense([]float64{-1}, GE, -3)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-3) > 1e-7 {
		t.Fatalf("objective = %g, want 3", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewMaximize(1)
	p.SetObjectiveCoeff(0, 1)
	p.AddDense([]float64{1}, LE, 1)
	p.AddDense([]float64{1}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewMaximize(2)
	p.SetObjectiveCoeff(0, 1)
	p.AddDense([]float64{0, 1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classic degenerate LP; solver must not cycle.
	p := NewMaximize(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddDense([]float64{1, 0}, LE, 1)
	p.AddDense([]float64{1, 0}, LE, 1) // duplicate binding row
	p.AddDense([]float64{1, 1}, LE, 2)
	p.AddDense([]float64{0, 1}, LE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-7 {
		t.Fatalf("objective = %g, want 2", sol.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	p := NewMaximize(2)
	p.AddDense([]float64{1, 1}, LE, 1)
	sol := solveOK(t, p)
	if sol.Objective != 0 {
		t.Fatalf("objective = %g, want 0", sol.Objective)
	}
}

func TestStrongDualityPackingLP(t *testing.T) {
	// Packing LP: duals must be nonnegative and b·y == c·x at optimum.
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(4)
		m := 1 + rng.IntN(4)
		p := NewMaximize(n)
		for j := 0; j < n; j++ {
			p.SetObjectiveCoeff(j, rng.Float64()+0.1)
		}
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = rng.Float64()
			}
			b[i] = 1 + rng.Float64()*3
			p.AddDense(coef, LE, b[i])
		}
		for j := 0; j < n; j++ {
			coef := make([]float64, n)
			coef[j] = 1
			b = append(b, 1)
			p.AddDense(coef, LE, 1) // x_j <= 1 keeps it bounded
		}
		sol := solveOK(t, p)
		dualVal := 0.0
		for i, y := range sol.Duals {
			if y < -1e-7 {
				t.Fatalf("trial %d: dual %d = %g < 0 for packing LP", trial, i, y)
			}
			dualVal += y * b[i]
		}
		if math.Abs(dualVal-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: strong duality broken: primal %g dual %g", trial, sol.Objective, dualVal)
		}
	}
}

// TestAgainstBruteForce cross-validates simplex against exhaustive vertex
// enumeration on random small bounded LPs.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.IntN(3)
		m := 2 + rng.IntN(4)
		p := NewMaximize(n)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.Float64()*4 - 1
			p.SetObjectiveCoeff(j, obj[j])
		}
		rows := make([][]float64, 0, m+n)
		rhs := make([]float64, 0, m+n)
		for i := 0; i < m; i++ {
			coef := make([]float64, n)
			for j := range coef {
				coef[j] = rng.Float64()
			}
			r := 0.5 + rng.Float64()*2
			p.AddDense(coef, LE, r)
			rows = append(rows, coef)
			rhs = append(rhs, r)
		}
		// Box constraints keep every instance bounded and feasible (x=0).
		for j := 0; j < n; j++ {
			coef := make([]float64, n)
			coef[j] = 1
			p.AddDense(coef, LE, 2)
			rows = append(rows, coef)
			rhs = append(rhs, 2)
		}
		sol := solveOK(t, p)
		want := bruteForceMax(obj, rows, rhs)
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %g vs brute force %g", trial, sol.Objective, want)
		}
	}
}

// bruteForceMax enumerates all vertices of {x >= 0, rows·x <= rhs} by
// solving every n-subset of tight constraints and returns the best
// objective value among feasible vertices.
func bruteForceMax(obj []float64, rows [][]float64, rhs []float64) float64 {
	n := len(obj)
	// Hyperplane set: each row as equality, plus x_j = 0.
	type plane struct {
		a []float64
		b float64
	}
	var planes []plane
	for i, r := range rows {
		planes = append(planes, plane{r, rhs[i]})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		planes = append(planes, plane{a, 0})
	}
	best := math.Inf(-1)
	idx := make([]int, n)
	var rec func(start, k int)
	feasible := func(x []float64) bool {
		for j := 0; j < n; j++ {
			if x[j] < -1e-7 {
				return false
			}
		}
		for i, r := range rows {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += r[j] * x[j]
			}
			if lhs > rhs[i]+1e-7 {
				return false
			}
		}
		return true
	}
	rec = func(start, k int) {
		if k == n {
			A := make([][]float64, n)
			b := make([]float64, n)
			for i, pi := range idx {
				A[i] = append([]float64(nil), planes[pi].a...)
				b[i] = planes[pi].b
			}
			x, ok := gauss(A, b)
			if ok && feasible(x) {
				v := 0.0
				for j := 0; j < n; j++ {
					v += obj[j] * x[j]
				}
				if v > best {
					best = v
				}
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

// gauss solves Ax = b with partial pivoting; ok is false if singular.
func gauss(A [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-10 {
			return nil, false
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x, true
}

func TestAddSparseValidation(t *testing.T) {
	p := NewMaximize(2)
	defer func() {
		if recover() == nil {
			t.Fatal("AddSparse with bad index did not panic")
		}
	}()
	p.AddSparse([]int{5}, []float64{1}, LE, 1)
}

func TestAddDenseWrongLength(t *testing.T) {
	p := NewMaximize(2)
	defer func() {
		if recover() == nil {
			t.Fatal("AddDense with wrong length did not panic")
		}
	}()
	p.AddDense([]float64{1}, LE, 1)
}

func TestInvalidRHS(t *testing.T) {
	p := NewMaximize(1)
	p.AddDense([]float64{1}, LE, math.NaN())
	if _, err := p.Solve(); err == nil {
		t.Fatal("Solve accepted NaN rhs")
	}
}

func TestCheckFeasibleDetectsViolations(t *testing.T) {
	p := NewMaximize(2)
	p.AddDense([]float64{1, 1}, LE, 1)
	p.AddDense([]float64{1, 0}, GE, 0.2)
	p.AddDense([]float64{0, 1}, EQ, 0.5)
	if err := p.CheckFeasible([]float64{0.3, 0.5}, 1e-9); err != nil {
		t.Fatalf("feasible point rejected: %v", err)
	}
	if err := p.CheckFeasible([]float64{0.6, 0.5}, 1e-9); err == nil {
		t.Fatal("LE violation not caught")
	}
	if err := p.CheckFeasible([]float64{0.1, 0.5}, 1e-9); err == nil {
		t.Fatal("GE violation not caught")
	}
	if err := p.CheckFeasible([]float64{0.3, 0.4}, 1e-9); err == nil {
		t.Fatal("EQ violation not caught")
	}
	if err := p.CheckFeasible([]float64{-0.1, 0.5}, 1e-9); err == nil {
		t.Fatal("negativity violation not caught")
	}
}

func TestRelAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Rel strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" {
		t.Error("Status strings wrong")
	}
	if Rel(42).String() == "" || Status(42).String() == "" {
		t.Error("unknown enum strings empty")
	}
}
