package lp

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomPacking builds a bounded random packing LP (always feasible at
// x = 0, always bounded via box rows).
func randomPacking(seed uint64, nRaw, mRaw uint8) (*Problem, int) {
	rng := rand.New(rand.NewPCG(seed, seed^99))
	n := 1 + int(nRaw%5)
	m := 1 + int(mRaw%5)
	p := NewMaximize(n)
	for j := 0; j < n; j++ {
		p.SetObjectiveCoeff(j, rng.Float64()*3)
	}
	for i := 0; i < m; i++ {
		coef := make([]float64, n)
		for j := range coef {
			coef[j] = rng.Float64()
		}
		p.AddDense(coef, LE, 0.5+rng.Float64()*2)
	}
	for j := 0; j < n; j++ {
		coef := make([]float64, n)
		coef[j] = 1
		p.AddDense(coef, LE, 2)
	}
	return p, n
}

// TestQuickSimplexOptimalAndFeasible: the reported solution is feasible
// and no random feasible point (constructed by shrinking a random ray to
// feasibility) beats it.
func TestQuickSimplexOptimalAndFeasible(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		p, n := randomPacking(seed, nRaw, mRaw)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		if p.CheckFeasible(sol.X, 1e-6) != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed^1, seed^2))
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 2
			}
			// Shrink toward the origin until feasible (packing LPs are
			// star-shaped around 0).
			for scale := 1.0; scale > 1e-4; scale /= 2 {
				y := make([]float64, n)
				for j := range y {
					y[j] = x[j] * scale
				}
				if p.CheckFeasible(y, 1e-9) == nil {
					if p.Value(y) > sol.Objective+1e-6 {
						return false
					}
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWeakDuality: the dual vector reported at optimality satisfies
// b·y >= c·x for the packing form (here equality by strong duality; we
// assert the weak direction with tolerance, which must never fail).
func TestQuickWeakDuality(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		p, _ := randomPacking(seed, nRaw, mRaw)
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		dualVal := 0.0
		for i, r := range p.rows {
			dualVal += sol.Duals[i] * r.rhs
		}
		return dualVal >= sol.Objective-1e-6*(1+sol.Objective)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
