package experiments

import (
	"fmt"
	"math"

	"truthfulufp/internal/core"
	"truthfulufp/internal/mcf"
	"truthfulufp/internal/scenario"
	"truthfulufp/internal/stats"
)

// S1Scenarios sweeps the scenario catalog (internal/scenario): every
// registered topology × demand model in the paper's large-capacity
// regime, comparing Bounded-UFP against the sequential primal-dual and
// greedy baselines, with the dual-fitting certificate as the quality
// yardstick. Config.Scenario restricts the sweep to one topology family.
//
// This is the "realistic families" counterpart of E1/E9's uniform random
// graphs: datacenter fabrics, geographic backbones, heavy-tailed and
// small-world graphs, metro rings, and the single-sink star-of-trees
// hardness shape.
func S1Scenarios(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "S1", Title: "Scenario catalog sweep (topology × demand, log-regime capacities)"}

	topos := scenario.Topologies()
	if cfg.Scenario != "" {
		t, ok := scenario.LookupTopology(cfg.Scenario)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scenario topology %q", cfg.Scenario)
		}
		topos = []scenario.Topology{t}
	}
	// Oversubscribe: with B ≈ 100-120 under the default log regime and
	// bottleneck cuts of a few B, ~2500 demand-[0.2,1] requests push every
	// family well past saturation, so the selection rule actually matters.
	requests := cfg.scaleInt(2500, 400)
	const eps = 0.5 // SolveUFP's Theorem 3.1 ε

	main := stats.NewTable(
		"S1a: value by algorithm per family (means over seeds; bnd/grd > 1 means Bounded-UFP beats greedy; frac is the Garg–Könemann fractional LP value)",
		"topology", "demand", "n", "m", "B", "reqs", "bounded", "greedy", "seqpd", "frac", "bnd/grd", "cert-ratio")
	for _, topo := range topos {
		for _, dm := range scenario.Demands() {
			var bounded, greedy, seqpd, frac, certs stats.Summary
			var n, m, reqs int
			var b float64
			for seed := 0; seed < cfg.Seeds; seed++ {
				scfg := scenario.Config{
					Topology: topo.Name, Demand: dm.Name,
					Requests: requests, Seed: uint64(seed) + 100,
				}
				inst, err := scenario.Generate(scfg)
				if err != nil {
					return nil, err
				}
				n, m, reqs, b = inst.G.NumVertices(), inst.G.NumEdges(), len(inst.Requests), inst.B()
				opt := &core.Options{Workers: cfg.Workers}
				ba, err := core.SolveUFP(inst, eps, opt)
				if err != nil {
					return nil, err
				}
				if err := ba.CheckFeasible(inst, false); err != nil {
					return nil, fmt.Errorf("%s/%s seed %d: %w", topo.Name, dm.Name, seed, err)
				}
				ga, err := core.GreedyByDensity(inst, opt)
				if err != nil {
					return nil, err
				}
				sa, err := core.SequentialPrimalDual(inst, eps/6, opt)
				if err != nil {
					return nil, err
				}
				// The fractional LP reference (ufp/fractional-gk in the
				// registry): the value an unsplittable, monotone algorithm is
				// leaving on the table is bounded by frac - bounded.
				fa, err := mcf.MaxProfitFlow(inst, eps)
				if err != nil {
					return nil, err
				}
				if err := fa.CheckFeasible(inst); err != nil {
					return nil, fmt.Errorf("%s/%s seed %d: fractional: %w", topo.Name, dm.Name, seed, err)
				}
				bounded.Add(ba.Value)
				greedy.Add(ga.Value)
				seqpd.Add(sa.Value)
				frac.Add(fa.Value)
				if ba.Value > 0 && !math.IsInf(ba.DualBound, 1) {
					certs.Add(ba.DualBound / ba.Value)
				}
			}
			ratio := math.Inf(1)
			if greedy.Mean() > 0 {
				ratio = bounded.Mean() / greedy.Mean()
			}
			cert := math.Inf(1)
			if certs.N() > 0 {
				cert = certs.Mean()
			}
			main.Row(topo.Name, dm.Name, n, m, math.Round(b), reqs,
				bounded.Mean(), greedy.Mean(), seqpd.Mean(), frac.Mean(), ratio, cert)
		}
	}
	rep.Tables = append(rep.Tables, main)

	// Regime degradation: sweep BFactor through the large-capacity
	// assumption on one contended family. Below 1 the ratio guarantee no
	// longer applies and the certified gap widens — exactly the knob the
	// capacity regime exists to expose.
	reg := stats.NewTable(
		"S1b: capacity-regime sweep on fattree/gravity (B = factor × ln(m)/ε², ε = 0.25)",
		"B-factor", "B", "routed", "reqs", "bounded", "cert-ratio")
	for _, factor := range []float64{0.25, 0.5, 1, 2} {
		var bounded, certs, routed stats.Summary
		var b float64
		var reqs int
		for seed := 0; seed < cfg.Seeds; seed++ {
			scfg := scenario.Config{
				Topology: "fattree", Demand: "gravity",
				Requests: requests, Seed: uint64(seed) + 500,
				BFactor: factor, Eps: 0.25,
			}
			inst, err := scenario.Generate(scfg)
			if err != nil {
				return nil, err
			}
			b, reqs = inst.B(), len(inst.Requests)
			a, err := core.SolveUFP(inst, eps, &core.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			if err := a.CheckFeasible(inst, false); err != nil {
				return nil, err
			}
			bounded.Add(a.Value)
			routed.Add(float64(len(a.Routed)))
			if a.Value > 0 && !math.IsInf(a.DualBound, 1) {
				certs.Add(a.DualBound / a.Value)
			}
		}
		cert := math.Inf(1)
		if certs.N() > 0 {
			cert = certs.Mean()
		}
		reg.Row(factor, math.Round(b), routed.Mean(), reqs, bounded.Mean(), cert)
	}
	rep.Tables = append(rep.Tables, reg)

	rep.note("capacities follow the log regime B = 1.2·ln(m)/0.25² unless swept; startrees is single-sink (unique paths)")
	rep.note("cert-ratio is the dual-fitting upper bound DualBound/ALG — an instance-specific certificate, not the worst case")
	rep.note("frac is the Garg–Könemann (1-3ε) fractional max-profit flow (ufp/fractional-gk), the Figure 5 LP relaxation the integral solvers are measured against")
	return rep, nil
}
