package experiments

import (
	"strings"
	"testing"
)

// smoke runs every experiment at reduced scale and sanity-checks its
// report structure. Numeric assertions on the underlying claims live in
// the per-package tests; this is the harness integration test.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	cfg := Config{Scale: 0.4, Seeds: 2}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if rep.ID != r.ID {
				t.Fatalf("report ID %q != runner ID %q", rep.ID, r.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatalf("%s produced no tables", r.ID)
			}
			for _, tab := range rep.Tables {
				if tab.NumRows() == 0 {
					t.Fatalf("%s has an empty table %q", r.ID, tab.Title)
				}
			}
			out := rep.String()
			if !strings.Contains(out, r.ID) {
				t.Fatalf("%s: String() missing ID:\n%s", r.ID, out)
			}
			if strings.Contains(out, "NO") {
				t.Fatalf("%s: a verification column failed:\n%s", r.ID, out)
			}
		})
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Scale != 1 || c.Seeds != 3 {
		t.Fatalf("normalize gave %+v", c)
	}
	if got := (Config{Scale: 0.5}).scaleInt(10, 2); got != 5 {
		t.Fatalf("scaleInt = %d, want 5", got)
	}
	if got := (Config{Scale: 0.1}).scaleInt(10, 4); got != 4 {
		t.Fatalf("scaleInt floor = %d, want 4", got)
	}
}

func TestAllHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Title == "" || r.Run == nil {
			t.Fatalf("experiment %s incomplete", r.ID)
		}
	}
}
