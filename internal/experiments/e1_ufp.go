package experiments

import (
	"math"

	"truthfulufp/internal/core"
	"truthfulufp/internal/stats"
	"truthfulufp/internal/workload"
)

// E1Theorem31 measures Bounded-UFP(ε) on random instances in the
// B >= ln(m)/ε² regime across ε and capacity multiples, reporting the
// certified ratio DualBound/ALG against the guarantee (1+6ε)·e/(e-1)
// (Lemma 3.8), plus an exact-OPT column on small instances.
func E1Theorem31(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E1", Title: "Bounded-UFP approximation vs guarantee (Theorem 3.1)"}

	main := stats.NewTable(
		"T1a: random directed instances, B = mult × ln(m)/ε²  (ratio = certified DualBound/ALG, geo-mean over seeds)",
		"eps", "B-mult", "B", "m", "reqs", "ALG", "ratio", "ratio-max", "guarantee", "within")
	for _, eps := range []float64{1.0 / 6, 0.25, 0.4} {
		for _, mult := range []float64{1, 2} {
			vertices := cfg.scaleInt(12, 6)
			edges := cfg.scaleInt(36, 12)
			b := mult * math.Log(float64(edges)) / (eps * eps)
			// Oversubscribe: ~8B demand-units of requests against per-source
			// cuts of ~3B, so selection is genuinely contended.
			requests := cfg.scaleInt(int(11*b), 40)
			ucfg := workload.UFPConfig{
				Vertices: vertices, Edges: edges, Requests: requests, Directed: true,
				B: b, CapSpread: 0.3,
				DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
			}
			var ratios []float64
			var algSum stats.Summary
			for seed := 0; seed < cfg.Seeds; seed++ {
				inst, err := workload.RandomUFP(workload.NewRNG(uint64(seed)*1000+uint64(eps*100)), ucfg)
				if err != nil {
					return nil, err
				}
				a, err := core.BoundedUFP(inst, eps, &core.Options{Workers: cfg.Workers})
				if err != nil {
					return nil, err
				}
				if err := a.CheckFeasible(inst, false); err != nil {
					return nil, err
				}
				algSum.Add(a.Value)
				ratios = append(ratios, a.DualBound/a.Value)
			}
			guarantee := (1 + 6*eps) * eOverEMinus1
			geo := stats.GeometricMean(ratios)
			var worst stats.Summary
			worst.AddAll(ratios)
			main.Row(eps, mult, math.Round(b), edges, requests,
				algSum.Mean(), geo, worst.Max(), guarantee, boolMark(worst.Max() <= guarantee*1.05))
		}
	}
	rep.Tables = append(rep.Tables, main)

	// The paper's model covers undirected graphs too (shared capacity per
	// edge); one configuration confirms the guarantee there as well.
	undir := stats.NewTable(
		"T1a': undirected instances (shared edge capacity), ε = 1/4",
		"B", "m", "reqs", "ALG", "ratio", "guarantee", "within")
	{
		const eps = 0.25
		edges := cfg.scaleInt(36, 12)
		b := math.Log(float64(edges)) / (eps * eps)
		ucfg := workload.UFPConfig{
			Vertices: cfg.scaleInt(12, 6), Edges: edges,
			Requests: cfg.scaleInt(int(11*b), 40), Directed: false,
			B: b, CapSpread: 0.3,
			DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
		}
		var ratios []float64
		var algSum stats.Summary
		for seed := 0; seed < cfg.Seeds; seed++ {
			inst, err := workload.RandomUFP(workload.NewRNG(uint64(seed)+4200), ucfg)
			if err != nil {
				return nil, err
			}
			a, err := core.BoundedUFP(inst, eps, &core.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			if err := a.CheckFeasible(inst, false); err != nil {
				return nil, err
			}
			algSum.Add(a.Value)
			ratios = append(ratios, a.DualBound/a.Value)
		}
		var worst stats.Summary
		worst.AddAll(ratios)
		guarantee := (1 + 6*eps) * eOverEMinus1
		undir.Row(math.Round(b), edges, ucfg.Requests, algSum.Mean(),
			stats.GeometricMean(ratios), guarantee, boolMark(worst.Max() <= guarantee*1.05))
	}
	rep.Tables = append(rep.Tables, undir)

	exact := stats.NewTable(
		"T1b: small instances with exact integral OPT (branch & bound), ε = 0.5",
		"seed", "B", "ALG", "OPT", "OPT/ALG", "dual/ALG", "dual-dominates-OPT")
	// B = 6 with m = 10 keeps e^{ε(B-1)} = e^{2.5} ≈ 12.2 above the
	// initial dual value m, so the loop runs; 15 demand-[0.4,1] requests
	// against B = 6 give real contention while staying small enough for
	// exact branch and bound.
	smallCfg := workload.UFPConfig{
		Vertices: 6, Edges: 10, Requests: 15, Directed: true,
		B: 6, CapSpread: 0.4,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	for seed := 0; seed < cfg.Seeds+2; seed++ {
		inst, err := workload.RandomUFP(workload.NewRNG(uint64(seed)+3000), smallCfg)
		if err != nil {
			return nil, err
		}
		a, err := core.BoundedUFP(inst, 0.5, &core.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		opt, err := core.ExactOPT(inst, 2000)
		if err != nil {
			return nil, err
		}
		ratio := math.Inf(1)
		if a.Value > 0 {
			ratio = opt.Value / a.Value
		}
		exact.Row(seed, smallCfg.B, a.Value, opt.Value, ratio, a.DualBound/math.Max(a.Value, 1e-12),
			boolMark(opt.Value <= a.DualBound+1e-6))
	}
	rep.Tables = append(rep.Tables, exact)

	// Ablation: ε sensitivity on one fixed contended instance. Small ε
	// means gentle price growth but a low stopping threshold e^{ε(B-1)}
	// (fewer iterations); large ε the opposite. The certified ratio traces
	// the trade-off.
	sens := stats.NewTable(
		"T1c: ε-sensitivity ablation on a fixed instance (B = 60)",
		"eps", "threshold-exp", "iterations", "ALG", "cert-ratio")
	sensCfg := workload.UFPConfig{
		Vertices: cfg.scaleInt(10, 6), Edges: cfg.scaleInt(30, 14),
		Requests: cfg.scaleInt(600, 120), Directed: true,
		B: 60, CapSpread: 0.3,
		DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	sensInst, err := workload.RandomUFP(workload.NewRNG(4000), sensCfg)
	if err != nil {
		return nil, err
	}
	for _, eps := range []float64{0.05, 0.1, 1.0 / 6, 0.25, 0.4, 0.7, 1} {
		a, err := core.BoundedUFP(sensInst, eps, &core.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		cert := math.Inf(1)
		if a.Value > 0 {
			cert = a.DualBound / a.Value
		}
		sens.Row(eps, eps*(sensCfg.B-1), a.Iterations, a.Value, cert)
	}
	rep.Tables = append(rep.Tables, sens)
	rep.note("guarantee column is (1+6ε)·e/(e-1) per Lemma 3.8; 'within' allows 5%% dual-fitting slack")
	rep.note("T1b's B = 6 sits below the Ω(ln m) regime: feasibility holds (Lemma 3.3); the formal ratio bound does not apply")
	return rep, nil
}
