package experiments

import (
	"fmt"
	"math"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/mcf"
	"truthfulufp/internal/stats"
	"truthfulufp/internal/workload"
)

// E6Repetitions measures Bounded-UFP-Repeat(ε) against its dual bound
// and the fractional references (exact simplex on small instances,
// Garg-Könemann at scale), plus the m·c_max/d_min iteration bound
// (Theorem 5.1).
func E6Repetitions(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E6", Title: "UFP with repetitions: (1+ε)-approximation (Theorem 5.1)"}

	main := stats.NewTable(
		"T6a: Bounded-UFP-Repeat(ε) vs certified dual bound (B = ln(m)/ε²)",
		"eps", "B", "m", "reqs", "ALG", "dual-ratio", "guarantee(1+6eps)", "within", "iters", "iter-bound")
	for _, eps := range []float64{0.1, 1.0 / 6, 0.25} {
		vertices := cfg.scaleInt(8, 5)
		edges := cfg.scaleInt(20, 10)
		b := math.Log(float64(edges)) / (eps * eps)
		reqs := cfg.scaleInt(8, 4)
		ucfg := workload.UFPConfig{
			Vertices: vertices, Edges: edges, Requests: reqs, Directed: true,
			B: b, CapSpread: 0.3,
			DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
		}
		var ratios, iters []float64
		var algSum stats.Summary
		bound := 0.0
		for seed := 0; seed < cfg.Seeds; seed++ {
			inst, err := workload.RandomUFP(workload.NewRNG(uint64(seed)+7000), ucfg)
			if err != nil {
				return nil, err
			}
			a, err := core.BoundedUFPRepeat(inst, eps, &core.Options{Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			if err := a.CheckFeasible(inst, true); err != nil {
				return nil, err
			}
			algSum.Add(a.Value)
			ratios = append(ratios, a.DualBound/a.Value)
			iters = append(iters, float64(a.Iterations))
			bound = float64(inst.G.NumEdges()) * inst.G.MaxCapacity() / 0.5
		}
		var worstIter, worstRatio stats.Summary
		worstIter.AddAll(iters)
		worstRatio.AddAll(ratios)
		main.Row(eps, math.Round(b), edges, reqs, algSum.Mean(),
			stats.GeometricMean(ratios), 1+6*eps,
			boolMark(worstRatio.Max() <= (1+6*eps)*1.05),
			worstIter.Max(), bound)
	}
	rep.Tables = append(rep.Tables, main)

	frac := stats.NewTable(
		"T6b: repetitions vs fractional references on a small instance (diamond, B sweep)",
		"B", "repeat-ALG", "LP(Fig.5)", "GK(0.1)", "GK-upper", "repeat/LP")
	for _, b := range []float64{60, 120, 240} {
		g := graph.New(4)
		g.AddEdge(0, 1, b)
		g.AddEdge(1, 3, b)
		g.AddEdge(0, 2, b)
		g.AddEdge(2, 3, b)
		inst := &core.Instance{G: g, Requests: []core.Request{
			{Source: 0, Target: 3, Demand: 1, Value: 1},
			{Source: 0, Target: 3, Demand: 0.5, Value: 0.7},
		}}
		a, err := core.BoundedUFPRepeat(inst, 0.1, &core.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		fs, err := core.FractionalUFP(inst, false)
		if err != nil {
			return nil, err
		}
		gk, err := mcf.MaxProfitFlow(inst, 0.1)
		if err != nil {
			return nil, err
		}
		frac.Row(b, a.Value, fs.Objective, gk.Value, gk.UpperBound, a.Value/fs.Objective)
	}
	rep.Tables = append(rep.Tables, frac)
	rep.note("in sharp contrast with E2/E3, the repetitions variant reaches (1+ε) of the fractional optimum")
	return rep, nil
}

// F1LPGap builds the Figure 1 primal/dual LPs on a fixed topology and
// sweeps B: the integrality gap OPT_frac/OPT_int shrinks toward 1 as B
// grows — the paper's motivating observation.
func F1LPGap(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "F1", Title: "Figure 1 LPs: integrality gap vs B"}
	tab := stats.NewTable(
		"TF1: diamond contention instance scaled by B (demands 0.6, so integral packing wastes capacity)",
		"B", "OPT-int", "OPT-frac", "gap", "duality-ok")
	for _, b := range []float64{1, 2, 4, 8, 16} {
		g := graph.New(4)
		g.AddEdge(0, 1, b)
		g.AddEdge(1, 3, b)
		g.AddEdge(0, 2, b)
		g.AddEdge(2, 3, b)
		// Demand-0.6 requests cannot tile a capacity-B path exactly: each
		// path integrally fits floor(B/0.6) requests but fractionally
		// B/0.6, so the gap is ≈ (B/0.6)/floor(B/0.6), shrinking to 1 as
		// B grows.
		inst := &core.Instance{G: g}
		n := int(2*b/0.6) + 2
		for i := 0; i < n; i++ {
			inst.Requests = append(inst.Requests, core.Request{
				Source: 0, Target: 3, Demand: 0.6, Value: 1 + float64(i)*0.01,
			})
		}
		fs, err := core.FractionalUFP(inst, true)
		if err != nil {
			return nil, err
		}
		// The integral optimum is closed-form for this symmetric topology:
		// two disjoint paths each fit floor(B/0.6) requests, so OPT takes
		// the top 2·floor(B/0.6) values. Cross-checked against branch and
		// bound for small B, where B&B is fast.
		fit := 2 * int(b/0.6)
		if fit > n {
			fit = n
		}
		optInt := 0.0
		for i := 0; i < fit; i++ {
			optInt += 1 + float64(n-1-i)*0.01
		}
		if b <= 2 {
			bb, err := core.ExactOPT(inst, 0)
			if err != nil {
				return nil, err
			}
			if math.Abs(bb.Value-optInt) > 1e-6 {
				return nil, fmt.Errorf("F1: closed-form OPT %g != branch-and-bound %g at B=%g", optInt, bb.Value, b)
			}
		}
		gap := fs.Objective / optInt
		tab.Row(b, optInt, fs.Objective, gap, boolMark(fs.Objective >= optInt-1e-6))
	}
	rep.Tables = append(rep.Tables, tab)
	rep.note("gap -> 1 as B grows: the 1+ε integrality gap for B = Ω(ln m) that motivates the whole paper")
	return rep, nil
}
