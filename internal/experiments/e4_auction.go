package experiments

import (
	"math"
	"math/rand/v2"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/lowerbound"
	"truthfulufp/internal/stats"
)

func auctionRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xabcdef)) }

// E4MUCA measures Bounded-MUCA(ε) on random auctions in the
// B >= ln(m)/ε² regime (Theorem 4.1), against the dual bound, the exact
// optimum (small instances), and the greedy/sequential baselines.
func E4MUCA(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E4", Title: "Bounded-MUCA approximation vs guarantee (Theorem 4.1)"}

	main := stats.NewTable(
		"T4a: random auctions, B = mult × ln(m)/ε²",
		"eps", "B-mult", "B", "items", "reqs", "ALG", "ratio", "guarantee", "within")
	for _, eps := range []float64{1.0 / 6, 0.25, 0.4} {
		for _, mult := range []float64{1, 2} {
			items := cfg.scaleInt(20, 10)
			b := mult * math.Log(float64(items)) / (eps * eps)
			// ~8B requests × ~4 items each oversubscribe the ~23B item
			// copies, so the auction is genuinely contended.
			requests := cfg.scaleInt(int(8*b), 40)
			acfg := auction.RandomConfig{
				Items: items, Requests: requests, B: b, MultSpread: 0.3,
				BundleMin: 2, BundleMax: 6, ValueMin: 0.5, ValueMax: 1.5,
			}
			var ratios []float64
			var algSum stats.Summary
			for seed := 0; seed < cfg.Seeds; seed++ {
				inst, err := auction.RandomInstance(auctionRNG(uint64(seed)+uint64(eps*1e4)), acfg)
				if err != nil {
					return nil, err
				}
				a, err := auction.BoundedMUCA(inst, eps, nil)
				if err != nil {
					return nil, err
				}
				if err := a.CheckFeasible(inst); err != nil {
					return nil, err
				}
				algSum.Add(a.Value)
				ratios = append(ratios, a.DualBound/a.Value)
			}
			guarantee := (1 + 6*eps) * eOverEMinus1
			var worst stats.Summary
			worst.AddAll(ratios)
			main.Row(eps, mult, math.Round(b), items, requests,
				algSum.Mean(), stats.GeometricMean(ratios), guarantee, boolMark(worst.Max() <= guarantee*1.05))
		}
	}
	rep.Tables = append(rep.Tables, main)

	exact := stats.NewTable(
		"T4b: small contended auctions with exact OPT and baselines (ε = 0.5)",
		"seed", "OPT", "LP", "bounded-muca", "greedy-value", "greedy-density", "sequential")
	// B = 8 with 8 items keeps e^{ε(B-1)} = e^{3.5} ≈ 33 above the
	// initial dual value m = 8; 40 bundle requests against ~80 item
	// copies give real contention.
	smallCfg := auction.RandomConfig{
		Items: 8, Requests: 40, B: 8, MultSpread: 0.5,
		BundleMin: 1, BundleMax: 4, ValueMin: 0.5, ValueMax: 1.5,
	}
	for seed := 0; seed < cfg.Seeds+2; seed++ {
		inst, err := auction.RandomInstance(auctionRNG(uint64(seed)+900), smallCfg)
		if err != nil {
			return nil, err
		}
		opt, _, err := auction.ExactOPT(inst)
		if err != nil {
			return nil, err
		}
		lpv, err := auction.LPBound(inst)
		if err != nil {
			return nil, err
		}
		bm, err := auction.BoundedMUCA(inst, 0.5, nil)
		if err != nil {
			return nil, err
		}
		gv, err := auction.GreedyByValue(inst)
		if err != nil {
			return nil, err
		}
		gd, err := auction.GreedyByValuePerItem(inst)
		if err != nil {
			return nil, err
		}
		sq, err := auction.SequentialPrimalDual(inst, 0.5)
		if err != nil {
			return nil, err
		}
		exact.Row(seed, opt, lpv, bm.Value, gv.Value, gd.Value, sq.Value)
	}
	rep.Tables = append(rep.Tables, exact)
	rep.note("T4b's B = 8 is far below ln(m)/ε²: the dual threshold stops Bounded-MUCA early and the greedy baselines win — the flip side of the worst-case guarantee, visible only out of regime (in-regime rows are T4a)")
	return rep, nil
}

// E5MUCAGrid sweeps the Figure 4 family over p: reasonable bundle
// minimizers reach exactly (3p+1)B/4 versus OPT = pB, ratio 4p/(3p+1)
// -> 4/3 (Theorem 4.5).
func E5MUCAGrid(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E5", Title: "MUCA grid 4/3 lower bound (Figure 4, Theorem 4.5)"}
	tab := stats.NewTable(
		"T5a: exp bundle rule on muca-grid(p, B)",
		"p", "B", "items", "OPT", "predicted-ALG", "ALG", "ratio", "limit-4/3", "exact-match")
	bs := []int{4, 4, 4, 2, 2}
	for k, p := range []int{3, 5, 7, 9, 11} {
		b := bs[k]
		f := lowerbound.MUCAGrid(p, b)
		a, err := auction.IterativeBundleMin(f.Inst, auction.BundleEngineOptions{
			Rule: auction.ExpBundleRule{}, Eps: 0.5, FeasibleOnly: true,
		})
		if err != nil {
			return nil, err
		}
		if err := a.CheckFeasible(f.Inst); err != nil {
			return nil, err
		}
		tab.Row(p, b, f.Inst.NumItems(), f.OPT, f.PredictedALG, a.Value,
			f.OPT/a.Value, 4.0/3.0, boolMark(a.Value == f.PredictedALG))
	}
	rep.Tables = append(rep.Tables, tab)

	rules := stats.NewTable(
		"T5b: every reasonable bundle rule on muca-grid(5, 4)",
		"rule", "OPT", "ALG", "ratio")
	f := lowerbound.MUCAGrid(5, 4)
	for _, rule := range auction.AllBundleRules() {
		a, err := auction.IterativeBundleMin(f.Inst, auction.BundleEngineOptions{
			Rule: rule, Eps: 0.5, FeasibleOnly: true,
		})
		if err != nil {
			return nil, err
		}
		rules.Row(rule.Name(), f.OPT, a.Value, f.OPT/a.Value)
	}
	rep.Tables = append(rep.Tables, rules)
	rep.note("ratio 4p/(3p+1) approaches 4/3 as p grows, matching Theorem 4.5")
	return rep, nil
}
