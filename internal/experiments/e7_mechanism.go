package experiments

import (
	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/mechanism"
	"truthfulufp/internal/stats"
	"truthfulufp/internal/workload"
)

// E7Truthfulness runs the critical-value mechanisms end to end:
// individual rationality, threshold payments, and adversarial misreport
// searches for both the UFP mechanism (Corollary 3.2) and the auction
// mechanism (Corollary 4.2).
func E7Truthfulness(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E7", Title: "Truthful mechanisms via critical-value payments (Theorem 2.3)"}

	ufpTab := stats.NewTable(
		"T7a: UFP mechanism (Bounded-UFP + critical values) on a contended bottleneck",
		"seed", "winners", "losers", "revenue", "max-pay/value", "IR-ok", "best-misreport-gain")
	// Two capacity-15/18 links in series with ~26 demand-units of
	// requests: roughly 40% of agents must lose, so critical payments
	// are strictly positive. (B = 15 keeps the ε = 0.25 dual threshold
	// e^{3.5} ≈ 33 above m = 2.)
	requests := cfg.scaleInt(40, 16)
	buildUFP := func(seed uint64) *core.Instance {
		rng := workload.NewRNG(seed + 5000)
		g := graph.New(3)
		g.AddEdge(0, 1, 15)
		g.AddEdge(1, 2, 18)
		inst := &core.Instance{G: g}
		segments := [][2]int{{0, 2}, {0, 1}, {1, 2}}
		for i := 0; i < requests; i++ {
			seg := segments[rng.IntN(len(segments))]
			inst.Requests = append(inst.Requests, core.Request{
				Source: seg[0], Target: seg[1],
				Demand: 0.3 + 0.7*rng.Float64(),
				Value:  0.5 + 1.5*rng.Float64(),
			})
		}
		return inst
	}
	alg := mechanism.BoundedUFPAlg(0.25, &core.Options{Workers: cfg.Workers})
	for seed := 0; seed < cfg.Seeds; seed++ {
		inst := buildUFP(uint64(seed))
		out, err := mechanism.RunUFPMechanism(alg, inst)
		if err != nil {
			return nil, err
		}
		revenue, maxFrac := 0.0, 0.0
		irOK := true
		for r, pay := range out.Payments {
			revenue += pay
			if f := pay / inst.Requests[r].Value; f > maxFrac {
				maxFrac = f
			}
			if pay < -1e-9 || pay > inst.Requests[r].Value*(1+1e-6) {
				irOK = false
			}
		}
		// Adversarial misreports for a few agents.
		rng := workload.NewRNG(uint64(seed) + 5500)
		bestGain := 0.0
		for agent := 0; agent < len(inst.Requests); agent += 5 {
			gain, _, err := mechanism.UFPMisreportGain(alg, inst, agent, rng, 6)
			if err != nil {
				return nil, err
			}
			if gain > bestGain {
				bestGain = gain
			}
		}
		ufpTab.Row(seed, len(out.Payments), len(inst.Requests)-len(out.Payments),
			revenue, maxFrac, boolMark(irOK), bestGain)
	}
	rep.Tables = append(rep.Tables, ufpTab)

	aucTab := stats.NewTable(
		"T7b: auction mechanism (Bounded-MUCA + critical values, unknown single-minded)",
		"seed", "winners", "revenue", "IR-ok", "best-misreport-gain")
	// 4 items × 20 copies against ~60 × 2.5 bundle-item demand: about
	// half the bidders must lose.
	acfg := auction.RandomConfig{
		Items: 4, Requests: cfg.scaleInt(60, 24),
		B: 20, MultSpread: 0.3,
		BundleMin: 1, BundleMax: 3, ValueMin: 0.5, ValueMax: 1.5,
	}
	aalg := mechanism.BoundedMUCAAlg(0.25, nil)
	for seed := 0; seed < cfg.Seeds; seed++ {
		inst, err := auction.RandomInstance(auctionRNG(uint64(seed)+6000), acfg)
		if err != nil {
			return nil, err
		}
		out, err := mechanism.RunAuctionMechanism(aalg, inst)
		if err != nil {
			return nil, err
		}
		revenue := 0.0
		irOK := true
		for r, pay := range out.Payments {
			revenue += pay
			if pay < -1e-9 || pay > inst.Requests[r].Value*(1+1e-6) {
				irOK = false
			}
		}
		rng := workload.NewRNG(uint64(seed) + 6500)
		bestGain := 0.0
		for agent := 0; agent < len(inst.Requests); agent += 5 {
			gain, err := mechanism.AuctionMisreportGain(aalg, inst, agent, rng, 6)
			if err != nil {
				return nil, err
			}
			if gain > bestGain {
				bestGain = gain
			}
		}
		aucTab.Row(seed, len(out.Payments), revenue, boolMark(irOK), bestGain)
	}
	rep.Tables = append(rep.Tables, aucTab)
	rep.note("misreport gains stay at ~0 (bisection tolerance): no profitable lie found, matching Theorem 2.3")
	return rep, nil
}

// E8Rounding demonstrates why randomized rounding — despite matching the
// 1+ε integrality gap — cannot be used truthfully: the witness search
// finds explicit monotonicity violations for it, and none for
// Bounded-UFP.
func E8Rounding(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E8", Title: "Randomized rounding: near-optimal value, but non-monotone"}

	val := stats.NewTable(
		"T8a: value comparison on small instances (fractional OPT as reference)",
		"seed", "frac-OPT", "rounding", "bounded-ufp", "rounding/frac")
	// B = 30 keeps Bounded-UFP's dual threshold above m = 12; 25
	// demand-[0.3,1] requests contend for B-unit cuts.
	ucfg := workload.UFPConfig{
		Vertices: 6, Edges: 12, Requests: cfg.scaleInt(25, 12), Directed: true,
		B: 30, CapSpread: 0.4,
		DemandMin: 0.3, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	for seed := 0; seed < cfg.Seeds; seed++ {
		inst, err := workload.RandomUFP(workload.NewRNG(uint64(seed)+8000), ucfg)
		if err != nil {
			return nil, err
		}
		fs, err := core.FractionalUFP(inst, true)
		if err != nil {
			return nil, err
		}
		rr, err := core.RandomizedRounding(inst, workload.NewRNG(uint64(seed)), core.RoundingOptions{})
		if err != nil {
			return nil, err
		}
		bu, err := core.BoundedUFP(inst, 0.25, &core.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		val.Row(seed, fs.Objective, rr.Value, bu.Value, rr.Value/fs.Objective)
	}
	rep.Tables = append(rep.Tables, val)

	// The witness search uses the tight-capacity regime (B = 3), where
	// the LP rounds fractionally and perturbing one declaration visibly
	// reshuffles the draws.
	witCfg := workload.UFPConfig{
		Vertices: 6, Edges: 12, Requests: 10, Directed: true,
		B: 3, CapSpread: 0.4,
		DemandMin: 0.4, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	wit := stats.NewTable(
		"T8b: monotonicity witness search (60 trials per instance)",
		"algorithm", "instances", "violations-found", "example")
	roundingAlg := func(inst *core.Instance) (*core.Allocation, error) {
		return core.RandomizedRounding(inst, workload.NewRNG(1234), core.RoundingOptions{})
	}
	boundedAlg := mechanism.BoundedUFPAlg(0.25, &core.Options{Workers: cfg.Workers})
	instances := cfg.Seeds + 7
	for _, algRow := range []struct {
		name string
		alg  mechanism.UFPAlgorithm
		cfg  workload.UFPConfig // each algorithm probed in the regime where it allocates
	}{{"randomized-rounding", roundingAlg, witCfg}, {"bounded-ufp", boundedAlg, ucfg}} {
		found := 0
		example := "-"
		for seed := 0; seed < instances; seed++ {
			inst, err := workload.RandomUFP(workload.NewRNG(uint64(seed)+60), algRow.cfg)
			if err != nil {
				return nil, err
			}
			w, err := mechanism.FindUFPMonotonicityViolation(algRow.alg, inst, workload.NewRNG(uint64(seed)), 60)
			if err != nil {
				return nil, err
			}
			if w != nil {
				found++
				if example == "-" {
					example = w.String()
				}
			}
		}
		wit.Row(algRow.name, instances, found, example)
	}
	rep.Tables = append(rep.Tables, wit)
	rep.note("rounding attains near-fractional value yet admits monotonicity violations; Bounded-UFP shows none")
	return rep, nil
}
