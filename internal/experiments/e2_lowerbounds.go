package experiments

import (
	"truthfulufp/internal/core"
	"truthfulufp/internal/lowerbound"
	"truthfulufp/internal/stats"
)

// E2Staircase runs the Figure 2 staircase family through every
// reasonable rule, reporting ALG against the predicted
// Bℓ(1-(B/(B+1))^B) and the ratio against e/(e-1) (Theorem 3.11).
func E2Staircase(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E2", Title: "Staircase lower bound (Figure 2, Theorem 3.11)"}

	series := stats.NewTable(
		"T2a: exp rule (the paper's h) on staircase(l, B): ratio approaches e/(e-1) ≈ 1.582 from above",
		"l", "B", "OPT", "predicted-ALG", "ALG", "ratio", "predicted-ratio", "within-slack")
	type point struct{ l, b int }
	points := []point{
		{cfg.scaleInt(16, 8), 2},
		{cfg.scaleInt(20, 10), 4},
		{cfg.scaleInt(24, 10), 6},
		{cfg.scaleInt(32, 12), 8},
		{cfg.scaleInt(40, 12), 10},
	}
	for _, pt := range points {
		f := lowerbound.Staircase(pt.l, pt.b)
		a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
			Rule: &core.ExpRule{}, Eps: 0.5, FeasibleOnly: true, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		if err := a.CheckFeasible(f.Inst, false); err != nil {
			return nil, err
		}
		within := a.Value <= f.PredictedALG+f.Slack && a.Value >= f.PredictedALG-f.Slack
		series.Row(pt.l, pt.b, f.OPT, f.PredictedALG, a.Value,
			f.OPT/a.Value, lowerbound.StaircaseRatio(float64(pt.b)), boolMark(within))
	}
	rep.Tables = append(rep.Tables, series)

	rules := stats.NewTable(
		"T2b: price-sensitive reasonable rules on the perturbed staircase",
		"rule", "l", "B", "OPT", "ALG", "ratio")
	l, b := cfg.scaleInt(20, 10), 5
	f := lowerbound.Staircase(l, b)
	for _, rule := range []core.Rule{&core.ExpRule{}, &core.LogHopsRule{}, &core.BottleneckRule{}} {
		a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
			Rule: rule, Eps: 0.5, FeasibleOnly: true, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		rules.Row(rule.Name(), l, b, f.OPT, a.Value, f.OPT/a.Value)
	}
	rep.Tables = append(rep.Tables, rules)

	// Load-blind rules (pure hop count) are not trapped by the capacity
	// perturbation; the paper's subdivided hardening forces them too.
	sub := stats.NewTable(
		"T2c: subdivided staircase (no tie-break assumption; traps load-blind rules too)",
		"rule", "l", "B", "OPT", "ALG", "ratio")
	sl, sb := cfg.scaleInt(6, 4), 3
	sf := lowerbound.StaircaseSubdivided(sl, sb)
	for _, rule := range []core.Rule{&core.ExpRule{}, &core.HopRule{}} {
		sa, err := core.IterativePathMin(sf.Inst, core.EngineOptions{
			Rule: rule, Eps: 1, FeasibleOnly: true, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		sub.Row(rule.Name(), sl, sb, sf.OPT, sa.Value, sf.OPT/sa.Value)
	}
	rep.Tables = append(rep.Tables, sub)

	// Ablation: flip only the tie-breaking perturbation. At B = 1 the
	// adversarial run is pinned at ratio 2 while the benevolent run is
	// optimal — the bound is about worst-case tie-breaking.
	abl := stats.NewTable(
		"T2d: tie-break ablation (same topology, perturbation reversed)",
		"variant", "l", "B", "OPT", "ALG", "ratio")
	al := cfg.scaleInt(16, 8)
	for _, v := range []struct {
		name string
		fam  *lowerbound.UFPFamily
	}{
		{"adversarial(j-max)", lowerbound.Staircase(al, 1)},
		{"benevolent(j-min)", lowerbound.StaircaseBenevolent(al, 1)},
	} {
		a, err := core.IterativePathMin(v.fam.Inst, core.EngineOptions{
			Rule: &core.ExpRule{}, Eps: 0.5, FeasibleOnly: true, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		abl.Row(v.name, al, 1, v.fam.OPT, a.Value, v.fam.OPT/a.Value)
	}
	rep.Tables = append(rep.Tables, abl)
	rep.note("predicted-ALG is Bl(1-(B/(B+1))^B); slack is the paper's B² integrality correction")
	return rep, nil
}

// E3SevenVertex runs the Figure 3 instance across capacities: the
// adversarial run achieves exactly 3B versus OPT = 4B for every even B —
// no PTAS from the family even with arbitrarily large capacities
// (Theorem 3.12).
func E3SevenVertex(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E3", Title: "Seven-vertex 4/3 lower bound (Figure 3, Theorem 3.12)"}
	tab := stats.NewTable(
		"T3: seven-vertex instance, exp rule: ALG = 3B for every B",
		"B", "OPT", "ALG", "ratio", "exactly-3B")
	for _, b := range []int{2, 4, 8, 16, 32, 64} {
		f := lowerbound.SevenVertex(b)
		a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
			Rule: &core.ExpRule{}, Eps: 0.1, FeasibleOnly: true, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		if err := a.CheckFeasible(f.Inst, false); err != nil {
			return nil, err
		}
		tab.Row(b, f.OPT, a.Value, f.OPT/a.Value, boolMark(a.Value == f.PredictedALG))
	}
	rep.Tables = append(rep.Tables, tab)
	rep.note("ratio stays 4/3 however large B grows: capacity slack does not rescue iterative path minimizers")
	return rep, nil
}
