// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md's per-experiment index (E1-E9, F1), each
// regenerating the series its theorem or figure predicts. The cmd/ufpbench
// binary prints the full-scale reports; the repository's bench_test.go
// wraps the same functions at reduced scale.
package experiments

import (
	"fmt"
	"math"

	"truthfulufp/internal/stats"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale in (0, 1] shrinks workload sizes for quick runs; 1 is the
	// paper-scale default.
	Scale float64
	// Seeds is the number of random instances per configuration point
	// (default 3).
	Seeds int
	// Workers bounds parallelism inside solvers (0 = GOMAXPROCS).
	Workers int
	// Scenario, if set, restricts the S1 catalog sweep to one topology
	// family (other experiments ignore it).
	Scenario string
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1, Seeds: 3} }

func (c Config) normalize() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	return c
}

// scaleInt shrinks n by the configured scale with a floor.
func (c Config) scaleInt(n, floor int) int {
	v := int(math.Round(float64(n) * c.Scale))
	if v < floor {
		return floor
	}
	return v
}

// Report is the outcome of one experiment: tables plus free-form notes
// (predictions, verdicts).
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

func (r *Report) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner is an experiment entry point.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{"E1", "Theorem 3.1: Bounded-UFP approximation on random instances", E1Theorem31},
		{"E2", "Theorem 3.11 / Figure 2: staircase lower bound", E2Staircase},
		{"E3", "Theorem 3.12 / Figure 3: seven-vertex 4/3 lower bound", E3SevenVertex},
		{"E4", "Theorem 4.1: Bounded-MUCA approximation on random auctions", E4MUCA},
		{"E5", "Theorem 4.5 / Figure 4: MUCA grid 4/3 lower bound", E5MUCAGrid},
		{"E6", "Theorem 5.1: unsplittable flow with repetitions", E6Repetitions},
		{"E7", "Theorem 2.3 / Corollaries 3.2, 4.2: truthful mechanisms", E7Truthfulness},
		{"E8", "Section 1: randomized rounding is non-monotone", E8Rounding},
		{"E9", "Section 1.1: algorithm comparison across families", E9Comparison},
		{"F1", "Figure 1: LP relaxation and integrality gap vs B", F1LPGap},
		{"S1", "Scenario catalog: Bounded-UFP vs baselines across topology × demand families", S1Scenarios},
	}
}

// eOverEMinus1 is the paper's headline ratio e/(e-1) ≈ 1.582.
var eOverEMinus1 = math.E / (math.E - 1)

func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
