package experiments

import (
	"math"

	"truthfulufp/internal/core"
	"truthfulufp/internal/lowerbound"
	"truthfulufp/internal/stats"
	"truthfulufp/internal/workload"
)

// E9Comparison runs the head-to-head the paper's Section 1.1 claims:
// Bounded-UFP (≈ e/(e-1), truthful) versus the sequential primal-dual
// stand-in for prior art (≈ e, truthful), value-density greedy
// (heuristic), and randomized rounding (≈ 1+ε, NOT truthful), across
// three instance families. Ratios are against the best certified upper
// bound available for the family.
func E9Comparison(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rep := &Report{ID: "E9", Title: "Algorithm comparison across instance families (Section 1.1)"}

	const eps = 0.25
	type algo struct {
		name string
		run  func(inst *core.Instance, seed uint64) (*core.Allocation, error)
	}
	algos := []algo{
		{"bounded-ufp", func(inst *core.Instance, _ uint64) (*core.Allocation, error) {
			return core.BoundedUFP(inst, eps, &core.Options{Workers: cfg.Workers})
		}},
		{"sequential-pd", func(inst *core.Instance, _ uint64) (*core.Allocation, error) {
			return core.SequentialPrimalDual(inst, eps, nil)
		}},
		{"greedy-density", func(inst *core.Instance, _ uint64) (*core.Allocation, error) {
			return core.GreedyByDensity(inst, nil)
		}},
	}

	random := stats.NewTable(
		"T9a: random directed instances (B = 40, heavy oversubscription; bound = Bounded-UFP dual bound)",
		"algorithm", "value", "value/bound", "truthful")
	ucfg := workload.UFPConfig{
		Vertices: cfg.scaleInt(12, 8), Edges: cfg.scaleInt(36, 16),
		Requests: cfg.scaleInt(450, 120), Directed: true,
		B: 40, CapSpread: 0.3,
		DemandMin: 0.5, DemandMax: 1, ValueMin: 0.5, ValueMax: 2,
	}
	sums := make([]stats.Summary, len(algos))
	var boundSum stats.Summary
	for seed := 0; seed < cfg.Seeds; seed++ {
		inst, err := workload.RandomUFP(workload.NewRNG(uint64(seed)+9000), ucfg)
		if err != nil {
			return nil, err
		}
		var dualBound float64
		for k, al := range algos {
			a, err := al.run(inst, uint64(seed))
			if err != nil {
				return nil, err
			}
			if err := a.CheckFeasible(inst, false); err != nil {
				return nil, err
			}
			sums[k].Add(a.Value)
			if k == 0 {
				dualBound = a.DualBound
			}
		}
		boundSum.Add(dualBound)
	}
	truthfulMark := []string{"yes", "yes", "no"}
	for k, al := range algos {
		random.Row(al.name, sums[k].Mean(), sums[k].Mean()/boundSum.Mean(), truthfulMark[k])
	}
	rep.Tables = append(rep.Tables, random)

	// On the adversarial families, Bounded-UFP proper is represented by
	// its footnote-2 execution (capacity stop): the families have B far
	// below ln(m)/ε², where the dual threshold would halt the loop before
	// its first iteration.
	families := stats.NewTable(
		"T9b: adversarial families (value / OPT; higher is better)",
		"algorithm", "staircase(16,6)", "seven-vertex(8)")
	l, b := cfg.scaleInt(16, 8), 6
	stair := lowerbound.Staircase(l, b)
	seven := lowerbound.SevenVertex(8)
	famAlgos := []struct {
		name string
		run  func(inst *core.Instance) (*core.Allocation, error)
	}{
		{"bounded-ufp(cap-stop)", func(inst *core.Instance) (*core.Allocation, error) {
			return core.IterativePathMin(inst, core.EngineOptions{
				Rule: &core.ExpRule{}, Eps: 0.5, FeasibleOnly: true, Workers: cfg.Workers,
			})
		}},
		{"sequential-pd", func(inst *core.Instance) (*core.Allocation, error) {
			return core.SequentialPrimalDual(inst, eps, nil)
		}},
		{"greedy-density", func(inst *core.Instance) (*core.Allocation, error) {
			return core.GreedyByDensity(inst, nil)
		}},
	}
	for _, al := range famAlgos {
		row := []any{al.name}
		for _, fam := range []*lowerbound.UFPFamily{stair, seven} {
			a, err := al.run(fam.Inst)
			if err != nil {
				return nil, err
			}
			row = append(row, a.Value/fam.OPT)
		}
		families.Row(row...)
	}
	rep.Tables = append(rep.Tables, families)
	rep.note("e/(e-1) ≈ %.4f and e ≈ %.4f are the theoretical targets; 1-1/e ≈ %.4f is the staircase satisfaction limit",
		eOverEMinus1, math.E, 1-1/math.E)
	return rep, nil
}
