// Package lowerbound constructs the paper's lower-bound instance
// families and their theoretical predictions:
//
//   - Staircase (Figure 2, Theorem 3.11): a directed instance on which
//     every reasonable iterative path minimizing algorithm satisfies at
//     most ≈ Bℓ(1-(B/(B+1))^B) of the OPT = Bℓ value, so its ratio
//     approaches e/(e-1).
//   - StaircaseSubdivided: the paper's hardened variant that replaces
//     each (s_i, v_j) edge with a path of iℓ+1-j edges, removing the
//     tie-breaking assumption (any reasonable rule then strictly prefers
//     large j and small i).
//   - SevenVertex (Figure 3, Theorem 3.12): an undirected instance with
//     arbitrarily large capacities forcing value 3B versus OPT = 4B.
//   - MUCAGrid (Figure 4, Theorem 4.5): an auction instance forcing
//     reasonable bundle minimizers to (3p+1)B/4 versus OPT = pB.
//
// The paper's proofs assume an adversarial tie-break ("the algorithm may
// select ..."). The plain Staircase and SevenVertex generators realize
// that choice with an infinitesimal capacity perturbation (documented in
// DESIGN.md): preferred edges get capacity scaled by (1+δ), δ = 1e-7, so
// the shortest-path oracle strictly prefers them while the packing
// structure is unchanged. StaircaseSubdivided needs no perturbation,
// exactly as in the paper.
package lowerbound

import (
	"fmt"
	"math"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
)

// perturb is the relative capacity nudge that realizes the adversarial
// tie-break: large enough to dominate floating-point tie tolerance,
// small enough not to change any integral packing.
const perturb = 1e-7

// UFPFamily is a UFP lower-bound instance with its ground truth.
type UFPFamily struct {
	Name string
	Inst *core.Instance
	// OPT is the exact optimal value (achieved by an explicit routing).
	OPT float64
	// PredictedALG is the value the paper's analysis predicts for a
	// reasonable iterative path minimizing algorithm (upper bound, up to
	// the stated integrality slack).
	PredictedALG float64
	// Slack is the additive integrality correction of the prediction
	// (B² for the staircase, 0 for the seven-vertex instance).
	Slack float64
}

// StaircaseRatio is the paper's predicted satisfaction deficit: a
// reasonable algorithm satisfies at most the fraction 1-(B/(B+1))^B of
// requests, so its ratio approaches 1/(1-1/e) = e/(e-1) as B grows.
func StaircaseRatio(b float64) float64 {
	return 1 / (1 - math.Pow(b/(b+1), b))
}

// Staircase builds the Figure 2 instance with ℓ source blocks and
// capacity B: vertices s_1..s_ℓ, v_1..v_ℓ, t; edges (s_i, v_j) for j >=
// i and (v_j, t), all of capacity B; and B unit requests (s_i, t, 1, 1)
// per block. The (s_i, v_j) edges carry the (1+jδ) perturbation so the
// oracle prefers j maximal, and request order makes i minimal win ties —
// the adversarial run of Theorem 3.11.
func Staircase(l, b int) *UFPFamily {
	if l < 1 || b < 1 {
		panic(fmt.Sprintf("lowerbound: Staircase(%d, %d) needs l, b >= 1", l, b))
	}
	g := graph.New(2*l + 1)
	sID := func(i int) int { return i - 1 }     // s_i, i in 1..l
	vID := func(j int) int { return l + j - 1 } // v_j, j in 1..l
	t := 2 * l
	B := float64(b)
	for j := 1; j <= l; j++ {
		g.AddEdge(vID(j), t, B)
	}
	for i := 1; i <= l; i++ {
		// Descending j also places preferred arcs first in adjacency.
		for j := l; j >= i; j-- {
			g.AddEdge(sID(i), vID(j), B*(1+float64(j)*perturb))
		}
	}
	inst := &core.Instance{G: g}
	for i := 1; i <= l; i++ {
		for k := 0; k < b; k++ {
			inst.Requests = append(inst.Requests, core.Request{Source: sID(i), Target: t, Demand: 1, Value: 1})
		}
	}
	predicted := B * float64(l) * (1 - math.Pow(B/(B+1), B))
	return &UFPFamily{
		Name:         fmt.Sprintf("staircase(l=%d,B=%d)", l, b),
		Inst:         inst,
		OPT:          B * float64(l),
		PredictedALG: predicted,
		Slack:        B * B,
	}
}

// StaircaseBenevolent is the tie-break ablation for the Figure 2 family:
// the identical staircase topology and request set, but with the
// perturbation reversed so the shortest-path oracle prefers j MINIMAL —
// the optimum-friendly choice (OPT routes block i via v_i). At B = 1 a
// reasonable algorithm then tracks the optimal assignment exactly and
// the e/(e-1) gap disappears; for larger B the exponential rule's
// load-spreading keeps some gap but the benevolent run still strictly
// beats the adversarial one. This demonstrates that Theorem 3.11's
// lower bound hinges on the adversarial "j maximal" tie-breaking (the
// paper's "decisions assumption", which the subdivided variant removes).
// PredictedALG is OPT, exact at B = 1.
func StaircaseBenevolent(l, b int) *UFPFamily {
	if l < 1 || b < 1 {
		panic(fmt.Sprintf("lowerbound: StaircaseBenevolent(%d, %d) needs l, b >= 1", l, b))
	}
	g := graph.New(2*l + 1)
	sID := func(i int) int { return i - 1 }
	vID := func(j int) int { return l + j - 1 }
	t := 2 * l
	B := float64(b)
	for j := 1; j <= l; j++ {
		g.AddEdge(vID(j), t, B)
	}
	for i := 1; i <= l; i++ {
		// Ascending j, and capacity growing as j shrinks: low j is
		// strictly cheaper and first in adjacency.
		for j := i; j <= l; j++ {
			g.AddEdge(sID(i), vID(j), B*(1+float64(l-j+1)*perturb))
		}
	}
	inst := &core.Instance{G: g}
	for i := 1; i <= l; i++ {
		for k := 0; k < b; k++ {
			inst.Requests = append(inst.Requests, core.Request{Source: sID(i), Target: t, Demand: 1, Value: 1})
		}
	}
	return &UFPFamily{
		Name:         fmt.Sprintf("staircase-benevolent(l=%d,B=%d)", l, b),
		Inst:         inst,
		OPT:          B * float64(l),
		PredictedALG: B * float64(l), // the gap vanishes
		Slack:        0,
	}
}

// StaircaseSubdivided builds the hardened Figure 2 variant: every
// (s_i, v_j) edge is a directed path of iℓ+1-j unit-capacity-B edges, so
// any reasonable rule strictly prefers small i and large j without tie
// assumptions. The graph has Θ(ℓ³) edges; keep ℓ modest.
func StaircaseSubdivided(l, b int) *UFPFamily {
	if l < 1 || b < 1 {
		panic(fmt.Sprintf("lowerbound: StaircaseSubdivided(%d, %d) needs l, b >= 1", l, b))
	}
	g := graph.New(2*l + 1)
	sID := func(i int) int { return i - 1 }
	vID := func(j int) int { return l + j - 1 }
	t := 2 * l
	B := float64(b)
	for j := 1; j <= l; j++ {
		g.AddEdge(vID(j), t, B)
	}
	for i := 1; i <= l; i++ {
		for j := l; j >= i; j-- {
			id := g.AddEdge(sID(i), vID(j), B)
			if k := i*l + 1 - j; k > 1 {
				g.SubdivideEdge(id, k)
			}
		}
	}
	inst := &core.Instance{G: g}
	for i := 1; i <= l; i++ {
		for k := 0; k < b; k++ {
			inst.Requests = append(inst.Requests, core.Request{Source: sID(i), Target: t, Demand: 1, Value: 1})
		}
	}
	predicted := B * float64(l) * (1 - math.Pow(B/(B+1), B))
	return &UFPFamily{
		Name:         fmt.Sprintf("staircase-subdivided(l=%d,B=%d)", l, b),
		Inst:         inst,
		OPT:          B * float64(l),
		PredictedALG: predicted,
		Slack:        B * B,
	}
}

// StaircaseOPTRouting returns the optimal routing of a Staircase
// instance: request block i routes via v_i (paths (s_i, v_i, t)). It
// certifies OPT = Bℓ and doubles as a fixture for feasibility tests.
// Only valid for the non-subdivided family.
func StaircaseOPTRouting(f *UFPFamily, l, b int) []core.Routed {
	g := f.Inst.G
	t := 2 * l
	// Edge lookup: adjacency was built descending in j.
	findEdge := func(from, to int) int {
		for _, a := range g.OutArcs(from) {
			if a.To == to {
				return a.Edge
			}
		}
		panic("lowerbound: missing staircase edge")
	}
	var out []core.Routed
	for i := 1; i <= l; i++ {
		s, v := i-1, l+i-1
		e1 := findEdge(s, v)
		e2 := findEdge(v, t)
		for k := 0; k < b; k++ {
			out = append(out, core.Routed{Request: (i-1)*b + k, Path: []int{e1, e2}})
		}
	}
	return out
}

// SevenVertex builds the Figure 3 instance for an even capacity B: the
// undirected 7-vertex graph with uniform capacity B and four request
// blocks of B unit requests each — (v1,v3), (v4,v6), (v1,v6), (v3,v4) —
// in an order that makes the paper's adversarial run the tie-broken one.
// The four v7-incident edges carry the (1+δ) perturbation so 2-hop paths
// through the hub v7 are strictly preferred on equal load. OPT = 4B; a
// reasonable iterative path minimizing algorithm achieves exactly 3B.
func SevenVertex(b int) *UFPFamily {
	if b < 2 || b%2 != 0 {
		panic(fmt.Sprintf("lowerbound: SevenVertex(%d) needs even b >= 2", b))
	}
	B := float64(b)
	g := graph.NewUndirected(7)
	v := func(i int) int { return i - 1 }
	g.AddEdge(v(1), v(2), B)             // rim
	g.AddEdge(v(2), v(3), B)             // rim
	g.AddEdge(v(4), v(5), B)             // rim
	g.AddEdge(v(5), v(6), B)             // rim
	g.AddEdge(v(1), v(7), B*(1+perturb)) // hub
	g.AddEdge(v(7), v(6), B*(1+perturb)) // hub
	g.AddEdge(v(3), v(7), B*(1+perturb)) // hub
	g.AddEdge(v(7), v(4), B*(1+perturb)) // hub
	inst := &core.Instance{G: g}
	blocks := [][2]int{{1, 3}, {4, 6}, {1, 6}, {3, 4}}
	for _, blk := range blocks {
		for k := 0; k < b; k++ {
			inst.Requests = append(inst.Requests, core.Request{Source: v(blk[0]), Target: v(blk[1]), Demand: 1, Value: 1})
		}
	}
	return &UFPFamily{
		Name:         fmt.Sprintf("seven-vertex(B=%d)", b),
		Inst:         inst,
		OPT:          4 * B,
		PredictedALG: 3 * B,
		Slack:        0,
	}
}

// SevenVertexOPTRouting returns the optimal routing: (v1,v2,v3),
// (v4,v5,v6), (v1,v7,v6), (v3,v7,v4) — value 4B.
func SevenVertexOPTRouting(f *UFPFamily, b int) []core.Routed {
	// Edge IDs follow the construction order above.
	paths := [][]int{
		{0, 1}, // v1-v2-v3
		{2, 3}, // v4-v5-v6
		{4, 5}, // v1-v7-v6
		{6, 7}, // v3-v7-v4
	}
	var out []core.Routed
	for blk := 0; blk < 4; blk++ {
		for k := 0; k < b; k++ {
			out = append(out, core.Routed{Request: blk*b + k, Path: paths[blk]})
		}
	}
	return out
}

// AuctionFamily is a MUCA lower-bound instance with its ground truth.
type AuctionFamily struct {
	Name         string
	Inst         *auction.Instance
	OPT          float64
	PredictedALG float64
}

// MUCAGrid builds the Figure 4 instance with odd p >= 3 and even B: one
// item per cell U_{i,j} (i in 1..p rows, j in 1..p+1 columns), all with
// multiplicity B. Type-1 requests (B/2 copies per row i) want the whole
// row; type-2 requests (B/2 copies per column pair) want the two row-1
// cells of the pair plus the rest of one column. All bundles have p+1
// items and unit value, so a reasonable bundle minimizer ties everywhere
// and (with type-1 listed first) exhausts the rows before any type-2
// request, reaching exactly (3p+1)B/4 versus OPT = pB.
func MUCAGrid(p, b int) *AuctionFamily {
	if p < 3 || p%2 == 0 {
		panic(fmt.Sprintf("lowerbound: MUCAGrid needs odd p >= 3, got %d", p))
	}
	if b < 2 || b%2 != 0 {
		panic(fmt.Sprintf("lowerbound: MUCAGrid needs even B >= 2, got %d", b))
	}
	cols := p + 1
	item := func(i, j int) int { return (i-1)*cols + (j - 1) } // i in 1..p, j in 1..p+1
	m := p * cols
	inst := &auction.Instance{Multiplicity: make([]float64, m)}
	for u := range inst.Multiplicity {
		inst.Multiplicity[u] = float64(b)
	}
	// Type 1: rows.
	for i := 1; i <= p; i++ {
		bundle := make([]int, 0, cols)
		for j := 1; j <= cols; j++ {
			bundle = append(bundle, item(i, j))
		}
		for k := 0; k < b/2; k++ {
			inst.Requests = append(inst.Requests, auction.Request{Bundle: append([]int(nil), bundle...), Value: 1})
		}
	}
	// Type 2: for each column pair (2ℓ-1, 2ℓ), two variants.
	for l := 1; l <= (p+1)/2; l++ {
		jA, jB := 2*l-1, 2*l
		for _, jCol := range []int{jA, jB} {
			bundle := []int{item(1, jA), item(1, jB)}
			for i := 2; i <= p; i++ {
				bundle = append(bundle, item(i, jCol))
			}
			for k := 0; k < b/2; k++ {
				inst.Requests = append(inst.Requests, auction.Request{Bundle: append([]int(nil), bundle...), Value: 1})
			}
		}
	}
	B := float64(b)
	return &AuctionFamily{
		Name:         fmt.Sprintf("muca-grid(p=%d,B=%d)", p, b),
		Inst:         inst,
		OPT:          float64(p) * B,
		PredictedALG: float64(3*p+1) * B / 4,
	}
}

// MUCAGridOPTSelection returns the optimal selection: every request
// except the B/2 row-1 type-1 requests — value pB.
func MUCAGridOPTSelection(f *AuctionFamily, p, b int) []int {
	var sel []int
	for i := b / 2; i < len(f.Inst.Requests); i++ {
		sel = append(sel, i)
	}
	return sel
}
