package lowerbound

import (
	"math"
	"testing"

	"truthfulufp/internal/auction"
	"truthfulufp/internal/core"
)

func TestStaircaseStructure(t *testing.T) {
	f := Staircase(5, 3)
	if err := f.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edges: l target edges + sum_{i} (l-i+1) source edges.
	wantEdges := 5 + (5 + 4 + 3 + 2 + 1)
	if got := f.Inst.G.NumEdges(); got != wantEdges {
		t.Fatalf("edges = %d, want %d", got, wantEdges)
	}
	if len(f.Inst.Requests) != 15 {
		t.Fatalf("requests = %d, want 15", len(f.Inst.Requests))
	}
	if f.OPT != 15 {
		t.Fatalf("OPT = %g, want 15", f.OPT)
	}
	if math.Abs(f.Inst.B()-3) > 1e-6 {
		t.Fatalf("B = %g, want ~3", f.Inst.B())
	}
}

func TestStaircaseOPTRoutingFeasible(t *testing.T) {
	l, b := 6, 4
	f := Staircase(l, b)
	routed := StaircaseOPTRouting(f, l, b)
	a := &core.Allocation{Routed: routed, Value: float64(len(routed))}
	if err := a.CheckFeasible(f.Inst, false); err != nil {
		t.Fatalf("OPT routing infeasible: %v", err)
	}
	if a.Value != f.OPT {
		t.Fatalf("OPT routing value %g != OPT %g", a.Value, f.OPT)
	}
}

// TestStaircaseForcesTheGap is the heart of E2: the engine with the
// paper's own rule h satisfies only ≈ (1-1/e) of the staircase.
func TestStaircaseForcesTheGap(t *testing.T) {
	l, b := 20, 6
	f := Staircase(l, b)
	a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
		Rule: &core.ExpRule{}, Eps: 0.5, FeasibleOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(f.Inst, false); err != nil {
		t.Fatal(err)
	}
	if a.Value > f.PredictedALG+f.Slack {
		t.Fatalf("ALG %g exceeds predicted %g + slack %g", a.Value, f.PredictedALG, f.Slack)
	}
	// It should not be wildly below the prediction either (the adversarial
	// dynamics are what the construction engineers).
	if a.Value < f.PredictedALG-f.Slack {
		t.Fatalf("ALG %g far below predicted %g - slack", a.Value, f.PredictedALG)
	}
	ratio := f.OPT / a.Value
	if ratio < 1.25 {
		t.Fatalf("ratio %g too small; construction not biting", ratio)
	}
}

func TestStaircaseGapForAllRules(t *testing.T) {
	l, b := 12, 4
	f := Staircase(l, b)
	for _, rule := range core.AllRules(false) {
		a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
			Rule: rule, Eps: 0.5, FeasibleOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckFeasible(f.Inst, false); err != nil {
			t.Fatalf("rule %s: %v", rule.Name(), err)
		}
		if a.Value >= f.OPT {
			t.Fatalf("rule %s reached OPT on the staircase; lower bound should bite", rule.Name())
		}
	}
}

func TestStaircaseRatioApproachesEOverEMinus1(t *testing.T) {
	// (B/(B+1))^B decreases toward 1/e, so the forced ratio decreases
	// toward e/(e-1) from above, staying >= the limit throughout.
	limit := math.E / (math.E - 1)
	prev := math.Inf(1)
	for _, b := range []float64{1, 2, 5, 20, 100} {
		r := StaircaseRatio(b)
		if r >= prev {
			t.Fatalf("StaircaseRatio not decreasing at B=%g", b)
		}
		if r < limit {
			t.Fatalf("StaircaseRatio(%g) = %g below the e/(e-1) limit", b, r)
		}
		prev = r
	}
	if math.Abs(StaircaseRatio(1e6)-limit) > 1e-3 {
		t.Fatalf("StaircaseRatio(1e6) = %g, want ≈ %g", StaircaseRatio(1e6), limit)
	}
}

func TestStaircaseSubdividedStructure(t *testing.T) {
	l, b := 4, 2
	f := StaircaseSubdivided(l, b)
	if err := f.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total edges: l target edges + sum over (i, j>=i) of (i*l+1-j).
	want := l
	for i := 1; i <= l; i++ {
		for j := i; j <= l; j++ {
			want += i*l + 1 - j
		}
	}
	if got := f.Inst.G.NumEdges(); got != want {
		t.Fatalf("edges = %d, want %d", got, want)
	}
}

func TestStaircaseSubdividedGapWithoutPerturbation(t *testing.T) {
	// The hardened variant forces the adversarial choice for any additive
	// reasonable rule with no capacity perturbation at all. Large eps
	// makes the congestion penalty dominate the hop penalty.
	l, b := 6, 3
	f := StaircaseSubdivided(l, b)
	a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
		Rule: &core.ExpRule{}, Eps: 1, FeasibleOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(f.Inst, false); err != nil {
		t.Fatal(err)
	}
	if a.Value >= f.OPT {
		t.Fatalf("subdivided staircase did not bite: ALG %g = OPT %g", a.Value, f.OPT)
	}
}

func TestSevenVertexStructure(t *testing.T) {
	f := SevenVertex(4)
	if err := f.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Inst.G.NumEdges() != 8 || f.Inst.G.NumVertices() != 7 {
		t.Fatalf("got %d edges %d vertices, want 8, 7", f.Inst.G.NumEdges(), f.Inst.G.NumVertices())
	}
	if len(f.Inst.Requests) != 16 {
		t.Fatalf("requests = %d, want 16", len(f.Inst.Requests))
	}
	if f.OPT != 16 || f.PredictedALG != 12 {
		t.Fatalf("OPT/pred = %g/%g, want 16/12", f.OPT, f.PredictedALG)
	}
}

func TestSevenVertexOPTRoutingFeasible(t *testing.T) {
	b := 6
	f := SevenVertex(b)
	routed := SevenVertexOPTRouting(f, b)
	a := &core.Allocation{Routed: routed, Value: float64(len(routed))}
	if err := a.CheckFeasible(f.Inst, false); err != nil {
		t.Fatalf("OPT routing infeasible: %v", err)
	}
	if a.Value != f.OPT {
		t.Fatalf("OPT routing value %g != %g", a.Value, f.OPT)
	}
}

// TestSevenVertexExactly3B is the heart of E3: the adversarial run
// reaches exactly 3B for every even B, independent of how large B is —
// Theorem 3.12's "no PTAS even with huge capacities".
func TestSevenVertexExactly3B(t *testing.T) {
	for _, b := range []int{2, 4, 8, 16} {
		f := SevenVertex(b)
		a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
			Rule: &core.ExpRule{}, Eps: 0.1, FeasibleOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckFeasible(f.Inst, false); err != nil {
			t.Fatal(err)
		}
		if a.Value != f.PredictedALG {
			t.Fatalf("B=%d: ALG = %g, want exactly 3B = %g", b, a.Value, f.PredictedALG)
		}
	}
}

func TestSevenVertexPanicsOnOddB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd B accepted")
		}
	}()
	SevenVertex(3)
}

func TestMUCAGridStructure(t *testing.T) {
	p, b := 3, 4
	f := MUCAGrid(p, b)
	if err := f.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Inst.NumItems() != p*(p+1) {
		t.Fatalf("items = %d, want %d", f.Inst.NumItems(), p*(p+1))
	}
	// Requests: p rows * B/2 + (p+1) column variants * B/2.
	want := p*b/2 + (p+1)*b/2
	if len(f.Inst.Requests) != want {
		t.Fatalf("requests = %d, want %d", len(f.Inst.Requests), want)
	}
	for _, r := range f.Inst.Requests {
		if len(r.Bundle) != p+1 {
			t.Fatalf("bundle size %d, want %d", len(r.Bundle), p+1)
		}
	}
}

func TestMUCAGridOPTSelectionFeasible(t *testing.T) {
	p, b := 5, 4
	f := MUCAGrid(p, b)
	sel := MUCAGridOPTSelection(f, p, b)
	a := &auction.Allocation{Selected: sel, Value: float64(len(sel))}
	if err := a.CheckFeasible(f.Inst); err != nil {
		t.Fatalf("OPT selection infeasible: %v", err)
	}
	if a.Value != f.OPT {
		t.Fatalf("OPT selection value %g != %g", a.Value, f.OPT)
	}
}

// TestMUCAGridForcesGap is the heart of E5: the bundle engine reaches
// exactly (3p+1)B/4 versus OPT = pB, ratio -> 4/3.
func TestMUCAGridForcesGap(t *testing.T) {
	for _, tc := range []struct{ p, b int }{{3, 4}, {5, 4}, {7, 2}} {
		f := MUCAGrid(tc.p, tc.b)
		a, err := auction.IterativeBundleMin(f.Inst, auction.BundleEngineOptions{
			Rule: auction.ExpBundleRule{}, Eps: 0.5, FeasibleOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckFeasible(f.Inst); err != nil {
			t.Fatal(err)
		}
		if a.Value != f.PredictedALG {
			t.Fatalf("p=%d B=%d: ALG = %g, want exactly %g", tc.p, tc.b, a.Value, f.PredictedALG)
		}
		ratio := f.OPT / a.Value
		want := 4 * float64(tc.p) / float64(3*tc.p+1)
		if math.Abs(ratio-want) > 1e-9 {
			t.Fatalf("ratio %g, want %g", ratio, want)
		}
	}
}

func TestMUCAGridPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { MUCAGrid(2, 4) }, // even p
		func() { MUCAGrid(3, 3) }, // odd B
		func() { MUCAGrid(1, 4) }, // p too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad MUCAGrid params accepted")
				}
			}()
			fn()
		}()
	}
}
