package lowerbound

import (
	"testing"

	"truthfulufp/internal/core"
)

func runExpEngine(t *testing.T, f *UFPFamily) float64 {
	t.Helper()
	a, err := core.IterativePathMin(f.Inst, core.EngineOptions{
		Rule: &core.ExpRule{}, Eps: 0.5, FeasibleOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(f.Inst, false); err != nil {
		t.Fatal(err)
	}
	return a.Value
}

// TestTieBreakAblationUnitCapacity is the design-choice ablation
// DESIGN.md calls out, in its crispest form (B = 1, where one request
// saturates a vertex, so spreading and concentration coincide): on the
// identical staircase topology, the adversarial (j maximal) tie-break
// forces ratio exactly 2 = 1/(1-(1/2)^1) while the benevolent (j
// minimal) tie-break reaches the optimum exactly. Theorem 3.11's bound
// is a statement about worst-case tie-breaking, not about the rule.
func TestTieBreakAblationUnitCapacity(t *testing.T) {
	const l = 16
	adversarial := Staircase(l, 1)
	benevolent := StaircaseBenevolent(l, 1)
	adv := runExpEngine(t, adversarial)
	ben := runExpEngine(t, benevolent)
	if adv != float64(l)/2 {
		t.Fatalf("adversarial ALG = %g, want exactly l/2 = %g", adv, float64(l)/2)
	}
	if ben != float64(l) {
		t.Fatalf("benevolent ALG = %g, want exactly OPT = %d", ben, l)
	}
}

// TestTieBreakAblationGeneralB: for B > 1 the exponential rule's load
// penalty spreads requests across fresh vertices, so the benevolent
// variant no longer reaches OPT — but it must still strictly beat the
// adversarial run on the same topology.
func TestTieBreakAblationGeneralB(t *testing.T) {
	l, b := 16, 4
	adv := runExpEngine(t, Staircase(l, b))
	ben := runExpEngine(t, StaircaseBenevolent(l, b))
	if ben <= adv {
		t.Fatalf("benevolent (%g) should beat adversarial (%g)", ben, adv)
	}
}

func TestStaircaseBenevolentStructureMatchesAdversarial(t *testing.T) {
	l, b := 8, 3
	adv := Staircase(l, b)
	ben := StaircaseBenevolent(l, b)
	if adv.Inst.G.NumEdges() != ben.Inst.G.NumEdges() ||
		adv.Inst.G.NumVertices() != ben.Inst.G.NumVertices() ||
		len(adv.Inst.Requests) != len(ben.Inst.Requests) {
		t.Fatal("ablation variants differ structurally; they must differ only in tie-breaking")
	}
	if err := ben.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if ben.OPT != adv.OPT {
		t.Fatalf("OPT differs: %g vs %g", ben.OPT, adv.OPT)
	}
}
