// Package shard is the horizontal scale-out layer of the serving
// stack: a bounded-load consistent-hash ring (ring.go) and a Router
// (router.go) that fronts N engine/session backends inside one
// process, routing solve jobs by instance fingerprint and session
// operations by session id so each backend keeps its own warm
// pathfind.Incremental caches, landmark tables, result cache, and
// singleflight dedup — the state that makes repeated and streamed
// traffic cheap, and that a naive round-robin would scatter.
//
// The ring is the classic Karger construction with virtual nodes plus
// the consistent-hashing-with-bounded-loads refinement (Mirrokni,
// Thorup, Zadimoghaddam): a key's primary owner is the first virtual
// node clockwise from its hash, but a lookup that would push the owner
// past c times the average load walks on to the next distinct member.
// Membership changes move only the keys whose successor arc changed —
// adding a member steals an ≈1/n fraction, removing one reassigns only
// the removed member's arcs — so warm caches on surviving shards stay
// warm.
package shard

import (
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member when
// Ring.Replicas is zero. 128 points per member keeps the maximum arc
// imbalance across a handful of shards within a few percent.
const DefaultReplicas = 128

// DefaultLoadFactor is the bounded-load factor c when Ring.LoadFactor
// is zero: no member is loaded beyond c times the ceiling of the
// average load.
const DefaultLoadFactor = 1.25

// point is one virtual node: a position on the 64-bit hash circle and
// the member that owns it.
type point struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is a bounded-load consistent-hash ring. It is a passive data
// structure: lookups read it, Add/Remove rebuild it. The Router guards
// it with its own lock; a Ring used directly needs external
// synchronization between membership changes and lookups.
type Ring struct {
	replicas   int
	loadFactor float64
	members    []string // sorted, unique
	points     []point  // sorted by hash
}

// NewRing builds a ring over the given members. replicas <= 0 means
// DefaultReplicas; loadFactor <= 1 means DefaultLoadFactor. Duplicate
// members collapse to one.
func NewRing(members []string, replicas int, loadFactor float64) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if loadFactor <= 1 {
		loadFactor = DefaultLoadFactor
	}
	r := &Ring{replicas: replicas, loadFactor: loadFactor}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			r.members = append(r.members, m)
		}
	}
	sort.Strings(r.members)
	r.rebuild()
	return r
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the members in sorted order (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// LoadFactor returns the bounded-load factor c.
func (r *Ring) LoadFactor() float64 { return r.loadFactor }

// Add inserts a member, reporting whether it was new. Only keys on the
// arcs the new member's virtual nodes claim move; every moved key moves
// to the new member.
func (r *Ring) Add(member string) bool {
	i := sort.SearchStrings(r.members, member)
	if i < len(r.members) && r.members[i] == member {
		return false
	}
	r.members = append(r.members, "")
	copy(r.members[i+1:], r.members[i:])
	r.members[i] = member
	r.rebuild()
	return true
}

// Remove deletes a member, reporting whether it was present. Only keys
// the removed member owned move, each to the next surviving member on
// its arc.
func (r *Ring) Remove(member string) bool {
	i := sort.SearchStrings(r.members, member)
	if i >= len(r.members) || r.members[i] != member {
		return false
	}
	r.members = append(r.members[:i], r.members[i+1:]...)
	r.rebuild()
	return true
}

// rebuild recomputes the virtual-node points. Point hashes depend only
// on (member, replica index), so surviving members land on identical
// circle positions across rebuilds — the minimal-remap property.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	if cap(r.points) < len(r.members)*r.replicas {
		r.points = make([]point, 0, len(r.members)*r.replicas)
	}
	for mi, m := range r.members {
		for v := 0; v < r.replicas; v++ {
			h := fnv1a(m + "#" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break by member name so a hash collision between two
		// members' virtual nodes resolves identically on every rebuild.
		return r.members[r.points[i].member] < r.members[r.points[j].member]
	})
}

// Lookup returns the key's primary owner: the member of the first
// virtual node clockwise from the key's hash ("" on an empty ring).
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.start(key)].member]
}

// start returns the index into points of the first virtual node
// clockwise from key's hash position.
func (r *Ring) start(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// LookupBounded returns the key's owner under the bounded-load rule:
// walking clockwise from the key's position, the first member whose
// current load (as reported by load, which is consulted once per
// distinct member) is strictly below the threshold
// ceil(c·(total+1)/n). The threshold always strictly exceeds the
// minimum load, so the walk terminates on some member; a key lands off
// its primary only while the primary is overloaded, and identical keys
// re-converge to the primary as its load drains. Like Lookup, "" on an
// empty ring.
func (r *Ring) LookupBounded(key string, load func(member string) int) string {
	n := len(r.members)
	if n == 0 {
		return ""
	}
	if n == 1 {
		return r.members[0]
	}
	total := 0
	for _, m := range r.members {
		total += load(m)
	}
	// ceil(c·(total+1)/n): the +1 counts the key being placed.
	threshold := int(r.loadFactor * float64(total+1) / float64(n))
	if float64(threshold) < r.loadFactor*float64(total+1)/float64(n) {
		threshold++
	}
	start := r.start(key)
	seen := 0
	tried := make([]bool, n)
	for i := 0; seen < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.member] {
			continue
		}
		tried[p.member] = true
		seen++
		m := r.members[p.member]
		if load(m) < threshold {
			return m
		}
	}
	// Unreachable when load is consistent (some member is below the
	// threshold by averaging); under racy load readings, fall back to
	// the primary owner.
	return r.members[r.points[start].member]
}

// fnv1a is the 64-bit FNV-1a hash with a splitmix64 finalizer —
// allocation-free and stable across processes. Raw FNV avalanches
// poorly on short similar strings (virtual-node labels like "0#17"),
// which skews arc lengths badly; the finalizer's two xor-shift rounds
// spread those inputs uniformly over the circle.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
