package shard

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// TestRingBalanceBounded places 10k keys under the bounded-load rule
// and checks no member ends up past the c·avg ceiling the rule
// promises.
func TestRingBalanceBounded(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := NewRing(members, 0, 1.25)
	loads := make(map[string]int, len(members))
	keys := testKeys(10000)
	for _, k := range keys {
		m := r.LookupBounded(k, func(m string) int { return loads[m] })
		if m == "" {
			t.Fatalf("LookupBounded(%q) returned no member", k)
		}
		loads[m]++
	}
	total := 0
	for _, m := range members {
		total += loads[m]
	}
	if total != len(keys) {
		t.Fatalf("placed %d keys, want %d", total, len(keys))
	}
	// Every placement kept its member strictly below
	// ceil(c·(total+1)/n) at placement time, so the final load cannot
	// exceed the final ceiling.
	bound := int(1.25*float64(len(keys))/float64(len(members))) + 1
	for _, m := range members {
		if loads[m] == 0 {
			t.Errorf("member %s received no keys", m)
		}
		if loads[m] > bound {
			t.Errorf("member %s load %d exceeds bounded-load ceiling %d", m, loads[m], bound)
		}
	}
}

// TestRingBalanceUnbounded checks the virtual nodes alone spread plain
// lookups within a small constant factor.
func TestRingBalanceUnbounded(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := NewRing(members, 0, 0)
	loads := make(map[string]int, len(members))
	for _, k := range testKeys(10000) {
		loads[r.Lookup(k)]++
	}
	min, max := 1<<30, 0
	for _, m := range members {
		if loads[m] < min {
			min = loads[m]
		}
		if loads[m] > max {
			max = loads[m]
		}
	}
	if min == 0 {
		t.Fatalf("a member received no keys: %v", loads)
	}
	if float64(max)/float64(min) > 2.5 {
		t.Errorf("virtual-node imbalance too high: min %d max %d (%v)", min, max, loads)
	}
}

// TestRingMinimalRemapOnAdd checks that adding a member only steals
// keys (every moved key moves to the new member) and steals roughly
// its fair share.
func TestRingMinimalRemapOnAdd(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 0, 0)
	keys := testKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	if !r.Add("e") {
		t.Fatal("Add(e) reported e already present")
	}
	moved := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != "e" {
			t.Fatalf("key %q moved %s -> %s, not to the new member", k, before[k], after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new member")
	}
	// Fair share is 1/5; allow a factor-two slop for vnode variance.
	if frac := float64(moved) / float64(len(keys)); frac > 0.4 {
		t.Errorf("add moved %.1f%% of keys, want ≈20%%", 100*frac)
	}
}

// TestRingMinimalRemapOnRemove checks that removing a member moves
// only the keys it owned.
func TestRingMinimalRemapOnRemove(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 0, 0)
	keys := testKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	if !r.Remove("b") {
		t.Fatal("Remove(b) reported b absent")
	}
	for _, k := range keys {
		after := r.Lookup(k)
		if before[k] == "b" {
			if after == "b" {
				t.Fatalf("key %q still maps to removed member", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved %s -> %s though its owner survived", k, before[k], after)
		}
	}
}

// TestRingDeterminism checks two rings built over the same membership
// answer identically (placement is a pure function of the membership,
// not construction order).
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"x", "y", "z"}, 0, 0)
	b := NewRing([]string{"z", "x", "y"}, 0, 0)
	for _, k := range testKeys(1000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("rings disagree on %q: %s vs %s", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate memberships.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0, 0)
	if got := empty.Lookup("k"); got != "" {
		t.Errorf("empty ring Lookup = %q, want empty", got)
	}
	if got := empty.LookupBounded("k", func(string) int { return 0 }); got != "" {
		t.Errorf("empty ring LookupBounded = %q, want empty", got)
	}
	one := NewRing([]string{"solo"}, 0, 0)
	if got := one.Lookup("k"); got != "solo" {
		t.Errorf("single ring Lookup = %q", got)
	}
	if got := one.LookupBounded("k", func(string) int { return 1 << 20 }); got != "solo" {
		t.Errorf("single ring LookupBounded = %q", got)
	}
}
