package shard

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"truthfulufp/internal/engine"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/metrics"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/session"
	"truthfulufp/internal/stats"
)

// Config tunes a Router.
type Config struct {
	// Shards is the number of engine/session backends; 0 or 1 means a
	// single backend (the router degenerates to a pass-through and keeps
	// the single-engine /metrics exposition byte-compatible).
	Shards int
	// Engine is the per-backend engine configuration (each shard gets
	// its own worker pool, queue, result cache, and session manager
	// built from it). SessionIDPrefix is overridden per shard — see
	// IDPrefix.
	Engine engine.Config
	// Replicas is the virtual-node count per shard on the ring (0 =
	// DefaultReplicas).
	Replicas int
	// LoadFactor is the bounded-load factor c (<=1 = DefaultLoadFactor):
	// a job whose primary shard holds more than c times the average
	// in-flight load is diverted to the next shard on its arc.
	LoadFactor float64
	// IDPrefix is a node-level prefix prepended to every shard's session
	// ids. ufpserve's -route mode sets "p<i>." from the node's position
	// in the -peers list, so an id like "p1.s0-n3" names its owning node
	// (and shard within it) cluster-wide; in-process ids then look like
	// "s0-n3" (multi-shard) or "n3" (single shard, the legacy spelling).
	IDPrefix string
}

// backend is one engine/session pair behind the router.
type backend struct {
	index    int
	member   string // ring member key (the decimal shard index)
	prefix   string // session-id prefix identifying this shard
	eng      *engine.Engine
	inflight atomic.Int64 // jobs routed here and not yet returned
	routed   stats.Counter
	placed   stats.Counter // sessions placed here at registration
}

// Router fronts N engine/session backends behind the bounded-load
// consistent-hash ring: jobs route by instance fingerprint (identical
// jobs land on the same shard, keeping singleflight dedup and the
// result cache effective), session registrations place on the
// least-loaded arc owner, and subsequent session operations route by
// the shard prefix baked into the session id. Because every engine
// answer is a pure function of the job, routing never changes results
// — a catalog solved through a Router is byte-identical to the
// single-engine path. All methods are safe for concurrent use;
// membership is fixed at construction.
type Router struct {
	cfg      Config
	ring     *Ring
	backends []*backend
	byMember map[string]*backend
	seq      atomic.Uint64 // session-placement ring keys

	diverted  stats.Counter // jobs routed off their primary by bounded load
	misrouted stats.Counter // session ops whose id no local shard owns
}

// New builds a Router and starts its backends' worker pools.
func New(cfg Config) *Router {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	r := &Router{cfg: cfg, byMember: make(map[string]*backend, cfg.Shards)}
	members := make([]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		prefix := cfg.IDPrefix
		if cfg.Shards > 1 {
			prefix = fmt.Sprintf("%ss%d-", cfg.IDPrefix, i)
		}
		ecfg := cfg.Engine
		ecfg.SessionIDPrefix = prefix
		b := &backend{
			index:  i,
			member: strconv.Itoa(i),
			prefix: prefix,
			eng:    engine.New(ecfg),
		}
		r.backends = append(r.backends, b)
		r.byMember[b.member] = b
		members[i] = b.member
	}
	r.ring = NewRing(members, cfg.Replicas, cfg.LoadFactor)
	return r
}

// NumShards returns the backend count.
func (r *Router) NumShards() int { return len(r.backends) }

// Engine returns shard i's engine — the escape hatch for tests and for
// server paths (drain, statusz) that address one backend directly.
func (r *Router) Engine(i int) *engine.Engine { return r.backends[i].eng }

// Prefix returns shard i's session-id prefix.
func (r *Router) Prefix(i int) string { return r.backends[i].prefix }

// Close shuts the backends down, draining their queues and blocking
// until in-flight jobs finish.
func (r *Router) Close() {
	for _, b := range r.backends {
		b.eng.Close()
	}
}

// pick chooses the shard for a job key under the bounded-load rule,
// using live in-flight counts as the load signal.
func (r *Router) pick(key string) *backend {
	if len(r.backends) == 1 {
		return r.backends[0]
	}
	primary := r.ring.Lookup(key)
	m := r.ring.LookupBounded(key, func(member string) int {
		return int(r.byMember[member].inflight.Load())
	})
	if m != primary {
		r.diverted.Inc()
	}
	return r.byMember[m]
}

// Do routes the job to its shard by instance fingerprint and blocks on
// that shard's engine. Everything engine.Do promises — coalescing,
// caching, cancellation, fail-fast overload — holds per shard.
func (r *Router) Do(ctx context.Context, job engine.Job) (*engine.Result, error) {
	b := r.pick(job.Fingerprint())
	b.routed.Inc()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	return b.eng.Do(ctx, job)
}

// Register creates a session on the shard the ring assigns to the next
// placement key, bounded by live-session load so a burst of
// registrations spreads. The returned session's id carries the shard
// prefix, which is what routes every subsequent operation back here.
func (r *Router) Register(g *graph.Graph, eps float64) (*session.Session, error) {
	b := r.backends[0]
	if len(r.backends) > 1 {
		key := "session-" + strconv.FormatUint(r.seq.Add(1), 10)
		m := r.ring.LookupBounded(key, func(member string) int {
			return r.byMember[member].eng.Sessions().Len()
		})
		b = r.byMember[m]
	}
	s, err := b.eng.Sessions().Register(g, eps)
	if err == nil {
		b.placed.Inc()
	}
	return s, err
}

// Owner resolves a session id to the local shard whose prefix it
// carries (false when no local shard owns it — in route mode the
// server then forwards to the peer named by the node prefix).
func (r *Router) Owner(id string) (int, bool) {
	for _, b := range r.backends {
		if strings.HasPrefix(id, b.prefix) {
			return b.index, true
		}
	}
	return -1, false
}

// Session returns the live session under id from its owning shard. An
// id no local shard owns counts as misrouted (zero in a correctly
// configured cluster) and reports not-found.
func (r *Router) Session(id string) (*session.Session, bool) {
	i, ok := r.Owner(id)
	if !ok {
		r.misrouted.Inc()
		return nil, false
	}
	return r.backends[i].eng.Sessions().Get(id)
}

// CloseSession removes the session under id from its owning shard,
// reporting whether it was live.
func (r *Router) CloseSession(id string) bool {
	i, ok := r.Owner(id)
	if !ok {
		r.misrouted.Inc()
		return false
	}
	return r.backends[i].eng.Sessions().Close(id)
}

// ShardSnapshot is one backend's view inside a router Snapshot.
type ShardSnapshot struct {
	Shard          int
	Prefix         string
	Routed         int64
	SessionsPlaced int64
	Inflight       int64
	Engine         engine.Snapshot
}

// Snapshot is a point-in-time view of the cluster: the router's own
// counters, per-shard detail, and sums of the per-engine counters
// (latency summaries are per shard only — quantiles don't merge).
type Snapshot struct {
	Shards    int
	Diverted  int64
	Misrouted int64

	Submitted     int64
	Completed     int64
	CacheHits     int64
	Coalesced     int64
	Failures      int64
	Cancelled     int64
	Shed          int64
	Workers       int
	BusyWorkers   float64
	QueueDepth    int
	QueueCapacity int
	SessionsLive  int
	// Uptime is the oldest backend's (they start together in practice).
	Uptime time.Duration
	// Sessions sums the per-shard session-manager counters.
	Sessions session.Stats

	PerShard []ShardSnapshot
}

// Snapshot returns current counter values across all shards.
func (r *Router) Snapshot() Snapshot {
	s := Snapshot{
		Shards:    len(r.backends),
		Diverted:  r.diverted.Load(),
		Misrouted: r.misrouted.Load(),
	}
	for _, b := range r.backends {
		es := b.eng.Snapshot()
		s.PerShard = append(s.PerShard, ShardSnapshot{
			Shard:          b.index,
			Prefix:         b.prefix,
			Routed:         b.routed.Load(),
			SessionsPlaced: b.placed.Load(),
			Inflight:       b.inflight.Load(),
			Engine:         es,
		})
		s.Submitted += es.Submitted
		s.Completed += es.Completed
		s.CacheHits += es.CacheHits
		s.Coalesced += es.Coalesced
		s.Failures += es.Failures
		s.Cancelled += es.Cancelled
		s.Shed += es.Shed
		s.Workers += es.Workers
		s.BusyWorkers += b.eng.BusyWorkers()
		s.QueueDepth += b.eng.QueueDepth()
		s.QueueCapacity += b.eng.QueueCapacity()
		s.SessionsLive += es.Sessions.Live
		if es.Uptime > s.Uptime {
			s.Uptime = es.Uptime
		}
		s.Sessions.Live += es.Sessions.Live
		s.Sessions.Created += es.Sessions.Created
		s.Sessions.EvictedLRU += es.Sessions.EvictedLRU
		s.Sessions.EvictedTTL += es.Sessions.EvictedTTL
		s.Sessions.Closed += es.Sessions.Closed
		s.Sessions.Admits += es.Sessions.Admits
		s.Sessions.Rejects += es.Sessions.Rejects
		s.Sessions.Quotes += es.Sessions.Quotes
		s.Sessions.Releases += es.Sessions.Releases
	}
	return s
}

// JobsPerSec is the cluster's lifetime successful-execution
// throughput.
func (s Snapshot) JobsPerSec() float64 {
	if s.Uptime <= 0 {
		return 0
	}
	return float64(s.Completed) / s.Uptime.Seconds()
}

// RegisterMetrics registers the cluster's instrument families into
// reg: the per-shard ufp_shard_* families (labeled by shard index)
// plus the ufp_engine_*, ufp_session_*, and ufp_pathcache_* families.
// With one backend the engine families delegate to
// engine.RegisterMetrics, so a single-shard server's exposition is
// byte-compatible with the pre-router one; with several they are
// cluster-wide sums, and the latency histograms become per-shard
// labeled series. Call once per registry.
func (r *Router) RegisterMetrics(reg *metrics.Registry) {
	routedF := reg.NewCounterFamily("ufp_shard_routed_total",
		"Jobs routed to each shard by the consistent-hash router.", "shard")
	placedF := reg.NewCounterFamily("ufp_shard_sessions_placed_total",
		"Sessions placed on each shard at registration.", "shard")
	shedF := reg.NewCounterFamily("ufp_shard_shed_total",
		"Jobs each shard refused with ErrOverloaded on a full queue.", "shard")
	inflF := reg.NewGaugeFamily("ufp_shard_inflight",
		"Jobs currently routed to each shard and not yet returned.", "shard")
	depthF := reg.NewGaugeFamily("ufp_shard_queue_depth",
		"Tasks waiting in each shard's job queue.", "shard")
	utilF := reg.NewGaugeFamily("ufp_shard_utilization",
		"Busy fraction of each shard's worker pool (0..1).", "shard")
	liveF := reg.NewGaugeFamily("ufp_shard_sessions_live",
		"Sessions live on each shard.", "shard")
	for _, b := range r.backends {
		b := b
		l := b.member
		routedF.Func(b.routed.Load, l)
		placedF.Func(b.placed.Load, l)
		shedF.Func(func() int64 { return b.eng.Counters().Shed }, l)
		inflF.GaugeFunc(func() float64 { return float64(b.inflight.Load()) }, l)
		depthF.GaugeFunc(func() float64 { return float64(b.eng.QueueDepth()) }, l)
		utilF.GaugeFunc(func() float64 { return b.eng.BusyWorkers() / float64(b.eng.Workers()) }, l)
		liveF.GaugeFunc(func() float64 { return float64(b.eng.Sessions().Len()) }, l)
	}
	reg.NewGaugeFamily("ufp_shard_count", "Engine/session backends behind the router.").
		GaugeFunc(func() float64 { return float64(len(r.backends)) })
	reg.NewCounterFamily("ufp_shard_diverted_total",
		"Jobs routed off their primary shard by the bounded-load rule.").Func(r.diverted.Load)
	reg.NewCounterFamily("ufp_shard_misrouted_total",
		"Session operations whose id no local shard owns.").Func(r.misrouted.Load)

	if len(r.backends) == 1 {
		r.backends[0].eng.RegisterMetrics(reg)
		return
	}
	r.registerAggregates(reg)
}

// registerAggregates re-derives the single-engine family set as
// cluster-wide sums (same names and help, so dashboards survive a
// -shards change), with the latency histograms as per-shard labeled
// children — bucket counts are additive in PromQL, quantile summaries
// are not.
func (r *Router) registerAggregates(reg *metrics.Registry) {
	sumI := func(f func(*backend) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, b := range r.backends {
				t += f(b)
			}
			return t
		}
	}
	sumF := func(f func(*backend) float64) func() float64 {
		return func() float64 {
			var t float64
			for _, b := range r.backends {
				t += f(b)
			}
			return t
		}
	}
	counter := func(name, help string, f func(*backend) int64) {
		reg.NewCounterFamily(name, help).Func(sumI(f))
	}
	gauge := func(name, help string, f func(*backend) float64) {
		reg.NewGaugeFamily(name, help).GaugeFunc(sumF(f))
	}

	counter("ufp_engine_jobs_submitted_total", "Jobs accepted by Do.",
		func(b *backend) int64 { return b.eng.Counters().Submitted })
	counter("ufp_engine_jobs_completed_total", "Executions finished successfully.",
		func(b *backend) int64 { return b.eng.Counters().Completed })
	counter("ufp_engine_jobs_failed_total", "Executions that returned a non-cancellation error.",
		func(b *backend) int64 { return b.eng.Counters().Failures })
	counter("ufp_engine_jobs_cancelled_total", "Executions stopped early because every waiter left.",
		func(b *backend) int64 { return b.eng.Counters().Cancelled })
	counter("ufp_engine_jobs_coalesced_total", "Submissions folded into an identical in-flight job.",
		func(b *backend) int64 { return b.eng.Counters().Coalesced })
	counter("ufp_engine_jobs_shed_total", "Jobs refused with ErrOverloaded on a full queue.",
		func(b *backend) int64 { return b.eng.Counters().Shed })
	counter("ufp_engine_cache_hits_total", "Answers served from the result cache.",
		func(b *backend) int64 { return b.eng.Counters().CacheHits })
	counter("ufp_engine_cache_misses_total", "Cache-eligible jobs that had to execute.",
		func(b *backend) int64 { return b.eng.Counters().CacheMisses })
	gauge("ufp_engine_cache_entries", "Results currently held by the LRU cache.",
		func(b *backend) float64 { return float64(b.eng.CacheEntries()) })
	gauge("ufp_engine_queue_depth", "Tasks waiting in the job queue.",
		func(b *backend) float64 { return float64(b.eng.QueueDepth()) })
	gauge("ufp_engine_queue_capacity", "Job queue capacity.",
		func(b *backend) float64 { return float64(b.eng.QueueCapacity()) })
	gauge("ufp_engine_workers", "Worker goroutines.",
		func(b *backend) float64 { return float64(b.eng.Workers()) })
	gauge("ufp_engine_workers_busy", "Workers currently executing a task.",
		func(b *backend) float64 { return b.eng.BusyWorkers() })
	reg.NewGaugeFamily("ufp_engine_worker_utilization", "Busy fraction of the worker pool (0..1).").
		GaugeFunc(func() float64 {
			var busy, workers float64
			for _, b := range r.backends {
				busy += b.eng.BusyWorkers()
				workers += float64(b.eng.Workers())
			}
			if workers == 0 {
				return 0
			}
			return busy / workers
		})
	solveF := reg.NewHistogramFamily("ufp_engine_solve_duration_seconds",
		"Per-execution solve wall time (successful executions; cache hits and coalesced waits excluded).",
		metrics.DefLatencyBuckets, "shard")
	for _, b := range r.backends {
		solveF.Observe(b.eng.LatencyHistogram(), b.member)
	}

	gauge("ufp_session_live", "Sessions currently registered.",
		func(b *backend) float64 { return float64(b.eng.Sessions().Len()) })
	counter("ufp_session_created_total", "Sessions ever registered.",
		func(b *backend) int64 { return b.eng.Sessions().Stats().Created })
	evictions := reg.NewCounterFamily("ufp_session_evictions_total",
		"Sessions evicted, split by reason (lru = capacity, ttl = idleness).", "reason")
	evictions.Func(sumI(func(b *backend) int64 { return b.eng.Sessions().Stats().EvictedLRU }), "lru")
	evictions.Func(sumI(func(b *backend) int64 { return b.eng.Sessions().Stats().EvictedTTL }), "ttl")
	counter("ufp_session_closed_total", "Sessions closed explicitly.",
		func(b *backend) int64 { return b.eng.Sessions().Stats().Closed })
	counter("ufp_session_admits_total", "Streamed requests admitted.",
		func(b *backend) int64 { return b.eng.Sessions().Stats().Admits })
	counter("ufp_session_rejects_total", "Streamed requests rejected.",
		func(b *backend) int64 { return b.eng.Sessions().Stats().Rejects })
	counter("ufp_session_quotes_total", "Price quotes served.",
		func(b *backend) int64 { return b.eng.Sessions().Stats().Quotes })
	counter("ufp_session_releases_total", "Admissions released.",
		func(b *backend) int64 { return b.eng.Sessions().Stats().Releases })
	admitF := reg.NewHistogramFamily("ufp_session_admit_duration_seconds",
		"Per-admit solver time (one observation per Admit call, admitted or not).",
		metrics.DefLatencyBuckets, "shard")
	quoteF := reg.NewHistogramFamily("ufp_session_quote_duration_seconds",
		"Per-quote solver time.",
		metrics.DefLatencyBuckets, "shard")
	for _, b := range r.backends {
		admitF.Observe(b.eng.Sessions().AdmitLatencyHistogram(), b.member)
		quoteF.Observe(b.eng.Sessions().QuoteLatencyHistogram(), b.member)
	}

	pc := func() pathfind.CacheStats {
		var agg pathfind.CacheStats
		for _, b := range r.backends {
			agg.Add(b.eng.Sessions().PathCacheStats())
		}
		return agg
	}
	pcGauge := func(name, help string, f func(pathfind.CacheStats) float64) {
		reg.NewGaugeFamily(name, help).GaugeFunc(func() float64 { return f(pc()) })
	}
	pcGauge("ufp_pathcache_refreshes", "Refresh calls summed over live sessions' path caches.",
		func(s pathfind.CacheStats) float64 { return float64(s.Refreshes) })
	pcGauge("ufp_pathcache_tree_recomputed", "Structures rebuilt from scratch (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.Recomputed) })
	pcGauge("ufp_pathcache_tree_reused", "Structures served clean from cache (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.Reused) })
	pcGauge("ufp_pathcache_path_hits", "PathTo answers served from a fresh tree or clean cached path (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.PathToHits) })
	pcGauge("ufp_pathcache_path_misses", "PathTo answers that ran an early-exit search (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.PathToMisses) })
	pcGauge("ufp_pathcache_dirty_ratio", "Fraction of demanded structures recomputed (live sessions, 0..1).",
		func(s pathfind.CacheStats) float64 { return s.DirtyRatio() })
	pcGauge("ufp_pathcache_oracle_searches", "PathTo misses answered by the ALT/bidirectional oracle (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.AltSearches) })
	pcGauge("ufp_pathcache_oracle_prune_ratio", "Fraction of the full-tree vertex budget the oracle's searches skipped (live sessions, 0..1).",
		func(s pathfind.CacheStats) float64 { return s.PruneRatio() })
	pcGauge("ufp_pathcache_bidi_probes", "Bidirectional probes run (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.BidiProbes) })
	pcGauge("ufp_pathcache_bidi_meets", "Bidirectional probes whose frontiers bridged (live sessions).",
		func(s pathfind.CacheStats) float64 { return float64(s.BidiMeets) })
	policy := reg.NewGaugeFamily("ufp_pathcache_policy_decisions",
		"Adaptive refresh-policy decisions, split by chosen serving mode (live sessions).", "mode")
	policy.GaugeFunc(func() float64 { return float64(pc().PolicyTree) }, "tree")
	policy.GaugeFunc(func() float64 { return float64(pc().PolicySingle) }, "single")
	pcGauge("ufp_pathcache_landmark_violations", "Landmark lower-bound violations caught by the oracle (live sessions; each triggers a rebuild, or disables the tables past the budget).",
		func(s pathfind.CacheStats) float64 { return float64(s.LandmarkViolations) })
	counter("ufp_pathcache_landmark_rebuilds_total",
		"Landmark table rebuilds triggered by the staleness policy or a bound violation (monotone; survives session eviction).",
		func(b *backend) int64 { return b.eng.Sessions().LandmarkRebuilds() })
	rebuildF := reg.NewHistogramFamily("ufp_pathcache_landmark_rebuild_duration_seconds",
		"Wall time of each landmark table rebuild (2k Dijkstras plus minimax tables when enabled).",
		metrics.DefLatencyBuckets, "shard")
	for _, b := range r.backends {
		rebuildF.Observe(b.eng.Sessions().LandmarkRebuildHistogram(), b.member)
	}
	// The landmark registry is process-wide — every shard's sessions and
	// the mechanism probes share pathfind.SharedLandmarks — so its
	// counters are read directly, NOT summed per shard (a sum would
	// multiply-count the one registry by the shard count).
	registry := reg.NewCounterFamily("ufp_pathcache_landmark_registry_lookups_total",
		"Shared landmark registry lookups, split by result (process-wide: one registry serves every shard, session, and mechanism probe).", "result")
	registry.Func(func() int64 { h, _ := pathfind.SharedLandmarks.Stats(); return h }, "hit")
	registry.Func(func() int64 { _, m := pathfind.SharedLandmarks.Stats(); return m }, "miss")
}
