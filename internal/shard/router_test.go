package shard

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"truthfulufp/internal/engine"
	"truthfulufp/internal/metrics"
	"truthfulufp/internal/scenario"
	"truthfulufp/internal/workload"
)

func testJob(t testing.TB, seed uint64) engine.Job {
	t.Helper()
	inst, err := workload.RandomUFP(workload.NewRNG(seed), workload.DefaultUFPConfig())
	if err != nil {
		t.Fatal(err)
	}
	return engine.Job{Algorithm: "ufp/greedy", UFP: inst}
}

// TestRouterSingleShardPassThrough: with one backend the router is a
// pass-through — unprefixed session ids, every op on shard 0.
func TestRouterSingleShardPassThrough(t *testing.T) {
	r := New(Config{Shards: 1, Engine: engine.Config{Workers: 2}})
	defer r.Close()
	if r.NumShards() != 1 {
		t.Fatalf("NumShards = %d", r.NumShards())
	}
	res, err := r.Do(context.Background(), testJob(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocation == nil {
		t.Fatal("no allocation")
	}
	inst, err := workload.RandomUFP(workload.NewRNG(7), workload.DefaultUFPConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Register(inst.G, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != "n1" {
		t.Errorf("single-shard session id = %q, want legacy %q", s.ID(), "n1")
	}
	if i, ok := r.Owner(s.ID()); !ok || i != 0 {
		t.Errorf("Owner(%q) = %d,%v", s.ID(), i, ok)
	}
	if got, ok := r.Session(s.ID()); !ok || got.ID() != s.ID() {
		t.Errorf("Session(%q) lookup failed", s.ID())
	}
}

// TestRouterJobAffinity: identical jobs land on the same shard, so the
// second submission is a cache hit; distinct jobs spread.
func TestRouterJobAffinity(t *testing.T) {
	r := New(Config{Shards: 4, Engine: engine.Config{Workers: 1}})
	defer r.Close()
	job := testJob(t, 2)
	if _, err := r.Do(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	res, err := r.Do(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("identical resubmission was not a cache hit — job routed to a different shard?")
	}
	for seed := uint64(10); seed < 30; seed++ {
		if _, err := r.Do(context.Background(), testJob(t, seed)); err != nil {
			t.Fatal(err)
		}
	}
	snap := r.Snapshot()
	if snap.Submitted != 22 {
		t.Errorf("Submitted = %d, want 22", snap.Submitted)
	}
	if snap.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", snap.CacheHits)
	}
	var routed, nonEmpty int64
	for _, ss := range snap.PerShard {
		routed += ss.Routed
		if ss.Routed > 0 {
			nonEmpty++
		}
	}
	if routed != 22 {
		t.Errorf("sum of per-shard routed = %d, want 22", routed)
	}
	if nonEmpty < 2 {
		t.Errorf("20 distinct jobs all routed to %d shard(s); expected spread", nonEmpty)
	}
}

// TestRouterSessionAffinity: session ids carry their shard prefix,
// operations route home, LRU eviction invalidates the session without
// ever counting as a misroute, and an unparseable id does.
func TestRouterSessionAffinity(t *testing.T) {
	r := New(Config{Shards: 4, Engine: engine.Config{Workers: 1, MaxSessions: 2}})
	defer r.Close()
	inst, err := workload.RandomUFP(workload.NewRNG(3), workload.DefaultUFPConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, 24)
	for i := 0; i < 24; i++ {
		s, err := r.Register(inst.G, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		owner, ok := r.Owner(s.ID())
		if !ok {
			t.Fatalf("router cannot resolve its own session id %q", s.ID())
		}
		if want := r.Prefix(owner); !strings.HasPrefix(s.ID(), want) {
			t.Fatalf("session id %q does not carry owner prefix %q", s.ID(), want)
		}
		ids = append(ids, s.ID())
	}
	// 24 registrations over 4 shards × MaxSessions 2: most ids are now
	// LRU-evicted. Every id must still resolve to an owner (affinity is
	// a property of the id, not of liveness), lookups of evicted ids
	// report not-found, and none of it counts as misrouted.
	live := 0
	for _, id := range ids {
		if _, ok := r.Owner(id); !ok {
			t.Fatalf("Owner(%q) lost after eviction", id)
		}
		if s, ok := r.Session(id); ok {
			if s.ID() != id {
				t.Fatalf("Session(%q) returned %q", id, s.ID())
			}
			live++
		}
	}
	if live == 0 || live > 8 {
		t.Errorf("live sessions = %d, want 1..8 (4 shards × cap 2)", live)
	}
	snap := r.Snapshot()
	if snap.Misrouted != 0 {
		t.Errorf("Misrouted = %d after only well-formed ids", snap.Misrouted)
	}
	if _, ok := r.Session("bogus-id"); ok {
		t.Error("Session(bogus) reported ok")
	}
	if got := r.Snapshot().Misrouted; got != 1 {
		t.Errorf("Misrouted = %d after bogus id, want 1", got)
	}
	var placed int64
	for _, ss := range snap.PerShard {
		placed += ss.SessionsPlaced
	}
	if placed != 24 {
		t.Errorf("sum of SessionsPlaced = %d, want 24", placed)
	}
}

// TestRouterConcurrentRouting hammers jobs and session ops from many
// goroutines; run with -race this is the router's data-race gate.
func TestRouterConcurrentRouting(t *testing.T) {
	r := New(Config{Shards: 4, Engine: engine.Config{Workers: 2, BlockOnFull: true}})
	defer r.Close()
	inst, err := workload.RandomUFP(workload.NewRNG(4), workload.DefaultUFPConfig())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*16)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := r.Do(context.Background(), testJob(t, uint64(100+(w*8+i)%12))); err != nil {
					errs <- err
					return
				}
				s, err := r.Register(inst.G, 0.25)
				if err != nil {
					errs <- err
					return
				}
				if _, ok := r.Session(s.ID()); !ok {
					continue // concurrently LRU-evicted; affinity still held
				}
				r.CloseSession(s.ID())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := r.Snapshot().Misrouted; got != 0 {
		t.Errorf("Misrouted = %d under concurrent routing", got)
	}
}

// TestRouterCatalogEquivalence is the cluster equivalence gate: the
// scenario catalog solved through a 4-shard router is byte-identical —
// same fingerprints, same allocations — to the single-engine path.
func TestRouterCatalogEquivalence(t *testing.T) {
	r := New(Config{Shards: 4, Engine: engine.Config{Workers: 2}})
	defer r.Close()
	single := engine.New(engine.Config{Workers: 2})
	defer single.Close()
	for _, topo := range scenario.Topologies() {
		for _, dm := range scenario.Demands() {
			inst, err := scenario.Generate(scenario.Config{
				Topology: topo.Name, Demand: dm.Name, Requests: 40, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			job := engine.Job{Algorithm: "ufp/solve", Eps: 0.5, UFP: inst}
			want, err := single.Do(context.Background(), job)
			if err != nil {
				t.Fatalf("%s/%s: single engine: %v", topo.Name, dm.Name, err)
			}
			got, err := r.Do(context.Background(), job)
			if err != nil {
				t.Fatalf("%s/%s: router: %v", topo.Name, dm.Name, err)
			}
			wantB, err := json.Marshal(want.Allocation)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := json.Marshal(got.Allocation)
			if err != nil {
				t.Fatal(err)
			}
			if string(wantB) != string(gotB) {
				t.Errorf("%s/%s: routed allocation differs from single-engine allocation", topo.Name, dm.Name)
			}
		}
	}
}

// TestRouterMetrics checks the exposition: single-shard registration
// stays byte-compatible with the engine's family set, multi-shard adds
// the labeled per-shard split and the aggregate families.
func TestRouterMetrics(t *testing.T) {
	single := New(Config{Shards: 1, Engine: engine.Config{Workers: 1}})
	defer single.Close()
	reg1 := metrics.NewRegistry()
	single.RegisterMetrics(reg1)
	var b1 strings.Builder
	if err := reg1.WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ufp_engine_jobs_submitted_total 0",
		"ufp_engine_jobs_shed_total 0",
		"ufp_session_live 0",
		"ufp_shard_count 1",
		`ufp_shard_routed_total{shard="0"} 0`,
	} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("single-shard exposition missing %q", want)
		}
	}

	multi := New(Config{Shards: 3, Engine: engine.Config{Workers: 1}})
	defer multi.Close()
	if _, err := multi.Do(context.Background(), testJob(t, 5)); err != nil {
		t.Fatal(err)
	}
	reg3 := metrics.NewRegistry()
	multi.RegisterMetrics(reg3)
	var b3 strings.Builder
	if err := reg3.WriteText(&b3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ufp_engine_jobs_submitted_total 1",
		"ufp_shard_count 3",
		`ufp_shard_routed_total{shard="2"} `,
		`ufp_engine_solve_duration_seconds_count{shard="0"} `,
		"ufp_shard_diverted_total ",
		"ufp_shard_misrouted_total 0",
	} {
		if !strings.Contains(b3.String(), want) {
			t.Errorf("multi-shard exposition missing %q", want)
		}
	}
}
