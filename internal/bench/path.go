// Package bench hosts the path-engine benchmark bodies shared by the
// repo-level `go test -bench` entry points (bench_test.go) and the
// cmd/benchjson snapshot tool, which records them into BENCH_path.json
// so the performance trajectory of the shortest-path substrate is
// tracked in-repo rather than anecdotally.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"

	"truthfulufp/internal/core"
	"truthfulufp/internal/graph"
	"truthfulufp/internal/pathfind"
	"truthfulufp/internal/scenario"
)

// Case is one leaf benchmark: a slash-separated name and a standard
// testing benchmark body.
type Case struct {
	Name string
	F    func(b *testing.B)
}

// waxmanSize and friends fix the headline measurement: the waxman-1k
// scenario of the refactor's speedup target. Quick mode shrinks every
// knob for CI smoke runs.
const (
	waxmanSize     = 1000
	waxmanRequests = 300
	solveIters     = 16

	quickSize     = 200
	quickRequests = 100
	quickIters    = 8
)

// instCache memoizes generated scenario instances across cases and
// across testing.Benchmark's repeated calls of a body with growing N.
var instCache sync.Map

func waxmanInstance(quick bool) *core.Instance {
	size, requests := waxmanSize, waxmanRequests
	if quick {
		size, requests = quickSize, quickRequests
	}
	key := fmt.Sprintf("waxman/%d/%d", size, requests)
	if v, ok := instCache.Load(key); ok {
		return v.(*core.Instance)
	}
	inst, err := scenario.Generate(scenario.Config{
		Topology: "waxman", Size: size, Requests: requests, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	v, _ := instCache.LoadOrStore(key, inst)
	return v.(*core.Instance)
}

// unfrozen rebuilds a structurally identical graph without a frozen
// CSR, for the adjacency-walk baseline.
func unfrozen(g *graph.Graph) *graph.Graph {
	var c *graph.Graph
	if g.Directed() {
		c = graph.New(g.NumVertices())
	} else {
		c = graph.NewUndirected(g.NumVertices())
	}
	for _, e := range g.Edges() {
		c.AddEdge(e.From, e.To, e.Capacity)
	}
	return c
}

// PathCases returns the path-engine suite:
//
//   - DijkstraCSR/{csr,adjacency}: one pooled-scratch Dijkstra over the
//     waxman backbone, on the frozen CSR fast path versus the
//     slice-of-slices adjacency fallback.
//   - IncrementalSolve/{full-recompute,incremental}: Bounded-UFP on the
//     waxman-1k scenario with the dirty-source tree cache off and on —
//     identical allocations, the ns/op ratio is the refactor's speedup.
//   - ScenarioCatalog/solve: SolveUFP across every topology family at
//     default size (gravity demands), the end-to-end catalog sweep.
func PathCases(quick bool) []Case {
	iters := solveIters
	if quick {
		iters = quickIters
	}
	dijkstra := func(g *graph.Graph) func(b *testing.B) {
		return func(b *testing.B) {
			w := make([]float64, g.NumEdges())
			for e := range w {
				w[e] = 1 / g.Edge(e).Capacity
			}
			weight := pathfind.FromSlice(w)
			scratch := pathfind.NewScratch(g.NumVertices())
			var tree *pathfind.Tree
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree = scratch.Dijkstra(g, i%g.NumVertices(), weight, tree)
			}
		}
	}
	solve := func(noIncremental bool) func(b *testing.B) {
		return func(b *testing.B) {
			inst := waxmanInstance(quick)
			opt := &core.Options{Workers: 1, MaxIterations: iters, NoIncremental: noIncremental}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := core.BoundedUFP(inst, 0.25, opt)
				if err != nil {
					b.Fatal(err)
				}
				if a.Iterations == 0 {
					b.Fatal("solver admitted nothing")
				}
			}
		}
	}
	return []Case{
		{"DijkstraCSR/csr", func(b *testing.B) {
			g := waxmanInstance(quick).G
			g.Freeze()
			dijkstra(g)(b)
		}},
		{"DijkstraCSR/adjacency", func(b *testing.B) {
			dijkstra(unfrozen(waxmanInstance(quick).G))(b)
		}},
		{"IncrementalSolve/full-recompute", solve(true)},
		{"IncrementalSolve/incremental", solve(false)},
		{"ScenarioCatalog/solve", func(b *testing.B) {
			var insts []*core.Instance
			for _, t := range scenario.Topologies() {
				inst, err := scenario.Generate(scenario.Config{Topology: t.Name, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				insts = append(insts, inst)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, inst := range insts {
					if _, err := core.SolveUFP(inst, 0.5, &core.Options{Workers: 1}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	}
}

// Group runs every case under the given top-level name as sub-
// benchmarks of b (the `go test -bench` integration).
func Group(b *testing.B, name string, quick bool) {
	prefix := name + "/"
	for _, c := range PathCases(quick) {
		if len(c.Name) > len(prefix) && c.Name[:len(prefix)] == prefix {
			b.Run(c.Name[len(prefix):], c.F)
		}
	}
}

// Entry is one measured benchmark in a snapshot.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

// Snapshot is the BENCH_path.json schema: benchmark name → measurement
// plus the headline derived ratio.
type Snapshot struct {
	Suite string `json:"suite"`
	Quick bool   `json:"quick,omitempty"`
	// IncrementalSpeedup is full-recompute ns/op divided by incremental
	// ns/op on the waxman scenario (the refactor's ≥3× target).
	IncrementalSpeedup float64          `json:"incremental_speedup"`
	Benchmarks         map[string]Entry `json:"benchmarks"`
}

// Run measures every case with the standard testing harness. It panics
// if the suite no longer contains the two IncrementalSolve cases the
// headline speedup is derived from — a silent zero in a committed
// snapshot would read as a regression nobody made.
func Run(cases []Case, quick bool) Snapshot {
	snap := Snapshot{Suite: "path", Quick: quick, Benchmarks: make(map[string]Entry, len(cases))}
	for _, c := range cases {
		r := testing.Benchmark(c.F)
		snap.Benchmarks[c.Name] = Entry{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			N:           r.N,
		}
	}
	full, okFull := snap.Benchmarks["IncrementalSolve/full-recompute"]
	incr, okIncr := snap.Benchmarks["IncrementalSolve/incremental"]
	if !okFull || !okIncr || full.NsPerOp <= 0 || incr.NsPerOp <= 0 {
		panic("bench: suite is missing the IncrementalSolve full/incremental pair")
	}
	snap.IncrementalSpeedup = full.NsPerOp / incr.NsPerOp
	return snap
}

// WriteJSON emits the snapshot with stable key order (json.Marshal
// sorts map keys), so committed snapshots diff cleanly.
func WriteJSON(w io.Writer, snap Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadJSON decodes a snapshot (e.g. the committed BENCH_path.json).
func ReadJSON(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("bench: decoding snapshot: %w", err)
	}
	return snap, nil
}

// Compare is the CI trend gate: it fails when the fresh snapshot's
// headline IncrementalSolve speedup has regressed more than
// maxRegression (a fraction, e.g. 0.25) relative to the baseline.
//
// The speedup ratio — full-recompute ns/op over incremental ns/op on
// the same machine and instance — is what is comparable across CI
// runners; absolute ns/op are not. It is still scale-dependent (quick
// instances show a smaller win than full-size ones), so comparing a
// quick run against a full-size baseline would always "regress";
// Compare rejects mismatched scales outright rather than report
// nonsense.
func Compare(fresh, baseline Snapshot, maxRegression float64) error {
	if fresh.Suite != baseline.Suite {
		return fmt.Errorf("bench: comparing suite %q against baseline suite %q", fresh.Suite, baseline.Suite)
	}
	if fresh.Quick != baseline.Quick {
		return fmt.Errorf("bench: scale mismatch: fresh quick=%v vs baseline quick=%v — speedups are only comparable at equal scale", fresh.Quick, baseline.Quick)
	}
	if baseline.IncrementalSpeedup <= 0 {
		return fmt.Errorf("bench: baseline has no IncrementalSolve speedup")
	}
	regression := 1 - fresh.IncrementalSpeedup/baseline.IncrementalSpeedup
	if regression > maxRegression {
		return fmt.Errorf("bench: IncrementalSolve speedup regressed %.0f%% (%.2fx -> %.2fx, tolerance %.0f%%)",
			regression*100, baseline.IncrementalSpeedup, fresh.IncrementalSpeedup, maxRegression*100)
	}
	return nil
}
